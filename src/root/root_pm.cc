#include "src/root/root_pm.h"

#include <algorithm>

namespace nova::root {

RootPartitionManager::RootPartitionManager(hv::Hypervisor* hv)
    : hv_(hv), pd_(hv->root_pd()) {
  alloc_next_page_ = hv_->kernel_reserve() >> hw::kPageShift;
  alloc_end_page_ = hv_->machine().mem().size() >> hw::kPageShift;
}

std::uint64_t RootPartitionManager::AllocPages(std::uint64_t pages,
                                               std::uint64_t align_pages) {
  std::uint64_t start = alloc_next_page_;
  if (align_pages > 1) {
    start = (start + align_pages - 1) / align_pages * align_pages;
  }
  if (start + pages > alloc_end_page_) {
    return 0;
  }
  alloc_next_page_ = start + pages;
  return start;
}

hv::CapSel RootPartitionManager::CreatePd(const std::string& name, bool is_vm,
                                          hv::Pd** out,
                                          std::uint64_t quota_frames) {
  const hv::CapSel sel = FreeSel();
  if (sel == hv::kInvalidSel) {
    return hv::kInvalidSel;
  }
  if (!Ok(hv_->CreatePd(pd_, sel, name, is_vm, out, quota_frames))) {
    return hv::kInvalidSel;
  }
  return sel;
}

std::uint64_t RootPartitionManager::GrantMemory(hv::CapSel pd_sel,
                                                std::uint64_t pages,
                                                std::uint64_t hotspot_page,
                                                std::uint8_t perms, bool large,
                                                bool align_pow2) {
  const std::uint64_t large_pages =
      hw::LargePageSize(hv_->machine().cpu(0).model().host_paging) / hw::kPageSize;
  std::uint64_t align = large ? large_pages : 1;
  if (align_pow2) {
    std::uint64_t pow2 = 1;
    while (pow2 < pages) {
      pow2 <<= 1;
    }
    align = std::max(align, pow2);
  }
  const std::uint64_t first = AllocPages(pages, align);
  if (first == 0) {
    return 0;
  }
  // Delegate in power-of-two chunks (CRDs describe 2^order units).
  std::uint64_t remaining = pages;
  std::uint64_t src = first;
  std::uint64_t dst = hotspot_page == ~0ull ? first : hotspot_page;
  while (remaining > 0) {
    std::uint8_t order = 0;
    while ((2ull << order) <= remaining && (src & ((2ull << order) - 1)) == 0 &&
           (dst & ((2ull << order) - 1)) == 0) {
      ++order;
    }
    const std::uint64_t chunk = 1ull << order;
    const bool chunk_large = large && chunk % large_pages == 0;
    if (!Ok(hv_->Delegate(pd_, pd_sel, hv::Crd::Mem(src, order, perms), dst, 0xff,
                          chunk_large))) {
      return 0;
    }
    src += chunk;
    dst += chunk;
    remaining -= chunk;
  }
  return first;
}

std::uint64_t RootPartitionManager::GrantMemoryAt(hv::CapSel pd_sel,
                                                  std::uint64_t first_page,
                                                  std::uint64_t pages,
                                                  std::uint8_t perms, bool large) {
  const std::uint64_t large_pages =
      hw::LargePageSize(hv_->machine().cpu(0).model().host_paging) / hw::kPageSize;
  std::uint64_t remaining = pages;
  std::uint64_t page = first_page;
  while (remaining > 0) {
    std::uint8_t order = 0;
    while ((2ull << order) <= remaining && (page & ((2ull << order) - 1)) == 0) {
      ++order;
    }
    const std::uint64_t chunk = 1ull << order;
    const bool chunk_large = large && chunk % large_pages == 0;
    if (!Ok(hv_->Delegate(pd_, pd_sel, hv::Crd::Mem(page, order, perms), page, 0xff,
                          chunk_large))) {
      return 0;
    }
    page += chunk;
    remaining -= chunk;
  }
  return first_page;
}

void RootPartitionManager::RegisterDevice(const std::string& name,
                                          const DeviceInfo& info) {
  devices_[name] = info;
  if (info.mmio_size > 0) {
    (void)hv_->GrantDeviceWindow(info.mmio_base, info.mmio_size);
  }
}

const DeviceInfo* RootPartitionManager::FindDevice(const std::string& name) const {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : &it->second;
}

Status RootPartitionManager::AssignDevice(hv::CapSel pd_sel, const std::string& name,
                                          std::uint64_t mmio_hotspot_page) {
  const DeviceInfo* dev = FindDevice(name);
  if (dev == nullptr) {
    return Status::kBadDevice;
  }
  if (dev->mmio_size > 0) {
    const std::uint64_t pages = hw::PageAlignUp(dev->mmio_size) >> hw::kPageShift;
    const std::uint64_t base_page = dev->mmio_base >> hw::kPageShift;
    const std::uint64_t hotspot =
        mmio_hotspot_page == ~0ull ? base_page : mmio_hotspot_page;
    std::uint8_t order = 0;
    while ((1ull << order) < pages) {
      ++order;
    }
    const Status s = hv_->Delegate(pd_, pd_sel, hv::Crd::Mem(base_page, order, hv::perm::kRw),
                                   hotspot);
    if (!Ok(s)) {
      return s;
    }
  }
  if (dev->pio_count > 0) {
    std::uint8_t order = 0;
    while ((1ull << order) < dev->pio_count) {
      ++order;
    }
    const Status s =
        hv_->Delegate(pd_, pd_sel, hv::Crd::Io(dev->pio_base, order), dev->pio_base);
    if (!Ok(s)) {
      return s;
    }
  }
  return hv_->AssignDev(pd_, pd_sel, dev->id, dev->gsi);
}

Status RootPartitionManager::BindInterrupt(hv::CapSel pd_sel,
                                           const std::string& dev_name,
                                           hv::CapSel sm_sel_in_target,
                                           std::uint32_t cpu) {
  const DeviceInfo* dev = FindDevice(dev_name);
  if (dev == nullptr || dev->gsi == ~0u) {
    return Status::kBadDevice;
  }
  const hv::CapSel sm_sel = FreeSel();
  Status s = hv_->CreateSm(pd_, sm_sel, 0);
  if (!Ok(s)) {
    return s;
  }
  s = hv_->AssignGsi(pd_, sm_sel, dev->gsi, cpu);
  if (!Ok(s)) {
    return s;
  }
  return hv_->Delegate(pd_, pd_sel,
                       hv::Crd::Obj(sm_sel, 0,
                                    hv::perm::kSmDown | hv::perm::kSmUp |
                                        hv::perm::kDelegate),
                       sm_sel_in_target);
}

}  // namespace nova::root
