#include "src/root/platform.h"

#include "src/hw/disk.h"

namespace nova::root {

Platform SetupStandardPlatform(hw::Machine* machine, RootPartitionManager* root,
                               hw::DiskGeometry disk_geometry) {
  Platform p;

  auto disk = std::make_unique<hw::DiskModel>(&machine->events(), disk_geometry);
  p.disk = disk.get();
  // The disk model is not a bus device itself; keep it alive by pairing it
  // with the controller below.
  static_assert(sizeof(disk) > 0);

  auto ahci = std::make_unique<hw::AhciController>(
      kAhciDevId, &machine->iommu(), &machine->irq(), kAhciGsi, disk.get());
  p.ahci = machine->AddDevice(std::move(ahci));
  p.ahci->set_tracer(&machine->tracer());
  (void)machine->bus().RegisterMmio(kAhciMmioBase, kAhciMmioSize, p.ahci);

  auto nic = std::make_unique<hw::Nic>(kNicDevId, &machine->iommu(),
                                       &machine->irq(), kNicGsi, &machine->events());
  p.nic = machine->AddDevice(std::move(nic));
  p.nic->set_tracer(&machine->tracer());
  (void)machine->bus().RegisterMmio(kNicMmioBase, kNicMmioSize, p.nic);
  p.link = std::make_unique<hw::NetLink>(&machine->events(), p.nic);

  auto timer = std::make_unique<hw::PlatformTimer>(kTimerDevId, &machine->irq(),
                                                   kTimerGsi, &machine->events());
  p.timer = machine->AddDevice(std::move(timer));
  (void)machine->bus().RegisterPio(hw::timer::kPortPeriodLo, 4, p.timer);

  auto uart = std::make_unique<hw::Uart>(kUartDevId);
  p.uart = machine->AddDevice(std::move(uart));
  (void)machine->bus().RegisterPio(hw::uart::kPortBase, 8, p.uart);

  // Transfer disk-model ownership into the machine's device list by
  // wrapping it; the controller holds the functional pointer.
  class DiskHolder : public hw::Device {
   public:
    explicit DiskHolder(std::unique_ptr<hw::DiskModel> d)
        : Device(0xffff, "disk-model"), disk_(std::move(d)) {}
    std::uint64_t MmioRead(std::uint64_t, unsigned) override { return 0; }
    void MmioWrite(std::uint64_t, unsigned, std::uint64_t) override {}

   private:
    std::unique_ptr<hw::DiskModel> disk_;
  };
  machine->AddDevice(std::make_unique<DiskHolder>(std::move(disk)));

  if (root != nullptr) {
    root->RegisterDevice("ahci", DeviceInfo{.id = kAhciDevId,
                                            .mmio_base = kAhciMmioBase,
                                            .mmio_size = kAhciMmioSize,
                                            .gsi = kAhciGsi});
    root->RegisterDevice("nic", DeviceInfo{.id = kNicDevId,
                                           .mmio_base = kNicMmioBase,
                                           .mmio_size = kNicMmioSize,
                                           .gsi = kNicGsi});
    root->RegisterDevice("timer", DeviceInfo{.id = kTimerDevId,
                                             .pio_base = hw::timer::kPortPeriodLo,
                                             .pio_count = 4,
                                             .gsi = kTimerGsi});
    root->RegisterDevice("uart", DeviceInfo{.id = kUartDevId,
                                            .pio_base = hw::uart::kPortBase,
                                            .pio_count = 8});
  }
  return p;
}

}  // namespace nova::root
