// Root partition manager (§6).
//
// The first protection domain. It receives capabilities for all memory,
// I/O ports and interrupts at boot and performs the initial resource
// allocation decisions: carving out RAM regions for virtual machines and
// services, assigning devices to driver domains, and wiring interrupt
// semaphores. Like any protection domain it works purely through the
// hypercall interface — the hypervisor itself contains no allocation
// policy.
#ifndef SRC_ROOT_ROOT_PM_H_
#define SRC_ROOT_ROOT_PM_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/hv/kernel.h"

namespace nova::root {

// A platform device as the root PM sees it.
struct DeviceInfo {
  hw::DeviceId id = 0;
  hw::PhysAddr mmio_base = 0;
  std::uint64_t mmio_size = 0;
  std::uint16_t pio_base = 0;
  std::uint16_t pio_count = 0;
  std::uint32_t gsi = ~0u;
};

class RootPartitionManager {
 public:
  explicit RootPartitionManager(hv::Hypervisor* hv);

  hv::Pd* pd() { return pd_; }
  hv::Hypervisor& hv() { return *hv_; }

  // --- Memory policy ----------------------------------------------------
  // Allocate `pages` contiguous page frames from the root's RAM grant
  // (first-fit bump with alignment). Returns the first page frame number,
  // or 0 on exhaustion.
  std::uint64_t AllocPages(std::uint64_t pages, std::uint64_t align_pages = 1);

  // Create a child protection domain; the returned selector (in the root's
  // capability space) carries the control capability. `quota_frames`
  // bounds the child's kernel-memory account (donated from root's own
  // account, returned on destroy); the default leaves it pass-through.
  hv::CapSel CreatePd(const std::string& name, bool is_vm, hv::Pd** out = nullptr,
                      std::uint64_t quota_frames = hv::KmemQuota::kUnlimited);

  // Grant `pages` frames at `hotspot_page` in `pd_sel`'s space (~0 keeps
  // the identity address); allocates the backing frames. `align_pow2`
  // forces power-of-two alignment so the grant lands in a single mapping-
  // database node (important for domains that sub-delegate, like VMMs).
  // Returns the first frame number.
  std::uint64_t GrantMemory(hv::CapSel pd_sel, std::uint64_t pages,
                            std::uint64_t hotspot_page, std::uint8_t perms,
                            bool large = false, bool align_pow2 = false);

  // Re-grant an already-allocated range at its identity address, without
  // allocating. Used when restarting a crashed VMM over the surviving guest
  // RAM: the root still owns the frames after the old domain's teardown.
  std::uint64_t GrantMemoryAt(hv::CapSel pd_sel, std::uint64_t first_page,
                              std::uint64_t pages, std::uint8_t perms,
                              bool large = false);

  // --- Device policy ----------------------------------------------------
  void RegisterDevice(const std::string& name, const DeviceInfo& info);
  const DeviceInfo* FindDevice(const std::string& name) const;

  // Assign a device to a domain: delegates its MMIO window and ports and
  // attaches its DMA context to the domain's page table.
  // `mmio_hotspot_page` picks where the window appears in the domain's
  // space (guest-physical address for VMs); ~0 keeps the identity address.
  Status AssignDevice(hv::CapSel pd_sel, const std::string& name,
                      std::uint64_t mmio_hotspot_page = ~0ull);

  // Bind a device's interrupt to a semaphore held by a driver domain: the
  // root creates the semaphore, delegates it, and assigns the GSI.
  Status BindInterrupt(hv::CapSel pd_sel, const std::string& dev_name,
                       hv::CapSel sm_sel_in_target, std::uint32_t cpu);

  // Free selector in the root's capability space.
  hv::CapSel FreeSel() { return pd_->caps().FindFree(hv::kSelFirstFree); }

  // The allocation cursor is the only mutable policy state; the RAM grant
  // bounds and device registry are construction-time and only verified.
  Status SaveState(sim::SnapWriter& w) const {
    w.U64(alloc_next_page_);
    w.U64(alloc_end_page_);
    w.U32(static_cast<std::uint32_t>(devices_.size()));
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    alloc_next_page_ = r.U64();
    if (r.U64() != alloc_end_page_ || r.U32() != devices_.size()) {
      r.Fail();
    }
    return r.ok() ? Status::kSuccess : Status::kBadParameter;
  }

 private:
  // snapshot-x-list(RootPartitionManager): hv_, pd_, alloc_next_page_,
  //   alloc_end_page_, devices_
  hv::Hypervisor* hv_;
  hv::Pd* pd_;
  std::uint64_t alloc_next_page_;
  std::uint64_t alloc_end_page_;
  std::map<std::string, DeviceInfo> devices_;
};

}  // namespace nova::root

#endif  // SRC_ROOT_ROOT_PM_H_
