// Standard platform assembly: places the host devices of the paper's
// evaluation machine (AHCI HBA + SATA disk, gigabit NIC, platform timer,
// serial port) on the bus, and registers them with the root partition
// manager for assignment to driver domains or virtual machines.
#ifndef SRC_ROOT_PLATFORM_H_
#define SRC_ROOT_PLATFORM_H_

#include <memory>

#include "src/hw/ahci.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/hw/timer_dev.h"
#include "src/hw/uart.h"
#include "src/root/root_pm.h"

namespace nova::root {

// Physical MMIO window placement (outside RAM).
constexpr hw::PhysAddr kAhciMmioBase = 0xc000'0000;
constexpr std::uint64_t kAhciMmioSize = 0x1000;
constexpr hw::PhysAddr kNicMmioBase = 0xc010'0000;
constexpr std::uint64_t kNicMmioSize = 0x4000;

constexpr std::uint32_t kAhciGsi = 11;
constexpr std::uint32_t kNicGsi = 10;
constexpr std::uint32_t kTimerGsi = 0;

constexpr hw::DeviceId kAhciDevId = 0x0110;  // 01:02.0-style requester ids.
constexpr hw::DeviceId kNicDevId = 0x0208;
constexpr hw::DeviceId kTimerDevId = 0x0020;
constexpr hw::DeviceId kUartDevId = 0x0028;

struct Platform {
  hw::AhciController* ahci = nullptr;
  hw::DiskModel* disk = nullptr;
  hw::Nic* nic = nullptr;
  std::unique_ptr<hw::NetLink> link;
  hw::PlatformTimer* timer = nullptr;
  hw::Uart* uart = nullptr;
};

// Build the standard device set on `machine`, register bus windows, and
// announce everything to the root partition manager.
Platform SetupStandardPlatform(hw::Machine* machine, RootPartitionManager* root,
                               hw::DiskGeometry disk_geometry = hw::DiskGeometry{});

}  // namespace nova::root

#endif  // SRC_ROOT_PLATFORM_H_
