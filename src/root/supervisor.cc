#include "src/root/supervisor.h"

namespace nova::root {

VmmSupervisor::VmmSupervisor(hv::Hypervisor* hv, RootPartitionManager* root,
                             Config config)
    : hv_(hv), root_(root), config_(config), alive_(std::make_shared<bool>(true)) {}

VmmSupervisor::~VmmSupervisor() { *alive_ = false; }

void VmmSupervisor::Watch(vmm::Vmm* vmm, RestartFn on_restart) {
  if (hb_page_ == 0) {
    hb_page_ = root_->AllocPages(1);
  }
  Watched w;
  w.vmm = vmm;
  w.hb_addr = (hb_page_ << hw::kPageShift) + watched_.size() * sizeof(std::uint64_t);
  // The teardown selectors are fetched eagerly: once the VMM is dead it can
  // no longer push its VM capability up to the root.
  w.vm_sel = vmm->ExposeVmToRoot();
  w.vmm_sel = vmm->vmm_pd_sel();
  w.on_restart = std::move(on_restart);
  watched_.push_back(std::move(w));

  vmm->StartHeartbeat(config_.check_period_ps / 2, watched_.back().hb_addr);

  if (!check_running_) {
    check_running_ = true;
    const std::shared_ptr<bool> alive = alive_;
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [this, alive, tick] {
      if (!*alive) {
        return;
      }
      CheckAll();
      hv_->machine().events().ScheduleAfter(config_.check_period_ps,
                                            [tick] { (*tick)(); });
    };
    hv_->machine().events().ScheduleAfter(config_.check_period_ps,
                                          [tick] { (*tick)(); });
  }
}

void VmmSupervisor::CheckAll() {
  // Index-based: a restart callback may Watch() the replacement VMM, which
  // can grow (and reallocate) the watch list mid-loop.
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    if (watched_[i].recovered) {
      continue;
    }
    std::uint64_t hb = 0;
    (void)hv_->machine().mem().Read(watched_[i].hb_addr, &hb, sizeof(hb));
    if (hb != watched_[i].last_seen) {
      watched_[i].last_seen = hb;
      watched_[i].stale = 0;
      continue;
    }
    if (++watched_[i].stale >= config_.stale_checks) {
      Recover(watched_[i]);
    }
  }
}

void VmmSupervisor::Recover(Watched& w) {
  // Checkpoint everything that dies with the domains: the vCPU's
  // architectural state and the guest-programmed virtual-controller
  // registers. Guest RAM needs no copying — the frames fall back to the
  // root when the mappings are revoked and are re-granted in place.
  RecoveryInfo info;
  info.gstate = w.vmm->gstate(0);
  info.guest_base_page = w.vmm->guest_base_page();
  info.vahci_regs = w.vmm->vahci().SaveRegs();
  info.detected_at_ps = hv_->machine().events().now();
  last_detect_latency_ps_ = config_.stale_checks * config_.check_period_ps;

  // Teardown through the ordinary hypercall interface: child domains first
  // (the VM), then the VMM itself. Revocation recursively strips every
  // mapping either domain delegated onward; the kernel reclaims shadow
  // contexts, TLB tags, paging structures and scheduling contexts.
  (void)hv_->DestroyPd(root_->pd(), w.vm_sel);
  (void)hv_->DestroyPd(root_->pd(), w.vmm_sel);

  w.recovered = true;
  ++recoveries_;
  const RestartFn restart = std::move(w.on_restart);
  if (restart) {
    restart(info);  // May Watch() the replacement — `w` is dead after this.
  }
}

}  // namespace nova::root
