#include "src/root/supervisor.h"

#include "src/hv/snapshot.h"

namespace nova::root {

namespace {
constexpr std::uint32_t kOpCheckTick = 1;
}  // namespace

VmmSupervisor::VmmSupervisor(hv::Hypervisor* hv, RootPartitionManager* root,
                             Config config)
    : hv_(hv), root_(root), config_(config) {
  hv_->machine().events().RegisterRebinder(
      sim::EventQueue::OwnerToken("root.supervisor"),
      [this](const sim::EventTag& tag) -> sim::EventQueue::Callback {
        if (tag.op != kOpCheckTick) {
          return nullptr;
        }
        return [this] { CheckTick(); };
      });
}

VmmSupervisor::~VmmSupervisor() {
  if (check_event_ != 0) {
    (void)hv_->machine().events().Cancel(check_event_);
  }
}

void VmmSupervisor::Watch(vmm::Vmm* vmm, RestartFn on_restart) {
  if (hb_page_ == 0) {
    hb_page_ = root_->AllocPages(1);
  }
  Watched w;
  w.vmm = vmm;
  w.hb_addr = (hb_page_ << hw::kPageShift) + watched_.size() * sizeof(std::uint64_t);
  // The teardown selectors are fetched eagerly: once the VMM is dead it can
  // no longer push its VM capability up to the root.
  w.vm_sel = vmm->ExposeVmToRoot();
  w.vmm_sel = vmm->vmm_pd_sel();
  w.on_restart = std::move(on_restart);
  watched_.push_back(std::move(w));

  vmm->StartHeartbeat(config_.check_period_ps / 2, watched_.back().hb_addr);

  if (!check_running_) {
    check_running_ = true;
    check_event_ = hv_->machine().events().ScheduleAfterTagged(
        config_.check_period_ps,
        sim::EventTag{sim::EventQueue::OwnerToken("root.supervisor"),
                      kOpCheckTick},
        [this] { CheckTick(); });
  }
}

void VmmSupervisor::CheckTick() {
  ++ticks_;
  if (config_.checkpoint_every_checks != 0 &&
      ticks_ % config_.checkpoint_every_checks == 0) {
    CheckpointAll();
  }
  CheckAll();
  check_event_ = hv_->machine().events().ScheduleAfterTagged(
      config_.check_period_ps,
      sim::EventTag{sim::EventQueue::OwnerToken("root.supervisor"),
                    kOpCheckTick},
      [this] { CheckTick(); });
}

void VmmSupervisor::CheckAll() {
  // Index-based: a restart callback may Watch() the replacement VMM, which
  // can grow (and reallocate) the watch list mid-loop.
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    if (watched_[i].recovered) {
      continue;
    }
    std::uint64_t hb = 0;
    (void)hv_->machine().mem().Read(watched_[i].hb_addr, &hb, sizeof(hb));
    if (hb != watched_[i].last_seen) {
      watched_[i].last_seen = hb;
      watched_[i].stale = 0;
      continue;
    }
    if (++watched_[i].stale >= config_.stale_checks) {
      Recover(watched_[i]);
    }
  }
}

void VmmSupervisor::CheckpointAll() {
  // Only checkpoint monitors whose heartbeat was fresh at the last sample:
  // a VMM already suspected dead must not overwrite its last-good state
  // with whatever its wild memory now contains.
  for (Watched& w : watched_) {
    if (w.recovered || w.stale != 0) {
      continue;
    }
    w.ckpt_regs = w.vmm->vahci().SaveRegs();
    w.ckpt_gstate = w.vmm->gstate(0);
    w.ckpt_at_ps = hv_->machine().events().now();
    w.has_checkpoint = true;
    ++checkpoints_;
  }
}

void VmmSupervisor::Recover(Watched& w) {
  // Checkpoint everything that dies with the domains: the vCPU's
  // architectural state and the guest-programmed virtual-controller
  // registers. Guest RAM needs no copying — the frames fall back to the
  // root when the mappings are revoked and are re-granted in place.
  RecoveryInfo info;
  // The vCPU object lives in the kernel and is intact regardless of how
  // the VMM died, so the architectural state is always read at detection
  // time. The device model lives in the crashed VMM's own memory: prefer
  // the last healthy-time checkpoint when one exists — the driver replays
  // anything issued past it through the controller's abort path.
  info.gstate = w.vmm->gstate(0);
  info.guest_base_page = w.vmm->guest_base_page();
  if (w.has_checkpoint) {
    info.vahci_regs = w.ckpt_regs;
    info.regs_from_checkpoint = true;
  } else {
    info.vahci_regs = w.vmm->vahci().SaveRegs();
  }
  info.detected_at_ps = hv_->machine().events().now();
  last_detect_latency_ps_ = config_.stale_checks * config_.check_period_ps;

  // Teardown through the ordinary hypercall interface: child domains first
  // (the VM), then the VMM itself. Revocation recursively strips every
  // mapping either domain delegated onward; the kernel reclaims shadow
  // contexts, TLB tags, paging structures and scheduling contexts.
  (void)hv_->DestroyPd(root_->pd(), w.vm_sel);
  (void)hv_->DestroyPd(root_->pd(), w.vmm_sel);

  w.recovered = true;
  ++recoveries_;
  const RestartFn restart = std::move(w.on_restart);
  if (restart) {
    restart(info);  // May Watch() the replacement — `w` is dead after this.
  }
}

Status VmmSupervisor::SaveState(sim::SnapWriter& w) const {
  w.U64(hb_page_);
  w.U32(static_cast<std::uint32_t>(watched_.size()));
  for (const Watched& e : watched_) {
    w.U64(e.hb_addr);  // Verified: derived from hb_page_ + watch order.
    w.U64(e.vm_sel);
    w.U64(e.vmm_sel);
    w.U64(e.last_seen);
    w.U32(e.stale);
    w.Bool(e.recovered);
    w.Bool(e.has_checkpoint);
    if (e.has_checkpoint) {
      const vmm::VAhci::Regs& cr = e.ckpt_regs;
      w.U32(cr.ghc);
      w.U32(cr.px_clb);
      w.U32(cr.px_ie);
      w.U32(cr.px_cmd);
      hv::SaveGuestState(w, e.ckpt_gstate);
      w.I64(e.ckpt_at_ps);
    }
  }
  w.U64(recoveries_);
  w.U64(checkpoints_);
  w.U64(ticks_);
  w.I64(last_detect_latency_ps_);
  w.Bool(check_running_);
  w.U64(check_event_);
  return Status::kSuccess;
}

Status VmmSupervisor::LoadState(sim::SnapReader& r) {
  if (r.U64() != hb_page_) {
    r.Fail();
  }
  if (r.U32() != watched_.size()) {
    r.Fail();
  }
  if (!r.ok()) {
    return Status::kBadParameter;
  }
  for (Watched& e : watched_) {
    if (r.U64() != e.hb_addr || r.U64() != e.vm_sel || r.U64() != e.vmm_sel) {
      r.Fail();
      return Status::kBadParameter;
    }
    e.last_seen = r.U64();
    e.stale = r.U32();
    e.recovered = r.Bool();
    e.has_checkpoint = r.Bool();
    if (e.has_checkpoint) {
      e.ckpt_regs.ghc = r.U32();
      e.ckpt_regs.px_clb = r.U32();
      e.ckpt_regs.px_ie = r.U32();
      e.ckpt_regs.px_cmd = r.U32();
      hv::LoadGuestState(r, &e.ckpt_gstate);
      e.ckpt_at_ps = r.I64();
    }
  }
  recoveries_ = r.U64();
  checkpoints_ = r.U64();
  ticks_ = r.U64();
  last_detect_latency_ps_ = r.I64();
  check_running_ = r.Bool();
  check_event_ = r.U64();
  return r.ok() ? Status::kSuccess : Status::kBadParameter;
}

}  // namespace nova::root
