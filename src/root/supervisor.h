// VMM crash supervision (failure isolation, §4.2).
//
// The VMM is an untrusted user-level component: its crash must affect only
// the virtual machine it monitors. The root partition manager plays parent
// here — it watches each VMM via a heartbeat word the VMM periodically
// increments in root-owned memory. When the heartbeat goes stale the
// supervisor checkpoints the guest's architectural state and the virtual
// controller registers (guest RAM itself survives — it stays allocated and
// simply falls back to the root when the dead domains are destroyed),
// revokes and destroys the VM and VMM protection domains through the
// ordinary hypercall interface, and invokes a restart callback that
// rebuilds a fresh VMM over the surviving guest memory and resumes the
// guest where it stopped.
//
// Periodic checkpointing (checkpoint_every_checks != 0) hardens the warm
// path: every N healthy check ticks the supervisor snapshots each watched
// VMM's recovery state while the monitor is known-good. At recovery time
// the *device-model* registers come from the last healthy checkpoint — a
// wildly crashed VMM's in-process state is untrusted — while the guest's
// architectural state is read from the kernel's vCPU object, which lives
// in the TCB and survives the crash intact. Requests in flight past the
// checkpoint are replayed through the virtual controller's abort path.
#ifndef SRC_ROOT_SUPERVISOR_H_
#define SRC_ROOT_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/root/root_pm.h"
#include "src/vmm/vmm.h"

namespace nova::root {

class VmmSupervisor {
 public:
  struct Config {
    // How often the supervisor samples the heartbeat words. The VMM beats
    // at twice this rate, so one missed sample is already suspicious.
    sim::PicoSeconds check_period_ps = 2'000'000'000;  // 2 ms.
    // Consecutive stale samples before the VMM is declared dead.
    std::uint32_t stale_checks = 2;
    // Checkpoint each healthy VMM's recovery state every N check ticks
    // (0 disables; recovery then reads the dead VMM's device model as a
    // best effort, the pre-checkpointing behaviour).
    std::uint32_t checkpoint_every_checks = 0;
  };

  // Everything the restart path needs that does not survive in guest RAM:
  // the guest's architectural state (the vCPU object dies with the VM
  // domain) and the guest-programmed virtual-controller registers (the
  // device model dies with the VMM process).
  struct RecoveryInfo {
    hw::GuestState gstate;
    std::uint64_t guest_base_page = 0;
    vmm::VAhci::Regs vahci_regs;
    sim::PicoSeconds detected_at_ps = 0;
    // True when vahci_regs came from a healthy-time checkpoint rather than
    // the crashed monitor's memory.
    bool regs_from_checkpoint = false;
  };
  using RestartFn = std::function<void(const RecoveryInfo&)>;

  VmmSupervisor(hv::Hypervisor* hv, RootPartitionManager* root, Config config);
  VmmSupervisor(hv::Hypervisor* hv, RootPartitionManager* root)
      : VmmSupervisor(hv, root, Config()) {}
  ~VmmSupervisor();

  // Start watching `vmm`: allocates its heartbeat word, starts the VMM's
  // heartbeat, and records the selectors needed for teardown. On detected
  // death the supervisor destroys the VM and VMM domains and calls
  // `on_restart` with the saved state.
  void Watch(vmm::Vmm* vmm, RestartFn on_restart);

  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t checkpoints() const { return checkpoints_; }
  sim::PicoSeconds last_detect_latency_ps() const { return last_detect_latency_ps_; }

  // Watch-list heartbeat cursors and recovery counters. The watch list
  // itself (and the restart callbacks) is rebuilt by the twin's Watch
  // calls; saved checkpointed register state is restored verbatim.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  struct Watched {
    vmm::Vmm* vmm = nullptr;
    hw::PhysAddr hb_addr = 0;
    std::uint64_t last_seen = 0;
    std::uint32_t stale = 0;
    hv::CapSel vm_sel = hv::kInvalidSel;   // In the root's space.
    hv::CapSel vmm_sel = hv::kInvalidSel;  // In the root's space.
    RestartFn on_restart;
    bool recovered = false;
    // Last healthy-time checkpoint (checkpoint_every_checks != 0 only).
    bool has_checkpoint = false;
    vmm::VAhci::Regs ckpt_regs;
    hw::GuestState ckpt_gstate;
    sim::PicoSeconds ckpt_at_ps = 0;
  };

  void CheckTick();  // Tagged "root.supervisor" op 1.
  void CheckAll();
  void CheckpointAll();
  void Recover(Watched& w);

  // snapshot-x-list(VmmSupervisor): hv_, root_, config_, hb_page_,
  //   watched_, recoveries_, checkpoints_, ticks_,
  //   last_detect_latency_ps_, check_running_, check_event_
  hv::Hypervisor* hv_;
  RootPartitionManager* root_;
  Config config_;
  std::uint64_t hb_page_ = 0;  // Root-owned page holding heartbeat words.
  std::vector<Watched> watched_;
  std::uint64_t recoveries_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t ticks_ = 0;
  sim::PicoSeconds last_detect_latency_ps_ = 0;
  bool check_running_ = false;
  sim::EventQueue::EventId check_event_ = 0;  // Cancelled on destruction.
};

}  // namespace nova::root

#endif  // SRC_ROOT_SUPERVISOR_H_
