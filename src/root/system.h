// Full-system assembly: machine + microhypervisor + root partition
// manager + standard platform devices, with helpers to start the disk
// server and build VMMs. The shared entry point for examples, benchmarks
// and integration tests.
#ifndef SRC_ROOT_SYSTEM_H_
#define SRC_ROOT_SYSTEM_H_

#include <memory>

#include "src/hv/kernel.h"
#include "src/hw/machine.h"
#include "src/root/platform.h"
#include "src/root/root_pm.h"
#include "src/services/disk_server.h"

namespace nova::root {

struct SystemConfig {
  hw::MachineConfig machine{};
  hv::HvCosts hv_costs{};
  std::uint64_t kernel_reserve = 64ull << 20;
  hw::DiskGeometry disk_geometry{};
};

class NovaSystem {
 public:
  explicit NovaSystem(SystemConfig config = SystemConfig{})
      : machine(config.machine), hv(&machine, config.hv_costs) {
    hv.Boot(config.kernel_reserve);
    root = std::make_unique<RootPartitionManager>(&hv);
    platform = SetupStandardPlatform(&machine, root.get(), config.disk_geometry);
  }

  // Start the user-level disk server (idempotent).
  services::DiskServer& StartDiskServer(std::uint32_t cpu = 0) {
    if (disk_server == nullptr) {
      disk_server = std::make_unique<services::DiskServer>(&hv, root.get(), cpu);
    }
    return *disk_server;
  }

  hw::Machine machine;
  hv::Hypervisor hv;
  std::unique_ptr<RootPartitionManager> root;
  Platform platform;
  std::unique_ptr<services::DiskServer> disk_server;
};

}  // namespace nova::root

#endif  // SRC_ROOT_SYSTEM_H_
