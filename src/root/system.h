// Full-system assembly: machine + microhypervisor + root partition
// manager + standard platform devices, with helpers to start the disk
// server and build VMMs. The shared entry point for examples, benchmarks
// and integration tests.
#ifndef SRC_ROOT_SYSTEM_H_
#define SRC_ROOT_SYSTEM_H_

#include <memory>

#include "src/hv/kernel.h"
#include "src/hw/machine.h"
#include "src/root/platform.h"
#include "src/root/root_pm.h"
#include "src/services/disk_server.h"

namespace nova::root {

struct SystemConfig {
  hw::MachineConfig machine{};
  hv::HvCosts hv_costs{};
  std::uint64_t kernel_reserve = 64ull << 20;
  hw::DiskGeometry disk_geometry{};
};

class NovaSystem {
 public:
  explicit NovaSystem(SystemConfig config = SystemConfig{})
      : machine(config.machine), hv(&machine, config.hv_costs) {
    hv.Boot(config.kernel_reserve);
    root = std::make_unique<RootPartitionManager>(&hv);
    platform = SetupStandardPlatform(&machine, root.get(), config.disk_geometry);
  }

  // Start the user-level disk server (idempotent).
  services::DiskServer& StartDiskServer(std::uint32_t cpu = 0) {
    if (disk_server == nullptr) {
      disk_server = std::make_unique<services::DiskServer>(&hv, root.get(), cpu);
    }
    return *disk_server;
  }

  // Whole-node checkpoint: hardware, kernel object graph, root policy and
  // the disk server, each in its own named section. Scenario-level state
  // (VMMs, guests) is layered on top by the owner of those objects.
  // Restore targets a twin NovaSystem built from the identical SystemConfig
  // whose scenario construction ran the same sequence (same StartDiskServer
  // and channel-open calls); presence and wiring are verified, not rebuilt.
  Status SaveState(sim::Snapshot& snap) const {
    if (Status s = machine.SaveState(snap); s != Status::kSuccess) {
      return s;
    }
    if (Status s = hv.SaveState(snap); s != Status::kSuccess) {
      return s;
    }
    struct Dev {
      const char* section;
      Status status;
    };
    const Dev devs[] = {
        {"hw.ahci", platform.ahci->SaveState(snap.Section("hw.ahci", 1))},
        {"hw.disk", platform.disk->SaveState(snap.Section("hw.disk", 1))},
        {"hw.nic", platform.nic->SaveState(snap.Section("hw.nic", 1))},
        {"hw.netlink", platform.link->SaveState(snap.Section("hw.netlink", 1))},
        {"hw.timer", platform.timer->SaveState(snap.Section("hw.timer", 1))},
        {"hw.uart", platform.uart->SaveState(snap.Section("hw.uart", 1))},
        {"root.pm", root->SaveState(snap.Section("root.pm", 1))},
    };
    for (const Dev& d : devs) {
      if (d.status != Status::kSuccess) {
        return d.status;
      }
    }
    sim::SnapWriter& sys = snap.Section("root.sys", 1);
    sys.Bool(disk_server != nullptr);
    if (disk_server != nullptr) {
      if (Status s = disk_server->SaveState(snap.Section("svc.disk", 1));
          s != Status::kSuccess) {
        return s;
      }
    }
    return Status::kSuccess;
  }

  Status LoadState(sim::Snapshot& snap) {
    if (Status s = machine.LoadState(snap); s != Status::kSuccess) {
      return s;
    }
    if (Status s = hv.LoadState(snap); s != Status::kSuccess) {
      return s;
    }
    const auto load = [&snap](const char* name, auto* obj) -> Status {
      sim::SnapReader r = snap.Open(name, 1);
      if (Status s = obj->LoadState(r); s != Status::kSuccess) {
        return s;
      }
      return r.Finish();
    };
    if (Status s = load("hw.ahci", platform.ahci); s != Status::kSuccess) {
      return s;
    }
    if (Status s = load("hw.disk", platform.disk); s != Status::kSuccess) {
      return s;
    }
    if (Status s = load("hw.nic", platform.nic); s != Status::kSuccess) {
      return s;
    }
    if (Status s = load("hw.netlink", platform.link.get());
        s != Status::kSuccess) {
      return s;
    }
    if (Status s = load("hw.timer", platform.timer); s != Status::kSuccess) {
      return s;
    }
    if (Status s = load("hw.uart", platform.uart); s != Status::kSuccess) {
      return s;
    }
    if (Status s = load("root.pm", root.get()); s != Status::kSuccess) {
      return s;
    }
    sim::SnapReader sys = snap.Open("root.sys", 1);
    const bool had_server = sys.Bool();
    if (Status s = sys.Finish(); s != Status::kSuccess) {
      return s;
    }
    if (had_server != (disk_server != nullptr)) {
      return Status::kBadParameter;  // Twin construction mismatch.
    }
    if (disk_server != nullptr) {
      if (Status s = load("svc.disk", disk_server.get());
          s != Status::kSuccess) {
        return s;
      }
    }
    return Status::kSuccess;
  }

  hw::Machine machine;
  hv::Hypervisor hv;
  std::unique_ptr<RootPartitionManager> root;
  Platform platform;
  std::unique_ptr<services::DiskServer> disk_server;
};

}  // namespace nova::root

#endif  // SRC_ROOT_SYSTEM_H_
