#include "src/vmm/vpit.h"

namespace nova::vmm {

std::uint32_t VPit::PioRead(std::uint16_t port) {
  switch (port) {
    case vpit::kPortPeriodLo:
      return static_cast<std::uint32_t>((period_ / sim::kPicosPerMicro) & 0xffff);
    case vpit::kPortPeriodHi:
      return static_cast<std::uint32_t>((period_ / sim::kPicosPerMicro) >> 16);
    case vpit::kPortControl:
      return period_ != 0 ? 1 : 0;
    default:
      return ~0u;
  }
}

void VPit::PioWrite(std::uint16_t port, std::uint32_t value) {
  switch (port) {
    case vpit::kPortPeriodLo:
      period_lo_ = static_cast<std::uint16_t>(value);
      break;
    case vpit::kPortPeriodHi: {
      const std::uint32_t micros = (value << 16) | period_lo_;
      period_ = sim::Microseconds(micros);
      ++generation_;
      if (period_ != 0) {
        Arm();
      }
      break;
    }
    case vpit::kPortControl:
      if (value == 0) {
        period_ = 0;
        ++generation_;
      }
      break;
    default:
      break;
  }
}

void VPit::Arm() {
  const std::uint64_t gen = generation_;
  events_->ScheduleAfter(period_, [this, gen] {
    if (gen == generation_) {
      Tick();
    }
  });
}

void VPit::Tick() {
  ++ticks_;
  vpic_->Raise(vpit::kVector);
  Arm();
}

}  // namespace nova::vmm
