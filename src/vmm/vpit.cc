#include "src/vmm/vpit.h"

namespace nova::vmm {

VPit::VPit(sim::EventQueue* events, VPic* vpic, std::uint64_t owner)
    : DeviceModel("vpit"), events_(events), vpic_(vpic), owner_(owner) {
  events_->RegisterRebinder(
      owner_, [this](const sim::EventTag& tag) -> sim::EventQueue::Callback {
        if (tag.op != 1) {
          return nullptr;
        }
        const std::uint64_t gen = tag.a;
        return [this, gen] {
          if (gen == generation_) {
            Tick();
          }
        };
      });
}

std::uint32_t VPit::PioRead(std::uint16_t port) {
  switch (port) {
    case vpit::kPortPeriodLo:
      return static_cast<std::uint32_t>((period_ / sim::kPicosPerMicro) & 0xffff);
    case vpit::kPortPeriodHi:
      return static_cast<std::uint32_t>((period_ / sim::kPicosPerMicro) >> 16);
    case vpit::kPortControl:
      return period_ != 0 ? 1 : 0;
    default:
      return ~0u;
  }
}

void VPit::PioWrite(std::uint16_t port, std::uint32_t value) {
  switch (port) {
    case vpit::kPortPeriodLo:
      period_lo_ = static_cast<std::uint16_t>(value);
      break;
    case vpit::kPortPeriodHi: {
      const std::uint32_t micros = (value << 16) | period_lo_;
      period_ = sim::Microseconds(micros);
      ++generation_;
      if (period_ != 0) {
        Arm();
      }
      break;
    }
    case vpit::kPortControl:
      if (value == 0) {
        period_ = 0;
        ++generation_;
      }
      break;
    default:
      break;
  }
}

void VPit::Arm() {
  const std::uint64_t gen = generation_;
  events_->ScheduleAfterTagged(period_, sim::EventTag{owner_, /*op=*/1, gen},
                               [this, gen] {
                                 if (gen == generation_) {
                                   Tick();
                                 }
                               });
}

void VPit::Tick() {
  ++ticks_;
  vpic_->Raise(vpit::kVector);
  Arm();
}

Status VPit::SaveState(sim::SnapWriter& w) const {
  w.U64(period_);
  w.U16(period_lo_);
  w.U64(generation_);
  w.U64(ticks_);
  return Status::kSuccess;
}

Status VPit::LoadState(sim::SnapReader& r) {
  period_ = r.U64();
  period_lo_ = r.U16();
  generation_ = r.U64();
  ticks_ = r.U64();
  return r.status();
}

}  // namespace nova::vmm
