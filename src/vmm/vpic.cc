#include "src/vmm/vpic.h"

namespace nova::vmm {

void VPic::Raise(std::uint8_t vector) {
  if (vector >= 64) {
    return;
  }
  pending_ |= 1ull << vector;
  ++raised_;
  if (((pending_ & ~masked_) != 0) && kick_) {
    kick_();
  }
}

bool VPic::HasDeliverable() const { return (pending_ & ~masked_) != 0; }

std::uint8_t VPic::HighestDeliverable() const {
  const std::uint64_t ready = pending_ & ~masked_;
  if (ready == 0) {
    return vpic::kNoVector;
  }
  return static_cast<std::uint8_t>(63 - __builtin_clzll(ready));
}

void VPic::BeginService(std::uint8_t vector) {
  pending_ &= ~(1ull << vector);
  in_service_ |= 1ull << vector;
  ++injected_;
}

std::uint32_t VPic::PioRead(std::uint16_t port) {
  if (port == vpic::kPortVector) {
    // Highest in-service vector (what the ISR is handling).
    if (in_service_ == 0) {
      return vpic::kNoVector;
    }
    return static_cast<std::uint32_t>(63 - __builtin_clzll(in_service_));
  }
  return ~0u;
}

void VPic::PioWrite(std::uint16_t port, std::uint32_t value) {
  const std::uint8_t vector = value & 0x3f;
  switch (port) {
    case vpic::kPortVector:  // EOI.
      in_service_ &= ~(1ull << vector);
      break;
    case vpic::kPortMask:
      masked_ |= 1ull << vector;
      break;
    case vpic::kPortUnmask:
      masked_ &= ~(1ull << vector);
      if ((pending_ & ~masked_) != 0 && kick_) {
        kick_();  // A latched vector became deliverable.
      }
      break;
    case vpic::kPortRaise:
      Raise(vector);
      break;
    default:
      break;
  }
}

}  // namespace nova::vmm
