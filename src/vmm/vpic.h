// Virtual interrupt controller.
//
// A simplified programmable interrupt controller with per-vector pending,
// in-service and mask state. The guest's interrupt-service routine performs
// the classic four-step handshake — read vector, mask, EOI, unmask — each
// step a port access that exits to the VMM, which is exactly the "up to
// four more VM exits" interrupt-virtualization cost of §8.2.
#ifndef SRC_VMM_VPIC_H_
#define SRC_VMM_VPIC_H_

#include <cstdint>
#include <functional>

#include "src/sim/snapshot.h"
#include "src/sim/status.h"
#include "src/vmm/device_model.h"

namespace nova::vmm {

namespace vpic {
constexpr std::uint16_t kPortVector = 0x20;  // Read: highest pending. Write: EOI.
constexpr std::uint16_t kPortMask = 0x21;    // Write: mask vector <value>.
constexpr std::uint16_t kPortUnmask = 0x22;  // Write: unmask vector <value>.
constexpr std::uint16_t kPortRaise = 0x23;   // Write: software-raise (testing).
constexpr std::uint8_t kNoVector = 0xff;
}  // namespace vpic

class VPic : public DeviceModel {
 public:
  // `kick` is invoked whenever a vector becomes deliverable (the VMM
  // recalls the virtual CPU to inject in a timely manner, §7.5).
  explicit VPic(std::function<void()> kick)
      : DeviceModel("vpic"), kick_(std::move(kick)) {}

  // Device-model side: raise a virtual interrupt.
  void Raise(std::uint8_t vector);

  // VMM injection side.
  bool HasDeliverable() const;
  std::uint8_t HighestDeliverable() const;  // kNoVector if none.
  // Mark `vector` as being injected: pending -> in-service.
  void BeginService(std::uint8_t vector);

  bool OwnsPort(std::uint16_t port) const override {
    return port >= vpic::kPortVector && port <= vpic::kPortRaise;
  }
  std::uint32_t PioRead(std::uint16_t port) override;
  void PioWrite(std::uint16_t port, std::uint32_t value) override;

  std::uint64_t raised() const { return raised_; }
  std::uint64_t injected() const { return injected_; }

  Status SaveState(sim::SnapWriter& w) const {
    w.U64(pending_);
    w.U64(in_service_);
    w.U64(masked_);
    w.U64(raised_);
    w.U64(injected_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    pending_ = r.U64();
    in_service_ = r.U64();
    masked_ = r.U64();
    raised_ = r.U64();
    injected_ = r.U64();
    return r.status();
  }

 private:
  // snapshot-x-list(VPic): pending_, in_service_, masked_, kick_,
  //   raised_, injected_
  std::uint64_t pending_ = 0;
  std::uint64_t in_service_ = 0;
  std::uint64_t masked_ = 0;
  std::function<void()> kick_;
  std::uint64_t raised_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace nova::vmm

#endif  // SRC_VMM_VPIC_H_
