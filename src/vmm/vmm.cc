#include "src/vmm/vmm.h"

#include <algorithm>
#include <vector>

namespace nova::vmm {
namespace {

using hv::mtd::kCr;
using hv::mtd::kGprAcdb;
using hv::mtd::kGprBsd;
using hv::mtd::kInj;
using hv::mtd::kQual;
using hv::mtd::kRflags;
using hv::mtd::kRip;
using hv::mtd::kSta;

// Per-event message transfer descriptors: each portal moves only the state
// its handler needs (§5.2, §7). The CPUID portal, for example, carries the
// general-purpose registers, instruction pointer and instruction length —
// the exact set the paper cites.
hv::Mtd PortalMtd(hv::Event event) {
  switch (event) {
    case hv::Event::kPio: return kGprAcdb | kGprBsd | kRip | kQual | kRflags | kInj;
    case hv::Event::kCpuid: return kGprAcdb | kRip | kRflags | kInj;
    case hv::Event::kHlt: return kSta | kRip | kRflags | kInj;
    case hv::Event::kMovCr: return kCr | kRip | kQual | kRflags | kInj;
    case hv::Event::kInvlpg: return kQual | kRip | kRflags | kInj;
    case hv::Event::kMmio:
      return kGprAcdb | kGprBsd | kRip | kQual | kCr | kRflags | kInj;
    case hv::Event::kIntrWindow: return kRflags | kInj;
    case hv::Event::kRecall: return kRflags | kInj | kSta;
    case hv::Event::kVmcall: return kGprAcdb | kRip | kQual | kRflags | kInj;
    case hv::Event::kError: return kRip | kQual | kSta | kRflags | kInj;
    case hv::Event::kCount: break;
  }
  return hv::mtd::kAll;
}

}  // namespace

Vmm::Vmm(hv::Hypervisor* hv, root::RootPartitionManager* root, VmmConfig config)
    : hv_(hv), root_(root), config_(std::move(config)) {
  // The VMM itself is an ordinary user domain created by the root PM; its
  // kernel-memory account bounds everything the kernel allocates for this
  // VM (the VM's domain is a pass-through child of it).
  vmm_pd_sel_ = root_->CreatePd(config_.name + "-vmm", /*is_vm=*/false, &vmm_pd_,
                                config_.kmem_quota_frames);
  if (vmm_pd_ == nullptr) {
    create_status_ = Status::kNoMem;  // Quota too small for the domain itself.
    return;
  }
  // Parent channel: a handle on the root domain so the VMM can push
  // capabilities up when requesting services (device assignment).
  root_handle_sel_ = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
  (void)hv_->Delegate(root_->pd(), vmm_pd_sel_,
                hv::Crd::Obj(hv::kSelOwnPd, 0, hv::perm::kDelegate),
                root_handle_sel_);

  // Guest-physical memory: granted root -> VMM (identity), later delegated
  // VMM -> VM at guest-physical 0. Power-of-two aligned so the whole guest
  // is one mapping-database node.
  const std::uint64_t pages = config_.guest_mem_bytes >> hw::kPageShift;
  if (config_.fixed_guest_base_page != 0) {
    // Restart over surviving guest RAM: the frames were returned to the
    // root when the crashed VMM's domains were destroyed; re-grant the same
    // identity range so guest-physical to host-physical stays constant.
    guest_base_page_ = root_->GrantMemoryAt(vmm_pd_sel_, config_.fixed_guest_base_page,
                                            pages, hv::perm::kRwx, config_.large_pages);
  } else {
    guest_base_page_ = root_->GrantMemory(vmm_pd_sel_, pages, ~0ull, hv::perm::kRwx,
                                          config_.large_pages, /*align_pow2=*/true);
  }

  vpic_ = std::make_unique<VPic>([this] { KickVcpus(); });
  vpit_ = std::make_unique<VPit>(
      &hv_->machine().events(), vpic_.get(),
      sim::EventQueue::OwnerToken("vmm." + config_.name + ".vpit"));
  vuart_ = std::make_unique<VUart>();
  vahci_ = std::make_unique<VAhci>(VAhci::Backend{
      .read_guest = [this](std::uint64_t gpa, void* out,
                           std::uint64_t len) { return ReadGuest(gpa, out, len); },
      .issue = [this](bool write, std::uint64_t lba, std::uint64_t sectors,
                      std::uint64_t buffer_gpa, std::uint64_t cookie) {
        return IssueDisk(write, lba, sectors, buffer_gpa, cookie);
      },
      .raise_irq = [this](std::uint8_t vector) { vpic_->Raise(vector); }});
  emulator_ = std::make_unique<InsnEmulator>(
      &hv_->machine().mem(), &cpu(),
      [this](std::uint64_t gpa) { return GpaToHpa(gpa); });
  models_ = {vpic_.get(), vpit_.get(), vuart_.get(), vahci_.get()};

  CreateVm();
}

Vmm::~Vmm() {
  if (hb_event_ != 0) {
    // Orphan any in-flight heartbeat event; Cancel on an already-fired id
    // is a harmless no-op.
    (void)hv_->machine().events().Cancel(hb_event_);
  }
}

std::uint64_t Vmm::HbOwner() const {
  return sim::EventQueue::OwnerToken("vmm." + config_.name + ".hb");
}

void Vmm::StartHeartbeat(sim::PicoSeconds period_ps, hw::PhysAddr hb_addr) {
  hb_period_ps_ = period_ps;
  hb_addr_ = hb_addr;
  hb_running_ = true;
  hv_->machine().events().RegisterRebinder(
      HbOwner(), [this](const sim::EventTag& tag) -> sim::EventQueue::Callback {
        if (tag.op != 1) {
          return nullptr;
        }
        return [this] { HeartbeatTick(); };
      });
  HeartbeatTick();
}

void Vmm::HeartbeatTick() {
  if (!hb_running_ || crashed_) {
    hb_event_ = 0;
    return;  // A dead VMM stops beating — that is the signal.
  }
  ++hb_count_;
  (void)hv_->machine().mem().Write(hb_addr_, &hb_count_, sizeof(hb_count_));
  hb_event_ = hv_->machine().events().ScheduleAfterTagged(
      hb_period_ps_, sim::EventTag{HbOwner(), /*op=*/1},
      [this] { HeartbeatTick(); });
}

std::uint64_t Vmm::GpaToHpa(std::uint64_t gpa) const {
  if (gpa >= config_.guest_mem_bytes) {
    return ~0ull;
  }
  return (guest_base_page_ << hw::kPageShift) + gpa;
}

bool Vmm::ReadGuest(std::uint64_t gpa, void* out, std::uint64_t len) const {
  const std::uint64_t hpa = GpaToHpa(gpa);
  if (hpa == ~0ull || gpa + len > config_.guest_mem_bytes) {
    return false;
  }
  return Ok(hv_->machine().mem().Read(hpa, out, len));
}

bool Vmm::WriteGuest(std::uint64_t gpa, const void* data, std::uint64_t len) {
  const std::uint64_t hpa = GpaToHpa(gpa);
  if (hpa == ~0ull || gpa + len > config_.guest_mem_bytes) {
    return false;
  }
  return Ok(hv_->machine().mem().Write(hpa, data, len));
}

void Vmm::InstallImage(const hw::isa::Assembler& as, std::uint64_t gpa_base) {
  const std::uint64_t gpa = gpa_base == ~0ull ? as.base() : gpa_base;
  WriteGuest(gpa, as.bytes().data(), as.bytes().size());
}

void Vmm::CreateVm() {
  // VM protection domain.
  vm_pd_sel_ = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
  if (!NoteStatus(
          hv_->CreatePd(vmm_pd_, vm_pd_sel_, config_.name, /*is_vm=*/true, &vm_pd_))) {
    return;
  }

  // Guest-physical memory: delegate the whole (power-of-two) range in
  // chunks, with superpage host mappings when configured (§8.1).
  const std::uint64_t pages = config_.guest_mem_bytes >> hw::kPageShift;
  const std::uint64_t large_pages =
      hw::LargePageSize(hv_->machine().cpu(0).model().host_paging) / hw::kPageSize;
  std::uint64_t remaining = pages;
  std::uint64_t src = guest_base_page_;
  std::uint64_t dst = 0;
  while (remaining > 0) {
    std::uint8_t order = 0;
    while ((2ull << order) <= remaining && (src & ((2ull << order) - 1)) == 0 &&
           (dst & ((2ull << order) - 1)) == 0) {
      ++order;
    }
    const std::uint64_t chunk = 1ull << order;
    const bool chunk_large = config_.large_pages && chunk % large_pages == 0;
    NoteStatus(hv_->Delegate(vmm_pd_, vm_pd_sel_,
                             hv::Crd::Mem(src, order, hv::perm::kRwx), dst, 0xff,
                             chunk_large));
    src += chunk;
    dst += chunk;
    remaining -= chunk;
  }

  // Virtual CPUs, their handler ECs and event portals.
  for (std::uint32_t v = 0; v < config_.num_vcpus; ++v) {
    const std::uint32_t cpu_id = config_.first_cpu + v;
    const hv::CapSel handler_sel = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
    hv::Ec* handler = nullptr;
    if (!NoteStatus(hv_->CreateEcLocal(vmm_pd_, handler_sel, hv::kSelOwnPd, cpu_id,
                                       [this](std::uint64_t id) {
                                         HandleExit(static_cast<std::uint32_t>(id >> 8),
                                                    static_cast<hv::Event>(id & 0xff));
                                       },
                                       &handler))) {
      return;
    }
    handler_ecs_.push_back(handler);
    in_exit_.push_back(false);

    const hv::CapSel evt_base = 0x100 + v * 0x10;  // In the VM's cap space.
    const hv::CapSel vcpu_sel = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
    hv::Ec* vcpu = nullptr;
    if (!NoteStatus(
            hv_->CreateVcpu(vmm_pd_, vcpu_sel, vm_pd_sel_, cpu_id, evt_base, &vcpu))) {
      return;
    }
    vcpus_.push_back(vcpu);
    vcpu_sels_.push_back(vcpu_sel);

    for (std::uint32_t e = 0; e < hv::kNumEvents; ++e) {
      const auto event = static_cast<hv::Event>(e);
      const hv::CapSel pt_sel = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
      const hv::Mtd m =
          config_.full_state_transfer
              ? (hv::mtd::kAll & ~hv::mtd::kTlbFlush)
              : PortalMtd(event);
      if (!NoteStatus(hv_->CreatePt(vmm_pd_, pt_sel, handler_sel, m,
                                    (static_cast<std::uint64_t>(v) << 8) | e))) {
        return;
      }
      NoteStatus(hv_->Delegate(vmm_pd_, vm_pd_sel_,
                               hv::Crd::Obj(pt_sel, 0, hv::perm::kCall), evt_base + e));
    }

    // Execution controls per configuration.
    hw::VmControls& ctl = vcpu->ctl();
    if (config_.mode == hw::TranslationMode::kShadow) {
      ctl.mode = hw::TranslationMode::kShadow;
      ctl.nested_root = 0;  // Kernel allocates the shadow table.
      ctl.intercept_cr3 = true;
      ctl.intercept_invlpg = true;
    }
    if (config_.disable_intercepts) {
      ctl.intercept_cpuid = false;
      ctl.intercept_hlt = false;
      ctl.intercept_vmcall = false;
    }
    ctl.direct_interrupts = config_.direct_interrupts;
  }
}

Status Vmm::Start(std::uint64_t entry_rip, std::uint32_t vcpu) {
  if (!Ok(create_status_) || vcpu >= vcpus_.size()) {
    return Ok(create_status_) ? Status::kBadParameter : create_status_;
  }
  gstate(vcpu).rip = entry_rip;
  const hv::CapSel sc_sel = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
  const Status s =
      hv_->CreateSc(vmm_pd_, sc_sel, vcpu_sels_[vcpu], config_.prio, config_.quantum);
  NoteStatus(s);
  return s;
}

hv::CapSel Vmm::ExposeVmToRoot() {
  if (vm_sel_in_root_ != hv::kInvalidSel) {
    return vm_sel_in_root_;
  }
  // The root holds the VMM's pd cap; for grants into the *VM*, the root
  // needs a capability to the VM pd, which the VMM delegates up through
  // its parent channel.
  vm_sel_in_root_ = root_->FreeSel();
  (void)hv_->Delegate(vmm_pd_, root_handle_sel_,
                hv::Crd::Obj(vm_pd_sel_, 0, hv::perm::kAll), vm_sel_in_root_);
  return vm_sel_in_root_;
}

Status Vmm::GrantGuestPorts(std::uint16_t base, std::uint8_t order) {
  return hv_->Delegate(root_->pd(), ExposeVmToRoot(), hv::Crd::Io(base, order),
                       base);
}

Status Vmm::AssignHostDevice(const std::string& name, std::uint8_t vector,
                             std::uint64_t gpa_page) {
  // Map the device window into the VM and attach its DMA context to the
  // VM's page table, so the device's DMA is translated guest-physical to
  // host-physical by the IOMMU (§8.2, "Direct").
  const hv::CapSel vm_sel_in_root = ExposeVmToRoot();
  const Status s = root_->AssignDevice(vm_sel_in_root, name, gpa_page);
  if (!Ok(s)) {
    return s;
  }
  // The device interrupt goes to a VMM interrupt thread which forwards it
  // onto the virtual interrupt controller ("Direct" still pays interrupt
  // virtualization, §8.2/8.3).
  const root::DeviceInfo* dev = root_->FindDevice(name);
  if (dev != nullptr && dev->gsi != ~0u) {
    if (config_.direct_interrupts) {
      // Idealized zero-exit configuration: interrupts delivered straight
      // into the guest (§8.1 "Direct" bar).
      const hv::CapSel vcpu_in_root = root_->FreeSel();
      (void)hv_->Delegate(vmm_pd_, root_handle_sel_,
                    hv::Crd::Obj(vcpu_sels_[0], 0, hv::perm::kAll), vcpu_in_root);
      return hv_->AssignGsiDirect(root_->pd(), vcpu_in_root, dev->gsi);
    }
    const hv::CapSel sm_sel = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
    (void)root_->BindInterrupt(vmm_pd_sel_, name, sm_sel, config_.first_cpu);
    // Interrupt thread: wait on the semaphore, raise the virtual vector.
    const hv::CapSel irq_ec_sel = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
    irq_ecs_storage_.push_back(nullptr);
    const std::size_t slot = irq_ecs_storage_.size() - 1;
    hv::Ec* irq_ec = nullptr;
    (void)hv_->CreateEcGlobal(vmm_pd_, irq_ec_sel, hv::kSelOwnPd, config_.first_cpu,
                        [this, sm_sel, vector, slot] {
                          hv::Ec* self = irq_ecs_storage_[slot];
                          if (hv_->SmDown(self, sm_sel, /*unmask_gsi=*/true) !=
                              hv::Hypervisor::DownResult::kAcquired) {
                            return;
                          }
                          vpic_->Raise(vector);
                        },
                        &irq_ec);
    irq_ecs_storage_[slot] = irq_ec;
    const hv::CapSel sc_sel = vmm_pd_->caps().FindFree(hv::kSelFirstFree);
    (void)hv_->CreateSc(vmm_pd_, sc_sel, irq_ec_sel, config_.prio + 10, 2'000'000);
  }
  return Status::kSuccess;
}

void Vmm::ConnectDiskServer(services::DiskServer* server) {
  disk_server_ = server;
  // Completion portal: handled by a dedicated local EC in the VMM domain;
  // the capability lives in the root's space so the root can broker it to
  // the server (channel setup is a control-plane operation).
  const hv::CapSel comp_ec_sel = root_->FreeSel();
  hv::Ec* comp_ec = nullptr;
  (void)hv_->CreateEcLocal(root_->pd(), comp_ec_sel, vmm_pd_sel_, config_.first_cpu,
                     [this](std::uint64_t) { OnDiskCompletion(); }, &comp_ec);
  comp_ec_ = comp_ec;
  const hv::CapSel comp_pt_sel = root_->FreeSel();
  (void)hv_->CreatePt(root_->pd(), comp_pt_sel, comp_ec_sel, 0, 0);

  const services::DiskServer::Channel ch =
      server->OpenChannel(vmm_pd_sel_, comp_pt_sel);
  disk_portal_ = ch.request_portal;
  disk_shared_page_ = ch.shared_page;
  disk_channel_id_ = ch.channel_id;
}

Status Vmm::IssueDisk(bool write, std::uint64_t lba, std::uint64_t sectors,
                      std::uint64_t buffer_gpa, std::uint64_t cookie) {
  if (disk_portal_ == hv::kInvalidSel) {
    return Status::kBadDevice;
  }
  const std::uint64_t bytes = sectors * hw::kSectorSize;
  if (GpaToHpa(buffer_gpa) == ~0ull ||
      buffer_gpa + bytes > config_.guest_mem_bytes) {
    return Status::kBadParameter;
  }
  const std::uint64_t first_page = GpaToHpa(buffer_gpa) >> hw::kPageShift;
  const std::uint64_t pages = (bytes + hw::kPageMask) >> hw::kPageShift;

  hv::Ec* ec = handler_ecs_[cur_vcpu_];
  hv::Utcb& u = ec->utcb();
  const hv::ArchState saved_arch = u.arch;  // The call reuses this UTCB.
  const hv::Mtd saved_mtd = u.mtd;
  u.untyped = 5;
  u.words[0] = write ? services::diskproto::kOpWrite : services::diskproto::kOpRead;
  u.words[1] = lba;
  u.words[2] = sectors;
  u.words[3] = first_page;
  u.words[4] = cookie;

  // Delegate the guest's DMA buffer to the driver on first use (§4.2: the
  // driver can then only reach the delegated buffers). The delegation is
  // cached: hot guest buffers are re-used request after request.
  std::uint8_t order = 0;
  while ((1ull << order) < pages) {
    ++order;
  }
  const std::uint64_t span_base = first_page & ~((1ull << order) - 1);
  bool need_delegate = false;
  for (std::uint64_t p = 0; p < (1ull << order); ++p) {
    if (!delegated_buffer_pages_.contains(span_base + p)) {
      need_delegate = true;
    }
  }
  u.num_typed = 0;
  if (need_delegate) {
    u.num_typed = 1;
    u.typed[0] = hv::TypedItem{hv::Crd::Mem(span_base, order, hv::perm::kRw),
                               span_base};
    for (std::uint64_t p = 0; p < (1ull << order); ++p) {
      delegated_buffer_pages_.insert(span_base + p);
    }
  }

  const Status call_status = hv_->Call(ec, disk_portal_);
  Status result = call_status;
  if (Ok(call_status) && u.untyped >= 1) {
    result = static_cast<Status>(u.words[0]);
  }
  u.arch = saved_arch;
  u.mtd = saved_mtd;
  return result;
}

void Vmm::OnDiskCompletion() {
  if (crashed_) {
    return;  // Completions for a dead VMM fall on the floor.
  }
  // Drain new completion records from the shared ring ("7) completed").
  hv::Utcb& u = comp_ec_->utcb();
  const std::uint32_t ring_head =
      u.untyped >= 2 ? static_cast<std::uint32_t>(u.words[1]) : disk_ring_tail_ + 1;
  hw::PhysMem& mem = hv_->machine().mem();
  const hw::PhysAddr ring = disk_shared_page_ << hw::kPageShift;
  constexpr std::uint32_t kRecords =
      hw::kPageSize / sizeof(services::DiskCompletionRecord);
  while (disk_ring_tail_ != ring_head) {
    services::DiskCompletionRecord rec{};
    (void)mem.Read(ring + (disk_ring_tail_ % kRecords) * sizeof(rec), &rec, sizeof(rec));
    ++disk_ring_tail_;
    cpu().Charge(config_.device_update);
    vahci_->OnCompletion(rec.cookie, static_cast<Status>(rec.status));
  }
  u.Clear();
}

DeviceModel* Vmm::RouteGpa(std::uint64_t gpa) {
  for (DeviceModel* m : models_) {
    if (m->OwnsGpa(gpa)) {
      return m;
    }
  }
  return nullptr;
}

DeviceModel* Vmm::RoutePort(std::uint16_t port) {
  for (DeviceModel* m : models_) {
    if (m->OwnsPort(port)) {
      return m;
    }
  }
  return nullptr;
}

void Vmm::HandleExit(std::uint32_t vcpu, hv::Event event) {
  cur_vcpu_ = vcpu;
  in_exit_[vcpu] = true;
  ++exits_handled_;
  hv::ArchState& arch = handler_ecs_[vcpu]->utcb().arch;

  if (fault_plan_ != nullptr &&
      fault_plan_->ShouldFault(sim::FaultKind::kVmmCrash, config_.name)) {
    Crash();
  }
  if (crashed_) {
    // A dead monitor answers no exits: the vCPU parks until the supervisor
    // tears this domain down and restarts the VM under a fresh VMM.
    arch.halted = true;
    in_exit_[vcpu] = false;
    return;
  }

  switch (event) {
    case hv::Event::kPio: OnPio(arch); break;
    case hv::Event::kCpuid: OnCpuid(arch); break;
    case hv::Event::kHlt: OnHlt(arch); break;
    case hv::Event::kMmio: OnMmio(arch); break;
    case hv::Event::kIntrWindow: OnIntrWindow(arch); break;
    case hv::Event::kRecall: OnRecall(arch); break;
    case hv::Event::kVmcall: OnVmcall(arch); break;
    case hv::Event::kMovCr:
    case hv::Event::kInvlpg:
      // Only intercepted under shadow paging, where the kernel's vTLB
      // handles them; reaching the VMM means a configuration error.
      arch.rip += arch.insn_len;
      break;
    case hv::Event::kError:
      OnError(arch);
      break;
    case hv::Event::kCount:
      break;
  }

  // Deliver any pending virtual interrupt with the reply (§7.5).
  if (event != hv::Event::kError) {
    TryDeliver(arch);
  }
  in_exit_[vcpu] = false;
}

void Vmm::OnPio(hv::ArchState& arch) {
  cpu().Charge(config_.pio_dispatch);
  const auto port = static_cast<std::uint16_t>(arch.qual & 0xffff);
  const bool is_write = (arch.qual >> 24) & 1;
  const auto reg = static_cast<std::uint8_t>((arch.qual >> 25) & 0x7);
  DeviceModel* model = RoutePort(port);
  cpu().Charge(config_.device_update);
  if (is_write) {
    if (model != nullptr) {
      (void)model->PioWrite(port, static_cast<std::uint32_t>(arch.regs[reg]));
    }
  } else {
    arch.regs[reg] = model != nullptr ? model->PioRead(port) : ~0u;
  }
  arch.rip += arch.insn_len;
}

void Vmm::OnCpuid(hv::ArchState& arch) {
  cpu().Charge(config_.cpuid_emulate);
  // Emulated identification: hypervisor-present bit and a NOVA signature.
  arch.regs[0] = 0x0000'0001;
  arch.regs[1] = 0x4e4f'5641;  // "NOVA"
  arch.regs[2] = 0x8000'0000 | (config_.num_vcpus << 8);
  arch.regs[3] = 0x0178'bfbf;
  arch.rip += arch.insn_len;
}

void Vmm::OnHlt(hv::ArchState& arch) {
  cpu().Charge(config_.hlt_handle);
  if (vpic_->HasDeliverable() && arch.interrupts_enabled) {
    arch.halted = false;  // TryDeliver injects below.
  } else {
    arch.halted = true;  // Park until the next event (completion/recall).
  }
}

void Vmm::OnMmio(hv::ArchState& arch) {
  cpu().Charge(config_.mmio_dispatch);
  const InsnEmulator::Result r = emulator_->EmulateMmio(
      arch,
      [this](std::uint64_t gpa, unsigned size) -> std::uint64_t {
        cpu().Charge(config_.device_update);
        DeviceModel* m = RouteGpa(gpa);
        return m != nullptr ? m->MmioRead(gpa, size) : ~0ull;
      },
      [this](std::uint64_t gpa, unsigned size, std::uint64_t value) {
        cpu().Charge(config_.device_update);
        DeviceModel* m = RouteGpa(gpa);
        if (m != nullptr) {
          (void)m->MmioWrite(gpa, size, value);
        }
      });
  switch (r) {
    case InsnEmulator::Result::kOk:
      break;
    case InsnEmulator::Result::kInjectPf:
      arch.inject_pending = true;
      arch.inject_vector = hw::kVectorPageFault;
      break;
    case InsnEmulator::Result::kUnsupported:
      arch.halted = true;  // Would be a guest-visible machine check.
      break;
  }
}

void Vmm::OnIntrWindow(hv::ArchState& arch) {
  arch.request_intr_window = false;  // TryDeliver re-arms if still needed.
}

void Vmm::OnRecall(hv::ArchState& arch) {
  if (vpic_->HasDeliverable()) {
    arch.halted = false;  // Wake a parked vCPU for injection.
  }
}

void Vmm::OnVmcall(hv::ArchState& arch) {
  // The virtual BIOS is integrated with the VMM (§7.4): firmware services
  // run here, with direct access to the device models — no per-operation
  // round trips into the virtual machine.
  cpu().Charge(config_.device_update);
  switch (arch.qual) {
    case 1:  // putchar(r1)
      (void)vuart_->PioWrite(vuart::kData, static_cast<std::uint32_t>(arch.regs[1]));
      arch.regs[0] = 0;
      break;
    case 2: {  // disk read: lba=r1, sectors=r2, dest gpa=r3
      if (boot_disk_ == nullptr) {
        arch.regs[0] = static_cast<std::uint64_t>(Status::kBadDevice);
        break;
      }
      const std::uint64_t bytes = arch.regs[2] * hw::kSectorSize;
      std::vector<std::uint8_t> buf(bytes);
      boot_disk_->ReadContent(arch.regs[1] * hw::kSectorSize, buf.data(), bytes);
      WriteGuest(arch.regs[3], buf.data(), bytes);
      cpu().Charge(bytes / 8 * cpu().model().word_copy);
      arch.regs[0] = 0;
      break;
    }
    case 3:  // memory size
      arch.regs[1] = config_.guest_mem_bytes;
      arch.regs[0] = 0;
      break;
    case 4: {  // Paravirtual console: write r2 bytes from guest VA r1.
      // An "enlightened" guest batches console output in one hypercall
      // instead of one port exit per character (§4's paravirtualization
      // remark). The VMM fetches the buffer through the guest's own page
      // tables, like any other guest-memory access.
      const std::uint64_t len = std::min<std::uint64_t>(arch.regs[2], 4096);
      std::vector<char> buf(len);
      if (emulator_->ReadGuestVirt(arch, arch.regs[1], buf.data(), len)) {
        for (const char c : buf) {
          (void)vuart_->PioWrite(vuart::kData, static_cast<std::uint8_t>(c));
        }
        cpu().Charge(len / 8 * cpu().model().word_copy);
        arch.regs[0] = 0;
      } else {
        arch.regs[0] = static_cast<std::uint64_t>(Status::kMemoryFault);
      }
      break;
    }
    default:
      arch.regs[0] = static_cast<std::uint64_t>(Status::kBadHypercall);
      break;
  }
  arch.rip += arch.insn_len;
}

void Vmm::OnError(hv::ArchState& arch) {
  arch.halted = true;  // A crashed guest only takes down its own VM (§4.2).
}

void Vmm::TryDeliver(hv::ArchState& arch) {
  cpu().Charge(config_.inject_decide);
  if (!vpic_->HasDeliverable()) {
    return;
  }
  if (arch.interrupts_enabled && !arch.inject_pending) {
    const std::uint8_t vector = vpic_->HighestDeliverable();
    vpic_->BeginService(vector);
    arch.inject_pending = true;
    arch.inject_vector = vector;
    arch.halted = false;
    ++injected_;
  } else if (!arch.interrupts_enabled) {
    arch.request_intr_window = true;  // Exit when the guest re-enables.
  }
}

void Vmm::KickVcpus() {
  for (std::uint32_t v = 0; v < vcpus_.size(); ++v) {
    if (in_exit_[v]) {
      continue;  // Delivered with the in-flight reply.
    }
    (void)hv_->Recall(vmm_pd_, vcpu_sels_[v]);
  }
}

Status Vmm::SaveState(sim::SnapWriter& w) const {
  // Construction-determined identity, verified on load.
  w.U64(guest_base_page_);
  w.U32(static_cast<std::uint32_t>(vcpus_.size()));

  w.U64(exits_handled_);
  w.U64(injected_);
  w.U32(cur_vcpu_);
  for (const bool b : in_exit_) {
    w.Bool(b);
  }
  w.U32(disk_ring_tail_);
  // nova-lint: allow(determinism) -- drained into a vector and sorted
  std::vector<std::uint64_t> delegated(delegated_buffer_pages_.begin(),
                                       delegated_buffer_pages_.end());
  std::sort(delegated.begin(), delegated.end());
  w.U32(static_cast<std::uint32_t>(delegated.size()));
  for (const std::uint64_t p : delegated) {
    w.U64(p);
  }
  w.Bool(crashed_);
  w.U64(hb_count_);
  w.Bool(hb_running_);
  w.U64(hb_period_ps_);
  w.U64(hb_addr_);
  w.U64(hb_event_);

  Status st = vpic_->SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  st = vpit_->SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  st = vuart_->SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  return vahci_->SaveState(w);
}

Status Vmm::LoadState(sim::SnapReader& r) {
  if (r.U64() != guest_base_page_ ||
      r.U32() != static_cast<std::uint32_t>(vcpus_.size())) {
    r.Fail();  // Twin was built from a different scenario.
  }
  exits_handled_ = r.U64();
  injected_ = r.U64();
  cur_vcpu_ = r.U32();
  for (std::size_t v = 0; v < in_exit_.size(); ++v) {
    in_exit_[v] = r.Bool();
  }
  disk_ring_tail_ = r.U32();
  delegated_buffer_pages_.clear();
  const std::uint32_t n_delegated = r.U32();
  for (std::uint32_t i = 0; i < n_delegated && r.ok(); ++i) {
    delegated_buffer_pages_.insert(r.U64());
  }
  crashed_ = r.Bool();
  hb_count_ = r.U64();
  hb_running_ = r.Bool();
  hb_period_ps_ = r.U64();
  hb_addr_ = r.U64();
  hb_event_ = r.U64();

  Status st = vpic_->LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = vpit_->LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = vuart_->LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = vahci_->LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  return r.status();
}

}  // namespace nova::vmm
