// Virtual interval timer.
//
// The guest programs a periodic tick through two port writes; the VMM arms
// a host timeout and raises the timer vector at the virtual interrupt
// controller on every expiry — the "hardware timer" interrupt source of
// Table 2.
#ifndef SRC_VMM_VPIT_H_
#define SRC_VMM_VPIT_H_

#include <cstdint>

#include "src/sim/event_queue.h"
#include "src/sim/snapshot.h"
#include "src/vmm/device_model.h"
#include "src/vmm/vpic.h"

namespace nova::vmm {

namespace vpit {
constexpr std::uint16_t kPortPeriodLo = 0x40;  // Microseconds, low 16 bits.
constexpr std::uint16_t kPortPeriodHi = 0x41;  // High 16 bits; write starts.
constexpr std::uint16_t kPortControl = 0x43;   // Write 0: stop.
constexpr std::uint8_t kVector = 32;           // Timer interrupt vector.
}  // namespace vpit

class VPit : public DeviceModel {
 public:
  // `owner` is the event-queue owner token ("vmm.<name>.vpit") under which
  // tick events are tagged; the rebinder registered here restores pending
  // ticks across a snapshot (stale generations are dropped on fire, exactly
  // like the live path).
  VPit(sim::EventQueue* events, VPic* vpic, std::uint64_t owner);
  ~VPit() override { ++generation_; }

  bool OwnsPort(std::uint16_t port) const override {
    return port >= vpit::kPortPeriodLo && port <= vpit::kPortControl;
  }
  std::uint32_t PioRead(std::uint16_t port) override;
  void PioWrite(std::uint16_t port, std::uint32_t value) override;

  std::uint64_t ticks() const { return ticks_; }
  bool running() const { return period_ != 0; }

  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  void Arm();
  void Tick();

  // snapshot-x-list(VPit): events_, vpic_, owner_, period_, period_lo_,
  //   generation_, ticks_
  sim::EventQueue* events_;
  VPic* vpic_;
  std::uint64_t owner_;
  sim::PicoSeconds period_ = 0;
  std::uint16_t period_lo_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace nova::vmm

#endif  // SRC_VMM_VPIT_H_
