// Virtual AHCI SATA controller (§8.2).
//
// Register-compatible with the host controller model: the same guest
// driver binary runs against the real device (direct assignment) and this
// model (full virtualization). The backend routes issued commands to the
// user-level disk server; DMA is performed by the *host* controller
// directly into the guest's buffers, so the model never copies payload
// data (§8.2: "eliminates the need for copying the data").
#ifndef SRC_VMM_VAHCI_H_
#define SRC_VMM_VAHCI_H_

#include <cstdint>
#include <functional>

#include "src/hw/ahci.h"
#include "src/sim/snapshot.h"
#include "src/sim/status.h"
#include "src/vmm/device_model.h"

namespace nova::vmm {

namespace vahci {
constexpr std::uint64_t kMmioBase = 0xfe00'0000;
constexpr std::uint64_t kMmioSize = 0x1000;
constexpr std::uint8_t kVector = 43;  // Virtual interrupt vector.
}  // namespace vahci

class VAhci : public DeviceModel {
 public:
  struct Backend {
    // Read guest-physical memory (command structures).
    std::function<bool(std::uint64_t gpa, void* out, std::uint64_t len)> read_guest;
    // Submit to the host disk path. `buffer_gpa` is where the host device
    // will DMA directly. `cookie` comes back through OnCompletion.
    std::function<Status(bool write, std::uint64_t lba, std::uint64_t sectors,
                         std::uint64_t buffer_gpa, std::uint64_t cookie)>
        issue;
    std::function<void(std::uint8_t vector)> raise_irq;
  };

  explicit VAhci(Backend backend) : DeviceModel("vahci"), backend_(std::move(backend)) {}

  bool OwnsGpa(std::uint64_t gpa) const override {
    return gpa >= vahci::kMmioBase && gpa < vahci::kMmioBase + vahci::kMmioSize;
  }
  std::uint64_t MmioRead(std::uint64_t gpa, unsigned size) override;
  void MmioWrite(std::uint64_t gpa, unsigned size, std::uint64_t value) override;

  // Host completion arrived for `cookie` (the slot number). A non-success
  // status surfaces to the guest as a task-file error on that slot, with
  // the slot recorded in the vendor error register (kPxVs) for the guest
  // driver's retry path.
  void OnCompletion(std::uint64_t cookie, Status status = Status::kSuccess);

  // Post-restart recovery: report every slot in `mask` as errored so the
  // guest driver re-issues the commands that were in flight when the old
  // VMM (and with it the old controller state) went down.
  void InjectAbort(std::uint32_t mask);

  // Guest-programmed control registers, checkpointed by the supervisor and
  // restored into the replacement VMM's controller model — the resumed
  // guest does not re-run its driver bring-up code.
  struct Regs {
    std::uint32_t ghc = 0;
    std::uint32_t px_clb = 0;
    std::uint32_t px_ie = 0;
    std::uint32_t px_cmd = 0;
  };
  Regs SaveRegs() const { return Regs{ghc_, px_clb_, px_ie_, px_cmd_}; }
  void RestoreRegs(const Regs& r) {
    ghc_ = r.ghc;
    px_clb_ = r.px_clb;
    px_ie_ = r.px_ie;
    px_cmd_ = r.px_cmd;
  }

  std::uint64_t commands_issued() const { return issued_; }
  std::uint64_t commands_completed() const { return completed_; }
  std::uint64_t commands_errored() const { return errored_; }
  std::uint32_t error_slots() const { return error_slots_; }

  Status SaveState(sim::SnapWriter& w) const {
    w.U32(ghc_);
    w.U32(is_);
    w.U32(px_clb_);
    w.U32(px_is_);
    w.U32(px_ie_);
    w.U32(px_cmd_);
    w.U32(px_ci_);
    w.U32(error_slots_);
    w.U64(issued_);
    w.U64(completed_);
    w.U64(errored_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    ghc_ = r.U32();
    is_ = r.U32();
    px_clb_ = r.U32();
    px_is_ = r.U32();
    px_ie_ = r.U32();
    px_cmd_ = r.U32();
    px_ci_ = r.U32();
    error_slots_ = r.U32();
    issued_ = r.U64();
    completed_ = r.U64();
    errored_ = r.U64();
    return r.status();
  }

 private:
  void IssueSlot(int slot);
  void FailSlot(int slot);
  void UpdateIrq();

  // snapshot-x-list(VAhci): backend_, ghc_, is_, px_clb_, px_is_, px_ie_,
  //   px_cmd_, px_ci_, error_slots_, issued_, completed_, errored_
  Backend backend_;
  std::uint32_t ghc_ = 0;
  std::uint32_t is_ = 0;
  std::uint32_t px_clb_ = 0;
  std::uint32_t px_is_ = 0;
  std::uint32_t px_ie_ = 0;
  std::uint32_t px_cmd_ = 0;
  std::uint32_t px_ci_ = 0;
  std::uint32_t error_slots_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t errored_ = 0;
};

}  // namespace nova::vmm

#endif  // SRC_VMM_VAHCI_H_
