// VMM instruction emulator (§7.1).
//
// When the guest touches unmapped guest-physical memory (a device region),
// the hardware reports only the fault address and instruction pointer. The
// VMM therefore fetches the opcode bytes from the guest's instruction
// pointer — walking the guest's own page tables in software — decodes the
// instruction to find its length and operands, fetches memory operands,
// executes against the virtual-device router, writes results back to the
// register file and advances the instruction pointer. Exceptions during
// emulation (e.g. an unmapped fetch) are fixed up by injecting the fault
// into the guest.
#ifndef SRC_VMM_EMULATOR_H_
#define SRC_VMM_EMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/hw/cpu.h"
#include "src/hw/isa.h"
#include "src/hw/phys_mem.h"
#include "src/hv/utcb.h"

namespace nova::vmm {

class InsnEmulator {
 public:
  // Emulation cycle costs (the dominant share of MMIO-exit handling, §8.5).
  struct Costs {
    sim::Cycles fetch = 120;       // Locate and read the opcode bytes.
    sim::Cycles walk_level = 24;   // One guest page-table level.
    sim::Cycles decode = 160;      // Length + operand decoding.
    sim::Cycles execute = 90;      // Register writeback, rip advance.
  };

  // `gpa_to_hpa` returns the host-physical address backing a guest-physical
  // address, or ~0 when the address is not guest RAM.
  InsnEmulator(hw::PhysMem* mem, hw::Cpu* cpu,
               std::function<std::uint64_t(std::uint64_t)> gpa_to_hpa)
      : mem_(mem), cpu_(cpu), gpa_to_hpa_(std::move(gpa_to_hpa)) {}

  void set_costs(const Costs& costs) { costs_ = costs; }

  enum class Result : std::uint8_t {
    kOk,           // Emulated; arch state updated.
    kInjectPf,     // Deliver #PF to the guest (arch.cr2 set).
    kUnsupported,  // Not an instruction this emulator handles.
  };

  using MmioRead = std::function<std::uint64_t(std::uint64_t gpa, unsigned size)>;
  using MmioWrite = std::function<void(std::uint64_t gpa, unsigned size,
                                       std::uint64_t value)>;

  // Emulate the instruction at arch.rip, which faulted accessing device
  // memory. Routes the access through `read`/`write`.
  Result EmulateMmio(hv::ArchState& arch, const MmioRead& read,
                     const MmioWrite& write);

  // Software walk of the guest's two-level page table: gva -> gpa.
  // Returns false on a guest page fault.
  bool WalkGuest(const hv::ArchState& arch, std::uint64_t gva, bool is_write,
                 std::uint64_t* gpa);

  // Read guest-virtual memory (walk + physical read). False on fault.
  bool ReadGuestVirt(const hv::ArchState& arch, std::uint64_t gva, void* out,
                     std::uint64_t len);

  std::uint64_t emulated() const { return emulated_; }

 private:
  hw::PhysMem* mem_;
  hw::Cpu* cpu_;
  std::function<std::uint64_t(std::uint64_t)> gpa_to_hpa_;
  Costs costs_;
  std::uint64_t emulated_ = 0;
};

}  // namespace nova::vmm

#endif  // SRC_VMM_EMULATOR_H_
