// Virtual serial port: the guest console. Output bytes are collected so
// tests and examples can assert on what the guest printed.
#ifndef SRC_VMM_VUART_H_
#define SRC_VMM_VUART_H_

#include <cstdint>
#include <string>

#include "src/sim/snapshot.h"
#include "src/sim/status.h"
#include "src/vmm/device_model.h"

namespace nova::vmm {

namespace vuart {
constexpr std::uint16_t kPortBase = 0x3f8;
constexpr std::uint16_t kData = 0x3f8;
constexpr std::uint16_t kLsr = 0x3fd;
constexpr std::uint32_t kLsrTxEmpty = 0x60;
}  // namespace vuart

class VUart : public DeviceModel {
 public:
  VUart() : DeviceModel("vuart") {}

  bool OwnsPort(std::uint16_t port) const override {
    return port >= vuart::kPortBase && port < vuart::kPortBase + 8;
  }
  std::uint32_t PioRead(std::uint16_t port) override {
    return port == vuart::kLsr ? vuart::kLsrTxEmpty : 0;
  }
  void PioWrite(std::uint16_t port, std::uint32_t value) override {
    if (port == vuart::kData) {
      output_.push_back(static_cast<char>(value & 0xff));
    }
  }

  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  Status SaveState(sim::SnapWriter& w) const {
    w.Str(output_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    output_ = r.Str();
    return r.status();
  }

 private:
  // snapshot-x-list(VUart): output_
  std::string output_;
};

}  // namespace nova::vmm

#endif  // SRC_VMM_VUART_H_
