// Virtual device base interface (§7.2).
//
// Each virtual device is a software state machine mimicking a hardware
// device. The VMM routes intercepted port accesses and decoded MMIO
// accesses to the owning model, which updates its state exactly as the
// real device would.
#ifndef SRC_VMM_DEVICE_MODEL_H_
#define SRC_VMM_DEVICE_MODEL_H_

#include <cstdint>
#include <string>

namespace nova::vmm {

class DeviceModel {
 public:
  explicit DeviceModel(std::string name) : name_(std::move(name)) {}
  virtual ~DeviceModel() = default;

  DeviceModel(const DeviceModel&) = delete;
  DeviceModel& operator=(const DeviceModel&) = delete;

  const std::string& name() const { return name_; }

  // Port-I/O interface.
  virtual bool OwnsPort(std::uint16_t /*port*/) const { return false; }
  virtual std::uint32_t PioRead(std::uint16_t /*port*/) { return ~0u; }
  virtual void PioWrite(std::uint16_t /*port*/, std::uint32_t /*value*/) {}

  // Memory-mapped interface (guest-physical addresses).
  virtual bool OwnsGpa(std::uint64_t /*gpa*/) const { return false; }
  virtual std::uint64_t MmioRead(std::uint64_t /*gpa*/, unsigned /*size*/) {
    return 0;
  }
  virtual void MmioWrite(std::uint64_t /*gpa*/, unsigned /*size*/,
                         std::uint64_t /*value*/) {}

 private:
  std::string name_;
};

}  // namespace nova::vmm

#endif  // SRC_VMM_DEVICE_MODEL_H_
