#include "src/vmm/emulator.h"

namespace nova::vmm {

bool InsnEmulator::WalkGuest(const hv::ArchState& arch, std::uint64_t gva,
                             bool is_write, std::uint64_t* gpa) {
  if (!arch.paging) {
    *gpa = gva;
    return true;
  }
  std::uint64_t table_gpa = arch.cr3;
  for (int level = 1; level >= 0; --level) {
    cpu_->Charge(costs_.walk_level);
    const int shift = 12 + 10 * level;
    const std::uint64_t index = (gva >> shift) & 0x3ff;
    const std::uint64_t entry_hpa = gpa_to_hpa_(table_gpa + index * 4);
    if (entry_hpa == ~0ull) {
      return false;  // Guest table outside guest RAM.
    }
    const std::uint32_t entry = mem_->Read32(entry_hpa);
    if (!(entry & hw::pte::kPresent)) {
      return false;
    }
    if (is_write && !(entry & hw::pte::kWritable)) {
      return false;
    }
    const bool leaf = level == 0 || (entry & hw::pte::kLarge) != 0;
    if (leaf) {
      const std::uint64_t page = level == 0 ? hw::kPageSize : (4ull << 20);
      *gpa = (entry & hw::pte::kAddrMask & ~(page - 1)) | (gva & (page - 1));
      return true;
    }
    table_gpa = entry & hw::pte::kAddrMask;
  }
  return false;
}

bool InsnEmulator::ReadGuestVirt(const hv::ArchState& arch, std::uint64_t gva,
                                 void* out, std::uint64_t len) {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    std::uint64_t gpa = 0;
    if (!WalkGuest(arch, gva, /*is_write=*/false, &gpa)) {
      return false;
    }
    const std::uint64_t hpa = gpa_to_hpa_(gpa);
    if (hpa == ~0ull) {
      return false;
    }
    const std::uint64_t chunk =
        std::min<std::uint64_t>(len, hw::kPageSize - (gva & hw::kPageMask));
    (void)mem_->Read(hpa, dst, chunk);
    gva += chunk;
    dst += chunk;
    len -= chunk;
  }
  return true;
}

InsnEmulator::Result InsnEmulator::EmulateMmio(hv::ArchState& arch,
                                               const MmioRead& read,
                                               const MmioWrite& write) {
  // 1. Fetch the opcode bytes from the guest instruction pointer.
  cpu_->Charge(costs_.fetch);
  std::uint8_t bytes[hw::isa::kInsnSize];
  if (!ReadGuestVirt(arch, arch.rip, bytes, sizeof(bytes))) {
    arch.cr2 = arch.rip;
    return Result::kInjectPf;
  }

  // 2. Decode.
  cpu_->Charge(costs_.decode);
  const hw::isa::Insn insn = hw::isa::Decode(bytes);

  // 3. Compute the effective address and execute against the device router.
  cpu_->Charge(costs_.execute);
  using hw::isa::Opcode;
  switch (insn.opcode) {
    case Opcode::kLoad: {
      const std::uint64_t gva =
          (insn.r2 != hw::isa::kNoReg ? arch.regs[insn.r2 & 7] : 0) + insn.imm64;
      std::uint64_t gpa = 0;
      if (!WalkGuest(arch, gva, /*is_write=*/false, &gpa)) {
        arch.cr2 = gva;
        return Result::kInjectPf;
      }
      arch.regs[insn.r1 & 7] = read(gpa, 8);
      break;
    }
    case Opcode::kStore: {
      const std::uint64_t gva =
          (insn.r2 != hw::isa::kNoReg ? arch.regs[insn.r2 & 7] : 0) + insn.imm64;
      std::uint64_t gpa = 0;
      if (!WalkGuest(arch, gva, /*is_write=*/true, &gpa)) {
        arch.cr2 = gva;
        return Result::kInjectPf;
      }
      write(gpa, 8, arch.regs[insn.r1 & 7]);
      break;
    }
    // Only plain loads and stores can fault into MMIO emulation; anything
    // else reaching here means the guest jumped into a device window, and
    // the VMM refuses rather than interpret it.
    case Opcode::kNopBlock:
    case Opcode::kMovImm:
    case Opcode::kAdd:
    case Opcode::kAnd:
    case Opcode::kCopy:
    case Opcode::kJmp:
    case Opcode::kJnz:
    case Opcode::kLoop:
    case Opcode::kOut:
    case Opcode::kIn:
    case Opcode::kCpuid:
    case Opcode::kHlt:
    case Opcode::kRdtsc:
    case Opcode::kMovCr3:
    case Opcode::kReadCr3:
    case Opcode::kReadCr2:
    case Opcode::kInvlpg:
    case Opcode::kSti:
    case Opcode::kCli:
    case Opcode::kIret:
    case Opcode::kSetIdt:
    case Opcode::kVmcall:
    case Opcode::kGuestLogic:
      return Result::kUnsupported;
    default:
      // Decode() passes raw bytes through, so a corrupted fetch can carry
      // a value outside the enum; those are equally unsupported.
      return Result::kUnsupported;
  }

  // 4. Writeback happened above; advance the instruction pointer.
  arch.rip += hw::isa::kInsnSize;
  ++emulated_;
  return Result::kOk;
}

}  // namespace nova::vmm
