#include "src/vmm/vahci.h"

#include <cstring>

namespace nova::vmm {

using hw::ahci::kNumSlots;

std::uint64_t VAhci::MmioRead(std::uint64_t gpa, unsigned /*size*/) {
  switch (gpa - vahci::kMmioBase) {
    case hw::ahci::kCap: return 0x1;
    case hw::ahci::kGhc: return ghc_;
    case hw::ahci::kIs: return is_;
    case hw::ahci::kPi: return 0x1;
    case hw::ahci::kPxClb: return px_clb_;
    case hw::ahci::kPxIs: return px_is_;
    case hw::ahci::kPxIe: return px_ie_;
    case hw::ahci::kPxCmd: return px_cmd_;
    case hw::ahci::kPxTfd: return 0x50;
    case hw::ahci::kPxSsts: return 0x123;
    case hw::ahci::kPxCi: return px_ci_;
    case hw::ahci::kPxVs: return error_slots_;
    default: return 0;
  }
}

void VAhci::MmioWrite(std::uint64_t gpa, unsigned /*size*/, std::uint64_t value) {
  const auto v = static_cast<std::uint32_t>(value);
  switch (gpa - vahci::kMmioBase) {
    case hw::ahci::kGhc:
      ghc_ = v;
      UpdateIrq();
      break;
    case hw::ahci::kIs:
      is_ &= ~v;
      break;
    case hw::ahci::kPxClb:
      px_clb_ = v & ~0x3ffu;
      break;
    case hw::ahci::kPxIs:
      px_is_ &= ~v;
      break;
    case hw::ahci::kPxIe:
      px_ie_ = v;
      break;
    case hw::ahci::kPxCmd:
      px_cmd_ = v;
      break;
    case hw::ahci::kPxCi:
      if ((px_cmd_ & hw::ahci::kPxCmdStart) == 0) {
        break;
      }
      for (int slot = 0; slot < kNumSlots; ++slot) {
        const std::uint32_t bit = 1u << slot;
        if ((v & bit) != 0 && (px_ci_ & bit) == 0) {
          px_ci_ |= bit;
          IssueSlot(slot);
        }
      }
      break;
    case hw::ahci::kPxVs:
      error_slots_ &= ~v;  // Write-1-clear.
      break;
    default:
      break;
  }
}

void VAhci::FailSlot(int slot) {
  px_is_ |= hw::ahci::kPxIsTfes;
  px_ci_ &= ~(1u << slot);
  error_slots_ |= 1u << slot;
  is_ |= 0x1;
  ++errored_;
  UpdateIrq();
}

void VAhci::IssueSlot(int slot) {
  auto fail = [&] { FailSlot(slot); };
  // Parse the guest's command header, FIS and PRDT (in guest memory).
  std::uint8_t header[32];
  if (!backend_.read_guest(px_clb_ + slot * 32ull, header, sizeof(header))) {
    fail();
    return;
  }
  std::uint32_t dw0 = 0;
  std::uint32_t ctba = 0;
  std::memcpy(&dw0, header + 0, 4);
  std::memcpy(&ctba, header + 8, 4);
  const bool write = (dw0 & (1u << 6)) != 0;
  const std::uint32_t prdtl = dw0 >> 16;

  std::uint8_t cfis[64];
  if (prdtl == 0 || !backend_.read_guest(ctba, cfis, sizeof(cfis)) ||
      cfis[0] != hw::ahci::kFisH2d) {
    fail();
    return;
  }
  std::uint64_t lba = 0;
  for (int i = 0; i < 6; ++i) {
    lba |= static_cast<std::uint64_t>(cfis[4 + i]) << (8 * i);
  }
  std::uint16_t sectors = 0;
  std::memcpy(&sectors, cfis + 12, 2);

  std::uint8_t prd[16];
  if (!backend_.read_guest(ctba + 0x80, prd, sizeof(prd))) {
    fail();
    return;
  }
  std::uint64_t buffer_gpa = 0;
  std::memcpy(&buffer_gpa, prd, 8);

  // Hand the request to the host disk path; the host controller DMAs
  // straight into the guest buffer.
  const Status s = backend_.issue(write, lba, sectors, buffer_gpa,
                                  static_cast<std::uint64_t>(slot));
  if (!Ok(s)) {
    fail();
    return;
  }
  ++issued_;
}

void VAhci::OnCompletion(std::uint64_t cookie, Status status) {
  const int slot = static_cast<int>(cookie);
  if (slot < 0 || slot >= kNumSlots || (px_ci_ & (1u << slot)) == 0) {
    return;
  }
  if (!Ok(status)) {
    FailSlot(slot);
    return;
  }
  px_ci_ &= ~(1u << slot);
  px_is_ |= hw::ahci::kPxIsDhrs;
  is_ |= 0x1;
  ++completed_;
  UpdateIrq();
}

void VAhci::InjectAbort(std::uint32_t mask) {
  if (mask == 0) {
    return;
  }
  px_is_ |= hw::ahci::kPxIsTfes;
  px_ci_ &= ~mask;
  error_slots_ |= mask;
  is_ |= 0x1;
  UpdateIrq();
}

void VAhci::UpdateIrq() {
  if ((ghc_ & hw::ahci::kGhcIntrEnable) != 0 && (px_is_ & px_ie_) != 0) {
    backend_.raise_irq(vahci::kVector);
  }
}

}  // namespace nova::vmm
