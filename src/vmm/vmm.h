// The user-level virtual-machine monitor (§7).
//
// One VMM instance per virtual machine, running as an ordinary untrusted
// protection domain on top of the microhypervisor. It creates the VM's
// protection domain and virtual CPUs, installs a VM-exit portal per event
// type with a tailored message transfer descriptor, emulates sensitive
// instructions and virtual devices, forwards disk requests to the
// user-level disk server, and injects virtual interrupts — recalling
// running virtual CPUs so injection is timely (§7.5).
#ifndef SRC_VMM_VMM_H_
#define SRC_VMM_VMM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/hv/kernel.h"
#include "src/hw/disk.h"
#include "src/hw/isa.h"
#include "src/sim/fault.h"
#include "src/root/root_pm.h"
#include "src/services/disk_server.h"
#include "src/vmm/emulator.h"
#include "src/vmm/vahci.h"
#include "src/vmm/vpic.h"
#include "src/vmm/vpit.h"
#include "src/vmm/vuart.h"

namespace nova::vmm {

struct VmmConfig {
  std::string name = "vm";
  std::uint64_t guest_mem_bytes = 64ull << 20;
  bool large_pages = true;  // Superpage host mappings (§8.1).
  hw::TranslationMode mode = hw::TranslationMode::kNested;
  // Zero-exit "Direct" configuration of §8.1: intercepts disabled and
  // interrupts delivered straight into the guest.
  bool disable_intercepts = false;
  bool direct_interrupts = false;
  std::uint32_t num_vcpus = 1;
  std::uint32_t first_cpu = 0;  // vCPU i runs on physical CPU first_cpu+i.
  // Transfer the full architectural state on every exit instead of the
  // per-event minimal set — what a monolithic hypervisor without portal
  // transfer descriptors does (baseline profiles).
  bool full_state_transfer = false;
  std::uint8_t prio = 1;
  sim::Cycles quantum = 10'000'000;

  // Kernel-memory quota for the VMM's protection domain (frames, donated
  // from the root's account). The VM's domain is a pass-through child, so
  // everything the kernel allocates on this VM's behalf — shadow page
  // tables, UTCB/VMCS frames, capability-space chunks — charges against
  // this bound. Unlimited by default.
  std::uint64_t kmem_quota_frames = hv::KmemQuota::kUnlimited;

  // Restart path: back the guest with this exact (already-allocated) frame
  // range instead of allocating fresh RAM. Guest memory survives a VMM
  // crash — only the monitor is rebuilt around it.
  std::uint64_t fixed_guest_base_page = 0;

  // VMM-side emulation costs (the ~59% share of exit handling, §8.5).
  sim::Cycles pio_dispatch = 360;
  sim::Cycles mmio_dispatch = 900;
  sim::Cycles device_update = 900;
  sim::Cycles cpuid_emulate = 270;
  sim::Cycles hlt_handle = 240;
  sim::Cycles inject_decide = 180;
};

class Vmm {
 public:
  Vmm(hv::Hypervisor* hv, root::RootPartitionManager* root, VmmConfig config);
  ~Vmm();

  // --- Guest memory -----------------------------------------------------
  std::uint64_t guest_mem_bytes() const { return config_.guest_mem_bytes; }
  // Host frame backing a guest-physical address; ~0 outside guest RAM.
  std::uint64_t GpaToHpa(std::uint64_t gpa) const;
  bool ReadGuest(std::uint64_t gpa, void* out, std::uint64_t len) const;
  bool WriteGuest(std::uint64_t gpa, const void* data, std::uint64_t len);

  // Place a guest program image (what the virtual BIOS's multiboot loader
  // does at the end of firmware boot, §7.4).
  void InstallImage(const hw::isa::Assembler& as, std::uint64_t gpa_base = ~0ull);

  // --- Backends ---------------------------------------------------------
  // Wire the virtual disk controller to the user-level disk server.
  void ConnectDiskServer(services::DiskServer* server);
  // Disk content for virtual-BIOS boot services (firmware-time reads go
  // through the VMM-integrated BIOS rather than the virtual controller).
  void SetBootDisk(hw::DiskModel* disk) { boot_disk_ = disk; }

  // Direct device assignment: map a host device's MMIO window into the
  // guest at `gpa_page` (or identity) and route its interrupt onto the
  // virtual interrupt controller as `vector`.
  Status AssignHostDevice(const std::string& name, std::uint8_t vector,
                          std::uint64_t gpa_page = ~0ull);

  // Push the VM's pd capability up to the root (cached); lets the root
  // broker further grants to the VM. Returns the selector in root's space.
  hv::CapSel ExposeVmToRoot();
  // Grant the guest direct access to a host I/O port range (root-brokered).
  Status GrantGuestPorts(std::uint16_t base, std::uint8_t order);

  // --- Control ----------------------------------------------------------
  // Start virtual CPU `i` at `entry` (creates its scheduling context).
  Status Start(std::uint64_t entry_rip, std::uint32_t vcpu = 0);

  // First hypercall failure observed while building the VM, or kSuccess. A VMM
  // whose construction ran out of kernel memory reports kNoMem here rather
  // than limping along with half a VM.
  Status create_status() const { return create_status_; }

  hw::GuestState& gstate(std::uint32_t vcpu = 0) { return vcpus_[vcpu]->gstate(); }
  hv::Ec* vcpu_ec(std::uint32_t vcpu = 0) { return vcpus_[vcpu]; }
  hv::Pd* vm_pd() { return vm_pd_; }
  hv::Pd* vmm_pd() { return vmm_pd_; }
  hv::CapSel vmm_pd_sel() const { return vmm_pd_sel_; }
  std::uint64_t guest_base_page() const { return guest_base_page_; }
  std::uint32_t disk_channel_id() const { return disk_channel_id_; }

  // --- Fault injection / crash recovery ----------------------------------
  // Arm the VMM against an external fault plan: a kVmmCrash fault scheduled
  // for this VMM's name makes the monitor stop handling exits, mimicking a
  // wild crash in the user-level VMM (§4.2's failure model: the VMM is
  // untrusted and its death must not take the system down).
  void SetFaultPlan(sim::FaultPlan* plan) { fault_plan_ = plan; }
  // Simulate the VMM process dying: exit handling stops (vCPUs park on
  // their next exit) and the heartbeat ceases, so a supervisor detects it.
  void Crash() { crashed_ = true; }
  bool crashed() const { return crashed_; }

  // Periodically write an incrementing counter to `hb_addr` (a host
  // physical address owned by the supervisor). Stops when the VMM crashes;
  // a stale counter is the supervisor's death signal.
  void StartHeartbeat(sim::PicoSeconds period_ps, hw::PhysAddr hb_addr);

  // --- Snapshot ----------------------------------------------------------
  // Mutable VMM-process state: exit/injection counters, the disk channel's
  // ring cursor and delegation cache, heartbeat state, and the four device
  // models. Everything wired at construction (domains, portals, selectors)
  // is rebuilt by the twin and verified, not restored.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

  // --- Device models ----------------------------------------------------
  VPic& vpic() { return *vpic_; }
  VPit& vpit() { return *vpit_; }
  VUart& vuart() { return *vuart_; }
  VAhci& vahci() { return *vahci_; }
  InsnEmulator& emulator() { return *emulator_; }

  std::uint64_t exits_handled() const { return exits_handled_; }
  std::uint64_t interrupts_injected() const { return injected_; }

 private:
  void CreateVm();
  // Latch the first hypercall failure during VM construction.
  bool NoteStatus(Status s) {
    if (Ok(create_status_) && !Ok(s)) {
      create_status_ = s;
    }
    return Ok(s);
  }
  void HandleExit(std::uint32_t vcpu, hv::Event event);

  // Exit handlers (operate on the handler EC's UTCB arch area).
  void OnPio(hv::ArchState& arch);
  void OnCpuid(hv::ArchState& arch);
  void OnHlt(hv::ArchState& arch);
  void OnMmio(hv::ArchState& arch);
  void OnIntrWindow(hv::ArchState& arch);
  void OnRecall(hv::ArchState& arch);
  void OnVmcall(hv::ArchState& arch);
  void OnError(hv::ArchState& arch);

  // Interrupt plumbing.
  void TryDeliver(hv::ArchState& arch);
  void KickVcpus();

  // Heartbeat event machinery (tagged "vmm.<name>.hb" for snapshots).
  std::uint64_t HbOwner() const;
  void HeartbeatTick();

  // Disk backend.
  Status IssueDisk(bool write, std::uint64_t lba, std::uint64_t sectors,
                   std::uint64_t buffer_gpa, std::uint64_t cookie);
  void OnDiskCompletion();

  DeviceModel* RouteGpa(std::uint64_t gpa);
  DeviceModel* RoutePort(std::uint16_t port);
  hw::Cpu& cpu() { return hv_->machine().cpu(config_.first_cpu); }

  // snapshot-x-list(Vmm): hv_, root_, config_, vmm_pd_, vmm_pd_sel_,
  //   root_handle_sel_, vm_sel_in_root_, vm_pd_, vm_pd_sel_,
  //   guest_base_page_, vcpus_, vcpu_sels_, handler_ecs_, in_exit_, vpic_,
  //   vpit_, vuart_, vahci_, emulator_, models_, disk_server_, disk_portal_,
  //   disk_shared_page_, disk_channel_id_, disk_ring_tail_,
  //   delegated_buffer_pages_, comp_ec_, irq_ecs_storage_, cur_vcpu_,
  //   boot_disk_, exits_handled_, injected_, create_status_, fault_plan_,
  //   crashed_, hb_count_, hb_running_, hb_period_ps_, hb_addr_, hb_event_
  hv::Hypervisor* hv_;
  root::RootPartitionManager* root_;
  VmmConfig config_;

  hv::Pd* vmm_pd_ = nullptr;
  hv::CapSel vmm_pd_sel_ = hv::kInvalidSel;  // In the root's space.
  hv::CapSel root_handle_sel_ = hv::kInvalidSel;  // Parent channel.
  hv::CapSel vm_sel_in_root_ = hv::kInvalidSel;   // Cached push-up.
  hv::Pd* vm_pd_ = nullptr;
  hv::CapSel vm_pd_sel_ = hv::kInvalidSel;   // In the VMM's space.
  std::uint64_t guest_base_page_ = 0;

  std::vector<hv::Ec*> vcpus_;
  std::vector<hv::CapSel> vcpu_sels_;        // In the VMM's space.
  std::vector<hv::Ec*> handler_ecs_;
  std::vector<bool> in_exit_;

  std::unique_ptr<VPic> vpic_;
  std::unique_ptr<VPit> vpit_;
  std::unique_ptr<VUart> vuart_;
  std::unique_ptr<VAhci> vahci_;
  std::unique_ptr<InsnEmulator> emulator_;
  std::vector<DeviceModel*> models_;

  // Disk server channel.
  services::DiskServer* disk_server_ = nullptr;
  hv::CapSel disk_portal_ = hv::kInvalidSel;  // Request portal (VMM space).
  std::uint64_t disk_shared_page_ = 0;
  std::uint32_t disk_channel_id_ = 0;
  std::uint32_t disk_ring_tail_ = 0;
  std::unordered_set<std::uint64_t> delegated_buffer_pages_;

  hv::Ec* comp_ec_ = nullptr;       // Disk-completion handler EC.
  std::vector<hv::Ec*> irq_ecs_storage_;  // Interrupt threads (direct devices).
  std::uint32_t cur_vcpu_ = 0;      // vCPU whose exit is being handled.

  hw::DiskModel* boot_disk_ = nullptr;
  std::uint64_t exits_handled_ = 0;
  std::uint64_t injected_ = 0;

  Status create_status_ = Status::kSuccess;
  sim::FaultPlan* fault_plan_ = nullptr;
  bool crashed_ = false;
  std::uint64_t hb_count_ = 0;
  bool hb_running_ = false;
  sim::PicoSeconds hb_period_ps_ = 0;
  hw::PhysAddr hb_addr_ = 0;
  sim::EventQueue::EventId hb_event_ = 0;  // Cancelled on destruction.
};

}  // namespace nova::vmm

#endif  // SRC_VMM_VMM_H_
