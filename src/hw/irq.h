// Platform interrupt fabric.
//
// Models an IOAPIC-style chip: devices assert global system interrupts
// (GSIs); the chip routes each enabled GSI to a destination CPU as a
// vector. Delivery is edge-style with a per-GSI mask bit — the
// microhypervisor masks a GSI on arrival and the user-level driver unmasks
// it after handling, exactly the flow the paper's drivers use.
#ifndef SRC_HW_IRQ_H_
#define SRC_HW_IRQ_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace nova::hw {

constexpr std::uint32_t kNumGsis = 64;
constexpr std::uint32_t kMaxCpus = 8;

class IrqChip {
 public:
  struct Route {
    bool enabled = false;
    bool masked = true;
    std::uint32_t cpu = 0;
    std::uint8_t vector = 0;
  };

  // Configuration (done by the microhypervisor).
  void Configure(std::uint32_t gsi, std::uint32_t cpu, std::uint8_t vector);
  void Mask(std::uint32_t gsi);
  void Unmask(std::uint32_t gsi);
  const Route& route(std::uint32_t gsi) const { return routes_[gsi]; }

  // Device side: assert a GSI (edge). If the route is enabled and unmasked,
  // the interrupt becomes pending at the destination CPU; a masked GSI
  // stays latched and fires on unmask.
  void Assert(std::uint32_t gsi);

  // CPU side: highest pending vector for `cpu`, if any.
  std::optional<std::uint8_t> PendingVector(std::uint32_t cpu) const;
  // Snapshot of all pending vectors (highest first) without consuming.
  std::vector<std::uint8_t> PendingVectors(std::uint32_t cpu) const;
  // Acknowledge (consume) a pending vector on `cpu`.
  void Acknowledge(std::uint32_t cpu, std::uint8_t vector);
  bool HasPending(std::uint32_t cpu) const;

  std::uint64_t asserted(std::uint32_t gsi) const { return assert_counts_[gsi]; }

  // Wires the machine's tracer in; interns the chip's event names once.
  void set_tracer(sim::Tracer* t);

  Status SaveState(sim::SnapWriter& w) const {
    for (const Route& rt : routes_) {
      w.Bool(rt.enabled);
      w.Bool(rt.masked);
      w.U32(rt.cpu);
      w.U8(rt.vector);
    }
    for (const bool l : latched_) {
      w.Bool(l);
    }
    for (const auto& cpu_bits : pending_) {
      for (const std::uint64_t word : cpu_bits) {
        w.U64(word);
      }
    }
    for (const std::uint64_t c : assert_counts_) {
      w.U64(c);
    }
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    for (Route& rt : routes_) {
      rt.enabled = r.Bool();
      rt.masked = r.Bool();
      rt.cpu = r.U32();
      rt.vector = r.U8();
    }
    for (auto& l : latched_) {
      l = r.Bool();
    }
    for (auto& cpu_bits : pending_) {
      for (auto& word : cpu_bits) {
        word = r.U64();
      }
    }
    for (auto& c : assert_counts_) {
      c = r.U64();
    }
    return r.status();
  }

 private:
  void Deliver(std::uint32_t gsi);

  // snapshot-x-list(IrqChip): tracer_, trace_assert_, trace_deliver_,
  // routes_, latched_, pending_, assert_counts_
  sim::Tracer* tracer_ = &sim::Tracer::Disabled();
  std::uint16_t trace_assert_ = 0;
  std::uint16_t trace_deliver_ = 0;
  std::array<Route, kNumGsis> routes_{};
  std::array<bool, kNumGsis> latched_{};
  // Per-CPU pending vector bitmap (256 vectors).
  std::array<std::array<std::uint64_t, 4>, kMaxCpus> pending_{};
  std::array<std::uint64_t, kNumGsis> assert_counts_{};
};

}  // namespace nova::hw

#endif  // SRC_HW_IRQ_H_
