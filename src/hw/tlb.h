// Simulated translation lookaside buffer.
//
// Fully associative, LRU replacement, with separate capacity classes for
// 4 KiB and superpage translations (matching the split structure of the
// parts in Table 1). Entries carry a 16-bit tag: 0 is the host address
// space; guests get VPID/ASID tags when the CPU model supports them.
//
// The dirty bit is modelled faithfully: a write that hits an entry whose
// translation was installed without the dirty flag reports a miss, forcing
// a re-walk — this is what lets the vTLB algorithm intercept the first
// write to a clean page.
#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/sim/stats.h"

namespace nova::hw {

using TlbTag = std::uint16_t;
constexpr TlbTag kHostTag = 0;

// Hands out unique TLB tags (VPID/ASID values). Tag 0 is reserved for the
// host address space. VMs receive one identity tag at creation; the vTLB's
// shadow-context cache additionally allocates one tag per cached guest
// address space so a guest CR3 switch can become a tag switch instead of a
// flush (PCID-style reuse). Released tags are recycled.
class TlbTagAllocator {
 public:
  explicit TlbTagAllocator(TlbTag first = 1) : next_(first) {}

  TlbTag Allocate() {
    if (!free_.empty()) {
      const TlbTag tag = free_.back();
      free_.pop_back();
      return tag;
    }
    return next_++;
  }

  void Release(TlbTag tag) {
    if (tag != kHostTag) {
      free_.push_back(tag);
    }
  }

  Status SaveState(sim::SnapWriter& w) const {
    w.U16(next_);
    w.U32(static_cast<std::uint32_t>(free_.size()));
    for (const TlbTag t : free_) {
      w.U16(t);
    }
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    next_ = r.U16();
    free_.assign(r.U32(), 0);
    for (auto& t : free_) {
      t = r.U16();
    }
    return r.status();
  }

 private:
  // snapshot-x-list(TlbTagAllocator): next_, free_
  TlbTag next_;
  std::vector<TlbTag> free_;
};

struct TlbEntry {
  PhysAddr phys_page = 0;        // Physical base of the mapping.
  std::uint64_t page_size = 0;
  bool writable = false;
  bool user = false;
  bool dirty = false;            // Translation was installed for write.
  bool global = false;           // Survives non-tag full flushes.
};

class Tlb {
 public:
  Tlb(std::uint32_t capacity_4k, std::uint32_t capacity_large)
      : capacity_4k_(capacity_4k), capacity_large_(capacity_large) {}

  // Look up `va` under `tag`. Returns the translated physical address on a
  // usable hit. Misses (including permission-insufficient and clean-entry
  // write cases) return nullopt.
  std::optional<PhysAddr> Lookup(TlbTag tag, VirtAddr va, Access access);

  // Install a translation as produced by a page-table walk.
  void Insert(TlbTag tag, VirtAddr va, PhysAddr pa, std::uint64_t page_size,
              bool writable, bool user, bool dirty, bool global = false);

  // Invalidations.
  void FlushAll();                      // Everything, all tags.
  void FlushTag(TlbTag tag);            // All entries of one tag.
  void FlushNonGlobal(TlbTag tag);      // Tag's entries except global ones
                                        // (x86 CR3-write semantics).
  void FlushVa(TlbTag tag, VirtAddr va);  // INVLPG.

  std::size_t EntryCount(TlbTag tag) const;
  std::size_t size() const { return map_.size(); }

  const sim::Counter& hits() const { return hits_; }
  const sim::Counter& misses() const { return misses_; }
  const sim::Counter& flushes() const { return flushes_; }

  // Serialize entries sorted by (tag, vpage, large) plus the LRU clock, so
  // post-restore replacement decisions are bit-identical.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  struct Key {
    TlbTag tag;
    std::uint64_t vpage;  // va >> 12; superpages insert their base page.
    bool large;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.vpage * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<std::uint64_t>(k.tag) << 1) ^ (k.large ? 0x5851ull : 0);
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };
  struct Slot {
    TlbEntry entry;
    std::uint64_t lru;
  };

  Key MakeKey(TlbTag tag, VirtAddr va, std::uint64_t page_size) const {
    const bool large = page_size > kPageSize;
    const std::uint64_t base = va & ~(page_size - 1);
    return Key{tag, base >> kPageShift, large};
  }

  void EvictIfNeeded(bool large);

  // snapshot-x-list(Tlb): capacity_4k_, capacity_large_, count_4k_,
  // count_large_, clock_, map_, hits_, misses_, flushes_
  std::uint32_t capacity_4k_;
  std::uint32_t capacity_large_;
  std::uint32_t count_4k_ = 0;
  std::uint32_t count_large_ = 0;
  std::uint64_t clock_ = 0;
  std::unordered_map<Key, Slot, KeyHash> map_;
  sim::Counter hits_;
  sim::Counter misses_;
  sim::Counter flushes_;
};

}  // namespace nova::hw

#endif  // SRC_HW_TLB_H_
