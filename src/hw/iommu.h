// IOMMU (DMA remapping unit) model.
//
// Each DMA-capable device is identified by a requester id. Without an
// IOMMU, device DMA is identity-mapped and unchecked — any driver that
// performs DMA must be trusted (§4.2 of the paper). With an IOMMU, the
// hypervisor installs per-device translation tables, blocks DMA into its
// own protected memory region, and restricts the interrupt vectors a
// device may raise.
#ifndef SRC_HW_IOMMU_H_
#define SRC_HW_IOMMU_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/sim/stats.h"

namespace nova::hw {

using DeviceId = std::uint16_t;  // Requester id (bus:dev.fn).

class Iommu {
 public:
  // `present` models platforms without VT-d: all checks disabled.
  Iommu(PhysMem* mem, bool present) : mem_(mem), present_(present) {}

  bool present() const { return present_; }

  // Mark a physical range as protected (the hypervisor's own image).
  // DMA into it always faults when the IOMMU is present.
  void ProtectRange(PhysAddr base, std::uint64_t size);

  // Install a translation context for a device. Subsequent DMA from `dev`
  // goes through a remapping table rooted at `root` (the owning domain's
  // page table, so its format follows the host paging mode).
  void AttachDevice(DeviceId dev, PhysAddr root,
                    PagingMode mode = PagingMode::kFourLevel);
  void DetachDevice(DeviceId dev);
  bool IsAttached(DeviceId dev) const { return contexts_.contains(dev); }

  // Map iova -> pa in the device's remapping table.
  Status Map(DeviceId dev, std::uint64_t iova, PhysAddr pa, std::uint64_t size,
             bool writable, const PageTable::FrameAllocator& alloc);
  Status Unmap(DeviceId dev, std::uint64_t iova, std::uint64_t size);

  // Restrict the GSIs `dev` is allowed to raise (interrupt remapping).
  void AllowGsi(DeviceId dev, std::uint32_t gsi);
  bool GsiAllowed(DeviceId dev, std::uint32_t gsi) const;

  // DMA path used by all device models. Returns kDenied on a remapping
  // fault; the transfer is fully rejected (no partial writes).
  Status DmaRead(DeviceId dev, std::uint64_t iova, void* out, std::uint64_t len);
  Status DmaWrite(DeviceId dev, std::uint64_t iova, const void* data, std::uint64_t len);

  std::uint64_t faults() const { return faults_.value(); }

  // Latched fault log: one record per remapping fault (like the VT-d fault
  // recording registers). Bounded; the root task reads and clears it to
  // attribute DMA violations to a device.
  struct FaultRecord {
    DeviceId dev = 0;
    std::uint64_t iova = 0;
    bool write = false;
  };
  const std::vector<FaultRecord>& fault_log() const { return fault_log_; }
  void ClearFaultLog() { fault_log_.clear(); }

  // Serialize contexts as (dev, root, mode) triples — the remapping tables
  // themselves are real frames in PhysMem and ride its section — plus the
  // GSI allow-masks, protected ranges, and the fault counter/log.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  static constexpr std::size_t kMaxFaultRecords = 64;

  void RecordFault(DeviceId dev, std::uint64_t iova, bool write);
  // Translate one page-contained chunk; returns kDenied on fault.
  Status Translate(DeviceId dev, std::uint64_t iova, bool write, PhysAddr* out);
  bool IsProtected(PhysAddr pa, std::uint64_t len) const;

  struct Context {
    std::unique_ptr<PageTable> table;
  };

  // snapshot-x-list(Iommu): mem_, present_, contexts_, allowed_gsis_,
  // protected_, faults_, fault_log_
  PhysMem* mem_;
  bool present_;
  std::unordered_map<DeviceId, Context> contexts_;
  std::unordered_map<DeviceId, std::uint64_t> allowed_gsis_;  // Bitmask.
  std::vector<std::pair<PhysAddr, std::uint64_t>> protected_;
  sim::Counter faults_;
  std::vector<FaultRecord> fault_log_;
};

}  // namespace nova::hw

#endif  // SRC_HW_IOMMU_H_
