// The simulated host machine: RAM, CPUs, interrupt fabric, IOMMU, system
// bus and the device event queue, assembled from a configuration.
#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/cpu_model.h"
#include "src/hw/device.h"
#include "src/hw/iommu.h"
#include "src/hw/irq.h"
#include "src/hw/phys_mem.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace nova::hw {

struct MachineConfig {
  std::vector<const CpuModel*> cpus = {&CoreI7_920()};
  std::uint64_t ram_size = 1ull << 30;  // 1 GiB default.
  bool iommu_present = true;
};

// CI hook: when the NOVA_TEST_CPUS environment variable is set to N > 1
// and `config` carries a single CPU model (the default in most tests),
// the machine is built with N copies of that model instead. This lets the
// whole tier-1 suite run against an SMP machine without touching each
// test; explicit multi-CPU configurations are never overridden.
MachineConfig ApplyTestCpuOverride(MachineConfig config);

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  PhysMem& mem() { return mem_; }
  sim::EventQueue& events() { return events_; }
  IrqChip& irq() { return irq_; }
  Iommu& iommu() { return iommu_; }
  Bus& bus() { return bus_; }
  sim::StatRegistry& stats() { return stats_; }
  // Structured event tracer; disabled by default and shared by every layer
  // riding on this machine (hypervisor, devices, interrupt fabric).
  sim::Tracer& tracer() { return tracer_; }

  std::size_t num_cpus() const { return cpus_.size(); }
  Cpu& cpu(std::uint32_t id) { return *cpus_[id]; }

  // Take ownership of a device model. Returns a borrowed pointer for
  // registering bus windows.
  template <typename T>
  T* AddDevice(std::unique_ptr<T> device) {
    T* raw = device.get();
    devices_.push_back(std::move(device));
    return raw;
  }
  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  // Earliest local clock across all CPUs. Device time may never advance
  // past this: a core that is behind could still initiate I/O "in the
  // past" of a core that raced ahead.
  sim::PicoSeconds MinNowPs() const;

  // Bring the device clock up to the machine-wide minimum CPU time,
  // firing due events. Conservative under SMP: devices only observe time
  // every core has already reached.
  void SyncDeviceTime() { events_.AdvanceTo(MinNowPs()); }

  // All CPUs idle and nothing to do: hop to the next device event and pull
  // every CPU's local clock forward. Returns false if no event is pending.
  bool SkipToNextEvent();

  // Serialize the machine's own components (RAM, event queue, interrupt
  // fabric, IOMMU, CPUs, stats, tracer) as sections of `snap`. Device
  // models are owned by higher layers with typed pointers and save their
  // own sections. Restore overlays a twin constructed from the identical
  // MachineConfig.
  Status SaveState(sim::Snapshot& snap) const;
  Status LoadState(const sim::Snapshot& snap);

 private:
  // snapshot-x-list(Machine): mem_, events_, irq_, iommu_, bus_, stats_,
  // tracer_, cpus_, devices_
  PhysMem mem_;
  sim::EventQueue events_;
  IrqChip irq_;
  Iommu iommu_;
  Bus bus_;
  sim::StatRegistry stats_;
  sim::Tracer tracer_{&events_};
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace nova::hw

#endif  // SRC_HW_MACHINE_H_
