#include "src/hw/cpu_model.h"

#include <array>

namespace nova::hw {
namespace {

// Transition costs below are calibrated so that the reproduced Figures 8
// and 9 show the same per-generation trend the paper reports: guest/host
// transition cost dominates and shrinks with every processor generation,
// while VMCS access cost drops sharply on Wolfdale/Bloomfield parts.

constexpr CpuModel kOpteron2212{
    .name = "AMD Opteron 2212",
    .core = "Santa Rosa (K8)",
    .tag = "K8",
    .vendor = Vendor::kAmd,
    .frequency = sim::Frequency::MHz(2000),
    .vm_exit = 620,
    .vm_resume = 480,
    .vmread = 0,   // VMCB is ordinary memory on AMD.
    .vmwrite = 0,
    .syscall_entry = 80,
    .syscall_exit = 71,
    .has_guest_tlb_tags = true,  // SVM has ASIDs from the first generation.
    .tlb_flush = 95,
    .tlb_refill_entry = 18,
    .tlb_4k_entries = 512,
    .tlb_large_entries = 32,
    .host_paging = PagingMode::kTwoLevel,
    .mem_access = 20,
    .mem_miss = 120,
    .op_cost = 1,
    .word_copy = 3,
};

constexpr CpuModel kPhenom9550{
    .name = "AMD Phenom 9550",
    .core = "Agena (K10)",
    .tag = "K10",
    .vendor = Vendor::kAmd,
    .frequency = sim::Frequency::MHz(2200),
    .vm_exit = 510,
    .vm_resume = 400,
    .vmread = 0,
    .vmwrite = 0,
    .syscall_entry = 72,
    .syscall_exit = 65,
    .has_guest_tlb_tags = true,
    .tlb_flush = 90,
    .tlb_refill_entry = 16,
    .tlb_4k_entries = 512,
    .tlb_large_entries = 48,
    .host_paging = PagingMode::kTwoLevel,
    .mem_access = 18,
    .mem_miss = 110,
    .op_cost = 1,
    .word_copy = 3,
};

constexpr CpuModel kCoreDuoT2500{
    .name = "Intel Core Duo T2500",
    .core = "Yonah (YNH)",
    .tag = "YNH",
    .vendor = Vendor::kIntel,
    .frequency = sim::Frequency::MHz(2000),
    .vm_exit = 1180,
    .vm_resume = 797,
    .vmread = 60,
    .vmwrite = 55,
    .syscall_entry = 88,
    .syscall_exit = 75,
    .has_guest_tlb_tags = false,  // No VPID before Nehalem.
    .tlb_flush = 110,
    .tlb_refill_entry = 20,
    .tlb_4k_entries = 256,
    .tlb_large_entries = 16,
    .host_paging = PagingMode::kFourLevel,
    .mem_access = 22,
    .mem_miss = 130,
    .op_cost = 1,
    .word_copy = 3,
};

constexpr CpuModel kCore2DuoE6600{
    .name = "Intel Core2 Duo E6600",
    .core = "Conroe (CNR)",
    .tag = "CNR",
    .vendor = Vendor::kIntel,
    .frequency = sim::Frequency::MHz(2400),
    .vm_exit = 1180,
    .vm_resume = 837,
    .vmread = 55,
    .vmwrite = 50,
    .syscall_entry = 80,
    .syscall_exit = 71,
    .has_guest_tlb_tags = false,
    .tlb_flush = 105,
    .tlb_refill_entry = 18,
    .tlb_4k_entries = 512,
    .tlb_large_entries = 32,
    .host_paging = PagingMode::kFourLevel,
    .mem_access = 20,
    .mem_miss = 125,
    .op_cost = 1,
    .word_copy = 3,
};

constexpr CpuModel kCore2DuoE8400{
    .name = "Intel Core2 Duo E8400",
    .core = "Wolfdale (WFD)",
    .tag = "WFD",
    .vendor = Vendor::kIntel,
    .frequency = sim::Frequency::MHz(3000),
    .vm_exit = 700,
    .vm_resume = 524,
    .vmread = 45,
    .vmwrite = 42,
    .syscall_entry = 66,
    .syscall_exit = 58,
    .has_guest_tlb_tags = false,
    .tlb_flush = 100,
    .tlb_refill_entry = 16,
    .tlb_4k_entries = 512,
    .tlb_large_entries = 32,
    .host_paging = PagingMode::kFourLevel,
    .mem_access = 18,
    .mem_miss = 120,
    .op_cost = 1,
    .word_copy = 3,
};

constexpr CpuModel kCoreI7_920{
    .name = "Intel Core i7 920",
    .core = "Bloomfield (BLM)",
    .tag = "BLM",
    .vendor = Vendor::kIntel,
    .frequency = sim::Frequency::MHz(2670),
    .vm_exit = 566,
    .vm_resume = 450,
    .vmread = 24,
    .vmwrite = 22,
    .syscall_entry = 44,
    .syscall_exit = 35,
    .has_guest_tlb_tags = true,  // VPID.
    .tlb_flush = 90,
    .tlb_refill_entry = 14,
    .tlb_4k_entries = 512,
    .tlb_large_entries = 32,
    .host_paging = PagingMode::kFourLevel,
    .mem_access = 16,
    .mem_miss = 110,
    .op_cost = 1,
    .word_copy = 3,
};

constexpr CpuModel MakeNoVpid(const CpuModel& base) {
  CpuModel m = base;
  m.core = "Bloomfield (BLM) w/o VPID";
  m.tag = "BLM-noVPID";
  m.has_guest_tlb_tags = false;
  return m;
}

constexpr CpuModel kCoreI7_920_NoVpid = MakeNoVpid(kCoreI7_920);

constexpr CpuModel MakePhenomX3(const CpuModel& base) {
  CpuModel m = base;
  m.name = "AMD Phenom X3 8450";
  m.core = "Toliman (K10)";
  m.tag = "PHX3";
  m.frequency = sim::Frequency::MHz(2100);
  return m;
}

constexpr CpuModel kPhenomX3_8450 = MakePhenomX3(kPhenom9550);

constexpr std::array<const CpuModel*, 6> kAllModels = {
    &kOpteron2212,   &kPhenom9550,    &kCoreDuoT2500,
    &kCore2DuoE6600, &kCore2DuoE8400, &kCoreI7_920,
};

}  // namespace

const CpuModel& Opteron2212() { return kOpteron2212; }
const CpuModel& Phenom9550() { return kPhenom9550; }
const CpuModel& CoreDuoT2500() { return kCoreDuoT2500; }
const CpuModel& Core2DuoE6600() { return kCore2DuoE6600; }
const CpuModel& Core2DuoE8400() { return kCore2DuoE8400; }
const CpuModel& CoreI7_920() { return kCoreI7_920; }
const CpuModel& CoreI7_920_NoVpid() { return kCoreI7_920_NoVpid; }
const CpuModel& PhenomX3_8450() { return kPhenomX3_8450; }

std::span<const CpuModel* const> AllModels() { return kAllModels; }

}  // namespace nova::hw
