#include "src/hw/iommu.h"

#include <algorithm>

namespace nova::hw {

void Iommu::ProtectRange(PhysAddr base, std::uint64_t size) {
  protected_.emplace_back(base, size);
}

void Iommu::AttachDevice(DeviceId dev, PhysAddr root, PagingMode mode) {
  contexts_[dev] = Context{.table = std::make_unique<PageTable>(mem_, mode, root)};
}

void Iommu::DetachDevice(DeviceId dev) { contexts_.erase(dev); }

Status Iommu::Map(DeviceId dev, std::uint64_t iova, PhysAddr pa,
                  std::uint64_t size, bool writable,
                  const PageTable::FrameAllocator& alloc) {
  auto it = contexts_.find(dev);
  if (it == contexts_.end()) {
    return Status::kBadDevice;
  }
  for (std::uint64_t off = 0; off < size; off += kPageSize) {
    const std::uint64_t flags = pte::kUser | (writable ? pte::kWritable : 0);
    const Status s = it->second.table->Map(iova + off, pa + off, kPageSize, flags, alloc);
    if (!Ok(s)) {
      return s;
    }
  }
  return Status::kSuccess;
}

Status Iommu::Unmap(DeviceId dev, std::uint64_t iova, std::uint64_t size) {
  auto it = contexts_.find(dev);
  if (it == contexts_.end()) {
    return Status::kBadDevice;
  }
  for (std::uint64_t off = 0; off < size; off += kPageSize) {
    (void)it->second.table->Unmap(iova + off);
  }
  return Status::kSuccess;
}

void Iommu::AllowGsi(DeviceId dev, std::uint32_t gsi) {
  allowed_gsis_[dev] |= 1ull << gsi;
}

bool Iommu::GsiAllowed(DeviceId dev, std::uint32_t gsi) const {
  if (!present_) {
    return true;  // No interrupt remapping without an IOMMU.
  }
  auto it = allowed_gsis_.find(dev);
  return it != allowed_gsis_.end() && (it->second & (1ull << gsi)) != 0;
}

void Iommu::RecordFault(DeviceId dev, std::uint64_t iova, bool write) {
  faults_.Add();
  if (fault_log_.size() < kMaxFaultRecords) {
    fault_log_.push_back({dev, iova, write});
  }
}

bool Iommu::IsProtected(PhysAddr pa, std::uint64_t len) const {
  for (const auto& [base, size] : protected_) {
    if (pa < base + size && base < pa + len) {
      return true;
    }
  }
  return false;
}

Status Iommu::Translate(DeviceId dev, std::uint64_t iova, bool write, PhysAddr* out) {
  if (!present_) {
    *out = iova;  // Identity, unchecked: legacy platform.
    return Status::kSuccess;
  }
  auto it = contexts_.find(dev);
  if (it == contexts_.end()) {
    // Device has no remapping context: identity, but the hypervisor region
    // is still shielded by the unit.
    *out = iova;
    return Status::kSuccess;
  }
  const WalkResult r = it->second.table->Walk(
      iova, Access{.write = write, .user = true}, /*set_ad=*/false);
  if (!Ok(r.status)) {
    RecordFault(dev, iova, write);
    return Status::kDenied;
  }
  *out = r.pa;
  return Status::kSuccess;
}

Status Iommu::DmaRead(DeviceId dev, std::uint64_t iova, void* out, std::uint64_t len) {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(len, kPageSize - (iova & kPageMask));
    PhysAddr pa = 0;
    const Status s = Translate(dev, iova, /*write=*/false, &pa);
    if (!Ok(s)) {
      return s;
    }
    if (present_ && IsProtected(pa, chunk)) {
      RecordFault(dev, iova, /*write=*/false);
      return Status::kDenied;
    }
    const Status rs = mem_->Read(pa, dst, chunk);
    if (!Ok(rs)) {
      return rs;
    }
    iova += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status Iommu::DmaWrite(DeviceId dev, std::uint64_t iova, const void* data,
                       std::uint64_t len) {
  // Validate the whole transfer first so faults never partially commit.
  std::uint64_t probe = iova;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, kPageSize - (probe & kPageMask));
    PhysAddr pa = 0;
    const Status s = Translate(dev, probe, /*write=*/true, &pa);
    if (!Ok(s)) {
      return s;
    }
    if (present_ && IsProtected(pa, chunk)) {
      RecordFault(dev, probe, /*write=*/true);
      return Status::kDenied;
    }
    probe += chunk;
    remaining -= chunk;
  }

  const auto* src = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(len, kPageSize - (iova & kPageMask));
    PhysAddr pa = 0;
    (void)Translate(dev, iova, /*write=*/true, &pa);
    const Status ws = mem_->Write(pa, src, chunk);
    if (!Ok(ws)) {
      return ws;
    }
    iova += chunk;
    src += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

}  // namespace nova::hw
