#include "src/hw/iommu.h"

#include <algorithm>

namespace nova::hw {

void Iommu::ProtectRange(PhysAddr base, std::uint64_t size) {
  protected_.emplace_back(base, size);
}

void Iommu::AttachDevice(DeviceId dev, PhysAddr root, PagingMode mode) {
  contexts_[dev] = Context{.table = std::make_unique<PageTable>(mem_, mode, root)};
}

void Iommu::DetachDevice(DeviceId dev) { contexts_.erase(dev); }

Status Iommu::Map(DeviceId dev, std::uint64_t iova, PhysAddr pa,
                  std::uint64_t size, bool writable,
                  const PageTable::FrameAllocator& alloc) {
  auto it = contexts_.find(dev);
  if (it == contexts_.end()) {
    return Status::kBadDevice;
  }
  for (std::uint64_t off = 0; off < size; off += kPageSize) {
    const std::uint64_t flags = pte::kUser | (writable ? pte::kWritable : 0);
    const Status s = it->second.table->Map(iova + off, pa + off, kPageSize, flags, alloc);
    if (!Ok(s)) {
      return s;
    }
  }
  return Status::kSuccess;
}

Status Iommu::Unmap(DeviceId dev, std::uint64_t iova, std::uint64_t size) {
  auto it = contexts_.find(dev);
  if (it == contexts_.end()) {
    return Status::kBadDevice;
  }
  for (std::uint64_t off = 0; off < size; off += kPageSize) {
    (void)it->second.table->Unmap(iova + off);
  }
  return Status::kSuccess;
}

void Iommu::AllowGsi(DeviceId dev, std::uint32_t gsi) {
  allowed_gsis_[dev] |= 1ull << gsi;
}

bool Iommu::GsiAllowed(DeviceId dev, std::uint32_t gsi) const {
  if (!present_) {
    return true;  // No interrupt remapping without an IOMMU.
  }
  auto it = allowed_gsis_.find(dev);
  return it != allowed_gsis_.end() && (it->second & (1ull << gsi)) != 0;
}

void Iommu::RecordFault(DeviceId dev, std::uint64_t iova, bool write) {
  faults_.Add();
  if (fault_log_.size() < kMaxFaultRecords) {
    fault_log_.push_back({dev, iova, write});
  }
}

bool Iommu::IsProtected(PhysAddr pa, std::uint64_t len) const {
  for (const auto& [base, size] : protected_) {
    if (pa < base + size && base < pa + len) {
      return true;
    }
  }
  return false;
}

Status Iommu::Translate(DeviceId dev, std::uint64_t iova, bool write, PhysAddr* out) {
  if (!present_) {
    *out = iova;  // Identity, unchecked: legacy platform.
    return Status::kSuccess;
  }
  auto it = contexts_.find(dev);
  if (it == contexts_.end()) {
    // Device has no remapping context: identity, but the hypervisor region
    // is still shielded by the unit.
    *out = iova;
    return Status::kSuccess;
  }
  const WalkResult r = it->second.table->Walk(
      iova, Access{.write = write, .user = true}, /*set_ad=*/false);
  if (!Ok(r.status)) {
    RecordFault(dev, iova, write);
    return Status::kDenied;
  }
  *out = r.pa;
  return Status::kSuccess;
}

Status Iommu::DmaRead(DeviceId dev, std::uint64_t iova, void* out, std::uint64_t len) {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(len, kPageSize - (iova & kPageMask));
    PhysAddr pa = 0;
    const Status s = Translate(dev, iova, /*write=*/false, &pa);
    if (!Ok(s)) {
      return s;
    }
    if (present_ && IsProtected(pa, chunk)) {
      RecordFault(dev, iova, /*write=*/false);
      return Status::kDenied;
    }
    const Status rs = mem_->Read(pa, dst, chunk);
    if (!Ok(rs)) {
      return rs;
    }
    iova += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status Iommu::DmaWrite(DeviceId dev, std::uint64_t iova, const void* data,
                       std::uint64_t len) {
  // Validate the whole transfer first so faults never partially commit.
  std::uint64_t probe = iova;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, kPageSize - (probe & kPageMask));
    PhysAddr pa = 0;
    const Status s = Translate(dev, probe, /*write=*/true, &pa);
    if (!Ok(s)) {
      return s;
    }
    if (present_ && IsProtected(pa, chunk)) {
      RecordFault(dev, probe, /*write=*/true);
      return Status::kDenied;
    }
    probe += chunk;
    remaining -= chunk;
  }

  const auto* src = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(len, kPageSize - (iova & kPageMask));
    PhysAddr pa = 0;
    (void)Translate(dev, iova, /*write=*/true, &pa);
    const Status ws = mem_->Write(pa, src, chunk);
    if (!Ok(ws)) {
      return ws;
    }
    iova += chunk;
    src += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status Iommu::SaveState(sim::SnapWriter& w) const {
  std::vector<DeviceId> devs;
  devs.reserve(contexts_.size());
  // nova-lint: allow(determinism) -- collected then sorted before encoding
  for (const auto& [dev, ctx] : contexts_) {
    devs.push_back(dev);
  }
  std::sort(devs.begin(), devs.end());
  w.U32(static_cast<std::uint32_t>(devs.size()));
  for (const DeviceId dev : devs) {
    const PageTable& table = *contexts_.at(dev).table;
    w.U16(dev);
    w.U64(table.root());
    w.U8(static_cast<std::uint8_t>(table.mode()));
  }
  std::vector<DeviceId> gsi_devs;
  gsi_devs.reserve(allowed_gsis_.size());
  // nova-lint: allow(determinism) -- collected then sorted before encoding
  for (const auto& [dev, mask] : allowed_gsis_) {
    gsi_devs.push_back(dev);
  }
  std::sort(gsi_devs.begin(), gsi_devs.end());
  w.U32(static_cast<std::uint32_t>(gsi_devs.size()));
  for (const DeviceId dev : gsi_devs) {
    w.U16(dev);
    w.U64(allowed_gsis_.at(dev));
  }
  w.U32(static_cast<std::uint32_t>(protected_.size()));
  for (const auto& [base, size] : protected_) {
    w.U64(base);
    w.U64(size);
  }
  Status st = faults_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  w.U32(static_cast<std::uint32_t>(fault_log_.size()));
  for (const FaultRecord& f : fault_log_) {
    w.U16(f.dev);
    w.U64(f.iova);
    w.Bool(f.write);
  }
  return Status::kSuccess;
}

Status Iommu::LoadState(sim::SnapReader& r) {
  contexts_.clear();
  const std::uint32_t n_ctx = r.U32();
  for (std::uint32_t i = 0; i < n_ctx; ++i) {
    const DeviceId dev = r.U16();
    const PhysAddr root = r.U64();
    const auto mode = static_cast<PagingMode>(r.U8());
    AttachDevice(dev, root, mode);
  }
  allowed_gsis_.clear();
  const std::uint32_t n_gsi = r.U32();
  for (std::uint32_t i = 0; i < n_gsi; ++i) {
    const DeviceId dev = r.U16();
    allowed_gsis_[dev] = r.U64();
  }
  protected_.clear();
  const std::uint32_t n_prot = r.U32();
  for (std::uint32_t i = 0; i < n_prot; ++i) {
    const PhysAddr base = r.U64();
    const std::uint64_t size = r.U64();
    protected_.emplace_back(base, size);
  }
  Status st = faults_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  fault_log_.clear();
  const std::uint32_t n_log = r.U32();
  for (std::uint32_t i = 0; i < n_log; ++i) {
    FaultRecord f;
    f.dev = r.U16();
    f.iova = r.U64();
    f.write = r.Bool();
    fault_log_.push_back(f);
  }
  return r.status();
}

}  // namespace nova::hw
