// Rotating-disk service model and content store.
//
// Calibrated against the evaluation's 250 GB SATA disk: sequential reads
// are limited by a fixed per-request service time for small blocks and by
// media bandwidth for large ones (the crossover near 8 KiB visible in
// Figure 6). Content is a sparse store: sectors written through the model
// read back exactly; untouched sectors return a deterministic pattern.
#ifndef SRC_HW_DISK_H_
#define SRC_HW_DISK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/fault.h"
#include "src/sim/stats.h"
#include "src/sim/status.h"

namespace nova::hw {

constexpr std::uint64_t kSectorSize = 512;

struct DiskGeometry {
  std::uint64_t capacity_bytes = 250ull << 30;
  // Fixed per-request service time (command, rotational and NCQ overlap).
  sim::PicoSeconds request_overhead = sim::Microseconds(120);
  // Sustained media bandwidth in bytes per second.
  std::uint64_t bandwidth_bps = 67'000'000;
};

class DiskModel {
 public:
  DiskModel(sim::EventQueue* events, DiskGeometry geometry)
      : events_(events), geometry_(geometry) {}

  // Completions carry the media status: kSuccess, or kMemoryFault for an
  // unrecoverable media error (injected via the fault plan).
  using Completion = std::function<void(Status)>;

  // Submit a read of `bytes` starting at byte offset `offset`. Data lands
  // in `out` (sized to `bytes`) when the completion fires. Requests are
  // serviced in order; service time is max(overhead, bytes/bandwidth)
  // once the disk becomes free (NCQ-style pipelining).
  void SubmitRead(std::uint64_t offset, std::uint64_t bytes, std::uint8_t* out,
                  Completion done);
  void SubmitWrite(std::uint64_t offset, const std::uint8_t* data,
                   std::uint64_t bytes, Completion done);

  // Populate content directly (for installing boot images in tests).
  void WriteContent(std::uint64_t offset, const void* data, std::uint64_t bytes);
  void ReadContent(std::uint64_t offset, void* out, std::uint64_t bytes) const;

  const DiskGeometry& geometry() const { return geometry_; }
  std::uint64_t completed_requests() const { return completed_.value(); }
  std::uint64_t media_errors() const { return media_errors_.value(); }

  // Optional fault injection (kDiskMediaError). Null = no faults, no cost.
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }

 private:
  sim::PicoSeconds ServiceTime(std::uint64_t bytes) const;
  std::uint8_t PatternByte(std::uint64_t offset) const;
  Status MediaStatus();

  sim::EventQueue* events_;
  DiskGeometry geometry_;
  sim::PicoSeconds busy_until_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> sectors_;
  sim::Counter completed_;
  sim::Counter media_errors_;
  sim::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace nova::hw

#endif  // SRC_HW_DISK_H_
