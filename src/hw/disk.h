// Rotating-disk service model and content store.
//
// Calibrated against the evaluation's 250 GB SATA disk: sequential reads
// are limited by a fixed per-request service time for small blocks and by
// media bandwidth for large ones (the crossover near 8 KiB visible in
// Figure 6). Content is a sparse store: sectors written through the model
// read back exactly; untouched sectors return a deterministic pattern.
//
// Requests live in a pending table keyed by a stable request id; the
// completion event captures only the id, and results are delivered through
// a single registered handler. That keeps the event queue free of raw
// buffer pointers, so in-flight disk requests serialize and restore
// exactly (the snapshot-hostile closure API this replaced could not).
#ifndef SRC_HW_DISK_H_
#define SRC_HW_DISK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/fault.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/status.h"

namespace nova::hw {

constexpr std::uint64_t kSectorSize = 512;

struct DiskGeometry {
  std::uint64_t capacity_bytes = 250ull << 30;
  // Fixed per-request service time (command, rotational and NCQ overlap).
  sim::PicoSeconds request_overhead = sim::Microseconds(120);
  // Sustained media bandwidth in bytes per second.
  std::uint64_t bandwidth_bps = 67'000'000;
};

class DiskModel {
 public:
  using RequestId = std::uint64_t;

  // Completion delivery. `status` is kSuccess or kMemoryFault for an
  // unrecoverable media error (injected via the fault plan). For reads,
  // `data`/`len` expose the transferred bytes for the duration of the call
  // only — the handler copies what it needs. For writes, len == 0.
  using CompletionHandler =
      std::function<void(RequestId id, std::uint64_t cookie, Status status,
                         const std::uint8_t* data, std::uint64_t len)>;

  // `name` keys the completion events' rebinder registration; give each
  // disk on a queue a unique name.
  DiskModel(sim::EventQueue* events, DiskGeometry geometry,
            std::string name = "hw.disk");

  // The owning controller registers exactly one handler (and registers it
  // again, identically, when constructed as a restore twin).
  void set_completion_handler(CompletionHandler h) { handler_ = std::move(h); }

  // Submit a read of `bytes` starting at byte offset `offset`. Requests
  // are serviced in order; service time is max(overhead, bytes/bandwidth)
  // once the disk becomes free (NCQ-style pipelining). `cookie` is echoed
  // to the completion handler.
  RequestId SubmitRead(std::uint64_t offset, std::uint64_t bytes,
                       std::uint64_t cookie);
  // Submit a write; the payload is copied immediately (the caller may
  // reuse its buffer).
  RequestId SubmitWrite(std::uint64_t offset, const std::uint8_t* data,
                        std::uint64_t bytes, std::uint64_t cookie);

  // Populate content directly (for installing boot images in tests).
  void WriteContent(std::uint64_t offset, const void* data, std::uint64_t bytes);
  void ReadContent(std::uint64_t offset, void* out, std::uint64_t bytes) const;

  const DiskGeometry& geometry() const { return geometry_; }
  std::uint64_t completed_requests() const { return completed_.value(); }
  std::uint64_t media_errors() const { return media_errors_.value(); }
  std::size_t pending_requests() const { return pending_.size(); }

  // Optional fault injection (kDiskMediaError). Null = no faults, no cost.
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }

  // Serialize service-clock, written content, counters and the pending
  // request table. The completion events themselves live in the event
  // queue's snapshot; this model's rebinder rebuilds their closures.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  struct Pending {
    bool write = false;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t cookie = 0;
    std::vector<std::uint8_t> payload;  // Writes only.
  };

  sim::PicoSeconds ServiceTime(std::uint64_t bytes) const;
  std::uint8_t PatternByte(std::uint64_t offset) const;
  Status MediaStatus();
  RequestId Enqueue(Pending p);
  void Fire(RequestId id);

  // snapshot-x-list(DiskModel): events_, geometry_, name_, busy_until_,
  // sectors_, completed_, media_errors_, fault_plan_, pending_,
  // next_request_, handler_
  sim::EventQueue* events_;
  DiskGeometry geometry_;
  std::string name_;
  sim::PicoSeconds busy_until_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> sectors_;
  sim::Counter completed_;
  sim::Counter media_errors_;
  sim::FaultPlan* fault_plan_ = nullptr;
  std::map<RequestId, Pending> pending_;
  RequestId next_request_ = 1;
  CompletionHandler handler_;
};

}  // namespace nova::hw

#endif  // SRC_HW_DISK_H_
