// Simulated physical memory.
//
// A sparse store of 4 KiB frames. Page tables, DMA buffers, guest images
// and the UTCBs all live in here as real bytes — page-table walkers
// dereference real entries, and the vTLB algorithm parses real guest PTEs.
#ifndef SRC_HW_PHYS_MEM_H_
#define SRC_HW_PHYS_MEM_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/sim/snapshot.h"
#include "src/sim/status.h"

namespace nova::hw {

using PhysAddr = std::uint64_t;

constexpr std::uint64_t kPageSize = 4096;
constexpr std::uint64_t kPageMask = kPageSize - 1;
constexpr std::uint64_t kPageShift = 12;

constexpr PhysAddr PageAlignDown(PhysAddr a) { return a & ~kPageMask; }
constexpr PhysAddr PageAlignUp(PhysAddr a) { return (a + kPageMask) & ~kPageMask; }
constexpr std::uint64_t FrameOf(PhysAddr a) { return a >> kPageShift; }

class PhysMem {
 public:
  // `size` is the amount of installed RAM; accesses beyond it fault.
  explicit PhysMem(std::uint64_t size) : size_(size) {}

  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  std::uint64_t size() const { return size_; }
  bool Contains(PhysAddr addr, std::uint64_t len) const {
    return addr < size_ && len <= size_ - addr;
  }

  // Typed accessors. Unaligned access within a page is allowed; access
  // crossing the end of installed RAM returns kMemoryFault. Frames are
  // allocated zero-filled on first touch.
  Status Read(PhysAddr addr, void* out, std::uint64_t len) const;
  Status Write(PhysAddr addr, const void* data, std::uint64_t len);

  template <typename T>
  T ReadAs(PhysAddr addr) const {
    T v{};
    // Out-of-range reads yield T{} by design: callers that need the
    // fault distinction use Read() directly.
    (void)Read(addr, &v, sizeof(T));
    return v;
  }
  template <typename T>
  Status WriteAs(PhysAddr addr, T v) {
    return Write(addr, &v, sizeof(T));
  }

  std::uint32_t Read32(PhysAddr a) const { return ReadAs<std::uint32_t>(a); }
  std::uint64_t Read64(PhysAddr a) const { return ReadAs<std::uint64_t>(a); }
  Status Write32(PhysAddr a, std::uint32_t v) { return WriteAs(a, v); }
  Status Write64(PhysAddr a, std::uint64_t v) { return WriteAs(a, v); }

  // Zero-fill a range.
  Status Zero(PhysAddr addr, std::uint64_t len);

  // Number of frames that have actually been materialized.
  std::size_t resident_frames() const { return frames_.size(); }

  // Write observer: called with (addr, len) on every successful Write/Zero.
  // This is the dirty-log "hardware assist" hook (PML-style): all mutation
  // paths — guest stores, host-side image writes, device DMA — funnel
  // through PhysMem::Write, so observing here catches every dirtying agent
  // with zero simulated cost. Null (default) disables the hook.
  using WriteObserver = std::function<void(PhysAddr addr, std::uint64_t len)>;
  void set_write_observer(WriteObserver obs) { observer_ = std::move(obs); }

  // Serialize installed-RAM size and every resident frame (sorted by frame
  // number for a deterministic encoding). Load fails if the twin's size
  // differs.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  using Frame = std::array<std::uint8_t, kPageSize>;

  Frame* FrameFor(std::uint64_t frame_no) const;       // nullptr if absent.
  Frame& FrameForAlloc(std::uint64_t frame_no);        // Allocates.

  // snapshot-x-list(PhysMem): size_, frames_, observer_
  std::uint64_t size_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames_;
  WriteObserver observer_;
};

}  // namespace nova::hw

#endif  // SRC_HW_PHYS_MEM_H_
