// AHCI host bus adapter model (single port, command-list based).
//
// Implements the subset of the AHCI register file and in-memory command
// structures that a real miniport driver touches: a 32-slot command list,
// command tables with an H2D register FIS and a PRDT, per-port and global
// write-1-clear interrupt status, and DMA through the IOMMU. The driver
// flow — program PRDT in RAM, two MMIO writes to issue, four MMIO
// accesses to handle the completion interrupt — reproduces the six
// MMIO operations per request that Table 2 reports for the disk benchmark.
#ifndef SRC_HW_AHCI_H_
#define SRC_HW_AHCI_H_

#include <cstdint>
#include <vector>

#include "src/hw/device.h"
#include "src/hw/disk.h"
#include "src/hw/iommu.h"
#include "src/hw/irq.h"
#include "src/sim/event_queue.h"
#include "src/sim/snapshot.h"

namespace nova::hw {

// Register offsets (subset of AHCI 1.3).
namespace ahci {
constexpr std::uint64_t kCap = 0x00;
constexpr std::uint64_t kGhc = 0x04;
constexpr std::uint64_t kIs = 0x08;
constexpr std::uint64_t kPi = 0x0c;
constexpr std::uint64_t kPort = 0x100;  // Port 0 register block.
constexpr std::uint64_t kPxClb = kPort + 0x00;
constexpr std::uint64_t kPxClbu = kPort + 0x04;
constexpr std::uint64_t kPxFb = kPort + 0x08;
constexpr std::uint64_t kPxFbu = kPort + 0x0c;
constexpr std::uint64_t kPxIs = kPort + 0x10;
constexpr std::uint64_t kPxIe = kPort + 0x14;
constexpr std::uint64_t kPxCmd = kPort + 0x18;
constexpr std::uint64_t kPxTfd = kPort + 0x20;
constexpr std::uint64_t kPxSsts = kPort + 0x28;
constexpr std::uint64_t kPxCi = kPort + 0x38;
// Vendor-specific: bitmask of slots that completed with a task-file error
// since last cleared (write-1-clear). Lets the driver tell *which* command
// failed without a D2H FIS decode.
constexpr std::uint64_t kPxVs = kPort + 0x70;
constexpr std::uint64_t kWindowSize = 0x200;

constexpr std::uint32_t kGhcIntrEnable = 1u << 1;
constexpr std::uint32_t kPxCmdStart = 1u << 0;
constexpr std::uint32_t kPxIsDhrs = 1u << 0;   // Completion FIS received.
constexpr std::uint32_t kPxIsTfes = 1u << 30;  // Task-file error (DMA fault).

constexpr std::uint8_t kFisH2d = 0x27;
constexpr std::uint8_t kCmdReadDmaExt = 0x25;
constexpr std::uint8_t kCmdWriteDmaExt = 0x35;
constexpr int kNumSlots = 32;
}  // namespace ahci

class AhciController : public Device {
 public:
  AhciController(DeviceId id, Iommu* iommu, IrqChip* irq, std::uint32_t gsi,
                 DiskModel* disk);

  std::uint64_t MmioRead(std::uint64_t offset, unsigned size) override;
  void MmioWrite(std::uint64_t offset, unsigned size, std::uint64_t value) override;

  std::uint32_t gsi() const { return gsi_; }
  std::uint64_t dma_faults() const { return dma_faults_; }
  std::uint32_t error_slots() const { return error_slots_; }

  // Optional fault injection (kDmaUnmapped on the completion scatter path).
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }

  // Wires the machine's tracer in; interns the controller's event names.
  void set_tracer(sim::Tracer* t);

  // Serialize the register file and per-slot in-flight buffers. The disk
  // model's pending table is saved separately by the machine orchestrator.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  void IssueSlot(int slot);
  void CompleteSlot(int slot, Status status, const std::uint8_t* data,
                    std::uint64_t len);
  void FailSlot(int slot);
  void UpdateIrq();

  // snapshot-x-list(AhciController): iommu_, irq_, gsi_, disk_, ghc_, is_,
  // px_clb_, px_fb_, px_is_, px_ie_, px_cmd_, px_ci_, error_slots_,
  // inflight_, dma_faults_, fault_plan_, tracer_, trace_issue_, trace_dma_
  Iommu* iommu_;
  IrqChip* irq_;
  std::uint32_t gsi_;
  DiskModel* disk_;

  // Register file.
  std::uint32_t ghc_ = 0;
  std::uint32_t is_ = 0;
  std::uint32_t px_clb_ = 0;
  std::uint32_t px_fb_ = 0;
  std::uint32_t px_is_ = 0;
  std::uint32_t px_ie_ = 0;
  std::uint32_t px_cmd_ = 0;
  std::uint32_t px_ci_ = 0;
  std::uint32_t error_slots_ = 0;

  // In-flight request buffers (one per slot).
  struct Inflight {
    bool active = false;
    bool write = false;
    std::vector<std::uint8_t> data;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> prdt;  // (addr, len).
  };
  Inflight inflight_[ahci::kNumSlots];
  std::uint64_t dma_faults_ = 0;
  sim::FaultPlan* fault_plan_ = nullptr;
  sim::Tracer* tracer_ = &sim::Tracer::Disabled();
  std::uint16_t trace_issue_ = 0;
  std::uint16_t trace_dma_ = 0;
};

}  // namespace nova::hw

#endif  // SRC_HW_AHCI_H_
