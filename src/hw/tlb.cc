#include "src/hw/tlb.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace nova::hw {

std::optional<PhysAddr> Tlb::Lookup(TlbTag tag, VirtAddr va, Access access) {
  // Probe both size classes: we do not know the mapping size in advance.
  for (const std::uint64_t size : {kPageSize, std::uint64_t{2} << 20, std::uint64_t{4} << 20}) {
    auto it = map_.find(MakeKey(tag, va, size));
    if (it == map_.end() || it->second.entry.page_size != size) {
      continue;
    }
    TlbEntry& e = it->second.entry;
    if (access.write && !e.writable) {
      continue;  // Permission-insufficient entry: treat as miss.
    }
    if (access.user && !e.user) {
      continue;
    }
    if (access.write && !e.dirty) {
      continue;  // Clean entry: the walk must run again to set D.
    }
    it->second.lru = ++clock_;
    hits_.Add();
    return (e.phys_page & ~(size - 1)) | (va & (size - 1));
  }
  misses_.Add();
  return std::nullopt;
}

void Tlb::Insert(TlbTag tag, VirtAddr va, PhysAddr pa, std::uint64_t page_size,
                 bool writable, bool user, bool dirty, bool global) {
  const Key key = MakeKey(tag, va, page_size);
  auto it = map_.find(key);
  if (it == map_.end()) {
    EvictIfNeeded(key.large);
    it = map_.emplace(key, Slot{}).first;
    if (key.large) {
      ++count_large_;
    } else {
      ++count_4k_;
    }
  }
  it->second.entry = TlbEntry{
      .phys_page = pa & ~(page_size - 1),
      .page_size = page_size,
      .writable = writable,
      .user = user,
      .dirty = dirty,
      .global = global,
  };
  it->second.lru = ++clock_;
}

void Tlb::EvictIfNeeded(bool large) {
  const std::uint32_t cap = large ? capacity_large_ : capacity_4k_;
  std::uint32_t& count = large ? count_large_ : count_4k_;
  if (count < cap) {
    return;
  }
  // Evict the least recently used entry of the same size class. The lru
  // stamps come from ++clock_ and are unique, so the strict-min victim is
  // the same whatever order the buckets are walked in.
  auto victim = map_.end();
  // nova-lint: allow(determinism) -- strict min over unique lru stamps
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (it->first.large != large) {
      continue;
    }
    if (victim == map_.end() || it->second.lru < victim->second.lru) {
      victim = it;
    }
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    --count;
  }
}

void Tlb::FlushAll() {
  map_.clear();
  count_4k_ = 0;
  count_large_ = 0;
  flushes_.Add();
}

void Tlb::FlushTag(TlbTag tag) {
  // Erases every matching entry; the surviving set and both counters are
  // the same in any walk order.
  // nova-lint: allow(determinism) -- order-independent full-scan erase
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.tag == tag) {
      if (it->first.large) {
        --count_large_;
      } else {
        --count_4k_;
      }
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  flushes_.Add();
}

void Tlb::FlushNonGlobal(TlbTag tag) {
  // nova-lint: allow(determinism) -- order-independent full-scan erase
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.tag == tag && !it->second.entry.global) {
      if (it->first.large) {
        --count_large_;
      } else {
        --count_4k_;
      }
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  flushes_.Add();
}

void Tlb::FlushVa(TlbTag tag, VirtAddr va) {
  for (const std::uint64_t size : {kPageSize, std::uint64_t{2} << 20, std::uint64_t{4} << 20}) {
    auto it = map_.find(MakeKey(tag, va, size));
    if (it != map_.end() && it->second.entry.page_size == size) {
      if (it->first.large) {
        --count_large_;
      } else {
        --count_4k_;
      }
      map_.erase(it);
    }
  }
}

Status Tlb::SaveState(sim::SnapWriter& w) const {
  w.U32(count_4k_);
  w.U32(count_large_);
  w.U64(clock_);
  Status st = hits_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  st = misses_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  st = flushes_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  std::vector<const std::pair<const Key, Slot>*> order;
  order.reserve(map_.size());
  // nova-lint: allow(determinism) -- collected then sorted before encoding
  for (const auto& kv : map_) {
    order.push_back(&kv);
  }
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return std::tie(a->first.tag, a->first.vpage, a->first.large) <
           std::tie(b->first.tag, b->first.vpage, b->first.large);
  });
  w.U32(static_cast<std::uint32_t>(order.size()));
  for (const auto* kv : order) {
    w.U16(kv->first.tag);
    w.U64(kv->first.vpage);
    w.Bool(kv->first.large);
    const TlbEntry& e = kv->second.entry;
    w.U64(e.phys_page);
    w.U64(e.page_size);
    w.Bool(e.writable);
    w.Bool(e.user);
    w.Bool(e.dirty);
    w.Bool(e.global);
    w.U64(kv->second.lru);
  }
  return Status::kSuccess;
}

Status Tlb::LoadState(sim::SnapReader& r) {
  count_4k_ = r.U32();
  count_large_ = r.U32();
  clock_ = r.U64();
  Status st = hits_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = misses_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = flushes_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  map_.clear();
  const std::uint32_t n = r.U32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Key key{};
    key.tag = r.U16();
    key.vpage = r.U64();
    key.large = r.Bool();
    Slot slot{};
    slot.entry.phys_page = r.U64();
    slot.entry.page_size = r.U64();
    slot.entry.writable = r.Bool();
    slot.entry.user = r.Bool();
    slot.entry.dirty = r.Bool();
    slot.entry.global = r.Bool();
    slot.lru = r.U64();
    map_.emplace(key, slot);
  }
  return r.status();
}

std::size_t Tlb::EntryCount(TlbTag tag) const {
  std::size_t n = 0;
  // nova-lint: allow(determinism) -- pure count, order-independent
  for (const auto& [key, slot] : map_) {
    if (key.tag == tag) {
      ++n;
    }
  }
  return n;
}

}  // namespace nova::hw
