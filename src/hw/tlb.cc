#include "src/hw/tlb.h"

#include <vector>

namespace nova::hw {

std::optional<PhysAddr> Tlb::Lookup(TlbTag tag, VirtAddr va, Access access) {
  // Probe both size classes: we do not know the mapping size in advance.
  for (const std::uint64_t size : {kPageSize, std::uint64_t{2} << 20, std::uint64_t{4} << 20}) {
    auto it = map_.find(MakeKey(tag, va, size));
    if (it == map_.end() || it->second.entry.page_size != size) {
      continue;
    }
    TlbEntry& e = it->second.entry;
    if (access.write && !e.writable) {
      continue;  // Permission-insufficient entry: treat as miss.
    }
    if (access.user && !e.user) {
      continue;
    }
    if (access.write && !e.dirty) {
      continue;  // Clean entry: the walk must run again to set D.
    }
    it->second.lru = ++clock_;
    hits_.Add();
    return (e.phys_page & ~(size - 1)) | (va & (size - 1));
  }
  misses_.Add();
  return std::nullopt;
}

void Tlb::Insert(TlbTag tag, VirtAddr va, PhysAddr pa, std::uint64_t page_size,
                 bool writable, bool user, bool dirty, bool global) {
  const Key key = MakeKey(tag, va, page_size);
  auto it = map_.find(key);
  if (it == map_.end()) {
    EvictIfNeeded(key.large);
    it = map_.emplace(key, Slot{}).first;
    if (key.large) {
      ++count_large_;
    } else {
      ++count_4k_;
    }
  }
  it->second.entry = TlbEntry{
      .phys_page = pa & ~(page_size - 1),
      .page_size = page_size,
      .writable = writable,
      .user = user,
      .dirty = dirty,
      .global = global,
  };
  it->second.lru = ++clock_;
}

void Tlb::EvictIfNeeded(bool large) {
  const std::uint32_t cap = large ? capacity_large_ : capacity_4k_;
  std::uint32_t& count = large ? count_large_ : count_4k_;
  if (count < cap) {
    return;
  }
  // Evict the least recently used entry of the same size class.
  auto victim = map_.end();
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (it->first.large != large) {
      continue;
    }
    if (victim == map_.end() || it->second.lru < victim->second.lru) {
      victim = it;
    }
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    --count;
  }
}

void Tlb::FlushAll() {
  map_.clear();
  count_4k_ = 0;
  count_large_ = 0;
  flushes_.Add();
}

void Tlb::FlushTag(TlbTag tag) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.tag == tag) {
      if (it->first.large) {
        --count_large_;
      } else {
        --count_4k_;
      }
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  flushes_.Add();
}

void Tlb::FlushNonGlobal(TlbTag tag) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.tag == tag && !it->second.entry.global) {
      if (it->first.large) {
        --count_large_;
      } else {
        --count_4k_;
      }
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  flushes_.Add();
}

void Tlb::FlushVa(TlbTag tag, VirtAddr va) {
  for (const std::uint64_t size : {kPageSize, std::uint64_t{2} << 20, std::uint64_t{4} << 20}) {
    auto it = map_.find(MakeKey(tag, va, size));
    if (it != map_.end() && it->second.entry.page_size == size) {
      if (it->first.large) {
        --count_large_;
      } else {
        --count_4k_;
      }
      map_.erase(it);
    }
  }
}

std::size_t Tlb::EntryCount(TlbTag tag) const {
  std::size_t n = 0;
  for (const auto& [key, slot] : map_) {
    if (key.tag == tag) {
      ++n;
    }
  }
  return n;
}

}  // namespace nova::hw
