// Platform timer: a periodic tick source on a GSI (HPET/PIT stand-in) with
// a small PIO programming interface, used by the hypervisor scheduler and
// visible to guests as "hardware interrupts" in Table 2.
#ifndef SRC_HW_TIMER_DEV_H_
#define SRC_HW_TIMER_DEV_H_

#include <cstdint>

#include "src/hw/device.h"
#include "src/hw/irq.h"
#include "src/sim/event_queue.h"

namespace nova::hw {

namespace timer {
constexpr std::uint16_t kPortPeriodLo = 0x40;  // Period in microseconds, low 16.
constexpr std::uint16_t kPortPeriodHi = 0x41;  // Period, high 16; write starts.
constexpr std::uint16_t kPortControl = 0x43;   // Write 0 to stop.
}  // namespace timer

class PlatformTimer : public Device {
 public:
  PlatformTimer(DeviceId id, IrqChip* irq, std::uint32_t gsi,
                sim::EventQueue* events)
      : Device(id, "timer"), irq_(irq), gsi_(gsi), events_(events) {
    events_->RegisterRebinder(
        sim::EventQueue::OwnerToken("hw.timer"),
        [this](const sim::EventTag& tag) {
          return [this, gen = tag.a] {
            if (gen == generation_) {
              Tick();
            }
          };
        });
  }

  std::uint64_t MmioRead(std::uint64_t, unsigned) override { return 0; }
  void MmioWrite(std::uint64_t, unsigned, std::uint64_t) override {}

  std::uint32_t PioRead(std::uint16_t port, unsigned size) override;
  void PioWrite(std::uint16_t port, unsigned size, std::uint32_t value) override;

  // Programmatic control (used by the hypervisor, which owns this device).
  void Start(sim::PicoSeconds period);
  void Stop();

  std::uint32_t gsi() const { return gsi_; }
  std::uint64_t ticks() const { return ticks_; }

  Status SaveState(sim::SnapWriter& w) const {
    w.U64(static_cast<std::uint64_t>(period_));
    w.U64(generation_);
    w.U64(ticks_);
    w.U16(period_lo_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    period_ = static_cast<sim::PicoSeconds>(r.U64());
    generation_ = r.U64();
    ticks_ = r.U64();
    period_lo_ = r.U16();
    return r.status();
  }

 private:
  void Tick();
  void ScheduleTick();

  // snapshot-x-list(PlatformTimer): irq_, gsi_, events_, period_,
  // generation_, ticks_, period_lo_
  IrqChip* irq_;
  std::uint32_t gsi_;
  sim::EventQueue* events_;
  sim::PicoSeconds period_ = 0;
  std::uint64_t generation_ = 0;  // Invalidates stale scheduled ticks.
  std::uint64_t ticks_ = 0;
  std::uint16_t period_lo_ = 0;
};

}  // namespace nova::hw

#endif  // SRC_HW_TIMER_DEV_H_
