// A simulated processor: a cycle counter at a fixed frequency plus the
// structures hardware keeps per logical CPU (TLB). Execution is driven by
// the microhypervisor; the CPU itself only accounts time.
#ifndef SRC_HW_CPU_H_
#define SRC_HW_CPU_H_

#include <cstdint>

#include "src/hw/cpu_model.h"
#include "src/hw/tlb.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace nova::hw {

class Cpu {
 public:
  Cpu(std::uint32_t id, const CpuModel* model)
      : id_(id),
        model_(model),
        tlb_(model->tlb_4k_entries, model->tlb_large_entries) {
    busy_.SetBusy(0, true);  // A CPU is busy unless explicitly idled.
  }

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  std::uint32_t id() const { return id_; }
  const CpuModel& model() const { return *model_; }
  Tlb& tlb() { return tlb_; }

  // Account `c` cycles of work on this CPU.
  void Charge(sim::Cycles c) { cycles_ += c; }
  sim::Cycles cycles() const { return cycles_; }

  // Current local time.
  sim::PicoSeconds NowPs() const { return model_->frequency.CyclesToPicos(cycles_); }

  // Jump local time forward to `t` (idle skip: the CPU was halted while
  // devices worked).
  void AdvanceToPs(sim::PicoSeconds t) {
    const sim::Cycles target = model_->frequency.PicosToCycles(t);
    if (target > cycles_) {
      cycles_ = target;
    }
  }

  // Busy/idle accounting for the utilization figures. "Idle" means the CPU
  // sits in the hypervisor idle loop or a halted guest.
  void SetIdle(bool idle) {
    busy_.SetBusy(NowPs(), !idle);
    idle_ = idle;
  }
  bool idle() const { return idle_; }
  double Utilization() const { return busy_.Utilization(NowPs()); }
  void ResetUtilization() { busy_.Reset(NowPs()); }

  Status SaveState(sim::SnapWriter& w) const {
    w.U64(cycles_);
    w.Bool(idle_);
    Status st = busy_.SaveState(w);
    if (!Ok(st)) {
      return st;
    }
    return tlb_.SaveState(w);
  }
  Status LoadState(sim::SnapReader& r) {
    cycles_ = r.U64();
    idle_ = r.Bool();
    Status st = busy_.LoadState(r);
    if (!Ok(st)) {
      return st;
    }
    return tlb_.LoadState(r);
  }

 private:
  // snapshot-x-list(Cpu): id_, model_, tlb_, cycles_, busy_, idle_
  std::uint32_t id_;
  const CpuModel* model_;
  Tlb tlb_;
  sim::Cycles cycles_ = 0;
  sim::UtilizationTracker busy_;
  bool idle_ = false;
};

}  // namespace nova::hw

#endif  // SRC_HW_CPU_H_
