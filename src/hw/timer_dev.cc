#include "src/hw/timer_dev.h"

namespace nova::hw {

std::uint32_t PlatformTimer::PioRead(std::uint16_t port, unsigned /*size*/) {
  switch (port) {
    case timer::kPortPeriodLo:
      return static_cast<std::uint32_t>((period_ / sim::kPicosPerMicro) & 0xffff);
    case timer::kPortPeriodHi:
      return static_cast<std::uint32_t>((period_ / sim::kPicosPerMicro) >> 16);
    case timer::kPortControl:
      return period_ != 0 ? 1 : 0;
    default:
      return 0xffffffffu;
  }
}

void PlatformTimer::PioWrite(std::uint16_t port, unsigned /*size*/, std::uint32_t value) {
  switch (port) {
    case timer::kPortPeriodLo:
      period_lo_ = static_cast<std::uint16_t>(value);
      break;
    case timer::kPortPeriodHi: {
      const std::uint32_t micros = (value << 16) | period_lo_;
      (void)Start(sim::Microseconds(micros));
      break;
    }
    case timer::kPortControl:
      if (value == 0) {
        Stop();
      }
      break;
    default:
      break;
  }
}

void PlatformTimer::ScheduleTick() {
  const std::uint64_t gen = generation_;
  events_->ScheduleAfterTagged(
      period_,
      sim::EventTag{sim::EventQueue::OwnerToken("hw.timer"), /*op=*/1, gen},
      [this, gen] {
        if (gen == generation_) {
          Tick();
        }
      });
}

void PlatformTimer::Start(sim::PicoSeconds period) {
  period_ = period;
  ++generation_;
  ScheduleTick();
}

void PlatformTimer::Stop() {
  period_ = 0;
  ++generation_;
}

void PlatformTimer::Tick() {
  ++ticks_;
  irq_->Assert(gsi_);
  ScheduleTick();
}

}  // namespace nova::hw
