#include "src/hw/irq.h"

namespace nova::hw {

void IrqChip::set_tracer(sim::Tracer* t) {
  tracer_ = t;
  trace_assert_ = t->Intern("IRQ Assert");
  trace_deliver_ = t->Intern("IRQ Deliver");
}

void IrqChip::Configure(std::uint32_t gsi, std::uint32_t cpu, std::uint8_t vector) {
  if (gsi >= kNumGsis || cpu >= kMaxCpus) {
    return;
  }
  routes_[gsi] = Route{.enabled = true, .masked = true, .cpu = cpu, .vector = vector};
}

void IrqChip::Mask(std::uint32_t gsi) {
  if (gsi < kNumGsis) {
    routes_[gsi].masked = true;
  }
}

void IrqChip::Unmask(std::uint32_t gsi) {
  if (gsi >= kNumGsis) {
    return;
  }
  routes_[gsi].masked = false;
  if (latched_[gsi]) {
    latched_[gsi] = false;
    Deliver(gsi);
  }
}

void IrqChip::Assert(std::uint32_t gsi) {
  if (gsi >= kNumGsis) {
    return;
  }
  ++assert_counts_[gsi];
  tracer_->Instant(sim::TraceCat::kIrq, trace_assert_, gsi);
  const Route& r = routes_[gsi];
  if (!r.enabled) {
    return;  // Unrouted interrupts are dropped.
  }
  if (r.masked) {
    latched_[gsi] = true;
    return;
  }
  Deliver(gsi);
}

void IrqChip::Deliver(std::uint32_t gsi) {
  const Route& r = routes_[gsi];
  tracer_->Instant(sim::TraceCat::kIrq, trace_deliver_, gsi, r.vector);
  pending_[r.cpu][r.vector / 64] |= 1ull << (r.vector % 64);
}

std::optional<std::uint8_t> IrqChip::PendingVector(std::uint32_t cpu) const {
  if (cpu >= kMaxCpus) {
    return std::nullopt;
  }
  // Highest vector has highest priority, like the x86 local APIC.
  for (int word = 3; word >= 0; --word) {
    const std::uint64_t bits = pending_[cpu][word];
    if (bits != 0) {
      const int bit = 63 - __builtin_clzll(bits);
      return static_cast<std::uint8_t>(word * 64 + bit);
    }
  }
  return std::nullopt;
}

std::vector<std::uint8_t> IrqChip::PendingVectors(std::uint32_t cpu) const {
  std::vector<std::uint8_t> out;
  if (cpu >= kMaxCpus) {
    return out;
  }
  for (int word = 3; word >= 0; --word) {
    std::uint64_t bits = pending_[cpu][word];
    while (bits != 0) {
      const int bit = 63 - __builtin_clzll(bits);
      out.push_back(static_cast<std::uint8_t>(word * 64 + bit));
      bits &= ~(1ull << bit);
    }
  }
  return out;
}

void IrqChip::Acknowledge(std::uint32_t cpu, std::uint8_t vector) {
  if (cpu >= kMaxCpus) {
    return;
  }
  pending_[cpu][vector / 64] &= ~(1ull << (vector % 64));
}

bool IrqChip::HasPending(std::uint32_t cpu) const {
  if (cpu >= kMaxCpus) {
    return false;
  }
  for (const std::uint64_t word : pending_[cpu]) {
    if (word != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace nova::hw
