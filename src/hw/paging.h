// Page-table formats and walkers.
//
// Two real radix-tree formats are implemented, mirroring the hardware the
// paper evaluates on:
//   kTwoLevel  — legacy 32-bit x86: 1024 x 4-byte entries per table,
//                4 KiB pages and 4 MiB superpages (AMD host tables and all
//                guest page tables in this reproduction).
//   kFourLevel — x86-64 style: 512 x 8-byte entries, 4 KiB pages and 2 MiB
//                superpages (Intel EPT host tables).
//
// Tables live in simulated physical memory; walks dereference real entries,
// set real accessed/dirty bits, and report how many memory accesses they
// performed so callers can charge cycles.
#ifndef SRC_HW_PAGING_H_
#define SRC_HW_PAGING_H_

#include <cstdint>
#include <functional>

#include "src/hw/cpu_model.h"
#include "src/hw/phys_mem.h"
#include "src/sim/status.h"

namespace nova::hw {

using VirtAddr = std::uint64_t;

// Common PTE layout (both formats use the same bit assignment; the
// two-level format simply truncates to 32 bits on store).
namespace pte {
constexpr std::uint64_t kPresent = 1ull << 0;
constexpr std::uint64_t kWritable = 1ull << 1;
constexpr std::uint64_t kUser = 1ull << 2;
constexpr std::uint64_t kAccessed = 1ull << 5;
constexpr std::uint64_t kDirty = 1ull << 6;
constexpr std::uint64_t kLarge = 1ull << 7;   // Superpage leaf.
constexpr std::uint64_t kGlobal = 1ull << 8;
constexpr std::uint64_t kAddrMask = ~0xfffull;
}  // namespace pte

// Access permissions requested by a translation.
struct Access {
  bool write = false;
  bool user = false;      // Access from guest user mode (CPL 3).
  bool execute = false;
};

// Page-fault style error codes, modelled after the x86 #PF error word.
struct PageFaultInfo {
  bool present = false;   // Fault caused by a protection violation (true)
                          // or a non-present entry (false).
  bool write = false;
  bool user = false;
};

struct WalkResult {
  Status status = Status::kSuccess;  // kMemoryFault on a miss/violation.
  PhysAddr pa = 0;                   // Final physical address.
  std::uint64_t page_size = 0;       // 4K / 2M / 4M mapping granularity.
  std::uint64_t pte = 0;             // Leaf entry as stored.
  PhysAddr pte_addr = 0;             // Where the leaf entry lives.
  int accesses = 0;                  // Memory accesses the walk performed.
  PageFaultInfo fault;               // Valid when status != kSuccess.
};

// Page size helpers per mode.
constexpr std::uint64_t LargePageSize(PagingMode mode) {
  return mode == PagingMode::kTwoLevel ? (4ull << 20) : (2ull << 20);
}
constexpr int Levels(PagingMode mode) {
  return mode == PagingMode::kTwoLevel ? 2 : 4;
}

// A page table rooted at a physical frame inside a PhysMem.
class PageTable {
 public:
  // Allocate a zeroed physical frame for an intermediate table; returns the
  // frame's physical address, or 0 on exhaustion.
  using FrameAllocator = std::function<PhysAddr()>;

  PageTable(PhysMem* mem, PagingMode mode, PhysAddr root)
      : mem_(mem), mode_(mode), root_(root) {}

  PhysAddr root() const { return root_; }
  PagingMode mode() const { return mode_; }

  // Translate `va` for `access`. When `set_ad` is true, accessed/dirty bits
  // are written back to the in-memory entries like a hardware walker would.
  WalkResult Walk(VirtAddr va, Access access, bool set_ad) const;

  // Install a mapping. `page_size` must be kPageSize or LargePageSize(mode),
  // and va/pa must be aligned to it. Intermediate tables are allocated via
  // `alloc`. Replaces any existing mapping at that slot.
  Status Map(VirtAddr va, PhysAddr pa, std::uint64_t page_size,
             std::uint64_t flags, const FrameAllocator& alloc);

  // Remove the mapping covering `va` (any size). Returns kSuccess even when
  // nothing was mapped.
  Status Unmap(VirtAddr va);

  // Read the leaf entry covering `va` without permission checks.
  WalkResult Probe(VirtAddr va) const;

  // Rewrite the leaf entry covering `va`: set then clear the given flag
  // masks (dirty-log write-protection toggles pte::kWritable this way).
  // kMemoryFault when nothing is mapped. Does not flush any TLB.
  Status SetLeafFlags(VirtAddr va, std::uint64_t set, std::uint64_t clear);

  // Tear down the radix tree: release every intermediate table frame (and
  // the root itself) through `free_frame`. Leaf pages are the owner's
  // problem — only paging-structure frames are returned. The table must
  // not be used afterwards.
  using FrameReleaser = std::function<void(PhysAddr)>;
  void FreeTables(const FrameReleaser& free_frame);

 private:
  void FreeLevel(PhysAddr table, int level, const FrameReleaser& free_frame);
  struct LevelInfo {
    int shift;            // Bit position of this level's index field.
    int bits;             // Index width.
    std::uint64_t esize;  // Entry size in bytes.
  };
  LevelInfo Level(int level) const;  // level counts down to 0 (leaf).

  std::uint64_t ReadEntry(PhysAddr table, std::uint64_t index) const;
  void WriteEntry(PhysAddr table, std::uint64_t index, std::uint64_t entry) const;

  PhysMem* mem_;
  PagingMode mode_;
  PhysAddr root_;
};

}  // namespace nova::hw

#endif  // SRC_HW_PAGING_H_
