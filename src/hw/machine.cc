#include "src/hw/machine.h"

namespace nova::hw {

Machine::Machine(const MachineConfig& config)
    : mem_(config.ram_size), iommu_(&mem_, config.iommu_present) {
  irq_.set_tracer(&tracer_);
  std::uint32_t id = 0;
  for (const CpuModel* model : config.cpus) {
    cpus_.push_back(std::make_unique<Cpu>(id++, model));
  }
}

bool Machine::SkipToNextEvent() {
  if (events_.empty()) {
    return false;
  }
  const sim::PicoSeconds deadline = events_.NextDeadline();
  if (!events_.RunOne()) {
    return false;
  }
  for (auto& c : cpus_) {
    c->AdvanceToPs(deadline);
  }
  return true;
}

}  // namespace nova::hw
