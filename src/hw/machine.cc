#include "src/hw/machine.h"

#include <cstdlib>

namespace nova::hw {

MachineConfig ApplyTestCpuOverride(MachineConfig config) {
  const char* env = std::getenv("NOVA_TEST_CPUS");
  if (env == nullptr || config.cpus.size() != 1) {
    return config;
  }
  const long n = std::strtol(env, nullptr, 10);
  if (n > 1 && n <= 64) {
    config.cpus.assign(static_cast<std::size_t>(n), config.cpus[0]);
  }
  return config;
}

Machine::Machine(const MachineConfig& config_in)
    : mem_(config_in.ram_size), iommu_(&mem_, config_in.iommu_present) {
  const MachineConfig config = ApplyTestCpuOverride(config_in);
  irq_.set_tracer(&tracer_);
  std::uint32_t id = 0;
  for (const CpuModel* model : config.cpus) {
    cpus_.push_back(std::make_unique<Cpu>(id++, model));
  }
}

sim::PicoSeconds Machine::MinNowPs() const {
  sim::PicoSeconds min = cpus_[0]->NowPs();
  for (const auto& c : cpus_) {
    if (c->NowPs() < min) {
      min = c->NowPs();
    }
  }
  return min;
}

Status Machine::SaveState(sim::Snapshot& snap) const {
  Status st = mem_.SaveState(snap.Section("hw.mem", 1));
  if (!Ok(st)) {
    return st;
  }
  st = events_.SaveState(snap.Section("sim.events", 1));
  if (!Ok(st)) {
    return st;
  }
  st = irq_.SaveState(snap.Section("hw.irq", 1));
  if (!Ok(st)) {
    return st;
  }
  st = iommu_.SaveState(snap.Section("hw.iommu", 1));
  if (!Ok(st)) {
    return st;
  }
  st = stats_.SaveState(snap.Section("sim.stats", 1));
  if (!Ok(st)) {
    return st;
  }
  st = tracer_.SaveState(snap.Section("sim.trace", 1));
  if (!Ok(st)) {
    return st;
  }
  sim::SnapWriter& cw = snap.Section("hw.cpus", 1);
  cw.U32(static_cast<std::uint32_t>(cpus_.size()));
  for (const auto& c : cpus_) {
    st = c->SaveState(cw);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kSuccess;
}

Status Machine::LoadState(const sim::Snapshot& snap) {
  sim::SnapReader mr = snap.Open("hw.mem", 1);
  Status st = mem_.LoadState(mr);
  if (!Ok(st) || !Ok(st = mr.Finish())) {
    return st;
  }
  sim::SnapReader er = snap.Open("sim.events", 1);
  st = events_.LoadState(er);
  if (!Ok(st) || !Ok(st = er.Finish())) {
    return st;
  }
  sim::SnapReader ir = snap.Open("hw.irq", 1);
  st = irq_.LoadState(ir);
  if (!Ok(st) || !Ok(st = ir.Finish())) {
    return st;
  }
  sim::SnapReader ur = snap.Open("hw.iommu", 1);
  st = iommu_.LoadState(ur);
  if (!Ok(st) || !Ok(st = ur.Finish())) {
    return st;
  }
  sim::SnapReader sr = snap.Open("sim.stats", 1);
  st = stats_.LoadState(sr);
  if (!Ok(st) || !Ok(st = sr.Finish())) {
    return st;
  }
  sim::SnapReader tr = snap.Open("sim.trace", 1);
  st = tracer_.LoadState(tr);
  if (!Ok(st) || !Ok(st = tr.Finish())) {
    return st;
  }
  sim::SnapReader cr = snap.Open("hw.cpus", 1);
  if (cr.U32() != cpus_.size()) {
    return Status::kBadParameter;  // Twin must match the CPU topology.
  }
  for (auto& c : cpus_) {
    st = c->LoadState(cr);
    if (!Ok(st)) {
      return st;
    }
  }
  return cr.Finish();
}

bool Machine::SkipToNextEvent() {
  if (events_.empty()) {
    return false;
  }
  const sim::PicoSeconds deadline = events_.NextDeadline();
  if (!events_.RunOne()) {
    return false;
  }
  for (auto& c : cpus_) {
    c->AdvanceToPs(deadline);
  }
  return true;
}

}  // namespace nova::hw
