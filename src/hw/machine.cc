#include "src/hw/machine.h"

#include <cstdlib>

namespace nova::hw {

MachineConfig ApplyTestCpuOverride(MachineConfig config) {
  const char* env = std::getenv("NOVA_TEST_CPUS");
  if (env == nullptr || config.cpus.size() != 1) {
    return config;
  }
  const long n = std::strtol(env, nullptr, 10);
  if (n > 1 && n <= 64) {
    config.cpus.assign(static_cast<std::size_t>(n), config.cpus[0]);
  }
  return config;
}

Machine::Machine(const MachineConfig& config_in)
    : mem_(config_in.ram_size), iommu_(&mem_, config_in.iommu_present) {
  const MachineConfig config = ApplyTestCpuOverride(config_in);
  irq_.set_tracer(&tracer_);
  std::uint32_t id = 0;
  for (const CpuModel* model : config.cpus) {
    cpus_.push_back(std::make_unique<Cpu>(id++, model));
  }
}

sim::PicoSeconds Machine::MinNowPs() const {
  sim::PicoSeconds min = cpus_[0]->NowPs();
  for (const auto& c : cpus_) {
    if (c->NowPs() < min) {
      min = c->NowPs();
    }
  }
  return min;
}

bool Machine::SkipToNextEvent() {
  if (events_.empty()) {
    return false;
  }
  const sim::PicoSeconds deadline = events_.NextDeadline();
  if (!events_.RunOne()) {
    return false;
  }
  for (auto& c : cpus_) {
    c->AdvanceToPs(deadline);
  }
  return true;
}

}  // namespace nova::hw
