#include "src/hw/vm_engine.h"

#include <algorithm>

namespace nova::hw {

const char* ExitReasonName(ExitReason r) {
  switch (r) {
    case ExitReason::kNone: return "none";
    case ExitReason::kPageFault: return "page-fault";
    case ExitReason::kEptViolation: return "ept-violation";
    case ExitReason::kPio: return "port-io";
    case ExitReason::kCpuid: return "cpuid";
    case ExitReason::kHlt: return "hlt";
    case ExitReason::kMovCr: return "mov-cr";
    case ExitReason::kInvlpg: return "invlpg";
    case ExitReason::kExtInt: return "external-interrupt";
    case ExitReason::kIntrWindow: return "interrupt-window";
    case ExitReason::kRecall: return "recall";
    case ExitReason::kVmcall: return "vmcall";
    case ExitReason::kPreempt: return "preemption";
    case ExitReason::kError: return "error";
  }
  return "?";
}

VmEngine::VmEngine(Cpu* cpu, PhysMem* mem, Bus* bus, IrqChip* irq)
    : cpu_(cpu), mem_(mem), bus_(bus), irq_(irq) {}

std::uint64_t VmEngine::PhysRead(PhysAddr pa, unsigned size) {
  std::uint64_t out = 0;
  if (bus_->FindMmio(pa) != nullptr) {
    cpu_->Charge(costs_.mmio_access);
    (void)bus_->MmioRead(pa, size, &out);
    return out;
  }
  cpu_->Charge(cpu_->model().mem_access);
  (void)mem_->Read(pa, &out, size);
  return out;
}

void VmEngine::PhysWrite(PhysAddr pa, unsigned size, std::uint64_t value) {
  if (bus_->FindMmio(pa) != nullptr) {
    cpu_->Charge(costs_.mmio_access);
    (void)bus_->MmioWrite(pa, size, value);
    return;
  }
  cpu_->Charge(cpu_->model().mem_access);
  (void)mem_->Write(pa, &value, size);
}

VmEngine::XlatResult VmEngine::TranslateGpa(const VmControls& ctl,
                                            std::uint64_t gpa, Access access) {
  XlatResult r;
  if (ctl.mode != TranslationMode::kNested) {
    r.hpa = gpa;  // Native / shadow: guest-physical is host-physical.
    return r;
  }
  if (auto hit = nested_tlb_.Lookup(ctl.tag, gpa, access)) {
    r.hpa = *hit;
    return r;
  }
  PageTable host(mem_, ctl.nested_format, ctl.nested_root);
  const WalkResult w = host.Walk(gpa, access, /*set_ad=*/false);
  cpu_->Charge(static_cast<sim::Cycles>(w.accesses) * cpu_->model().mem_access);
  if (!Ok(w.status)) {
    r.kind = XlatResult::Kind::kHostFault;
    r.gpa = gpa;
    r.pf = w.fault;
    return r;
  }
  (void)nested_tlb_.Insert(ctl.tag, gpa, w.pa, w.page_size,
                     (w.pte & pte::kWritable) != 0, true, true);
  r.hpa = w.pa;
  return r;
}

VmEngine::XlatResult VmEngine::Translate(GuestState& gs, const VmControls& ctl,
                                         VirtAddr gva, Access access) {
  XlatResult r;
  Tlb& tlb = cpu_->tlb();
  if (auto hit = tlb.Lookup(ctl.tag, gva, access)) {
    r.hpa = *hit;
    return r;
  }
  const CpuModel& model = cpu_->model();

  switch (ctl.mode) {
    case TranslationMode::kNative: {
      if (!gs.paging) {
        r.hpa = gva;
        (void)tlb.Insert(ctl.tag, gva, gva, kPageSize, true, true, true);
        return r;
      }
      PageTable pt(mem_, PagingMode::kTwoLevel, gs.cr3);
      const WalkResult w = pt.Walk(gva, access, /*set_ad=*/true);
      cpu_->Charge(static_cast<sim::Cycles>(w.accesses) * model.mem_access);
      if (!Ok(w.status)) {
        r.kind = XlatResult::Kind::kGuestFault;
        r.pf = w.fault;
        return r;
      }
      (void)tlb.Insert(ctl.tag, gva, w.pa, w.page_size, (w.pte & pte::kWritable) != 0,
                 (w.pte & pte::kUser) != 0, (w.pte & pte::kDirty) != 0,
                 (w.pte & pte::kGlobal) != 0);
      r.hpa = w.pa;
      return r;
    }

    case TranslationMode::kNested: {
      std::uint64_t gpa = gva;
      std::uint64_t guest_page = 0;  // 0: determined by the host page below.
      std::uint64_t leaf = 0;
      if (gs.paging) {
        // Two-dimensional walk: every guest-table access itself goes
        // through the nested tables.
        std::uint64_t table_gpa = gs.cr3;
        for (int level = 1; level >= 0; --level) {
          const int shift = 12 + 10 * level;
          const std::uint64_t index = (gva >> shift) & 0x3ff;
          const std::uint64_t entry_gpa = table_gpa + index * 4;
          const XlatResult tx =
              TranslateGpa(ctl, entry_gpa, Access{.write = false});
          if (tx.kind != XlatResult::Kind::kOk) {
            return tx;  // EPT violation while walking the guest table.
          }
          std::uint64_t entry = 0;
          (void)mem_->Read(tx.hpa, &entry, 4);
          cpu_->Charge(model.mem_access);

          if (!(entry & pte::kPresent) ||
              (access.write && !(entry & pte::kWritable)) ||
              (access.user && !(entry & pte::kUser))) {
            r.kind = XlatResult::Kind::kGuestFault;
            r.pf = {.present = (entry & pte::kPresent) != 0,
                    .write = access.write,
                    .user = access.user};
            return r;
          }

          const bool is_leaf = level == 0 || (entry & pte::kLarge) != 0;
          std::uint64_t updated = entry | pte::kAccessed;
          if (is_leaf && access.write) {
            updated |= pte::kDirty;
          }
          if (updated != entry) {
            (void)mem_->Write(tx.hpa, &updated, 4);
            cpu_->Charge(model.mem_access);
            entry = updated;
          }
          if (is_leaf) {
            guest_page = level == 0 ? kPageSize : (4ull << 20);
            gpa = (entry & pte::kAddrMask & ~(guest_page - 1)) |
                  (gva & (guest_page - 1));
            leaf = entry;
            break;
          }
          table_gpa = entry & pte::kAddrMask;
        }
      }
      const XlatResult fx = TranslateGpa(ctl, gpa, access);
      if (fx.kind != XlatResult::Kind::kOk) {
        return fx;
      }
      // The TLB caches GVA->HPA at the smaller of the two granularities.
      std::uint64_t span = guest_page != 0 ? guest_page : kPageSize;
      const bool writable = !gs.paging || (leaf & pte::kWritable) != 0;
      const bool user = !gs.paging || (leaf & pte::kUser) != 0;
      (void)tlb.Insert(ctl.tag, gva, fx.hpa, std::min(span, kPageSize * 512),
                 writable, user, access.write);
      r.hpa = fx.hpa;
      return r;
    }

    case TranslationMode::kShadow: {
      PageTable shadow(mem_, ctl.nested_format, ctl.nested_root);
      const WalkResult w = shadow.Walk(gva, access, /*set_ad=*/false);
      cpu_->Charge(static_cast<sim::Cycles>(w.accesses) * model.mem_access);
      if (!Ok(w.status)) {
        r.kind = XlatResult::Kind::kShadowMiss;
        r.pf = w.fault;
        return r;
      }
      (void)tlb.Insert(ctl.tag, gva, w.pa, w.page_size, (w.pte & pte::kWritable) != 0,
                 (w.pte & pte::kUser) != 0, (w.pte & pte::kDirty) != 0);
      r.hpa = w.pa;
      return r;
    }
  }
  return r;
}

bool VmEngine::DeliverEvent(GuestState& gs, std::uint8_t vector) {
  if (vector >= kNumVectors || gs.idt[vector] == 0 ||
      gs.frame_depth >= kMaxIntrNesting) {
    return false;
  }
  gs.frames[gs.frame_depth++] = {gs.rip, gs.interrupts_enabled, gs.regs};
  gs.rip = gs.idt[vector];
  gs.interrupts_enabled = false;
  gs.halted = false;
  cpu_->Charge(costs_.event_delivery);
  return true;
}

bool VmEngine::HandleXlatFault(GuestState& gs, const XlatResult& x, VirtAddr gva,
                               Access access, VmExit* exit) {
  switch (x.kind) {
    case XlatResult::Kind::kGuestFault:
      gs.cr2 = gva;
      if (!DeliverEvent(gs, kVectorPageFault)) {
        exit->reason = ExitReason::kError;
      }
      return false;  // Instruction restarts (or we exited with kError).
    case XlatResult::Kind::kHostFault:
      exit->reason = ExitReason::kEptViolation;
      exit->gva = gva;
      exit->gpa = x.gpa;
      exit->is_write = access.write;
      return false;
    case XlatResult::Kind::kShadowMiss:
      exit->reason = ExitReason::kPageFault;
      exit->gva = gva;
      exit->pf = x.pf;
      exit->is_write = access.write;
      return false;
    case XlatResult::Kind::kOk:
      return true;
  }
  return true;
}

bool VmEngine::MemRead(GuestState& gs, const VmControls& ctl, VirtAddr gva,
                       unsigned size, std::uint64_t* out, VmExit* exit) {
  const Access access{.write = false};
  XlatResult x = Translate(gs, ctl, gva, access);
  if (x.kind != XlatResult::Kind::kOk) {
    return HandleXlatFault(gs, x, gva, access, exit);
  }
  *out = PhysRead(x.hpa, size);
  return true;
}

bool VmEngine::MemWrite(GuestState& gs, const VmControls& ctl, VirtAddr gva,
                        unsigned size, std::uint64_t value, VmExit* exit) {
  const Access access{.write = true};
  XlatResult x = Translate(gs, ctl, gva, access);
  if (x.kind != XlatResult::Kind::kOk) {
    return HandleXlatFault(gs, x, gva, access, exit);
  }
  PhysWrite(x.hpa, size, value);
  return true;
}

VmExit VmEngine::Run(GuestState& gs, const VmControls& ctl,
                     sim::Cycles cycle_budget) {
  const sim::Cycles start = cpu_->cycles();
  for (;;) {
    if (cpu_->cycles() - start >= cycle_budget) {
      return VmExit{.reason = ExitReason::kPreempt};
    }
    // --- Instruction-boundary event checks ---
    if (gs.recall_pending) {
      return VmExit{.reason = ExitReason::kRecall};
    }
    if (irq_->HasPending(cpu_->id())) {
      if (ctl.mode != TranslationMode::kNative && !ctl.direct_interrupts) {
        return VmExit{.reason = ExitReason::kExtInt};
      }
      if (gs.interrupts_enabled) {
        const auto vector = irq_->PendingVector(cpu_->id());
        irq_->Acknowledge(cpu_->id(), *vector);
        if (!DeliverEvent(gs, *vector)) {
          return VmExit{.reason = ExitReason::kError};
        }
        continue;
      }
    }
    if (gs.inject_pending && gs.interrupts_enabled) {
      gs.inject_pending = false;
      injections_.Add();
      if (!DeliverEvent(gs, gs.inject_vector)) {
        return VmExit{.reason = ExitReason::kError};
      }
      continue;
    }
    if (gs.halted) {
      return VmExit{.reason = ExitReason::kHlt};
    }

    const StepResult step = Step(gs, ctl);
    if (step.exited) {
      return step.exit;
    }
  }
}

VmEngine::StepResult VmEngine::Step(GuestState& gs, const VmControls& ctl) {
  StepResult sr;
  if ((gs.rip & (isa::kInsnSize - 1)) != 0) {
    sr.exited = true;
    sr.exit.reason = ExitReason::kError;
    return sr;
  }
  // Fetch through the TLB and page tables.
  const Access fetch{.write = false, .execute = true};
  XlatResult x = Translate(gs, ctl, gs.rip, fetch);
  if (x.kind != XlatResult::Kind::kOk) {
    VmExit exit;
    HandleXlatFault(gs, x, gs.rip, fetch, &exit);
    if (exit.reason != ExitReason::kNone) {
      sr.exited = true;
      sr.exit = exit;
    }
    return sr;  // #PF delivered internally: retry from the handler.
  }
  std::uint8_t bytes[isa::kInsnSize];
  (void)mem_->Read(x.hpa, bytes, isa::kInsnSize);
  cpu_->Charge(cpu_->model().mem_access);
  const isa::Insn insn = isa::Decode(bytes);
  cpu_->Charge(cpu_->model().op_cost);
  insns_.Add();
  return Execute(gs, ctl, insn, gs.rip + isa::kInsnSize);
}

VmEngine::StepResult VmEngine::Execute(GuestState& gs, const VmControls& ctl,
                                       const isa::Insn& insn,
                                       std::uint64_t next_rip) {
  using isa::Opcode;
  StepResult sr;
  auto exit_here = [&](VmExit e) {  // Exit with rip at the current insn.
    sr.exited = true;
    sr.exit = e;
  };

  switch (insn.opcode) {
    case Opcode::kNopBlock:
      cpu_->Charge(insn.imm32);
      gs.rip = next_rip;
      break;

    case Opcode::kMovImm:
      gs.regs[insn.r1 & 7] = insn.imm64;
      gs.rip = next_rip;
      break;

    case Opcode::kAdd:
      gs.regs[insn.r1 & 7] +=
          insn.r2 != isa::kNoReg ? gs.regs[insn.r2 & 7] : insn.imm64;
      gs.rip = next_rip;
      break;

    case Opcode::kAnd:
      gs.regs[insn.r1 & 7] &=
          insn.r2 != isa::kNoReg ? gs.regs[insn.r2 & 7] : insn.imm64;
      gs.rip = next_rip;
      break;

    case Opcode::kLoad: {
      const std::uint64_t addr =
          (insn.r2 != isa::kNoReg ? gs.regs[insn.r2 & 7] : 0) + insn.imm64;
      std::uint64_t value = 0;
      VmExit exit;
      if (!MemRead(gs, ctl, addr, 8, &value, &exit)) {
        if (exit.reason != ExitReason::kNone) {
          exit_here(exit);
        }
        break;
      }
      gs.regs[insn.r1 & 7] = value;
      gs.rip = next_rip;
      break;
    }

    case Opcode::kStore: {
      const std::uint64_t addr =
          (insn.r2 != isa::kNoReg ? gs.regs[insn.r2 & 7] : 0) + insn.imm64;
      VmExit exit;
      if (!MemWrite(gs, ctl, addr, 8, gs.regs[insn.r1 & 7], &exit)) {
        if (exit.reason != ExitReason::kNone) {
          exit_here(exit);
        }
        break;
      }
      gs.rip = next_rip;
      break;
    }

    case Opcode::kCopy: {
      // Page-chunked copy with per-page translation and per-word charge.
      std::uint64_t dst = gs.regs[insn.r1 & 7];
      std::uint64_t src = gs.regs[insn.r2 & 7];
      std::uint64_t remaining = insn.imm32;
      while (remaining > 0) {
        const std::uint64_t chunk = std::min<std::uint64_t>(
            {remaining, kPageSize - (src & kPageMask), kPageSize - (dst & kPageMask)});
        XlatResult sx = Translate(gs, ctl, src, Access{.write = false});
        if (sx.kind != XlatResult::Kind::kOk) {
          VmExit exit;
          HandleXlatFault(gs, sx, src, Access{.write = false}, &exit);
          if (exit.reason != ExitReason::kNone) {
            exit_here(exit);
          }
          return sr;  // Restart the whole copy after the fault resolves.
        }
        XlatResult dx = Translate(gs, ctl, dst, Access{.write = true});
        if (dx.kind != XlatResult::Kind::kOk) {
          VmExit exit;
          HandleXlatFault(gs, dx, dst, Access{.write = true}, &exit);
          if (exit.reason != ExitReason::kNone) {
            exit_here(exit);
          }
          return sr;
        }
        std::uint8_t buf[kPageSize];
        (void)mem_->Read(sx.hpa, buf, chunk);
        (void)mem_->Write(dx.hpa, buf, chunk);
        cpu_->Charge((chunk + 7) / 8 * cpu_->model().word_copy +
                     2 * cpu_->model().mem_access);
        src += chunk;
        dst += chunk;
        remaining -= chunk;
      }
      gs.rip = next_rip;
      break;
    }

    case Opcode::kJmp:
      gs.rip = insn.imm64;
      break;

    case Opcode::kJnz:
      gs.rip = gs.regs[insn.r1 & 7] != 0 ? insn.imm64 : next_rip;
      break;

    case Opcode::kLoop:
      gs.rip = --gs.regs[insn.r1 & 7] != 0 ? insn.imm64 : next_rip;
      break;

    case Opcode::kOut:
    case Opcode::kIn: {
      const bool is_out = insn.opcode == Opcode::kOut;
      const auto port = static_cast<std::uint16_t>(insn.imm32);
      const bool direct =
          ctl.mode == TranslationMode::kNative ||
          (ctl.io_passthrough != nullptr && ctl.io_passthrough->test(port));
      if (direct) {
        cpu_->Charge(costs_.pio_access);
        if (is_out) {
          (void)bus_->PioWrite(port, 4, static_cast<std::uint32_t>(gs.regs[insn.r1 & 7]));
        } else {
          std::uint32_t v = 0;
          (void)bus_->PioRead(port, 4, &v);
          gs.regs[insn.r1 & 7] = v;
        }
        gs.rip = next_rip;
        break;
      }
      exit_here(VmExit{.reason = ExitReason::kPio,
                       .is_write = is_out,
                       .port = port,
                       .width = 4,
                       .value = is_out ? gs.regs[insn.r1 & 7] : 0,
                       .reg = static_cast<std::uint8_t>(insn.r1 & 7)});
      break;
    }

    case Opcode::kCpuid:
      if (ctl.intercept_cpuid) {
        exit_here(VmExit{.reason = ExitReason::kCpuid});
        break;
      }
      cpu_->Charge(costs_.cpuid);
      gs.regs[0] = 0x0000'0001;  // Stepping-style identification leaf.
      gs.regs[1] = cpu_->model().frequency.khz();
      gs.regs[2] = cpu_->model().has_guest_tlb_tags ? 1 : 0;
      gs.regs[3] = 0x0178'bfbf;
      gs.rip = next_rip;
      break;

    case Opcode::kHlt:
      gs.rip = next_rip;
      if (ctl.intercept_hlt) {
        exit_here(VmExit{.reason = ExitReason::kHlt});
        break;
      }
      gs.halted = true;
      exit_here(VmExit{.reason = ExitReason::kHlt});
      break;

    case Opcode::kRdtsc:
      gs.regs[insn.r1 & 7] = cpu_->cycles();
      gs.rip = next_rip;
      break;

    case Opcode::kMovCr3: {
      const std::uint64_t value =
          insn.r2 != isa::kNoReg ? gs.regs[insn.r2 & 7] : insn.imm64;
      if (ctl.intercept_cr3) {
        exit_here(VmExit{.reason = ExitReason::kMovCr, .qual = value});
        break;
      }
      gs.cr3 = value;
      cpu_->tlb().FlushNonGlobal(ctl.tag);
      cpu_->Charge(30);
      gs.rip = next_rip;
      break;
    }

    case Opcode::kReadCr3:
      gs.regs[insn.r1 & 7] = gs.cr3;
      gs.rip = next_rip;
      break;

    case Opcode::kReadCr2:
      gs.regs[insn.r1 & 7] = gs.cr2;
      gs.rip = next_rip;
      break;

    case Opcode::kInvlpg: {
      const std::uint64_t addr =
          insn.r2 != isa::kNoReg ? gs.regs[insn.r2 & 7] : insn.imm64;
      if (ctl.intercept_invlpg) {
        exit_here(VmExit{.reason = ExitReason::kInvlpg, .gva = addr});
        break;
      }
      cpu_->tlb().FlushVa(ctl.tag, addr);
      cpu_->Charge(50);
      gs.rip = next_rip;
      break;
    }

    case Opcode::kSti:
      gs.interrupts_enabled = true;
      gs.rip = next_rip;
      if (gs.request_intr_window) {
        exit_here(VmExit{.reason = ExitReason::kIntrWindow});
      }
      break;

    case Opcode::kCli:
      gs.interrupts_enabled = false;
      gs.rip = next_rip;
      break;

    case Opcode::kIret: {
      if (gs.frame_depth == 0) {
        exit_here(VmExit{.reason = ExitReason::kError});
        break;
      }
      const GuestState::Frame frame = gs.frames[--gs.frame_depth];
      gs.rip = frame.rip;
      gs.interrupts_enabled = frame.interrupts_enabled;
      gs.regs = frame.regs;
      cpu_->Charge(costs_.iret);
      if (gs.interrupts_enabled && gs.request_intr_window) {
        exit_here(VmExit{.reason = ExitReason::kIntrWindow});
      }
      break;
    }

    case Opcode::kSetIdt:
      if (insn.imm32 < kNumVectors) {
        gs.idt[insn.imm32] = insn.imm64;
      }
      gs.rip = next_rip;
      break;

    case Opcode::kVmcall:
      if (ctl.intercept_vmcall) {
        exit_here(VmExit{.reason = ExitReason::kVmcall,
                         .hypercall = insn.imm32,
                         .qual = insn.imm32});
        break;
      }
      gs.rip = next_rip;
      break;

    case Opcode::kGuestLogic:
      gs.rip = next_rip;  // Logic may overwrite rip (e.g. to re-loop).
      if (guest_logic_) {
        guest_logic_(insn.imm32, gs);
      }
      break;

    default:
      exit_here(VmExit{.reason = ExitReason::kError});
      break;
  }
  return sr;
}

}  // namespace nova::hw
