// 16550-style serial port: the console sink for the hypervisor and for
// guests with a directly assigned or virtual COM port.
#ifndef SRC_HW_UART_H_
#define SRC_HW_UART_H_

#include <cstdint>
#include <string>

#include "src/hw/device.h"
#include "src/sim/snapshot.h"
#include "src/sim/status.h"

namespace nova::hw {

namespace uart {
constexpr std::uint16_t kPortBase = 0x3f8;
constexpr std::uint16_t kData = 0;   // THR/RBR.
constexpr std::uint16_t kLsr = 5;    // Line status.
constexpr std::uint8_t kLsrTxEmpty = 0x60;
}  // namespace uart

class Uart : public Device {
 public:
  explicit Uart(DeviceId id) : Device(id, "uart") {}

  std::uint64_t MmioRead(std::uint64_t, unsigned) override { return 0; }
  void MmioWrite(std::uint64_t, unsigned, std::uint64_t) override {}

  std::uint32_t PioRead(std::uint16_t port, unsigned size) override;
  void PioWrite(std::uint16_t port, unsigned size, std::uint32_t value) override;

  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  Status SaveState(sim::SnapWriter& w) const {
    w.Str(output_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    output_ = r.Str();
    return r.status();
  }

 private:
  // snapshot-x-list(Uart): output_
  std::string output_;
};

}  // namespace nova::hw

#endif  // SRC_HW_UART_H_
