// CPU cost models for the processors used in the paper's evaluation
// (Table 1), together with the hardware-transition cycle costs that the
// microbenchmarks in Figures 8 and 9 measure.
//
// Only *raw hardware* costs live here (world switches, VMCS accesses,
// syscall entry/exit, TLB flush penalties). Software-path costs — the IPC
// path, the vTLB fill, message copies — are never constants: they emerge
// from the hypervisor executing real work, priced per primitive operation.
#ifndef SRC_HW_CPU_MODEL_H_
#define SRC_HW_CPU_MODEL_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "src/sim/time.h"

namespace nova::hw {

enum class Vendor : std::uint8_t { kIntel, kAmd };

// Host paging mode used for nested page tables. The paper (§8.1) notes that
// AMD parts used 2-level legacy paging with 4 MiB superpages while Intel
// EPT uses 4-level paging with 2 MiB superpages — and that this difference
// is visible in the kernel-compile benchmark.
enum class PagingMode : std::uint8_t {
  kTwoLevel,   // 32-bit legacy: 1024-entry tables, 4 KiB / 4 MiB pages.
  kFourLevel,  // x86-64 style: 512-entry tables, 4 KiB / 2 MiB pages.
};

// Per-model hardware cost table. All values are clock cycles.
struct CpuModel {
  std::string_view name;       // Marketing name, e.g. "Intel Core i7 920".
  std::string_view core;       // Core codename, e.g. "Bloomfield (BLM)".
  std::string_view tag;        // Short tag used in benchmark output.
  Vendor vendor;
  sim::Frequency frequency;

  // --- Virtualization transitions (Figure 9, lowermost boxes) ---
  sim::Cycles vm_exit;            // Guest -> host world switch.
  sim::Cycles vm_resume;          // Host -> guest world switch.
  sim::Cycles vmread;             // One VMCS field read (Intel; 0 on AMD
                                  // where the VMCB is plain memory).
  sim::Cycles vmwrite;            // One VMCS field write.

  // --- System calls (Figure 8, lowermost box) ---
  sim::Cycles syscall_entry;      // sysenter + interrupt-disable fixups.
  sim::Cycles syscall_exit;       // sti + sysexit.

  // --- TLB behaviour ---
  bool has_guest_tlb_tags;        // VPID (Intel) / ASID (AMD): guest entries
                                  // survive VM transitions.
  sim::Cycles tlb_flush;          // Cost of a full TLB flush.
  sim::Cycles tlb_refill_entry;   // Average refill cost per re-walked entry
                                  // after a flush (the "TLB effects" box).
  std::uint32_t tlb_4k_entries;   // Capacity for 4 KiB translations.
  std::uint32_t tlb_large_entries;// Capacity for 2/4 MiB translations.

  // --- Memory & paging ---
  PagingMode host_paging;         // Nested/host page-table format.
  sim::Cycles mem_access;         // One cache-hitting memory access in a
                                  // page-table walk.
  sim::Cycles mem_miss;           // A walk access that misses the cache.

  // --- Per-primitive software op pricing ---
  sim::Cycles op_cost;            // One simple ALU/branch instruction.
  sim::Cycles word_copy;          // Copying one 64-bit word (UTCB transfer:
                                  // the paper cites 2-3 cycles per word).

  constexpr std::uint32_t tlb_capacity() const {
    return tlb_4k_entries + tlb_large_entries;
  }
};

// The processors of Table 1. Transition costs are calibrated against the
// microbenchmark bars of Figures 8 and 9 of the paper.
const CpuModel& Opteron2212();   // Santa Rosa (K8),   2.0 GHz, AMD.
const CpuModel& Phenom9550();    // Agena (K10),       2.2 GHz, AMD.
const CpuModel& CoreDuoT2500();  // Yonah (YNH),       2.0 GHz, Intel.
const CpuModel& Core2DuoE6600(); // Conroe (CNR),      2.4 GHz, Intel.
const CpuModel& Core2DuoE8400(); // Wolfdale (WFD),    3.0 GHz, Intel.
const CpuModel& CoreI7_920();    // Bloomfield (BLM), 2.67 GHz, Intel.

// Variant of the Core i7 with VPID disabled, for the "EPT w/o VPID" and
// vTLB-with/without-VPID comparisons.
const CpuModel& CoreI7_920_NoVpid();

// The AMD Phenom X3 8450 (2.1 GHz) used for the last bar group of Figure 5.
const CpuModel& PhenomX3_8450();

// All Table 1 models in presentation order.
std::span<const CpuModel* const> AllModels();

}  // namespace nova::hw

#endif  // SRC_HW_CPU_MODEL_H_
