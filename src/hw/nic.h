// Gigabit NIC model (e1000-style) with receive descriptor ring and
// interrupt coalescing, plus a token-bucket stream source.
//
// Figure 7 of the paper receives UDP streams of fixed bandwidth and packet
// size through an Intel 82567 whose interrupt coalescing caps the rate at
// roughly 20000 interrupts per second; the ITR register models exactly
// that throttle.
#ifndef SRC_HW_NIC_H_
#define SRC_HW_NIC_H_

#include <cstdint>
#include <vector>

#include "src/hw/device.h"
#include "src/hw/iommu.h"
#include "src/hw/irq.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault.h"
#include "src/sim/stats.h"

namespace nova::hw {

namespace nic {
// Register offsets (subset of the e1000 family layout).
constexpr std::uint64_t kCtrl = 0x0000;
constexpr std::uint64_t kStatus = 0x0008;
constexpr std::uint64_t kIcr = 0x00c0;   // Read-to-clear interrupt cause.
constexpr std::uint64_t kItr = 0x00c4;   // Min inter-interrupt gap, 256 ns units.
constexpr std::uint64_t kIms = 0x00d0;   // Mask set.
constexpr std::uint64_t kImc = 0x00d8;   // Mask clear.
constexpr std::uint64_t kRctl = 0x0100;
constexpr std::uint64_t kRdbal = 0x2800;
constexpr std::uint64_t kRdbah = 0x2804;
constexpr std::uint64_t kRdlen = 0x2808;
constexpr std::uint64_t kRdh = 0x2810;
constexpr std::uint64_t kRdt = 0x2818;
constexpr std::uint64_t kWindowSize = 0x3000;

constexpr std::uint32_t kRctlEnable = 1u << 1;
constexpr std::uint32_t kIcrRxt0 = 1u << 7;  // Receiver timer / packet.

// Legacy receive descriptor.
struct RxDescriptor {
  std::uint64_t buffer;
  std::uint16_t length;
  std::uint16_t checksum;
  std::uint8_t status;  // Bit 0: DD, bit 1: EOP.
  std::uint8_t errors;
  std::uint16_t special;
};
static_assert(sizeof(RxDescriptor) == 16);

constexpr std::uint8_t kRxStatusDd = 1u << 0;
constexpr std::uint8_t kRxStatusEop = 1u << 1;
}  // namespace nic

class Nic : public Device {
 public:
  Nic(DeviceId id, Iommu* iommu, IrqChip* irq, std::uint32_t gsi,
      sim::EventQueue* events);

  std::uint64_t MmioRead(std::uint64_t offset, unsigned size) override;
  void MmioWrite(std::uint64_t offset, unsigned size, std::uint64_t value) override;

  // Wire side: deliver one frame. Returns false when the ring was full
  // (frame dropped).
  bool Receive(const std::uint8_t* frame, std::uint32_t length);

  std::uint32_t gsi() const { return gsi_; }
  std::uint64_t packets_received() const { return rx_packets_.value(); }
  std::uint64_t packets_dropped() const { return rx_dropped_.value(); }
  std::uint64_t packets_corrupted() const { return rx_corrupted_.value(); }
  std::uint64_t interrupts_raised() const { return irqs_.value(); }

  // Optional fault injection (kNicDrop / kNicCorrupt on the wire side).
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }

  // Wires the machine's tracer in; interns the NIC's event names.
  void set_tracer(sim::Tracer* t);

  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  std::uint32_t RingEntries() const { return rdlen_ / 16; }
  void RaiseOrCoalesce();
  void CoalesceExpired();
  void FireIrq();

  // snapshot-x-list(Nic): iommu_, irq_, gsi_, events_, ctrl_, icr_, itr_,
  // ims_, rctl_, rdbal_, rdbah_, rdlen_, rdh_, rdt_, irq_scheduled_,
  // last_irq_, rx_packets_, rx_dropped_, rx_corrupted_, irqs_,
  // fault_plan_, tracer_, trace_rx_
  Iommu* iommu_;
  IrqChip* irq_;
  std::uint32_t gsi_;
  sim::EventQueue* events_;

  std::uint32_t ctrl_ = 0;
  std::uint32_t icr_ = 0;
  std::uint32_t itr_ = 0;
  std::uint32_t ims_ = 0;
  std::uint32_t rctl_ = 0;
  std::uint32_t rdbal_ = 0;
  std::uint32_t rdbah_ = 0;
  std::uint32_t rdlen_ = 0;
  std::uint32_t rdh_ = 0;
  std::uint32_t rdt_ = 0;

  bool irq_scheduled_ = false;
  sim::PicoSeconds last_irq_ = 0;
  sim::Counter rx_packets_;
  sim::Counter rx_dropped_;
  sim::Counter rx_corrupted_;
  sim::Counter irqs_;
  sim::FaultPlan* fault_plan_ = nullptr;
  sim::Tracer* tracer_ = &sim::Tracer::Disabled();
  std::uint16_t trace_rx_ = 0;
};

// Generates a constant-bandwidth stream of fixed-size frames into a NIC,
// like the token-bucket traffic shaper on the paper's sender machine.
class NetLink {
 public:
  NetLink(sim::EventQueue* events, Nic* nic);

  // Start a stream of `packet_bytes`-sized frames at `mbit_per_s`.
  void StartStream(double mbit_per_s, std::uint32_t packet_bytes);
  void Stop();

  std::uint64_t packets_sent() const { return sent_.value(); }
  std::uint64_t packets_lost() const { return lost_.value(); }

  // Optional fault injection: inside a kLinkPartition window every frame
  // is dropped on the wire (the NIC never sees it); the link heals when
  // the window closes. Queried via FaultPlan::InWindow — a pure time
  // predicate, so arming a partition never perturbs RNG streams.
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }

  // True while a partition window covers the queue's current time.
  bool Partitioned() const;

  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  void SendOne();

  // snapshot-x-list(NetLink): events_, nic_, running_, packet_bytes_,
  // interval_, sent_, lost_, seq_, fault_plan_
  sim::EventQueue* events_;
  Nic* nic_;
  bool running_ = false;
  std::uint32_t packet_bytes_ = 0;
  sim::PicoSeconds interval_ = 0;
  sim::Counter sent_;
  sim::Counter lost_;
  std::uint64_t seq_ = 0;
  sim::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace nova::hw

#endif  // SRC_HW_NIC_H_
