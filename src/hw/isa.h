// Guest instruction-set architecture.
//
// Guest operating systems in this reproduction are real programs: streams
// of fixed-size 16-byte instructions stored in guest memory, fetched
// through the guest's own page tables and TLB. The encoding is compact
// rather than x86, but it preserves every property the paper measures:
// sensitive instructions trap, MMIO faults must be *decoded* by the VMM's
// instruction emulator, page-table maintenance is explicit (MOV CR3 /
// INVLPG), and interrupt flag handling drives interrupt-window exits.
//
// Instructions are 16-byte aligned and never straddle a page boundary.
//
// Layout:
//   byte 0      opcode
//   byte 1      r1 (destination / source register, 0-7)
//   byte 2      r2 (second register, 0-7; 0xff = unused)
//   byte 3      flags (opcode-specific)
//   bytes 4-7   imm32
//   bytes 8-15  imm64
#ifndef SRC_HW_ISA_H_
#define SRC_HW_ISA_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace nova::hw::isa {

constexpr std::uint32_t kInsnSize = 16;
constexpr int kNumRegs = 8;
constexpr std::uint8_t kNoReg = 0xff;

enum class Opcode : std::uint8_t {
  kNopBlock = 0x01,  // Charge imm32 cycles of computation.
  kMovImm = 0x02,    // r1 = imm64.
  kAdd = 0x03,       // r1 += (r2 != kNoReg ? reg[r2] : imm64).
  kAnd = 0x07,       // r1 &= (r2 != kNoReg ? reg[r2] : imm64).
  kLoad = 0x04,      // r1 = mem64[addr]; addr = (r2 != kNoReg ? reg[r2] : 0) + imm64.
  kStore = 0x05,     // mem64[addr] = reg[r1]; addr as for kLoad.
  kCopy = 0x06,      // Copy imm32 bytes from [reg[r2]] to [reg[r1]].
  kJmp = 0x10,       // rip = imm64.
  kJnz = 0x11,       // if (reg[r1] != 0) rip = imm64.
  kLoop = 0x12,      // if (--reg[r1] != 0) rip = imm64.
  kOut = 0x20,       // Port out: port = imm32, value = reg[r1], width = flags.
  kIn = 0x21,        // Port in: reg[r1] = in(imm32), width = flags.
  kCpuid = 0x22,     // Sensitive: always exits under virtualization.
  kHlt = 0x23,       // Halt until interrupt.
  kRdtsc = 0x24,     // r1 = current cycle count.
  kMovCr3 = 0x30,    // cr3 = (r2 != kNoReg ? reg[r2] : imm64).
  kReadCr3 = 0x31,   // r1 = cr3.
  kReadCr2 = 0x32,   // r1 = cr2 (page-fault address).
  kInvlpg = 0x33,    // Invalidate translation for gva imm64 (or reg[r2]).
  kSti = 0x34,       // Enable interrupts.
  kCli = 0x35,       // Disable interrupts.
  kIret = 0x36,      // Return from interrupt/exception handler.
  kSetIdt = 0x37,    // idt[imm32] = handler gva imm64 (boot-time only).
  kVmcall = 0x38,    // Explicit hypercall from an enlightened guest.
  kGuestLogic = 0x40,// Invoke registered guest-logic callback imm32.
};

struct Insn {
  Opcode opcode = Opcode::kNopBlock;
  std::uint8_t r1 = 0;
  std::uint8_t r2 = kNoReg;
  std::uint8_t flags = 0;
  std::uint32_t imm32 = 0;
  std::uint64_t imm64 = 0;
};

inline void Encode(const Insn& insn, std::uint8_t out[kInsnSize]) {
  out[0] = static_cast<std::uint8_t>(insn.opcode);
  out[1] = insn.r1;
  out[2] = insn.r2;
  out[3] = insn.flags;
  std::memcpy(out + 4, &insn.imm32, 4);
  std::memcpy(out + 8, &insn.imm64, 8);
}

inline Insn Decode(const std::uint8_t bytes[kInsnSize]) {
  Insn insn;
  insn.opcode = static_cast<Opcode>(bytes[0]);
  insn.r1 = bytes[1];
  insn.r2 = bytes[2];
  insn.flags = bytes[3];
  std::memcpy(&insn.imm32, bytes + 4, 4);
  std::memcpy(&insn.imm64, bytes + 8, 8);
  return insn;
}

// Small assembler: builds an instruction stream for placement in guest
// memory. Guest kernels use this the way a build system produces a kernel
// image.
class Assembler {
 public:
  explicit Assembler(std::uint64_t base_gva) : base_(base_gva) {}

  // Address the next emitted instruction will have.
  std::uint64_t Here() const { return base_ + bytes_.size(); }

  std::uint64_t Emit(const Insn& insn) {
    const std::uint64_t at = Here();
    std::uint8_t buf[kInsnSize];
    Encode(insn, buf);
    bytes_.insert(bytes_.end(), buf, buf + kInsnSize);
    return at;
  }

  // Convenience emitters.
  std::uint64_t NopBlock(std::uint32_t cycles) {
    return Emit({.opcode = Opcode::kNopBlock, .imm32 = cycles});
  }
  std::uint64_t MovImm(std::uint8_t r, std::uint64_t v) {
    return Emit({.opcode = Opcode::kMovImm, .r1 = r, .imm64 = v});
  }
  std::uint64_t AddImm(std::uint8_t r, std::uint64_t v) {
    return Emit({.opcode = Opcode::kAdd, .r1 = r, .imm64 = v});
  }
  std::uint64_t AddReg(std::uint8_t r, std::uint8_t r2) {
    return Emit({.opcode = Opcode::kAdd, .r1 = r, .r2 = r2});
  }
  std::uint64_t AndImm(std::uint8_t r, std::uint64_t v) {
    return Emit({.opcode = Opcode::kAnd, .r1 = r, .imm64 = v});
  }
  std::uint64_t Load(std::uint8_t r, std::uint8_t base_reg, std::uint64_t off) {
    return Emit({.opcode = Opcode::kLoad, .r1 = r, .r2 = base_reg, .imm64 = off});
  }
  std::uint64_t LoadAbs(std::uint8_t r, std::uint64_t gva) {
    return Emit({.opcode = Opcode::kLoad, .r1 = r, .r2 = kNoReg, .imm64 = gva});
  }
  std::uint64_t Store(std::uint8_t r, std::uint8_t base_reg, std::uint64_t off) {
    return Emit({.opcode = Opcode::kStore, .r1 = r, .r2 = base_reg, .imm64 = off});
  }
  std::uint64_t StoreAbs(std::uint8_t r, std::uint64_t gva) {
    return Emit({.opcode = Opcode::kStore, .r1 = r, .r2 = kNoReg, .imm64 = gva});
  }
  std::uint64_t Copy(std::uint8_t dst_reg, std::uint8_t src_reg, std::uint32_t bytes) {
    return Emit({.opcode = Opcode::kCopy, .r1 = dst_reg, .r2 = src_reg, .imm32 = bytes});
  }
  std::uint64_t Jmp(std::uint64_t gva) {
    return Emit({.opcode = Opcode::kJmp, .imm64 = gva});
  }
  std::uint64_t Jnz(std::uint8_t r, std::uint64_t gva) {
    return Emit({.opcode = Opcode::kJnz, .r1 = r, .imm64 = gva});
  }
  std::uint64_t Loop(std::uint8_t r, std::uint64_t gva) {
    return Emit({.opcode = Opcode::kLoop, .r1 = r, .imm64 = gva});
  }
  std::uint64_t Out(std::uint16_t port, std::uint8_t value_reg) {
    return Emit({.opcode = Opcode::kOut, .r1 = value_reg, .imm32 = port});
  }
  std::uint64_t In(std::uint8_t r, std::uint16_t port) {
    return Emit({.opcode = Opcode::kIn, .r1 = r, .imm32 = port});
  }
  std::uint64_t Cpuid() { return Emit({.opcode = Opcode::kCpuid}); }
  std::uint64_t Hlt() { return Emit({.opcode = Opcode::kHlt}); }
  std::uint64_t MovCr3Reg(std::uint8_t r) {
    return Emit({.opcode = Opcode::kMovCr3, .r2 = r});
  }
  std::uint64_t MovCr3Imm(std::uint64_t v) {
    return Emit({.opcode = Opcode::kMovCr3, .imm64 = v});
  }
  std::uint64_t ReadCr2(std::uint8_t r) {
    return Emit({.opcode = Opcode::kReadCr2, .r1 = r});
  }
  std::uint64_t InvlpgReg(std::uint8_t r) {
    return Emit({.opcode = Opcode::kInvlpg, .r2 = r});
  }
  std::uint64_t Sti() { return Emit({.opcode = Opcode::kSti}); }
  std::uint64_t Cli() { return Emit({.opcode = Opcode::kCli}); }
  std::uint64_t Iret() { return Emit({.opcode = Opcode::kIret}); }
  std::uint64_t SetIdt(std::uint32_t vector, std::uint64_t handler) {
    return Emit({.opcode = Opcode::kSetIdt, .imm32 = vector, .imm64 = handler});
  }
  std::uint64_t GuestLogic(std::uint32_t id) {
    return Emit({.opcode = Opcode::kGuestLogic, .imm32 = id});
  }

  // Patch the imm64 of the instruction at `at` (for forward jumps).
  void PatchImm64(std::uint64_t at, std::uint64_t value) {
    const std::uint64_t off = at - base_ + 8;
    std::memcpy(bytes_.data() + off, &value, 8);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::uint64_t base() const { return base_; }

 private:
  std::uint64_t base_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace nova::hw::isa

#endif  // SRC_HW_ISA_H_
