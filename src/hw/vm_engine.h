// The processor's instruction-execution engine, covering both native and
// guest (VT-x/SVM) modes.
//
// The engine fetches 16-byte instructions through the TLB and real page
// tables, executes them against simulated physical memory and the device
// bus, delivers interrupts and exceptions through the guest IDT, and
// produces VM exits for every sensitive operation the controls intercept.
// All work is charged to the owning CPU's cycle counter; software layers
// above (hypervisor, VMM) add their own charges.
//
// Memory translation supports three modes:
//   native — one-dimensional walk of the OS's own page tables,
//   nested — two-dimensional GVA->GPA->HPA walk with a paging-structure
//            cache standing in for the hardware's nested-walk caches,
//   shadow — one-dimensional walk of the hypervisor-maintained shadow
//            table; misses exit to the vTLB algorithm.
#ifndef SRC_HW_VM_ENGINE_H_
#define SRC_HW_VM_ENGINE_H_

#include <cstdint>
#include <functional>

#include "src/hw/cpu.h"
#include "src/hw/device.h"
#include "src/hw/guest_state.h"
#include "src/hw/irq.h"
#include "src/hw/isa.h"
#include "src/hw/phys_mem.h"
#include "src/sim/stats.h"

namespace nova::hw {

// Fixed exception vectors (x86-flavoured).
constexpr std::uint8_t kVectorPageFault = 14;

// Costs of engine-internal events that are not plain instructions.
struct EngineCosts {
  sim::Cycles event_delivery = 280;  // Interrupt/exception through the IDT.
  sim::Cycles iret = 120;
  sim::Cycles pio_access = 220;      // Physical port access latency.
  sim::Cycles mmio_access = 150;     // Uncached device register access.
  sim::Cycles cpuid = 60;
};

class VmEngine {
 public:
  // `guest_logic` lets the embedding guest kernel run host-side helpers for
  // workload decisions; it is invoked synchronously for kGuestLogic ops.
  using GuestLogicFn = std::function<void(std::uint32_t id, GuestState& gs)>;

  VmEngine(Cpu* cpu, PhysMem* mem, Bus* bus, IrqChip* irq);

  void set_guest_logic(GuestLogicFn fn) { guest_logic_ = std::move(fn); }
  const EngineCosts& costs() const { return costs_; }

  // Execute until a VM exit condition or until `cycle_budget` cycles have
  // been charged. In native mode the only "exits" produced are kHlt,
  // kPreempt and kError; interrupts are delivered internally.
  VmExit Run(GuestState& gs, const VmControls& ctl, sim::Cycles cycle_budget);

  // Result of an address translation attempt.
  struct XlatResult {
    enum class Kind : std::uint8_t {
      kOk,          // hpa valid.
      kGuestFault,  // #PF to be delivered to the guest.
      kHostFault,   // Nested/EPT violation: gpa valid.
      kShadowMiss,  // Shadow-mode miss: vTLB must resolve gva.
    };
    Kind kind = Kind::kOk;
    PhysAddr hpa = 0;
    std::uint64_t gpa = 0;
    PageFaultInfo pf{};
  };

  // Translate a guest-virtual address, charging walk costs. Public so the
  // hypervisor's vTLB and the VMM's instruction emulator can reuse the
  // hardware walker semantics.
  XlatResult Translate(GuestState& gs, const VmControls& ctl, VirtAddr gva,
                       Access access);

  // Translate a guest-physical address through the nested tables only.
  XlatResult TranslateGpa(const VmControls& ctl, std::uint64_t gpa, Access access);

  // Physical access routed to RAM or a device window. Charges access cost.
  std::uint64_t PhysRead(PhysAddr pa, unsigned size);
  void PhysWrite(PhysAddr pa, unsigned size, std::uint64_t value);

  // Deliver an exception or interrupt through the guest IDT (used by the
  // hypervisor to inject guest page faults under shadow paging). Returns
  // false when delivery is impossible (triple-fault analogue).
  bool InjectEvent(GuestState& gs, std::uint8_t vector) {
    return DeliverEvent(gs, vector);
  }

  // Invalidate cached nested (GPA->HPA) translations for a tag, e.g. after
  // the hypervisor revokes memory from a VM.
  void FlushNestedTlb(TlbTag tag) { nested_tlb_.FlushTag(tag); }

  // Statistics.
  std::uint64_t instructions() const { return insns_.value(); }
  std::uint64_t injected_events() const { return injections_.value(); }

  Cpu& cpu() { return *cpu_; }

  Status SaveState(sim::SnapWriter& w) const {
    Status st = nested_tlb_.SaveState(w);
    if (!Ok(st)) {
      return st;
    }
    st = insns_.SaveState(w);
    if (!Ok(st)) {
      return st;
    }
    return injections_.SaveState(w);
  }
  Status LoadState(sim::SnapReader& r) {
    Status st = nested_tlb_.LoadState(r);
    if (!Ok(st)) {
      return st;
    }
    st = insns_.LoadState(r);
    if (!Ok(st)) {
      return st;
    }
    return injections_.LoadState(r);
  }

 private:
  struct StepResult {
    bool exited = false;
    VmExit exit;
  };

  StepResult Step(GuestState& gs, const VmControls& ctl);
  StepResult Execute(GuestState& gs, const VmControls& ctl, const isa::Insn& insn,
                     std::uint64_t next_rip);

  // Deliver an exception/interrupt through the guest IDT. Returns false on
  // a nested-delivery failure (triple fault analogue).
  bool DeliverEvent(GuestState& gs, std::uint8_t vector);

  // Memory helpers: translate + access; fill `exit` on faults that must
  // leave the engine. Returns false if an exit (or internal #PF delivery)
  // happened and the instruction must be abandoned.
  bool MemRead(GuestState& gs, const VmControls& ctl, VirtAddr gva, unsigned size,
               std::uint64_t* out, VmExit* exit);
  bool MemWrite(GuestState& gs, const VmControls& ctl, VirtAddr gva, unsigned size,
                std::uint64_t value, VmExit* exit);
  bool HandleXlatFault(GuestState& gs, const XlatResult& x, VirtAddr gva,
                       Access access, VmExit* exit);

  // snapshot-x-list(VmEngine): cpu_, mem_, bus_, irq_, guest_logic_,
  // costs_, nested_tlb_, insns_, injections_
  Cpu* cpu_;
  PhysMem* mem_;
  Bus* bus_;
  IrqChip* irq_;
  GuestLogicFn guest_logic_;
  EngineCosts costs_;

  // Paging-structure cache for nested walks (GPA -> HPA at host page
  // granularity). Small, like the hardware's nested-TLB arrays.
  Tlb nested_tlb_{48, 16};

  sim::Counter insns_;
  sim::Counter injections_;
};

}  // namespace nova::hw

#endif  // SRC_HW_VM_ENGINE_H_
