#include "src/hw/device.h"

namespace nova::hw {

std::uint32_t Device::PioRead(std::uint16_t /*port*/, unsigned /*size*/) {
  return 0xffffffffu;  // Floating bus.
}

void Device::PioWrite(std::uint16_t /*port*/, unsigned /*size*/, std::uint32_t /*value*/) {}

Status Bus::RegisterMmio(PhysAddr base, std::uint64_t size, Device* device) {
  for (const MmioRange& r : mmio_) {
    if (base < r.base + r.size && r.base < base + size) {
      return Status::kBusy;  // Overlapping windows are a configuration bug.
    }
  }
  mmio_.push_back(MmioRange{base, size, device});
  return Status::kSuccess;
}

Status Bus::RegisterPio(std::uint16_t base, std::uint16_t count, Device* device) {
  for (const PioRange& r : pio_) {
    if (base < r.base + r.count && r.base < base + count) {
      return Status::kBusy;
    }
  }
  pio_.push_back(PioRange{base, count, device});
  return Status::kSuccess;
}

Device* Bus::FindMmio(PhysAddr addr, PhysAddr* window_base) const {
  for (const MmioRange& r : mmio_) {
    if (addr >= r.base && addr < r.base + r.size) {
      if (window_base != nullptr) {
        *window_base = r.base;
      }
      return r.device;
    }
  }
  return nullptr;
}

Device* Bus::FindPio(std::uint16_t port) const {
  for (const PioRange& r : pio_) {
    if (port >= r.base && port < r.base + r.count) {
      return r.device;
    }
  }
  return nullptr;
}

Status Bus::MmioRead(PhysAddr addr, unsigned size, std::uint64_t* out) const {
  PhysAddr base = 0;
  Device* dev = FindMmio(addr, &base);
  if (dev == nullptr) {
    return Status::kMemoryFault;
  }
  *out = dev->MmioRead(addr - base, size);
  return Status::kSuccess;
}

Status Bus::MmioWrite(PhysAddr addr, unsigned size, std::uint64_t value) const {
  PhysAddr base = 0;
  Device* dev = FindMmio(addr, &base);
  if (dev == nullptr) {
    return Status::kMemoryFault;
  }
  (void)dev->MmioWrite(addr - base, size, value);
  return Status::kSuccess;
}

Status Bus::PioRead(std::uint16_t port, unsigned size, std::uint32_t* out) const {
  Device* dev = FindPio(port);
  if (dev == nullptr) {
    *out = 0xffffffffu;
    return Status::kBadDevice;
  }
  *out = dev->PioRead(port, size);
  return Status::kSuccess;
}

Status Bus::PioWrite(std::uint16_t port, unsigned size, std::uint32_t value) const {
  Device* dev = FindPio(port);
  if (dev == nullptr) {
    return Status::kBadDevice;
  }
  (void)dev->PioWrite(port, size, value);
  return Status::kSuccess;
}

}  // namespace nova::hw
