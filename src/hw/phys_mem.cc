#include "src/hw/phys_mem.h"

#include <algorithm>

namespace nova::hw {

PhysMem::Frame* PhysMem::FrameFor(std::uint64_t frame_no) const {
  auto it = frames_.find(frame_no);
  return it == frames_.end() ? nullptr : it->second.get();
}

PhysMem::Frame& PhysMem::FrameForAlloc(std::uint64_t frame_no) {
  auto& slot = frames_[frame_no];
  if (!slot) {
    slot = std::make_unique<Frame>();
    slot->fill(0);
  }
  return *slot;
}

Status PhysMem::Read(PhysAddr addr, void* out, std::uint64_t len) const {
  if (!Contains(addr, len)) {
    return Status::kMemoryFault;
  }
  auto* dst = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    const std::uint64_t frame_no = FrameOf(addr);
    const std::uint64_t off = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - off);
    if (const Frame* f = FrameFor(frame_no)) {
      std::memcpy(dst, f->data() + off, chunk);
    } else {
      std::memset(dst, 0, chunk);  // Untouched RAM reads as zero.
    }
    addr += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status PhysMem::Write(PhysAddr addr, const void* data, std::uint64_t len) {
  if (!Contains(addr, len)) {
    return Status::kMemoryFault;
  }
  const auto* src = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::uint64_t frame_no = FrameOf(addr);
    const std::uint64_t off = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - off);
    std::memcpy(FrameForAlloc(frame_no).data() + off, src, chunk);
    addr += chunk;
    src += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status PhysMem::Zero(PhysAddr addr, std::uint64_t len) {
  if (!Contains(addr, len)) {
    return Status::kMemoryFault;
  }
  while (len > 0) {
    const std::uint64_t frame_no = FrameOf(addr);
    const std::uint64_t off = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - off);
    // Only materialized frames need clearing; absent frames read as zero.
    if (Frame* f = FrameFor(frame_no)) {
      std::memset(f->data() + off, 0, chunk);
    }
    addr += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

}  // namespace nova::hw
