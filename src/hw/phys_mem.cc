#include "src/hw/phys_mem.h"

#include <algorithm>

namespace nova::hw {

PhysMem::Frame* PhysMem::FrameFor(std::uint64_t frame_no) const {
  auto it = frames_.find(frame_no);
  return it == frames_.end() ? nullptr : it->second.get();
}

PhysMem::Frame& PhysMem::FrameForAlloc(std::uint64_t frame_no) {
  auto& slot = frames_[frame_no];
  if (!slot) {
    slot = std::make_unique<Frame>();
    slot->fill(0);
  }
  return *slot;
}

Status PhysMem::Read(PhysAddr addr, void* out, std::uint64_t len) const {
  if (!Contains(addr, len)) {
    return Status::kMemoryFault;
  }
  auto* dst = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    const std::uint64_t frame_no = FrameOf(addr);
    const std::uint64_t off = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - off);
    if (const Frame* f = FrameFor(frame_no)) {
      std::memcpy(dst, f->data() + off, chunk);
    } else {
      std::memset(dst, 0, chunk);  // Untouched RAM reads as zero.
    }
    addr += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status PhysMem::Write(PhysAddr addr, const void* data, std::uint64_t len) {
  if (!Contains(addr, len)) {
    return Status::kMemoryFault;
  }
  if (observer_) {
    observer_(addr, len);
  }
  const auto* src = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::uint64_t frame_no = FrameOf(addr);
    const std::uint64_t off = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - off);
    std::memcpy(FrameForAlloc(frame_no).data() + off, src, chunk);
    addr += chunk;
    src += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status PhysMem::Zero(PhysAddr addr, std::uint64_t len) {
  if (!Contains(addr, len)) {
    return Status::kMemoryFault;
  }
  if (observer_) {
    observer_(addr, len);
  }
  while (len > 0) {
    const std::uint64_t frame_no = FrameOf(addr);
    const std::uint64_t off = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - off);
    // Only materialized frames need clearing; absent frames read as zero.
    if (Frame* f = FrameFor(frame_no)) {
      std::memset(f->data() + off, 0, chunk);
    }
    addr += chunk;
    len -= chunk;
  }
  return Status::kSuccess;
}

Status PhysMem::SaveState(sim::SnapWriter& w) const {
  w.U64(size_);
  std::vector<std::uint64_t> order;
  order.reserve(frames_.size());
  // nova-lint: allow(determinism) -- collected then sorted before encoding
  for (const auto& [frame_no, frame] : frames_) {
    order.push_back(frame_no);
  }
  std::sort(order.begin(), order.end());
  w.U64(order.size());
  for (const std::uint64_t frame_no : order) {
    w.U64(frame_no);
    w.Bytes(frames_.at(frame_no)->data(), kPageSize);
  }
  return Status::kSuccess;
}

Status PhysMem::LoadState(sim::SnapReader& r) {
  if (r.U64() != size_) {
    r.Fail();  // The twin must be constructed with identical RAM.
    return Status::kBadParameter;
  }
  frames_.clear();
  const std::uint64_t count = r.U64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t frame_no = r.U64();
    auto frame = std::make_unique<Frame>();
    r.Bytes(frame->data(), kPageSize);
    frames_[frame_no] = std::move(frame);
  }
  return r.status();
}

}  // namespace nova::hw
