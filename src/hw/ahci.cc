#include "src/hw/ahci.h"

#include <cstring>

#include "src/sim/log.h"

namespace nova::hw {

AhciController::AhciController(DeviceId id, Iommu* iommu, IrqChip* irq,
                               std::uint32_t gsi, DiskModel* disk)
    : Device(id, "ahci"), iommu_(iommu), irq_(irq), gsi_(gsi), disk_(disk) {
  disk_->set_completion_handler(
      [this](DiskModel::RequestId /*id*/, std::uint64_t cookie, Status status,
             const std::uint8_t* data, std::uint64_t len) {
        CompleteSlot(static_cast<int>(cookie), status, data, len);
      });
}

void AhciController::set_tracer(sim::Tracer* t) {
  tracer_ = t;
  trace_issue_ = t->Intern("AHCI Issue");
  trace_dma_ = t->Intern("AHCI DMA");
}

std::uint64_t AhciController::MmioRead(std::uint64_t offset, unsigned /*size*/) {
  switch (offset) {
    case ahci::kCap: return 0x1;  // One command slot group, one port.
    case ahci::kGhc: return ghc_;
    case ahci::kIs: return is_;
    case ahci::kPi: return 0x1;
    case ahci::kPxClb: return px_clb_;
    case ahci::kPxClbu: return 0;
    case ahci::kPxFb: return px_fb_;
    case ahci::kPxFbu: return 0;
    case ahci::kPxIs: return px_is_;
    case ahci::kPxIe: return px_ie_;
    case ahci::kPxCmd: return px_cmd_;
    case ahci::kPxTfd: return 0x50;   // DRDY.
    case ahci::kPxSsts: return 0x123; // Device present, PHY established.
    case ahci::kPxCi: return px_ci_;
    case ahci::kPxVs: return error_slots_;
    default: return 0;
  }
}

void AhciController::MmioWrite(std::uint64_t offset, unsigned /*size*/,
                               std::uint64_t value) {
  const auto v = static_cast<std::uint32_t>(value);
  switch (offset) {
    case ahci::kGhc:
      ghc_ = v;
      UpdateIrq();
      break;
    case ahci::kIs:
      is_ &= ~v;  // Write-1-clear.
      break;
    case ahci::kPxClb:
      px_clb_ = v & ~0x3ffu;  // 1 KiB aligned.
      break;
    case ahci::kPxFb:
      px_fb_ = v & ~0xffu;
      break;
    case ahci::kPxIs:
      px_is_ &= ~v;
      break;
    case ahci::kPxIe:
      px_ie_ = v;
      break;
    case ahci::kPxCmd:
      px_cmd_ = v;
      break;
    case ahci::kPxVs:
      error_slots_ &= ~v;  // Write-1-clear.
      break;
    case ahci::kPxCi:
      if ((px_cmd_ & ahci::kPxCmdStart) == 0) {
        break;  // Commands are only fetched while the engine runs.
      }
      for (int slot = 0; slot < ahci::kNumSlots; ++slot) {
        const std::uint32_t bit = 1u << slot;
        if ((v & bit) != 0 && (px_ci_ & bit) == 0) {
          px_ci_ |= bit;
          IssueSlot(slot);
        }
      }
      break;
    default:
      break;
  }
}

void AhciController::FailSlot(int slot) {
  inflight_[slot].active = false;
  error_slots_ |= 1u << slot;
  px_is_ |= ahci::kPxIsTfes;
  px_ci_ &= ~(1u << slot);
  is_ |= 0x1;
  UpdateIrq();
}

void AhciController::IssueSlot(int slot) {
  // Fetch the command header from the command list (DMA read).
  std::uint8_t header[32];
  if (!Ok(iommu_->DmaRead(id(), px_clb_ + slot * 32ull, header, sizeof(header)))) {
    ++dma_faults_;
    FailSlot(slot);
    return;
  }
  std::uint32_t dw0 = 0;
  std::uint32_t ctba = 0;
  std::memcpy(&dw0, header + 0, 4);
  std::memcpy(&ctba, header + 8, 4);
  const std::uint32_t prdtl = dw0 >> 16;
  const bool write = (dw0 & (1u << 6)) != 0;

  // Fetch the command FIS.
  std::uint8_t cfis[64];
  if (!Ok(iommu_->DmaRead(id(), ctba, cfis, sizeof(cfis))) ||
      cfis[0] != ahci::kFisH2d) {
    ++dma_faults_;
    FailSlot(slot);
    return;
  }
  std::uint64_t lba = 0;
  for (int i = 0; i < 6; ++i) {
    lba |= static_cast<std::uint64_t>(cfis[4 + i]) << (8 * i);
  }
  std::uint16_t sectors = 0;
  std::memcpy(&sectors, cfis + 12, 2);
  const std::uint64_t bytes = static_cast<std::uint64_t>(sectors) * kSectorSize;

  // Fetch the PRDT.
  Inflight& fl = inflight_[slot];
  fl = Inflight{};
  fl.active = true;
  fl.write = write;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < prdtl; ++i) {
    std::uint8_t prd[16];
    if (!Ok(iommu_->DmaRead(id(), ctba + 0x80 + i * 16ull, prd, sizeof(prd)))) {
      ++dma_faults_;
      FailSlot(slot);
      return;
    }
    std::uint64_t dba = 0;
    std::uint32_t dbc = 0;
    std::memcpy(&dba, prd + 0, 8);
    std::memcpy(&dbc, prd + 12, 4);
    const std::uint32_t len = (dbc & 0x3fffffu) + 1;
    fl.prdt.emplace_back(dba, len);
    total += len;
  }
  if (total < bytes) {
    FailSlot(slot);  // PRDT shorter than the transfer.
    return;
  }

  tracer_->Instant(sim::TraceCat::kDevice, trace_issue_, bytes, write ? 1 : 0);
  if (write) {
    // Gather data from the PRDT buffers, then hand it to the disk.
    fl.data.resize(bytes);
    std::uint64_t off = 0;
    for (const auto& [dba, len] : fl.prdt) {
      const std::uint64_t chunk = std::min<std::uint64_t>(len, bytes - off);
      if (!Ok(iommu_->DmaRead(id(), dba, fl.data.data() + off, chunk))) {
        ++dma_faults_;
        FailSlot(slot);
        return;
      }
      off += chunk;
      if (off == bytes) {
        break;
      }
    }
    disk_->SubmitWrite(lba * kSectorSize, fl.data.data(), bytes,
                       static_cast<std::uint64_t>(slot));
  } else {
    disk_->SubmitRead(lba * kSectorSize, bytes,
                      static_cast<std::uint64_t>(slot));
  }
}

void AhciController::CompleteSlot(int slot, Status status,
                                  const std::uint8_t* data,
                                  std::uint64_t len) {
  Inflight& fl = inflight_[slot];
  if (!fl.active) {
    return;
  }
  if (!Ok(status)) {
    FailSlot(slot);  // Media error: task-file error, no data transferred.
    return;
  }
  if (!fl.write) {
    fl.data.assign(data, data + len);
    if (fault_plan_ != nullptr && !fl.prdt.empty() &&
        fault_plan_->ShouldFault(sim::FaultKind::kDmaUnmapped, "ahci")) {
      // Injected bug: the device scatters to an address outside its
      // mapping. The IOMMU must latch the fault and stop the DMA.
      fl.prdt[0].first = 0xffff'ff00'0000ull;
    }
  }
  const std::uint64_t prd_bytes = fl.data.size();
  if (!fl.write) {
    // Scatter the data into the guest/driver buffers (DMA write).
    std::uint64_t off = 0;
    for (const auto& [dba, prd_len] : fl.prdt) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(prd_len, prd_bytes - off);
      if (!Ok(iommu_->DmaWrite(id(), dba, fl.data.data() + off, chunk))) {
        ++dma_faults_;
        FailSlot(slot);
        return;
      }
      off += chunk;
      if (off == prd_bytes) {
        break;
      }
    }
  }
  fl.active = false;
  tracer_->Instant(sim::TraceCat::kDevice, trace_dma_, prd_bytes,
                   fl.write ? 1 : 0);
  px_ci_ &= ~(1u << slot);
  px_is_ |= ahci::kPxIsDhrs;
  is_ |= 0x1;
  UpdateIrq();
}

Status AhciController::SaveState(sim::SnapWriter& w) const {
  w.U32(ghc_);
  w.U32(is_);
  w.U32(px_clb_);
  w.U32(px_fb_);
  w.U32(px_is_);
  w.U32(px_ie_);
  w.U32(px_cmd_);
  w.U32(px_ci_);
  w.U32(error_slots_);
  w.U64(dma_faults_);
  for (const Inflight& fl : inflight_) {
    w.Bool(fl.active);
    w.Bool(fl.write);
    w.U64(fl.data.size());
    w.Bytes(fl.data.data(), fl.data.size());
    w.U32(static_cast<std::uint32_t>(fl.prdt.size()));
    for (const auto& [dba, len] : fl.prdt) {
      w.U64(dba);
      w.U32(len);
    }
  }
  return Status::kSuccess;
}

Status AhciController::LoadState(sim::SnapReader& r) {
  ghc_ = r.U32();
  is_ = r.U32();
  px_clb_ = r.U32();
  px_fb_ = r.U32();
  px_is_ = r.U32();
  px_ie_ = r.U32();
  px_cmd_ = r.U32();
  px_ci_ = r.U32();
  error_slots_ = r.U32();
  dma_faults_ = r.U64();
  for (Inflight& fl : inflight_) {
    fl = Inflight{};
    fl.active = r.Bool();
    fl.write = r.Bool();
    fl.data.resize(static_cast<std::size_t>(r.U64()));
    r.Bytes(fl.data.data(), fl.data.size());
    const std::uint32_t n = r.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t dba = r.U64();
      const std::uint32_t len = r.U32();
      fl.prdt.emplace_back(dba, len);
    }
  }
  return r.status();
}

void AhciController::UpdateIrq() {
  if ((ghc_ & ahci::kGhcIntrEnable) != 0 && (px_is_ & px_ie_) != 0) {
    if (iommu_->GsiAllowed(id(), gsi_)) {
      irq_->Assert(gsi_);
    }
  }
}

}  // namespace nova::hw
