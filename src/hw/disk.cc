#include "src/hw/disk.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace nova::hw {

namespace {
constexpr std::uint32_t kOpComplete = 1;
}  // namespace

DiskModel::DiskModel(sim::EventQueue* events, DiskGeometry geometry,
                     std::string name)
    : events_(events), geometry_(geometry), name_(std::move(name)) {
  events_->RegisterRebinder(
      sim::EventQueue::OwnerToken(name_), [this](const sim::EventTag& tag) {
        return [this, id = tag.a] { Fire(id); };
      });
}

sim::PicoSeconds DiskModel::ServiceTime(std::uint64_t bytes) const {
  const sim::PicoSeconds media =
      bytes * sim::kPicosPerSecond / geometry_.bandwidth_bps;
  return std::max(geometry_.request_overhead, media);
}

std::uint8_t DiskModel::PatternByte(std::uint64_t offset) const {
  // Deterministic content for unwritten sectors.
  return static_cast<std::uint8_t>((offset * 2654435761u) >> 24);
}

void DiskModel::ReadContent(std::uint64_t offset, void* out, std::uint64_t bytes) const {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (bytes > 0) {
    const std::uint64_t sector = offset / kSectorSize;
    const std::uint64_t in_sector = offset % kSectorSize;
    const std::uint64_t chunk = std::min(bytes, kSectorSize - in_sector);
    auto it = sectors_.find(sector);
    if (it != sectors_.end()) {
      std::memcpy(dst, it->second.data() + in_sector, chunk);
    } else {
      for (std::uint64_t i = 0; i < chunk; ++i) {
        dst[i] = PatternByte(offset + i);
      }
    }
    offset += chunk;
    dst += chunk;
    bytes -= chunk;
  }
}

void DiskModel::WriteContent(std::uint64_t offset, const void* data,
                             std::uint64_t bytes) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const std::uint64_t sector = offset / kSectorSize;
    const std::uint64_t in_sector = offset % kSectorSize;
    const std::uint64_t chunk = std::min(bytes, kSectorSize - in_sector);
    auto& store = sectors_[sector];
    if (store.empty()) {
      store.resize(kSectorSize);
      for (std::uint64_t i = 0; i < kSectorSize; ++i) {
        store[i] = PatternByte(sector * kSectorSize + i);
      }
    }
    std::memcpy(store.data() + in_sector, src, chunk);
    offset += chunk;
    src += chunk;
    bytes -= chunk;
  }
}

Status DiskModel::MediaStatus() {
  if (fault_plan_ != nullptr &&
      fault_plan_->ShouldFault(sim::FaultKind::kDiskMediaError, "disk")) {
    media_errors_.Add();
    return Status::kMemoryFault;
  }
  return Status::kSuccess;
}

DiskModel::RequestId DiskModel::Enqueue(Pending p) {
  const RequestId id = next_request_++;
  const sim::PicoSeconds start = std::max(busy_until_, events_->now());
  busy_until_ = start + ServiceTime(p.bytes);
  pending_.emplace(id, std::move(p));
  events_->ScheduleAtTagged(
      busy_until_,
      sim::EventTag{sim::EventQueue::OwnerToken(name_), kOpComplete, id, 0},
      [this, id] { Fire(id); });
  return id;
}

DiskModel::RequestId DiskModel::SubmitRead(std::uint64_t offset,
                                           std::uint64_t bytes,
                                           std::uint64_t cookie) {
  Pending p;
  p.write = false;
  p.offset = offset;
  p.bytes = bytes;
  p.cookie = cookie;
  return Enqueue(std::move(p));
}

DiskModel::RequestId DiskModel::SubmitWrite(std::uint64_t offset,
                                            const std::uint8_t* data,
                                            std::uint64_t bytes,
                                            std::uint64_t cookie) {
  Pending p;
  p.write = true;
  p.offset = offset;
  p.bytes = bytes;
  p.cookie = cookie;
  // Capture the payload now: the source buffer may be reused by the caller.
  p.payload.assign(data, data + bytes);
  return Enqueue(std::move(p));
}

void DiskModel::Fire(RequestId id) {
  auto node = pending_.extract(id);
  if (node.empty()) {
    return;  // Request was cancelled/retired administratively.
  }
  Pending& p = node.mapped();
  const Status status = MediaStatus();
  const std::uint8_t* data = nullptr;
  std::uint64_t len = 0;
  std::vector<std::uint8_t> buf;
  if (Ok(status)) {
    if (p.write) {
      WriteContent(p.offset, p.payload.data(), p.payload.size());
    } else {
      buf.resize(p.bytes);
      ReadContent(p.offset, buf.data(), p.bytes);
      data = buf.data();
      len = p.bytes;
    }
  }
  completed_.Add();
  if (handler_) {
    handler_(id, p.cookie, status, data, len);
  }
}

Status DiskModel::SaveState(sim::SnapWriter& w) const {
  w.U64(static_cast<std::uint64_t>(busy_until_));
  w.U64(next_request_);
  Status st = completed_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  st = media_errors_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  // Written sectors, sorted for a deterministic encoding.
  std::map<std::uint64_t, const std::vector<std::uint8_t>*> sorted;
  // nova-lint: allow(determinism) -- accumulates into a sorted std::map
  for (const auto& [sector, bytes] : sectors_) {
    sorted.emplace(sector, &bytes);
  }
  w.U64(sorted.size());
  for (const auto& [sector, bytes] : sorted) {
    w.U64(sector);
    w.Bytes(bytes->data(), bytes->size());
  }
  w.U32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [id, p] : pending_) {
    w.U64(id);
    w.Bool(p.write);
    w.U64(p.offset);
    w.U64(p.bytes);
    w.U64(p.cookie);
    w.U64(p.payload.size());
    w.Bytes(p.payload.data(), p.payload.size());
  }
  return Status::kSuccess;
}

Status DiskModel::LoadState(sim::SnapReader& r) {
  busy_until_ = static_cast<sim::PicoSeconds>(r.U64());
  next_request_ = r.U64();
  Status st = completed_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = media_errors_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  sectors_.clear();
  const std::uint64_t n_sectors = r.U64();
  for (std::uint64_t i = 0; i < n_sectors; ++i) {
    const std::uint64_t sector = r.U64();
    auto& store = sectors_[sector];
    store.resize(kSectorSize);
    r.Bytes(store.data(), kSectorSize);
  }
  pending_.clear();
  const std::uint32_t n_pending = r.U32();
  for (std::uint32_t i = 0; i < n_pending; ++i) {
    const RequestId id = r.U64();
    Pending p;
    p.write = r.Bool();
    p.offset = r.U64();
    p.bytes = r.U64();
    p.cookie = r.U64();
    p.payload.resize(static_cast<std::size_t>(r.U64()));
    r.Bytes(p.payload.data(), p.payload.size());
    pending_.emplace(id, std::move(p));
  }
  return r.status();
}

}  // namespace nova::hw
