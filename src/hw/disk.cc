#include "src/hw/disk.h"

#include <algorithm>
#include <cstring>

namespace nova::hw {

sim::PicoSeconds DiskModel::ServiceTime(std::uint64_t bytes) const {
  const sim::PicoSeconds media =
      bytes * sim::kPicosPerSecond / geometry_.bandwidth_bps;
  return std::max(geometry_.request_overhead, media);
}

std::uint8_t DiskModel::PatternByte(std::uint64_t offset) const {
  // Deterministic content for unwritten sectors.
  return static_cast<std::uint8_t>((offset * 2654435761u) >> 24);
}

void DiskModel::ReadContent(std::uint64_t offset, void* out, std::uint64_t bytes) const {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (bytes > 0) {
    const std::uint64_t sector = offset / kSectorSize;
    const std::uint64_t in_sector = offset % kSectorSize;
    const std::uint64_t chunk = std::min(bytes, kSectorSize - in_sector);
    auto it = sectors_.find(sector);
    if (it != sectors_.end()) {
      std::memcpy(dst, it->second.data() + in_sector, chunk);
    } else {
      for (std::uint64_t i = 0; i < chunk; ++i) {
        dst[i] = PatternByte(offset + i);
      }
    }
    offset += chunk;
    dst += chunk;
    bytes -= chunk;
  }
}

void DiskModel::WriteContent(std::uint64_t offset, const void* data,
                             std::uint64_t bytes) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const std::uint64_t sector = offset / kSectorSize;
    const std::uint64_t in_sector = offset % kSectorSize;
    const std::uint64_t chunk = std::min(bytes, kSectorSize - in_sector);
    auto& store = sectors_[sector];
    if (store.empty()) {
      store.resize(kSectorSize);
      for (std::uint64_t i = 0; i < kSectorSize; ++i) {
        store[i] = PatternByte(sector * kSectorSize + i);
      }
    }
    std::memcpy(store.data() + in_sector, src, chunk);
    offset += chunk;
    src += chunk;
    bytes -= chunk;
  }
}

Status DiskModel::MediaStatus() {
  if (fault_plan_ != nullptr &&
      fault_plan_->ShouldFault(sim::FaultKind::kDiskMediaError, "disk")) {
    media_errors_.Add();
    return Status::kMemoryFault;
  }
  return Status::kSuccess;
}

void DiskModel::SubmitRead(std::uint64_t offset, std::uint64_t bytes,
                           std::uint8_t* out, Completion done) {
  const sim::PicoSeconds start = std::max(busy_until_, events_->now());
  busy_until_ = start + ServiceTime(bytes);
  events_->ScheduleAt(busy_until_, [this, offset, bytes, out, done = std::move(done)] {
    const Status status = MediaStatus();
    if (Ok(status)) {
      ReadContent(offset, out, bytes);
    }
    completed_.Add();
    done(status);
  });
}

void DiskModel::SubmitWrite(std::uint64_t offset, const std::uint8_t* data,
                            std::uint64_t bytes, Completion done) {
  const sim::PicoSeconds start = std::max(busy_until_, events_->now());
  busy_until_ = start + ServiceTime(bytes);
  // Capture the payload now: the source buffer may be reused by the caller.
  std::vector<std::uint8_t> copy(data, data + bytes);
  events_->ScheduleAt(busy_until_,
                      [this, offset, payload = std::move(copy), done = std::move(done)] {
                        const Status status = MediaStatus();
                        if (Ok(status)) {
                          WriteContent(offset, payload.data(), payload.size());
                        }
                        completed_.Add();
                        done(status);
                      });
}

}  // namespace nova::hw
