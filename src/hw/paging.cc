#include "src/hw/paging.h"

namespace nova::hw {

PageTable::LevelInfo PageTable::Level(int level) const {
  if (mode_ == PagingMode::kTwoLevel) {
    // 32-bit VA: [31:22] directory, [21:12] table, [11:0] offset.
    return LevelInfo{.shift = 12 + 10 * level, .bits = 10, .esize = 4};
  }
  // 48-bit VA: four 9-bit index fields.
  return LevelInfo{.shift = 12 + 9 * level, .bits = 9, .esize = 8};
}

std::uint64_t PageTable::ReadEntry(PhysAddr table, std::uint64_t index) const {
  const LevelInfo li = Level(0);  // Entry size is uniform across levels.
  if (li.esize == 4) {
    return mem_->Read32(table + index * 4);
  }
  return mem_->Read64(table + index * 8);
}

void PageTable::WriteEntry(PhysAddr table, std::uint64_t index,
                           std::uint64_t entry) const {
  const LevelInfo li = Level(0);
  if (li.esize == 4) {
    (void)mem_->Write32(table + index * 4, static_cast<std::uint32_t>(entry));
  } else {
    (void)mem_->Write64(table + index * 8, entry);
  }
}

WalkResult PageTable::Walk(VirtAddr va, Access access, bool set_ad) const {
  WalkResult r;
  PhysAddr table = root_;
  for (int level = Levels(mode_) - 1; level >= 0; --level) {
    const LevelInfo li = Level(level);
    const std::uint64_t index = (va >> li.shift) & ((1ull << li.bits) - 1);
    const PhysAddr entry_addr = table + index * li.esize;
    std::uint64_t entry = ReadEntry(table, index);
    ++r.accesses;

    if (!(entry & pte::kPresent)) {
      r.status = Status::kMemoryFault;
      r.fault = {.present = false, .write = access.write, .user = access.user};
      r.pte_addr = entry_addr;
      return r;
    }
    if (access.user && !(entry & pte::kUser)) {
      r.status = Status::kMemoryFault;
      r.fault = {.present = true, .write = access.write, .user = true};
      r.pte_addr = entry_addr;
      return r;
    }
    if (access.write && !(entry & pte::kWritable)) {
      r.status = Status::kMemoryFault;
      r.fault = {.present = true, .write = true, .user = access.user};
      r.pte_addr = entry_addr;
      return r;
    }

    const bool leaf = level == 0 || (level == 1 && (entry & pte::kLarge));
    if (set_ad) {
      std::uint64_t updated = entry | pte::kAccessed;
      if (leaf && access.write) {
        updated |= pte::kDirty;
      }
      if (updated != entry) {
        WriteEntry(table, index, updated);
        entry = updated;
        ++r.accesses;
      }
    }

    if (leaf) {
      const std::uint64_t page_size = level == 0 ? kPageSize : LargePageSize(mode_);
      const std::uint64_t offset = va & (page_size - 1);
      r.pa = (entry & pte::kAddrMask & ~(page_size - 1)) | offset;
      r.page_size = page_size;
      r.pte = entry;
      r.pte_addr = entry_addr;
      return r;
    }
    table = entry & pte::kAddrMask;
  }
  r.status = Status::kMemoryFault;  // Unreachable: loop always hits a leaf.
  return r;
}

Status PageTable::Map(VirtAddr va, PhysAddr pa, std::uint64_t page_size,
                      std::uint64_t flags, const FrameAllocator& alloc) {
  const bool large = page_size == LargePageSize(mode_);
  if (!large && page_size != kPageSize) {
    return Status::kBadParameter;
  }
  if ((va & (page_size - 1)) != 0 || (pa & (page_size - 1)) != 0) {
    return Status::kBadParameter;
  }

  const int leaf_level = large ? 1 : 0;
  PhysAddr table = root_;
  for (int level = Levels(mode_) - 1; level > leaf_level; --level) {
    const LevelInfo li = Level(level);
    const std::uint64_t index = (va >> li.shift) & ((1ull << li.bits) - 1);
    std::uint64_t entry = ReadEntry(table, index);
    if (!(entry & pte::kPresent)) {
      const PhysAddr fresh = alloc ? alloc() : 0;
      if (fresh == 0) {
        return Status::kOverflow;
      }
      (void)mem_->Zero(fresh, kPageSize);
      entry = (fresh & pte::kAddrMask) | pte::kPresent | pte::kWritable | pte::kUser;
      WriteEntry(table, index, entry);
    } else if (level == 1 && (entry & pte::kLarge)) {
      return Status::kBusy;  // A superpage already covers this range.
    }
    table = entry & pte::kAddrMask;
  }

  const LevelInfo li = Level(leaf_level);
  const std::uint64_t index = (va >> li.shift) & ((1ull << li.bits) - 1);
  std::uint64_t entry = (pa & pte::kAddrMask) | (flags & ~pte::kAddrMask) | pte::kPresent;
  if (large) {
    entry |= pte::kLarge;
  }
  WriteEntry(table, index, entry);
  return Status::kSuccess;
}

Status PageTable::Unmap(VirtAddr va) {
  PhysAddr table = root_;
  for (int level = Levels(mode_) - 1; level >= 0; --level) {
    const LevelInfo li = Level(level);
    const std::uint64_t index = (va >> li.shift) & ((1ull << li.bits) - 1);
    const std::uint64_t entry = ReadEntry(table, index);
    if (!(entry & pte::kPresent)) {
      return Status::kSuccess;
    }
    const bool leaf = level == 0 || (level == 1 && (entry & pte::kLarge));
    if (leaf) {
      WriteEntry(table, index, 0);
      return Status::kSuccess;
    }
    table = entry & pte::kAddrMask;
  }
  return Status::kSuccess;
}

WalkResult PageTable::Probe(VirtAddr va) const {
  return Walk(va, Access{}, /*set_ad=*/false);
}

Status PageTable::SetLeafFlags(VirtAddr va, std::uint64_t set,
                               std::uint64_t clear) {
  const WalkResult r = Probe(va);
  if (!Ok(r.status)) {
    return r.status;
  }
  const std::uint64_t updated = (r.pte | set) & ~clear;
  if (updated == r.pte) {
    return Status::kSuccess;
  }
  if (Level(0).esize == 4) {
    return mem_->Write32(r.pte_addr, static_cast<std::uint32_t>(updated));
  }
  return mem_->Write64(r.pte_addr, updated);
}

void PageTable::FreeLevel(PhysAddr table, int level,
                          const FrameReleaser& free_frame) {
  if (level > 0) {
    const LevelInfo li = Level(level);
    for (std::uint64_t index = 0; index < (1ull << li.bits); ++index) {
      const std::uint64_t entry = ReadEntry(table, index);
      if (!(entry & pte::kPresent)) {
        continue;
      }
      if (level == 1 && (entry & pte::kLarge)) {
        continue;  // Superpage leaf: no table below.
      }
      FreeLevel(entry & pte::kAddrMask, level - 1, free_frame);
    }
  }
  free_frame(table);
}

void PageTable::FreeTables(const FrameReleaser& free_frame) {
  FreeLevel(root_, Levels(mode_) - 1, free_frame);
}

}  // namespace nova::hw
