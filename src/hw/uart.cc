#include "src/hw/uart.h"

namespace nova::hw {

std::uint32_t Uart::PioRead(std::uint16_t port, unsigned /*size*/) {
  switch (port - uart::kPortBase) {
    case uart::kData:
      return 0;  // No input modelled.
    case uart::kLsr:
      return uart::kLsrTxEmpty;  // Transmitter always ready.
    default:
      return 0;
  }
}

void Uart::PioWrite(std::uint16_t port, unsigned /*size*/, std::uint32_t value) {
  if (port - uart::kPortBase == uart::kData) {
    output_.push_back(static_cast<char>(value & 0xff));
  }
}

}  // namespace nova::hw
