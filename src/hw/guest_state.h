// Architectural guest state — the contents of the VMCS guest-state area
// plus the execution controls the hypervisor programs before VM entry.
#ifndef SRC_HW_GUEST_STATE_H_
#define SRC_HW_GUEST_STATE_H_

#include <array>
#include <bitset>
#include <cstdint>

#include "src/hw/isa.h"
#include "src/hw/paging.h"
#include "src/hw/tlb.h"

namespace nova::hw {

constexpr int kNumVectors = 64;
constexpr int kMaxIntrNesting = 8;

// Register and system state of one virtual CPU (or, in native mode, of the
// physical CPU running an operating system directly).
struct GuestState {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  std::uint64_t rip = 0;
  std::uint64_t cr3 = 0;
  std::uint64_t cr2 = 0;
  bool paging = false;            // Guest paging enabled (CR0.PG).
  bool interrupts_enabled = false;  // RFLAGS.IF.
  bool halted = false;

  // Interrupt descriptor table: vector -> handler address.
  std::array<std::uint64_t, kNumVectors> idt{};

  // Hardware interrupt/exception nesting: saved rip + IF + GPRs per level.
  // The register bank stands in for the save/restore sequence a real ISR
  // performs on entry/exit (this ISA has no stack to push them onto); its
  // cost is part of the event-delivery and iret charges. Handlers therefore
  // cannot leak results through registers across IRET — they must write
  // guest memory (or host-side state) instead, exactly like a real ISR.
  struct Frame {
    std::uint64_t rip;
    bool interrupts_enabled;
    std::array<std::uint64_t, isa::kNumRegs> regs;
  };
  std::array<Frame, kMaxIntrNesting> frames{};
  int frame_depth = 0;

  // Event injection (written by the VMM through the reply MTD).
  bool inject_pending = false;
  std::uint8_t inject_vector = 0;
  bool request_intr_window = false;  // Exit when IF becomes 1.

  // Recall: forces the next instruction boundary to exit (hypercall-driven,
  // §7.5 of the paper).
  bool recall_pending = false;
};

// How guest memory accesses translate to host-physical addresses.
enum class TranslationMode : std::uint8_t {
  kNative,  // Bare metal: guest-physical == host-physical.
  kNested,  // Hardware nested paging (EPT/NPT).
  kShadow,  // Software shadow paging: the vTLB algorithm (§5.3).
};

// Execution controls (the VMCS control area).
struct VmControls {
  TranslationMode mode = TranslationMode::kNative;
  PagingMode nested_format = PagingMode::kFourLevel;
  PhysAddr nested_root = 0;      // EPT root (kNested) or shadow root (kShadow).
                                 // Under kShadow the vTLB retargets this to
                                 // the active cached context's shadow tree.
  TlbTag tag = kHostTag;         // Active VPID/ASID: what the hardware walker
                                 // and TLB use right now. The vTLB's tagged
                                 // context cache switches this per guest
                                 // address space.
  TlbTag base_tag = kHostTag;    // The VM's stable identity tag (equal to
                                 // Pd::vm_tag). `tag` returns to it whenever
                                 // per-context tagging is not in effect.

  // Idealized direct interrupt delivery: pending host interrupts are
  // delivered straight into the guest IDT without a VM exit (used by the
  // zero-exit "Direct" configuration of §8.1).
  bool direct_interrupts = false;

  bool intercept_cpuid = false;
  bool intercept_hlt = false;
  bool intercept_cr3 = false;    // Required by the vTLB algorithm.
  bool intercept_invlpg = false;
  bool intercept_vmcall = false;

  // Ports the guest may access directly (direct device assignment). All
  // other ports exit. Null means "intercept everything" for VMs; native
  // mode ignores it.
  const std::bitset<65536>* io_passthrough = nullptr;
};

enum class ExitReason : std::uint8_t {
  kNone = 0,
  kPageFault,    // Shadow-mode translation miss: the vTLB handles it.
  kEptViolation, // Nested mode: guest-physical address unmapped (MMIO).
  kPio,          // Intercepted port access.
  kCpuid,
  kHlt,
  kMovCr,        // CR3 write (vTLB flush) or read when intercepted.
  kInvlpg,
  kExtInt,       // Host hardware interrupt arrived in guest mode.
  kIntrWindow,   // IF became 1 while the VMM waits to inject.
  kRecall,
  kVmcall,
  kPreempt,      // Cycle budget (time slice) exhausted.
  kError,        // Invalid opcode / nested fault: would triple-fault.
};

// Keep in sync when appending reasons; the enum-coverage test walks
// [0, kNumExitReasons) and fails if ExitReasonName lags behind.
constexpr int kNumExitReasons = static_cast<int>(ExitReason::kError) + 1;

const char* ExitReasonName(ExitReason r);

struct VmExit {
  ExitReason reason = ExitReason::kNone;
  std::uint64_t gva = 0;        // Faulting virtual address.
  std::uint64_t gpa = 0;        // Faulting guest-physical address.
  PageFaultInfo pf{};           // Page-fault qualification.
  bool is_write = false;        // For PIO / MMIO.
  std::uint16_t port = 0;       // For PIO.
  std::uint8_t width = 8;       // Access width in bytes.
  std::uint64_t value = 0;      // Outgoing value for OUT.
  std::uint8_t reg = 0;         // Register operand (IN destination).
  std::uint32_t hypercall = 0;  // For kVmcall.
  std::uint64_t qual = 0;       // Generic qualification (CR value, ...).
};

}  // namespace nova::hw

#endif  // SRC_HW_GUEST_STATE_H_
