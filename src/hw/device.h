// Physical device abstraction and the system bus.
//
// Host devices expose MMIO register windows and I/O ports; the bus routes
// accesses to the owning device. DMA goes through the IOMMU; interrupts
// are asserted on the IrqChip. Direct device assignment (§8.2/8.3 of the
// paper) works by mapping a device's MMIO window into a VM's host address
// space and granting its ports in the VM's I/O space.
#ifndef SRC_HW_DEVICE_H_
#define SRC_HW_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/hw/iommu.h"
#include "src/hw/phys_mem.h"
#include "src/sim/status.h"

namespace nova::hw {

class Device {
 public:
  Device(DeviceId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  DeviceId id() const { return id_; }
  const std::string& name() const { return name_; }

  // MMIO window access; `addr` is the offset within the device's window.
  virtual std::uint64_t MmioRead(std::uint64_t offset, unsigned size) = 0;
  virtual void MmioWrite(std::uint64_t offset, unsigned size, std::uint64_t value) = 0;

  // Port I/O; `port` is absolute. Default: float the bus / drop writes.
  virtual std::uint32_t PioRead(std::uint16_t port, unsigned size);
  virtual void PioWrite(std::uint16_t port, unsigned size, std::uint32_t value);

 private:
  DeviceId id_;
  std::string name_;
};

// Routes physical MMIO/PIO accesses to devices.
class Bus {
 public:
  struct MmioRange {
    PhysAddr base;
    std::uint64_t size;
    Device* device;
  };
  struct PioRange {
    std::uint16_t base;
    std::uint16_t count;
    Device* device;
  };

  Status RegisterMmio(PhysAddr base, std::uint64_t size, Device* device);
  Status RegisterPio(std::uint16_t base, std::uint16_t count, Device* device);

  // Find the device claiming `addr`; returns nullptr for plain RAM.
  Device* FindMmio(PhysAddr addr, PhysAddr* window_base = nullptr) const;
  Device* FindPio(std::uint16_t port) const;

  // Dispatch helpers. Return kMemoryFault / kBadDevice when unclaimed.
  Status MmioRead(PhysAddr addr, unsigned size, std::uint64_t* out) const;
  Status MmioWrite(PhysAddr addr, unsigned size, std::uint64_t value) const;
  Status PioRead(std::uint16_t port, unsigned size, std::uint32_t* out) const;
  Status PioWrite(std::uint16_t port, unsigned size, std::uint32_t value) const;

  const std::vector<MmioRange>& mmio_ranges() const { return mmio_; }
  const std::vector<PioRange>& pio_ranges() const { return pio_; }

 private:
  std::vector<MmioRange> mmio_;
  std::vector<PioRange> pio_;
};

}  // namespace nova::hw

#endif  // SRC_HW_DEVICE_H_
