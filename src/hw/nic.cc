#include "src/hw/nic.h"

#include <cstring>

namespace nova::hw {

namespace {
constexpr std::uint32_t kOpCoalesce = 1;
constexpr std::uint32_t kOpSend = 1;
}  // namespace

Nic::Nic(DeviceId id, Iommu* iommu, IrqChip* irq, std::uint32_t gsi,
         sim::EventQueue* events)
    : Device(id, "nic"), iommu_(iommu), irq_(irq), gsi_(gsi), events_(events) {
  events_->RegisterRebinder(
      sim::EventQueue::OwnerToken("hw.nic"),
      [this](const sim::EventTag&) { return [this] { CoalesceExpired(); }; });
}

void Nic::set_tracer(sim::Tracer* t) {
  tracer_ = t;
  trace_rx_ = t->Intern("NIC RX DMA");
}

std::uint64_t Nic::MmioRead(std::uint64_t offset, unsigned /*size*/) {
  switch (offset) {
    case nic::kCtrl: return ctrl_;
    case nic::kStatus: return 0x3;  // Link up, full duplex.
    case nic::kIcr: {
      const std::uint32_t v = icr_;
      icr_ = 0;  // Read-to-clear.
      return v;
    }
    case nic::kItr: return itr_;
    case nic::kIms: return ims_;
    case nic::kRctl: return rctl_;
    case nic::kRdbal: return rdbal_;
    case nic::kRdbah: return rdbah_;
    case nic::kRdlen: return rdlen_;
    case nic::kRdh: return rdh_;
    case nic::kRdt: return rdt_;
    default: return 0;
  }
}

void Nic::MmioWrite(std::uint64_t offset, unsigned /*size*/, std::uint64_t value) {
  const auto v = static_cast<std::uint32_t>(value);
  switch (offset) {
    case nic::kCtrl: ctrl_ = v; break;
    case nic::kItr: itr_ = v; break;
    case nic::kIms: ims_ |= v; break;
    case nic::kImc: ims_ &= ~v; break;
    case nic::kRctl: rctl_ = v; break;
    case nic::kRdbal: rdbal_ = v & ~0xfu; break;
    case nic::kRdbah: rdbah_ = v; break;
    case nic::kRdlen: rdlen_ = v & ~0x7fu; break;
    case nic::kRdh: rdh_ = v; break;
    case nic::kRdt: rdt_ = v; break;
    default: break;
  }
}

bool Nic::Receive(const std::uint8_t* frame, std::uint32_t length) {
  if (fault_plan_ != nullptr &&
      fault_plan_->ShouldFault(sim::FaultKind::kNicDrop, "nic")) {
    rx_dropped_.Add();  // Injected wire loss.
    return false;
  }
  std::vector<std::uint8_t> corrupted;
  if (fault_plan_ != nullptr && length > 0 &&
      fault_plan_->ShouldFault(sim::FaultKind::kNicCorrupt, "nic")) {
    // Injected bit error: flip one byte, deterministically placed.
    corrupted.assign(frame, frame + length);
    corrupted[length / 2] ^= 0xff;
    frame = corrupted.data();
    rx_corrupted_.Add();
  }
  if ((rctl_ & nic::kRctlEnable) == 0 || RingEntries() == 0) {
    rx_dropped_.Add();
    return false;
  }
  // Hardware owns descriptors [RDH, RDT); ring full when RDH == RDT.
  if (rdh_ == rdt_) {
    rx_dropped_.Add();
    return false;
  }
  const std::uint64_t ring_base =
      (static_cast<std::uint64_t>(rdbah_) << 32) | rdbal_;
  const std::uint64_t desc_addr = ring_base + rdh_ * 16ull;

  nic::RxDescriptor desc{};
  if (!Ok(iommu_->DmaRead(id(), desc_addr, &desc, sizeof(desc)))) {
    rx_dropped_.Add();
    return false;
  }
  if (!Ok(iommu_->DmaWrite(id(), desc.buffer, frame, length))) {
    rx_dropped_.Add();
    return false;
  }
  desc.length = static_cast<std::uint16_t>(length);
  desc.status = nic::kRxStatusDd | nic::kRxStatusEop;
  if (!Ok(iommu_->DmaWrite(id(), desc_addr, &desc, sizeof(desc)))) {
    rx_dropped_.Add();
    return false;
  }
  rdh_ = (rdh_ + 1) % RingEntries();
  rx_packets_.Add();
  tracer_->Instant(sim::TraceCat::kDevice, trace_rx_, length);

  icr_ |= nic::kIcrRxt0;
  RaiseOrCoalesce();
  return true;
}

void Nic::RaiseOrCoalesce() {
  if ((icr_ & ims_) == 0) {
    return;
  }
  const sim::PicoSeconds interval = static_cast<sim::PicoSeconds>(itr_) * 256 *
                                    sim::kPicosPerNano;
  const sim::PicoSeconds now = events_->now();
  if (interval == 0 || now >= last_irq_ + interval) {
    FireIrq();
    return;
  }
  if (!irq_scheduled_) {
    irq_scheduled_ = true;
    events_->ScheduleAtTagged(
        last_irq_ + interval,
        sim::EventTag{sim::EventQueue::OwnerToken("hw.nic"), kOpCoalesce},
        [this] { CoalesceExpired(); });
  }
}

void Nic::CoalesceExpired() {
  irq_scheduled_ = false;
  if ((icr_ & ims_) != 0) {
    FireIrq();
  }
}

Status Nic::SaveState(sim::SnapWriter& w) const {
  w.U32(ctrl_);
  w.U32(icr_);
  w.U32(itr_);
  w.U32(ims_);
  w.U32(rctl_);
  w.U32(rdbal_);
  w.U32(rdbah_);
  w.U32(rdlen_);
  w.U32(rdh_);
  w.U32(rdt_);
  w.Bool(irq_scheduled_);
  w.U64(static_cast<std::uint64_t>(last_irq_));
  Status st = rx_packets_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  st = rx_dropped_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  st = rx_corrupted_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  return irqs_.SaveState(w);
}

Status Nic::LoadState(sim::SnapReader& r) {
  ctrl_ = r.U32();
  icr_ = r.U32();
  itr_ = r.U32();
  ims_ = r.U32();
  rctl_ = r.U32();
  rdbal_ = r.U32();
  rdbah_ = r.U32();
  rdlen_ = r.U32();
  rdh_ = r.U32();
  rdt_ = r.U32();
  irq_scheduled_ = r.Bool();
  last_irq_ = static_cast<sim::PicoSeconds>(r.U64());
  Status st = rx_packets_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = rx_dropped_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  st = rx_corrupted_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  return irqs_.LoadState(r);
}

void Nic::FireIrq() {
  last_irq_ = events_->now();
  irqs_.Add();
  if (iommu_->GsiAllowed(id(), gsi_)) {
    irq_->Assert(gsi_);
  }
}

NetLink::NetLink(sim::EventQueue* events, Nic* nic)
    : events_(events), nic_(nic) {
  events_->RegisterRebinder(
      sim::EventQueue::OwnerToken("hw.netlink"),
      [this](const sim::EventTag&) { return [this] { SendOne(); }; });
}

void NetLink::StartStream(double mbit_per_s, std::uint32_t packet_bytes) {
  running_ = true;
  packet_bytes_ = packet_bytes;
  const double bits_per_packet = packet_bytes * 8.0;
  const double packets_per_second = mbit_per_s * 1e6 / bits_per_packet;
  interval_ = static_cast<sim::PicoSeconds>(1e12 / packets_per_second);
  events_->ScheduleAfterTagged(
      interval_, sim::EventTag{sim::EventQueue::OwnerToken("hw.netlink"), kOpSend},
      [this] { SendOne(); });
}

void NetLink::Stop() { running_ = false; }

bool NetLink::Partitioned() const {
  return fault_plan_ != nullptr &&
         fault_plan_->InWindow(sim::FaultKind::kLinkPartition, "netlink",
                               events_->now());
}

void NetLink::SendOne() {
  if (!running_) {
    return;
  }
  if (Partitioned()) {
    // Partition window: the frame is lost on the wire; the receiver never
    // sees it. Keep the clock ticking so the link resumes when it heals.
    ++seq_;
    sent_.Add();
    lost_.Add();
  } else {
    std::vector<std::uint8_t> frame(packet_bytes_);
    // Ethernet-ish header + sequence number + pattern payload.
    std::memset(frame.data(), 0xee, std::min<std::size_t>(frame.size(), 14));
    if (frame.size() >= 22) {
      std::memcpy(frame.data() + 14, &seq_, 8);
    }
    for (std::size_t i = 22; i < frame.size(); ++i) {
      frame[i] = static_cast<std::uint8_t>(seq_ + i);
    }
    ++seq_;
    nic_->Receive(frame.data(), packet_bytes_);
    sent_.Add();
  }
  events_->ScheduleAfterTagged(
      interval_, sim::EventTag{sim::EventQueue::OwnerToken("hw.netlink"), kOpSend},
      [this] { SendOne(); });
}

Status NetLink::SaveState(sim::SnapWriter& w) const {
  w.Bool(running_);
  w.U32(packet_bytes_);
  w.U64(static_cast<std::uint64_t>(interval_));
  w.U64(seq_);
  Status st = sent_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  return lost_.SaveState(w);
}

Status NetLink::LoadState(sim::SnapReader& r) {
  running_ = r.Bool();
  packet_bytes_ = r.U32();
  interval_ = static_cast<sim::PicoSeconds>(r.U64());
  seq_ = r.U64();
  Status st = sent_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  return lost_.LoadState(r);
}

}  // namespace nova::hw
