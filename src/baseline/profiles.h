// Comparator cost profiles for the Figure 5 bars we can execute.
//
// A monolithic hypervisor (KVM/ESXi-style) handles VM exits inside the
// kernel: there is no IPC hop to a user-level VMM, but the in-kernel
// handler saves and restores the full architectural state (no per-event
// transfer descriptors) and runs a much larger code path. The profiles
// below reconfigure the same execution stack to model that structure; the
// bars for systems we cannot run (ESXi, Hyper-V binary-only) are reported
// from the paper in EXPERIMENTS.md instead.
#ifndef SRC_BASELINE_PROFILES_H_
#define SRC_BASELINE_PROFILES_H_

#include "src/hv/types.h"
#include "src/vmm/vmm.h"

namespace nova::baseline {

// NOVA's decomposed architecture: the default cost model.
inline hv::HvCosts NovaCosts() { return hv::HvCosts{}; }

// Monolithic in-kernel VMM: no portal IPC, no address-space switch to a
// user VMM — but a heavier per-exit fixed path (full state handling,
// larger dispatch). Calibrated so the kernel-compile benchmark lands in
// the 97-98 % band Figure 5 reports for KVM.
inline hv::HvCosts MonolithicCosts() {
  hv::HvCosts costs;
  costs.portal_traversal = 0;
  costs.context_switch = 0;
  costs.addr_space_switch = 0;
  costs.reply_path = 0;
  costs.ipc_refill_entries = 0;
  // In-kernel handler entry/exit and full VMCS state handling.
  costs.hypercall_dispatch = 60;
  costs.cap_lookup = 0;
  return costs;
}

// VMM-side handling costs of a monolithic stack (QEMU-style device
// emulation is heavier than a purpose-built thin VMM).
inline void ApplyMonolithicVmmCosts(vmm::VmmConfig& config) {
  config.pio_dispatch += 700;
  config.mmio_dispatch += 650;
  config.device_update += 500;
  config.cpuid_emulate += 350;
  config.hlt_handle += 300;
  config.inject_decide += 250;
}

}  // namespace nova::baseline

#endif  // SRC_BASELINE_PROFILES_H_
