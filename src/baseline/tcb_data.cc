#include "src/baseline/tcb_data.h"

#include <array>

namespace nova::baseline {
namespace {

// Numbers as given or estimated in §3.2 / Figure 1 of the paper.
constexpr std::array<TcbComponent, 3> kNova = {{
    {"microhypervisor", 9, true},
    {"user environment", 7, false},
    {"VMM", 20, false},
}};

constexpr std::array<TcbComponent, 3> kXen = {{
    {"hypervisor", 100, true},
    {"Dom0 Linux (trimmed)", 200, false},
    {"Qemu VMM", 140, false},
}};

constexpr std::array<TcbComponent, 2> kKvm = {{
    {"Linux + KVM", 220, true},
    {"Qemu VMM", 140, false},
}};

constexpr std::array<TcbComponent, 4> kKvmL4 = {{
    {"L4 microkernel", 15, true},
    {"L4Linux + KVM", 220, false},
    {"user environment", 7, false},
    {"Qemu VMM", 140, false},
}};

constexpr std::array<TcbComponent, 1> kEsxi = {{
    {"hypervisor (drivers + VMM in kernel)", 200, true},
}};

constexpr std::array<TcbComponent, 2> kHyperV = {{
    {"hypervisor", 100, true},
    {"parent partition (Windows Server 2008)", 380, false},
}};

constexpr std::array<TcbStack, 6> kStacks = {{
    {"NOVA", kNova},
    {"Xen", kXen},
    {"KVM", kKvm},
    {"KVM-L4", kKvmL4},
    {"ESXi", kEsxi},
    {"Hyper-V", kHyperV},
}};

}  // namespace

std::span<const TcbStack> Figure1Stacks() { return kStacks; }

}  // namespace nova::baseline
