// Trusted-computing-base size data (Figure 1 of the paper).
//
// Source-code sizes for contemporary virtualization environments, as the
// paper reports or estimates them, plus this reproduction's own measured
// line counts. Used by the fig1 benchmark harness to regenerate the
// comparison.
#ifndef SRC_BASELINE_TCB_DATA_H_
#define SRC_BASELINE_TCB_DATA_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace nova::baseline {

struct TcbComponent {
  std::string_view name;   // e.g. "hypervisor", "Dom0 Linux", "Qemu VMM".
  std::uint32_t kloc;      // Thousand lines of source code.
  bool privileged;         // Runs in the most privileged processor mode.
};

struct TcbStack {
  std::string_view system;
  std::span<const TcbComponent> components;

  std::uint32_t TotalKloc() const {
    std::uint32_t total = 0;
    for (const TcbComponent& c : components) {
      total += c.kloc;
    }
    return total;
  }
  std::uint32_t PrivilegedKloc() const {
    std::uint32_t total = 0;
    for (const TcbComponent& c : components) {
      if (c.privileged) {
        total += c.kloc;
      }
    }
    return total;
  }
};

// The stacks of Figure 1: NOVA, Xen, KVM, KVM-L4, ESXi, Hyper-V.
std::span<const TcbStack> Figure1Stacks();

}  // namespace nova::baseline

#endif  // SRC_BASELINE_TCB_DATA_H_
