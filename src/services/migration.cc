#include "src/services/migration.h"

#include "src/hv/kernel.h"

namespace nova::services {

MigrationDriver::MigrationDriver(Endpoints ep, MigrationConfig config)
    : ep_(std::move(ep)), config_(config) {}

sim::PicoSeconds MigrationDriver::TransferTime(std::uint64_t bytes) const {
  // bandwidth_mbps is decimal megabits; one byte takes 8e6/bw picoseconds.
  const double ps_per_byte = 8.0e6 / config_.bandwidth_mbps;
  return static_cast<sim::PicoSeconds>(static_cast<double>(bytes) *
                                       ps_per_byte) +
         config_.round_latency_ps;
}

bool MigrationDriver::LinkDown(MigrationResult* result) {
  if (ep_.link == nullptr || !ep_.link->Partitioned()) {
    return false;
  }
  ++result->retries;
  // The source was never stopped (or has just been resumed): it keeps
  // making progress while the driver waits out the backoff.
  ep_.run_source(config_.retry_backoff_ps);
  return true;
}

MigrationResult MigrationDriver::Run() {
  MigrationResult result;
  hv::DirtyLog log(ep_.source_hv, ep_.source_vm_pd, config_.track_mode);
  log.Arm();

  // --- Iterative pre-copy: the guest runs throughout. -------------------
  std::uint64_t pending_pages = ep_.guest_pages;  // Round 0: everything.
  bool cutoff = false;
  while (!cutoff) {
    if (result.retries > config_.retry_max) {
      log.Disarm();
      return result;  // Unreachable target: the VM stays at the source.
    }
    if (LinkDown(&result)) {
      continue;  // Dirty pages accumulate; retry the same round.
    }
    const std::uint64_t bytes = pending_pages * config_.frame_bytes;
    ep_.run_source(TransferTime(bytes));
    result.bytes_sent += bytes;
    result.total_ps += TransferTime(bytes);
    result.precopy_pages += pending_pages;
    result.round_pages.push_back(pending_pages);
    ++result.rounds;

    std::vector<std::uint64_t> dirty;
    log.CollectAndReset(&dirty);
    pending_pages = dirty.size();
    // Cut over when the dirty set is small enough to eat as downtime, or
    // when further rounds cannot pay for themselves.
    cutoff = pending_pages <= config_.stop_copy_threshold_pages ||
             result.rounds >= config_.max_rounds;
  }

  // --- Stop-and-copy: source stopped, residual dirty set + state. -------
  log.Disarm();
  for (;;) {
    if (result.retries > config_.retry_max) {
      return result;  // Source resumes; nothing was torn down.
    }
    if (!LinkDown(&result)) {
      break;
    }
    // The backoff ran the source with the log disarmed; re-collect what it
    // dirtied by re-arming for the retry window is unnecessary — kAssist
    // observes continuously until Disarm, and the final snapshot below
    // carries full RAM regardless, so correctness never depends on the
    // residual dirty set.
  }
  sim::Snapshot snap;
  if (ep_.save(snap) != Status::kSuccess) {
    return result;
  }
  result.snapshot_bytes = snap.PayloadBytes();
  const std::uint64_t stop_bytes =
      pending_pages * config_.frame_bytes + result.snapshot_bytes;
  result.stop_copy_pages = pending_pages;
  result.bytes_sent += stop_bytes;
  result.downtime_ps = TransferTime(stop_bytes);
  result.total_ps += result.downtime_ps;
  if (ep_.load(snap) != Status::kSuccess) {
    return result;  // Target rejected the state: VM continues at source.
  }
  result.success = true;
  return result;
}

}  // namespace nova::services
