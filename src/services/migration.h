// Digest-verified live migration: iterative pre-copy over a network link.
//
// The driver moves a running VM between two co-simulated nodes. It is the
// classic pre-copy algorithm:
//
//   round 0    transfer every guest page while the guest keeps running;
//   round i    transfer the pages dirtied during round i-1 (collected from
//              a hv::DirtyLog armed on the VM's protection domain);
//   cutoff     when the dirty set stops shrinking below the threshold (or
//              the round budget is exhausted), stop the source, transfer
//              the final dirty pages plus the machine-state snapshot, and
//              resume on the target.
//
// Transfer timing is analytic — bytes over a fixed-bandwidth link plus a
// per-round latency — while the *content* moves via the snapshot: the
// stop-and-copy snapshot carries guest RAM and all device/kernel state,
// so the target resumes bit-exactly (the round-trip tests compare trace
// digests against an unmigrated run).
//
// Link failure: when the source's link reports a partition (FaultPlan
// kLinkPartition window) at a transfer point, the transfer aborts, the
// source keeps running (it was never stopped mid-round; an aborted
// stop-and-copy resumes it), and the driver retries after a backoff,
// bounded by `retry_max` — after which the migration fails and the VM
// simply continues at the source. A failed migration must never harm the
// workload: that is the robustness property ext_migrate measures.
#ifndef SRC_SERVICES_MIGRATION_H_
#define SRC_SERVICES_MIGRATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/hv/dirty_log.h"
#include "src/hw/nic.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace nova::hv {
class Hypervisor;
class Pd;
}  // namespace nova::hv

namespace nova::services {

struct MigrationConfig {
  double bandwidth_mbps = 1000;          // Migration link (the paper's GigE).
  std::uint64_t frame_bytes = 4096;      // Page transfer granularity.
  sim::PicoSeconds round_latency_ps = sim::Microseconds(100);
  std::uint32_t max_rounds = 8;          // Pre-copy rounds before cutoff.
  std::uint64_t stop_copy_threshold_pages = 64;
  std::uint32_t retry_max = 3;           // Partition retries before giving up.
  sim::PicoSeconds retry_backoff_ps = sim::Milliseconds(2);
  hv::DirtyTrackMode track_mode = hv::DirtyTrackMode::kAssist;
};

struct MigrationResult {
  bool success = false;
  std::uint32_t rounds = 0;              // Pre-copy rounds actually run.
  std::uint32_t retries = 0;             // Partition-aborted transfers.
  std::uint64_t precopy_pages = 0;       // Pages sent while running.
  std::uint64_t stop_copy_pages = 0;     // Pages sent during downtime.
  std::uint64_t bytes_sent = 0;          // Total wire bytes (incl. retries).
  std::uint64_t snapshot_bytes = 0;      // Device/kernel state payload.
  sim::PicoSeconds total_ps = 0;         // First byte to target resume.
  sim::PicoSeconds downtime_ps = 0;      // Source stopped -> target running.
  std::vector<std::uint64_t> round_pages;  // Dirty set per round.
};

class MigrationDriver {
 public:
  // The two nodes are independent simulations; the driver coordinates them
  // through these hooks so it depends on neither the bench harness nor any
  // particular scenario shape.
  struct Endpoints {
    hv::Hypervisor* source_hv = nullptr;
    hv::Pd* source_vm_pd = nullptr;      // Dirty-tracking target.
    hw::NetLink* link = nullptr;         // Partition predicate (may be null).
    std::uint64_t guest_pages = 0;       // Round-0 full-copy size.
    // Advance the source node by dt of simulated time (guest keeps
    // dirtying pages during pre-copy rounds).
    std::function<void(sim::PicoSeconds)> run_source;
    // Stop-and-copy state capture / target restore. `load` returning
    // non-success is a target-side failure: the source resumes.
    std::function<Status(sim::Snapshot&)> save;
    std::function<Status(sim::Snapshot&)> load;
  };

  MigrationDriver(Endpoints ep, MigrationConfig config);

  // Run the whole migration to completion (or bounded failure).
  MigrationResult Run();

 private:
  sim::PicoSeconds TransferTime(std::uint64_t bytes) const;
  // True when the link is partitioned at the current source time; counts
  // a retry and burns the backoff (source keeps running) when so.
  bool LinkDown(MigrationResult* result);

  Endpoints ep_;
  MigrationConfig config_;
};

}  // namespace nova::services

#endif  // SRC_SERVICES_MIGRATION_H_
