// Host-mode device access for user-level drivers.
//
// A driver domain reaches its device's MMIO window through mappings the
// root partition manager delegated to it; access outside those mappings
// is refused, mirroring what the MMU would do to a real user-level driver.
#ifndef SRC_SERVICES_HOST_IO_H_
#define SRC_SERVICES_HOST_IO_H_

#include <cstdint>

#include "src/hv/kernel.h"

namespace nova::services {

// MMIO read/write from `pd` running on `cpu_id`. Charges the uncached
// device-access cost and enforces that the window was delegated.
std::uint64_t HostMmioRead(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                           hw::PhysAddr addr, unsigned size, Status* status = nullptr);
Status HostMmioWrite(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                     hw::PhysAddr addr, unsigned size, std::uint64_t value);

// Port I/O with I/O-space permission check.
std::uint32_t HostPioRead(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                          std::uint16_t port, Status* status = nullptr);
Status HostPioWrite(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                    std::uint16_t port, std::uint32_t value);

}  // namespace nova::services

#endif  // SRC_SERVICES_HOST_IO_H_
