#include "src/services/host_io.h"

namespace nova::services {
namespace {

constexpr sim::Cycles kMmioCost = 150;
constexpr sim::Cycles kPioCost = 220;

bool HoldsWindow(hv::Pd* pd, hw::PhysAddr addr) {
  return pd->mem_space().PermsFor(addr >> hw::kPageShift) != 0;
}

}  // namespace

std::uint64_t HostMmioRead(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                           hw::PhysAddr addr, unsigned size, Status* status) {
  hv->machine().cpu(cpu_id).Charge(kMmioCost);
  if (!HoldsWindow(pd, addr)) {
    if (status != nullptr) {
      *status = Status::kDenied;
    }
    return ~0ull;
  }
  std::uint64_t value = 0;
  const Status s = hv->machine().bus().MmioRead(addr, size, &value);
  if (status != nullptr) {
    *status = s;
  }
  return value;
}

Status HostMmioWrite(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                     hw::PhysAddr addr, unsigned size, std::uint64_t value) {
  hv->machine().cpu(cpu_id).Charge(kMmioCost);
  if (!HoldsWindow(pd, addr)) {
    return Status::kDenied;
  }
  return hv->machine().bus().MmioWrite(addr, size, value);
}

std::uint32_t HostPioRead(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                          std::uint16_t port, Status* status) {
  hv->machine().cpu(cpu_id).Charge(kPioCost);
  if (!pd->io_space().Test(port)) {
    if (status != nullptr) {
      *status = Status::kDenied;
    }
    return ~0u;
  }
  std::uint32_t value = 0;
  const Status s = hv->machine().bus().PioRead(port, 4, &value);
  if (status != nullptr) {
    *status = s;
  }
  return value;
}

Status HostPioWrite(hv::Hypervisor* hv, hv::Pd* pd, std::uint32_t cpu_id,
                    std::uint16_t port, std::uint32_t value) {
  hv->machine().cpu(cpu_id).Charge(kPioCost);
  if (!pd->io_space().Test(port)) {
    return Status::kDenied;
  }
  return hv->machine().bus().PioWrite(port, 4, value);
}

}  // namespace nova::services
