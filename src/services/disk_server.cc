#include "src/services/disk_server.h"

#include <cstring>

#include "src/services/host_io.h"

namespace nova::services {

using root::kAhciMmioBase;

namespace {
constexpr std::uint64_t kDiskServerOwner =
    sim::EventQueue::OwnerToken("svc.disk");
constexpr std::uint32_t kOpDeadline = 1;
constexpr std::uint32_t kOpReissue = 2;
}  // namespace

DiskServer::DiskServer(hv::Hypervisor* hv, root::RootPartitionManager* root,
                       std::uint32_t cpu, std::uint8_t irq_prio)
    : hv_(hv), root_(root), cpu_(cpu) {
  hv_->machine().events().RegisterRebinder(
      kDiskServerOwner,
      [this](const sim::EventTag& tag) -> sim::EventQueue::Callback {
        const int slot = static_cast<int>(tag.a);
        const std::uint64_t gen = tag.b;
        if (slot < 0 || slot >= hw::ahci::kNumSlots) {
          return nullptr;
        }
        if (tag.op == kOpDeadline) {
          return [this, slot, gen] { DeadlineExpired(slot, gen); };
        }
        if (tag.op == kOpReissue) {
          return [this, slot, gen] { ReissueSlot(slot, gen); };
        }
        return nullptr;
      });
  pd_sel_ = root->CreatePd("disk-server", /*is_vm=*/false, &pd_);
  (void)root->AssignDevice(pd_sel_, "ahci");
  (void)root->BindInterrupt(pd_sel_, "ahci", kSmSel, cpu);

  // Command list (1 KiB) + command tables (32 x 256 B): three pages.
  clb_page_ = root->GrantMemory(pd_sel_, 1, ~0ull, hv::perm::kRw);
  ctba_page_ = root->GrantMemory(pd_sel_, 2, ~0ull, hv::perm::kRw);

  // Request handler EC: one per server, shared by every channel portal.
  req_ec_cap_sel_ = root->FreeSel();
  (void)hv_->CreateEcLocal(root->pd(), req_ec_cap_sel_, pd_sel_, cpu,
                     [this](std::uint64_t channel_id) {
                       HandleRequest(static_cast<std::uint32_t>(channel_id));
                     },
                     &req_ec_);
  // Accept DMA-buffer delegations anywhere in the identity space.
  req_ec_->utcb().recv_window = hv::Crd::Mem(0, 50, hv::perm::kRw);

  // Interrupt thread.
  const hv::CapSel irq_ec_sel = root->FreeSel();
  (void)hv_->CreateEcGlobal(root->pd(), irq_ec_sel, pd_sel_, cpu,
                      [this] { IrqThreadStep(); }, &irq_ec_);
  const hv::CapSel irq_sc_sel = root->FreeSel();
  (void)hv_->CreateSc(root->pd(), irq_sc_sel, irq_ec_sel, irq_prio, 5'000'000);

  // Bring the controller up. Task-file errors interrupt too, so errored
  // commands surface on the same semaphore as completions.
  (void)MmioWrite(hw::ahci::kGhc, hw::ahci::kGhcIntrEnable);
  (void)MmioWrite(hw::ahci::kPxClb, clb_page_ << hw::kPageShift);
  (void)MmioWrite(hw::ahci::kPxIe, hw::ahci::kPxIsDhrs | hw::ahci::kPxIsTfes);
  (void)MmioWrite(hw::ahci::kPxCmd, hw::ahci::kPxCmdStart);
}

void DiskServer::SetRequestDeadline(sim::PicoSeconds deadline_ps,
                                    std::uint32_t max_retries,
                                    sim::PicoSeconds backoff_ps) {
  deadline_ps_ = deadline_ps;
  max_retries_ = max_retries;
  backoff_ps_ = backoff_ps;
}

std::uint64_t DiskServer::MmioRead(std::uint64_t offset) {
  return HostMmioRead(hv_, pd_, cpu_, kAhciMmioBase + offset, 4);
}

void DiskServer::MmioWrite(std::uint64_t offset, std::uint64_t value) {
  (void)HostMmioWrite(hv_, pd_, cpu_, kAhciMmioBase + offset, 4, value);
}

DiskServer::Channel DiskServer::OpenChannel(hv::CapSel client_pd_sel,
                                            hv::CapSel completion_pt_sel,
                                            std::uint32_t max_outstanding) {
  Channel out{hv::kInvalidSel, 0};
  hv::Pd* client =
      root_->pd()->caps().LookupAs<hv::Pd>(client_pd_sel, hv::ObjType::kPd, 0);
  if (client == nullptr) {
    return out;
  }

  // The server-side handle on the client's completion portal.
  const hv::CapSel comp_sel = next_comp_sel_++;
  (void)hv_->Delegate(root_->pd(), pd_sel_,
                hv::Crd::Obj(completion_pt_sel, 0, hv::perm::kCall), comp_sel);

  if (!free_channels_.empty()) {
    // Recycle a closed channel: its ring frame keeps its address (so the
    // server-side mapping — and its paging structures — survive) and its
    // request portal already dispatches with this channel id.
    const std::uint32_t channel_id = free_channels_.back();
    free_channels_.pop_back();
    ChannelState& ch = channels_[channel_id];
    (void)hv_->Delegate(root_->pd(), client_pd_sel,
                  hv::Crd::Mem(ch.shared_page, 0, hv::perm::kRw), ch.shared_page);
    const hv::CapSel client_sel = client->caps().FindFree(hv::kSelFirstFree);
    (void)hv_->Delegate(root_->pd(), client_pd_sel,
                  hv::Crd::Obj(ch.request_pt, 0, hv::perm::kCall), client_sel);
    ch.completion_pt = comp_sel;
    ch.outstanding = 0;
    ch.max_outstanding = max_outstanding;
    ch.ring_head = 0;  // A fresh client starts reading at ring index 0.
    ch.open = true;
    out.request_portal = client_sel;
    out.shared_page = ch.shared_page;
    out.channel_id = channel_id;
    return out;
  }

  const auto channel_id = static_cast<std::uint32_t>(channels_.size());

  // Shared completion ring: one frame mapped in both domains.
  const std::uint64_t frame = root_->AllocPages(1);
  (void)hv_->Delegate(root_->pd(), pd_sel_, hv::Crd::Mem(frame, 0, hv::perm::kRw), frame);
  (void)hv_->Delegate(root_->pd(), client_pd_sel, hv::Crd::Mem(frame, 0, hv::perm::kRw),
                frame);

  // Dedicated request portal for this client (§4.2: per-VMM channels).
  const hv::CapSel pt_sel = root_->FreeSel();
  (void)hv_->CreatePt(root_->pd(), pt_sel, req_ec_cap_sel_, /*mtd=*/0, channel_id);
  const hv::CapSel client_sel = client->caps().FindFree(hv::kSelFirstFree);
  (void)hv_->Delegate(root_->pd(), client_pd_sel, hv::Crd::Obj(pt_sel, 0, hv::perm::kCall),
                client_sel);

  channels_.push_back(ChannelState{.completion_pt = comp_sel,
                                   .request_pt = pt_sel,
                                   .shared_page = frame,
                                   .outstanding = 0,
                                   .max_outstanding = max_outstanding,
                                   .ring_head = 0,
                                   .open = true});
  out.request_portal = client_sel;
  out.shared_page = frame;
  out.channel_id = channel_id;
  return out;
}

void DiskServer::ShutChannel(std::uint32_t channel_id) {
  if (channel_id < channels_.size()) {
    channels_[channel_id].open = false;
  }
}

void DiskServer::CloseChannel(std::uint32_t channel_id) {
  if (channel_id >= channels_.size() || !channels_[channel_id].open) {
    return;
  }
  ChannelState& ch = channels_[channel_id];
  ch.open = false;
  // Orphan the channel's in-flight requests: the client is gone, nobody
  // will consume the completions. The hardware commands may still be
  // running, so the slots are quarantined until the controller reports
  // them done (quarantine clears in IrqThreadStep).
  for (int s = 0; s < hw::ahci::kNumSlots; ++s) {
    if (slots_[s].active && slots_[s].channel == channel_id) {
      if (slots_[s].deadline_event != 0) {
        hv_->machine().events().Cancel(slots_[s].deadline_event);
        slots_[s].deadline_event = 0;
      }
      slots_[s].active = false;
      quarantine_mask_ |= 1u << s;
    }
  }
  ch.outstanding = 0;
  free_channels_.push_back(channel_id);
}

void DiskServer::HandleRequest(std::uint32_t channel_id) {
  hv::Utcb& u = req_ec_->utcb();
  auto reply = [&](Status s, std::uint64_t slot) {
    u.untyped = 2;
    u.words[0] = static_cast<std::uint64_t>(s);
    u.words[1] = slot;
    u.num_typed = 0;
  };
  if (channel_id >= channels_.size() || !channels_[channel_id].open) {
    reply(Status::kDenied, 0);
    return;
  }
  ChannelState& ch = channels_[channel_id];
  if (ch.outstanding >= ch.max_outstanding) {
    ++throttled_;
    reply(Status::kOverflow, 0);
    return;
  }
  if (u.untyped < 5) {
    reply(Status::kBadParameter, 0);
    return;
  }
  const std::uint64_t op = u.words[0];
  const std::uint64_t lba = u.words[1];
  const std::uint64_t sectors = u.words[2];
  const std::uint64_t buffer_page = u.words[3];
  const std::uint64_t cookie = u.words[4];
  if (sectors == 0 || sectors > 0xffff ||
      sectors * hw::kSectorSize > 16 * hw::kPageSize) {
    reply(Status::kBadParameter, 0);
    return;
  }
  // The DMA buffer must have been delegated to this domain (typically as a
  // typed item on this very message) — otherwise the IOMMU would fault the
  // transfer anyway; reject early.
  const std::uint64_t buf_pages =
      (sectors * hw::kSectorSize + hw::kPageMask) >> hw::kPageShift;
  for (std::uint64_t p = 0; p < buf_pages; ++p) {
    if (pd_->mem_space().PermsFor(buffer_page + p) == 0) {
      reply(Status::kDenied, 0);
      return;
    }
  }

  int slot = -1;
  for (int s = 0; s < hw::ahci::kNumSlots; ++s) {
    if (!slots_[s].active && (quarantine_mask_ & (1u << s)) == 0) {
      slot = s;
      break;
    }
  }
  if (slot < 0) {
    reply(Status::kBusy, 0);
    return;
  }

  // Build the command structures in the server's own memory.
  hw::PhysMem& mem = hv_->machine().mem();
  const hw::PhysAddr clb = (clb_page_ << hw::kPageShift) + slot * 32ull;
  const hw::PhysAddr ctba = (ctba_page_ << hw::kPageShift) + slot * 256ull;
  const bool write = op == diskproto::kOpWrite;
  std::uint32_t dw0 = 1u << 16;  // One PRDT entry.
  if (write) {
    dw0 |= 1u << 6;
  }
  (void)mem.Write32(clb, dw0);
  (void)mem.Write32(clb + 8, static_cast<std::uint32_t>(ctba));
  std::uint8_t cfis[64] = {};
  cfis[0] = hw::ahci::kFisH2d;
  cfis[2] = write ? hw::ahci::kCmdWriteDmaExt : hw::ahci::kCmdReadDmaExt;
  for (int i = 0; i < 6; ++i) {
    cfis[4 + i] = static_cast<std::uint8_t>(lba >> (8 * i));
  }
  const auto sect16 = static_cast<std::uint16_t>(sectors);
  std::memcpy(cfis + 12, &sect16, 2);
  (void)mem.Write(ctba, cfis, sizeof(cfis));
  (void)mem.Write64(ctba + 0x80, buffer_page << hw::kPageShift);
  (void)mem.Write32(ctba + 0x80 + 12,
              static_cast<std::uint32_t>(sectors * hw::kSectorSize - 1));
  // The driver's structure setup costs real work.
  hv_->machine().cpu(cpu_).Charge(180);

  slots_[slot] = Slot{.active = true,
                      .channel = channel_id,
                      .cookie = cookie,
                      .buffer_page = buffer_page,
                      .attempts = 0,
                      .generation = next_generation_++,
                      .deadline_event = 0};
  ++ch.outstanding;
  ++issued_;
  if (deadline_ps_ != 0) {
    const std::uint64_t gen = slots_[slot].generation;
    slots_[slot].deadline_event = hv_->machine().events().ScheduleAfterTagged(
        deadline_ps_,
        sim::EventTag{kDiskServerOwner, kOpDeadline,
                      static_cast<std::uint64_t>(slot), gen},
        [this, slot, gen] { DeadlineExpired(slot, gen); });
  }
  (void)MmioWrite(hw::ahci::kPxCi, 1u << slot);
  reply(Status::kSuccess, static_cast<std::uint64_t>(slot));
}

void DiskServer::IrqThreadStep() {
  if (hv_->SmDown(irq_ec_, kSmSel, /*unmask_gsi=*/true) !=
      hv::Hypervisor::DownResult::kAcquired) {
    return;
  }
  // Acknowledge the controller.
  const std::uint64_t is = MmioRead(hw::ahci::kIs);
  const std::uint64_t px_is = MmioRead(hw::ahci::kPxIs);
  (void)MmioWrite(hw::ahci::kPxIs, px_is);
  (void)MmioWrite(hw::ahci::kIs, is);

  const auto ci = static_cast<std::uint32_t>(MmioRead(hw::ahci::kPxCi));
  // The error register is only consulted when a task-file error actually
  // interrupted — the fault-free path performs no extra device accesses.
  std::uint32_t err = 0;
  if ((px_is & hw::ahci::kPxIsTfes) != 0) {
    err = static_cast<std::uint32_t>(MmioRead(hw::ahci::kPxVs));
    (void)MmioWrite(hw::ahci::kPxVs, err);
  }
  // A quarantined slot leaves quarantine once the hardware finished with
  // it, successfully or not.
  quarantine_mask_ &= ci & ~err;
  if (err != 0) {
    HandleErrorSlots(err);
  }
  CompleteSlots(~ci & ~err);
}

void DiskServer::HandleErrorSlots(std::uint32_t err_mask) {
  for (int s = 0; s < hw::ahci::kNumSlots; ++s) {
    if (!slots_[s].active || (err_mask & (1u << s)) == 0) {
      continue;
    }
    Slot& slot = slots_[s];
    if (slot.attempts < max_retries_) {
      ++slot.attempts;
      ++retried_;
      // Exponential backoff, then re-issue: the command structures are
      // still in place, so re-writing the issue bit replays the command.
      const sim::PicoSeconds delay = backoff_ps_ << (slot.attempts - 1);
      const std::uint64_t gen = slot.generation;
      hv_->machine().events().ScheduleAfterTagged(
          delay,
          sim::EventTag{kDiskServerOwner, kOpReissue,
                        static_cast<std::uint64_t>(s), gen},
          [this, s, gen] { ReissueSlot(s, gen); });
    } else {
      FailRequest(s, Status::kBadDevice);
    }
  }
}

void DiskServer::NotifyClient(ChannelState& ch, std::uint64_t cookie) {
  if (ch.completion_pt != hv::kInvalidSel && ch.open) {
    hv::Utcb& u = irq_ec_->utcb();
    u.Clear();
    u.untyped = 2;
    u.words[0] = cookie;
    u.words[1] = ch.ring_head;
    (void)hv_->Call(irq_ec_, ch.completion_pt);  // kAbort (dead client) tolerated.
  }
}

void DiskServer::FailRequest(int s, Status status) {
  Slot& slot = slots_[s];
  ChannelState& ch = channels_[slot.channel];
  if (slot.deadline_event != 0) {
    hv_->machine().events().Cancel(slot.deadline_event);
    slot.deadline_event = 0;
  }
  if (status == Status::kTimeout) {
    // The hardware command may still be in flight: park the slot until the
    // controller reports it done so a reused slot cannot complete early.
    quarantine_mask_ |= 1u << s;
  }
  hw::PhysMem& mem = hv_->machine().mem();
  const hw::PhysAddr ring = ch.shared_page << hw::kPageShift;
  const std::uint32_t index =
      ch.ring_head % (hw::kPageSize / sizeof(DiskCompletionRecord));
  const DiskCompletionRecord rec{slot.cookie, static_cast<std::uint64_t>(status)};
  (void)mem.Write(ring + index * sizeof(DiskCompletionRecord), &rec, sizeof(rec));
  ++ch.ring_head;
  slot.active = false;
  --ch.outstanding;
  ++failed_;
  hv_->machine().cpu(cpu_).Charge(60);
  NotifyClient(ch, slot.cookie);
}

void DiskServer::CompleteSlots(std::uint32_t done_mask) {
  hw::PhysMem& mem = hv_->machine().mem();
  for (int s = 0; s < hw::ahci::kNumSlots; ++s) {
    if (!slots_[s].active || (done_mask & (1u << s)) == 0) {
      continue;
    }
    Slot& slot = slots_[s];
    ChannelState& ch = channels_[slot.channel];
    if (slot.deadline_event != 0) {
      hv_->machine().events().Cancel(slot.deadline_event);
      slot.deadline_event = 0;
    }
    // Completion record into the shared ring.
    const hw::PhysAddr ring = ch.shared_page << hw::kPageShift;
    const std::uint32_t index =
        ch.ring_head % (hw::kPageSize / sizeof(DiskCompletionRecord));
    const DiskCompletionRecord rec{slot.cookie, 0};
    (void)mem.Write(ring + index * sizeof(DiskCompletionRecord), &rec, sizeof(rec));
    ++ch.ring_head;
    slot.active = false;
    --ch.outstanding;
    ++completed_;
    hv_->machine().cpu(cpu_).Charge(60);

    // Notify the client ("7) completed" in Figure 4).
    NotifyClient(ch, slot.cookie);
  }
}

void DiskServer::DeadlineExpired(int slot, std::uint64_t generation) {
  if (slots_[slot].active && slots_[slot].generation == generation) {
    slots_[slot].deadline_event = 0;
    FailRequest(slot, Status::kTimeout);
  }
}

void DiskServer::ReissueSlot(int slot, std::uint64_t generation) {
  if (slots_[slot].active && slots_[slot].generation == generation) {
    (void)MmioWrite(hw::ahci::kPxCi, 1u << slot);
  }
}

Status DiskServer::SaveState(sim::SnapWriter& w) const {
  w.U32(static_cast<std::uint32_t>(channels_.size()));
  for (const ChannelState& ch : channels_) {
    // Wiring selectors and the ring frame are construction products; saved
    // so the loader can verify the twin opened the same channels.
    w.U32(ch.completion_pt);
    w.U32(ch.request_pt);
    w.U64(ch.shared_page);
    w.U32(ch.outstanding);
    w.U32(ch.max_outstanding);
    w.U32(ch.ring_head);
    w.Bool(ch.open);
  }
  w.U32(static_cast<std::uint32_t>(free_channels_.size()));
  for (const std::uint32_t id : free_channels_) {
    w.U32(id);
  }
  for (const Slot& s : slots_) {
    w.Bool(s.active);
    w.U32(s.channel);
    w.U64(s.cookie);
    w.U64(s.buffer_page);
    w.U32(s.attempts);
    w.U64(s.generation);
    w.U64(s.deadline_event);
  }
  w.U32(next_comp_sel_);
  w.U64(issued_);
  w.U64(completed_);
  w.U64(throttled_);
  w.U64(retried_);
  w.U64(failed_);
  w.U64(deadline_ps_);
  w.U32(max_retries_);
  w.U64(backoff_ps_);
  w.U64(next_generation_);
  w.U32(quarantine_mask_);
  return Status::kSuccess;
}

Status DiskServer::LoadState(sim::SnapReader& r) {
  if (r.U32() != static_cast<std::uint32_t>(channels_.size())) {
    r.Fail();  // Twin opened a different channel set.
  }
  for (ChannelState& ch : channels_) {
    if (r.U32() != ch.completion_pt || r.U32() != ch.request_pt ||
        r.U64() != ch.shared_page) {
      r.Fail();
    }
    ch.outstanding = r.U32();
    ch.max_outstanding = r.U32();
    ch.ring_head = r.U32();
    ch.open = r.Bool();
  }
  free_channels_.clear();
  const std::uint32_t n_free = r.U32();
  for (std::uint32_t i = 0; i < n_free && r.ok(); ++i) {
    free_channels_.push_back(r.U32());
  }
  for (Slot& s : slots_) {
    s.active = r.Bool();
    s.channel = r.U32();
    s.cookie = r.U64();
    s.buffer_page = r.U64();
    s.attempts = r.U32();
    s.generation = r.U64();
    s.deadline_event = r.U64();
  }
  next_comp_sel_ = r.U32();
  issued_ = r.U64();
  completed_ = r.U64();
  throttled_ = r.U64();
  retried_ = r.U64();
  failed_ = r.U64();
  deadline_ps_ = r.U64();
  max_retries_ = r.U32();
  backoff_ps_ = r.U64();
  next_generation_ = r.U64();
  quarantine_mask_ = r.U32();
  return r.status();
}

}  // namespace nova::services
