// User-level disk server (Figure 4 of the paper).
//
// Owns the AHCI host controller through direct assignment: its protection
// domain holds the controller's MMIO window, and the IOMMU translates the
// controller's DMA with the server's own page table — so the driver can
// only reach memory that was explicitly delegated to it (its command
// structures and the clients' DMA buffers).
//
// Clients (VMMs) open a dedicated channel each. A request is one IPC that
// carries the DMA buffer pages as typed delegation items; the server
// programs the hardware and replies immediately ("issued"). Completions
// arrive on the controller's interrupt semaphore; the server writes a
// completion record into the channel's shared memory page and notifies the
// client through its completion portal.
#ifndef SRC_SERVICES_DISK_SERVER_H_
#define SRC_SERVICES_DISK_SERVER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/hv/kernel.h"
#include "src/root/platform.h"
#include "src/root/root_pm.h"

namespace nova::services {

// Request message layout (UTCB words).
namespace diskproto {
constexpr std::uint64_t kOpRead = 0;
constexpr std::uint64_t kOpWrite = 1;
// words[0]=op, words[1]=lba, words[2]=sectors, words[3]=buffer GPA-page
// (identity frame number), words[4]=cookie.
// Reply: words[0]=status, words[1]=slot.
}  // namespace diskproto

// One completion record in the channel's shared page.
struct DiskCompletionRecord {
  std::uint64_t cookie;
  std::uint64_t status;  // 0 = success.
};

class DiskServer {
 public:
  // Creates the server domain, claims the AHCI controller and its
  // interrupt, allocates command memory, and starts the interrupt thread.
  DiskServer(hv::Hypervisor* hv, root::RootPartitionManager* root,
             std::uint32_t cpu, std::uint8_t irq_prio = 40);

  struct Channel {
    hv::CapSel request_portal;   // In the *client's* capability space.
    std::uint64_t shared_page;   // Frame of the completion ring (client-visible).
    std::uint32_t channel_id = 0;
  };

  // Open a channel for `client_pd_sel` (selector in the root's space).
  // `completion_pt_sel` is a portal (in the root's space, created by the
  // client's VMM and delegated to root) the server calls on completion.
  // `max_outstanding` is the per-channel throttle (§4.2, VMM attacks).
  Channel OpenChannel(hv::CapSel client_pd_sel, hv::CapSel completion_pt_sel,
                      std::uint32_t max_outstanding = 32);

  // Administrative shutdown of a misbehaving channel: further requests are
  // rejected (§4.2 denial-of-service defence).
  void ShutChannel(std::uint32_t channel_id);

  // Retire a channel whose client died (VMM crash): in-flight slots are
  // orphaned — quarantined until the hardware finishes with them, their
  // completions dropped — and the channel's ring frame and request portal
  // are recycled by the next OpenChannel, so restart cycles do not grow
  // the server's address space.
  void CloseChannel(std::uint32_t channel_id);

  hv::CapSel pd_sel() const { return pd_sel_; }
  hv::Pd* pd() { return pd_; }
  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t requests_completed() const { return completed_; }
  std::uint64_t requests_throttled() const { return throttled_; }
  std::uint64_t requests_retried() const { return retried_; }
  std::uint64_t requests_failed() const { return failed_; }

  // Robustness knobs, all off by default (the fault-free fast path performs
  // no extra device accesses or events). A non-zero `deadline_ps` bounds
  // every request end-to-end: if neither success nor error arrived by then,
  // the request is retired with a kTimeout completion. An errored slot is
  // re-issued up to `max_retries` times with exponential backoff before a
  // kBadDevice completion is delivered. Either way a request always ends
  // in a typed completion record — the server never hangs a client.
  void SetRequestDeadline(sim::PicoSeconds deadline_ps,
                          std::uint32_t max_retries = 0,
                          sim::PicoSeconds backoff_ps = 0);

  // Mutable server state: channel cursors, slot table, counters and the
  // deadline/retry configuration. Channel wiring (portals, ring frames)
  // is rebuilt by the twin's OpenChannel calls and verified on load.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  struct ChannelState {
    hv::CapSel completion_pt = hv::kInvalidSel;  // In the server's space.
    hv::CapSel request_pt = hv::kInvalidSel;     // In the root's space.
    std::uint64_t shared_page = 0;
    std::uint32_t outstanding = 0;
    std::uint32_t max_outstanding = 0;
    std::uint32_t ring_head = 0;
    bool open = false;
  };
  struct Slot {
    bool active = false;
    std::uint32_t channel = 0;
    std::uint64_t cookie = 0;
    std::uint64_t buffer_page = 0;
    std::uint32_t attempts = 0;
    std::uint64_t generation = 0;   // Guards stale deadline/retry events.
    std::uint64_t deadline_event = 0;
  };

  void HandleRequest(std::uint32_t channel_id);
  void IrqThreadStep();
  void CompleteSlots(std::uint32_t done_mask);
  void HandleErrorSlots(std::uint32_t err_mask);
  // Retire a request with a typed error completion record.
  void FailRequest(int slot, Status status);
  void NotifyClient(ChannelState& ch, std::uint64_t cookie);
  // Tagged-event bodies ("svc.disk", op 1 = deadline, op 2 = re-issue);
  // both are generation-guarded so stale events are inert.
  void DeadlineExpired(int slot, std::uint64_t generation);
  void ReissueSlot(int slot, std::uint64_t generation);

  std::uint64_t MmioRead(std::uint64_t offset);
  void MmioWrite(std::uint64_t offset, std::uint64_t value);

  // snapshot-x-list(DiskServer): hv_, root_, cpu_, pd_, pd_sel_, irq_ec_,
  //   req_ec_, req_ec_cap_sel_, clb_page_, ctba_page_, channels_,
  //   free_channels_, slots_, next_comp_sel_, issued_, completed_,
  //   throttled_, retried_, failed_, deadline_ps_, max_retries_,
  //   backoff_ps_, next_generation_, quarantine_mask_
  hv::Hypervisor* hv_;
  root::RootPartitionManager* root_;
  std::uint32_t cpu_;
  hv::Pd* pd_ = nullptr;
  hv::CapSel pd_sel_ = hv::kInvalidSel;
  hv::Ec* irq_ec_ = nullptr;
  hv::Ec* req_ec_ = nullptr;

  static constexpr hv::CapSel kSmSel = 40;   // GSI semaphore in server space.
  static constexpr hv::CapSel kCompBase = 100;  // Completion portals.
  hv::CapSel req_ec_cap_sel_ = hv::kInvalidSel;  // Handler EC (root's space).

  std::uint64_t clb_page_ = 0;   // Command list frame (identity).
  std::uint64_t ctba_page_ = 0;  // Command tables (one page per slot group).

  std::vector<ChannelState> channels_;
  std::vector<std::uint32_t> free_channels_;  // Closed, recyclable ids.
  std::array<Slot, hw::ahci::kNumSlots> slots_{};
  std::uint32_t next_comp_sel_ = kCompBase;

  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t throttled_ = 0;
  std::uint64_t retried_ = 0;
  std::uint64_t failed_ = 0;

  sim::PicoSeconds deadline_ps_ = 0;  // 0 = deadlines/retries disabled.
  std::uint32_t max_retries_ = 0;
  sim::PicoSeconds backoff_ps_ = 0;
  std::uint64_t next_generation_ = 1;
  // Slots retired by deadline while the hardware command was still in
  // flight: unusable until the controller reports the command done.
  std::uint32_t quarantine_mask_ = 0;
};

}  // namespace nova::services

#endif  // SRC_SERVICES_DISK_SERVER_H_
