// Kernel object base. The microhypervisor interface is organized around
// five object types (§5): protection domains, execution contexts,
// scheduling contexts, portals and semaphores.
#ifndef SRC_HV_OBJECT_H_
#define SRC_HV_OBJECT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

namespace nova::hv {

enum class ObjType : std::uint8_t { kPd, kEc, kSc, kPt, kSm };

constexpr const char* ObjTypeName(ObjType t) {
  switch (t) {
    case ObjType::kPd: return "pd";
    case ObjType::kEc: return "ec";
    case ObjType::kSc: return "sc";
    case ObjType::kPt: return "pt";
    case ObjType::kSm: return "sm";
  }
  return "?";
}

class KObject {
 public:
  explicit KObject(ObjType type) : type_(type) {}
  virtual ~KObject() {
    if (release_) release_();
  }

  KObject(const KObject&) = delete;
  KObject& operator=(const KObject&) = delete;

  ObjType type() const { return type_; }

  // Creation-order object id, assigned by the hypervisor's object registry
  // at creation. Snapshots address kernel objects by oid: a twin system
  // constructed from the identical scenario assigns identical oids, so a
  // restored reference resolves to the equivalent object.
  static constexpr std::uint64_t kNoOid = ~0ull;
  std::uint64_t oid() const { return oid_; }
  void set_oid(std::uint64_t oid) { oid_ = oid; }

  // Set when the object has been destroyed via its control capability;
  // dangling capabilities elsewhere become dead.
  bool dead() const { return dead_; }
  void MarkDead() { dead_ = true; }

  // Invoked exactly once when the object is destroyed; the kernel uses it
  // to credit the owning PD's kernel-memory account once the last
  // capability drops (a dead object can outlive its domain's reclaim).
  void set_release_hook(std::function<void()> hook) {
    release_ = std::move(hook);
  }

 private:
  // snapshot-x-list(KObject): type_, oid_, dead_, release_
  ObjType type_;
  std::uint64_t oid_ = kNoOid;
  bool dead_ = false;
  std::function<void()> release_;
};

using ObjRef = std::shared_ptr<KObject>;

// Checked downcast for capability lookups: null unless the object is of
// the expected type. (A static_pointer_cast through the wrong dynamic type
// is undefined behaviour even if the result is discarded after a type
// check.)
template <typename T>
std::shared_ptr<T> RefAs(ObjRef ref, ObjType type) {
  if (ref == nullptr || ref->type() != type) {
    return nullptr;
  }
  return std::static_pointer_cast<T>(std::move(ref));
}

}  // namespace nova::hv

#endif  // SRC_HV_OBJECT_H_
