// Per-protection-domain capability space.
//
// Capabilities are opaque and immutable to user code: applications only
// hold integral selectors. The space maps selectors to (object, perms)
// pairs; delegation installs narrowed copies in other domains' spaces.
#ifndef SRC_HV_CAP_SPACE_H_
#define SRC_HV_CAP_SPACE_H_

#include <functional>
#include <vector>

#include "src/hv/object.h"
#include "src/hv/types.h"
#include "src/sim/snapshot.h"
#include "src/sim/status.h"

namespace nova::hv {

struct Capability {
  ObjRef object;            // Null: empty slot.
  std::uint8_t perms = 0;

  bool Valid() const { return object != nullptr && !object->dead(); }
};

class CapSpace {
 public:
  CapSpace() : slots_(kCapSpaceSlots) {}

  // Install `cap` at `sel`. Fails with kOverflow when out of range,
  // kBusy when the slot is occupied, and kNoMem when committing the
  // backing chunk is refused by the owner's kernel-memory account.
  Status Insert(CapSel sel, Capability cap);

  // Selector space is committed lazily in chunks of kChunkSlots; the
  // first Insert into a chunk charges one kernel frame through this
  // callback (unset: no accounting, the pre-quota behaviour).
  static constexpr CapSel kChunkSlots = 256;
  using ChargeFn = std::function<bool(std::uint64_t frames)>;
  void set_charge_fn(ChargeFn fn) { charge_ = std::move(fn); }

  // Chunks committed so far (each is one charged kernel frame).
  std::uint64_t committed_chunks() const { return committed_count_; }

  // Look up a selector. Returns nullptr for empty, dead or out-of-range
  // slots. Cost is charged by the hypercall layer.
  const Capability* Lookup(CapSel sel) const;

  // Typed lookup with permission check.
  template <typename T>
  T* LookupAs(CapSel sel, ObjType type, std::uint8_t required_perms) const {
    const Capability* cap = Lookup(sel);
    if (cap == nullptr || cap->object->type() != type ||
        (cap->perms & required_perms) != required_perms) {
      return nullptr;
    }
    return static_cast<T*>(cap->object.get());
  }

  // Keep the object alive: shared_ptr form of Lookup.
  ObjRef LookupRef(CapSel sel) const;

  Status Remove(CapSel sel);

  // First free selector at or after `from` (for kernel-chosen slots).
  CapSel FindFree(CapSel from) const;

  std::size_t used() const;

  // Serialization addresses capability objects by oid; the caller supplies
  // the translation because the object registry lives in the hypervisor.
  // LoadState replaces every slot and never invokes the charge callback:
  // the owning account is overlaid separately by the kernel snapshot.
  using OidOf = std::function<std::uint64_t(const KObject*)>;
  using RefOf = std::function<ObjRef(std::uint64_t)>;
  Status SaveState(sim::SnapWriter& w, const OidOf& oid_of) const;
  Status LoadState(sim::SnapReader& r, const RefOf& ref_of);

 private:
  // snapshot-x-list(CapSpace): slots_, charge_, committed_, committed_count_
  std::vector<Capability> slots_;
  ChargeFn charge_;
  std::uint32_t committed_ = 0;  // Bitmask, one bit per chunk.
  std::uint64_t committed_count_ = 0;
};

}  // namespace nova::hv

#endif  // SRC_HV_CAP_SPACE_H_
