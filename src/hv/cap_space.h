// Per-protection-domain capability space.
//
// Capabilities are opaque and immutable to user code: applications only
// hold integral selectors. The space maps selectors to (object, perms)
// pairs; delegation installs narrowed copies in other domains' spaces.
#ifndef SRC_HV_CAP_SPACE_H_
#define SRC_HV_CAP_SPACE_H_

#include <vector>

#include "src/hv/object.h"
#include "src/hv/types.h"
#include "src/sim/status.h"

namespace nova::hv {

struct Capability {
  ObjRef object;            // Null: empty slot.
  std::uint8_t perms = 0;

  bool Valid() const { return object != nullptr && !object->dead(); }
};

class CapSpace {
 public:
  CapSpace() : slots_(kCapSpaceSlots) {}

  // Install `cap` at `sel`. Fails with kOverflow when out of range and
  // kBusy when the slot is occupied.
  Status Insert(CapSel sel, Capability cap);

  // Look up a selector. Returns nullptr for empty, dead or out-of-range
  // slots. Cost is charged by the hypercall layer.
  const Capability* Lookup(CapSel sel) const;

  // Typed lookup with permission check.
  template <typename T>
  T* LookupAs(CapSel sel, ObjType type, std::uint8_t required_perms) const {
    const Capability* cap = Lookup(sel);
    if (cap == nullptr || cap->object->type() != type ||
        (cap->perms & required_perms) != required_perms) {
      return nullptr;
    }
    return static_cast<T*>(cap->object.get());
  }

  // Keep the object alive: shared_ptr form of Lookup.
  ObjRef LookupRef(CapSel sel) const;

  Status Remove(CapSel sel);

  // First free selector at or after `from` (for kernel-chosen slots).
  CapSel FindFree(CapSel from) const;

  std::size_t used() const;

 private:
  std::vector<Capability> slots_;
};

}  // namespace nova::hv

#endif  // SRC_HV_CAP_SPACE_H_
