#include "src/hv/cap_space.h"

namespace nova::hv {

Status CapSpace::Insert(CapSel sel, Capability cap) {
  if (sel >= slots_.size()) {
    return Status::kOverflow;
  }
  if (slots_[sel].object != nullptr && slots_[sel].Valid()) {
    return Status::kBusy;
  }
  const std::uint32_t chunk_bit = 1u << (sel / kChunkSlots);
  if ((committed_ & chunk_bit) == 0) {
    if (charge_ && !charge_(1)) {
      return Status::kNoMem;
    }
    committed_ |= chunk_bit;
    ++committed_count_;
  }
  slots_[sel] = std::move(cap);
  return Status::kSuccess;
}

const Capability* CapSpace::Lookup(CapSel sel) const {
  if (sel >= slots_.size() || !slots_[sel].Valid()) {
    return nullptr;
  }
  return &slots_[sel];
}

ObjRef CapSpace::LookupRef(CapSel sel) const {
  const Capability* cap = Lookup(sel);
  return cap == nullptr ? nullptr : cap->object;
}

Status CapSpace::Remove(CapSel sel) {
  if (sel >= slots_.size()) {
    return Status::kBadParameter;
  }
  slots_[sel] = Capability{};
  return Status::kSuccess;
}

CapSel CapSpace::FindFree(CapSel from) const {
  for (CapSel sel = from; sel < slots_.size(); ++sel) {
    if (slots_[sel].object == nullptr) {
      return sel;
    }
  }
  return kInvalidSel;
}

std::size_t CapSpace::used() const {
  std::size_t n = 0;
  for (const Capability& cap : slots_) {
    if (cap.object != nullptr) {
      ++n;
    }
  }
  return n;
}

Status CapSpace::SaveState(sim::SnapWriter& w, const OidOf& oid_of) const {
  w.U32(committed_);
  w.U64(committed_count_);
  std::uint32_t occupied = 0;
  for (const Capability& cap : slots_) {
    if (cap.object != nullptr) {
      ++occupied;
    }
  }
  w.U32(occupied);
  for (CapSel sel = 0; sel < slots_.size(); ++sel) {
    const Capability& cap = slots_[sel];
    if (cap.object == nullptr) {
      continue;
    }
    const std::uint64_t oid = oid_of(cap.object.get());
    if (oid == KObject::kNoOid) {
      return Status::kBadParameter;  // Unregistered object in a slot.
    }
    w.U32(sel);
    w.U64(oid);
    w.U8(cap.perms);
  }
  return Status::kSuccess;
}

Status CapSpace::LoadState(sim::SnapReader& r, const RefOf& ref_of) {
  committed_ = r.U32();
  committed_count_ = r.U64();
  slots_.assign(kCapSpaceSlots, Capability{});
  const std::uint32_t occupied = r.U32();
  for (std::uint32_t i = 0; i < occupied && r.ok(); ++i) {
    const CapSel sel = r.U32();
    const std::uint64_t oid = r.U64();
    const std::uint8_t perms = r.U8();
    if (sel >= slots_.size()) {
      r.Fail();
      return Status::kBadParameter;
    }
    ObjRef obj = ref_of(oid);
    if (obj == nullptr) {
      r.Fail();
      return Status::kBadParameter;
    }
    slots_[sel] = Capability{std::move(obj), perms};
  }
  return r.status();
}

}  // namespace nova::hv
