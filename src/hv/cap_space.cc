#include "src/hv/cap_space.h"

namespace nova::hv {

Status CapSpace::Insert(CapSel sel, Capability cap) {
  if (sel >= slots_.size()) {
    return Status::kOverflow;
  }
  if (slots_[sel].object != nullptr && slots_[sel].Valid()) {
    return Status::kBusy;
  }
  const std::uint32_t chunk_bit = 1u << (sel / kChunkSlots);
  if ((committed_ & chunk_bit) == 0) {
    if (charge_ && !charge_(1)) {
      return Status::kNoMem;
    }
    committed_ |= chunk_bit;
    ++committed_count_;
  }
  slots_[sel] = std::move(cap);
  return Status::kSuccess;
}

const Capability* CapSpace::Lookup(CapSel sel) const {
  if (sel >= slots_.size() || !slots_[sel].Valid()) {
    return nullptr;
  }
  return &slots_[sel];
}

ObjRef CapSpace::LookupRef(CapSel sel) const {
  const Capability* cap = Lookup(sel);
  return cap == nullptr ? nullptr : cap->object;
}

Status CapSpace::Remove(CapSel sel) {
  if (sel >= slots_.size()) {
    return Status::kBadParameter;
  }
  slots_[sel] = Capability{};
  return Status::kSuccess;
}

CapSel CapSpace::FindFree(CapSel from) const {
  for (CapSel sel = from; sel < slots_.size(); ++sel) {
    if (slots_[sel].object == nullptr) {
      return sel;
    }
  }
  return kInvalidSel;
}

std::size_t CapSpace::used() const {
  std::size_t n = 0;
  for (const Capability& cap : slots_) {
    if (cap.object != nullptr) {
      ++n;
    }
  }
  return n;
}

}  // namespace nova::hv
