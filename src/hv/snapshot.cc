// Kernel checkpoint/restore: serialization of the hypervisor's mutable
// state (see DESIGN.md §13).
//
// Identity model: objects are addressed by creation-order oid; the
// restore target is a *twin* — a Hypervisor whose scenario construction
// ran the identical creation sequence, so oid i names the equivalent
// object on both sides. LoadState overlays mutable state onto the twin's
// objects; immutable construction parameters (names, kinds, home CPUs,
// priorities) are verified, not restored, so a mismatched twin fails
// loudly instead of silently diverging.
#include <algorithm>
#include <memory>
#include <vector>

#include "src/hv/kernel.h"
#include "src/hv/snapshot.h"

namespace nova::hv {
namespace {

// --- Plain-struct helpers -------------------------------------------------

void SaveCrd(sim::SnapWriter& w, const Crd& crd) {
  w.U8(static_cast<std::uint8_t>(crd.kind));
  w.U64(crd.base);
  w.U8(crd.order);
  w.U8(crd.perms);
}

void LoadCrd(sim::SnapReader& r, Crd* crd) {
  crd->kind = static_cast<CrdKind>(r.U8());
  crd->base = r.U64();
  crd->order = r.U8();
  crd->perms = r.U8();
}

void SaveArch(sim::SnapWriter& w, const ArchState& a) {
  for (const std::uint64_t reg : a.regs) {
    w.U64(reg);
  }
  w.U64(a.rip);
  w.U64(a.insn_len);
  w.Bool(a.interrupts_enabled);
  w.U64(a.cr3);
  w.U64(a.cr2);
  w.Bool(a.paging);
  w.U64(a.qual_gva);
  w.U64(a.qual_gpa);
  w.U64(a.qual);
  w.Bool(a.inject_pending);
  w.U8(a.inject_vector);
  w.Bool(a.request_intr_window);
  w.Bool(a.halted);
  w.U64(a.tsc);
}

void LoadArch(sim::SnapReader& r, ArchState* a) {
  for (std::uint64_t& reg : a->regs) {
    reg = r.U64();
  }
  a->rip = r.U64();
  a->insn_len = r.U64();
  a->interrupts_enabled = r.Bool();
  a->cr3 = r.U64();
  a->cr2 = r.U64();
  a->paging = r.Bool();
  a->qual_gva = r.U64();
  a->qual_gpa = r.U64();
  a->qual = r.U64();
  a->inject_pending = r.Bool();
  a->inject_vector = r.U8();
  a->request_intr_window = r.Bool();
  a->halted = r.Bool();
  a->tsc = r.U64();
}

void SaveUtcb(sim::SnapWriter& w, const Utcb& u) {
  w.U32(u.untyped);
  for (const std::uint64_t word : u.words) {
    w.U64(word);
  }
  w.U32(u.num_typed);
  for (const TypedItem& item : u.typed) {
    SaveCrd(w, item.crd);
    w.U64(item.hotspot);
  }
  SaveCrd(w, u.recv_window);
  SaveArch(w, u.arch);
  w.U32(u.mtd);
}

void LoadUtcb(sim::SnapReader& r, Utcb* u) {
  u->untyped = r.U32();
  for (std::uint64_t& word : u->words) {
    word = r.U64();
  }
  u->num_typed = r.U32();
  for (TypedItem& item : u->typed) {
    LoadCrd(r, &item.crd);
    item.hotspot = r.U64();
  }
  LoadCrd(r, &u->recv_window);
  LoadArch(r, &u->arch);
  u->mtd = r.U32();
}

}  // namespace

// Extern (snapshot.h): shared with user-level guest checkpointing.
void SaveGuestState(sim::SnapWriter& w, const hw::GuestState& g) {
  for (const std::uint64_t reg : g.regs) {
    w.U64(reg);
  }
  w.U64(g.rip);
  w.U64(g.cr3);
  w.U64(g.cr2);
  w.Bool(g.paging);
  w.Bool(g.interrupts_enabled);
  w.Bool(g.halted);
  for (const std::uint64_t handler : g.idt) {
    w.U64(handler);
  }
  w.U32(static_cast<std::uint32_t>(g.frame_depth));
  for (const hw::GuestState::Frame& f : g.frames) {
    w.U64(f.rip);
    w.Bool(f.interrupts_enabled);
    for (const std::uint64_t reg : f.regs) {
      w.U64(reg);
    }
  }
  w.Bool(g.inject_pending);
  w.U8(g.inject_vector);
  w.Bool(g.request_intr_window);
  w.Bool(g.recall_pending);
}

void LoadGuestState(sim::SnapReader& r, hw::GuestState* g) {
  for (std::uint64_t& reg : g->regs) {
    reg = r.U64();
  }
  g->rip = r.U64();
  g->cr3 = r.U64();
  g->cr2 = r.U64();
  g->paging = r.Bool();
  g->interrupts_enabled = r.Bool();
  g->halted = r.Bool();
  for (std::uint64_t& handler : g->idt) {
    handler = r.U64();
  }
  g->frame_depth = static_cast<int>(r.U32());
  for (hw::GuestState::Frame& f : g->frames) {
    f.rip = r.U64();
    f.interrupts_enabled = r.Bool();
    for (std::uint64_t& reg : f.regs) {
      reg = r.U64();
    }
  }
  g->inject_pending = r.Bool();
  g->inject_vector = r.U8();
  g->request_intr_window = r.Bool();
  g->recall_pending = r.Bool();
}

namespace {

// VmControls minus io_passthrough: the bitmap pointer targets the owning
// PD's IoSpace, which the twin wires at construction.
void SaveControls(sim::SnapWriter& w, const hw::VmControls& c) {
  w.U8(static_cast<std::uint8_t>(c.mode));
  w.U8(static_cast<std::uint8_t>(c.nested_format));
  w.U64(c.nested_root);
  w.U16(c.tag);
  w.U16(c.base_tag);
  w.Bool(c.direct_interrupts);
  w.Bool(c.intercept_cpuid);
  w.Bool(c.intercept_hlt);
  w.Bool(c.intercept_cr3);
  w.Bool(c.intercept_invlpg);
  w.Bool(c.intercept_vmcall);
}

void LoadControls(sim::SnapReader& r, hw::VmControls* c) {
  c->mode = static_cast<hw::TranslationMode>(r.U8());
  c->nested_format = static_cast<hw::PagingMode>(r.U8());
  c->nested_root = r.U64();
  c->tag = r.U16();
  c->base_tag = r.U16();
  c->direct_interrupts = r.Bool();
  c->intercept_cpuid = r.Bool();
  c->intercept_hlt = r.Bool();
  c->intercept_cr3 = r.Bool();
  c->intercept_invlpg = r.Bool();
  c->intercept_vmcall = r.Bool();
}

std::uint64_t OidOrNone(const KObject* obj) {
  return obj == nullptr ? KObject::kNoOid : obj->oid();
}

// Nullable raw-pointer extraction: a restored oid may legitimately be
// kNoOid (field was null at save time), so null is a valid result here.
template <typename T>
T* MaybeRaw(const std::shared_ptr<T>& ref) {
  return ref == nullptr ? nullptr : ref.get();
}

}  // namespace

Status Hypervisor::SaveState(sim::Snapshot& snap) const {
  sim::SnapWriter& w = snap.Section("hv.kernel", 1);

  // Pool / allocator / boot state.
  w.U64(kernel_reserve_);
  w.U64(pool_next_);
  w.U64(pool_free_.size());
  for (const hw::PhysAddr frame : pool_free_) {
    w.U64(frame);
  }
  w.U32(boot_cpu_for_step_);
  for (const KernelLock* lock : {&sched_lock_, &mdb_lock_, &xcall_lock_}) {
    w.U32(lock->last_cpu);
    w.U64(lock->hold_until_ps);
  }
  Status st = tlb_tags_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  w.Bool(vtlb_policy_.cache_contexts);
  w.Bool(vtlb_policy_.use_vpid);
  w.U32(vtlb_policy_.max_cached_frames);

  // Kernel stat registry (Table 2 counters) and per-CPU VM engines.
  st = stats_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  w.U32(static_cast<std::uint32_t>(engines_.size()));
  for (const auto& engine : engines_) {
    st = engine->SaveState(w);
    if (!Ok(st)) {
      return st;
    }
  }

  // Object graph, in creation (oid) order. An expired entry means the
  // checkpoint races domain destruction — refuse rather than guess.
  w.U64(objects_.size());
  for (const ObjSlot& slot : objects_) {
    const ObjRef obj = slot.ref.lock();
    if (obj == nullptr) {
      return Status::kBadParameter;
    }
    w.U8(static_cast<std::uint8_t>(slot.type));
    w.Bool(obj->dead());
    switch (slot.type) {
      case ObjType::kPd: {
        const auto pd = std::static_pointer_cast<Pd>(obj);
        w.Str(pd->name());
        w.Bool(pd->is_vm());
        st = pd->kmem().SaveState(w);
        if (!Ok(st)) {
          return st;
        }
        w.U64(OidOrNone(pd->kmem_donor().get()));
        st = pd->caps().SaveState(w, OidOrNone);
        if (!Ok(st)) {
          return st;
        }
        st = pd->mem_space().SaveState(w);
        if (!Ok(st)) {
          return st;
        }
        st = pd->io_space().SaveState(w);
        if (!Ok(st)) {
          return st;
        }
        w.U16(pd->vm_tag());
        const auto& devices = pd->assigned_devices();
        w.U32(static_cast<std::uint32_t>(devices.size()));
        for (const std::uint16_t dev : devices) {
          w.U16(dev);
        }
        w.U64(pd->cores_mask());
        break;
      }
      case ObjType::kEc: {
        const auto ec = std::static_pointer_cast<Ec>(obj);
        w.U8(static_cast<std::uint8_t>(ec->kind()));
        w.U32(ec->cpu());
        w.U64(ec->pd().oid());
        SaveUtcb(w, ec->utcb());
        w.U32(ec->evt_base());
        w.U8(static_cast<std::uint8_t>(ec->block_state()));
        w.U8(static_cast<std::uint8_t>(ec->wake_status()));
        w.U64(OidOrNone(ec->blocked_on()));
        w.U64(ec->timeout_event());
        w.U64(OidOrNone(ec->sc()));
        w.Bool(ec->busy());
        SaveGuestState(w, ec->gstate());
        SaveControls(w, ec->ctl());
        const bool has_vtlb = ec->vtlb() != nullptr;
        w.Bool(has_vtlb);
        if (has_vtlb) {
          st = ec->vtlb()->SaveState(w);
          if (!Ok(st)) {
            return st;
          }
        }
        break;
      }
      case ObjType::kSc: {
        const auto sc = std::static_pointer_cast<Sc>(obj);
        w.U64(sc->ec().oid());
        w.U8(sc->prio());
        w.U64(sc->quantum());
        w.U64(sc->left());
        w.Bool(sc->queued());
        break;
      }
      case ObjType::kPt: {
        const auto pt = std::static_pointer_cast<Pt>(obj);
        w.U64(pt->handler().oid());
        w.U32(pt->mtd());
        w.U64(pt->id());
        break;
      }
      case ObjType::kSm: {
        const auto sm = std::static_pointer_cast<Sm>(obj);
        w.U64(sm->counter());
        w.U32(sm->bound_gsi());
        w.U64(OidOrNone(sm->owner()));
        const auto& waiters = sm->waiters();
        w.U32(static_cast<std::uint32_t>(waiters.size()));
        for (const auto& waiter : waiters) {
          w.U64(waiter->oid());
        }
        break;
      }
    }
  }

  // GSI bindings, by oid. Snapshots run with the machine quiesced; no
  // delivery or rebind can race the save.
  // nova-lint: allow(lock-discipline) -- quiesced-machine snapshot
  for (const auto& sm : gsi_sms_) {
    w.U64(OidOrNone(sm.get()));
  }
  // nova-lint: allow(lock-discipline) -- quiesced-machine snapshot
  for (const auto& ec : gsi_direct_) {
    w.U64(OidOrNone(ec.get()));
  }

  // Per-core scheduler state. Machine-wide enumeration by design:
  // nova-lint: allow(per-cpu-state)
  w.U32(static_cast<std::uint32_t>(cpu_states_.size()));
  // nova-lint: allow(per-cpu-state)
  for (const CpuState& state : cpu_states_) {
    w.U64(OidOrNone(state.current()));
    std::vector<Sc*> ready;
    state.CollectReady(&ready);
    w.U32(static_cast<std::uint32_t>(ready.size()));
    for (const Sc* sc : ready) {
      w.U64(sc->oid());
    }
    const auto& halted = state.halted();
    w.U32(static_cast<std::uint32_t>(halted.size()));
    for (const auto& ec : halted) {
      w.U64(ec->oid());
    }
  }

  // Mapping database and root sanity anchor.
  // nova-lint: allow(lock-discipline) -- quiesced-machine snapshot
  st = mdb_.SaveState(w, [](const Pd* pd) { return OidOrNone(pd); });
  if (!Ok(st)) {
    return st;
  }
  w.U64(OidOrNone(root_pd_.get()));
  return Status::kSuccess;
}

Status Hypervisor::LoadState(sim::Snapshot& snap) {
  sim::SnapReader r = snap.Open("hv.kernel", 1);

  // Lock every registered object for the duration of the overlay, so no
  // release hook can fire while reference chains are being rewritten. A
  // twin must not have destroyed anything yet.
  std::vector<ObjRef> keeper;
  keeper.reserve(objects_.size());
  for (const ObjSlot& slot : objects_) {
    ObjRef obj = slot.ref.lock();
    if (obj == nullptr) {
      return Status::kBadParameter;
    }
    keeper.push_back(std::move(obj));
  }

  kernel_reserve_ = r.U64();
  pool_next_ = r.U64();
  pool_free_.clear();
  const std::uint64_t free_count = r.U64();
  for (std::uint64_t i = 0; i < free_count && r.ok(); ++i) {
    pool_free_.push_back(r.U64());
  }
  boot_cpu_for_step_ = r.U32();
  for (KernelLock* lock : {&sched_lock_, &mdb_lock_, &xcall_lock_}) {
    lock->last_cpu = r.U32();
    lock->hold_until_ps = r.U64();
  }
  Status st = tlb_tags_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  vtlb_policy_.cache_contexts = r.Bool();
  vtlb_policy_.use_vpid = r.Bool();
  vtlb_policy_.max_cached_frames = r.U32();

  st = stats_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  if (r.U32() != engines_.size()) {
    return Status::kBadParameter;
  }
  for (auto& engine : engines_) {
    st = engine->LoadState(r);
    if (!Ok(st)) {
      return st;
    }
  }

  // Object overlay. Construction-time invariants (type, name, kind, home
  // CPU, priority, wiring oids) are verified against the twin.
  if (r.U64() != objects_.size()) {
    return Status::kBadParameter;
  }
  const auto by_oid = [this](std::uint64_t oid) { return ObjectByOid(oid); };
  for (std::uint64_t oid = 0; oid < objects_.size(); ++oid) {
    const ObjRef& obj = keeper[oid];
    if (static_cast<ObjType>(r.U8()) != obj->type()) {
      return Status::kBadParameter;
    }
    if (r.Bool()) {
      obj->MarkDead();
    }
    switch (obj->type()) {
      case ObjType::kPd: {
        auto pd = std::static_pointer_cast<Pd>(obj);
        if (r.Str() != pd->name() || r.Bool() != pd->is_vm()) {
          return Status::kBadParameter;
        }
        st = pd->kmem().LoadState(r);
        if (!Ok(st)) {
          return st;
        }
        pd->set_kmem_donor(RefAs<Pd>(by_oid(r.U64()), ObjType::kPd));
        st = pd->caps().LoadState(r, by_oid);
        if (!Ok(st)) {
          return st;
        }
        st = pd->mem_space().LoadState(r);
        if (!Ok(st)) {
          return st;
        }
        st = pd->io_space().LoadState(r);
        if (!Ok(st)) {
          return st;
        }
        pd->set_vm_tag(r.U16());
        auto& devices = pd->assigned_devices();
        devices.clear();
        const std::uint32_t num_devices = r.U32();
        for (std::uint32_t i = 0; i < num_devices && r.ok(); ++i) {
          devices.push_back(r.U16());
        }
        pd->SetCoresMask(r.U64());
        break;
      }
      case ObjType::kEc: {
        auto ec = std::static_pointer_cast<Ec>(obj);
        if (static_cast<Ec::Kind>(r.U8()) != ec->kind() ||
            r.U32() != ec->cpu() || r.U64() != ec->pd().oid()) {
          return Status::kBadParameter;
        }
        LoadUtcb(r, &ec->utcb());
        ec->set_evt_base(r.U32());
        ec->set_block_state(static_cast<Ec::BlockState>(r.U8()));
        ec->set_wake_status(static_cast<Status>(r.U8()));
        ec->set_blocked_on(MaybeRaw(RefAs<Sm>(by_oid(r.U64()), ObjType::kSm)));
        ec->set_timeout_event(r.U64());
        ec->set_sc(MaybeRaw(RefAs<Sc>(by_oid(r.U64()), ObjType::kSc)));
        ec->set_busy(r.Bool());
        LoadGuestState(r, &ec->gstate());
        LoadControls(r, &ec->ctl());
        if (r.Bool()) {
          // Vtlbs attach lazily; the twin has not run a shadow exit yet.
          st = VtlbFor(ec.get()).LoadState(r);
          if (!Ok(st)) {
            return st;
          }
        }
        break;
      }
      case ObjType::kSc: {
        auto sc = std::static_pointer_cast<Sc>(obj);
        if (r.U64() != sc->ec().oid() || r.U8() != sc->prio() ||
            r.U64() != sc->quantum()) {
          return Status::kBadParameter;
        }
        sc->SetLeft(r.U64());
        sc->set_queued(r.Bool());
        break;
      }
      case ObjType::kPt: {
        auto pt = std::static_pointer_cast<Pt>(obj);
        if (r.U64() != pt->handler().oid()) {
          return Status::kBadParameter;
        }
        pt->set_mtd(r.U32());
        if (r.U64() != pt->id()) {
          return Status::kBadParameter;
        }
        break;
      }
      case ObjType::kSm: {
        auto sm = std::static_pointer_cast<Sm>(obj);
        sm->set_counter(r.U64());
        sm->bind_gsi(r.U32());
        sm->set_owner(MaybeRaw(RefAs<Pd>(by_oid(r.U64()), ObjType::kPd)));
        auto& waiters = sm->waiters();
        waiters.clear();
        const std::uint32_t num_waiters = r.U32();
        for (std::uint32_t i = 0; i < num_waiters && r.ok(); ++i) {
          auto waiter = RefAs<Ec>(by_oid(r.U64()), ObjType::kEc);
          if (waiter == nullptr) {
            r.Fail();
            break;
          }
          waiters.push_back(std::move(waiter));
        }
        break;
      }
    }
    if (!r.ok()) {
      return r.status();
    }
  }

  // Restore happens before the machine runs; nothing can race it.
  // nova-lint: allow(lock-discipline) -- quiesced-machine restore
  for (auto& sm : gsi_sms_) {
    sm = RefAs<Sm>(by_oid(r.U64()), ObjType::kSm);
  }
  // nova-lint: allow(lock-discipline) -- quiesced-machine restore
  for (auto& ec : gsi_direct_) {
    ec = RefAs<Ec>(by_oid(r.U64()), ObjType::kEc);
  }

  // Per-core scheduler overlay. Machine-wide rebuild by design:
  // nova-lint: allow(per-cpu-state)
  if (r.U32() != cpu_states_.size()) {
    return Status::kBadParameter;
  }
  // nova-lint: allow(per-cpu-state)
  for (CpuState& state : cpu_states_) {
    state.SetCurrent(MaybeRaw(RefAs<Sc>(by_oid(r.U64()), ObjType::kSc)));
    state.ClearReady();
    const std::uint32_t num_ready = r.U32();
    for (std::uint32_t i = 0; i < num_ready && r.ok(); ++i) {
      auto sc = RefAs<Sc>(by_oid(r.U64()), ObjType::kSc);
      if (sc == nullptr) {
        r.Fail();
        break;
      }
      // Enqueue in the saved dequeue order (priority-descending, FIFO per
      // level) reproduces the exact deque contents; the queued flag was
      // already overlaid, so drop it for the guard and re-set via Enqueue.
      sc->set_queued(false);
      state.Enqueue(sc.get());
    }
    auto& halted = state.halted();
    halted.clear();
    const std::uint32_t num_halted = r.U32();
    for (std::uint32_t i = 0; i < num_halted && r.ok(); ++i) {
      auto ec = RefAs<Ec>(by_oid(r.U64()), ObjType::kEc);
      if (ec == nullptr) {
        r.Fail();
        break;
      }
      halted.push_back(std::move(ec));
    }
  }
  if (!r.ok()) {
    return r.status();
  }

  // nova-lint: allow(lock-discipline) -- quiesced-machine restore
  st = mdb_.LoadState(r, [this](std::uint64_t oid) {
    return MaybeRaw(RefAs<Pd>(ObjectByOid(oid), ObjType::kPd));
  });
  if (!Ok(st)) {
    return st;
  }
  if (r.U64() != OidOrNone(root_pd_.get())) {
    return Status::kBadParameter;
  }
  return r.Finish();
}

}  // namespace nova::hv
