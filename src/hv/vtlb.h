// The virtual-TLB subsystem: software shadow paging for hardware without
// nested paging (§5.3), layered with the paper's §8.4 optimizations.
//
// Each shadow-mode vCPU owns one Vtlb instance holding its shadow state.
// The subsystem is layered as an optimization ladder:
//
//   naive        — one shadow tree; every guest MOV CR3 frees it, rebuilds
//                  on demand and flushes the hardware TLB (the seed
//                  behaviour, Figure 9's bottom rung).
//   cached       — a shadow-context cache keyed by guest CR3: switching
//                  back to a previously seen address space reuses its
//                  shadow tree instead of re-filling it. A bounded LRU
//                  policy (VtlbPolicy::max_cached_frames) evicts whole
//                  contexts and returns their frames to the kernel pool.
//   cached+VPID  — when the CPU model supports tagged TLBs (VPID/ASID),
//                  every cached context additionally gets its own hardware
//                  tag, so the context switch becomes a tag switch and the
//                  hardware TLB is not flushed at all (PCID-style reuse).
//
// Invalidation invariant: INVLPG and guest page-table write-protect
// upgrades are applied to *every* cached context (shadow entry unmap +
// per-tag hardware flush), so a stale translation can never survive in a
// dormant context.
#ifndef SRC_HV_VTLB_H_
#define SRC_HV_VTLB_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/hv/types.h"
#include "src/hw/cpu.h"
#include "src/hw/guest_state.h"
#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/hw/tlb.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/status.h"
#include "src/sim/trace.h"

namespace nova::hv {

class Pd;

// Policy knob for the optimization ladder. The default reproduces the
// paper's naive vTLB (and this repository's seed behaviour) exactly;
// benchmarks sweep the ladder by enabling the layers one at a time.
struct VtlbPolicy {
  bool cache_contexts = false;      // Layer 1: shadow-context cache.
  bool use_vpid = false;            // Layer 2: per-context hardware tags
                                    // (effective only on tagged CPUs).
  std::uint32_t max_cached_frames = 512;  // Shadow-frame budget before LRU
                                          // context eviction kicks in.
};

class Vtlb {
 public:
  // [[nodiscard]]: a dropped Outcome means a dropped guest fault or a
  // silently ignored kNoMem — both must reach the dispatch loop.
  enum class [[nodiscard]] Outcome : std::uint8_t {
    kFilled,
    kGuestFault,
    kHostFault,
    kNoMem,  // Kernel-memory quota exhausted even after pressure eviction.
  };

  // Everything the subsystem needs from its surroundings. All pointers
  // must outlive the Vtlb (they live in the owning Ec / Pd / Machine).
  struct Env {
    hw::Cpu* cpu = nullptr;          // Cycle accounting + hardware TLB.
    hw::PhysMem* mem = nullptr;
    hw::PageTable* host = nullptr;   // The VM's host (GPA->HPA) page table.
    hw::GuestState* gs = nullptr;
    hw::VmControls* ctl = nullptr;
    Pd* pd = nullptr;                // Owning VM (revocation filtering).
    hw::PhysAddr pd_root = 0;        // Host table root (never a shadow root).
    const HvCosts* costs = nullptr;
    std::function<hw::PhysAddr()> alloc;       // Kernel frame pool.
    std::function<void(hw::PhysAddr)> free;
    hw::TlbTagAllocator* tags = nullptr;       // Per-context hardware tags.
    sim::StatRegistry* stats = nullptr;
    // Machine tracer; the permanently disabled default keeps direct Vtlb
    // construction in tests null-check free.
    sim::Tracer* tracer = &sim::Tracer::Disabled();
  };

  Vtlb(Env env, VtlbPolicy policy);
  ~Vtlb();

  Vtlb(const Vtlb&) = delete;
  Vtlb& operator=(const Vtlb&) = delete;

  // Handle a shadow-mode translation miss: parse the real guest page
  // table, charge the walk, and install the translation in the active
  // context's shadow tree.
  Outcome Resolve(const hw::VmExit& exit, std::uint64_t* gpa_out);

  // Guest wrote CR3: switch address space. Naive mode tears the shadow
  // tree down; cached mode switches to (or creates) the context for the
  // new CR3 value.
  void HandleMovCr3(std::uint64_t new_cr3);

  // Guest executed INVLPG: drop the translation from every cached context
  // and from the hardware TLB under every context tag.
  void HandleInvlpg(std::uint64_t gva);

  // Guest-initiated full flush (CR3 rewrite semantics / kTlbFlush reply):
  // every cached context is dropped; the active root survives zeroed.
  void Flush();

  // Host-initiated teardown (memory revocation): silently free every
  // shadow frame and hardware tag. No guest-visible charges or counters —
  // the revoke path accounts for itself.
  void DropAllContexts();

  Pd* pd() const { return env_.pd; }
  const VtlbPolicy& policy() const { return policy_; }
  std::size_t cached_contexts() const { return contexts_.size(); }
  std::uint64_t frames_held() const { return frames_held_; }

  // Bookkeeping-only serialization: shadow trees are real frames whose
  // bytes ride the snapshot's memory section; the context map only records
  // which roots/tags belong to which guest CR3. The twin must have
  // identical Env wiring (same pool, same tag allocator state) before
  // LoadState overlays the map.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  struct Context {
    hw::PhysAddr root = 0;
    hw::TlbTag tag = hw::kHostTag;
    std::uint64_t frames = 0;     // Frames in this tree, incl. the root.
    std::uint64_t last_use = 0;
  };

  // Per-context hardware tags in effect?
  bool tagged() const {
    return policy_.use_vpid && env_.cpu->model().has_guest_tlb_tags;
  }
  // Cache key for the running address space.
  std::uint64_t ActiveKey() const {
    return policy_.cache_contexts ? env_.gs->cr3 : 0;
  }

  Context& EnsureActive();
  Context& ContextFor(std::uint64_t key, bool* created);
  hw::PhysAddr AllocCounted(Context& ctx);
  // AllocCounted plus graceful degradation: on allocation failure, evict
  // the VM's own LRU dormant contexts one at a time and retry, so quota
  // pressure degrades into extra re-fills instead of a guest failure.
  hw::PhysAddr AllocWithPressure(Context& ctx);
  // Evict one LRU dormant context (never `keep`, never the active one) to
  // relieve allocation pressure. False when nothing is evictable.
  bool EvictOneForPressure(const Context* keep);
  void FreeBelowRoot(Context& ctx);   // Tree minus root; root zeroed.
  void FreeTree(Context& ctx);        // Whole tree, including the root.
  void EnforceFrameBudget();

  // snapshot-x-list(Vtlb): env_, policy_, contexts_, active_key_,
  //   has_active_, use_clock_, frames_held_, flushes_, switch_hits_,
  //   switch_misses_, evictions_, pressure_evictions_, trace_flush_,
  //   trace_hit_, trace_miss_, trace_evict_, trace_pevict_
  //   (the counter references alias the StatRegistry, serialized with it;
  //   the trace ids are interned at construction)
  Env env_;
  VtlbPolicy policy_;
  std::unordered_map<std::uint64_t, Context> contexts_;
  std::uint64_t active_key_ = 0;
  bool has_active_ = false;
  std::uint64_t use_clock_ = 0;
  std::uint64_t frames_held_ = 0;

  // Counters cached at construction: no string-keyed registry lookups on
  // the hot paths.
  sim::Counter& flushes_;
  sim::Counter& switch_hits_;
  sim::Counter& switch_misses_;
  sim::Counter& evictions_;
  sim::Counter& pressure_evictions_;

  // Trace-name ids interned at construction; instants are emitted at the
  // exact sites the matching counters are bumped, stamped with the owning
  // CPU's clock.
  void Mark(std::uint16_t name, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    if (env_.tracer->enabled()) {
      env_.tracer->InstantAt(env_.cpu->NowPs(), sim::TraceCat::kVtlb, name,
                             static_cast<std::uint8_t>(env_.cpu->id()), a0, a1);
    }
  }
  std::uint16_t trace_flush_;
  std::uint16_t trace_hit_;
  std::uint16_t trace_miss_;
  std::uint16_t trace_evict_;
  std::uint16_t trace_pevict_;
};

}  // namespace nova::hv

#endif  // SRC_HV_VTLB_H_
