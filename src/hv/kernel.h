// The NOVA microhypervisor.
//
// The only component that runs in the most privileged mode. It provides
// mechanisms — communication (portal IPC with scheduling-context
// donation), resource delegation/revocation through the mapping database,
// interrupt control (GSI-to-semaphore binding), scheduling, and memory
// virtualization (nested paging or the vTLB algorithm) — and no policy.
//
// User components (root partition manager, VMMs, drivers) are C++ objects
// holding capability selectors; they invoke the hypercall methods below.
// Execution is cooperative: the kernel's scheduler literally decides which
// execution context runs next, and all work is charged in cycles to the
// simulated CPUs.
#ifndef SRC_HV_KERNEL_H_
#define SRC_HV_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hw/machine.h"
#include "src/hw/vm_engine.h"
#include "src/hv/kmem.h"
#include "src/hv/mdb.h"
#include "src/hv/objects.h"
#include "src/hv/scheduler.h"
#include "src/hv/types.h"
#include "src/hv/vtlb.h"
#include "src/sim/fault.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace nova::hv {

class DirtyLog;

// Well-known selectors in a fresh protection domain.
constexpr CapSel kSelOwnPd = 0;
constexpr CapSel kSelFirstFree = 32;

class Hypervisor : public KmemPool {
 public:
  explicit Hypervisor(hw::Machine* machine, HvCosts costs = HvCosts{});
  ~Hypervisor();

  // --- Boot ------------------------------------------------------------
  // Claims the bottom `kernel_reserve` bytes of RAM for kernel data (page
  // tables, UTCBs), shields them from DMA, and creates the root protection
  // domain holding capabilities for all remaining resources (§6).
  Pd* Boot(std::uint64_t kernel_reserve = 64ull << 20);
  Pd* root_pd() { return root_pd_.get(); }

  // --- Hypercalls -------------------------------------------------------
  // `caller` is the invoking protection domain (all selectors are resolved
  // in its capability space).

  // `quota_frames` bounds the new domain's kernel-memory account; the
  // quota is carved out of (donated from) the caller's nearest bounded
  // account and returned when the domain is destroyed. The default leaves
  // the account pass-through: charges land on the creator's account, the
  // pre-quota behaviour.
  Status CreatePd(Pd* caller, CapSel dst_sel, const std::string& name, bool is_vm,
                  Pd** out = nullptr,
                  std::uint64_t quota_frames = KmemQuota::kUnlimited);
  Status DestroyPd(Pd* caller, CapSel pd_sel);

  Status CreateEcLocal(Pd* caller, CapSel dst_sel, CapSel pd_sel, std::uint32_t cpu,
                       Ec::Handler handler, Ec** out = nullptr);
  Status CreateEcGlobal(Pd* caller, CapSel dst_sel, CapSel pd_sel, std::uint32_t cpu,
                        Ec::StepFn step, Ec** out = nullptr);
  // A vCPU: `evt_base` is the base selector (in the *VM's* capability
  // space) of its VM-exit portal table.
  Status CreateVcpu(Pd* caller, CapSel dst_sel, CapSel vm_pd_sel, std::uint32_t cpu,
                    CapSel evt_base, Ec** out = nullptr);

  Status CreateSc(Pd* caller, CapSel dst_sel, CapSel ec_sel, std::uint8_t prio,
                  sim::Cycles quantum);

  Status CreatePt(Pd* caller, CapSel dst_sel, CapSel handler_ec_sel, Mtd m,
                  std::uint64_t id);
  Status PtCtrlMtd(Pd* caller, CapSel pt_sel, Mtd m);

  Status CreateSm(Pd* caller, CapSel dst_sel, std::uint64_t initial);

  // IPC: send the message in `caller_ec`'s UTCB through the portal; the
  // handler's reply lands back in the same UTCB. The caller donates its
  // scheduling context to the handler for the duration of the call (§5.2).
  Status Call(Ec* caller_ec, CapSel pt_sel);

  Status SmUp(Pd* caller, CapSel sm_sel);
  enum class [[nodiscard]] DownResult : std::uint8_t {
    kAcquired,  // Counter was positive; decremented without blocking.
    kBlocked,   // Caller enqueued on the semaphore; retry after wake-up.
    kTimeout,   // A previous blocked wait's deadline expired (kTimeout).
    kAborted,   // The semaphore's domain died while the caller waited.
    kError,
  };
  // `unmask_gsi`: for interrupt semaphores, unmask the bound GSI before
  // waiting (the driver's handled-the-interrupt handshake). A non-zero
  // `deadline_ps` bounds a blocking wait: if no Up arrives by then the
  // waiter is removed from the queue and its next SmDown reports kTimeout.
  DownResult SmDown(Ec* caller_ec, CapSel sm_sel, bool unmask_gsi = false,
                    sim::PicoSeconds deadline_ps = 0);

  // Resource delegation: transfer `src` (a range of the caller's memory,
  // I/O or capability space) into `dst_pd_sel`'s space at `hotspot`,
  // possibly narrowing permissions. `large` requests superpage host
  // mappings (memory only).
  Status Delegate(Pd* caller, CapSel dst_pd_sel, const Crd& src,
                  std::uint64_t hotspot, std::uint8_t perms_mask = 0xff,
                  bool large = false);
  // Recursively revoke everything delegated from the caller's range; with
  // `include_self`, drop the caller's own holding too.
  Status Revoke(Pd* caller, const Crd& crd, bool include_self);

  // Interrupt control: bind a semaphore to a GSI routed to `cpu`. The
  // kernel masks + acks the interrupt and performs an Up on arrival.
  Status AssignGsi(Pd* caller, CapSel sm_sel, std::uint32_t gsi, std::uint32_t cpu);
  // Route a GSI directly into a vCPU (idealized direct interrupt delivery
  // used by the "Direct" configuration of §8.1).
  Status AssignGsiDirect(Pd* caller, CapSel vcpu_sel, std::uint32_t gsi);

  // Register a device MMIO window (physical addresses outside RAM) as a
  // delegatable resource owned by the root partition manager. Called by
  // platform bring-up code after devices are placed on the bus.
  Status GrantDeviceWindow(hw::PhysAddr base, std::uint64_t size);

  // Attach a DMA-capable device to a protection domain: the IOMMU then
  // translates the device's DMA with the PD's own page table, so a driver
  // (or a VM with a directly assigned device) can only reach memory that
  // was delegated to it (§4.2).
  Status AssignDev(Pd* caller, CapSel pd_sel, hw::DeviceId dev, std::uint32_t gsi);

  // Force a vCPU back into its VMM (§7.5): wakes a halted vCPU and makes
  // its next instruction boundary exit through the recall portal.
  Status Recall(Pd* caller, CapSel ec_sel);

  // --- Scheduling / time ------------------------------------------------
  // Run the machine until `deadline_ps` of simulated time (or until no
  // work remains and no device events are pending).
  void RunUntil(sim::PicoSeconds deadline_ps);
  // Run until `pred()` holds, checking between scheduling steps.
  void RunUntilCondition(const std::function<bool()>& pred,
                         sim::PicoSeconds deadline_ps);
  // One scheduling decision + execution chunk. False when fully idle with
  // no pending device events.
  bool StepOnce();
  // Runnable work (or device events) pending before `deadline_ps`?
  bool WorkRemainsBefore(sim::PicoSeconds deadline_ps);

  // --- Introspection ----------------------------------------------------
  hw::Machine& machine() { return *machine_; }
  hw::VmEngine& engine(std::uint32_t cpu) { return *engines_[cpu]; }
  sim::StatRegistry& stats() { return stats_; }
  const HvCosts& costs() const { return costs_; }
  // Test/snapshot accessor; hot-path callers charge mdb_lock_ themselves.
  // nova-lint: allow(lock-discipline) -- read-only accessor escape
  Mdb& mdb() { return mdb_; }

  // Kernel frame allocator (exposed for the root PM to build tables for
  // guests during image installation). Charged to the root PD's account.
  [[nodiscard]] hw::PhysAddr AllocFrame();
  void FreeFrame(hw::PhysAddr frame);
  // KmemPool: allocate/free one kernel frame charged to `pd`'s quota
  // chain. Returns 0 on quota or pool exhaustion — never a fake frame.
  [[nodiscard]] hw::PhysAddr AllocFrameFor(Pd* pd) override;
  void FreeFrameFor(Pd* pd, hw::PhysAddr frame) override;

  // Deterministic fault injection: when set, every charged allocation
  // consults the plan for FaultKind::kAllocFail (target = owning PD's
  // name) and fails transiently on a hit. Null (the default) costs
  // nothing on the allocation path.
  void SetFaultPlan(sim::FaultPlan* plan) { fault_plan_ = plan; }
  std::uint64_t kernel_reserve() const { return kernel_reserve_; }
  // Frames currently handed out by the pool (leak accounting in tests).
  std::uint64_t FramesInUse() const {
    return (pool_next_ - hw::kPageSize) / hw::kPageSize - pool_free_.size();
  }

  // vTLB policy for shadow-mode vCPUs. Applies to Vtlb instances attached
  // after the call (they are attached lazily, on a vCPU's first
  // shadow-paging exit), so set it before the VM first runs.
  void set_vtlb_policy(const VtlbPolicy& policy) { vtlb_policy_ = policy; }
  const VtlbPolicy& vtlb_policy() const { return vtlb_policy_; }
  // The per-vCPU shadow-paging subsystem, attached on first use.
  Vtlb& VtlbFor(Ec* vcpu);

  // Wake an EC blocked on halt (used internally and by tests).
  void WakeEc(Ec* ec);

  // Table 2 counters, keyed by the paper's row names.
  std::uint64_t EventCount(const std::string& name) const {
    return stats_.Value(name);
  }

  // --- Checkpoint/restore ----------------------------------------------
  // Serialize every piece of mutable kernel state (object graph, cap
  // spaces, quotas, mapping database, scheduler queues, vTLB contexts,
  // frame pool, tag allocator, lock models, kernel stat registry, VM
  // engines) into the "hv.kernel" section. Object identity on the wire is
  // the creation-order oid; restore overlays a twin Hypervisor whose
  // scenario construction ran the identical creation sequence.
  // Fails kBadParameter if any registered object was already destroyed
  // (snapshot before domain teardown only) or a pending event is untagged.
  Status SaveState(sim::Snapshot& snap) const;
  Status LoadState(sim::Snapshot& snap);

  // Object registry: every kernel object gets a creation-order ordinal.
  ObjRef ObjectByOid(std::uint64_t oid) const {
    return oid < objects_.size() ? objects_[oid].ref.lock() : nullptr;
  }
  std::uint64_t ObjectCount() const { return objects_.size(); }

  // Dirty-page tracking hook (see hv/dirty_log.h). Null by default; when
  // set, write-protect mode routes EPT write faults through the log.
  void SetDirtyLog(DirtyLog* log) { dirty_log_ = log; }
  DirtyLog* dirty_log() const { return dirty_log_; }

 private:
  friend class VcpuDriver;

  hw::Cpu& cpu(std::uint32_t id) { return machine_->cpu(id); }
  void Charge(std::uint32_t cpu_id, sim::Cycles c) { cpu(cpu_id).Charge(c); }

  // The only door to per-core kernel state: call sites must name the core
  // (nova-lint rule per-cpu-state enforces the discipline).
  CpuState& cpu_state(std::uint32_t cpu_id) { return cpu_states_[cpu_id]; }

  // Put `sc` on its home core's ready queue (Hedron: SCs have core
  // affinity; the queue is always the one keyed by Sc::cpu). A wakeup
  // posted from a different core pays for that queue's lock.
  void EnqueueSc(Sc* sc, bool at_head = false);
  // Pull a dying EC out of its core's ready queue and halted list.
  void UnscheduleEc(Ec* ec);

  // A simple contention model for kernel structures shared across cores:
  // an acquire from a different core within the previous holder's hold
  // window pays the contended-spinlock price. Free on 1-CPU machines.
  struct KernelLock {
    std::uint32_t last_cpu = ~0u;
    sim::PicoSeconds hold_until_ps = 0;
  };
  void ChargeLock(KernelLock& lock, std::uint32_t cpu_id);

  // Advance device/event-queue time to the machine-wide floor: the minimum
  // local clock over cores that still have runnable work (idle cores are
  // dragged up to the floor first so they can never hold time back).
  void SyncDeviceTime();

  // Tagged-TLB shootdown: cores in `targets` (excluding `origin_cpu`)
  // holding translations under `tag` receive a simulated IPI, flush, and
  // ack; the origin spins until the last ack. No-op on 1-CPU machines.
  void ShootdownRemotes(std::uint32_t origin_cpu, std::uint64_t targets,
                        hw::TlbTag tag);
  // vTLB flavour: a shadow-paging INVLPG on one vCPU invalidates the
  // cached translation in sibling vCPUs' shadow contexts on other cores.
  void ShootdownVtlb(Ec* origin_vcpu, std::uint64_t gva);

  // Object creation plumbing.
  Status InstallCap(Pd* target, CapSel sel, ObjRef obj, std::uint8_t perms);
  std::shared_ptr<Pd> MakePd(const std::string& name, bool is_vm,
                             std::shared_ptr<Pd> donor,
                             std::uint64_t quota_frames);

  // Raw pool operations (no accounting); everything outside Boot goes
  // through the charged AllocFrameFor/FreeFrameFor pair.
  [[nodiscard]] hw::PhysAddr PoolAlloc();
  void PoolFree(hw::PhysAddr frame);
  // Charge `frames` to `pd` for a kernel object (UTCB, VMCS, SC, portal,
  // semaphore); consults the fault plan like a real frame allocation.
  [[nodiscard]] bool ChargeObjectFrames(Pd* pd, std::uint64_t frames);
  // The caller's own-PD reference (selector 0), for donor chains and
  // object charges that outlive the raw pointer.
  std::shared_ptr<Pd> SelfRef(Pd* caller);

  // IPC internals.
  Status DoCall(Ec* caller_ec, Pt* portal);
  void TransferWords(Utcb& from, Utcb& to, std::uint32_t cpu_id);
  Status ApplyTypedItems(Pd* sender, Pd* receiver, Utcb& msg, std::uint32_t cpu_id);

  // VM-exit plumbing (vcpu.cc).
  void RunVcpu(Sc* sc, sim::Cycles budget);
  bool DispatchVmEvent(Ec* vcpu, Event event, const hw::VmExit& exit);
  void TransferToUtcb(Ec* vcpu, const hw::VmExit& exit, Mtd m, Utcb& utcb);
  void TransferFromUtcb(Ec* vcpu, Mtd m, const Utcb& utcb);

  // vTLB (shadow paging): drop all shadow state of a VM's vCPUs after a
  // host-side unmap, so no stale translation survives revocation.
  void DropShadowContexts(Pd* pd);

  // Interrupt plumbing.
  void ProcessPendingIrqs(std::uint32_t cpu_id);

  // Scheduling internals: choose the runnable core with the smallest
  // local clock (~0u = none), then run one dispatch on it.
  std::uint32_t PickNextCpu();
  bool DispatchOn(std::uint32_t cpu_id);

  // Unlink an EC from its semaphore wait and make it runnable again with
  // `status` as the wake reason (kSuccess = normal Up).
  void WakeSmWaiter(Ec* ec, Status status);

  // An SmDown deadline fired: remove the waiter and wake it with kTimeout.
  // Factored out of the lambda so the event-queue rebinder ("hv.kernel"
  // owner, op 1) can rebuild the callback from (ec oid, sm oid) at restore.
  void SmDeadlineExpired(std::shared_ptr<Ec> ec_ref, std::shared_ptr<Sm> sm_ref);

  // Assign the next creation-order oid to a freshly created object. The
  // registry is append-only (weak refs: registration never extends an
  // object's lifetime) so oids stay stable across destruction.
  void RegisterObject(const ObjRef& obj);
  // Full teardown of a dying domain: abort waiters, unschedule its ECs,
  // drop shadow state, detach devices, free its paging structures.
  void ReclaimPd(Pd* pd);

  // Charged capability lookup.
  template <typename T>
  T* LookupCharged(Pd* caller, CapSel sel, ObjType type, std::uint8_t perms,
                   std::uint32_t cpu_id) {
    Charge(cpu_id, costs_.cap_lookup);
    return caller->caps().LookupAs<T>(sel, type, perms);
  }

  // Hot-path event counters resolved once at construction: the VM-exit
  // dispatch and interrupt paths bump these without a string-keyed map
  // lookup. The registry stays authoritative for dump/reset.
  struct HotCounters {
    explicit HotCounters(sim::StatRegistry& s)
        : hlt(s.counter("HLT")),
          hw_intr(s.counter("Hardware Interrupts")),
          recall(s.counter("Recall")),
          vtlb_fill(s.counter("vTLB Fill")),
          guest_pf(s.counter("Guest Page Fault")),
          mmio(s.counter("Memory-Mapped I/O")),
          pio(s.counter("Port I/O")),
          cpuid(s.counter("CPUID")),
          mov_cr(s.counter("CR Read/Write")),
          invlpg(s.counter("INVLPG")),
          intr_window(s.counter("Interrupt Window")),
          vmcall(s.counter("VMCALL")),
          vm_error(s.counter("VM Error")),
          vm_event_ipc(s.counter("vm-event-ipc")),
          vm_event_unhandled(s.counter("vm-event-unhandled")),
          gsi_delivered(s.counter("gsi-delivered")),
          ipc_calls(s.counter("ipc-calls")),
          ipc_xcalls(s.counter("ipc-xcalls")),
          tlb_shootdown(s.counter("TLB Shootdown")),
          lock_contention(s.counter("lock-contention")) {}
    sim::Counter& hlt;
    sim::Counter& hw_intr;
    sim::Counter& recall;
    sim::Counter& vtlb_fill;
    sim::Counter& guest_pf;
    sim::Counter& mmio;
    sim::Counter& pio;
    sim::Counter& cpuid;
    sim::Counter& mov_cr;
    sim::Counter& invlpg;
    sim::Counter& intr_window;
    sim::Counter& vmcall;
    sim::Counter& vm_error;
    sim::Counter& vm_event_ipc;
    sim::Counter& vm_event_unhandled;
    sim::Counter& gsi_delivered;
    sim::Counter& ipc_calls;
    sim::Counter& ipc_xcalls;
    sim::Counter& tlb_shootdown;
    sim::Counter& lock_contention;
  };

  // Interned trace-name ids resolved once at construction. The Table 2
  // rows reuse the exact counter-registry row names and are emitted
  // adjacent to the counter bumps, which is what lets bench/tab2_events
  // derive the table from a TraceReport and cross-check it against the
  // counters record for record.
  struct HotTraceIds {
    explicit HotTraceIds(sim::Tracer& t);
    std::uint16_t hlt, hw_intr, recall, vtlb_fill, guest_pf, mmio, pio,
        cpuid, mov_cr, invlpg, intr_window, vmcall, vm_error;
    std::uint16_t ipc_call, vm_event, sched_dispatch, sched_preempt,
        gsi_delivered, vtlb_resolve;
    // Host-side handling span per exit reason ("exit:<reason>").
    std::uint16_t exit[hw::kNumExitReasons] = {};
    // Interned AFTER everything above (see the ctor): ids are dense and
    // golden trace digests depend on them, so new names only ever append.
    std::uint16_t vm_event_unhandled = 0;
    // SMP names, appended after vm_event_unhandled (same rule).
    std::uint16_t ipc_xcall = 0, tlb_shootdown = 0, tlb_shootdown_ack = 0,
        lock_contention = 0;
  };

  // Bump a Table 2 counter and emit the matching trace instant (stamped
  // with the CPU's local clock; the timestamp is only computed when the
  // tracer is enabled).
  void CountEvent(sim::Counter& c, std::uint16_t name, std::uint32_t cpu_id,
                  std::uint64_t a0 = 0,
                  sim::TraceCat cat = sim::TraceCat::kVmExit) {
    c.Add();
    if (tracer_->enabled()) {
      tracer_->InstantAt(cpu(cpu_id).NowPs(), cat, name,
                         static_cast<std::uint8_t>(cpu_id), a0);
    }
  }

  // snapshot-x-list(Hypervisor): machine_, costs_, stats_, ctr_, tracer_,
  //   trc_, mdb_, kernel_reserve_, pool_next_, pool_free_, fault_plan_,
  //   root_pd_, engines_, cpu_states_, gsi_sms_, gsi_direct_, tlb_tags_,
  //   vtlb_policy_, vcpus_, ecs_, sms_, host_paging_mode_,
  //   boot_cpu_for_step_, objects_, dirty_log_, sched_lock_, mdb_lock_,
  //   xcall_lock_
  hw::Machine* machine_;
  HvCosts costs_;
  sim::StatRegistry stats_;
  HotCounters ctr_{stats_};
  sim::Tracer* tracer_{&machine_->tracer()};
  HotTraceIds trc_{*tracer_};
  Mdb mdb_;  // guarded-by(mdb_lock_)

  // Kernel memory pool.
  std::uint64_t kernel_reserve_ = 0;
  hw::PhysAddr pool_next_ = 0;
  std::vector<hw::PhysAddr> pool_free_;
  sim::FaultPlan* fault_plan_ = nullptr;

  std::shared_ptr<Pd> root_pd_;
  std::vector<std::unique_ptr<hw::VmEngine>> engines_;
  std::vector<CpuState> cpu_states_;

  // GSI bindings. Rebinding a route races interrupt delivery on another
  // core, so writers outside single-core phases take the scheduler lock.
  // guarded-by(sched_lock_)
  std::array<std::shared_ptr<Sm>, hw::kNumGsis> gsi_sms_{};
  // guarded-by(sched_lock_)
  std::array<std::shared_ptr<Ec>, hw::kNumGsis> gsi_direct_{};

  hw::TlbTagAllocator tlb_tags_;  // VM identity tags + vTLB context tags.
  VtlbPolicy vtlb_policy_{};
  std::vector<std::weak_ptr<Ec>> vcpus_;  // All vCPUs ever created.
  std::vector<std::weak_ptr<Ec>> ecs_;    // All ECs ever created (teardown).
  std::vector<std::weak_ptr<Sm>> sms_;    // All Sms ever created (teardown).
  hw::PagingMode host_paging_mode_;
  std::uint32_t boot_cpu_for_step_ = 0;

  // Creation-order object registry (snapshot identity). Entries are never
  // pruned; `type` is kept so save can name an expired object in errors.
  struct ObjSlot {
    std::weak_ptr<KObject> ref;
    ObjType type = ObjType::kPd;
  };
  std::vector<ObjSlot> objects_;
  DirtyLog* dirty_log_ = nullptr;

  // Shared kernel structures with a contention price under SMP.
  KernelLock sched_lock_;  // Cross-core wakeups touch remote run queues.
  KernelLock mdb_lock_;    // Mapping-database delegate/revoke walks.
  KernelLock xcall_lock_;  // Cross-core IPC request slots.
};

}  // namespace nova::hv

#endif  // SRC_HV_KERNEL_H_
