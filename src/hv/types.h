// Core microhypervisor types: capability selectors, capability range
// descriptors (CRDs), message transfer descriptors (MTDs), VM-exit event
// numbering and the software-path cost model.
#ifndef SRC_HV_TYPES_H_
#define SRC_HV_TYPES_H_

#include <cstdint>

#include "src/sim/time.h"

namespace nova::hv {

// Capability selector: an index into a protection domain's capability
// space, analogous to a Unix file descriptor (§5 of the paper).
using CapSel = std::uint32_t;
constexpr CapSel kInvalidSel = ~0u;
constexpr std::uint32_t kCapSpaceSlots = 4096;

// Permission bits carried by object capabilities. Interpretation is
// object-type specific; a delegation may only narrow them.
namespace perm {
constexpr std::uint8_t kCtrl = 1u << 0;    // Destroy / reconfigure.
constexpr std::uint8_t kCall = 1u << 1;    // Portal: may call.
constexpr std::uint8_t kDelegate = 1u << 2;  // May re-delegate.
constexpr std::uint8_t kSmUp = 1u << 3;    // Semaphore up.
constexpr std::uint8_t kSmDown = 1u << 4;  // Semaphore down.
constexpr std::uint8_t kAll = 0x1f;
// Memory rights (CRD perms for kMem).
constexpr std::uint8_t kRead = 1u << 0;
constexpr std::uint8_t kWrite = 1u << 1;
constexpr std::uint8_t kExec = 1u << 2;
constexpr std::uint8_t kRw = kRead | kWrite;
constexpr std::uint8_t kRwx = kRw | kExec;
}  // namespace perm

// Capability range descriptor: names a range of one of the three spaces a
// protection domain owns. `base` is in pages (kMem), ports (kIo) or
// selectors (kObj); the range covers 2^order units.
enum class CrdKind : std::uint8_t { kNull = 0, kMem, kIo, kObj };

struct Crd {
  CrdKind kind = CrdKind::kNull;
  std::uint64_t base = 0;
  std::uint8_t order = 0;
  std::uint8_t perms = 0;

  std::uint64_t count() const { return 1ull << order; }
  static Crd Mem(std::uint64_t page, std::uint8_t order, std::uint8_t perms) {
    return Crd{CrdKind::kMem, page, order, perms};
  }
  static Crd Io(std::uint64_t port, std::uint8_t order) {
    return Crd{CrdKind::kIo, port, order, perm::kAll};
  }
  static Crd Obj(CapSel sel, std::uint8_t order, std::uint8_t perms) {
    return Crd{CrdKind::kObj, sel, order, perms};
  }
};

// Message transfer descriptor: selects which groups of architectural state
// the hypervisor moves between a virtual CPU and a VMM's UTCB. Portals
// store an MTD so that each event type transfers only what its handler
// needs — the paper's VMCS-access optimization (§5.2).
using Mtd = std::uint32_t;
namespace mtd {
constexpr Mtd kGprAcdb = 1u << 0;   // regs[0..3]          (4 words)
constexpr Mtd kGprBsd = 1u << 1;    // regs[4..7]          (4 words)
constexpr Mtd kRip = 1u << 2;       // rip, insn length    (2 words)
constexpr Mtd kRflags = 1u << 3;    // IF                  (1 word)
constexpr Mtd kCr = 1u << 4;        // cr3, cr2, paging    (3 words)
constexpr Mtd kQual = 1u << 5;      // exit qualification  (3 words)
constexpr Mtd kInj = 1u << 6;       // injection state     (2 words)
constexpr Mtd kSta = 1u << 7;       // halted, recall      (1 word)
constexpr Mtd kTsc = 1u << 8;       // cycle counter       (1 word)
constexpr Mtd kTlbFlush = 1u << 9;  // Reply-only: flush guest TLB (0 words)
constexpr Mtd kAll = 0x3ff;

// Number of state words a given MTD moves (copy cost) and the number of
// VMCS fields it touches (VMREAD/VMWRITE cost).
int WordCount(Mtd m);
int FieldCount(Mtd m);
}  // namespace mtd

// VM-exit event numbering: the portal index (relative to the VM's event
// base) that each exit type is dispatched to.
enum class Event : std::uint8_t {
  kPio = 0,
  kCpuid = 1,
  kHlt = 2,
  kMovCr = 3,
  kInvlpg = 4,
  kMmio = 5,         // EPT violation / shadow host-side fault.
  kIntrWindow = 6,
  kRecall = 7,
  kVmcall = 8,
  kError = 9,
  kCount = 10,
};
constexpr std::uint32_t kNumEvents = static_cast<std::uint32_t>(Event::kCount);

// Cycle prices of the hypervisor's software paths. These are *unit* costs:
// total path cost emerges from the operations a path actually performs
// (lookups, map updates, copied words), so the figures of the paper come
// out of executed work, not hard-wired totals.
struct HvCosts {
  sim::Cycles hypercall_dispatch = 10;
  sim::Cycles cap_lookup = 14;
  sim::Cycles portal_traversal = 28;
  sim::Cycles context_switch = 26;     // Same address space.
  sim::Cycles addr_space_switch = 30;  // Page-table root write.
  sim::Cycles reply_path = 20;
  sim::Cycles sched_pick = 42;
  sim::Cycles sm_op = 24;
  sim::Cycles irq_ack = 90;            // Mask + ack at the interrupt chip.
  sim::Cycles map_page = 28;           // One page-table update.
  sim::Cycles mdb_node = 60;           // Mapping-database bookkeeping.
  sim::Cycles vtlb_fill_base = 46;     // Fill overhead beyond the walks.
  sim::Cycles recall_ipi = 180;        // Cross-CPU kick.
  // SMP paths (charged only when the machine has more than one core).
  sim::Cycles xcall_send = 150;        // Cross-core IPC: IPI + request post.
  sim::Cycles xcall_receive = 320;     // Remote core: interrupt + pickup.
  sim::Cycles shootdown_ipi = 150;     // TLB shootdown: initiator, per target.
  sim::Cycles shootdown_ack = 220;     // TLB shootdown: target flush + ack.
  sim::Cycles lock_contention = 80;    // Contended spinlock acquire.
  sim::Cycles lock_hold = 60;          // Window a kernel lock stays hot.
  // Host-TLB refill estimate after an address-space switch: the "TLB
  // effects" box of Figure 8. Untagged host ASes re-walk their hot
  // working set after every switch.
  std::uint32_t ipc_refill_entries = 2;
};

}  // namespace nova::hv

#endif  // SRC_HV_TYPES_H_
