// The five kernel object types of the microhypervisor (§5): protection
// domains, execution contexts, scheduling contexts, portals, semaphores.
#ifndef SRC_HV_OBJECTS_H_
#define SRC_HV_OBJECTS_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/guest_state.h"
#include "src/hv/cap_space.h"
#include "src/hv/kmem.h"
#include "src/hv/object.h"
#include "src/hv/spaces.h"
#include "src/hv/types.h"
#include "src/hv/utcb.h"

namespace nova::hv {

class Ec;
class Sc;
class Sm;
class Vtlb;

// Protection domain: spatial isolation. Acts as a resource container and
// abstracts from the difference between a user application and a VM.
class Pd : public KObject {
 public:
  Pd(std::string name, bool is_vm, hw::PhysMem* mem, hw::PagingMode mode,
     hw::PhysAddr pt_root, KmemPool* pool)
      : KObject(ObjType::kPd),
        name_(std::move(name)),
        is_vm_(is_vm),
        pool_(pool),
        // Page-table frames charged here are credited by MemSpace's
        // teardown walk (spaces.cc), not in this file.
        mem_space_(mem, mode, pt_root,
                   // nova-lint: allow(quota-symmetry)
                   [this] { return pool_->AllocFrameFor(this); }) {
    caps_.set_charge_fn([this](std::uint64_t frames) {
      return ChargeKmem(frames);
    });
  }

  ~Pd() override {
    // Capability-space chunks die with the domain; the release hooks of
    // the other object types credit their own charges.
    CreditKmem(caps_.committed_chunks());
  }

  const std::string& name() const { return name_; }
  bool is_vm() const { return is_vm_; }

  // Kernel-memory account (frames). Charges walk the donor chain to the
  // nearest bounded account; every account on the path records the usage
  // so used() always reflects this PD's subtree.
  KmemQuota& kmem() { return kmem_; }
  const KmemQuota& kmem() const { return kmem_; }
  const std::shared_ptr<Pd>& kmem_donor() const { return kmem_donor_; }
  void set_kmem_donor(std::shared_ptr<Pd> donor) {
    kmem_donor_ = std::move(donor);
  }

  [[nodiscard]] bool ChargeKmem(std::uint64_t frames) {
    Pd* terminal = this;
    while (!terminal->kmem_.bounded() && terminal->kmem_donor_ != nullptr) {
      terminal = terminal->kmem_donor_.get();
    }
    if (!terminal->kmem_.TryCharge(frames)) {
      return false;
    }
    for (Pd* pd = this; pd != terminal; pd = pd->kmem_donor_.get()) {
      pd->kmem_.RecordCharge(frames);
    }
    return true;
  }

  void CreditKmem(std::uint64_t frames) {
    Pd* pd = this;
    while (true) {
      pd->kmem_.Credit(frames);
      if (pd->kmem_.bounded() || pd->kmem_donor_ == nullptr) break;
      pd = pd->kmem_donor_.get();
    }
  }

  CapSpace& caps() { return caps_; }
  const CapSpace& caps() const { return caps_; }
  MemSpace& mem_space() { return mem_space_; }
  IoSpace& io_space() { return io_space_; }

  // TLB tag (VPID/ASID) assigned to this domain when it is a VM.
  hw::TlbTag vm_tag() const { return vm_tag_; }
  void set_vm_tag(hw::TlbTag tag) { vm_tag_ = tag; }

  // DMA-capable devices assigned to this domain; detached on destroy so
  // a dead driver domain can no longer program DMA.
  std::vector<std::uint16_t>& assigned_devices() { return devices_; }

  // Cores whose TLBs may hold translations tagged with this domain's
  // vm_tag (bit i = CPU i). Maintained by the vCPU dispatch path and
  // consumed by the shootdown protocol: only cores in the mask receive
  // an IPI on unmap/invalidate.
  std::uint64_t cores_mask() const { return cores_mask_; }
  void NoteCore(std::uint32_t cpu_id) { cores_mask_ |= 1ull << cpu_id; }
  void ClearCore(std::uint32_t cpu_id) { cores_mask_ &= ~(1ull << cpu_id); }
  void ClearCores() { cores_mask_ = 0; }
  // Snapshot overlay only.
  void SetCoresMask(std::uint64_t mask) { cores_mask_ = mask; }

 private:
  // snapshot-x-list(Pd): name_, is_vm_, pool_, kmem_, kmem_donor_, caps_,
  //   mem_space_, io_space_, vm_tag_, devices_, cores_mask_
  std::string name_;
  bool is_vm_;
  KmemPool* pool_;
  KmemQuota kmem_;
  std::shared_ptr<Pd> kmem_donor_;
  CapSpace caps_;
  MemSpace mem_space_;
  IoSpace io_space_;
  hw::TlbTag vm_tag_ = hw::kHostTag;
  std::vector<std::uint16_t> devices_;
  std::uint64_t cores_mask_ = 0;
};

// Execution context: a thread, a dedicated event handler, or a virtual CPU.
class Ec : public KObject {
 public:
  enum class Kind : std::uint8_t {
    kLocal,   // Portal handler; runs only on incoming IPC (no own SC).
    kGlobal,  // Thread with its own scheduling context.
    kVcpu,    // Virtual CPU of a VM.
  };

  enum class BlockState : std::uint8_t {
    kRunnable,
    kBlockedSm,    // Waiting in a semaphore queue.
    kBlockedHalt,  // Halted vCPU waiting for an interrupt or recall.
  };

  // A local EC's handler: invoked when a portal bound to it is called.
  // The message is in utcb(); the handler's return is the reply.
  using Handler = std::function<void(std::uint64_t portal_id)>;
  // A global EC's body: invoked when scheduled; must perform a bounded
  // chunk of work and return (it is re-invoked while runnable).
  using StepFn = std::function<void()>;

  Ec(Kind kind, std::shared_ptr<Pd> pd, std::uint32_t cpu)
      : KObject(ObjType::kEc), kind_(kind), pd_(std::move(pd)), cpu_(cpu) {}

  Kind kind() const { return kind_; }
  Pd& pd() { return *pd_; }
  std::shared_ptr<Pd> pd_ref() { return pd_; }
  std::uint32_t cpu() const { return cpu_; }

  Utcb& utcb() { return utcb_; }

  Handler& handler() { return handler_; }
  void set_handler(Handler h) { handler_ = std::move(h); }
  StepFn& step_fn() { return step_fn_; }
  void set_step_fn(StepFn f) { step_fn_ = std::move(f); }

  // vCPU state (kind kVcpu only).
  hw::GuestState& gstate() { return gstate_; }
  hw::VmControls& ctl() { return ctl_; }
  CapSel evt_base() const { return evt_base_; }
  void set_evt_base(CapSel base) { evt_base_ = base; }

  // Shadow-paging state: lazily attached by the hypervisor when the vCPU
  // runs in TranslationMode::kShadow (see hv/vtlb.h).
  const std::shared_ptr<Vtlb>& vtlb() const { return vtlb_; }
  void set_vtlb(std::shared_ptr<Vtlb> v) { vtlb_ = std::move(v); }

  BlockState block_state() const { return block_state_; }
  void set_block_state(BlockState s) { block_state_ = s; }

  // Why the last blocking wait ended: kSuccess for a normal wake-up,
  // kTimeout when the deadline fired, kAbort when the semaphore's domain
  // died. Consumed by the next SmDown.
  Status wake_status() const { return wake_status_; }
  void set_wake_status(Status s) { wake_status_ = s; }

  // The semaphore this EC currently waits on (kBlockedSm only), plus the
  // pending deadline event (0 = none). Lets teardown and timeout paths
  // find and unlink the waiter without scanning every semaphore.
  Sm* blocked_on() const { return blocked_on_; }
  void set_blocked_on(Sm* sm) { blocked_on_ = sm; }
  std::uint64_t timeout_event() const { return timeout_event_; }
  void set_timeout_event(std::uint64_t id) { timeout_event_ = id; }

  Sc* sc() const { return sc_; }
  void set_sc(Sc* sc) { sc_ = sc; }

  // Re-entrance guard for local handler ECs.
  bool busy() const { return busy_; }
  void set_busy(bool b) { busy_ = b; }

 private:
  // snapshot-x-list(Ec): kind_, pd_, cpu_, utcb_, handler_, step_fn_,
  //   gstate_, ctl_, vtlb_, evt_base_, block_state_, wake_status_,
  //   blocked_on_, timeout_event_, sc_, busy_
  Kind kind_;
  std::shared_ptr<Pd> pd_;
  std::uint32_t cpu_;
  Utcb utcb_;
  Handler handler_;
  StepFn step_fn_;
  hw::GuestState gstate_;
  hw::VmControls ctl_;
  std::shared_ptr<Vtlb> vtlb_;
  CapSel evt_base_ = kInvalidSel;
  BlockState block_state_ = BlockState::kRunnable;
  Status wake_status_ = Status::kSuccess;
  Sm* blocked_on_ = nullptr;
  std::uint64_t timeout_event_ = 0;
  Sc* sc_ = nullptr;
  bool busy_ = false;
};

// Scheduling context: couples a time quantum with a priority (§5.1).
class Sc : public KObject {
 public:
  Sc(std::shared_ptr<Ec> ec, std::uint8_t prio, sim::Cycles quantum)
      : KObject(ObjType::kSc), ec_(std::move(ec)), prio_(prio), quantum_(quantum),
        left_(quantum) {}

  Ec& ec() { return *ec_; }
  std::shared_ptr<Ec> ec_ref() { return ec_; }
  std::uint8_t prio() const { return prio_; }
  sim::Cycles quantum() const { return quantum_; }
  // Home core: an SC is bound to its EC's CPU (Hedron model) and only
  // ever sits in that core's run queue.
  std::uint32_t cpu() const { return ec_->cpu(); }

  sim::Cycles left() const { return left_; }
  void Refill() { left_ = quantum_; }
  // Snapshot overlay only.
  void SetLeft(sim::Cycles c) { left_ = c; }
  // Consume cycles; returns true if the quantum is depleted.
  bool Consume(sim::Cycles c) {
    left_ = c >= left_ ? 0 : left_ - c;
    return left_ == 0;
  }

  bool queued() const { return queued_; }
  void set_queued(bool q) { queued_ = q; }

 private:
  // snapshot-x-list(Sc): ec_, prio_, quantum_, left_, queued_
  std::shared_ptr<Ec> ec_;
  std::uint8_t prio_;
  sim::Cycles quantum_;
  sim::Cycles left_;
  bool queued_ = false;
};

// Portal: a dedicated entry point into a protection domain (§5.2).
class Pt : public KObject {
 public:
  Pt(std::shared_ptr<Ec> handler, Mtd m, std::uint64_t id)
      : KObject(ObjType::kPt), handler_(std::move(handler)), mtd_(m), id_(id) {}

  Ec& handler() { return *handler_; }
  Mtd mtd() const { return mtd_; }
  void set_mtd(Mtd m) { mtd_ = m; }
  std::uint64_t id() const { return id_; }

 private:
  // snapshot-x-list(Pt): handler_, mtd_, id_
  std::shared_ptr<Ec> handler_;
  Mtd mtd_;
  std::uint64_t id_;
};

// Counting semaphore; also the kernel's signalling mechanism for hardware
// interrupts (§5, Semaphore).
class Sm : public KObject {
 public:
  explicit Sm(std::uint64_t initial) : KObject(ObjType::kSm), counter_(initial) {}

  std::uint64_t counter() const { return counter_; }
  void set_counter(std::uint64_t c) { counter_ = c; }

  std::deque<std::shared_ptr<Ec>>& waiters() { return waiters_; }

  // GSI binding (set by assign_gsi).
  bool bound_gsi_valid() const { return gsi_ != ~0u; }
  std::uint32_t bound_gsi() const { return gsi_; }
  void bind_gsi(std::uint32_t gsi) { gsi_ = gsi; }

  // Domain that created the semaphore. When it dies, waiters from other
  // domains are woken with kAbort.
  Pd* owner() const { return owner_; }
  void set_owner(Pd* pd) { owner_ = pd; }

 private:
  // snapshot-x-list(Sm): counter_, waiters_, gsi_, owner_
  std::uint64_t counter_;
  std::deque<std::shared_ptr<Ec>> waiters_;
  std::uint32_t gsi_ = ~0u;
  Pd* owner_ = nullptr;
};

}  // namespace nova::hv

#endif  // SRC_HV_OBJECTS_H_
