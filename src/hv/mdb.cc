#include "src/hv/mdb.h"

#include <algorithm>

namespace nova::hv {

MdbNode* Mdb::CreateRoot(Pd* pd, CrdKind kind, std::uint64_t base,
                         std::uint64_t count, std::uint8_t perms) {
  auto node = std::make_unique<MdbNode>();
  node->pd = pd;
  node->kind = kind;
  node->base = base;
  node->count = count;
  node->perms = perms;
  MdbNode* raw = node.get();
  nodes_.push_back(std::move(node));
  return raw;
}

MdbNode* Mdb::Delegate(MdbNode* parent, Pd* pd, std::uint64_t base,
                       std::uint64_t count, std::uint8_t perms,
                       std::uint64_t src_base) {
  MdbNode* node = CreateRoot(pd, parent->kind, base, count, perms);
  node->src_base = src_base;
  node->parent = parent;
  parent->children.push_back(node);
  return node;
}

MdbNode* Mdb::Find(const Pd* pd, CrdKind kind, std::uint64_t base,
                   std::uint64_t count) {
  for (const auto& node : nodes_) {
    if (node->pd == pd && node->kind == kind && node->ContainsRange(base, count)) {
      return node.get();
    }
  }
  return nullptr;
}

void Mdb::RevokeSubtree(MdbNode* node, const UnmapFn& unmap) {
  // Depth-first: remove leaves before their parents.
  while (!node->children.empty()) {
    MdbNode* child = node->children.back();
    RevokeSubtree(child, unmap);
  }
  if (unmap) {
    unmap(*node);
  }
  Erase(node);
}

void Mdb::Erase(MdbNode* node) {
  if (node->parent != nullptr) {
    auto& siblings = node->parent->children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), node),
                   siblings.end());
  }
  for (MdbNode* child : node->children) {
    child->parent = nullptr;  // Orphaned (only during DropDomain bulk paths).
  }
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [node](const auto& p) { return p.get() == node; });
  if (it != nodes_.end()) {
    nodes_.erase(it);
  }
}

void Mdb::Revoke(const Pd* pd, const Crd& crd, bool include_self,
                 const UnmapFn& unmap) {
  // Collect first: revocation mutates the node list.
  std::vector<MdbNode*> hits;
  for (const auto& node : nodes_) {
    if (node->pd == pd && node->kind == crd.kind &&
        node->Overlaps(crd.base, crd.count())) {
      hits.push_back(node.get());
    }
  }
  for (MdbNode* node : hits) {
    // The node may already be gone if it was a descendant of an earlier hit.
    const bool alive = std::any_of(nodes_.begin(), nodes_.end(),
                                   [node](const auto& p) { return p.get() == node; });
    if (!alive) {
      continue;
    }
    if (include_self) {
      RevokeSubtree(node, unmap);
    } else {
      // Only children whose *source range* overlaps the revoked CRD fall;
      // siblings derived from other parts of this holding are untouched.
      for (;;) {
        MdbNode* victim = nullptr;
        for (MdbNode* child : node->children) {
          if (child->SrcOverlaps(crd.base, crd.count())) {
            victim = child;
            break;
          }
        }
        if (victim == nullptr) {
          break;
        }
        RevokeSubtree(victim, unmap);
      }
    }
  }
}

void Mdb::DropDomain(const Pd* pd, const UnmapFn& unmap) {
  for (;;) {
    MdbNode* victim = nullptr;
    for (const auto& node : nodes_) {
      if (node->pd == pd) {
        victim = node.get();
        break;
      }
    }
    if (victim == nullptr) {
      return;
    }
    RevokeSubtree(victim, unmap);
  }
}

}  // namespace nova::hv
