#include "src/hv/mdb.h"

#include <algorithm>
#include <unordered_map>

namespace nova::hv {

MdbNode* Mdb::CreateRoot(Pd* pd, CrdKind kind, std::uint64_t base,
                         std::uint64_t count, std::uint8_t perms) {
  auto node = std::make_unique<MdbNode>();
  node->pd = pd;
  node->kind = kind;
  node->base = base;
  node->count = count;
  node->perms = perms;
  MdbNode* raw = node.get();
  nodes_.push_back(std::move(node));
  return raw;
}

MdbNode* Mdb::Delegate(MdbNode* parent, Pd* pd, std::uint64_t base,
                       std::uint64_t count, std::uint8_t perms,
                       std::uint64_t src_base) {
  MdbNode* node = CreateRoot(pd, parent->kind, base, count, perms);
  node->src_base = src_base;
  node->parent = parent;
  parent->children.push_back(node);
  return node;
}

MdbNode* Mdb::Find(const Pd* pd, CrdKind kind, std::uint64_t base,
                   std::uint64_t count) {
  for (const auto& node : nodes_) {
    if (node->pd == pd && node->kind == kind && node->ContainsRange(base, count)) {
      return node.get();
    }
  }
  return nullptr;
}

void Mdb::RevokeSubtree(MdbNode* node, const UnmapFn& unmap) {
  // Depth-first: remove leaves before their parents.
  while (!node->children.empty()) {
    MdbNode* child = node->children.back();
    RevokeSubtree(child, unmap);
  }
  if (unmap) {
    unmap(*node);
  }
  Erase(node);
}

void Mdb::Erase(MdbNode* node) {
  if (node->parent != nullptr) {
    auto& siblings = node->parent->children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), node),
                   siblings.end());
  }
  for (MdbNode* child : node->children) {
    child->parent = nullptr;  // Orphaned (only during DropDomain bulk paths).
  }
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [node](const auto& p) { return p.get() == node; });
  if (it != nodes_.end()) {
    nodes_.erase(it);
  }
}

void Mdb::Revoke(const Pd* pd, const Crd& crd, bool include_self,
                 const UnmapFn& unmap) {
  // Collect first: revocation mutates the node list.
  std::vector<MdbNode*> hits;
  for (const auto& node : nodes_) {
    if (node->pd == pd && node->kind == crd.kind &&
        node->Overlaps(crd.base, crd.count())) {
      hits.push_back(node.get());
    }
  }
  for (MdbNode* node : hits) {
    // The node may already be gone if it was a descendant of an earlier hit.
    const bool alive = std::any_of(nodes_.begin(), nodes_.end(),
                                   [node](const auto& p) { return p.get() == node; });
    if (!alive) {
      continue;
    }
    if (include_self) {
      RevokeSubtree(node, unmap);
    } else {
      // Only children whose *source range* overlaps the revoked CRD fall;
      // siblings derived from other parts of this holding are untouched.
      for (;;) {
        MdbNode* victim = nullptr;
        for (MdbNode* child : node->children) {
          if (child->SrcOverlaps(crd.base, crd.count())) {
            victim = child;
            break;
          }
        }
        if (victim == nullptr) {
          break;
        }
        RevokeSubtree(victim, unmap);
      }
    }
  }
}

Status Mdb::SaveState(sim::SnapWriter& w, const PdOidOf& oid_of) const {
  // Node identity on the wire is the index in nodes_. The pointer-keyed
  // index is lookup-only — it is never iterated, so bucket order cannot
  // reach the encoding.
  // nova-lint: allow(determinism) -- lookup-only table, never iterated
  std::unordered_map<const MdbNode*, std::uint64_t> index;
  index.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    index[nodes_[i].get()] = i;
  }
  w.U64(nodes_.size());
  for (const auto& node : nodes_) {
    const std::uint64_t pd_oid = oid_of(node->pd);
    if (pd_oid == ~0ull) {
      return Status::kBadParameter;  // Node owned by an unregistered domain.
    }
    w.U64(pd_oid);
    w.U8(static_cast<std::uint8_t>(node->kind));
    w.U64(node->base);
    w.U64(node->count);
    w.U8(node->perms);
    w.U64(node->src_base);
    w.U64(node->parent != nullptr ? index.at(node->parent) : ~0ull);
    w.U32(static_cast<std::uint32_t>(node->children.size()));
    for (const MdbNode* child : node->children) {
      w.U64(index.at(child));
    }
  }
  return Status::kSuccess;
}

Status Mdb::LoadState(sim::SnapReader& r, const PdByOid& pd_of) {
  nodes_.clear();
  const std::uint64_t n = r.U64();
  nodes_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<MdbNode>());
  }
  std::vector<std::vector<std::uint64_t>> children(n);
  std::vector<std::uint64_t> parents(n, ~0ull);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    MdbNode* node = nodes_[i].get();
    node->pd = pd_of(r.U64());
    node->kind = static_cast<CrdKind>(r.U8());
    node->base = r.U64();
    node->count = r.U64();
    node->perms = r.U8();
    node->src_base = r.U64();
    parents[i] = r.U64();
    const std::uint32_t nc = r.U32();
    children[i].resize(nc);
    for (std::uint32_t c = 0; c < nc && r.ok(); ++c) {
      children[i][c] = r.U64();
    }
    if (node->pd == nullptr) {
      r.Fail();
    }
  }
  if (!r.ok()) {
    nodes_.clear();
    return r.status();
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parents[i] != ~0ull) {
      if (parents[i] >= n) {
        r.Fail();
        return r.status();
      }
      nodes_[i]->parent = nodes_[parents[i]].get();
    }
    for (const std::uint64_t c : children[i]) {
      if (c >= n) {
        r.Fail();
        return r.status();
      }
      nodes_[i]->children.push_back(nodes_[c].get());
    }
  }
  return r.status();
}

void Mdb::DropDomain(const Pd* pd, const UnmapFn& unmap) {
  for (;;) {
    MdbNode* victim = nullptr;
    for (const auto& node : nodes_) {
      if (node->pd == pd) {
        victim = node.get();
        break;
      }
    }
    if (victim == nullptr) {
      return;
    }
    RevokeSubtree(victim, unmap);
  }
}

}  // namespace nova::hv
