#include "src/hv/scheduler.h"

#include <algorithm>

namespace nova::hv {

void RunQueue::Enqueue(Sc* sc, bool at_head) {
  if (sc->queued()) {
    return;
  }
  auto& level = levels_[sc->prio()];
  if (at_head) {
    level.push_front(sc);
  } else {
    level.push_back(sc);
  }
  bitmap_[sc->prio() / 64] |= 1ull << (sc->prio() % 64);
  sc->set_queued(true);
}

void RunQueue::Remove(Sc* sc) {
  if (!sc->queued()) {
    return;
  }
  auto& level = levels_[sc->prio()];
  level.erase(std::remove(level.begin(), level.end(), sc), level.end());
  if (level.empty()) {
    bitmap_[sc->prio() / 64] &= ~(1ull << (sc->prio() % 64));
  }
  sc->set_queued(false);
}

int RunQueue::TopPriority() const {
  for (int word = 3; word >= 0; --word) {
    if (bitmap_[word] != 0) {
      return word * 64 + 63 - __builtin_clzll(bitmap_[word]);
    }
  }
  return -1;
}

Sc* RunQueue::Peek() const {
  const int prio = TopPriority();
  return prio < 0 ? nullptr : levels_[prio].front();
}

void RunQueue::CollectOrdered(std::vector<Sc*>* out) const {
  for (int prio = 255; prio >= 0; --prio) {
    for (Sc* sc : levels_[prio]) {
      out->push_back(sc);
    }
  }
}

void RunQueue::Clear() {
  for (auto& level : levels_) {
    level.clear();
  }
  bitmap_ = {};
}

Sc* RunQueue::Dequeue() {
  const int prio = TopPriority();
  if (prio < 0) {
    return nullptr;
  }
  auto& level = levels_[prio];
  Sc* sc = level.front();
  level.pop_front();
  if (level.empty()) {
    bitmap_[prio / 64] &= ~(1ull << (prio % 64));
  }
  sc->set_queued(false);
  return sc;
}

}  // namespace nova::hv
