// Dirty-page tracking for one VM: the primitive behind iterative pre-copy
// migration (services/migration) and incremental checkpointing.
//
// Two mechanisms, selectable per log:
//
//   kAssist       — a PhysMem write-observer records the host frames every
//                   successful Write/Zero touches (PML-style hardware
//                   assist). Catches all dirtying agents — guest stores,
//                   host-side WriteGuestRaw, device DMA — at zero simulated
//                   cost, and is invisible to trace digests: arming it
//                   perturbs nothing the simulation can observe.
//   kWriteProtect — clears pte::kWritable on every writable leaf of the
//                   VM's nested page table; the first guest write to a
//                   page then faults (kEptViolation), the kernel marks the
//                   page dirty, restores write permission and retries.
//                   This is the classic shadow dirty-bit scheme: faithful
//                   to real EPT write-protection hardware, but the extra
//                   faults and TLB flushes are visible in traces and
//                   cycle counts (documented in DESIGN.md §13).
//
// Collection intersects the dirty set with the VM's guest-physical
// mappings in ascending page order, so rounds are deterministic.
//
// One DirtyLog may be armed per Machine in kAssist mode (the write
// observer is a single slot); write-protect logs are per-VM.
#ifndef SRC_HV_DIRTY_LOG_H_
#define SRC_HV_DIRTY_LOG_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/status.h"
#include "src/sim/trace.h"

namespace nova::hv {

class Ec;
class Hypervisor;
class Pd;

enum class DirtyTrackMode : std::uint8_t {
  kAssist,
  kWriteProtect,
};

class DirtyLog {
 public:
  DirtyLog(Hypervisor* hv, Pd* vm, DirtyTrackMode mode);
  ~DirtyLog();

  DirtyLog(const DirtyLog&) = delete;
  DirtyLog& operator=(const DirtyLog&) = delete;

  // Start tracking: clears the dirty set; kAssist installs the PhysMem
  // write observer, kWriteProtect strips write permission from every
  // writable leaf of the VM's nested table and flushes its TLB tag.
  void Arm();

  // Stop tracking and restore the untracked state (observer removed /
  // write permissions restored). The dirty set survives until Arm().
  void Disarm();

  // Append the dirty guest page numbers (ascending) to `out` and reset
  // for the next round; in kWriteProtect mode the collected pages are
  // re-protected so the next round starts tracking immediately.
  void CollectAndReset(std::vector<std::uint64_t>* out);

  // Write-protect fault hook, called from the kEptViolation path before
  // VMM dispatch. True when the fault was this log's protection trap: the
  // page is marked dirty, write permission is restored, and the vCPU
  // retries the instruction without a VMM round-trip.
  bool HandleWriteFault(Ec* vcpu, std::uint64_t gpa);

  DirtyTrackMode mode() const { return mode_; }
  Pd* vm() const { return vm_; }
  bool armed() const { return armed_; }
  std::uint64_t faults() const { return faults_; }

 private:
  // Write-protect one guest page (leaf granularity; superpage leaves are
  // protected once and fault once for the whole superpage).
  void Protect(std::uint64_t page);
  // Flush the VM's tag from every core's TLB and every engine's nested
  // TLB, so no stale writable translation survives (re)arming.
  void FlushVmTlbs();

  // snapshot-x-list(DirtyLog): hv_, vm_, mode_, fault_counter_, tracer_,
  //   trace_fault_, armed_, faults_, dirty_frames_, dirty_pages_
  //   (rebuilt per migration round; never armed across a checkpoint)
  Hypervisor* hv_;
  Pd* vm_;
  DirtyTrackMode mode_;
  sim::Counter& fault_counter_;  // "dirty-log-faults" in the kernel registry.
  sim::Tracer* tracer_;
  std::uint16_t trace_fault_;  // Interned "dirty-log fault".
  bool armed_ = false;
  std::uint64_t faults_ = 0;
  std::unordered_set<std::uint64_t> dirty_frames_;  // kAssist: host frames.
  std::unordered_set<std::uint64_t> dirty_pages_;   // kWriteProtect: guest pages.
};

}  // namespace nova::hv

#endif  // SRC_HV_DIRTY_LOG_H_
