#include "src/hv/spaces.h"

#include <algorithm>
#include <vector>

namespace nova::hv {
namespace {

std::uint64_t PteFlags(std::uint8_t perms) {
  std::uint64_t flags = hw::pte::kUser;
  if ((perms & perm::kWrite) != 0) {
    flags |= hw::pte::kWritable;
  }
  return flags;
}

}  // namespace

Status MemSpace::Map(std::uint64_t page, std::uint64_t hpa_page,
                     std::uint64_t count, std::uint8_t perms, bool large) {
  const std::uint64_t large_size = hw::LargePageSize(table_.mode());
  const std::uint64_t large_pages = large_size / hw::kPageSize;
  // A failed table-node allocation surfaces from the walker as kOverflow;
  // report it as kNoMem and unmap the partially-built prefix so a failed
  // Map leaves no half-installed range behind.
  if (large) {
    if (page % large_pages != 0 || hpa_page % large_pages != 0 ||
        count % large_pages != 0) {
      return Status::kBadParameter;
    }
    for (std::uint64_t off = 0; off < count; off += large_pages) {
      const Status s =
          table_.Map((page + off) << hw::kPageShift, (hpa_page + off) << hw::kPageShift,
                     large_size, PteFlags(perms), alloc_);
      if (!Ok(s)) {
        for (std::uint64_t undo = 0; undo < off; undo += large_pages) {
          (void)table_.Unmap((page + undo) << hw::kPageShift);
        }
        return s == Status::kOverflow ? Status::kNoMem : s;
      }
    }
  } else {
    for (std::uint64_t off = 0; off < count; ++off) {
      const Status s =
          table_.Map((page + off) << hw::kPageShift, (hpa_page + off) << hw::kPageShift,
                     hw::kPageSize, PteFlags(perms), alloc_);
      if (!Ok(s)) {
        for (std::uint64_t undo = 0; undo < off; ++undo) {
          (void)table_.Unmap((page + undo) << hw::kPageShift);
        }
        return s == Status::kOverflow ? Status::kNoMem : s;
      }
    }
  }
  for (std::uint64_t off = 0; off < count; ++off) {
    pages_[page + off] = Holding{hpa_page + off, perms, large};
  }
  return Status::kSuccess;
}

Status MemSpace::Unmap(std::uint64_t page, std::uint64_t count) {
  const std::uint64_t large_pages =
      hw::LargePageSize(table_.mode()) / hw::kPageSize;
  for (std::uint64_t off = 0; off < count; ++off) {
    auto it = pages_.find(page + off);
    if (it == pages_.end()) {
      continue;
    }
    if (it->second.large) {
      // Revoking any part of a superpage drops the whole superpage.
      const std::uint64_t base = (page + off) & ~(large_pages - 1);
      (void)table_.Unmap(base << hw::kPageShift);
      for (std::uint64_t i = 0; i < large_pages; ++i) {
        pages_.erase(base + i);
      }
    } else {
      (void)table_.Unmap((page + off) << hw::kPageShift);
      pages_.erase(it);
    }
  }
  return Status::kSuccess;
}

std::uint8_t MemSpace::PermsFor(std::uint64_t page) const {
  auto it = pages_.find(page);
  return it == pages_.end() ? 0 : it->second.perms;
}

std::uint64_t MemSpace::HpaPageFor(std::uint64_t page) const {
  auto it = pages_.find(page);
  return it == pages_.end() ? ~0ull : it->second.hpa_page;
}

void MemSpace::ForEachMapping(const MappingVisitor& visit) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(pages_.size());
  // nova-lint: allow(determinism) -- collected then sorted before visiting
  for (const auto& [page, holding] : pages_) {
    keys.push_back(page);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t page : keys) {
    const Holding& h = pages_.at(page);
    visit(page, h.hpa_page, h.perms, h.large);
  }
}

Status MemSpace::SaveState(sim::SnapWriter& w) const {
  w.U64(pages_.size());
  ForEachMapping([&w](std::uint64_t page, std::uint64_t hpa_page,
                      std::uint8_t perms, bool large) {
    w.U64(page);
    w.U64(hpa_page);
    w.U8(perms);
    w.Bool(large);
  });
  return Status::kSuccess;
}

Status MemSpace::LoadState(sim::SnapReader& r) {
  pages_.clear();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t page = r.U64();
    const std::uint64_t hpa_page = r.U64();
    const std::uint8_t perms = r.U8();
    const bool large = r.Bool();
    pages_[page] = Holding{hpa_page, perms, large};
  }
  return r.status();
}

Status IoSpace::SaveState(sim::SnapWriter& w) const {
  for (std::size_t word = 0; word < 1024; ++word) {
    std::uint64_t bits = 0;
    for (std::size_t b = 0; b < 64; ++b) {
      if (bitmap_.test(word * 64 + b)) {
        bits |= 1ull << b;
      }
    }
    w.U64(bits);
  }
  return Status::kSuccess;
}

Status IoSpace::LoadState(sim::SnapReader& r) {
  for (std::size_t word = 0; word < 1024; ++word) {
    const std::uint64_t bits = r.U64();
    for (std::size_t b = 0; b < 64; ++b) {
      bitmap_.set(word * 64 + b, (bits & (1ull << b)) != 0);
    }
  }
  return r.status();
}

void IoSpace::Grant(std::uint64_t port, std::uint64_t count) {
  for (std::uint64_t p = port; p < port + count && p < 65536; ++p) {
    bitmap_.set(p);
  }
}

void IoSpace::Revoke(std::uint64_t port, std::uint64_t count) {
  for (std::uint64_t p = port; p < port + count && p < 65536; ++p) {
    bitmap_.reset(p);
  }
}

}  // namespace nova::hv
