// User thread control block: the per-EC message buffer.
//
// IPC payloads are exchanged by copying words between the sender's and the
// receiver's UTCB (charged per word). For virtualization events, the UTCB
// carries the subset of architectural state selected by the portal's MTD.
#ifndef SRC_HV_UTCB_H_
#define SRC_HV_UTCB_H_

#include <array>
#include <cstdint>

#include "src/hv/types.h"

namespace nova::hv {

constexpr std::uint32_t kUtcbWords = 64;
constexpr std::uint32_t kUtcbTypedItems = 4;

// Architectural state snapshot moved on VM exits (selected by MTD).
struct ArchState {
  std::array<std::uint64_t, 8> regs{};
  std::uint64_t rip = 0;
  std::uint64_t insn_len = 16;
  bool interrupts_enabled = false;
  std::uint64_t cr3 = 0;
  std::uint64_t cr2 = 0;
  bool paging = false;
  // Exit qualification.
  std::uint64_t qual_gva = 0;
  std::uint64_t qual_gpa = 0;
  std::uint64_t qual = 0;       // Port/CR value/width/is-write packed by kernel.
  // Injection control (written by the VMM on reply).
  bool inject_pending = false;
  std::uint8_t inject_vector = 0;
  bool request_intr_window = false;
  bool halted = false;
  std::uint64_t tsc = 0;
};

// A typed item requests a resource delegation as part of a message.
struct TypedItem {
  Crd crd;                 // What the sender offers (from its spaces).
  std::uint64_t hotspot;   // Where the receiver wants it (base unit index).
};

struct Utcb {
  // Untyped payload.
  std::uint32_t untyped = 0;  // Number of valid words.
  std::array<std::uint64_t, kUtcbWords> words{};

  // Typed items (resource delegations riding on the message).
  std::uint32_t num_typed = 0;
  std::array<TypedItem, kUtcbTypedItems> typed{};

  // Receiver-side delegation window: delegations are only accepted into
  // this range of the receiver's space.
  Crd recv_window{};

  // Architectural state area (VM-exit messages).
  ArchState arch{};
  Mtd mtd = 0;  // Which arch groups are valid / should be written back.

  void Clear() {
    untyped = 0;
    num_typed = 0;
    mtd = 0;
  }
};

}  // namespace nova::hv

#endif  // SRC_HV_UTCB_H_
