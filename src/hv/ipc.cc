// Portal IPC: call/reply with scheduling-context donation (§5.2).
//
// A call looks up the portal capability, traverses the portal into the
// handler execution context, copies the message words between UTCBs and —
// because the caller donates its scheduling context — runs the handler
// immediately on the caller's time slice. The handler's return is the
// reply; its UTCB contents travel back to the caller.
#include "src/hv/kernel.h"

#include <optional>

namespace nova::hv {

void Hypervisor::TransferWords(Utcb& from, Utcb& to, std::uint32_t cpu_id) {
  const std::uint32_t n = std::min(from.untyped, kUtcbWords);
  to.untyped = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    to.words[i] = from.words[i];
  }
  Charge(cpu_id, static_cast<sim::Cycles>(n) * cpu(cpu_id).model().word_copy);
}

Status Hypervisor::ApplyTypedItems(Pd* sender, Pd* receiver, Utcb& msg,
                                   std::uint32_t cpu_id) {
  for (std::uint32_t i = 0; i < std::min(msg.num_typed, kUtcbTypedItems); ++i) {
    TypedItem item = msg.typed[i];
    // The receiver only accepts delegations into its declared window (§6).
    const Crd& window = msg.recv_window;
    if (window.kind != item.crd.kind) {
      return Status::kBadParameter;
    }
    if (item.crd.kind == CrdKind::kObj && item.hotspot == ~0ull) {
      item.hotspot = window.base;  // Receiver-chosen capability slot.
    }
    if (item.hotspot < window.base ||
        item.hotspot + item.crd.count() > window.base + window.count()) {
      return Status::kBadParameter;
    }
    // Reuse the delegation machinery; the sender's own capability space
    // anchors the transfer. A dedicated self-capability for the receiver
    // is synthesized on the fly.
    const CapSel tmp_sel = sender->caps().FindFree(kSelFirstFree);
    if (tmp_sel == kInvalidSel) {
      return Status::kOverflow;
    }
    // Install a temporary non-delegable PD capability for the receiver in
    // the sender's space so Delegate() can resolve it.
    Status s = Status::kSuccess;
    {
      auto receiver_ref = std::static_pointer_cast<Pd>(
          receiver == root_pd_.get() ? root_pd_ : nullptr);
      if (receiver_ref == nullptr) {
        // Look the receiver up via its own self-capability.
        receiver_ref = std::static_pointer_cast<Pd>(
            receiver->caps().LookupRef(kSelOwnPd));
      }
      if (receiver_ref == nullptr) {
        return Status::kBadCapability;
      }
      (void)sender->caps().Insert(tmp_sel, Capability{receiver_ref, 0});
      s = Delegate(sender, tmp_sel, item.crd, item.hotspot);
      (void)sender->caps().Remove(tmp_sel);
    }
    if (!Ok(s)) {
      return s;
    }
  }
  return Status::kSuccess;
}

Status Hypervisor::Call(Ec* caller_ec, CapSel pt_sel) {
  const std::uint32_t cpu_id = caller_ec->cpu();
  // sysenter path.
  Charge(cpu_id, cpu(cpu_id).model().syscall_entry);
  Charge(cpu_id, costs_.hypercall_dispatch);

  Pt* pt = LookupCharged<Pt>(&caller_ec->pd(), pt_sel, ObjType::kPt, perm::kCall,
                             cpu_id);
  if (pt == nullptr) {
    Charge(cpu_id, cpu(cpu_id).model().syscall_exit);
    return Status::kBadCapability;
  }
  const Status s = DoCall(caller_ec, pt);
  Charge(cpu_id, cpu(cpu_id).model().syscall_exit);
  return s;
}

Status Hypervisor::DoCall(Ec* caller_ec, Pt* portal) {
  const std::uint32_t cpu_id = caller_ec->cpu();
  Ec& handler = portal->handler();
  // A portal whose handler lives on another core is reached by xcall: the
  // caller's scheduling context is handed off to the handler's home core
  // (Hedron's helping/migration semantics) and the caller resumes when
  // the reply IPI lands. `run_cpu` is where the handler executes and
  // where its work is charged.
  const std::uint32_t run_cpu = handler.cpu();
  const bool xcall = run_cpu != cpu_id;
  if (handler.busy()) {
    return Status::kBusy;  // One in-flight call per handler EC.
  }
  if (handler.dead() || handler.pd().dead()) {
    return Status::kAbort;  // The service's domain has been torn down.
  }

  const bool cross_as = &handler.pd() != &caller_ec->pd();
  const hw::CpuModel& model = cpu(run_cpu).model();

  // "IPC Call" span: portal traversal through reply, ended on every exit
  // path (including typed-item transfer errors) by the scope guard. The
  // counter pairs with the span's Begin record, so it is bumped here.
  ctr_.ipc_calls.Add();
  sim::ScopedSpan ipc_span(
      tracer_, sim::TraceCat::kIpc, trc_.ipc_call,
      static_cast<std::uint8_t>(cpu_id),
      [this, cpu_id] { return cpu(cpu_id).NowPs(); }, portal->id(),
      cross_as ? 1 : 0);

  // The caller blocks until the remote side replies: on every exit path,
  // pull its clock up to the handler core's completion time.
  struct ResumeGuard {
    Hypervisor* hv;
    std::uint32_t caller_cpu, run_cpu;
    bool active;
    ~ResumeGuard() {
      if (active) {
        hv->cpu(caller_cpu).AdvanceToPs(hv->cpu(run_cpu).NowPs());
      }
    }
  } resume{this, cpu_id, run_cpu, xcall};

  // "IPC Xcall" span on the handler's core: IPI receipt through reply.
  using RemoteClock = std::function<sim::PicoSeconds()>;
  std::optional<sim::ScopedSpan<RemoteClock>> xcall_span;
  if (xcall) {
    ctr_.ipc_xcalls.Add();  // Pairs with the xcall span's Begin record.
    ChargeLock(xcall_lock_, cpu_id);
    Charge(cpu_id, costs_.xcall_send);
    cpu(run_cpu).AdvanceToPs(cpu(cpu_id).NowPs());  // IPI flight.
    xcall_span.emplace(
        tracer_, sim::TraceCat::kIpc, trc_.ipc_xcall,
        static_cast<std::uint8_t>(run_cpu),
        RemoteClock([this, run_cpu] { return cpu(run_cpu).NowPs(); }),
        portal->id(), cpu_id);
    Charge(run_cpu, costs_.xcall_receive);
  }

  // Portal traversal + switch to the handler, donating the caller's SC.
  Charge(run_cpu, costs_.portal_traversal + costs_.context_switch);
  if (cross_as) {
    // Host address spaces carry no TLB tags (§9 discusses exactly this):
    // the page-table root write flushes, and hot entries are re-walked.
    Charge(run_cpu, costs_.addr_space_switch +
                       costs_.ipc_refill_entries * model.tlb_refill_entry);
    cpu(run_cpu).tlb().FlushTag(hw::kHostTag);
  }
  TransferWords(caller_ec->utcb(), handler.utcb(), run_cpu);
  if (caller_ec->utcb().num_typed > 0) {
    // Delegations ride on the message and are consumed by the kernel; the
    // receiver window was declared by the handler ahead of time.
    Utcb msg = caller_ec->utcb();
    msg.recv_window = handler.utcb().recv_window;
    const Status s = ApplyTypedItems(&caller_ec->pd(), &handler.pd(), msg, run_cpu);
    caller_ec->utcb().num_typed = 0;
    if (!Ok(s)) {
      return s;
    }
  }
  handler.utcb().num_typed = 0;  // The handler composes its own reply items.

  // The handler runs on the donated scheduling context; the kernel creates
  // a reply capability and switches directly without invoking the
  // scheduler. Our synchronous model realizes donation exactly: the
  // handler executes here, charging its home CPU.
  handler.set_busy(true);
  handler.handler()(portal->id());
  handler.set_busy(false);

  // Reply: return the donated SC and transfer the reply message.
  Charge(run_cpu, costs_.reply_path + costs_.context_switch);
  if (cross_as) {
    Charge(run_cpu, costs_.addr_space_switch +
                       costs_.ipc_refill_entries * model.tlb_refill_entry);
    cpu(run_cpu).tlb().FlushTag(hw::kHostTag);
  }
  TransferWords(handler.utcb(), caller_ec->utcb(), run_cpu);
  if (handler.utcb().num_typed > 0) {
    Utcb msg = handler.utcb();
    msg.recv_window = caller_ec->utcb().recv_window;
    const Status s = ApplyTypedItems(&handler.pd(), &caller_ec->pd(), msg, run_cpu);
    if (!Ok(s)) {
      return s;
    }
    handler.utcb().num_typed = 0;
  }
  return Status::kSuccess;
}

}  // namespace nova::hv
