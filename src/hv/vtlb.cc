// The virtual-TLB algorithm: software shadow paging for hardware without
// nested paging (§5.3).
//
// On a shadow-table miss the subsystem parses the real multi-level guest
// page table. Guest page tables contain guest-physical addresses; the
// paper's trick of running the hypervisor on the VM's host page table
// makes the GPA->HPA step free for the software walk (the MMU reinterprets
// GPAs as HVAs) — modelled here as a single memory access per guest level
// plus a recovery path for guest PTEs pointing outside mapped
// guest-physical memory. The final translation is installed in the shadow
// table of the *active context* — the shadow tree for the guest address
// space currently loaded in CR3 — which is what the hardware walker uses.
//
// With VtlbPolicy::cache_contexts the subsystem keeps one such context per
// guest CR3 value it has seen, so a MOV CR3 back to a known address space
// reuses the already-filled tree (§8.4's big lever). With
// VtlbPolicy::use_vpid on a tagged-TLB part, each context also keeps its
// own hardware tag, so the switch leaves the hardware TLB intact too.
#include "src/hv/vtlb.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace nova::hv {

namespace {

// Free every page-table frame strictly below `table`. `level` is the level
// of the entries *referenced by* `table` (Levels(mode) - 1 for the root):
// entries at level >= 1 point to child tables, which are freed; level-0
// entries and superpage leaves map data pages the vTLB does not own.
void FreeShadowLevel(hw::PhysMem& mem, hw::PagingMode mode, hw::PhysAddr table,
                     int level, const std::function<void(hw::PhysAddr)>& free) {
  const int entries = mode == hw::PagingMode::kTwoLevel ? 1024 : 512;
  const int esize = mode == hw::PagingMode::kTwoLevel ? 4 : 8;
  for (int i = 0; i < entries; ++i) {
    std::uint64_t entry = 0;
    (void)mem.Read(table + static_cast<std::uint64_t>(i) * esize, &entry, esize);
    if (!(entry & hw::pte::kPresent) || (entry & hw::pte::kLarge)) {
      continue;
    }
    if (level > 1) {
      FreeShadowLevel(mem, mode, entry & hw::pte::kAddrMask, level - 1, free);
    }
    if (level >= 1) {
      free(entry & hw::pte::kAddrMask);
    }
  }
}

}  // namespace

Vtlb::Vtlb(Env env, VtlbPolicy policy)
    : env_(std::move(env)),
      policy_(policy),
      flushes_(env_.stats->counter("vTLB Flush")),
      switch_hits_(env_.stats->counter("vTLB Context Hit")),
      switch_misses_(env_.stats->counter("vTLB Context Miss")),
      evictions_(env_.stats->counter("vTLB Context Evict")),
      pressure_evictions_(env_.stats->counter("vTLB Pressure Evict")),
      trace_flush_(env_.tracer->Intern("vTLB Flush")),
      trace_hit_(env_.tracer->Intern("vTLB Context Hit")),
      trace_miss_(env_.tracer->Intern("vTLB Context Miss")),
      trace_evict_(env_.tracer->Intern("vTLB Context Evict")),
      trace_pevict_(env_.tracer->Intern("vTLB Pressure Evict")) {}

Vtlb::~Vtlb() { DropAllContexts(); }

hw::PhysAddr Vtlb::AllocCounted(Context& ctx) {
  const hw::PhysAddr frame = env_.alloc();
  if (frame == 0) {
    return 0;  // Quota or pool exhausted; the caller runs the pressure path.
  }
  ++ctx.frames;
  ++frames_held_;
  return frame;
}

hw::PhysAddr Vtlb::AllocWithPressure(Context& ctx) {
  hw::PhysAddr frame = AllocCounted(ctx);
  while (frame == 0 && EvictOneForPressure(&ctx)) {
    frame = AllocCounted(ctx);
  }
  return frame;
}

bool Vtlb::EvictOneForPressure(const Context* keep) {
  // last_use stamps come from ++use_clock_ and are unique, so the
  // strict-min victim is walk-order independent.
  auto victim = contexts_.end();
  // nova-lint: allow(determinism) -- strict min over unique last_use stamps
  for (auto it = contexts_.begin(); it != contexts_.end(); ++it) {
    if (&it->second == keep || it->second.root == 0) {
      continue;
    }
    if (has_active_ && it->first == active_key_) {
      continue;  // The hardware is walking the active tree: pinned.
    }
    if (victim == contexts_.end() ||
        it->second.last_use < victim->second.last_use) {
      victim = it;
    }
  }
  if (victim == contexts_.end()) {
    return false;
  }
  Context& ctx = victim->second;
  if (ctx.tag != env_.ctl->base_tag) {
    env_.cpu->tlb().FlushTag(ctx.tag);
    env_.tags->Release(ctx.tag);
  }
  FreeTree(ctx);
  pressure_evictions_.Add();
  Mark(trace_pevict_, victim->first);
  contexts_.erase(victim);
  return true;
}

void Vtlb::FreeBelowRoot(Context& ctx) {
  if (ctx.root == 0) {
    return;
  }
  FreeShadowLevel(*env_.mem, env_.ctl->nested_format, ctx.root,
                  hw::Levels(env_.ctl->nested_format) - 1,
                  [this, &ctx](hw::PhysAddr f) {
                    env_.free(f);
                    --ctx.frames;
                    --frames_held_;
                  });
  (void)env_.mem->Zero(ctx.root, hw::kPageSize);
}

void Vtlb::FreeTree(Context& ctx) {
  if (ctx.root == 0) {
    return;
  }
  FreeBelowRoot(ctx);
  env_.free(ctx.root);
  ctx.root = 0;
  --ctx.frames;
  --frames_held_;
}

Vtlb::Context& Vtlb::ContextFor(std::uint64_t key, bool* created) {
  auto [it, inserted] = contexts_.try_emplace(key);
  Context& ctx = it->second;
  if (inserted) {
    // Non-tagged parts (and the naive policy) keep running under the VM's
    // identity tag; tagged parts give each guest address space its own
    // VPID so its hardware-TLB entries survive dormancy.
    ctx.tag = tagged() ? env_.tags->Allocate() : env_.ctl->base_tag;
  }
  if (created != nullptr) {
    *created = inserted;
  }
  return ctx;
}

Vtlb::Context& Vtlb::EnsureActive() {
  const std::uint64_t key = ActiveKey();
  Context& ctx = ContextFor(key, nullptr);
  if (ctx.root == 0) {
    // The seed adopted a caller-provided shadow root; keep that quirk so a
    // VMM that pre-allocates the root sees identical behaviour. A root
    // equal to the host table means "unset" (the kNested default).
    if (env_.ctl->nested_root != 0 && env_.ctl->nested_root != env_.pd_root &&
        !has_active_) {
      ctx.root = env_.ctl->nested_root;
      ++ctx.frames;
      ++frames_held_;
    } else {
      // May stay 0 under hard quota pressure; Resolve reports kNoMem and
      // the next attempt retries once frames have been credited back.
      ctx.root = AllocWithPressure(ctx);
    }
  }
  active_key_ = key;
  has_active_ = true;
  ctx.last_use = ++use_clock_;
  env_.ctl->nested_root = ctx.root;
  if (tagged()) {
    env_.ctl->tag = ctx.tag;
  }
  return ctx;
}

Vtlb::Outcome Vtlb::Resolve(const hw::VmExit& exit, std::uint64_t* gpa_out) {
  hw::Cpu& c = *env_.cpu;
  const hw::CpuModel& model = c.model();
  hw::GuestState& gs = *env_.gs;
  hw::PhysMem& mem = *env_.mem;
  hw::PageTable& host = *env_.host;

  // Determining the cause of the vTLB miss requires reading six VMCS
  // fields (§8.4, Figure 9).
  const sim::Cycles read_cost = model.vmread != 0 ? model.vmread : model.mem_access;
  c.Charge(6 * read_cost);
  c.Charge(env_.costs->vtlb_fill_base);

  const std::uint64_t gva = exit.gva;
  const hw::Access access{.write = exit.is_write, .user = false};

  std::uint64_t gpa = gva;
  std::uint64_t guest_page = hw::kPageSize;
  std::uint64_t guest_leaf = hw::pte::kWritable | hw::pte::kUser;
  if (gs.paging) {
    // Parse the real guest page table (two-level 32-bit format).
    std::uint64_t table_gpa = gs.cr3;
    for (int level = 1; level >= 0; --level) {
      const int shift = 12 + 10 * level;
      const std::uint64_t index = (gva >> shift) & 0x3ff;
      const std::uint64_t entry_gpa = table_gpa + index * 4;

      // GPA->HPA for the entry: with the host-page-table trick this is a
      // direct dereference; the walk below models the recovery check for
      // entries pointing outside the mapped guest-physical space.
      const hw::WalkResult hx =
          host.Walk(entry_gpa, hw::Access{.write = false}, /*set_ad=*/false);
      if (!Ok(hx.status)) {
        *gpa_out = entry_gpa;
        return Outcome::kHostFault;
      }
      std::uint64_t entry = 0;
      (void)mem.Read(hx.pa, &entry, 4);
      c.Charge(model.mem_access);  // One dereference per guest level.

      if (!(entry & hw::pte::kPresent) ||
          (access.write && !(entry & hw::pte::kWritable))) {
        return Outcome::kGuestFault;
      }

      const bool leaf = level == 0 || (entry & hw::pte::kLarge) != 0;
      std::uint64_t updated = entry | hw::pte::kAccessed;
      if (leaf && access.write) {
        updated |= hw::pte::kDirty;
      }
      if (updated != entry) {
        (void)mem.Write(hx.pa, &updated, 4);
        c.Charge(model.mem_access);
        entry = updated;
      }
      if (leaf) {
        guest_page = level == 0 ? hw::kPageSize : (4ull << 20);
        gpa = (entry & hw::pte::kAddrMask & ~(guest_page - 1)) |
              (gva & (guest_page - 1));
        guest_leaf = entry;
        break;
      }
      table_gpa = entry & hw::pte::kAddrMask;
    }
  }

  // Final GPA->HPA through the VM's host page table.
  const hw::WalkResult fx = host.Walk(gpa, access, /*set_ad=*/false);
  c.Charge(static_cast<sim::Cycles>(fx.accesses) * model.mem_access);
  if (!Ok(fx.status)) {
    *gpa_out = gpa;
    return Outcome::kHostFault;  // Unmapped guest-physical: MMIO.
  }

  // Install the shadow entry. Writable only once the guest dirty bit is
  // set, so the first write to a clean page faults back into the vTLB.
  const bool host_writable = (fx.pte & hw::pte::kWritable) != 0;
  const bool guest_writable = (guest_leaf & hw::pte::kWritable) != 0;
  const bool dirty = (guest_leaf & hw::pte::kDirty) != 0 || !gs.paging;
  std::uint64_t flags = hw::pte::kUser;
  if (guest_writable && host_writable && (dirty || access.write)) {
    flags |= hw::pte::kWritable | hw::pte::kDirty;
  }

  Context& ctx = EnsureActive();
  *gpa_out = gpa;
  if (ctx.root == 0) {
    return Outcome::kNoMem;  // Could not even build a shadow root.
  }
  hw::PageTable shadow(&mem, env_.ctl->nested_format, ctx.root);
  // Shadow granularity: a guest superpage can only be shadowed at host
  // superpage granularity when the backing is contiguous; install the
  // covering 4 KiB entry otherwise. We install 4 KiB entries always —
  // simple and faithful to fill-on-demand behaviour.
  const std::uint64_t page_va = gva & ~(hw::kPageSize - 1);
  const std::uint64_t page_pa = fx.pa & ~(hw::kPageSize - 1);
  // Graceful degradation: a failed table-node allocation evicts one LRU
  // dormant context and retries the fill, so a quota-pinched VM trades
  // re-fills for forward progress instead of failing.
  Status ms = shadow.Map(page_va, page_pa, hw::kPageSize, flags,
                         [this, &ctx] { return AllocCounted(ctx); });
  while (ms == Status::kOverflow && EvictOneForPressure(&ctx)) {
    ms = shadow.Map(page_va, page_pa, hw::kPageSize, flags,
                    [this, &ctx] { return AllocCounted(ctx); });
  }
  c.Charge(env_.costs->map_page);
  if (!Ok(ms)) {
    return Outcome::kNoMem;
  }
  EnforceFrameBudget();
  return Outcome::kFilled;
}

void Vtlb::HandleMovCr3(std::uint64_t new_cr3) {
  if (!policy_.cache_contexts) {
    env_.gs->cr3 = new_cr3;
    Flush();
    return;
  }

  const bool same_space = has_active_ && new_cr3 == active_key_;
  env_.gs->cr3 = new_cr3;
  if (same_space) {
    // Reloading the running CR3 is x86's explicit full-flush request for
    // this address space: the guest may have edited its page tables, so
    // the shadow tree cannot be trusted.
    auto it = contexts_.find(active_key_);
    if (it == contexts_.end() || it->second.root == 0) {
      return;
    }
    FreeBelowRoot(it->second);
    env_.cpu->tlb().FlushTag(it->second.tag);
    env_.cpu->Charge(env_.cpu->model().tlb_flush);
    flushes_.Add();
    Mark(trace_flush_, new_cr3);
    return;
  }

  // Switch to the context for the new address space; build it lazily on
  // first sight. Switching to a *different* CR3 needs no shadow
  // invalidation: page-table edits must be advertised by INVLPG or a
  // same-CR3 reload, both of which we apply across all cached contexts.
  bool created = false;
  Context& ctx = ContextFor(new_cr3, &created);
  const bool hit = !created && ctx.root != 0;
  if (ctx.root == 0) {
    // Under pressure the root may stay unallocated; the vCPU's next page
    // fault retries through Resolve once frames are credited back.
    ctx.root = AllocWithPressure(ctx);
  }
  (hit ? switch_hits_ : switch_misses_).Add();
  Mark(hit ? trace_hit_ : trace_miss_, new_cr3);
  active_key_ = new_cr3;
  has_active_ = true;
  ctx.last_use = ++use_clock_;
  env_.ctl->nested_root = ctx.root;
  if (tagged()) {
    // Tagged TLB: the context switch is a tag switch. The dormant
    // context's hardware-TLB entries stay live under its own VPID.
    env_.ctl->tag = ctx.tag;
  } else {
    // Untagged part: all contexts share the VM's identity tag, so the
    // hardware TLB must be flushed exactly as on real silicon.
    env_.ctl->tag = env_.ctl->base_tag;
    env_.cpu->tlb().FlushTag(env_.ctl->base_tag);
    env_.cpu->Charge(env_.cpu->model().tlb_flush);
  }
  env_.cpu->Charge(env_.costs->addr_space_switch);
  EnforceFrameBudget();
}

void Vtlb::HandleInvlpg(std::uint64_t gva) {
  if (contexts_.empty() && env_.ctl->nested_root == 0) {
    return;
  }
  if (contexts_.empty()) {
    // Adopted-root quirk before the first fill: operate on the raw root.
    hw::PageTable shadow(env_.mem, env_.ctl->nested_format,
                         env_.ctl->nested_root);
    (void)shadow.Unmap(gva & ~(hw::kPageSize - 1));
    env_.cpu->tlb().FlushVa(env_.ctl->tag, gva);
    env_.cpu->Charge(env_.costs->map_page);
    return;
  }
  // Invalidation invariant: the translation dies in *every* cached
  // context and under every context tag, so it cannot resurface when a
  // dormant address space is switched back in. Each context's shadow tree
  // is disjoint, Unmap frees nothing, and Charge sums — order cannot show.
  // nova-lint: allow(determinism) -- independent per-context ops, no frees
  for (auto& [key, ctx] : contexts_) {
    if (ctx.root == 0) {
      continue;
    }
    hw::PageTable shadow(env_.mem, env_.ctl->nested_format, ctx.root);
    (void)shadow.Unmap(gva & ~(hw::kPageSize - 1));
    env_.cpu->tlb().FlushVa(ctx.tag, gva);
    env_.cpu->Charge(env_.costs->map_page);
  }
}

void Vtlb::Flush() {
  if (contexts_.empty() && env_.ctl->nested_root == 0) {
    return;
  }
  if (contexts_.empty()) {
    // Adopted root, nothing tracked yet: free its subtree in place. Its
    // frames were never counted against this Vtlb, so bypass the counted
    // helpers. A root equal to the host table means "unset" — never free
    // the VM's real page table.
    if (env_.ctl->nested_root == env_.pd_root) {
      return;
    }
    FreeShadowLevel(*env_.mem, env_.ctl->nested_format, env_.ctl->nested_root,
                    hw::Levels(env_.ctl->nested_format) - 1,
                    [this](hw::PhysAddr f) { env_.free(f); });
    (void)env_.mem->Zero(env_.ctl->nested_root, hw::kPageSize);
  } else {
    // Drop every dormant context outright; the active tree survives with
    // a zeroed root because the VMCS still points at it. Walk in sorted
    // key order: tags and frames are released into LIFO free lists, so a
    // hash-order walk would tie recycling order to the hash seed.
    std::vector<std::uint64_t> keys;
    keys.reserve(contexts_.size());
    // nova-lint: allow(determinism) -- key collection, sorted before use
    for (const auto& [key, ctx] : contexts_) {
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t key : keys) {
      const auto it = contexts_.find(key);
      Context& ctx = it->second;
      if (has_active_ && key == active_key_) {
        FreeBelowRoot(ctx);
        continue;
      }
      if (ctx.tag != env_.ctl->base_tag) {
        env_.cpu->tlb().FlushTag(ctx.tag);
        env_.tags->Release(ctx.tag);
      }
      FreeTree(ctx);
      contexts_.erase(it);
    }
  }
  env_.cpu->tlb().FlushTag(env_.ctl->tag);
  env_.cpu->Charge(env_.cpu->model().tlb_flush);
  flushes_.Add();
  Mark(trace_flush_, env_.gs->cr3);
}

void Vtlb::DropAllContexts() {
  // Sorted key order: tag and frame recycling below feeds LIFO free
  // lists, so the walk order decides what later allocations hand out.
  std::vector<std::uint64_t> keys;
  keys.reserve(contexts_.size());
  // nova-lint: allow(determinism) -- key collection, sorted before use
  for (const auto& [key, ctx] : contexts_) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    Context& ctx = contexts_.at(key);
    if (ctx.tag != env_.ctl->base_tag) {
      // Released tags are recycled, so their hardware-TLB entries must not
      // outlive the context. The VM's identity tag is the revoke path's
      // responsibility.
      env_.cpu->tlb().FlushTag(ctx.tag);
      env_.tags->Release(ctx.tag);
    }
    FreeTree(ctx);
  }
  contexts_.clear();
  has_active_ = false;
  env_.ctl->nested_root = 0;
  env_.ctl->tag = env_.ctl->base_tag;
}

void Vtlb::EnforceFrameBudget() {
  if (!policy_.cache_contexts) {
    return;
  }
  while (frames_held_ > policy_.max_cached_frames) {
    // Evict the least recently used *dormant* context; the active tree is
    // pinned (the hardware is walking it). last_use stamps are unique
    // (++use_clock_), so the strict-min victim is walk-order independent.
    auto victim = contexts_.end();
    // nova-lint: allow(determinism) -- strict min over unique last_use stamps
    for (auto it = contexts_.begin(); it != contexts_.end(); ++it) {
      if (has_active_ && it->first == active_key_) {
        continue;
      }
      if (victim == contexts_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == contexts_.end()) {
      return;  // Only the active context remains; it may exceed the budget.
    }
    Context& ctx = victim->second;
    if (ctx.tag != env_.ctl->base_tag) {
      env_.cpu->tlb().FlushTag(ctx.tag);
      env_.tags->Release(ctx.tag);
    }
    FreeTree(ctx);
    evictions_.Add();
    Mark(trace_evict_, victim->first);
    contexts_.erase(victim);
  }
}

Status Vtlb::SaveState(sim::SnapWriter& w) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(contexts_.size());
  // nova-lint: allow(determinism) -- collected then sorted before encoding
  for (const auto& [key, ctx] : contexts_) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  w.U64(keys.size());
  for (const std::uint64_t key : keys) {
    const Context& ctx = contexts_.at(key);
    w.U64(key);
    w.U64(ctx.root);
    w.U16(ctx.tag);
    w.U64(ctx.frames);
    w.U64(ctx.last_use);
  }
  w.U64(active_key_);
  w.Bool(has_active_);
  w.U64(use_clock_);
  w.U64(frames_held_);
  return Status::kSuccess;
}

Status Vtlb::LoadState(sim::SnapReader& r) {
  // The twin's lazily-attached Vtlb starts empty (fresh boot never ran a
  // shadow fill before the checkpoint overlay), so there is nothing to
  // free here; the restored roots are pool frames whose contents arrived
  // with the memory section.
  contexts_.clear();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t key = r.U64();
    Context ctx;
    ctx.root = r.U64();
    ctx.tag = r.U16();
    ctx.frames = r.U64();
    ctx.last_use = r.U64();
    contexts_[key] = ctx;
  }
  active_key_ = r.U64();
  has_active_ = r.Bool();
  use_clock_ = r.U64();
  frames_held_ = r.U64();
  return r.status();
}

}  // namespace nova::hv
