// The virtual-TLB algorithm: software shadow paging for hardware without
// nested paging (§5.3).
//
// On a shadow-table miss the kernel parses the real multi-level guest page
// table. Guest page tables contain guest-physical addresses; the paper's
// trick of running the hypervisor on the VM's host page table makes the
// GPA->HPA step free for the software walk (the MMU reinterprets GPAs as
// HVAs) — modelled here as a single memory access per guest level plus a
// recovery path for guest PTEs pointing outside mapped guest-physical
// memory. The final translation is installed in the per-vCPU shadow table
// that the hardware walker uses.
#include "src/hv/kernel.h"

namespace nova::hv {

hw::PhysAddr Hypervisor::ShadowRootFor(Ec* vcpu) {
  hw::VmControls& ctl = vcpu->ctl();
  if (ctl.nested_root == 0 ||
      ctl.nested_root == vcpu->pd().mem_space().root()) {
    ctl.nested_root = AllocFrame();
  }
  return ctl.nested_root;
}

Hypervisor::VtlbOutcome Hypervisor::VtlbResolve(Ec* vcpu, const hw::VmExit& exit,
                                                std::uint64_t* gpa_out) {
  const std::uint32_t cpu_id = vcpu->cpu();
  hw::Cpu& c = cpu(cpu_id);
  const hw::CpuModel& model = c.model();
  hw::GuestState& gs = vcpu->gstate();
  hw::PhysMem& mem = machine_->mem();
  hw::PageTable& host = vcpu->pd().mem_space().table();

  // Determining the cause of the vTLB miss requires reading six VMCS
  // fields (§8.4, Figure 9).
  const sim::Cycles read_cost = model.vmread != 0 ? model.vmread : model.mem_access;
  c.Charge(6 * read_cost);
  c.Charge(costs_.vtlb_fill_base);

  const std::uint64_t gva = exit.gva;
  const hw::Access access{.write = exit.is_write, .user = false};

  std::uint64_t gpa = gva;
  std::uint64_t guest_page = hw::kPageSize;
  std::uint64_t guest_leaf = hw::pte::kWritable | hw::pte::kUser;
  if (gs.paging) {
    // Parse the real guest page table (two-level 32-bit format).
    std::uint64_t table_gpa = gs.cr3;
    for (int level = 1; level >= 0; --level) {
      const int shift = 12 + 10 * level;
      const std::uint64_t index = (gva >> shift) & 0x3ff;
      const std::uint64_t entry_gpa = table_gpa + index * 4;

      // GPA->HPA for the entry: with the host-page-table trick this is a
      // direct dereference; the walk below models the recovery check for
      // entries pointing outside the mapped guest-physical space.
      const hw::WalkResult hx =
          host.Walk(entry_gpa, hw::Access{.write = false}, /*set_ad=*/false);
      if (!Ok(hx.status)) {
        *gpa_out = entry_gpa;
        return VtlbOutcome::kHostFault;
      }
      std::uint64_t entry = 0;
      mem.Read(hx.pa, &entry, 4);
      c.Charge(model.mem_access);  // One dereference per guest level.

      if (!(entry & hw::pte::kPresent) ||
          (access.write && !(entry & hw::pte::kWritable))) {
        return VtlbOutcome::kGuestFault;
      }

      const bool leaf = level == 0 || (entry & hw::pte::kLarge) != 0;
      std::uint64_t updated = entry | hw::pte::kAccessed;
      if (leaf && access.write) {
        updated |= hw::pte::kDirty;
      }
      if (updated != entry) {
        mem.Write(hx.pa, &updated, 4);
        c.Charge(model.mem_access);
        entry = updated;
      }
      if (leaf) {
        guest_page = level == 0 ? hw::kPageSize : (4ull << 20);
        gpa = (entry & hw::pte::kAddrMask & ~(guest_page - 1)) |
              (gva & (guest_page - 1));
        guest_leaf = entry;
        break;
      }
      table_gpa = entry & hw::pte::kAddrMask;
    }
  }

  // Final GPA->HPA through the VM's host page table.
  const hw::WalkResult fx = host.Walk(gpa, access, /*set_ad=*/false);
  c.Charge(static_cast<sim::Cycles>(fx.accesses) * model.mem_access);
  if (!Ok(fx.status)) {
    *gpa_out = gpa;
    return VtlbOutcome::kHostFault;  // Unmapped guest-physical: MMIO.
  }

  // Install the shadow entry. Writable only once the guest dirty bit is
  // set, so the first write to a clean page faults back into the vTLB.
  const bool host_writable = (fx.pte & hw::pte::kWritable) != 0;
  const bool guest_writable = (guest_leaf & hw::pte::kWritable) != 0;
  const bool dirty = (guest_leaf & hw::pte::kDirty) != 0 || !gs.paging;
  std::uint64_t flags = hw::pte::kUser;
  if (guest_writable && host_writable && (dirty || access.write)) {
    flags |= hw::pte::kWritable | hw::pte::kDirty;
  }

  hw::PageTable shadow(&mem, vcpu->ctl().nested_format, ShadowRootFor(vcpu));
  // Shadow granularity: a guest superpage can only be shadowed at host
  // superpage granularity when the backing is contiguous; install the
  // covering 4 KiB entry otherwise. We install 4 KiB entries always —
  // simple and faithful to fill-on-demand behaviour.
  const std::uint64_t page_va = gva & ~(hw::kPageSize - 1);
  const std::uint64_t page_pa = fx.pa & ~(hw::kPageSize - 1);
  shadow.Map(page_va, page_pa, hw::kPageSize, flags, [this] { return AllocFrame(); });
  c.Charge(costs_.map_page);

  *gpa_out = gpa;
  return VtlbOutcome::kFilled;
}

namespace {

// Free all frames of a shadow tree below (not including) the root.
void FreeShadowLevel(hw::PhysMem& mem, hw::PagingMode mode, hw::PhysAddr table,
                     int level, const std::function<void(hw::PhysAddr)>& free) {
  const int entries = mode == hw::PagingMode::kTwoLevel ? 1024 : 512;
  const int esize = mode == hw::PagingMode::kTwoLevel ? 4 : 8;
  for (int i = 0; i < entries; ++i) {
    std::uint64_t entry = 0;
    mem.Read(table + static_cast<std::uint64_t>(i) * esize, &entry, esize);
    if (!(entry & hw::pte::kPresent) || (entry & hw::pte::kLarge)) {
      continue;
    }
    if (level > 1) {
      FreeShadowLevel(mem, mode, entry & hw::pte::kAddrMask, level - 1, free);
      free(entry & hw::pte::kAddrMask);
    }
  }
}

}  // namespace

void Hypervisor::VtlbFlush(Ec* vcpu) {
  const std::uint32_t cpu_id = vcpu->cpu();
  hw::VmControls& ctl = vcpu->ctl();
  if (ctl.nested_root == 0) {
    return;
  }
  hw::PhysMem& mem = machine_->mem();
  FreeShadowLevel(mem, ctl.nested_format, ctl.nested_root,
                  hw::Levels(ctl.nested_format) - 1,
                  [this](hw::PhysAddr f) { FreeFrame(f); });
  mem.Zero(ctl.nested_root, hw::kPageSize);
  cpu(cpu_id).tlb().FlushTag(ctl.tag);
  Charge(cpu_id, cpu(cpu_id).model().tlb_flush);
  stats_.counter("vTLB Flush").Add();
}

void Hypervisor::VtlbHandleMovCr3(Ec* vcpu, std::uint64_t new_cr3) {
  vcpu->gstate().cr3 = new_cr3;
  VtlbFlush(vcpu);
}

void Hypervisor::VtlbHandleInvlpg(Ec* vcpu, std::uint64_t gva) {
  hw::VmControls& ctl = vcpu->ctl();
  if (ctl.nested_root == 0) {
    return;
  }
  hw::PageTable shadow(&machine_->mem(), ctl.nested_format, ctl.nested_root);
  shadow.Unmap(gva & ~(hw::kPageSize - 1));
  cpu(vcpu->cpu()).tlb().FlushVa(ctl.tag, gva);
  Charge(vcpu->cpu(), costs_.map_page);
}

}  // namespace nova::hv
