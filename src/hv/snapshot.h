// Shared serialization helpers for architectural guest state.
//
// The kernel's own checkpoint (snapshot.cc) serializes every vCPU's
// GuestState; user-level components that checkpoint a guest — the VMM
// supervisor's periodic recovery checkpoints, the migration driver —
// reuse the same encoding so the two never drift.
#ifndef SRC_HV_SNAPSHOT_H_
#define SRC_HV_SNAPSHOT_H_

#include "src/hw/guest_state.h"
#include "src/sim/snapshot.h"

namespace nova::hv {

void SaveGuestState(sim::SnapWriter& w, const hw::GuestState& g);
void LoadGuestState(sim::SnapReader& r, hw::GuestState* g);

}  // namespace nova::hv

#endif  // SRC_HV_SNAPSHOT_H_
