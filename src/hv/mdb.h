// Mapping database: the delegation tree behind recursive revocation.
//
// Every resource grant (memory range, port range, object capability range)
// creates a node whose parent is the grant it was derived from. Revoking a
// node removes the entire subtree from all affected protection domains —
// the recursive address-space model the paper inherits from L4 (§6).
#ifndef SRC_HV_MDB_H_
#define SRC_HV_MDB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/hv/types.h"
#include "src/sim/snapshot.h"
#include "src/sim/status.h"

namespace nova::hv {

class Pd;

struct MdbNode {
  Pd* pd = nullptr;
  CrdKind kind = CrdKind::kNull;
  std::uint64_t base = 0;   // Page / port / selector index in `pd`'s space.
  std::uint64_t count = 0;
  std::uint8_t perms = 0;
  // Index of this grant in the *parent's* space (delegation may relocate:
  // a host frame appears at a guest-physical hotspot). Used to decide
  // which children a partial revocation of the parent's range hits.
  std::uint64_t src_base = 0;
  MdbNode* parent = nullptr;
  std::vector<MdbNode*> children;

  bool Overlaps(std::uint64_t b, std::uint64_t c) const {
    return base < b + c && b < base + count;
  }
  bool SrcOverlaps(std::uint64_t b, std::uint64_t c) const {
    return src_base < b + c && b < src_base + count;
  }
  bool ContainsRange(std::uint64_t b, std::uint64_t c) const {
    return b >= base && b + c <= base + count;
  }
};

class Mdb {
 public:
  // Called for each revoked node so the kernel can unmap the resource from
  // the owning domain's space.
  using UnmapFn = std::function<void(const MdbNode&)>;

  // Record an initial (rootless) resource grant, e.g. boot-time assignment
  // of all memory to the root partition manager.
  MdbNode* CreateRoot(Pd* pd, CrdKind kind, std::uint64_t base,
                      std::uint64_t count, std::uint8_t perms);

  // Record a delegation derived from `parent`. `src_base` is where the
  // granted range sits in the parent's space.
  MdbNode* Delegate(MdbNode* parent, Pd* pd, std::uint64_t base,
                    std::uint64_t count, std::uint8_t perms,
                    std::uint64_t src_base);

  // Find a node owned by `pd` whose range contains [base, base+count).
  MdbNode* Find(const Pd* pd, CrdKind kind, std::uint64_t base,
                std::uint64_t count);

  // Revoke all nodes owned by `pd` overlapping the CRD. Children are
  // always revoked; the nodes themselves only when `include_self`.
  // `unmap` runs for every removed node.
  void Revoke(const Pd* pd, const Crd& crd, bool include_self,
              const UnmapFn& unmap);

  // Drop every node owned by `pd` (domain destruction), revoking all
  // derived delegations in other domains.
  void DropDomain(const Pd* pd, const UnmapFn& unmap);

  std::size_t node_count() const { return nodes_.size(); }

  // Serialization addresses owning domains by oid and nodes by their index
  // in `nodes_` (scan order is part of Find's semantics, so the list order
  // is restored exactly). LoadState rebuilds the whole database; nothing
  // outside Mdb holds MdbNode pointers across calls.
  using PdOidOf = std::function<std::uint64_t(const Pd*)>;
  using PdByOid = std::function<Pd*(std::uint64_t)>;
  Status SaveState(sim::SnapWriter& w, const PdOidOf& oid_of) const;
  Status LoadState(sim::SnapReader& r, const PdByOid& pd_of);

 private:
  void RevokeSubtree(MdbNode* node, const UnmapFn& unmap);
  void Erase(MdbNode* node);

  // snapshot-x-list(Mdb): nodes_
  std::vector<std::unique_ptr<MdbNode>> nodes_;
};

}  // namespace nova::hv

#endif  // SRC_HV_MDB_H_
