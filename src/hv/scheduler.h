// Per-CPU preemptive priority-driven round-robin scheduler (§5.1).
//
// One runqueue per CPU: 256 priority levels, FIFO within a level. The
// scheduler is oblivious to whether an execution context is a thread or a
// virtual CPU.
#ifndef SRC_HV_SCHEDULER_H_
#define SRC_HV_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>

#include "src/hv/objects.h"

namespace nova::hv {

class RunQueue {
 public:
  // Add `sc` at the tail (or head, after an undepleted preemption) of its
  // priority level.
  void Enqueue(Sc* sc, bool at_head = false);
  void Remove(Sc* sc);

  // Highest-priority SC, removed from the queue; nullptr when empty.
  Sc* Dequeue();
  // Peek without removing.
  Sc* Peek() const;

  bool empty() const { return bitmap_[0] == 0 && bitmap_[1] == 0 &&
                              bitmap_[2] == 0 && bitmap_[3] == 0; }

  // Highest runnable priority, or -1.
  int TopPriority() const;

 private:
  std::array<std::deque<Sc*>, 256> levels_;
  std::array<std::uint64_t, 4> bitmap_{};
};

}  // namespace nova::hv

#endif  // SRC_HV_SCHEDULER_H_
