// Per-CPU preemptive priority-driven round-robin scheduler (§5.1).
//
// One runqueue per CPU: 256 priority levels, FIFO within a level. The
// scheduler is oblivious to whether an execution context is a thread or a
// virtual CPU.
#ifndef SRC_HV_SCHEDULER_H_
#define SRC_HV_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/hv/objects.h"

namespace nova::hv {

class RunQueue {
 public:
  // Add `sc` at the tail (or head, after an undepleted preemption) of its
  // priority level.
  void Enqueue(Sc* sc, bool at_head = false);
  void Remove(Sc* sc);

  // Highest-priority SC, removed from the queue; nullptr when empty.
  Sc* Dequeue();
  // Peek without removing.
  Sc* Peek() const;

  bool empty() const { return bitmap_[0] == 0 && bitmap_[1] == 0 &&
                              bitmap_[2] == 0 && bitmap_[3] == 0; }

  // Highest runnable priority, or -1.
  int TopPriority() const;

  // Snapshot support: enumerate queued SCs from the highest priority level
  // down, FIFO within a level (the exact dequeue order), and drop every
  // entry without touching the SCs' queued flags (the object overlay owns
  // those).
  void CollectOrdered(std::vector<Sc*>* out) const;
  void Clear();

 private:
  // snapshot-x-list(RunQueue): levels_, bitmap_
  std::array<std::deque<Sc*>, 256> levels_;
  std::array<std::uint64_t, 4> bitmap_{};
};

// Everything the kernel keeps per core: the ready queue, the SC whose EC
// is on the CPU right now, and the vCPUs halted on this core waiting for
// an interrupt. All mutation goes through methods so that call sites are
// forced to name the core they operate on (see nova-lint per-cpu-state).
class CpuState {
 public:
  // Ready set.
  void Enqueue(Sc* sc, bool at_head = false) { runqueue_.Enqueue(sc, at_head); }
  // Absent is fine (the SC may have been dequeued already): Remove here
  // is best-effort by design.
  void Remove(Sc* sc) { (void)runqueue_.Remove(sc); }
  Sc* PickNext() { return runqueue_.Dequeue(); }
  Sc* PeekReady() const { return runqueue_.Peek(); }
  bool HasReady() const { return !runqueue_.empty(); }
  int TopPriority() const { return runqueue_.TopPriority(); }

  // The SC currently executing on this core (nullptr between dispatches).
  Sc* current() const { return current_; }
  void SetCurrent(Sc* sc) { current_ = sc; }

  // Halted-vCPU parking lot. A halted vCPU stays bound to its home core
  // and is woken there, never migrated.
  void ParkHalted(std::shared_ptr<Ec> vcpu) {
    halted_vcpus_.push_back(std::move(vcpu));
  }
  std::vector<std::shared_ptr<Ec>>& halted() { return halted_vcpus_; }
  const std::vector<std::shared_ptr<Ec>>& halted() const { return halted_vcpus_; }
  bool has_halted() const { return !halted_vcpus_.empty(); }

  // Snapshot support: enumerate / reset the ready queue (see RunQueue).
  void CollectReady(std::vector<Sc*>* out) const { runqueue_.CollectOrdered(out); }
  void ClearReady() { runqueue_.Clear(); }

  // A core is runnable when it has (or is about to get) work whose local
  // clock must bound device time.
  bool Runnable() const { return current_ != nullptr || !runqueue_.empty(); }

 private:
  // snapshot-x-list(CpuState): runqueue_, current_, halted_vcpus_
  RunQueue runqueue_;
  Sc* current_ = nullptr;
  std::vector<std::shared_ptr<Ec>> halted_vcpus_;
};

}  // namespace nova::hv

#endif  // SRC_HV_SCHEDULER_H_
