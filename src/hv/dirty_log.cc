#include "src/hv/dirty_log.h"

#include <algorithm>

#include "src/hv/kernel.h"

namespace nova::hv {

DirtyLog::DirtyLog(Hypervisor* hv, Pd* vm, DirtyTrackMode mode)
    : hv_(hv),
      vm_(vm),
      mode_(mode),
      fault_counter_(hv->stats().counter("dirty-log-faults")),
      tracer_(&hv->machine().tracer()),
      trace_fault_(tracer_->Intern("dirty-log fault")) {}

DirtyLog::~DirtyLog() {
  Disarm();
  if (hv_->dirty_log() == this) {
    hv_->SetDirtyLog(nullptr);
  }
}

void DirtyLog::FlushVmTlbs() {
  const hw::TlbTag tag = vm_->vm_tag();
  hw::Machine& machine = hv_->machine();
  for (std::uint32_t i = 0; i < machine.num_cpus(); ++i) {
    machine.cpu(i).tlb().FlushTag(tag);
    hv_->engine(i).FlushNestedTlb(tag);
  }
}

void DirtyLog::Protect(std::uint64_t page) {
  (void)vm_->mem_space().table().SetLeafFlags(page << hw::kPageShift,
                                              /*set=*/0,
                                              /*clear=*/hw::pte::kWritable);
}

void DirtyLog::Arm() {
  dirty_frames_.clear();
  dirty_pages_.clear();
  if (mode_ == DirtyTrackMode::kAssist) {
    // Record the host frames every successful write touches. A single
    // observer slot exists per machine; arming claims it.
    hv_->machine().mem().set_write_observer(
        [this](hw::PhysAddr addr, std::uint64_t len) {
          const std::uint64_t first = hw::FrameOf(addr);
          const std::uint64_t last = hw::FrameOf(addr + len - 1);
          for (std::uint64_t f = first; f <= last; ++f) {
            dirty_frames_.insert(f);
          }
        });
  } else {
    hv_->SetDirtyLog(this);
    vm_->mem_space().ForEachMapping(
        [this](std::uint64_t page, std::uint64_t hpa_page, std::uint8_t perms,
               bool large) {
          (void)hpa_page;
          (void)large;
          if ((perms & perm::kWrite) != 0) {
            Protect(page);
          }
        });
    // Stale writable translations must not bypass the trap.
    FlushVmTlbs();
  }
  armed_ = true;
}

void DirtyLog::Disarm() {
  if (!armed_) {
    return;
  }
  if (mode_ == DirtyTrackMode::kAssist) {
    hv_->machine().mem().set_write_observer(nullptr);
  } else {
    // Restore write permission everywhere the VM legitimately holds it.
    hw::PageTable& table = vm_->mem_space().table();
    vm_->mem_space().ForEachMapping(
        [&table](std::uint64_t page, std::uint64_t hpa_page,
                 std::uint8_t perms, bool large) {
          (void)hpa_page;
          (void)large;
          if ((perms & perm::kWrite) != 0) {
            (void)table.SetLeafFlags(page << hw::kPageShift,
                                     /*set=*/hw::pte::kWritable, /*clear=*/0);
          }
        });
    FlushVmTlbs();
  }
  armed_ = false;
}

void DirtyLog::CollectAndReset(std::vector<std::uint64_t>* out) {
  if (mode_ == DirtyTrackMode::kAssist) {
    // Intersect dirty host frames with the VM's guest mappings: catches
    // lazily-mapped pages and filters frames owned by other domains.
    vm_->mem_space().ForEachMapping(
        [this, out](std::uint64_t page, std::uint64_t hpa_page,
                    std::uint8_t perms, bool large) {
          (void)perms;
          (void)large;
          if (dirty_frames_.count(hpa_page) != 0) {
            out->push_back(page);
          }
        });
    dirty_frames_.clear();
    return;
  }
  // nova-lint: allow(determinism) -- drained into a vector and sorted
  std::vector<std::uint64_t> pages(dirty_pages_.begin(), dirty_pages_.end());
  std::sort(pages.begin(), pages.end());
  for (const std::uint64_t page : pages) {
    out->push_back(page);
    if (armed_) {
      Protect(page);  // Next round starts tracking immediately.
    }
  }
  if (armed_ && !pages.empty()) {
    FlushVmTlbs();
  }
  dirty_pages_.clear();
}

bool DirtyLog::HandleWriteFault(Ec* vcpu, std::uint64_t gpa) {
  if (!armed_ || mode_ != DirtyTrackMode::kWriteProtect ||
      &vcpu->pd() != vm_) {
    return false;
  }
  const std::uint64_t page = gpa >> hw::kPageShift;
  MemSpace& ms = vm_->mem_space();
  // Only a write the VM legitimately holds is our trap; an unmapped page
  // or a genuinely read-only one belongs to the VMM's MMIO path.
  if ((ms.PermsFor(page) & perm::kWrite) == 0) {
    return false;
  }
  const hw::WalkResult leaf = ms.table().Probe(gpa);
  if (!Ok(leaf.status) || (leaf.pte & hw::pte::kWritable) != 0) {
    return false;  // Present and already writable: not our fault.
  }
  // Mark every 4 KiB page the restored leaf covers (a superpage leaf
  // regains write permission as a whole and will not fault again).
  const std::uint64_t pages = leaf.page_size >> hw::kPageShift;
  const std::uint64_t base = page & ~(pages - 1);
  for (std::uint64_t p = base; p < base + pages; ++p) {
    dirty_pages_.insert(p);
  }
  (void)ms.table().SetLeafFlags(gpa, /*set=*/hw::pte::kWritable, /*clear=*/0);
  ++faults_;
  fault_counter_.Add();
  if (tracer_->enabled()) {
    tracer_->InstantAt(hv_->machine().cpu(vcpu->cpu()).NowPs(),
                       sim::TraceCat::kVmExit, trace_fault_,
                       static_cast<std::uint8_t>(vcpu->cpu()), gpa);
  }
  return true;
}

}  // namespace nova::hv
