// The memory space and I/O port space of a protection domain.
//
// A protection domain's memory space is backed by a real host page table:
// for user domains it maps (identity) host-virtual to host-physical
// frames; for virtual machines it is the nested page table translating
// guest-physical to host-physical (§5.3).
#ifndef SRC_HV_SPACES_H_
#define SRC_HV_SPACES_H_

#include <bitset>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/hv/types.h"
#include "src/sim/snapshot.h"
#include "src/sim/status.h"

namespace nova::hv {

class MemSpace {
 public:
  MemSpace(hw::PhysMem* mem, hw::PagingMode mode, hw::PhysAddr root,
           hw::PageTable::FrameAllocator alloc)
      : table_(mem, mode, root), alloc_(std::move(alloc)) {}

  hw::PageTable& table() { return table_; }
  hw::PhysAddr root() const { return table_.root(); }

  // Map `count` pages starting at page index `page` (address = page<<12)
  // to host frames starting at `hpa_page`, with CRD memory rights. When
  // `large` is set, the range must be superpage-aligned and sized; the
  // host table then uses superpage leaves.
  Status Map(std::uint64_t page, std::uint64_t hpa_page, std::uint64_t count,
             std::uint8_t perms, bool large);
  Status Unmap(std::uint64_t page, std::uint64_t count);

  // Rights bookkeeping for delegation checks: the perms under which
  // `page` is held, or 0.
  std::uint8_t PermsFor(std::uint64_t page) const;
  // Host frame backing `page`, or ~0 when unmapped.
  std::uint64_t HpaPageFor(std::uint64_t page) const;

  std::size_t mapped_pages() const { return pages_.size(); }

  // Visit every mapped page in ascending page order (deterministic: used
  // by the migration driver to enumerate guest frames and by dirty-log
  // collection).
  using MappingVisitor = std::function<void(
      std::uint64_t page, std::uint64_t hpa_page, std::uint8_t perms, bool large)>;
  void ForEachMapping(const MappingVisitor& visit) const;

  // Bookkeeping-only serialization: the radix tree itself lives in PhysMem
  // frames and rides the memory section of the snapshot.
  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  struct Holding {
    std::uint64_t hpa_page;
    std::uint8_t perms;
    bool large;  // Part of a superpage mapping.
  };

  // snapshot-x-list(MemSpace): table_, alloc_, pages_
  hw::PageTable table_;
  hw::PageTable::FrameAllocator alloc_;
  std::unordered_map<std::uint64_t, Holding> pages_;
};

class IoSpace {
 public:
  void Grant(std::uint64_t port, std::uint64_t count);
  void Revoke(std::uint64_t port, std::uint64_t count);
  bool Test(std::uint16_t port) const { return bitmap_.test(port); }
  const std::bitset<65536>& bitmap() const { return bitmap_; }
  std::size_t granted() const { return bitmap_.count(); }

  Status SaveState(sim::SnapWriter& w) const;
  Status LoadState(sim::SnapReader& r);

 private:
  // snapshot-x-list(IoSpace): bitmap_
  std::bitset<65536> bitmap_;
};

}  // namespace nova::hv

#endif  // SRC_HV_SPACES_H_
