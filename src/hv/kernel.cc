#include "src/hv/kernel.h"

#include <algorithm>

#include "src/sim/log.h"

namespace nova::hv {

namespace mtd {

int WordCount(Mtd m) {
  int words = 0;
  if (m & kGprAcdb) words += 4;
  if (m & kGprBsd) words += 4;
  if (m & kRip) words += 2;
  if (m & kRflags) words += 1;
  if (m & kCr) words += 3;
  if (m & kQual) words += 3;
  if (m & kInj) words += 2;
  if (m & kSta) words += 1;
  if (m & kTsc) words += 1;
  return words;
}

int FieldCount(Mtd m) {
  // VMCS fields touched: one read/write per architectural field.
  return WordCount(m);
}

}  // namespace mtd

Hypervisor::HotTraceIds::HotTraceIds(sim::Tracer& t)
    : hlt(t.Intern("HLT")),
      hw_intr(t.Intern("Hardware Interrupts")),
      recall(t.Intern("Recall")),
      vtlb_fill(t.Intern("vTLB Fill")),
      guest_pf(t.Intern("Guest Page Fault")),
      mmio(t.Intern("Memory-Mapped I/O")),
      pio(t.Intern("Port I/O")),
      cpuid(t.Intern("CPUID")),
      mov_cr(t.Intern("CR Read/Write")),
      invlpg(t.Intern("INVLPG")),
      intr_window(t.Intern("Interrupt Window")),
      vmcall(t.Intern("VMCALL")),
      vm_error(t.Intern("VM Error")),
      ipc_call(t.Intern("IPC Call")),
      vm_event(t.Intern("VM Event IPC")),
      sched_dispatch(t.Intern("Sched Dispatch")),
      sched_preempt(t.Intern("Sched Preempt")),
      gsi_delivered(t.Intern("GSI Delivered")),
      vtlb_resolve(t.Intern("vTLB Resolve")) {
  for (int i = 0; i < hw::kNumExitReasons; ++i) {
    exit[i] = t.Intern(std::string("exit:") +
                       hw::ExitReasonName(static_cast<hw::ExitReason>(i)));
  }
  vm_event_unhandled = t.Intern("vm-event-unhandled");
  // SMP names intern last: ids are dense and golden digests of old traces
  // must not shift (single-core runs never emit these).
  ipc_xcall = t.Intern("IPC Xcall");
  tlb_shootdown = t.Intern("TLB Shootdown");
  tlb_shootdown_ack = t.Intern("TLB Shootdown Ack");
  lock_contention = t.Intern("lock-contention");
}

Hypervisor::Hypervisor(hw::Machine* machine, HvCosts costs)
    : machine_(machine), costs_(costs) {
  host_paging_mode_ = machine_->cpu(0).model().host_paging;
  for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    engines_.push_back(std::make_unique<hw::VmEngine>(
        &machine_->cpu(i), &machine_->mem(), &machine_->bus(), &machine_->irq()));
  }
  // nova-lint: allow(per-cpu-state) — boot-time sizing, no core yet.
  cpu_states_.resize(machine_->num_cpus());
  // Restore support: rebuild SmDown deadline callbacks from (ec oid,
  // sm oid). Registered here so the rebinder exists before any LoadState;
  // the oids resolve against the twin's creation-order registry.
  machine_->events().RegisterRebinder(
      sim::EventQueue::OwnerToken("hv.kernel"),
      [this](const sim::EventTag& tag) -> sim::EventQueue::Callback {
        auto ec = RefAs<Ec>(ObjectByOid(tag.a), ObjType::kEc);
        auto sm = RefAs<Sm>(ObjectByOid(tag.b), ObjType::kSm);
        if (tag.op != 1 || ec == nullptr || sm == nullptr) {
          return nullptr;
        }
        return [this, ec, sm] { SmDeadlineExpired(ec, sm); };
      });
}

void Hypervisor::RegisterObject(const ObjRef& obj) {
  obj->set_oid(objects_.size());
  objects_.push_back(ObjSlot{obj, obj->type()});
}

Hypervisor::~Hypervisor() = default;

hw::PhysAddr Hypervisor::PoolAlloc() {
  if (!pool_free_.empty()) {
    const hw::PhysAddr frame = pool_free_.back();
    pool_free_.pop_back();
    (void)machine_->mem().Zero(frame, hw::kPageSize);
    return frame;
  }
  if (pool_next_ + hw::kPageSize > kernel_reserve_) {
    return 0;  // Kernel pool exhausted.
  }
  const hw::PhysAddr frame = pool_next_;
  pool_next_ += hw::kPageSize;
  return frame;
}

void Hypervisor::PoolFree(hw::PhysAddr frame) { pool_free_.push_back(frame); }

hw::PhysAddr Hypervisor::AllocFrameFor(Pd* pd) {
  if (fault_plan_ != nullptr &&
      fault_plan_->ShouldFault(sim::FaultKind::kAllocFail, pd->name())) {
    return 0;
  }
  if (!pd->ChargeKmem(1)) {
    return 0;
  }
  const hw::PhysAddr frame = PoolAlloc();
  if (frame == 0) {
    pd->CreditKmem(1);
  }
  return frame;
}

void Hypervisor::FreeFrameFor(Pd* pd, hw::PhysAddr frame) {
  pd->CreditKmem(1);
  PoolFree(frame);
}

bool Hypervisor::ChargeObjectFrames(Pd* pd, std::uint64_t frames) {
  if (fault_plan_ != nullptr &&
      fault_plan_->ShouldFault(sim::FaultKind::kAllocFail, pd->name())) {
    return false;
  }
  return pd->ChargeKmem(frames);
}

std::shared_ptr<Pd> Hypervisor::SelfRef(Pd* caller) {
  if (caller == root_pd_.get()) {
    return root_pd_;
  }
  auto self = RefAs<Pd>(caller->caps().LookupRef(kSelOwnPd), ObjType::kPd);
  return self != nullptr ? self : root_pd_;
}

hw::PhysAddr Hypervisor::AllocFrame() {
  return root_pd_ != nullptr ? AllocFrameFor(root_pd_.get()) : PoolAlloc();
}

void Hypervisor::FreeFrame(hw::PhysAddr frame) {
  if (root_pd_ != nullptr) {
    FreeFrameFor(root_pd_.get(), frame);
  } else {
    PoolFree(frame);
  }
}

std::shared_ptr<Pd> Hypervisor::MakePd(const std::string& name, bool is_vm,
                                       std::shared_ptr<Pd> donor,
                                       std::uint64_t quota_frames) {
  if (fault_plan_ != nullptr &&
      fault_plan_->ShouldFault(sim::FaultKind::kAllocFail, name)) {
    return nullptr;
  }
  const hw::PhysAddr root = PoolAlloc();
  if (root == 0) {
    return nullptr;
  }
  auto pd = std::make_shared<Pd>(name, is_vm, &machine_->mem(), host_paging_mode_,
                                 root, this);
  pd->set_kmem_donor(std::move(donor));
  if (quota_frames != KmemQuota::kUnlimited) {
    pd->kmem().SetLimit(quota_frames);
  }
  // The page-table root frame is the domain's first charge.
  if (!pd->ChargeKmem(1)) {
    PoolFree(root);
    return nullptr;
  }
  if (is_vm) {
    pd->set_vm_tag(tlb_tags_.Allocate());
  }
  RegisterObject(pd);
  return pd;
}

Vtlb& Hypervisor::VtlbFor(Ec* vcpu) {
  if (vcpu->vtlb() == nullptr) {
    Vtlb::Env env;
    env.cpu = &cpu(vcpu->cpu());
    env.mem = &machine_->mem();
    env.host = &vcpu->pd().mem_space().table();
    env.gs = &vcpu->gstate();
    env.ctl = &vcpu->ctl();
    env.pd = &vcpu->pd();
    env.pd_root = vcpu->pd().mem_space().root();
    env.costs = &costs_;
    env.alloc = [this, pd = &vcpu->pd()] { return AllocFrameFor(pd); };
    env.free = [this, pd = &vcpu->pd()](hw::PhysAddr f) { FreeFrameFor(pd, f); };
    env.tags = &tlb_tags_;
    env.stats = &stats_;
    env.tracer = tracer_;
    vcpu->set_vtlb(std::make_shared<Vtlb>(std::move(env), vtlb_policy_));
  }
  return *vcpu->vtlb();
}

void Hypervisor::DropShadowContexts(Pd* pd) {
  for (auto it = vcpus_.begin(); it != vcpus_.end();) {
    auto vcpu = it->lock();
    if (vcpu == nullptr) {
      it = vcpus_.erase(it);
      continue;
    }
    if (&vcpu->pd() == pd && vcpu->vtlb() != nullptr) {
      vcpu->vtlb()->DropAllContexts();
    }
    ++it;
  }
}

Pd* Hypervisor::Boot(std::uint64_t kernel_reserve) {
  kernel_reserve_ = kernel_reserve;
  pool_next_ = hw::kPageSize;  // Frame 0 stays unused: 0 means "no frame".
  // The hypervisor shields its own memory from device DMA (§4.2).
  machine_->iommu().ProtectRange(0, kernel_reserve_);

  root_pd_ = MakePd("root", /*is_vm=*/false, nullptr, KmemQuota::kUnlimited);
  (void)InstallCap(root_pd_.get(), kSelOwnPd, root_pd_, perm::kAll);
  // Root's account is bounded by the physical pool itself (frame 0 stays
  // reserved); every pass-through descendant ultimately charges here.
  root_pd_->kmem().SetLimit(kernel_reserve_ / hw::kPageSize - 1);

  // The root partition manager receives capabilities for all remaining
  // memory regions, I/O ports and interrupts (§6).
  const std::uint64_t first_page = kernel_reserve_ >> hw::kPageShift;
  const std::uint64_t last_page = machine_->mem().size() >> hw::kPageShift;
  // nova-lint: allow(lock-discipline) -- single-core boot, APs not started
  mdb_.CreateRoot(root_pd_.get(), CrdKind::kMem, first_page,
                  last_page - first_page, perm::kRwx);
  // nova-lint: allow(lock-discipline) -- single-core boot, APs not started
  mdb_.CreateRoot(root_pd_.get(), CrdKind::kIo, 0, 65536, perm::kAll);
  root_pd_->io_space().Grant(0, 65536);
  return root_pd_.get();
}

Status Hypervisor::InstallCap(Pd* target, CapSel sel, ObjRef obj, std::uint8_t perms) {
  const Status s = target->caps().Insert(sel, Capability{std::move(obj), perms});
  if (Ok(s)) {
    // A freshly created capability is a delegation root: the creator can
    // hand copies (with equal or reduced permissions) to other domains.
    // Creation hypercalls run serially on the calling core; charging
    // mdb_lock_ here would change the contention model and the digests.
    // nova-lint: allow(lock-discipline) -- serial create path, cost-model debt
    mdb_.CreateRoot(target, CrdKind::kObj, sel, 1, perms);
  }
  return s;
}

Status Hypervisor::CreatePd(Pd* caller, CapSel dst_sel, const std::string& name,
                            bool is_vm, Pd** out, std::uint64_t quota_frames) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  std::shared_ptr<Pd> donor = SelfRef(caller);
  // An explicit quota is carved out of the creator's nearest bounded
  // account up front and handed back if creation fails below.
  Pd* grantor = nullptr;
  if (quota_frames != KmemQuota::kUnlimited) {
    grantor = caller;
    while (!grantor->kmem().bounded() && grantor->kmem_donor() != nullptr) {
      grantor = grantor->kmem_donor().get();
    }
    if (!grantor->kmem().bounded()) {
      grantor = nullptr;
    } else if (grantor->kmem().available() < quota_frames) {
      return Status::kNoMem;
    } else {
      grantor->kmem().ShrinkLimit(quota_frames);
    }
  }
  auto unwind = [&](const std::shared_ptr<Pd>& pd) {
    if (pd != nullptr) {
      pd->MarkDead();
      // Create-failure unwind: the domain was never visible to other cores.
      // nova-lint: allow(lock-discipline) -- unwind of an unpublished domain
      mdb_.DropDomain(pd.get(), [](const MdbNode&) {});
      pd->mem_space().table().FreeTables(
          [this, &pd](hw::PhysAddr f) { FreeFrameFor(pd.get(), f); });
      if (pd->is_vm() && pd->vm_tag() != hw::kHostTag) {
        tlb_tags_.Release(pd->vm_tag());
        pd->set_vm_tag(hw::kHostTag);
      }
    }
    if (grantor != nullptr) {
      grantor->kmem().GrowLimit(quota_frames);
    }
  };
  auto pd = MakePd(name, is_vm, donor, quota_frames);
  if (pd == nullptr) {
    unwind(nullptr);
    return Status::kNoMem;
  }
  // The new domain's own (non-control) handle goes in first, so a failure
  // on either insert leaves no half-visible domain behind. The creator
  // obtains the control capability (it can destroy the domain).
  Status s = InstallCap(pd.get(), kSelOwnPd, pd, perm::kDelegate);
  if (!Ok(s)) {
    unwind(pd);
    return s;
  }
  s = InstallCap(caller, dst_sel, pd, perm::kAll);
  if (!Ok(s)) {
    unwind(pd);
    return s;
  }
  if (out != nullptr) {
    *out = pd.get();
  }
  return Status::kSuccess;
}

Status Hypervisor::DestroyPd(Pd* caller, CapSel pd_sel) {
  Pd* pd = LookupCharged<Pd>(caller, pd_sel, ObjType::kPd, perm::kCtrl,
                             boot_cpu_for_step_);
  if (pd == nullptr) {
    return Status::kBadCapability;
  }
  if (pd == root_pd_.get()) {
    return Status::kDenied;
  }
  // Reclaim first, while the domain's kernel objects still exist: the
  // capability sweep below destroys any semaphore whose last reference is
  // a delegated cap, and a foreign waiter blocked on it must observe the
  // abort, not be stranded on a vanished object.
  pd->MarkDead();
  ReclaimPd(pd);
  // Withdraw everything this domain held and everything derived from it.
  // The per-node withdrawals below are best-effort by design: a range the
  // domain already unmapped itself is not an error during teardown.
  // Teardown of a dead domain runs serially on the calling core; charging
  // mdb_lock_ here would change the contention model and shift digests.
  // nova-lint: allow(lock-discipline) -- serial teardown, cost-model debt
  mdb_.DropDomain(pd, [this](const MdbNode& node) {
    if (node.pd->dead()) {
      return;  // A domain destroyed earlier: its spaces are already gone.
    }
    switch (node.kind) {
      case CrdKind::kMem:
        (void)node.pd->mem_space().Unmap(node.base, node.count);
        break;
      case CrdKind::kIo:
        (void)node.pd->io_space().Revoke(node.base, node.count);
        break;
      case CrdKind::kObj:
        for (std::uint64_t i = 0; i < node.count; ++i) {
          (void)node.pd->caps().Remove(static_cast<CapSel>(node.base + i));
        }
        break;
      case CrdKind::kNull:
        break;
    }
  });
  (void)caller->caps().Remove(pd_sel);
  return Status::kSuccess;
}

void Hypervisor::ReclaimPd(Pd* pd) {
  // Waiters from *other* domains blocked on a semaphore the dying domain
  // created observe the failure: their next down reports kAbort.
  for (auto it = sms_.begin(); it != sms_.end();) {
    auto sm = it->lock();
    if (sm == nullptr) {
      it = sms_.erase(it);
      continue;
    }
    if (sm->owner() == pd) {
      while (!sm->waiters().empty()) {
        auto waiter = sm->waiters().front();
        sm->waiters().pop_front();
        WakeSmWaiter(waiter.get(), Status::kAbort);
      }
      // ReclaimPd unbinds after the domain is dead and its ECs are off
      // the run queues; no remote delivery can race this.
      // nova-lint: allow(lock-discipline) -- serial teardown unbinding
      if (sm->bound_gsi_valid() && gsi_sms_[sm->bound_gsi()] == sm) {
        gsi_sms_[sm->bound_gsi()] = nullptr;  // nova-lint: allow(lock-discipline)
      }
      sm->MarkDead();
      sm->set_owner(nullptr);
    }
    ++it;
  }

  // The domain's execution contexts never run again: unlink them from
  // semaphore queues, run queues and halted lists.
  for (auto it = ecs_.begin(); it != ecs_.end();) {
    auto ec = it->lock();
    if (ec == nullptr) {
      it = ecs_.erase(it);
      continue;
    }
    if (&ec->pd() == pd) {
      ec->MarkDead();
      if (Sm* sm = ec->blocked_on(); sm != nullptr) {
        auto& q = sm->waiters();
        q.erase(std::remove_if(q.begin(), q.end(),
                               [&ec](const auto& p) { return p == ec; }),
                q.end());
        ec->set_blocked_on(nullptr);
      }
      if (ec->timeout_event() != 0) {
        machine_->events().Cancel(ec->timeout_event());
        ec->set_timeout_event(0);
      }
      UnscheduleEc(ec.get());
      if (ec->sc() != nullptr) {
        ec->sc()->MarkDead();
      }
    }
    ++it;
  }

  // Direct-interrupt routes into the domain's vCPUs go quiet. Serial
  // teardown: the dead domain's vCPUs can no longer take delivery.
  for (std::uint32_t gsi = 0; gsi < hw::kNumGsis; ++gsi) {
    // nova-lint: allow(lock-discipline) -- serial teardown unbinding
    if (gsi_direct_[gsi] != nullptr && &gsi_direct_[gsi]->pd() == pd) {
      gsi_direct_[gsi] = nullptr;  // nova-lint: allow(lock-discipline)
    }
  }

  // Shadow-paging state: every cached context frame and hardware tag of
  // the domain's vCPUs goes back to the pool.
  DropShadowContexts(pd);

  // A dead driver domain must not be able to program DMA anymore.
  for (const std::uint16_t dev : pd->assigned_devices()) {
    machine_->iommu().DetachDevice(dev);
  }
  pd->assigned_devices().clear();

  // Release the domain's hardware TLB footprint and identity tag. Cores
  // that ran the dying VM's vCPUs are shot down before the tag recycles.
  if (pd->is_vm() && pd->vm_tag() != hw::kHostTag) {
    ShootdownRemotes(boot_cpu_for_step_, pd->cores_mask(), pd->vm_tag());
    pd->ClearCores();
    for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
      machine_->cpu(i).tlb().FlushTag(pd->vm_tag());
      engines_[i]->FlushNestedTlb(pd->vm_tag());
    }
    tlb_tags_.Release(pd->vm_tag());
    pd->set_vm_tag(hw::kHostTag);
  }

  // Finally the paging structures themselves: DropDomain zeroed the leaf
  // entries, but the radix-tree frames (and the root) are kernel pool
  // frames that must balance out — credited to the dying domain's own
  // account chain, not to root.
  pd->mem_space().table().FreeTables(
      [this, pd](hw::PhysAddr frame) { FreeFrameFor(pd, frame); });

  // A bounded domain's quota returns to the nearest live bounded ancestor
  // (the supervisor destroys a VMM's VM first, so a VM's quota flows
  // through the VMM back to root). Zero the limit afterwards so a second
  // pass can never return it twice.
  if (pd->kmem().bounded() && pd->kmem().limit() > 0) {
    Pd* heir = pd->kmem_donor().get();
    while (heir != nullptr && (heir->dead() || !heir->kmem().bounded())) {
      heir = heir->kmem_donor().get();
    }
    if (heir != nullptr) {
      heir->kmem().GrowLimit(pd->kmem().limit());
    }
    pd->kmem().SetLimit(0);
  }
}

Status Hypervisor::CreateEcLocal(Pd* caller, CapSel dst_sel, CapSel pd_sel,
                                 std::uint32_t cpu_id, Ec::Handler handler, Ec** out) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  if (cpu_id >= machine_->num_cpus()) {
    return Status::kBadCpu;
  }
  Charge(boot_cpu_for_step_, costs_.cap_lookup);
  auto pd = RefAs<Pd>(caller->caps().LookupRef(pd_sel), ObjType::kPd);
  if (pd == nullptr) {
    return Status::kBadCapability;
  }
  if (!ChargeObjectFrames(pd.get(), 1)) {  // UTCB frame.
    return Status::kNoMem;
  }
  auto ec = std::make_shared<Ec>(Ec::Kind::kLocal, pd, cpu_id);
  ec->set_handler(std::move(handler));
  const Status s = InstallCap(caller, dst_sel, ec, perm::kAll);
  if (!Ok(s)) {
    pd->CreditKmem(1);
    return s;
  }
  ec->set_release_hook([pd] { pd->CreditKmem(1); });
  RegisterObject(ec);
  ecs_.push_back(ec);
  if (out != nullptr) {
    *out = ec.get();
  }
  return Status::kSuccess;
}

Status Hypervisor::CreateEcGlobal(Pd* caller, CapSel dst_sel, CapSel pd_sel,
                                  std::uint32_t cpu_id, Ec::StepFn step, Ec** out) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  if (cpu_id >= machine_->num_cpus()) {
    return Status::kBadCpu;
  }
  Charge(boot_cpu_for_step_, costs_.cap_lookup);
  auto pd = RefAs<Pd>(caller->caps().LookupRef(pd_sel), ObjType::kPd);
  if (pd == nullptr) {
    return Status::kBadCapability;
  }
  if (!ChargeObjectFrames(pd.get(), 1)) {  // UTCB frame.
    return Status::kNoMem;
  }
  auto ec = std::make_shared<Ec>(Ec::Kind::kGlobal, pd, cpu_id);
  ec->set_step_fn(std::move(step));
  const Status s = InstallCap(caller, dst_sel, ec, perm::kAll);
  if (!Ok(s)) {
    pd->CreditKmem(1);
    return s;
  }
  ec->set_release_hook([pd] { pd->CreditKmem(1); });
  RegisterObject(ec);
  ecs_.push_back(ec);
  if (out != nullptr) {
    *out = ec.get();
  }
  return Status::kSuccess;
}

Status Hypervisor::CreateVcpu(Pd* caller, CapSel dst_sel, CapSel vm_pd_sel,
                              std::uint32_t cpu_id, CapSel evt_base, Ec** out) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  if (cpu_id >= machine_->num_cpus()) {
    return Status::kBadCpu;
  }
  Charge(boot_cpu_for_step_, costs_.cap_lookup);
  auto pd = RefAs<Pd>(caller->caps().LookupRef(vm_pd_sel), ObjType::kPd);
  if (pd == nullptr) {
    return Status::kBadCapability;
  }
  if (!pd->is_vm()) {
    return Status::kBadParameter;
  }
  if (!ChargeObjectFrames(pd.get(), 2)) {  // UTCB + VMCS frames.
    return Status::kNoMem;
  }
  auto ec = std::make_shared<Ec>(Ec::Kind::kVcpu, pd, cpu_id);
  ec->set_evt_base(evt_base);
  // Default controls: full virtualization with nested paging on the VM's
  // host page table. The VMM reconfigures via ec->ctl() before first run.
  hw::VmControls& ctl = ec->ctl();
  ctl.mode = hw::TranslationMode::kNested;
  ctl.nested_format = host_paging_mode_;
  ctl.nested_root = pd->mem_space().root();
  ctl.tag = pd->vm_tag();
  ctl.base_tag = pd->vm_tag();
  ctl.intercept_cpuid = true;
  ctl.intercept_hlt = true;
  ctl.intercept_vmcall = true;
  ctl.io_passthrough = &pd->io_space().bitmap();
  const Status s = InstallCap(caller, dst_sel, ec, perm::kAll);
  if (!Ok(s)) {
    pd->CreditKmem(2);
    return s;
  }
  ec->set_release_hook([pd] { pd->CreditKmem(2); });
  RegisterObject(ec);
  vcpus_.push_back(ec);
  ecs_.push_back(ec);
  if (out != nullptr) {
    *out = ec.get();
  }
  return Status::kSuccess;
}

Status Hypervisor::CreateSc(Pd* caller, CapSel dst_sel, CapSel ec_sel,
                            std::uint8_t prio, sim::Cycles quantum) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  Charge(boot_cpu_for_step_, costs_.cap_lookup);
  auto ec = RefAs<Ec>(caller->caps().LookupRef(ec_sel), ObjType::kEc);
  if (ec == nullptr) {
    return Status::kBadCapability;
  }
  if (ec->kind() == Ec::Kind::kLocal) {
    return Status::kBadParameter;  // Handler ECs run on donated time only.
  }
  if (ec->sc() != nullptr) {
    return Status::kBusy;
  }
  if (quantum == 0) {
    return Status::kBadParameter;
  }
  auto sc_pd = ec->pd_ref();
  if (!ChargeObjectFrames(sc_pd.get(), 1)) {
    return Status::kNoMem;
  }
  auto sc = std::make_shared<Sc>(ec, prio, quantum);
  ec->set_sc(sc.get());
  const Status s = InstallCap(caller, dst_sel, sc, perm::kAll);
  if (!Ok(s)) {
    ec->set_sc(nullptr);
    sc_pd->CreditKmem(1);
    return s;
  }
  sc->set_release_hook([sc_pd] { sc_pd->CreditKmem(1); });
  RegisterObject(sc);
  EnqueueSc(sc.get());
  return Status::kSuccess;
}

Status Hypervisor::CreatePt(Pd* caller, CapSel dst_sel, CapSel handler_ec_sel,
                            Mtd m, std::uint64_t id) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  Charge(boot_cpu_for_step_, costs_.cap_lookup);
  auto ec = RefAs<Ec>(caller->caps().LookupRef(handler_ec_sel), ObjType::kEc);
  if (ec == nullptr) {
    return Status::kBadCapability;
  }
  if (ec->kind() != Ec::Kind::kLocal) {
    return Status::kBadParameter;
  }
  auto pt_pd = ec->pd_ref();
  if (!ChargeObjectFrames(pt_pd.get(), 1)) {
    return Status::kNoMem;
  }
  auto pt = std::make_shared<Pt>(ec, m, id);
  const Status s = InstallCap(caller, dst_sel, pt, perm::kAll);
  if (!Ok(s)) {
    pt_pd->CreditKmem(1);
    return s;
  }
  pt->set_release_hook([pt_pd] { pt_pd->CreditKmem(1); });
  RegisterObject(pt);
  return Status::kSuccess;
}

Status Hypervisor::PtCtrlMtd(Pd* caller, CapSel pt_sel, Mtd m) {
  Pt* pt = LookupCharged<Pt>(caller, pt_sel, ObjType::kPt, perm::kCtrl,
                             boot_cpu_for_step_);
  if (pt == nullptr) {
    return Status::kBadCapability;
  }
  pt->set_mtd(m);
  return Status::kSuccess;
}

Status Hypervisor::CreateSm(Pd* caller, CapSel dst_sel, std::uint64_t initial) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  auto sm_pd = SelfRef(caller);
  if (!ChargeObjectFrames(sm_pd.get(), 1)) {
    return Status::kNoMem;
  }
  auto sm = std::make_shared<Sm>(initial);
  sm->set_owner(caller);
  const Status s = InstallCap(caller, dst_sel, sm, perm::kAll);
  if (!Ok(s)) {
    sm_pd->CreditKmem(1);
    return s;
  }
  sm->set_release_hook([sm_pd] { sm_pd->CreditKmem(1); });
  RegisterObject(sm);
  sms_.push_back(sm);
  return s;
}

// --- Semaphores -----------------------------------------------------------

Status Hypervisor::SmUp(Pd* caller, CapSel sm_sel) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch + costs_.sm_op);
  Sm* sm = LookupCharged<Sm>(caller, sm_sel, ObjType::kSm, perm::kSmUp,
                             boot_cpu_for_step_);
  if (sm == nullptr) {
    return Status::kBadCapability;
  }
  // Increment, then wake the first waiter; the woken thread re-executes
  // its down and consumes the count.
  sm->set_counter(sm->counter() + 1);
  if (!sm->waiters().empty()) {
    auto ec = sm->waiters().front();
    sm->waiters().pop_front();
    WakeSmWaiter(ec.get(), Status::kSuccess);
  }
  return Status::kSuccess;
}

void Hypervisor::SmDeadlineExpired(std::shared_ptr<Ec> ec_ref,
                                   std::shared_ptr<Sm> sm_ref) {
  Ec* ec = ec_ref.get();
  // Guard: the wait may have ended (or moved to another semaphore) between
  // scheduling and expiry.
  if (ec->dead() || ec->block_state() != Ec::BlockState::kBlockedSm ||
      ec->blocked_on() != sm_ref.get()) {
    return;
  }
  auto& q = sm_ref->waiters();
  q.erase(std::remove_if(q.begin(), q.end(),
                         [&ec_ref](const auto& p) { return p == ec_ref; }),
          q.end());
  ec->set_timeout_event(0);
  WakeSmWaiter(ec, Status::kTimeout);
}

void Hypervisor::WakeSmWaiter(Ec* ec, Status status) {
  ec->set_blocked_on(nullptr);
  if (ec->timeout_event() != 0) {
    machine_->events().Cancel(ec->timeout_event());
    ec->set_timeout_event(0);
  }
  ec->set_wake_status(status);
  ec->set_block_state(Ec::BlockState::kRunnable);
  if (ec->sc() != nullptr && !ec->sc()->queued()) {
    EnqueueSc(ec->sc());
  }
}

void Hypervisor::EnqueueSc(Sc* sc, bool at_head) {
  // Per-core ready queues are contention-free for their own core; only a
  // cross-core wakeup (an SC pushed into a remote core's queue) touches a
  // lock another core may hold.
  if (boot_cpu_for_step_ != sc->cpu()) {
    ChargeLock(sched_lock_, boot_cpu_for_step_);
  }
  cpu_state(sc->cpu()).Enqueue(sc, at_head);
}

void Hypervisor::UnscheduleEc(Ec* ec) {
  CpuState& state = cpu_state(ec->cpu());
  if (ec->sc() != nullptr && ec->sc()->queued()) {
    // Absent is fine: the queued() flag can be stale during teardown.
    (void)state.Remove(ec->sc());
  }
  auto& halted = state.halted();
  halted.erase(std::remove_if(halted.begin(), halted.end(),
                              [ec](const auto& p) { return p.get() == ec; }),
               halted.end());
}

Hypervisor::DownResult Hypervisor::SmDown(Ec* caller_ec, CapSel sm_sel,
                                          bool unmask_gsi,
                                          sim::PicoSeconds deadline_ps) {
  Charge(caller_ec->cpu(), costs_.hypercall_dispatch + costs_.sm_op);
  // A blocked wait that ended abnormally reports its outcome on re-entry
  // (the woken thread re-executes its down).
  if (caller_ec->wake_status() != Status::kSuccess) {
    const Status why = caller_ec->wake_status();
    caller_ec->set_wake_status(Status::kSuccess);
    return why == Status::kTimeout ? DownResult::kTimeout : DownResult::kAborted;
  }
  Sm* sm = LookupCharged<Sm>(&caller_ec->pd(), sm_sel, ObjType::kSm, perm::kSmDown,
                             caller_ec->cpu());
  if (sm == nullptr) {
    return DownResult::kError;
  }
  if (sm->dead()) {
    return DownResult::kAborted;  // The semaphore's domain is gone.
  }
  if (unmask_gsi && sm->bound_gsi_valid()) {
    machine_->irq().Unmask(sm->bound_gsi());
    ProcessPendingIrqs(caller_ec->cpu());  // A latched edge may fire now.
  }
  if (sm->counter() > 0) {
    sm->set_counter(sm->counter() - 1);
    return DownResult::kAcquired;
  }
  if (caller_ec->kind() != Ec::Kind::kGlobal || caller_ec->sc() == nullptr) {
    return DownResult::kError;  // Only threads with their own SC may block.
  }
  caller_ec->set_block_state(Ec::BlockState::kBlockedSm);
  caller_ec->set_blocked_on(sm);
  auto ec_ref = caller_ec->sc()->ec_ref();
  sm->waiters().push_back(ec_ref);
  if (deadline_ps != 0) {
    // The deadline event holds shared refs, so both objects outlive it; the
    // guard re-checks the wait is still the same one before expiring it.
    auto sm_ref = RefAs<Sm>(caller_ec->pd().caps().LookupRef(sm_sel), ObjType::kSm);
    if (sm_ref != nullptr) {  // Same selector as above: always resolves.
      const sim::EventTag tag{sim::EventQueue::OwnerToken("hv.kernel"), 1,
                              ec_ref->oid(), sm_ref->oid()};
      const auto id = machine_->events().ScheduleAtTagged(
          deadline_ps, tag,
          [this, ec_ref, sm_ref] { SmDeadlineExpired(ec_ref, sm_ref); });
      caller_ec->set_timeout_event(id);
    }
  }
  return DownResult::kBlocked;
}

// --- Delegation / revocation ----------------------------------------------

Status Hypervisor::Delegate(Pd* caller, CapSel dst_pd_sel, const Crd& src,
                            std::uint64_t hotspot, std::uint8_t perms_mask,
                            bool large) {
  const std::uint32_t cpu_id = boot_cpu_for_step_;
  Charge(cpu_id, costs_.hypercall_dispatch);
  ChargeLock(mdb_lock_, cpu_id);
  Pd* dst = LookupCharged<Pd>(caller, dst_pd_sel, ObjType::kPd, 0, cpu_id);
  if (dst == nullptr) {
    return Status::kBadCapability;
  }
  if (src.kind == CrdKind::kNull) {
    return Status::kBadParameter;
  }
  MdbNode* node = mdb_.Find(caller, src.kind, src.base, src.count());
  if (node == nullptr) {
    return Status::kDenied;  // Caller does not hold the resource.
  }
  const std::uint8_t eff = node->perms & src.perms & perms_mask;
  if (eff == 0) {
    return Status::kDenied;
  }
  Charge(cpu_id, costs_.mdb_node);

  switch (src.kind) {
    case CrdKind::kMem: {
      if (caller->is_vm()) {
        return Status::kDenied;  // VMs cannot originate delegations.
      }
      // For user domains the memory space is identity: the page index is
      // the host frame number, so the chain is anchored at physical RAM.
      const Status s = dst->mem_space().Map(hotspot, src.base, src.count(), eff, large);
      if (!Ok(s)) {
        return s;
      }
      const std::uint64_t units =
          large ? src.count() / (hw::LargePageSize(host_paging_mode_) / hw::kPageSize)
                : src.count();
      Charge(cpu_id, costs_.map_page * units);
      break;
    }
    case CrdKind::kIo:
      dst->io_space().Grant(hotspot, src.count());
      Charge(cpu_id, costs_.map_page);
      break;
    case CrdKind::kObj: {
      for (std::uint64_t i = 0; i < src.count(); ++i) {
        const Capability* cap = caller->caps().Lookup(static_cast<CapSel>(src.base + i));
        if (cap == nullptr || (cap->perms & perm::kDelegate) == 0) {
          return Status::kBadCapability;
        }
        Capability narrowed = *cap;
        narrowed.perms &= eff;
        const Status s = dst->caps().Insert(static_cast<CapSel>(hotspot + i), narrowed);
        if (!Ok(s)) {
          return s;
        }
        Charge(cpu_id, costs_.cap_lookup);
      }
      break;
    }
    case CrdKind::kNull:
      break;
  }
  (void)mdb_.Delegate(node, dst, hotspot, src.count(), eff, src.base);
  return Status::kSuccess;
}

Status Hypervisor::Revoke(Pd* caller, const Crd& crd, bool include_self) {
  const std::uint32_t cpu_id = boot_cpu_for_step_;
  Charge(cpu_id, costs_.hypercall_dispatch);
  ChargeLock(mdb_lock_, cpu_id);
  bool touched_mem = false;
  // As with DestroyPd: per-node withdrawals during a revoke walk are
  // best-effort, since children may have dropped ranges on their own.
  (void)mdb_.Revoke(caller, crd, include_self, [&](const MdbNode& node) {
    Charge(cpu_id, costs_.mdb_node);
    switch (node.kind) {
      case CrdKind::kMem:
        (void)node.pd->mem_space().Unmap(node.base, node.count);
        Charge(cpu_id, costs_.map_page * node.count);
        touched_mem = true;
        if (node.pd->is_vm()) {
          // Remote cores that ran this VM hold stale tagged translations:
          // IPI + flush + ack before the unmap is globally visible.
          ShootdownRemotes(cpu_id, node.pd->cores_mask(), node.pd->vm_tag());
          for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
            machine_->cpu(i).tlb().FlushTag(node.pd->vm_tag());
            engines_[i]->FlushNestedTlb(node.pd->vm_tag());
          }
          // Shadow-mode vCPUs may hold cached translations of the revoked
          // range in dormant contexts under their own tags.
          DropShadowContexts(node.pd);
        }
        break;
      case CrdKind::kIo:
        (void)node.pd->io_space().Revoke(node.base, node.count);
        break;
      case CrdKind::kObj:
        for (std::uint64_t i = 0; i < node.count; ++i) {
          (void)node.pd->caps().Remove(static_cast<CapSel>(node.base + i));
        }
        break;
      case CrdKind::kNull:
        break;
    }
  });
  if (touched_mem) {
    // Host address spaces are untagged: every core flushes. The initiator
    // pays the per-core flush exactly as before; under SMP the remote
    // cores additionally receive the shootdown IPI and pay the ack.
    ShootdownRemotes(cpu_id, ~0ull, hw::kHostTag);
    for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
      machine_->cpu(i).tlb().FlushTag(hw::kHostTag);
      Charge(cpu_id, machine_->cpu(i).model().tlb_flush);
    }
  }
  return Status::kSuccess;
}

// --- Interrupts and devices -------------------------------------------------

Status Hypervisor::GrantDeviceWindow(hw::PhysAddr base, std::uint64_t size) {
  if (root_pd_ == nullptr || (base & hw::kPageMask) != 0) {
    return Status::kBadParameter;
  }
  // Device windows are granted during single-core platform bring-up,
  // before any guest runs.
  // nova-lint: allow(lock-discipline) -- single-core bring-up grant
  mdb_.CreateRoot(root_pd_.get(), CrdKind::kMem, base >> hw::kPageShift,
                  hw::PageAlignUp(size) >> hw::kPageShift, perm::kRw);
  return Status::kSuccess;
}

Status Hypervisor::AssignGsi(Pd* caller, CapSel sm_sel, std::uint32_t gsi,
                             std::uint32_t cpu_id) {
  if (gsi >= hw::kNumGsis || cpu_id >= machine_->num_cpus()) {
    return Status::kBadParameter;
  }
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  auto sm = RefAs<Sm>(caller->caps().LookupRef(sm_sel), ObjType::kSm);
  if (sm == nullptr) {
    return Status::kBadCapability;
  }
  sm->bind_gsi(gsi);
  // Rebind hypercalls are serialized with delivery by the event loop; on
  // real hardware this is where sched_lock_ would be taken. Charging it
  // here would change the contention model and the golden digests.
  // nova-lint: allow(lock-discipline) -- serialized rebind, cost-model debt
  gsi_sms_[gsi] = sm;
  gsi_direct_[gsi] = nullptr;  // nova-lint: allow(lock-discipline)
  machine_->irq().Configure(gsi, cpu_id, static_cast<std::uint8_t>(32 + gsi));
  return Status::kSuccess;
}

Status Hypervisor::AssignGsiDirect(Pd* caller, CapSel vcpu_sel, std::uint32_t gsi) {
  if (gsi >= hw::kNumGsis) {
    return Status::kBadParameter;
  }
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  auto ec = RefAs<Ec>(caller->caps().LookupRef(vcpu_sel), ObjType::kEc);
  if (ec == nullptr || ec->kind() != Ec::Kind::kVcpu) {
    return Status::kBadCapability;
  }
  // nova-lint: allow(lock-discipline) -- serialized rebind, cost-model debt
  gsi_direct_[gsi] = ec;
  gsi_sms_[gsi] = nullptr;  // nova-lint: allow(lock-discipline)
  machine_->irq().Configure(gsi, ec->cpu(), static_cast<std::uint8_t>(32 + gsi));
  machine_->irq().Unmask(gsi);
  return Status::kSuccess;
}

Status Hypervisor::AssignDev(Pd* caller, CapSel pd_sel, hw::DeviceId dev,
                             std::uint32_t gsi) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch);
  Pd* pd = LookupCharged<Pd>(caller, pd_sel, ObjType::kPd, 0, boot_cpu_for_step_);
  if (pd == nullptr) {
    return Status::kBadCapability;
  }
  if (machine_->iommu().present()) {
    machine_->iommu().AttachDevice(dev, pd->mem_space().root(), host_paging_mode_);
    machine_->iommu().AllowGsi(dev, gsi);
    pd->assigned_devices().push_back(dev);
  }
  return Status::kSuccess;
}

Status Hypervisor::Recall(Pd* caller, CapSel ec_sel) {
  Charge(boot_cpu_for_step_, costs_.hypercall_dispatch + costs_.recall_ipi);
  auto ec = RefAs<Ec>(caller->caps().LookupRef(ec_sel), ObjType::kEc);
  if (ec == nullptr || ec->kind() != Ec::Kind::kVcpu) {
    return Status::kBadCapability;
  }
  ec->gstate().recall_pending = true;
  if (ec->block_state() == Ec::BlockState::kBlockedHalt) {
    WakeEc(ec.get());
  }
  return Status::kSuccess;
}

void Hypervisor::WakeEc(Ec* ec) {
  if (ec->block_state() == Ec::BlockState::kRunnable) {
    return;
  }
  ec->set_block_state(Ec::BlockState::kRunnable);
  auto& halted = cpu_state(ec->cpu()).halted();
  halted.erase(std::remove_if(halted.begin(), halted.end(),
                              [ec](const auto& p) { return p.get() == ec; }),
               halted.end());
  if (ec->sc() != nullptr) {
    EnqueueSc(ec->sc());
  }
}

// --- Interrupt delivery ------------------------------------------------------

void Hypervisor::ProcessPendingIrqs(std::uint32_t cpu_id) {
  hw::IrqChip& chip = machine_->irq();
  for (const std::uint8_t vector : chip.PendingVectors(cpu_id)) {
    if (vector < 32) {
      chip.Acknowledge(cpu_id, vector);
      continue;
    }
    const std::uint32_t gsi = vector - 32u;
    // Delivery runs on the CPU the GSI is routed to, and rebinds are
    // serialized with delivery by the event loop.
    // nova-lint: allow(lock-discipline) -- delivery on the routed CPU
    if (gsi_direct_[gsi] != nullptr) {
      // Left pending: consumed by the guest engine on its next run.
      // nova-lint: allow(lock-discipline) -- delivery on the routed CPU
      Ec* vcpu = gsi_direct_[gsi].get();
      if (vcpu->block_state() == Ec::BlockState::kBlockedHalt) {
        WakeEc(vcpu);
      }
      continue;
    }
    chip.Acknowledge(cpu_id, vector);
    chip.Mask(gsi);
    Charge(cpu_id, costs_.irq_ack);
    CountEvent(ctr_.gsi_delivered, trc_.gsi_delivered, cpu_id, gsi,
               sim::TraceCat::kIrq);
    // nova-lint: allow(lock-discipline) -- delivery on the routed CPU
    if (auto& sm = gsi_sms_[gsi]; sm != nullptr) {
      sm->set_counter(sm->counter() + 1);
      if (!sm->waiters().empty()) {
        auto ec = sm->waiters().front();
        sm->waiters().pop_front();
        WakeSmWaiter(ec.get(), Status::kSuccess);
      }
    }
  }
}

// --- SMP primitives -----------------------------------------------------------

void Hypervisor::ChargeLock(KernelLock& lock, std::uint32_t cpu_id) {
  if (machine_->num_cpus() == 1) {
    return;  // Uncontended by construction; stays cost-free.
  }
  hw::Cpu& c = cpu(cpu_id);
  if (lock.last_cpu != ~0u && lock.last_cpu != cpu_id &&
      c.NowPs() < lock.hold_until_ps) {
    Charge(cpu_id, costs_.lock_contention);
    CountEvent(ctr_.lock_contention, trc_.lock_contention, cpu_id,
               lock.last_cpu, sim::TraceCat::kSched);
  }
  lock.last_cpu = cpu_id;
  lock.hold_until_ps =
      c.NowPs() + c.model().frequency.CyclesToPicos(costs_.lock_hold);
}

void Hypervisor::ShootdownRemotes(std::uint32_t origin_cpu,
                                  std::uint64_t targets, hw::TlbTag tag) {
  hw::Cpu& origin = cpu(origin_cpu);
  for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    if (i == origin_cpu || (targets & (1ull << i)) == 0) {
      continue;
    }
    // Initiator: post the IPI and spin for the ack.
    Charge(origin_cpu, costs_.shootdown_ipi);
    CountEvent(ctr_.tlb_shootdown, trc_.tlb_shootdown, origin_cpu, i,
               sim::TraceCat::kIrq);
    // Target: the IPI arrives no earlier than it was sent; the remote core
    // flushes the tagged entries and acks.
    hw::Cpu& remote = cpu(i);
    remote.AdvanceToPs(origin.NowPs());
    remote.tlb().FlushTag(tag);
    Charge(i, costs_.shootdown_ack + remote.model().tlb_flush);
    if (tracer_->enabled()) {
      tracer_->InstantAt(remote.NowPs(), sim::TraceCat::kIrq,
                         trc_.tlb_shootdown_ack, static_cast<std::uint8_t>(i),
                         tag);
    }
    // The initiator's spin ends when the ack lands.
    origin.AdvanceToPs(remote.NowPs());
  }
}

void Hypervisor::ShootdownVtlb(Ec* origin_vcpu, std::uint64_t gva) {
  if (machine_->num_cpus() == 1) {
    return;  // Sibling vCPUs share the core; no cross-core state exists.
  }
  Pd* vm = &origin_vcpu->pd();
  for (auto it = vcpus_.begin(); it != vcpus_.end();) {
    auto sibling = it->lock();
    if (sibling == nullptr) {
      it = vcpus_.erase(it);
      continue;
    }
    ++it;
    if (sibling.get() == origin_vcpu || &sibling->pd() != vm ||
        sibling->cpu() == origin_vcpu->cpu() || sibling->vtlb() == nullptr) {
      continue;
    }
    const std::uint32_t origin_cpu = origin_vcpu->cpu();
    Charge(origin_cpu, costs_.shootdown_ipi);
    CountEvent(ctr_.tlb_shootdown, trc_.tlb_shootdown, origin_cpu,
               sibling->cpu(), sim::TraceCat::kIrq);
    hw::Cpu& remote = cpu(sibling->cpu());
    remote.AdvanceToPs(cpu(origin_cpu).NowPs());
    sibling->vtlb()->HandleInvlpg(gva);
    Charge(sibling->cpu(), costs_.shootdown_ack);
    if (tracer_->enabled()) {
      tracer_->InstantAt(remote.NowPs(), sim::TraceCat::kIrq,
                         trc_.tlb_shootdown_ack,
                         static_cast<std::uint8_t>(sibling->cpu()), gva);
    }
    cpu(origin_cpu).AdvanceToPs(remote.NowPs());
  }
}

void Hypervisor::SyncDeviceTime() {
  if (machine_->num_cpus() == 1) {
    machine_->SyncDeviceTime();
    return;
  }
  // Device time advances to the floor: the minimum clock over cores with
  // runnable work, so a device can never observe time from a core that
  // raced ahead of another runnable core. Cores without work do not hold
  // the floor back (nothing advances their clocks), and their state stays
  // untouched: a sleeping core's completion time must not depend on how
  // busy its neighbours are. When the last slice just blocked everything,
  // fall back to the dispatching core's clock; the fully-idle path
  // (SkipToNextEvent) takes over from there.
  sim::PicoSeconds floor = 0;
  bool any_runnable = false;
  for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    // nova-lint: allow(per-cpu-state) — machine-wide floor scan.
    if (!cpu_state(i).Runnable()) {
      continue;
    }
    const sim::PicoSeconds now = cpu(i).NowPs();
    floor = any_runnable ? std::min(floor, now) : now;
    any_runnable = true;
  }
  if (!any_runnable) {
    floor = cpu(boot_cpu_for_step_).NowPs();
  }
  machine_->events().AdvanceTo(floor);
}

// --- Scheduling loop ----------------------------------------------------------

std::uint32_t Hypervisor::PickNextCpu() {
  // The runnable CPU with the smallest local time (conservative
  // co-simulation across the package).
  std::uint32_t chosen = ~0u;
  for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    // nova-lint: allow(per-cpu-state) — the picker is the all-cores scan.
    if (!cpu_state(i).HasReady()) {
      continue;
    }
    if (chosen == ~0u || cpu(i).NowPs() < cpu(chosen).NowPs()) {
      chosen = i;
    }
  }
  return chosen;
}

bool Hypervisor::StepOnce() {
  std::uint32_t chosen = PickNextCpu();
  if (chosen == ~0u) {
    // Everything is blocked: handle pending interrupts in host context —
    // this may wake driver threads or halted direct-interrupt vCPUs.
    for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
      ProcessPendingIrqs(i);
    }
    chosen = PickNextCpu();
  }
  if (chosen == ~0u) {
    // Truly idle: hop to the next device event (which may raise an
    // interrupt and unblock work).
    for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
      cpu(i).SetIdle(true);
    }
    const bool progressed = machine_->SkipToNextEvent();
    for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
      cpu(i).SetIdle(false);
    }
    return progressed;
  }
  return DispatchOn(chosen);
}

bool Hypervisor::DispatchOn(std::uint32_t cpu_id) {
  CpuState& state = cpu_state(cpu_id);
  hw::Cpu& c = cpu(cpu_id);

  // Interrupts arriving while the CPU was in host mode are handled at the
  // kernel boundary; a CPU about to enter guest mode instead takes an
  // EXTINT VM exit inside RunVcpu, which is where the paper's "Hardware
  // Interrupts" events come from.
  if (state.PeekReady() != nullptr &&
      state.PeekReady()->ec().kind() == Ec::Kind::kGlobal) {
    ProcessPendingIrqs(cpu_id);
  }

  boot_cpu_for_step_ = cpu_id;
  Charge(cpu_id, costs_.sched_pick);

  Sc* sc = state.PickNext();
  if (sc->dead() || sc->ec().dead() || sc->ec().pd().dead()) {
    // A torn-down domain's SC surfaced from the queue: drop it silently.
    state.SetCurrent(nullptr);
    return true;
  }
  state.SetCurrent(sc);
  // Pin the EC: an event callback inside the slice may destroy the running
  // domain, freeing the SC (and with it the last plain reference).
  const std::shared_ptr<Ec> ec_ref = sc->ec_ref();
  Ec& ec = *ec_ref;
  if (tracer_->enabled()) {
    tracer_->InstantAt(c.NowPs(), sim::TraceCat::kSched, trc_.sched_dispatch,
                       static_cast<std::uint8_t>(cpu_id), sc->prio(),
                       static_cast<std::uint64_t>(ec.kind()));
  }
  const sim::Cycles before = c.cycles();

  switch (ec.kind()) {
    case Ec::Kind::kGlobal:
      ec.step_fn()();
      break;
    case Ec::Kind::kVcpu:
      RunVcpu(sc, sc->left());
      break;
    case Ec::Kind::kLocal:
      break;  // Unreachable: local ECs have no SC.
  }

  state.SetCurrent(nullptr);
  if (ec.dead()) {
    // The domain was torn down by an event inside the slice: its SC died
    // with it and must not be consumed or requeued.
    SyncDeviceTime();
    return true;
  }
  sim::Cycles consumed = c.cycles() - before;
  if (consumed == 0) {
    c.Charge(1);  // Guarantee forward progress.
    consumed = 1;
  }
  const bool depleted = sc->Consume(consumed);

  if (ec.block_state() == Ec::BlockState::kRunnable) {
    if (depleted) {
      // Quantum exhausted with the EC still runnable: a preemption in the
      // round-robin sense — the SC refills and goes to the tail.
      if (tracer_->enabled()) {
        tracer_->InstantAt(c.NowPs(), sim::TraceCat::kSched,
                           trc_.sched_preempt,
                           static_cast<std::uint8_t>(cpu_id), sc->prio());
      }
      sc->Refill();
    }
    state.Enqueue(sc, /*at_head=*/false);
  } else if (ec.block_state() == Ec::BlockState::kBlockedHalt) {
    state.ParkHalted(sc->ec_ref());
  }

  SyncDeviceTime();
  return true;
}

bool Hypervisor::WorkRemainsBefore(sim::PicoSeconds deadline_ps) {
  // Runnable work on a CPU that has not yet reached the deadline, or a
  // pending device event before it, keeps the run loop going. Idle CPUs
  // do not: nothing will advance their clocks.
  for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    // nova-lint: allow(per-cpu-state) — machine-wide progress check.
    if (cpu_state(i).HasReady() && cpu(i).NowPs() < deadline_ps) {
      return true;
    }
  }
  if (!machine_->events().empty() &&
      machine_->events().NextDeadline() < deadline_ps) {
    return true;
  }
  // A pending hardware interrupt can wake blocked threads or halted vCPUs.
  for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    if (machine_->irq().HasPending(i)) {
      return true;
    }
  }
  return false;
}

void Hypervisor::RunUntil(sim::PicoSeconds deadline_ps) {
  while (WorkRemainsBefore(deadline_ps)) {
    if (!StepOnce()) {
      return;  // Fully idle, no pending events: nothing will ever happen.
    }
  }
}

void Hypervisor::RunUntilCondition(const std::function<bool()>& pred,
                                   sim::PicoSeconds deadline_ps) {
  while (!pred() && WorkRemainsBefore(deadline_ps)) {
    if (!StepOnce()) {
      return;
    }
  }
}

}  // namespace nova::hv
