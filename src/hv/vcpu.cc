// Virtual-CPU execution: world switches, VM-exit dispatch through event
// portals, and architectural state transfer governed by each portal's
// message transfer descriptor (§5.2, §7).
#include "src/hv/kernel.h"

#include <algorithm>

#include "src/hv/dirty_log.h"

namespace nova::hv {
namespace {

// Pack PIO qualification the way the exit message carries it.
std::uint64_t PackPioQual(const hw::VmExit& exit) {
  return static_cast<std::uint64_t>(exit.port) |
         (static_cast<std::uint64_t>(exit.width) << 16) |
         (static_cast<std::uint64_t>(exit.is_write ? 1 : 0) << 24) |
         (static_cast<std::uint64_t>(exit.reg) << 25);
}

}  // namespace

void Hypervisor::TransferToUtcb(Ec* vcpu, const hw::VmExit& exit, Mtd m,
                                Utcb& utcb) {
  const std::uint32_t cpu_id = vcpu->cpu();
  const hw::CpuModel& model = cpu(cpu_id).model();
  hw::GuestState& gs = vcpu->gstate();
  ArchState& a = utcb.arch;

  // Reading guest state out of the VMCS costs one VMREAD per field; the
  // MTD keeps this minimal (§5.2). On AMD the VMCB is plain memory and
  // the reads are ordinary loads.
  const sim::Cycles read_cost = model.vmread != 0 ? model.vmread : model.mem_access;
  Charge(cpu_id, static_cast<sim::Cycles>(mtd::FieldCount(m)) * read_cost);
  Charge(cpu_id, static_cast<sim::Cycles>(mtd::WordCount(m)) * model.word_copy);

  if (m & mtd::kGprAcdb) {
    for (int i = 0; i < 4; ++i) a.regs[i] = gs.regs[i];
  }
  if (m & mtd::kGprBsd) {
    for (int i = 4; i < 8; ++i) a.regs[i] = gs.regs[i];
  }
  if (m & mtd::kRip) {
    a.rip = gs.rip;
    a.insn_len = hw::isa::kInsnSize;
  }
  if (m & mtd::kRflags) {
    a.interrupts_enabled = gs.interrupts_enabled;
  }
  if (m & mtd::kCr) {
    a.cr3 = gs.cr3;
    a.cr2 = gs.cr2;
    a.paging = gs.paging;
  }
  if (m & mtd::kQual) {
    a.qual_gva = exit.gva;
    a.qual_gpa = exit.gpa;
    a.qual = exit.reason == hw::ExitReason::kPio ? PackPioQual(exit) : exit.qual;
  }
  if (m & mtd::kInj) {
    a.inject_pending = gs.inject_pending;
    a.inject_vector = gs.inject_vector;
    a.request_intr_window = gs.request_intr_window;
  }
  if (m & mtd::kSta) {
    a.halted = gs.halted;
  }
  if (m & mtd::kTsc) {
    a.tsc = cpu(cpu_id).cycles();
  }
  utcb.mtd = m;
}

void Hypervisor::TransferFromUtcb(Ec* vcpu, Mtd m, const Utcb& utcb) {
  const std::uint32_t cpu_id = vcpu->cpu();
  const hw::CpuModel& model = cpu(cpu_id).model();
  hw::GuestState& gs = vcpu->gstate();
  const ArchState& a = utcb.arch;

  const sim::Cycles write_cost = model.vmwrite != 0 ? model.vmwrite : model.mem_access;
  Charge(cpu_id, static_cast<sim::Cycles>(mtd::FieldCount(m)) * write_cost);
  Charge(cpu_id, static_cast<sim::Cycles>(mtd::WordCount(m)) * model.word_copy);

  if (m & mtd::kGprAcdb) {
    for (int i = 0; i < 4; ++i) gs.regs[i] = a.regs[i];
  }
  if (m & mtd::kGprBsd) {
    for (int i = 4; i < 8; ++i) gs.regs[i] = a.regs[i];
  }
  if (m & mtd::kRip) {
    gs.rip = a.rip;
  }
  if (m & mtd::kRflags) {
    gs.interrupts_enabled = a.interrupts_enabled;
  }
  if (m & mtd::kCr) {
    gs.cr3 = a.cr3;
    gs.cr2 = a.cr2;
    gs.paging = a.paging;
  }
  if (m & mtd::kInj) {
    gs.inject_pending = a.inject_pending;
    gs.inject_vector = a.inject_vector;
    gs.request_intr_window = a.request_intr_window;
  }
  if (m & mtd::kSta) {
    gs.halted = a.halted;
  }
  if (m & mtd::kTlbFlush) {
    cpu(cpu_id).tlb().FlushTag(vcpu->ctl().tag);
    if (vcpu->ctl().mode == hw::TranslationMode::kShadow) {
      VtlbFor(vcpu).Flush();
    }
  }
}

bool Hypervisor::DispatchVmEvent(Ec* vcpu, Event event, const hw::VmExit& exit) {
  const std::uint32_t cpu_id = vcpu->cpu();
  Pd& vm = vcpu->pd();
  const CapSel sel = vcpu->evt_base() + static_cast<CapSel>(event);

  // The kernel looks up the event portal in the *VM's* capability space;
  // the VM itself cannot perform hypercalls (§4.2).
  Pt* pt = LookupCharged<Pt>(&vm, sel, ObjType::kPt, perm::kCall, cpu_id);
  if (pt == nullptr) {
    CountEvent(ctr_.vm_event_unhandled, trc_.vm_event_unhandled, cpu_id);
    return false;
  }
  Ec& handler = pt->handler();
  if (handler.cpu() != cpu_id || handler.busy()) {
    return false;
  }

  // Donation: the virtual CPU lends its scheduling context to the handler,
  // so the whole VM-exit handling is accounted to the VM's time quantum
  // and the kernel switches without consulting the scheduler (§5.2).
  const hw::CpuModel& model = cpu(cpu_id).model();
  Charge(cpu_id, costs_.portal_traversal + costs_.context_switch +
                     costs_.addr_space_switch + model.tlb_flush / 2 +
                     costs_.ipc_refill_entries * model.tlb_refill_entry);
  CountEvent(ctr_.vm_event_ipc, trc_.vm_event, cpu_id,
             static_cast<std::uint64_t>(event), sim::TraceCat::kIpc);

  TransferToUtcb(vcpu, exit, pt->mtd(), handler.utcb());
  handler.set_busy(true);
  handler.handler()(pt->id());
  handler.set_busy(false);

  // Reply capability invocation: new state for the virtual CPU.
  Charge(cpu_id, costs_.reply_path + costs_.context_switch +
                     costs_.addr_space_switch);
  TransferFromUtcb(vcpu, handler.utcb().mtd, handler.utcb());
  return true;
}

void Hypervisor::RunVcpu(Sc* sc, sim::Cycles budget) {
  // Pin the vCPU for the slice: device events fired inside it (via
  // SyncDeviceTime) may tear down this very domain — the root's crash
  // recovery does exactly that — which frees the SC and, without the pin,
  // the guest state this loop reads.
  const std::shared_ptr<Ec> pin = sc->ec_ref();
  Ec* vcpu = pin.get();
  const std::uint32_t cpu_id = vcpu->cpu();
  // This core is about to hold translations tagged with the VM's tag:
  // record it so unmaps know which cores to shoot down.
  vcpu->pd().NoteCore(cpu_id);
  hw::Cpu& c = cpu(cpu_id);
  const hw::CpuModel& model = c.model();
  hw::VmEngine& engine = *engines_[cpu_id];
  hw::GuestState& gs = vcpu->gstate();
  hw::VmControls& ctl = vcpu->ctl();

  const sim::Cycles start = c.cycles();
  bool need_entry = true;  // Charge world-switch costs only on real entries.
  for (;;) {
    if (need_entry) {
      // --- VM entry ---
      c.Charge(model.vm_resume);
      if (!model.has_guest_tlb_tags) {
        // Untagged TLB: every world switch flushes (§8.1, VPID discussion).
        c.tlb().FlushAll();
        c.Charge(model.tlb_flush);
      }
      need_entry = false;
    }

    const sim::Cycles used = c.cycles() - start;
    if (used >= budget) {
      return;
    }
    // Bound the slice by the next device event so completions and timer
    // ticks are delivered with hardware latency, not quantum latency.
    sim::Cycles slice = budget - used;
    SyncDeviceTime();
    if (vcpu->dead()) {
      return;  // An event callback destroyed the domain mid-slice.
    }
    if (!machine_->events().empty()) {
      const sim::PicoSeconds deadline = machine_->events().NextDeadline();
      if (deadline > c.NowPs()) {
        const sim::Cycles target = model.frequency.PicosToCycles(deadline);
        const sim::Cycles until = target > c.cycles() ? target - c.cycles() + 1 : 1;
        slice = std::min(slice, until);
      }
    }
    const hw::VmExit exit = engine.Run(gs, ctl, slice);
    SyncDeviceTime();
    if (vcpu->dead()) {
      return;
    }

    if (exit.reason == hw::ExitReason::kPreempt &&
        c.cycles() - start < budget) {
      continue;  // Slice ended for device-event delivery: no world switch.
    }

    // --- VM exit ---
    c.Charge(model.vm_exit);
    need_entry = true;
    if (!model.has_guest_tlb_tags) {
      // Untagged parts flush on both transitions; the cycle cost for the
      // round trip is charged once on the entry path.
      c.tlb().FlushAll();
    }

    // Host-side handling span ("exit:<reason>"): Begin here, End on every
    // path out of the handling below — including the early returns —
    // courtesy of the scope guard.
    sim::ScopedSpan exit_span(
        tracer_, sim::TraceCat::kVmExit,
        trc_.exit[static_cast<int>(exit.reason)],
        static_cast<std::uint8_t>(cpu_id), [&c] { return c.NowPs(); },
        exit.gva, static_cast<std::uint64_t>(exit.reason));

    switch (exit.reason) {
      case hw::ExitReason::kPreempt:
        return;

      case hw::ExitReason::kHlt:
        if (ctl.intercept_hlt) {
          CountEvent(ctr_.hlt, trc_.hlt, cpu_id);
          if (!DispatchVmEvent(vcpu, Event::kHlt, exit)) {
            vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
            return;
          }
          if (gs.halted) {
            // The VMM parked the virtual CPU until the next event.
            vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
            return;
          }
          break;
        }
        // Uninterceped halt (direct configuration): idle until the next
        // interrupt arrives for this CPU.
        vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
        return;

      case hw::ExitReason::kExtInt:
        CountEvent(ctr_.hw_intr, trc_.hw_intr, cpu_id);
        ProcessPendingIrqs(cpu_id);
        // Return to the scheduler: the unblocked driver thread may have
        // a higher-priority scheduling context.
        return;

      case hw::ExitReason::kRecall: {
        gs.recall_pending = false;
        CountEvent(ctr_.recall, trc_.recall, cpu_id);
        if (!DispatchVmEvent(vcpu, Event::kRecall, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        if (gs.halted) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;
      }

      case hw::ExitReason::kPageFault: {
        // Shadow paging: run the vTLB algorithm entirely inside the
        // kernel — no user-level IPC (§5.3).
        std::uint64_t gpa = 0;
        switch (VtlbFor(vcpu).Resolve(exit, &gpa)) {
          case Vtlb::Outcome::kFilled:
            CountEvent(ctr_.vtlb_fill, trc_.vtlb_fill, cpu_id, exit.gva);
            break;
          case Vtlb::Outcome::kGuestFault:
            CountEvent(ctr_.guest_pf, trc_.guest_pf, cpu_id, exit.gva);
            gs.cr2 = exit.gva;
            if (!engine.InjectEvent(gs, hw::kVectorPageFault)) {
              DispatchVmEvent(vcpu, Event::kError, exit);
              return;
            }
            break;
          case Vtlb::Outcome::kHostFault: {
            hw::VmExit mmio = exit;
            mmio.gpa = gpa;
            CountEvent(ctr_.mmio, trc_.mmio, cpu_id, gpa);
            if (!DispatchVmEvent(vcpu, Event::kMmio, mmio)) {
              vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
              return;
            }
            break;
          }
          case Vtlb::Outcome::kNoMem:
            // The VM's kernel-memory quota is exhausted and eviction found
            // nothing to reclaim: surface the failure to the VMM and park
            // the vCPU; a Recall retries once the monitor frees resources.
            CountEvent(ctr_.vm_error, trc_.vm_error, cpu_id);
            DispatchVmEvent(vcpu, Event::kError, exit);
            vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
            return;
        }
        break;
      }

      case hw::ExitReason::kEptViolation:
        // Dirty-log write-protect trap: restore the page and retry the
        // instruction in-kernel, without a VMM round-trip.
        if (exit.is_write && dirty_log_ != nullptr &&
            dirty_log_->HandleWriteFault(vcpu, exit.gpa)) {
          Charge(cpu_id, costs_.map_page);
          break;
        }
        CountEvent(ctr_.mmio, trc_.mmio, cpu_id, exit.gpa);
        if (!DispatchVmEvent(vcpu, Event::kMmio, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;

      case hw::ExitReason::kPio:
        CountEvent(ctr_.pio, trc_.pio, cpu_id, exit.port);
        if (!DispatchVmEvent(vcpu, Event::kPio, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;

      case hw::ExitReason::kCpuid:
        CountEvent(ctr_.cpuid, trc_.cpuid, cpu_id);
        if (!DispatchVmEvent(vcpu, Event::kCpuid, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;

      case hw::ExitReason::kMovCr:
        CountEvent(ctr_.mov_cr, trc_.mov_cr, cpu_id, exit.qual);
        if (ctl.mode == hw::TranslationMode::kShadow) {
          VtlbFor(vcpu).HandleMovCr3(exit.qual);
          gs.rip += hw::isa::kInsnSize;  // Emulated: skip the instruction.
        } else if (!DispatchVmEvent(vcpu, Event::kMovCr, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;

      case hw::ExitReason::kInvlpg:
        CountEvent(ctr_.invlpg, trc_.invlpg, cpu_id, exit.gva);
        if (ctl.mode == hw::TranslationMode::kShadow) {
          VtlbFor(vcpu).HandleInvlpg(exit.gva);
          // Sibling vCPUs on other cores cache the same guest mapping in
          // their own shadow contexts; invalidate them via shootdown.
          ShootdownVtlb(vcpu, exit.gva);
          gs.rip += hw::isa::kInsnSize;  // Emulated: skip the instruction.
        } else if (!DispatchVmEvent(vcpu, Event::kInvlpg, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;

      case hw::ExitReason::kIntrWindow:
        CountEvent(ctr_.intr_window, trc_.intr_window, cpu_id);
        if (!DispatchVmEvent(vcpu, Event::kIntrWindow, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;

      case hw::ExitReason::kVmcall:
        CountEvent(ctr_.vmcall, trc_.vmcall, cpu_id, exit.hypercall);
        if (!DispatchVmEvent(vcpu, Event::kVmcall, exit)) {
          vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
          return;
        }
        break;

      case hw::ExitReason::kError:
      case hw::ExitReason::kNone:
        CountEvent(ctr_.vm_error, trc_.vm_error, cpu_id);
        DispatchVmEvent(vcpu, Event::kError, exit);
        // Unrecoverable: park the virtual CPU.
        vcpu->set_block_state(Ec::BlockState::kBlockedHalt);
        return;
    }

    if (c.cycles() - start >= budget) {
      return;
    }
  }
}

}  // namespace nova::hv
