// Per-PD kernel-memory accounting.
//
// Every kernel frame the hypervisor hands out — page-table nodes, shadow
// (vTLB) tables, capability-space chunks, per-object frames (UTCB, VMCS,
// SC, portal, semaphore) — is charged against a KmemQuota account. The
// accounting unit is one 4 KiB kernel frame; sub-frame objects round up
// to a whole frame, matching NOVA's slab-per-frame kernel allocator.
//
// Accounts form a donation tree mirroring the PD creation tree:
//
//  - A *bounded* account has a finite limit, carved out of (donated from)
//    the creator's nearest bounded ancestor at CreatePd time. The root
//    PD's account is bounded by the kernel frame pool itself.
//  - A *pass-through* account (the default) has no limit of its own;
//    charges walk up the donor chain and land on the nearest bounded
//    ancestor. A PD tree with no explicit quotas therefore behaves
//    exactly like the pre-quota kernel: one shared pool, root-bounded.
//
// Charges are recorded on every account along the walk so that a PD's
// used() always reflects its own subtree, and destroying a PD can credit
// precisely what it consumed.
#ifndef SRC_HV_KMEM_H_
#define SRC_HV_KMEM_H_

#include <cstdint>

#include "src/hw/phys_mem.h"
#include "src/sim/snapshot.h"
#include "src/sim/status.h"

namespace nova::hv {

class Pd;

// One PD's kernel-memory account, in 4 KiB frame units.
class KmemQuota {
 public:
  static constexpr std::uint64_t kUnlimited = ~0ull;

  // A bounded account has a finite limit carved from its donor.
  bool bounded() const { return limit_ != kUnlimited; }
  std::uint64_t limit() const { return limit_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t available() const {
    return bounded() ? limit_ - used_ : kUnlimited;
  }

  // Terminal charge/credit on this account (the donor walk lives in
  // Pd::ChargeKmem, which knows the tree).
  [[nodiscard]] bool TryCharge(std::uint64_t frames) {
    if (bounded() && limit_ - used_ < frames) return false;
    used_ += frames;
    return true;
  }
  // Unconditional usage record for pass-through accounts on the walk
  // between a charging PD and its bounded terminal.
  void RecordCharge(std::uint64_t frames) { used_ += frames; }
  void Credit(std::uint64_t frames) {
    used_ = frames > used_ ? 0 : used_ - frames;
  }

  // Donation: move `frames` of limit between bounded accounts. The caller
  // (CreatePd / ReclaimPd) checks availability on the donor first.
  void SetLimit(std::uint64_t limit) { limit_ = limit; }
  void GrowLimit(std::uint64_t frames) { limit_ += frames; }
  void ShrinkLimit(std::uint64_t frames) {
    limit_ = frames > limit_ ? 0 : limit_ - frames;
  }

  Status SaveState(sim::SnapWriter& w) const {
    w.U64(limit_);
    w.U64(used_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    limit_ = r.U64();
    used_ = r.U64();
    return r.status();
  }

 private:
  // snapshot-x-list(KmemQuota): limit_, used_
  std::uint64_t limit_ = kUnlimited;  // kUnlimited => pass-through.
  std::uint64_t used_ = 0;
};

// Frame source that charges the owning PD's quota chain. Implemented by
// the Hypervisor; Pd holds it so page-table growth inside MemSpace is
// accounted without objects.h depending on kernel.h.
class KmemPool {
 public:
  virtual ~KmemPool() = default;

  // Allocate one zeroed kernel frame charged to `pd`'s account chain.
  // Returns 0 when the quota or the pool is exhausted.
  // [[nodiscard]]: kNullPhys on quota exhaustion must be observed, or
  // the caller writes page-table entries into frame 0.
  [[nodiscard]] virtual hw::PhysAddr AllocFrameFor(Pd* pd) = 0;

  // Return a frame to the pool and credit `pd`'s account chain.
  virtual void FreeFrameFor(Pd* pd, hw::PhysAddr frame) = 0;
};

}  // namespace nova::hv

#endif  // SRC_HV_KMEM_H_
