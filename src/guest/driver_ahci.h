// Guest AHCI miniport driver.
//
// The same driver code runs against the fully virtualized controller
// (window at the virtual MMIO base — every register access exits to the
// VMM), the directly assigned host controller (window mapped into the
// guest — register accesses go straight to hardware, DMA remapped by the
// IOMMU), and bare metal. Per request the driver performs exactly the six
// MMIO register accesses the paper reports (§8.2): slot check + issue on
// submission, and IS/PxIS read + two write-one-clear stores on completion.
#ifndef SRC_GUEST_DRIVER_AHCI_H_
#define SRC_GUEST_DRIVER_AHCI_H_

#include <cstdint>
#include <functional>

#include "src/guest/kernel.h"
#include "src/hw/ahci.h"

namespace nova::guest {

class GuestAhciDriver {
 public:
  struct Config {
    std::uint64_t mmio_base = 0xfe00'0000;  // Virtualized controller default.
    std::uint8_t irq_vector = 43;
    std::uint64_t cmd_gpa = 0x7e0000;  // Command list + tables (guest RAM).
    // Reads the controller's PxCI register for completion bookkeeping
    // (stands for the driver's in-memory tag tracking; the cost of that
    // bookkeeping is charged inside the ISR).
    std::function<std::uint32_t()> read_ci;
    // Error handling is opt-in: when enabled the ISR also reads the error
    // slot register (kPxVs), acknowledges it and re-issues failed slots —
    // three extra MMIO accesses per interrupt. Off by default so the
    // fault-free six-MMIO budget of §8.2 is untouched.
    bool handle_errors = false;
    std::function<std::uint32_t()> read_err;
  };

  GuestAhciDriver(GuestKernel* gk, Config config);

  // Emit the one-time bring-up MMIO sequence (GHC, CLB, IE, CMD).
  void EmitInit();

  // Emit the request-submission sequence. At runtime expects:
  //   r1 = LBA, r2 = sector count, r3 = DMA buffer GPA.
  // Two MMIO accesses: read PxCI (free-slot check), write PxCI (issue).
  void EmitIssueSequence();

  // Emit the completion ISR (4 MMIO accesses + PIC handshake) and register
  // its vector. `on_complete` runs host-side per completed request.
  void EmitIsr(std::function<void(int completed)> on_complete);

  std::uint64_t issued() const { return issued_count_; }
  std::uint64_t completed() const { return completed_count_; }
  std::uint64_t retried() const { return retried_count_; }
  std::uint32_t issued_mask() const { return issued_mask_; }

  // Host-side mirror of the driver's in-flight bookkeeping; the emitted
  // code and logic slots are construction-time (verified).
  Status SaveState(sim::SnapWriter& w) const {
    w.U32(prepare_logic_);
    w.U32(completion_logic_);
    w.U32(issued_mask_);
    w.U64(issued_count_);
    w.U64(completed_count_);
    w.U64(retried_count_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    if (r.U32() != prepare_logic_ || r.U32() != completion_logic_) {
      r.Fail();
    }
    issued_mask_ = r.U32();
    issued_count_ = r.U64();
    completed_count_ = r.U64();
    retried_count_ = r.U64();
    return r.ok() ? Status::kSuccess : Status::kBadParameter;
  }

 private:
  // snapshot-x-list(GuestAhciDriver): gk_, config_, prepare_logic_,
  //   completion_logic_, on_complete_, issued_mask_, issued_count_,
  //   completed_count_, retried_count_
  void PrepareLogic(hw::GuestState& gs);
  void CompletionLogic(hw::GuestState& gs);

  GuestKernel* gk_;
  Config config_;
  std::uint32_t prepare_logic_ = 0;
  std::uint32_t completion_logic_ = 0;
  std::function<void(int)> on_complete_;
  std::uint32_t issued_mask_ = 0;
  std::uint64_t issued_count_ = 0;
  std::uint64_t completed_count_ = 0;
  std::uint64_t retried_count_ = 0;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_DRIVER_AHCI_H_
