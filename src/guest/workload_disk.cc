#include "src/guest/workload_disk.h"

namespace nova::guest {

DiskWorkload::DiskWorkload(GuestKernel* gk, GuestAhciDriver* driver, Config config)
    : gk_(gk), driver_(driver), config_(config) {
  next_logic_ =
      gk_->mux().Register([this](hw::GuestState& gs) { NextRequestLogic(gs); });
  check_logic_ = gk_->mux().Register([this](hw::GuestState& gs) { CheckLogic(gs); });
}

void DiskWorkload::NextRequestLogic(hw::GuestState& gs) {
  if (issued_ >= config_.total_requests) {
    gs.regs[7] = 1;  // Finished.
    done_ = completed_ >= config_.total_requests;
    return;
  }
  gs.regs[7] = 0;
  gs.regs[1] = next_lba_;                                   // LBA.
  gs.regs[2] = config_.block_bytes / hw::kSectorSize;       // Sectors.
  gs.regs[3] = config_.buffer_gpa;                          // DMA buffer.
  next_lba_ += config_.block_bytes / hw::kSectorSize;       // Sequential.
  ++issued_;
  outstanding_ = true;
}

void DiskWorkload::CheckLogic(hw::GuestState& gs) {
  gs.regs[0] = outstanding_ ? 0 : 1;
}

std::uint64_t DiskWorkload::EmitMain() {
  hw::isa::Assembler& as = gk_->text();

  // Completion ISR: mark the request finished.
  driver_->EmitIsr([this](int completed) {
    completed_ += completed;
    outstanding_ = false;
    if (completed_ >= config_.total_requests) {
      done_ = true;
    }
  });

  const std::uint64_t main = as.Here();
  driver_->EmitInit();

  const std::uint64_t loop = as.Here();
  as.GuestLogic(next_logic_);  // r1=lba r2=sectors r3=buffer, r7=finished.
  const std::uint64_t jnz_finish = as.Jnz(7, 0);
  as.NopBlock(9500);  // Application + kernel block layer (syscall, VFS,
                     // block, SCSI midlayer) on the submission side.
  driver_->EmitIssueSequence();

  // Wait for the completion interrupt (direct I/O blocks the caller).
  const std::uint64_t wait = as.Here();
  as.GuestLogic(check_logic_);
  const std::uint64_t jnz_next = as.Jnz(0, 0);
  as.Sti();
  as.Hlt();
  as.Jmp(wait);
  as.PatchImm64(jnz_next, as.Here());
  as.NopBlock(6500);  // Completion side of the block stack + copyout.
  as.Jmp(loop);

  const std::uint64_t finish = gk_->EmitIdleLoop();
  as.PatchImm64(jnz_finish, finish);
  return main;
}

}  // namespace nova::guest
