// Guest NIC driver (e1000-style receive path).
//
// Sets up the receive descriptor ring in guest memory, and services
// receive interrupts: one ICR read (which clears the cause), a per-packet
// payload copy into the application buffer, a descriptor write-back, one
// RDT store per drained batch, and the interrupt-controller handshake —
// the structure whose per-interrupt cost Figure 7 measures.
#ifndef SRC_GUEST_DRIVER_NIC_H_
#define SRC_GUEST_DRIVER_NIC_H_

#include <cstdint>
#include <functional>

#include "src/guest/kernel.h"
#include "src/hw/nic.h"

namespace nova::guest {

class GuestNicDriver {
 public:
  struct Config {
    std::uint64_t mmio_base = 0xc010'0000;  // Host NIC window (direct/native).
    std::uint8_t irq_vector = 42;
    std::uint64_t ring_gpa = 0x7c0000;
    std::uint32_t ring_entries = 256;
    std::uint64_t buffers_gpa = GuestLayout::kDmaBase;
    std::uint32_t buffer_stride = 0x4000;   // Up to jumbo frames.
    std::uint64_t app_buffer_gpa = 0x7a0000;
    std::uint32_t packet_bytes = 1472;      // Expected frame size (copy len).
  };

  GuestNicDriver(GuestKernel* gk, Config config);

  // Emit ring bring-up: descriptor construction plus the six programming
  // MMIO stores (RDBAL, RDLEN, RDH, RDT, IMS, RCTL).
  void EmitInit();

  // Emit the receive ISR and register its vector. `on_packet` runs
  // host-side for each consumed frame.
  void EmitIsr(std::function<void()> on_packet = nullptr);

  std::uint64_t packets_consumed() const { return packets_; }

 private:
  void SetupLogic(hw::GuestState& gs);
  void NextPacketLogic(hw::GuestState& gs);

  GuestKernel* gk_;
  Config config_;
  std::uint32_t setup_logic_ = 0;
  std::uint32_t next_logic_ = 0;
  std::function<void()> on_packet_;
  std::uint32_t tail_ = 0;  // Next descriptor the driver will look at.
  std::uint64_t packets_ = 0;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_DRIVER_NIC_H_
