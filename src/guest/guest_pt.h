// Guest page-table construction.
//
// Guest operating systems build real two-level 32-bit page tables inside
// their own guest-physical memory: every entry holds a guest-physical
// address. Because the builder runs host-side (it plays the role of the
// guest kernel's early boot code), it writes through a GPA->HPA mapping
// function instead of going through the MMU.
#ifndef SRC_GUEST_GUEST_PT_H_
#define SRC_GUEST_GUEST_PT_H_

#include <cstdint>
#include <functional>

#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/sim/status.h"

namespace nova::guest {

class GuestPageTableBuilder {
 public:
  // `gpa_to_hpa` converts guest-physical to host-physical addresses (for a
  // contiguously delegated guest this is a fixed offset).
  // Frames for intermediate tables are taken from a bump pool starting at
  // `frame_pool_gpa`.
  GuestPageTableBuilder(hw::PhysMem* mem,
                        std::function<std::uint64_t(std::uint64_t)> gpa_to_hpa,
                        std::uint64_t frame_pool_gpa)
      : mem_(mem), gpa_to_hpa_(std::move(gpa_to_hpa)), pool_next_(frame_pool_gpa) {}

  // Map gva -> gpa in the table rooted at guest-physical `root_gpa`.
  // `page_size` is 4 KiB or 4 MiB. Flags are PTE bits (kWritable etc.).
  Status Map(std::uint64_t root_gpa, std::uint64_t gva, std::uint64_t gpa,
             std::uint64_t page_size, std::uint64_t flags);

  Status Unmap(std::uint64_t root_gpa, std::uint64_t gva);

  // Guest-physical address of the leaf entry covering `gva` (for guests
  // that edit their own tables), or 0 when unmapped.
  std::uint64_t LeafEntryGpa(std::uint64_t root_gpa, std::uint64_t gva) const;

  std::uint64_t pool_next() const { return pool_next_; }
  // The pool cursor is the builder's only mutable state — table frame
  // *contents* live in guest RAM and ride the memory image.
  void set_pool_next(std::uint64_t gpa) { pool_next_ = gpa; }

 private:
  // snapshot-x-list(GuestPageTableBuilder): mem_, gpa_to_hpa_, pool_next_
  std::uint32_t ReadEntry(std::uint64_t table_gpa, std::uint64_t index) const {
    return mem_->Read32(gpa_to_hpa_(table_gpa) + index * 4);
  }
  void WriteEntry(std::uint64_t table_gpa, std::uint64_t index, std::uint32_t v) {
    // Table frames come from the builder's own pool, in installed RAM by
    // construction; a fault here would mean a corrupted pool cursor.
    (void)mem_->Write32(gpa_to_hpa_(table_gpa) + index * 4, v);
  }

  hw::PhysMem* mem_;
  std::function<std::uint64_t(std::uint64_t)> gpa_to_hpa_;
  std::uint64_t pool_next_;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_GUEST_PT_H_
