#include "src/guest/driver_ahci.h"

#include <cstring>

namespace nova::guest {

GuestAhciDriver::GuestAhciDriver(GuestKernel* gk, Config config)
    : gk_(gk), config_(std::move(config)) {
  prepare_logic_ =
      gk_->mux().Register([this](hw::GuestState& gs) { PrepareLogic(gs); });
  completion_logic_ =
      gk_->mux().Register([this](hw::GuestState& gs) { CompletionLogic(gs); });
  gk_->MapDevice(gk_->kernel_cr3(), config_.mmio_base, hw::kPageSize);
}

void GuestAhciDriver::EmitInit() {
  hw::isa::Assembler& as = gk_->text();
  as.MovImm(1, hw::ahci::kGhcIntrEnable);
  as.Store(1, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kGhc);
  as.MovImm(1, config_.cmd_gpa);
  as.Store(1, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxClb);
  as.MovImm(1, config_.handle_errors ? (hw::ahci::kPxIsDhrs | hw::ahci::kPxIsTfes)
                                     : hw::ahci::kPxIsDhrs);
  as.Store(1, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxIe);
  as.MovImm(1, hw::ahci::kPxCmdStart);
  as.Store(1, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxCmd);
}

void GuestAhciDriver::PrepareLogic(hw::GuestState& gs) {
  // Driver submission path: pick a free slot and build the command list
  // entry, command FIS and PRDT in the driver's own (guest) memory. These
  // are ordinary guest RAM writes; their cost is charged by the NopBlock
  // the emitter places next to this logic op.
  const std::uint64_t lba = gs.regs[1];
  const std::uint64_t sectors = gs.regs[2];
  const std::uint64_t buffer_gpa = gs.regs[3];

  int slot = -1;
  for (int s = 0; s < hw::ahci::kNumSlots; ++s) {
    if ((issued_mask_ & (1u << s)) == 0) {
      slot = s;
      break;
    }
  }
  if (slot < 0) {
    gs.regs[4] = 0;  // No free slot: the emitted code retries.
    return;
  }

  // Command header.
  std::uint8_t header[32] = {};
  const std::uint32_t dw0 = 1u << 16;  // One PRDT entry, read.
  std::memcpy(header, &dw0, 4);
  const auto ctba = static_cast<std::uint32_t>(config_.cmd_gpa + 0x400 + slot * 0x100);
  std::memcpy(header + 8, &ctba, 4);
  gk_->WriteGuestRaw(config_.cmd_gpa + slot * 32ull, header, sizeof(header));

  // Command FIS + PRDT.
  std::uint8_t table[0x90] = {};
  table[0] = hw::ahci::kFisH2d;
  table[2] = hw::ahci::kCmdReadDmaExt;
  for (int i = 0; i < 6; ++i) {
    table[4 + i] = static_cast<std::uint8_t>(lba >> (8 * i));
  }
  const auto sect16 = static_cast<std::uint16_t>(sectors);
  std::memcpy(table + 12, &sect16, 2);
  std::memcpy(table + 0x80, &buffer_gpa, 8);
  const auto dbc = static_cast<std::uint32_t>(sectors * hw::kSectorSize - 1);
  std::memcpy(table + 0x80 + 12, &dbc, 4);
  gk_->WriteGuestRaw(ctba, table, sizeof(table));

  issued_mask_ |= 1u << slot;
  ++issued_count_;
  gs.regs[4] = 1u << slot;  // CI bit for the issue store.
}

void GuestAhciDriver::EmitIssueSequence() {
  hw::isa::Assembler& as = gk_->text();
  const std::uint64_t retry = as.Here();
  as.NopBlock(1600);  // Command-structure setup (header, FIS, PRDT).
  as.GuestLogic(prepare_logic_);
  as.Jnz(4, as.Here() + 2 * hw::isa::kInsnSize);  // Got a slot?
  as.Jmp(retry);
  // Six-MMIO budget, submission half: free-slot check + issue.
  as.Load(5, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxCi);
  as.Store(4, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxCi);
}

void GuestAhciDriver::CompletionLogic(hw::GuestState& gs) {
  // Driver tag bookkeeping: which of our issued slots completed?
  const std::uint32_t ci = config_.read_ci ? config_.read_ci() : 0;
  std::uint32_t err = 0;
  if (config_.handle_errors && config_.read_err) {
    err = config_.read_err() & issued_mask_;
  }
  const std::uint32_t done = issued_mask_ & ~ci & ~err;
  int completed = 0;
  for (int s = 0; s < hw::ahci::kNumSlots; ++s) {
    if (done & (1u << s)) {
      ++completed;
    }
    if (err & (1u << s)) {
      ++retried_count_;
    }
  }
  // Errored slots stay issued: the emitted ISR tail re-stores their CI
  // bits, which re-submits the commands to the controller.
  issued_mask_ = (issued_mask_ & ci) | err;
  completed_count_ += completed;
  gs.regs[5] = completed;
  if (on_complete_ && completed > 0) {
    on_complete_(completed);
  }
}

void GuestAhciDriver::EmitIsr(std::function<void(int)> on_complete) {
  on_complete_ = std::move(on_complete);
  hw::isa::Assembler& as = gk_->text();
  const std::uint64_t isr = as.Here();
  // Completion half of the six-MMIO budget: read both interrupt-status
  // registers and acknowledge them with write-one-clear stores.
  as.Load(1, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kIs);
  as.Load(2, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxIs);
  as.Store(2, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxIs);
  as.Store(1, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kIs);
  if (config_.handle_errors) {
    // Error tail, branchless (storing 0 is harmless): read the errored
    // slot mask, let the bookkeeping below see it, then acknowledge it and
    // re-issue the failed slots. Register 6 only — register 4 holds the
    // live issue-path CI bit and an ISR can interleave with submission.
    as.Load(6, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxVs);
  }
  as.NopBlock(1400);  // Tag bookkeeping, request teardown.
  as.GuestLogic(completion_logic_);
  if (config_.handle_errors) {
    as.Store(6, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxVs);
    as.Store(6, hw::isa::kNoReg, config_.mmio_base + hw::ahci::kPxCi);
  }
  gk_->EmitPicHandshake();
  as.Iret();
  gk_->SetVector(config_.irq_vector, isr);
}

}  // namespace nova::guest
