// Guest-logic dispatch.
//
// Guest kernels express dynamic, data-dependent decisions (next workload
// address, page-fault policy, command assembly) through kGuestLogic
// instructions. Each engine has a single callback; the mux fans those out
// to registered handlers by id.
#ifndef SRC_GUEST_LOGIC_MUX_H_
#define SRC_GUEST_LOGIC_MUX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/hw/guest_state.h"
#include "src/hw/vm_engine.h"

namespace nova::guest {

class GuestLogicMux {
 public:
  using Fn = std::function<void(hw::GuestState&)>;

  // Register a handler; returns the id to pass to isa::Assembler::GuestLogic.
  std::uint32_t Register(Fn fn) {
    handlers_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(handlers_.size() - 1);
  }

  void Dispatch(std::uint32_t id, hw::GuestState& gs) {
    if (id < handlers_.size()) {
      handlers_[id](gs);
    }
  }

  // Install this mux as the engine's guest-logic callback.
  void Attach(hw::VmEngine& engine) {
    engine.set_guest_logic(
        [this](std::uint32_t id, hw::GuestState& gs) { Dispatch(id, gs); });
  }

 private:
  std::vector<Fn> handlers_;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_LOGIC_MUX_H_
