// Sequential direct-I/O disk read workload (§8.2, Figure 6).
//
// Issues back-to-back reads of a fixed block size, halting between issue
// and completion — the direct-I/O pattern that makes CPU utilization per
// request visible.
#ifndef SRC_GUEST_WORKLOAD_DISK_H_
#define SRC_GUEST_WORKLOAD_DISK_H_

#include <cstdint>

#include "src/guest/driver_ahci.h"
#include "src/guest/kernel.h"

namespace nova::guest {

class DiskWorkload {
 public:
  struct Config {
    std::uint32_t block_bytes = 4096;
    std::uint64_t total_requests = 1000;
    std::uint64_t buffer_gpa = GuestLayout::kDmaBase;
  };

  DiskWorkload(GuestKernel* gk, GuestAhciDriver* driver, Config config);

  // Emit the workload main routine; returns its entry address. The caller
  // passes it to GuestKernel::EmitBoot.
  std::uint64_t EmitMain();

  bool done() const { return done_; }
  std::uint64_t completed() const { return completed_; }

 private:
  void NextRequestLogic(hw::GuestState& gs);
  void CheckLogic(hw::GuestState& gs);

  GuestKernel* gk_;
  GuestAhciDriver* driver_;
  Config config_;
  std::uint32_t next_logic_ = 0;
  std::uint32_t check_logic_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t next_lba_ = 0;
  bool outstanding_ = false;
  bool done_ = false;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_WORKLOAD_DISK_H_
