#include "src/guest/bare_metal.h"

#include <algorithm>

namespace nova::guest {

bool BareMetalRunner::RunUntil(const std::function<bool()>& pred,
                               sim::PicoSeconds deadline_ps) {
  const hw::VmControls native{};  // TranslationMode::kNative.
  while (!pred()) {
    if (cpu_->NowPs() >= deadline_ps) {
      return true;
    }
    if (gs_.halted && !machine_->irq().HasPending(cpu_->id())) {
      // Idle: skip to the next device event.
      cpu_->SetIdle(true);
      const bool progressed = machine_->SkipToNextEvent();
      cpu_->SetIdle(false);
      if (!progressed) {
        return false;  // Nothing will ever wake the machine.
      }
      continue;
    }
    // Slice execution by the next device-event deadline.
    sim::Cycles slice = cpu_->model().frequency.PicosToCycles(deadline_ps) -
                        cpu_->cycles();
    SyncDeviceTime();
    if (!machine_->events().empty()) {
      const sim::PicoSeconds next = machine_->events().NextDeadline();
      if (next > cpu_->NowPs()) {
        const sim::Cycles target = cpu_->model().frequency.PicosToCycles(next);
        slice = std::min(slice,
                         target > cpu_->cycles() ? target - cpu_->cycles() + 1
                                                 : sim::Cycles{1});
      }
    }
    const hw::VmExit exit = engine_.Run(gs_, native, std::max<sim::Cycles>(slice, 1));
    SyncDeviceTime();
    if (exit.reason == hw::ExitReason::kError) {
      return false;
    }
  }
  return true;
}

void BareMetalRunner::SyncDeviceTime() {
  // The native runner owns one CPU; any other cores of the machine sit
  // idle and must not hold the device-time floor back (Machine advances
  // to the minimum core clock).
  for (std::uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    if (i != cpu_->id()) {
      machine_->cpu(i).AdvanceToPs(cpu_->NowPs());
    }
  }
  machine_->SyncDeviceTime();
}

}  // namespace nova::guest
