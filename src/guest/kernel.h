// The synthetic guest operating system.
//
// A small kernel whose image is a real program in the guest ISA: boot code
// that installs interrupt handlers and programs the timer, a page-fault
// handler that demand-maps process pages by editing real guest page
// tables, a timer ISR with the classic interrupt-controller handshake, and
// an idle loop. Device drivers and workloads append their own routines to
// the same image. The kernel builder runs host-side (it plays the
// bootloader), but everything it produces executes instruction-by-
// instruction on the simulated CPU, through the guest's own page tables.
#ifndef SRC_GUEST_KERNEL_H_
#define SRC_GUEST_KERNEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/guest/guest_pt.h"
#include "src/guest/logic_mux.h"
#include "src/hw/isa.h"
#include "src/hw/phys_mem.h"
#include "src/sim/snapshot.h"

namespace nova::guest {

struct GuestKernelConfig {
  std::uint64_t mem_bytes = 64ull << 20;
  bool paging = true;
  bool large_kernel_pages = true;  // Identity-map the kernel with 4 MiB pages.
  std::uint32_t timer_hz = 0;      // 0: timer stays off.
};

// Guest-physical memory layout.
struct GuestLayout {
  static constexpr std::uint64_t kCodeBase = 0x10000;
  static constexpr std::uint64_t kPtRoot = 0x100000;   // Kernel CR3.
  static constexpr std::uint64_t kPtPool = 0x104000;   // Page-table frames.
  static constexpr std::uint64_t kDmaBase = 0x800000;  // Driver DMA buffers.
  static constexpr std::uint64_t kDataBase = 0xf00000; // Kernel counters.
  static constexpr std::uint64_t kHeapBase = 0x1000000;  // Process frames.
  static constexpr std::uint64_t kProcVirtBase = 0x40000000;  // User regions.
};

class GuestKernel {
 public:
  // `gpa_to_hpa` is how the "bootloader" writes the image and page tables
  // into guest memory (VMM::GpaToHpa for VMs, identity for bare metal).
  GuestKernel(hw::PhysMem* mem, std::function<std::uint64_t(std::uint64_t)> gpa_to_hpa,
              GuestLogicMux* mux, GuestKernelConfig config);

  const GuestKernelConfig& config() const { return config_; }
  hw::isa::Assembler& text() { return text_; }
  GuestPageTableBuilder& pt() { return pt_; }
  GuestLogicMux& mux() { return *mux_; }

  // --- Guest memory management -------------------------------------------
  std::uint64_t AllocFrames(std::uint64_t n);  // Heap frames (gpa).
  // Raw guest-physical access for host-side kernel logic (driver data
  // structures, ring setup). Cost is charged by adjacent emitted code.
  // Both run on loader-owned guest RAM mapped at boot, so the access is
  // in range by construction and the Status carries no information.
  void WriteGuestRaw(std::uint64_t gpa, const void* data, std::uint64_t len) {
    (void)mem_->Write(gpa_to_hpa_(gpa), data, len);
  }
  void ReadGuestRaw(std::uint64_t gpa, void* out, std::uint64_t len) const {
    (void)mem_->Read(gpa_to_hpa_(gpa), out, len);
  }
  std::uint64_t GpaToHpa(std::uint64_t gpa) const { return gpa_to_hpa_(gpa); }
  // Map a device MMIO window (identity gva==gpa) into an address space.
  void MapDevice(std::uint64_t root_gpa, std::uint64_t base, std::uint64_t size);
  // New address space: kernel identity + shared device mappings; process
  // pages at kProcVirtBase are demand-faulted. Returns the root (CR3).
  std::uint64_t CreateAddressSpace();
  std::uint64_t kernel_cr3() const { return GuestLayout::kPtRoot; }

  // --- Image building ------------------------------------------------------
  // Standard handlers; call once before EmitBoot. Registers #PF (vector 14)
  // and, when timer_hz != 0, the timer ISR (vector 32).
  void BuildStandardHandlers();
  // Route `vector` to the handler at `gva` (emitted by a driver/workload).
  void SetVector(std::uint8_t vector, std::uint64_t handler_gva);
  // The 4-step interrupt-controller handshake (read vector, mask, EOI,
  // unmask) — emitted into ISRs; clobbers r0.
  void EmitPicHandshake();
  // sti; hlt; jmp — the kernel idle loop. Returns its address.
  std::uint64_t EmitIdleLoop();
  // Boot code: installs the IDT, programs the timer, enables interrupts
  // and jumps to `main_gva`. Returns the boot entry point.
  std::uint64_t EmitBoot(std::uint64_t main_gva);

  // Write the image and kernel page tables into guest memory and return
  // the entry point. Call after all code is emitted.
  std::uint64_t Install();
  // Prime a virtual-CPU (or bare-metal) register state for boot.
  void PrimeState(hw::GuestState& gs) const;

  std::uint64_t ticks() const;  // Timer ticks observed (from guest memory).

  // Hook invoked host-side on every timer tick (workload pacing).
  void set_timer_hook(std::function<void()> hook) { timer_hook_ = std::move(hook); }

  // Host-side allocation cursors: the heap bump pointer and the page-table
  // pool cursor. Everything else the kernel owns (image, tables, counters)
  // lives in guest RAM and rides the memory snapshot; the emitted image is
  // construction-time and only verified (entry point must match).
  Status SaveState(sim::SnapWriter& w) const {
    w.U64(entry_);
    w.U64(heap_next_);
    w.U64(pt_.pool_next());
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    if (r.U64() != entry_) {
      r.Fail();
    }
    heap_next_ = r.U64();
    pt_.set_pool_next(r.U64());
    return r.ok() ? Status::kSuccess : Status::kBadParameter;
  }

 private:
  // snapshot-x-list(GuestKernel): mem_, gpa_to_hpa_, mux_, config_, text_,
  //   pt_, heap_next_, entry_, vectors_, device_windows_, timer_hook_,
  //   tick_counter_gva_
  void PfLogic(hw::GuestState& gs);
  void BuildKernelMappings(std::uint64_t root_gpa);

  hw::PhysMem* mem_;
  std::function<std::uint64_t(std::uint64_t)> gpa_to_hpa_;
  GuestLogicMux* mux_;
  GuestKernelConfig config_;
  hw::isa::Assembler text_{GuestLayout::kCodeBase};
  GuestPageTableBuilder pt_;
  std::uint64_t heap_next_;
  std::uint64_t entry_ = 0;
  std::vector<std::pair<std::uint8_t, std::uint64_t>> vectors_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> device_windows_;
  std::function<void()> timer_hook_;
  std::uint64_t tick_counter_gva_ = GuestLayout::kDataBase;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_KERNEL_H_
