#include "src/guest/guest_pt.h"

namespace nova::guest {

Status GuestPageTableBuilder::Map(std::uint64_t root_gpa, std::uint64_t gva,
                                  std::uint64_t gpa, std::uint64_t page_size,
                                  std::uint64_t flags) {
  const std::uint64_t k4M = 4ull << 20;
  if (page_size != hw::kPageSize && page_size != k4M) {
    return Status::kBadParameter;
  }
  if ((gva & (page_size - 1)) != 0 || (gpa & (page_size - 1)) != 0) {
    return Status::kBadParameter;
  }

  const std::uint64_t dir_index = (gva >> 22) & 0x3ff;
  if (page_size == k4M) {
    WriteEntry(root_gpa, dir_index,
               static_cast<std::uint32_t>(gpa | flags | hw::pte::kPresent |
                                          hw::pte::kLarge));
    return Status::kSuccess;
  }

  std::uint32_t pde = ReadEntry(root_gpa, dir_index);
  std::uint64_t table_gpa;
  if (!(pde & hw::pte::kPresent)) {
    table_gpa = pool_next_;
    pool_next_ += hw::kPageSize;
    (void)mem_->Zero(gpa_to_hpa_(table_gpa), hw::kPageSize);
    WriteEntry(root_gpa, dir_index,
               static_cast<std::uint32_t>(table_gpa | hw::pte::kPresent |
                                          hw::pte::kWritable | hw::pte::kUser));
  } else if (pde & hw::pte::kLarge) {
    return Status::kBusy;
  } else {
    table_gpa = pde & hw::pte::kAddrMask;
  }

  const std::uint64_t pt_index = (gva >> 12) & 0x3ff;
  WriteEntry(table_gpa, pt_index,
             static_cast<std::uint32_t>(gpa | flags | hw::pte::kPresent));
  return Status::kSuccess;
}

Status GuestPageTableBuilder::Unmap(std::uint64_t root_gpa, std::uint64_t gva) {
  const std::uint64_t dir_index = (gva >> 22) & 0x3ff;
  const std::uint32_t pde = ReadEntry(root_gpa, dir_index);
  if (!(pde & hw::pte::kPresent)) {
    return Status::kSuccess;
  }
  if (pde & hw::pte::kLarge) {
    WriteEntry(root_gpa, dir_index, 0);
    return Status::kSuccess;
  }
  WriteEntry(pde & hw::pte::kAddrMask, (gva >> 12) & 0x3ff, 0);
  return Status::kSuccess;
}

std::uint64_t GuestPageTableBuilder::LeafEntryGpa(std::uint64_t root_gpa,
                                                  std::uint64_t gva) const {
  const std::uint64_t dir_index = (gva >> 22) & 0x3ff;
  const std::uint32_t pde = ReadEntry(root_gpa, dir_index);
  if (!(pde & hw::pte::kPresent)) {
    return 0;
  }
  if (pde & hw::pte::kLarge) {
    return root_gpa + dir_index * 4;
  }
  return (pde & hw::pte::kAddrMask) + ((gva >> 12) & 0x3ff) * 4;
}

}  // namespace nova::guest
