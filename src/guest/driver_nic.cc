#include "src/guest/driver_nic.h"

#include <cstring>

namespace nova::guest {

GuestNicDriver::GuestNicDriver(GuestKernel* gk, Config config)
    : gk_(gk), config_(std::move(config)) {
  setup_logic_ = gk_->mux().Register([this](hw::GuestState& gs) { SetupLogic(gs); });
  next_logic_ =
      gk_->mux().Register([this](hw::GuestState& gs) { NextPacketLogic(gs); });
  gk_->MapDevice(gk_->kernel_cr3(), config_.mmio_base, hw::nic::kWindowSize);
}

void GuestNicDriver::SetupLogic(hw::GuestState&) {
  // Populate the descriptor ring in guest memory: each descriptor points
  // at its receive buffer.
  for (std::uint32_t i = 0; i < config_.ring_entries; ++i) {
    hw::nic::RxDescriptor d{};
    d.buffer = config_.buffers_gpa + static_cast<std::uint64_t>(i) * config_.buffer_stride;
    gk_->WriteGuestRaw(config_.ring_gpa + i * 16ull, &d, sizeof(d));
  }
  tail_ = 0;
}

void GuestNicDriver::EmitInit() {
  hw::isa::Assembler& as = gk_->text();
  as.NopBlock(400);  // Ring allocation and descriptor construction.
  as.GuestLogic(setup_logic_);
  auto store = [&](std::uint64_t reg_off, std::uint64_t value) {
    as.MovImm(1, value);
    as.Store(1, hw::isa::kNoReg, config_.mmio_base + reg_off);
  };
  store(hw::nic::kItr, 50'000 / 256);  // Coalesce: max ~20000 irq/s (§8.3).
  store(hw::nic::kRdbal, config_.ring_gpa);
  store(hw::nic::kRdlen, config_.ring_entries * 16ull);
  store(hw::nic::kRdh, 0);
  store(hw::nic::kRdt, config_.ring_entries - 1);
  store(hw::nic::kIms, hw::nic::kIcrRxt0);
  store(hw::nic::kRctl, hw::nic::kRctlEnable);
}

void GuestNicDriver::NextPacketLogic(hw::GuestState& gs) {
  // Driver ring bookkeeping: is there a filled descriptor at the tail?
  hw::nic::RxDescriptor d{};
  gk_->ReadGuestRaw(config_.ring_gpa + tail_ * 16ull, &d, sizeof(d));
  if ((d.status & hw::nic::kRxStatusDd) == 0) {
    gs.regs[3] = 0;
    // RDT value to return descriptors up to (exclusive of tail).
    gs.regs[4] = (tail_ + config_.ring_entries - 1) % config_.ring_entries;
    return;
  }
  gs.regs[1] = d.buffer;                       // Payload address.
  gs.regs[2] = d.length;
  gs.regs[3] = 1;
  gs.regs[6] = config_.ring_gpa + tail_ * 16ull + 8;  // Status word address.
  tail_ = (tail_ + 1) % config_.ring_entries;
  ++packets_;
  if (on_packet_) {
    on_packet_();
  }
}

void GuestNicDriver::EmitIsr(std::function<void()> on_packet) {
  on_packet_ = std::move(on_packet);
  hw::isa::Assembler& as = gk_->text();
  const std::uint64_t isr = as.Here();
  // Read ICR: identifies the cause and clears it (one MMIO access).
  as.Load(1, hw::isa::kNoReg, config_.mmio_base + hw::nic::kIcr);

  // Drain loop: consume every filled descriptor.
  const std::uint64_t drain = as.Here();
  as.NopBlock(90);  // Ring-index bookkeeping.
  as.GuestLogic(next_logic_);
  const std::uint64_t jnz_at =
      as.Jnz(3, 0);  // Patched below: jump to `process` when a frame waits.
  const std::uint64_t jmp_done_at = as.Jmp(0);  // Patched: drain finished.
  const std::uint64_t process = as.Here();
  as.PatchImm64(jnz_at, process);
  // Copy the payload into the application buffer (netperf's receive copy;
  // this is the size-dependent data-transfer cost of §8.2/8.3).
  as.MovImm(4, config_.app_buffer_gpa);
  as.Emit({.opcode = hw::isa::Opcode::kCopy,
           .r1 = 4,
           .r2 = 1,
           .imm32 = config_.packet_bytes});
  // Write back the descriptor status (returns ownership).
  as.MovImm(5, 0);
  as.Emit({.opcode = hw::isa::Opcode::kStore, .r1 = 5, .r2 = 6});
  as.Jmp(drain);

  const std::uint64_t done = as.Here();
  as.PatchImm64(jmp_done_at, done);
  // One RDT store per drained batch.
  as.Emit({.opcode = hw::isa::Opcode::kStore,
           .r1 = 4,
           .r2 = hw::isa::kNoReg,
           .imm64 = config_.mmio_base + hw::nic::kRdt});
  gk_->EmitPicHandshake();
  as.Iret();
  gk_->SetVector(config_.irq_vector, isr);
}

}  // namespace nova::guest
