#include "src/guest/kernel.h"

#include "src/vmm/vpic.h"
#include "src/vmm/vpit.h"

namespace nova::guest {

namespace {
constexpr std::uint8_t kTimerVector = 32;
constexpr std::uint64_t k4M = 4ull << 20;
}  // namespace

GuestKernel::GuestKernel(hw::PhysMem* mem,
                         std::function<std::uint64_t(std::uint64_t)> gpa_to_hpa,
                         GuestLogicMux* mux, GuestKernelConfig config)
    : mem_(mem),
      gpa_to_hpa_(std::move(gpa_to_hpa)),
      mux_(mux),
      config_(config),
      pt_(mem, gpa_to_hpa_, GuestLayout::kPtPool),
      heap_next_(GuestLayout::kHeapBase >> hw::kPageShift) {}

std::uint64_t GuestKernel::AllocFrames(std::uint64_t n) {
  const std::uint64_t first = heap_next_;
  heap_next_ += n;
  if ((heap_next_ << hw::kPageShift) > config_.mem_bytes) {
    return 0;  // Guest out of memory.
  }
  return first << hw::kPageShift;
}

void GuestKernel::MapDevice(std::uint64_t root_gpa, std::uint64_t base,
                            std::uint64_t size) {
  for (std::uint64_t off = 0; off < size; off += hw::kPageSize) {
    (void)pt_.Map(root_gpa, base + off, base + off, hw::kPageSize, hw::pte::kWritable);
  }
  if (root_gpa == GuestLayout::kPtRoot) {
    device_windows_.emplace_back(base, size);  // Replicated into new ASes.
  }
}

void GuestKernel::BuildKernelMappings(std::uint64_t root_gpa) {
  // Kernel direct map: identity for all of guest RAM (global pages — they
  // survive guest CR3 writes, like a real kernel's direct map).
  const std::uint64_t flags = hw::pte::kWritable | hw::pte::kGlobal;
  if (config_.large_kernel_pages) {
    for (std::uint64_t gpa = 0; gpa < config_.mem_bytes; gpa += k4M) {
      (void)pt_.Map(root_gpa, gpa, gpa, k4M, flags);
    }
  } else {
    for (std::uint64_t gpa = 0; gpa < config_.mem_bytes; gpa += hw::kPageSize) {
      (void)pt_.Map(root_gpa, gpa, gpa, hw::kPageSize, flags);
    }
  }
  for (const auto& [base, size] : device_windows_) {
    for (std::uint64_t off = 0; off < size; off += hw::kPageSize) {
      (void)pt_.Map(root_gpa, base + off, base + off, hw::kPageSize, hw::pte::kWritable);
    }
  }
}

std::uint64_t GuestKernel::CreateAddressSpace() {
  const std::uint64_t root = AllocFrames(1);
  if (root == 0) {
    return 0;
  }
  (void)mem_->Zero(gpa_to_hpa_(root), hw::kPageSize);
  BuildKernelMappings(root);
  return root;
}

void GuestKernel::PfLogic(hw::GuestState& gs) {
  // The guest kernel's page-fault policy: demand-map process pages from
  // the frame heap; anything else is a (lazy) kernel identity mapping.
  const std::uint64_t page = gs.cr2 & ~hw::kPageMask;
  if (page >= GuestLayout::kProcVirtBase) {
    const std::uint64_t frame = AllocFrames(1);
    if (frame != 0) {
      (void)pt_.Map(gs.cr3, page, frame, hw::kPageSize,
              hw::pte::kWritable | hw::pte::kUser);
    }
  } else {
    (void)pt_.Map(gs.cr3, page, page, hw::kPageSize, hw::pte::kWritable);
  }
  gs.regs[6] = page;  // For the INVLPG that follows.
}

void GuestKernel::EmitPicHandshake() {
  text_.In(0, vmm::vpic::kPortVector);       // Which vector is in service?
  text_.Out(vmm::vpic::kPortMask, 0);        // Mask it.
  text_.Out(vmm::vpic::kPortVector, 0);      // EOI.
  text_.Out(vmm::vpic::kPortUnmask, 0);      // Unmask.
}

void GuestKernel::BuildStandardHandlers() {
  // --- #PF handler -------------------------------------------------------
  const std::uint32_t pf_logic =
      mux_->Register([this](hw::GuestState& gs) { PfLogic(gs); });
  const std::uint64_t pf_handler = text_.Here();
  text_.GuestLogic(pf_logic);   // Map the faulting page (edits guest PTs).
  text_.InvlpgReg(6);           // Flush the stale translation.
  text_.Iret();
  SetVector(hw::kVectorPageFault, pf_handler);

  // --- Timer ISR -----------------------------------------------------------
  if (config_.timer_hz != 0) {
    const std::uint32_t tick_logic = mux_->Register([this](hw::GuestState&) {
      if (timer_hook_) {
        timer_hook_();
      }
    });
    const std::uint64_t timer_isr = text_.Here();
    // Account the tick in kernel memory (load-add-store, like jiffies).
    text_.LoadAbs(1, tick_counter_gva_);
    text_.AddImm(1, 1);
    text_.StoreAbs(1, tick_counter_gva_);
    EmitPicHandshake();
    text_.GuestLogic(tick_logic);
    text_.Iret();
    SetVector(kTimerVector, timer_isr);
  }
}

void GuestKernel::SetVector(std::uint8_t vector, std::uint64_t handler_gva) {
  vectors_.emplace_back(vector, handler_gva);
}

std::uint64_t GuestKernel::EmitIdleLoop() {
  const std::uint64_t idle = text_.Here();
  text_.Sti();
  text_.Hlt();
  text_.Jmp(idle);
  return idle;
}

std::uint64_t GuestKernel::EmitBoot(std::uint64_t main_gva) {
  entry_ = text_.Here();
  for (const auto& [vector, handler] : vectors_) {
    text_.SetIdt(vector, handler);
  }
  if (config_.timer_hz != 0) {
    const std::uint32_t period_us = 1'000'000 / config_.timer_hz;
    text_.MovImm(1, period_us & 0xffff);
    text_.Out(vmm::vpit::kPortPeriodLo, 1);
    text_.MovImm(1, period_us >> 16);
    text_.Out(vmm::vpit::kPortPeriodHi, 1);  // Starts the timer.
  }
  text_.Sti();
  text_.Jmp(main_gva);
  return entry_;
}

std::uint64_t GuestKernel::Install() {
  // Write the kernel text.
  const auto& bytes = text_.bytes();
  for (std::uint64_t off = 0; off < bytes.size(); off += hw::kPageSize) {
    const std::uint64_t chunk = std::min<std::uint64_t>(hw::kPageSize, bytes.size() - off);
    (void)mem_->Write(gpa_to_hpa_(text_.base() + off), bytes.data() + off, chunk);
  }
  // Build the kernel address space.
  if (config_.paging) {
    (void)mem_->Zero(gpa_to_hpa_(GuestLayout::kPtRoot), hw::kPageSize);
    BuildKernelMappings(GuestLayout::kPtRoot);
  }
  return entry_;
}

void GuestKernel::PrimeState(hw::GuestState& gs) const {
  gs.rip = entry_;
  gs.paging = config_.paging;
  gs.cr3 = config_.paging ? GuestLayout::kPtRoot : 0;
  gs.interrupts_enabled = false;  // Boot code executes STI.
}

std::uint64_t GuestKernel::ticks() const {
  return mem_->Read64(gpa_to_hpa_(tick_counter_gva_));
}

}  // namespace nova::guest
