// UDP receive workload (§8.3, Figure 7).
//
// Netperf-style: the guest brings up its NIC and idles; all work happens
// in the receive interrupt path (ICR read, per-packet payload copy,
// descriptor recycling, interrupt-controller handshake).
#ifndef SRC_GUEST_WORKLOAD_UDP_H_
#define SRC_GUEST_WORKLOAD_UDP_H_

#include <cstdint>

#include "src/guest/driver_nic.h"
#include "src/guest/kernel.h"

namespace nova::guest {

class UdpWorkload {
 public:
  UdpWorkload(GuestKernel* gk, GuestNicDriver* driver) : gk_(gk), driver_(driver) {}

  std::uint64_t EmitMain() {
    driver_->EmitIsr([this] { ++packets_; });
    hw::isa::Assembler& as = gk_->text();
    const std::uint64_t main = as.Here();
    driver_->EmitInit();
    gk_->EmitIdleLoop();
    return main;
  }

  std::uint64_t packets() const { return packets_; }

 private:
  GuestKernel* gk_;
  GuestNicDriver* driver_;
  std::uint64_t packets_ = 0;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_WORKLOAD_UDP_H_
