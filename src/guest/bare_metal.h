// Bare-metal execution harness: runs a guest kernel image directly on the
// simulated CPU with no hypervisor — the "Native" baseline of §8.
#ifndef SRC_GUEST_BARE_METAL_H_
#define SRC_GUEST_BARE_METAL_H_

#include <functional>

#include "src/guest/logic_mux.h"
#include "src/hw/machine.h"
#include "src/hw/vm_engine.h"

namespace nova::guest {

class BareMetalRunner {
 public:
  explicit BareMetalRunner(hw::Machine* machine, std::uint32_t cpu = 0)
      : machine_(machine),
        cpu_(&machine->cpu(cpu)),
        engine_(cpu_, &machine->mem(), &machine->bus(), &machine->irq()) {
    mux_.Attach(engine_);
  }

  GuestLogicMux& mux() { return mux_; }
  hw::VmEngine& engine() { return engine_; }
  hw::GuestState& gs() { return gs_; }
  hw::Cpu& cpu() { return *cpu_; }

  // Run until `pred` holds or `deadline_ps` of simulated time passes.
  // HLT idles the CPU to the next device event; returns false if the
  // machine wedged (error exit or nothing left to do).
  bool RunUntil(const std::function<bool()>& pred, sim::PicoSeconds deadline_ps);

 private:
  // Fire due device events: drags the machine's other (idle) cores up to
  // this runner's clock first so the min-clock advance can make progress.
  void SyncDeviceTime();

  hw::Machine* machine_;
  hw::Cpu* cpu_;
  hw::VmEngine engine_;
  hw::GuestState gs_;
  GuestLogicMux mux_;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_BARE_METAL_H_
