#include "src/guest/workload_compile.h"

namespace nova::guest {

CompileWorkload::CompileWorkload(GuestKernel* gk, GuestAhciDriver* driver,
                                 Config config)
    : gk_(gk), driver_(driver), config_(config), rng_(config.seed) {
  unit_logic_ =
      gk_->mux().Register([this](hw::GuestState& gs) { UnitSetupLogic(gs); });
  addr_logic_ = gk_->mux().Register([this](hw::GuestState& gs) { AddressLogic(gs); });
  // One address space per compiler process.
  processes_.resize(config_.processes);
  for (Process& p : processes_) {
    p.cr3 = gk_->CreateAddressSpace();
  }
}

std::uint64_t CompileWorkload::PickAddress() {
  Process& p = processes_[current_];
  const bool want_fresh = p.touched.size() < 8 ||
                          (p.touched.size() < config_.ws_pages &&
                           rng_.Chance(config_.fresh_prob));
  std::uint32_t page_index;
  if (want_fresh) {
    page_index = next_fresh_page_++;
    p.touched.push_back(page_index);
    ++fresh_pages_;
  } else {
    page_index = p.touched[rng_.Below(p.touched.size())];
  }
  const std::uint64_t offset = rng_.Below(hw::kPageSize / 8) * 8;
  return GuestLayout::kProcVirtBase +
         static_cast<std::uint64_t>(page_index) * hw::kPageSize + offset;
}

void CompileWorkload::UnitSetupLogic(hw::GuestState& gs) {
  if (units_done_ >= config_.total_units) {
    done_ = true;
    gs.regs[7] = 1;
    return;
  }
  ++units_done_;
  gs.regs[7] = 0;

  // Context switch to the next compiler job?
  gs.regs[5] = 0;
  if (units_done_ % config_.switch_every == 0) {
    current_ = (current_ + 1) % config_.processes;
    // A compile job finishing: its process exits and a fresh one (cold
    // working set, new address space) takes the slot.
    if (config_.recycle_every != 0 && units_done_ % config_.recycle_every == 0) {
      processes_[current_].cr3 = gk_->CreateAddressSpace();
      processes_[current_].touched.clear();
    }
    gs.regs[5] = processes_[current_].cr3;
    ++switches_;
  }

  // Cold-buffer-cache source read?
  gs.regs[0] = 0;
  if (driver_ != nullptr && config_.disk_every != 0 &&
      units_done_ % config_.disk_every == 0 && disk_outstanding_ < 4) {
    gs.regs[0] = 1;
    gs.regs[1] = next_lba_;
    gs.regs[2] = config_.disk_read_bytes / hw::kSectorSize;
    gs.regs[3] = GuestLayout::kDmaBase +
                 (disk_reads_ % 4) * ((config_.disk_read_bytes + 0x3fff) & ~0x3fffull);
    next_lba_ += config_.disk_read_bytes / hw::kSectorSize;
    ++disk_reads_;
    ++disk_outstanding_;
  }
}

void CompileWorkload::AddressLogic(hw::GuestState& gs) {
  gs.regs[1] = PickAddress();
  gs.regs[2] = PickAddress();
  gs.regs[3] = PickAddress();
  gs.regs[4] = PickAddress();
}

std::uint64_t CompileWorkload::EmitMain() {
  hw::isa::Assembler& as = gk_->text();

  if (driver_ != nullptr) {
    driver_->EmitIsr([this](int completed) {
      disk_outstanding_ -= std::min<std::uint32_t>(disk_outstanding_, completed);
    });
  }

  const std::uint64_t main = as.Here();
  if (driver_ != nullptr) {
    driver_->EmitInit();
  }
  // Enter the first compiler job's address space.
  as.MovCr3Imm(processes_[0].cr3);

  const std::uint64_t loop = as.Here();
  as.GuestLogic(unit_logic_);  // r7=done, r5=switch cr3, r0=disk, r1-3=req.
  const std::uint64_t jnz_finish = as.Jnz(7, 0);

  // Conditional context switch.
  const std::uint64_t jnz_switch = as.Jnz(5, 0);
  const std::uint64_t jmp_noswitch = as.Jmp(0);
  as.PatchImm64(jnz_switch, as.Here());
  as.MovCr3Reg(5);  // Address-space switch: CR3 write (+ vTLB flush).
  as.PatchImm64(jmp_noswitch, as.Here());

  // Conditional source-file read (asynchronous; ISR retires it).
  if (driver_ != nullptr) {
    const std::uint64_t jnz_disk = as.Jnz(0, 0);
    const std::uint64_t jmp_nodisk = as.Jmp(0);
    as.PatchImm64(jnz_disk, as.Here());
    driver_->EmitIssueSequence();
    as.PatchImm64(jmp_nodisk, as.Here());
  }

  // The compile unit: computation plus working-set memory traffic.
  as.NopBlock(config_.compute_cycles);
  for (std::uint32_t b = 0; b < config_.mem_bursts; ++b) {
    as.GuestLogic(addr_logic_);  // r1..r4 = working-set addresses.
    as.Load(6, 1, 0);
    as.Store(6, 2, 0);
    as.Load(6, 3, 0);
    as.Store(6, 4, 0);
  }
  as.Jmp(loop);

  const std::uint64_t finish = gk_->EmitIdleLoop();
  as.PatchImm64(jnz_finish, finish);
  return main;
}

}  // namespace nova::guest
