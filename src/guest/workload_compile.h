// Kernel-compilation workload model (§8.1, Figure 5, Table 2).
//
// Models the memory-system behaviour of `make -j4` on a cold buffer cache:
// several compiler processes, each with its own address space and working
// set, performing bursts of memory accesses with demand paging (guest page
// faults map fresh pages), periodic context switches (guest CR3 writes),
// timer interrupts, and occasional source-file reads from disk.
//
// The unit of work is one "compile unit": a compute block plus a set of
// working-set memory bursts. Relative performance across virtualization
// configurations — the quantity Figure 5 reports — emerges from how the
// configuration prices TLB misses, page faults, CR3 writes and interrupts.
#ifndef SRC_GUEST_WORKLOAD_COMPILE_H_
#define SRC_GUEST_WORKLOAD_COMPILE_H_

#include <cstdint>
#include <vector>

#include "src/guest/driver_ahci.h"
#include "src/guest/kernel.h"
#include "src/sim/rng.h"

namespace nova::guest {

class CompileWorkload {
 public:
  struct Config {
    std::uint32_t processes = 4;       // Parallel compiler jobs.
    std::uint32_t ws_pages = 384;      // Working set per process.
    std::uint64_t total_units = 3000;  // Compile units across all jobs.
    std::uint32_t compute_cycles = 30000;  // Pure computation per unit.
    std::uint32_t mem_bursts = 6;      // 4 accesses per burst per unit.
    double fresh_prob = 0.04;          // Demand-fault probability.
    std::uint32_t switch_every = 8;    // Units between context switches.
    std::uint32_t disk_every = 48;     // Units between source reads; 0=off.
    std::uint32_t recycle_every = 900;  // Units between job completions: a
                                        // fresh process (new address space,
                                        // cold working set) takes the slot.
    std::uint32_t disk_read_bytes = 16384;
    std::uint64_t seed = 42;
  };

  // `driver` may be null when disk_every == 0.
  CompileWorkload(GuestKernel* gk, GuestAhciDriver* driver, Config config);

  std::uint64_t EmitMain();

  bool done() const { return done_ && disk_outstanding_ == 0; }
  std::uint64_t units_done() const { return units_done_; }
  std::uint64_t page_faults_expected() const { return fresh_pages_; }
  std::uint64_t context_switches() const { return switches_; }
  std::uint64_t disk_reads() const { return disk_reads_; }

  // Full host-side workload state: the RNG stream, per-process address
  // spaces and working sets, and every progress cursor. Process count and
  // logic-slot ids are construction-time (verified).
  Status SaveState(sim::SnapWriter& w) const {
    w.U32(static_cast<std::uint32_t>(processes_.size()));
    w.U32(unit_logic_);
    w.U32(addr_logic_);
    if (Status s = rng_.SaveState(w); s != Status::kSuccess) {
      return s;
    }
    for (const Process& p : processes_) {
      w.U64(p.cr3);
      w.U32(static_cast<std::uint32_t>(p.touched.size()));
      for (const std::uint32_t page : p.touched) {
        w.U32(page);
      }
    }
    w.U32(current_);
    w.U64(units_done_);
    w.U64(fresh_pages_);
    w.U64(switches_);
    w.U64(disk_reads_);
    w.U64(next_lba_);
    w.U32(disk_outstanding_);
    w.U32(next_fresh_page_);
    w.Bool(done_);
    return Status::kSuccess;
  }
  Status LoadState(sim::SnapReader& r) {
    if (r.U32() != processes_.size() || r.U32() != unit_logic_ ||
        r.U32() != addr_logic_) {
      r.Fail();
      return Status::kBadParameter;
    }
    if (Status s = rng_.LoadState(r); s != Status::kSuccess) {
      return s;
    }
    for (Process& p : processes_) {
      p.cr3 = r.U64();
      p.touched.resize(r.U32());
      for (std::uint32_t& page : p.touched) {
        page = r.U32();
      }
    }
    current_ = r.U32();
    units_done_ = r.U64();
    fresh_pages_ = r.U64();
    switches_ = r.U64();
    disk_reads_ = r.U64();
    next_lba_ = r.U64();
    disk_outstanding_ = r.U32();
    next_fresh_page_ = r.U32();
    done_ = r.Bool();
    return r.ok() ? Status::kSuccess : Status::kBadParameter;
  }

 private:
  // snapshot-x-list(CompileWorkload): gk_, driver_, config_, rng_,
  //   processes_, current_, units_done_, fresh_pages_, switches_,
  //   disk_reads_, next_lba_, disk_outstanding_, next_fresh_page_, done_,
  //   unit_logic_, addr_logic_
  struct Process {
    std::uint64_t cr3 = 0;
    std::vector<std::uint32_t> touched;  // Working-set page indices.
  };

  void UnitSetupLogic(hw::GuestState& gs);
  void AddressLogic(hw::GuestState& gs);
  std::uint64_t PickAddress();

  GuestKernel* gk_;
  GuestAhciDriver* driver_;
  Config config_;
  sim::Rng rng_;
  std::vector<Process> processes_;
  std::uint32_t current_ = 0;
  std::uint64_t units_done_ = 0;
  std::uint64_t fresh_pages_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t disk_reads_ = 0;
  std::uint64_t next_lba_ = 2048;
  std::uint32_t disk_outstanding_ = 0;
  std::uint32_t next_fresh_page_ = 0;  // Per-workload unique page index pool.
  bool done_ = false;
  std::uint32_t unit_logic_ = 0;
  std::uint32_t addr_logic_ = 0;
};

}  // namespace nova::guest

#endif  // SRC_GUEST_WORKLOAD_COMPILE_H_
