// Lightweight statistics primitives used by the hypervisor, the device
// models and the benchmark harnesses: named counters, value distributions
// and busy/idle utilization tracking.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/snapshot.h"
#include "src/sim/status.h"
#include "src/sim/time.h"

namespace nova::sim {

// Monotonic event counter.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  void Reset() { value_ = 0; }
  std::uint64_t value() const { return value_; }

  Status SaveState(SnapWriter& w) const {
    w.U64(value_);
    return Status::kSuccess;
  }
  Status LoadState(SnapReader& r) {
    value_ = r.U64();
    return r.status();
  }

 private:
  // snapshot-x-list(Counter): value_
  std::uint64_t value_ = 0;
};

// Streaming distribution: count / sum / min / max / mean, plus a uniform
// sample reservoir capped at a configurable size for percentiles.
class Distribution {
 public:
  explicit Distribution(std::size_t max_samples = 1 << 16)
      : max_samples_(max_samples) {}

  void Record(std::uint64_t v) {
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = std::max(max_, v);
    // Reservoir sampling (Vitter's Algorithm R): once the reservoir is
    // full, the i-th value replaces a random slot with probability k/i, so
    // every recorded value is retained with equal probability and the
    // percentiles are unbiased — not skewed toward warm-up values.
    if (samples_.size() < max_samples_) {
      samples_.push_back(v);
    } else {
      const std::uint64_t slot = rng_.Below(count_);
      if (slot < max_samples_) {
        samples_[static_cast<std::size_t>(slot)] = v;
      }
    }
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    samples_.clear();
    rng_ = Rng{kReservoirSeed};
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Exact percentile over the stored sample reservoir (q in [0,100]).
  std::uint64_t Percentile(double q) const;

  Status SaveState(SnapWriter& w) const {
    w.U64(count_);
    w.U64(sum_);
    w.U64(min_);
    w.U64(max_);
    Status st = rng_.SaveState(w);
    if (!Ok(st)) {
      return st;
    }
    w.U64(samples_.size());
    for (const std::uint64_t v : samples_) {
      w.U64(v);
    }
    return Status::kSuccess;
  }
  Status LoadState(SnapReader& r) {
    count_ = r.U64();
    sum_ = r.U64();
    min_ = r.U64();
    max_ = r.U64();
    Status st = rng_.LoadState(r);
    if (!Ok(st)) {
      return st;
    }
    samples_.assign(static_cast<std::size_t>(r.U64()), 0);
    for (auto& v : samples_) {
      v = r.U64();
    }
    return r.status();
  }

 private:
  // Fixed seed: runs stay bit-for-bit reproducible.
  static constexpr std::uint64_t kReservoirSeed = 0x5eed5eed5eed5eedull;

  // snapshot-x-list(Distribution): max_samples_, count_, sum_, min_,
  // max_, rng_, samples_
  std::size_t max_samples_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  Rng rng_{kReservoirSeed};
  mutable std::vector<std::uint64_t> samples_;
};

// Tracks the fraction of wall-clock (simulated) time a resource was busy.
// Used to report the CPU-utilization curves of Figures 6 and 7.
class UtilizationTracker {
 public:
  void SetBusy(PicoSeconds now, bool busy);
  // Close the current interval at `now` and return busy fraction since the
  // last Reset.
  double Utilization(PicoSeconds now) const;
  void Reset(PicoSeconds now);

  PicoSeconds busy_time(PicoSeconds now) const;

  Status SaveState(SnapWriter& w) const {
    w.U64(static_cast<std::uint64_t>(start_));
    w.U64(static_cast<std::uint64_t>(busy_accum_));
    w.U64(static_cast<std::uint64_t>(last_change_));
    w.Bool(busy_);
    return Status::kSuccess;
  }
  Status LoadState(SnapReader& r) {
    start_ = static_cast<PicoSeconds>(r.U64());
    busy_accum_ = static_cast<PicoSeconds>(r.U64());
    last_change_ = static_cast<PicoSeconds>(r.U64());
    busy_ = r.Bool();
    return r.status();
  }

 private:
  // snapshot-x-list(UtilizationTracker): start_, busy_accum_,
  // last_change_, busy_
  PicoSeconds start_ = 0;
  PicoSeconds busy_accum_ = 0;
  PicoSeconds last_change_ = 0;
  bool busy_ = false;
};

// Named counter registry; benchmark harnesses print these tables directly
// (Table 2 of the paper is one such dump).
class StatRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  std::uint64_t Value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }
  void ResetAll() {
    for (auto& [name, c] : counters_) c.Reset();
  }
  const std::map<std::string, Counter>& counters() const { return counters_; }

  Status SaveState(SnapWriter& w) const {
    w.U32(static_cast<std::uint32_t>(counters_.size()));
    for (const auto& [name, c] : counters_) {
      w.Str(name);
      Status st = c.SaveState(w);
      if (!Ok(st)) {
        return st;
      }
    }
    return Status::kSuccess;
  }
  // Inserts counters the twin has not referenced yet; registered Counter
  // addresses stay stable (std::map nodes), so cached references survive.
  Status LoadState(SnapReader& r) {
    const std::uint32_t n = r.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::string name = r.Str();
      Status st = counters_[name].LoadState(r);
      if (!Ok(st)) {
        return st;
      }
    }
    return r.status();
  }

 private:
  // snapshot-x-list(StatRegistry): counters_
  std::map<std::string, Counter> counters_;
};

}  // namespace nova::sim

#endif  // SRC_SIM_STATS_H_
