// Status codes used across the NOVA reproduction.
//
// Modelled after the return convention of the original NOVA hypercall
// interface: a small enum returned from every fallible kernel operation.
#ifndef SRC_SIM_STATUS_H_
#define SRC_SIM_STATUS_H_

#include <cstdint>

namespace nova {

// Result of a hypercall or internal kernel operation. The enum itself is
// [[nodiscard]]: every function returning a Status inherits the
// must-check contract, so a silently dropped error fails compilation
// under NOVA_WERROR and is flagged by nova-lint's unchecked-status rule.
enum class [[nodiscard]] Status : std::uint8_t {
  kSuccess = 0,     // Operation completed.
  kTimeout,         // Operation timed out (blocking IPC / semaphore).
  kAbort,           // Operation aborted by a third party.
  kBadHypercall,    // Unknown hypercall number.
  kBadCapability,   // Capability selector is empty or has wrong type/perms.
  kBadParameter,    // Malformed argument (alignment, range, flags).
  kBadFeature,      // Feature not supported by this CPU/platform.
  kBadCpu,          // Operation targets an invalid or offline CPU.
  kBadDevice,       // Device id is unknown to the IOMMU.
  kMemoryFault,     // Physical address out of range or unmapped.
  kOverflow,        // Resource exhausted (space full, quota reached).
  kDenied,          // Permission check failed.
  kBusy,            // Object is in use and cannot be reconfigured.
  kNoMem,           // Kernel-memory quota or frame pool exhausted.
};

// Keep in sync when appending codes; the enum-coverage test walks
// [0, kNumStatuses) and fails if StatusName lags behind.
constexpr int kNumStatuses = static_cast<int>(Status::kNoMem) + 1;

// Human-readable name for diagnostics and test output.
constexpr const char* StatusName(Status s) {
  switch (s) {
    case Status::kSuccess: return "kSuccess";
    case Status::kTimeout: return "kTimeout";
    case Status::kAbort: return "kAbort";
    case Status::kBadHypercall: return "kBadHypercall";
    case Status::kBadCapability: return "kBadCapability";
    case Status::kBadParameter: return "kBadParameter";
    case Status::kBadFeature: return "kBadFeature";
    case Status::kBadCpu: return "kBadCpu";
    case Status::kBadDevice: return "kBadDevice";
    case Status::kMemoryFault: return "kMemoryFault";
    case Status::kOverflow: return "kOverflow";
    case Status::kDenied: return "kDenied";
    case Status::kBusy: return "kBusy";
    case Status::kNoMem: return "kNoMem";
  }
  return "kUnknown";
}

constexpr bool Ok(Status s) { return s == Status::kSuccess; }

}  // namespace nova

#endif  // SRC_SIM_STATUS_H_
