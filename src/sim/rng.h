// Deterministic pseudo-random number generator for workload generation.
//
// xoshiro256** — fast, high quality, and fully reproducible across
// platforms, which matters because every benchmark in this repository must
// produce identical event streams run-to-run.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

#include "src/sim/snapshot.h"
#include "src/sim/status.h"

namespace nova::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). `bound` must be non-zero.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform value in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  // The generator is its state: saving the four words mid-stream and
  // loading them into any Rng resumes the exact sequence.
  Status SaveState(SnapWriter& w) const {
    for (const std::uint64_t word : state_) {
      w.U64(word);
    }
    return Status::kSuccess;
  }
  Status LoadState(SnapReader& r) {
    for (auto& word : state_) {
      word = r.U64();
    }
    return r.status();
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  // snapshot-x-list(Rng): state_
  std::uint64_t state_[4];
};

}  // namespace nova::sim

#endif  // SRC_SIM_RNG_H_
