#include "src/sim/trace.h"

#include <cstdio>

#include "src/sim/event_queue.h"

namespace nova::sim {
namespace {

// FNV-1a, 64-bit.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t FnvU64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xff;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

void JsonEscape(std::FILE* f, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        std::fputs("\\\"", f);
        break;
      case '\\':
        std::fputs("\\\\", f);
        break;
      case '\n':
        std::fputs("\\n", f);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(f, "\\u%04x", c);
        } else {
          std::fputc(c, f);
        }
    }
  }
}

}  // namespace

const char* TraceCatName(TraceCat c) {
  switch (c) {
    case TraceCat::kVmExit:
      return "vmexit";
    case TraceCat::kIpc:
      return "ipc";
    case TraceCat::kSched:
      return "sched";
    case TraceCat::kVtlb:
      return "vtlb";
    case TraceCat::kDevice:
      return "device";
    case TraceCat::kIrq:
      return "irq";
    case TraceCat::kFault:
      return "fault";
  }
  return "?";
}

Tracer::Tracer(const EventQueue* clock, std::size_t capacity)
    : clock_(clock), ring_(capacity == 0 ? 1 : capacity), digest_(kFnvOffset) {
  // Id 0 is reserved so an uninitialized name id is visibly "<none>".
  names_.push_back("<none>");
  ids_.emplace(names_.back(), 0);
}

Tracer& Tracer::Disabled() {
  static Tracer t(nullptr, 1);
  return t;
}

std::uint16_t Tracer::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const std::uint16_t id = static_cast<std::uint16_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

void Tracer::Instant(TraceCat cat, std::uint16_t name, std::uint64_t a0,
                     std::uint64_t a1) {
  if (!enabled_) return;
  Emit(clock_ ? clock_->now() : 0, TraceType::kInstant, cat, name, kDeviceTid,
       a0, a1);
}

void Tracer::Emit(PicoSeconds ts, TraceType type, TraceCat cat,
                  std::uint16_t name, std::uint8_t tid, std::uint64_t a0,
                  std::uint64_t a1) {
  TraceRecord r;
  r.ts = ts;
  r.arg0 = a0;
  r.arg1 = a1;
  r.name = name;
  r.cat = static_cast<std::uint8_t>(cat);
  r.type = static_cast<std::uint8_t>(type);
  r.tid = tid;
  Fold(r);
  if (total_ >= ring_.size() && sink_ != nullptr) {
    // The slot being overwritten holds the oldest retained record; fold it
    // into the sink first so sink + window always cover the stream exactly.
    sink_->Fold(ring_[head_]);
  }
  ring_[head_] = r;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

void Tracer::Fold(const TraceRecord& r) {
  std::uint64_t h = digest_;
  h = FnvU64(h, static_cast<std::uint64_t>(r.ts));
  h = FnvU64(h, r.arg0);
  h = FnvU64(h, r.arg1);
  h = FnvU64(h, (static_cast<std::uint64_t>(r.name) << 24) |
                    (static_cast<std::uint64_t>(r.cat) << 16) |
                    (static_cast<std::uint64_t>(r.type) << 8) |
                    static_cast<std::uint64_t>(r.tid));
  digest_ = h;
}

const TraceRecord& Tracer::at(std::size_t i) const {
  // Before the first wrap the window starts at slot 0; after it, at head_
  // (the slot the next emit will overwrite, i.e. the oldest record).
  const std::size_t oldest = total_ <= ring_.size() ? 0 : head_;
  return ring_[(oldest + i) % ring_.size()];
}

std::vector<TraceRecord> Tracer::Snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(at(i));
  return out;
}

void Tracer::Reset() {
  head_ = 0;
  total_ = 0;
  digest_ = kFnvOffset;
}

namespace {

void PutRecord(SnapWriter& w, const TraceRecord& r) {
  w.U64(static_cast<std::uint64_t>(r.ts));
  w.U64(r.arg0);
  w.U64(r.arg1);
  w.U16(r.name);
  w.U8(r.cat);
  w.U8(r.type);
  w.U8(r.tid);
}

TraceRecord GetRecord(SnapReader& r) {
  TraceRecord rec;
  rec.ts = static_cast<PicoSeconds>(r.U64());
  rec.arg0 = r.U64();
  rec.arg1 = r.U64();
  rec.name = r.U16();
  rec.cat = r.U8();
  rec.type = r.U8();
  rec.tid = r.U8();
  return rec;
}

}  // namespace

Status Tracer::SaveState(SnapWriter& w) const {
  w.Bool(enabled_);
  w.U64(digest_);
  w.U64(total_);
  w.U64(ring_.size());
  w.U64(head_);
  const std::size_t valid =
      total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
  w.U64(valid);
  for (std::size_t i = 0; i < valid; ++i) {
    PutRecord(w, ring_[i]);
  }
  w.U32(static_cast<std::uint32_t>(names_.size()));
  for (const std::string& n : names_) {
    w.Str(n);
  }
  return Status::kSuccess;
}

Status Tracer::LoadState(SnapReader& r) {
  enabled_ = r.Bool();
  digest_ = r.U64();
  total_ = r.U64();
  const std::uint64_t capacity = r.U64();
  if (capacity != ring_.size()) {
    return Status::kBadParameter;  // Twin built with a different capacity.
  }
  head_ = static_cast<std::size_t>(r.U64());
  const std::uint64_t valid = r.U64();
  for (std::uint64_t i = 0; i < valid; ++i) {
    ring_[static_cast<std::size_t>(i)] = GetRecord(r);
  }
  const std::uint32_t saved_names = r.U32();
  // The twin interned a (possibly shorter) prefix of the saved name table
  // during construction; verify the overlap and append the rest. Names the
  // twin interns later re-resolve to these ids via the idempotent Intern.
  for (std::uint32_t i = 0; i < saved_names; ++i) {
    const std::string name = r.Str();
    if (i < names_.size()) {
      if (names_[i] != name) {
        return Status::kBadParameter;  // Wiring order diverged.
      }
    } else {
      names_.push_back(name);
      ids_.emplace(name, static_cast<std::uint16_t>(i));
    }
  }
  if (names_.size() > saved_names) {
    return Status::kBadParameter;  // Twin interned names the original lacked.
  }
  return r.status();
}

void Tracer::WriteChromeJson(std::FILE* f) const {
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", f);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& r = at(i);
    if (i != 0) std::fputc(',', f);
    const char* ph = "i";
    switch (static_cast<TraceType>(r.type)) {
      case TraceType::kBegin:
        ph = "B";
        break;
      case TraceType::kEnd:
        ph = "E";
        break;
      case TraceType::kInstant:
        ph = "i";
        break;
    }
    // Chrome timestamps are microseconds; ours are picoseconds.
    std::fprintf(f, "\n{\"name\":\"");
    JsonEscape(f, names_[r.name]);
    std::fprintf(f,
                 "\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.6f,"
                 "\"pid\":1,\"tid\":%u",
                 TraceCatName(static_cast<TraceCat>(r.cat)), ph,
                 static_cast<double>(r.ts) / 1e6,
                 static_cast<unsigned>(r.tid));
    if (static_cast<TraceType>(r.type) == TraceType::kInstant) {
      std::fputs(",\"s\":\"t\"", f);
    }
    std::fprintf(f, ",\"args\":{\"a0\":%llu,\"a1\":%llu}}",
                 static_cast<unsigned long long>(r.arg0),
                 static_cast<unsigned long long>(r.arg1));
  }
  std::fputs("\n]}\n", f);
}

bool Tracer::WriteChromeJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  WriteChromeJson(f);
  std::fclose(f);
  return true;
}

void TraceReport::Fold(const TraceRecord& r) {
  switch (static_cast<TraceType>(r.type)) {
    case TraceType::kInstant:
      ++entries_[r.name].count;
      break;
    case TraceType::kBegin:
      open_[r.tid].push_back(OpenSpan{r.name, r.ts});
      break;
    case TraceType::kEnd: {
      auto& stack = open_[r.tid];
      if (stack.empty()) break;  // Begin was evicted before a sink was set
      const OpenSpan s = stack.back();
      stack.pop_back();
      Entry& e = entries_[s.name];
      ++e.count;
      if (r.ts >= s.begin_ts) e.total_ps += r.ts - s.begin_ts;
      break;
    }
  }
}

void TraceReport::FoldRemaining(const Tracer& t) {
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) Fold(t.at(i));
}

std::uint64_t TraceReport::Count(std::uint16_t name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

PicoSeconds TraceReport::TotalPs(std::uint16_t name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.total_ps;
}

std::map<std::string, TraceReport::Entry> TraceReport::Rows(
    const Tracer& t) const {
  std::map<std::string, Entry> rows;
  // nova-lint: allow(determinism) -- accumulates into a sorted std::map
  for (const auto& [id, e] : entries_) {
    Entry& row = rows[t.Name(id)];
    row.count += e.count;
    row.total_ps += e.total_ps;
  }
  return rows;
}

void TraceReport::Reset() {
  entries_.clear();
  open_.clear();
}

Status TraceReport::SaveState(SnapWriter& w) const {
  // nova-lint: allow(determinism) -- copied into a sorted map for encoding
  std::map<std::uint16_t, Entry> sorted_entries(entries_.begin(),
                                                entries_.end());
  w.U32(static_cast<std::uint32_t>(sorted_entries.size()));
  for (const auto& [name, e] : sorted_entries) {
    w.U16(name);
    w.U64(e.count);
    w.U64(static_cast<std::uint64_t>(e.total_ps));
  }
  // nova-lint: allow(determinism) -- copied into a sorted map for encoding
  std::map<std::uint8_t, std::vector<OpenSpan>> sorted_open(open_.begin(),
                                                            open_.end());
  w.U32(static_cast<std::uint32_t>(sorted_open.size()));
  for (const auto& [tid, stack] : sorted_open) {
    w.U8(tid);
    w.U32(static_cast<std::uint32_t>(stack.size()));
    for (const OpenSpan& s : stack) {
      w.U16(s.name);
      w.U64(static_cast<std::uint64_t>(s.begin_ts));
    }
  }
  return Status::kSuccess;
}

Status TraceReport::LoadState(SnapReader& r) {
  entries_.clear();
  open_.clear();
  const std::uint32_t n_entries = r.U32();
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    const std::uint16_t name = r.U16();
    Entry& e = entries_[name];
    e.count = r.U64();
    e.total_ps = static_cast<PicoSeconds>(r.U64());
  }
  const std::uint32_t n_open = r.U32();
  for (std::uint32_t i = 0; i < n_open; ++i) {
    const std::uint8_t tid = r.U8();
    const std::uint32_t depth = r.U32();
    auto& stack = open_[tid];
    for (std::uint32_t j = 0; j < depth; ++j) {
      OpenSpan s{};
      s.name = r.U16();
      s.begin_ts = static_cast<PicoSeconds>(r.U64());
      stack.push_back(s);
    }
  }
  return r.status();
}

}  // namespace nova::sim
