#include "src/sim/fault.h"

namespace nova::sim {

void FaultPlan::set_tracer(Tracer* t) {
  tracer_ = t;
  for (int i = 0; i < kNumFaultKinds; ++i) {
    trace_fire_[i] = t->Intern(
        std::string("fault:") + FaultKindName(static_cast<FaultKind>(i)));
  }
}

void FaultPlan::Arm(EventQueue* events) {
  armed_ = true;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.ev.at <= events->now()) {
      entry.active = true;
    } else {
      events->ScheduleAt(entry.ev.at, [this, i] { entries_[i].active = true; });
    }
  }
}

bool FaultPlan::ShouldFault(FaultKind kind, std::string_view target) {
  for (Entry& entry : entries_) {
    if (!entry.active || entry.ev.kind != kind) {
      continue;
    }
    if (!entry.ev.target.empty() && entry.ev.target != target) {
      continue;
    }
    if (entry.ev.rate < 1.0 && !rng_.Chance(entry.ev.rate)) {
      continue;
    }
    if (entry.ev.count != 0 && --entry.ev.count == 0) {
      entry.active = false;
    }
    ++injected_[static_cast<int>(kind)];
    tracer_->Instant(TraceCat::kFault, trace_fire_[static_cast<int>(kind)],
                     static_cast<std::uint64_t>(kind));
    return true;
  }
  return false;
}

std::uint64_t FaultPlan::total_injected() const {
  std::uint64_t total = 0;
  for (int i = 0; i < kNumFaultKinds; ++i) {
    total += injected_[i];
  }
  return total;
}

}  // namespace nova::sim
