#include "src/sim/fault.h"

namespace nova::sim {

namespace {
// Tag vocabulary for the plan's activation events.
constexpr std::uint32_t kOpActivate = 1;
}  // namespace

void FaultPlan::set_tracer(Tracer* t) {
  tracer_ = t;
  for (int i = 0; i < kNumFaultKinds; ++i) {
    trace_fire_[i] = t->Intern(
        std::string("fault:") + FaultKindName(static_cast<FaultKind>(i)));
  }
}

void FaultPlan::Arm(EventQueue* events) {
  armed_ = true;
  events->RegisterRebinder(
      EventQueue::OwnerToken("sim.faultplan"), [this](const EventTag& tag) {
        const std::size_t i = static_cast<std::size_t>(tag.a);
        return [this, i] { entries_[i].active = true; };
      });
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.ev.at <= events->now()) {
      entry.active = true;
    } else {
      events->ScheduleAtTagged(
          entry.ev.at,
          EventTag{EventQueue::OwnerToken("sim.faultplan"), kOpActivate,
                   static_cast<std::uint64_t>(i), 0},
          [this, i] { entries_[i].active = true; });
    }
  }
}

bool FaultPlan::ShouldFault(FaultKind kind, std::string_view target) {
  for (Entry& entry : entries_) {
    if (!entry.active || entry.ev.kind != kind) {
      continue;
    }
    if (!entry.ev.target.empty() && entry.ev.target != target) {
      continue;
    }
    if (entry.ev.rate < 1.0 && !rng_.Chance(entry.ev.rate)) {
      continue;
    }
    if (entry.ev.count != 0 && --entry.ev.count == 0) {
      entry.active = false;
    }
    ++injected_[static_cast<int>(kind)];
    tracer_->Instant(TraceCat::kFault, trace_fire_[static_cast<int>(kind)],
                     static_cast<std::uint64_t>(kind));
    return true;
  }
  return false;
}

bool FaultPlan::InWindow(FaultKind kind, std::string_view target,
                         PicoSeconds now) const {
  if (!armed_) {
    return false;
  }
  for (const Entry& entry : entries_) {
    if (entry.ev.kind != kind || entry.ev.window_ps == 0) {
      continue;
    }
    if (!entry.ev.target.empty() && entry.ev.target != target) {
      continue;
    }
    if (now >= entry.ev.at && now < entry.ev.at + entry.ev.window_ps) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultPlan::total_injected() const {
  std::uint64_t total = 0;
  for (int i = 0; i < kNumFaultKinds; ++i) {
    total += injected_[i];
  }
  return total;
}

Status FaultPlan::SaveState(SnapWriter& w) const {
  Status st = rng_.SaveState(w);
  if (!Ok(st)) {
    return st;
  }
  w.Bool(armed_);
  for (int i = 0; i < kNumFaultKinds; ++i) {
    w.U64(injected_[i]);
  }
  w.U32(static_cast<std::uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.U64(static_cast<std::uint64_t>(e.ev.at));
    w.U8(static_cast<std::uint8_t>(e.ev.kind));
    w.Str(e.ev.target);
    w.U64(e.ev.count);
    w.F64(e.ev.rate);
    w.U64(static_cast<std::uint64_t>(e.ev.window_ps));
    w.Bool(e.active);
  }
  return Status::kSuccess;
}

Status FaultPlan::LoadState(SnapReader& r) {
  Status st = rng_.LoadState(r);
  if (!Ok(st)) {
    return st;
  }
  armed_ = r.Bool();
  for (int i = 0; i < kNumFaultKinds; ++i) {
    injected_[i] = r.U64();
  }
  const std::uint32_t n = r.U32();
  if (n != entries_.size()) {
    return Status::kBadParameter;  // Twin scheduled a different plan.
  }
  for (Entry& e : entries_) {
    e.ev.at = static_cast<PicoSeconds>(r.U64());
    e.ev.kind = static_cast<FaultKind>(r.U8());
    e.ev.target = r.Str();
    e.ev.count = r.U64();
    e.ev.rate = r.F64();
    e.ev.window_ps = static_cast<PicoSeconds>(r.U64());
    e.active = r.Bool();
  }
  return r.status();
}

}  // namespace nova::sim
