#include "src/sim/snapshot.h"

namespace nova::sim {

std::uint64_t SnapFnv1a(const std::uint8_t* data, std::size_t len,
                        std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kSnapFnvPrime;
  }
  return h;
}

SnapWriter& Snapshot::Section(const std::string& name, std::uint16_t version) {
  Stored& s = sections_[name];
  s.version = version;
  s.writer = SnapWriter{};
  return s.writer;
}

SnapReader Snapshot::Open(const std::string& name,
                          std::uint16_t expect_version) const {
  auto it = sections_.find(name);
  if (it == sections_.end() || it->second.version != expect_version) {
    return SnapReader{};  // Pre-failed.
  }
  const auto& buf = it->second.writer.data();
  return SnapReader{buf.data(), buf.size()};
}

std::uint16_t Snapshot::SectionVersion(const std::string& name) const {
  auto it = sections_.find(name);
  return it == sections_.end() ? 0 : it->second.version;
}

std::vector<std::string> Snapshot::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, stored] : sections_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::uint8_t> Snapshot::Encode() const {
  SnapWriter w;
  w.Bytes(kMagic, sizeof kMagic);
  w.U32(kFileVersion);
  w.U32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, stored] : sections_) {
    const auto& payload = stored.writer.data();
    w.Str(name);
    w.U16(stored.version);
    w.U64(payload.size());
    w.U64(SnapFnv1a(payload.data(), payload.size()));
    w.Bytes(payload.data(), payload.size());
  }
  return w.data();
}

Status Snapshot::Decode(const std::uint8_t* data, std::size_t len) {
  sections_.clear();
  SnapReader r{data, len};
  char magic[8] = {};
  r.Bytes(magic, sizeof magic);
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return Status::kBadParameter;
  }
  if (r.U32() != kFileVersion) {
    return Status::kBadFeature;
  }
  const std::uint32_t count = r.U32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.Str();
    const std::uint16_t version = r.U16();
    const std::uint64_t size = r.U64();
    const std::uint64_t checksum = r.U64();
    if (!r.ok()) {
      return Status::kBadParameter;
    }
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(size));
    r.Bytes(payload.data(), payload.size());
    if (!r.ok() ||
        SnapFnv1a(payload.data(), payload.size()) != checksum) {
      return Status::kBadParameter;
    }
    Stored& s = sections_[name];
    s.version = version;
    s.writer.Bytes(payload.data(), payload.size());
  }
  return r.AtEnd() ? Status::kSuccess : Status::kBadParameter;
}

std::uint64_t Snapshot::PayloadBytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, stored] : sections_) {
    total += stored.writer.size();
  }
  return total;
}

}  // namespace nova::sim
