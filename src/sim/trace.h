// Cycle-stamped structured tracing.
//
// `Tracer` records typed events — span begin/end pairs and instants, each
// with a picosecond timestamp, an interned name id and a small fixed arg
// payload — into a bounded ring buffer. The design contract:
//
//  * Zero cost when disabled: every emit path starts with an inlined
//    `enabled_` check and returns before touching the clock, the ring or
//    the digest. Call sites that must compute a timestamp themselves guard
//    with `enabled()` first, so a disabled tracer costs one predictable
//    branch per site.
//  * No strings on the hot path: names are interned once (at construction
//    or wiring time) into dense uint16 ids; emission stores ids only.
//  * Deterministic: records carry simulated time, never host time, and the
//    FNV-1a digest is folded incrementally at emission — it covers every
//    record ever emitted, regardless of how many the bounded ring has
//    since evicted. Same seed, same digest, byte for byte.
//  * Bounded memory with exact attribution: an optional `TraceReport` sink
//    receives each record as the ring evicts it, so folding the sink plus
//    the retained window yields full-run per-name counts and span cycle
//    totals without unbounded buffering.
//
// Exporters: Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing) over the retained window, and the digest for golden
// tests.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/snapshot.h"
#include "src/sim/status.h"
#include "src/sim/time.h"

namespace nova::sim {

class EventQueue;
class TraceReport;

// Trace categories; fixed at compile time, mapped to Chrome "cat" strings.
enum class TraceCat : std::uint8_t {
  kVmExit = 0,  // VM exits and their host-side handling spans
  kIpc,         // hypercalls and portal traversals
  kSched,       // scheduler dispatch / preemption
  kVtlb,        // vTLB fill / flush / context switch / pressure eviction
  kDevice,      // device DMA and completion activity
  kIrq,         // interrupt assertion and delivery
  kFault,       // fault-plan firings
};
inline constexpr int kNumTraceCats = 7;
const char* TraceCatName(TraceCat c);

enum class TraceType : std::uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

// One trace record. Fixed-size POD; the digest folds exactly these fields
// in this order, so the layout is part of the determinism contract.
struct TraceRecord {
  PicoSeconds ts = 0;       // simulated time of emission
  std::uint64_t arg0 = 0;   // event-specific payload (gva, gsi, bytes, ...)
  std::uint64_t arg1 = 0;
  std::uint16_t name = 0;   // interned name id (Tracer::Name resolves it)
  std::uint8_t cat = 0;     // TraceCat
  std::uint8_t type = 0;    // TraceType
  std::uint8_t tid = 0;     // emitting CPU, or kDeviceTid for devices
};

// Thread id used for records emitted by device models and other
// non-CPU-driven contexts (their clock is the event queue).
inline constexpr std::uint8_t kDeviceTid = 0xff;

class Tracer {
 public:
  // `clock` provides default timestamps for the `Instant` convenience
  // emitter (device models); hypervisor paths stamp records explicitly
  // with per-CPU time via the *At variants. Null clock is fine as long as
  // only the *At variants are used.
  explicit Tracer(const EventQueue* clock = nullptr,
                  std::size_t capacity = 1u << 16);

  // A process-wide, permanently disabled tracer: layers that may run
  // without tracing wired up default their pointer here and skip null
  // checks on the hot path.
  static Tracer& Disabled();

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Interns `name`, returning a stable dense id. Idempotent; never call on
  // a hot path — wire ids up once at construction time.
  std::uint16_t Intern(const std::string& name);
  const std::string& Name(std::uint16_t id) const { return names_[id]; }

  // --- emission -------------------------------------------------------
  // All emitters are no-ops when disabled; the check is inlined so the
  // disabled cost is a single predicted branch.
  void BeginAt(PicoSeconds ts, TraceCat cat, std::uint16_t name,
               std::uint8_t tid, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    if (!enabled_) return;
    Emit(ts, TraceType::kBegin, cat, name, tid, a0, a1);
  }
  void EndAt(PicoSeconds ts, TraceCat cat, std::uint16_t name,
             std::uint8_t tid, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    if (!enabled_) return;
    Emit(ts, TraceType::kEnd, cat, name, tid, a0, a1);
  }
  void InstantAt(PicoSeconds ts, TraceCat cat, std::uint16_t name,
                 std::uint8_t tid, std::uint64_t a0 = 0,
                 std::uint64_t a1 = 0) {
    if (!enabled_) return;
    Emit(ts, TraceType::kInstant, cat, name, tid, a0, a1);
  }
  // Clock-stamped instant for device models; reads the event-queue clock
  // only after the enabled check.
  void Instant(TraceCat cat, std::uint16_t name, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0);

  // --- state ----------------------------------------------------------
  // Incremental FNV-1a over every record emitted since the last Reset.
  std::uint64_t digest() const { return digest_; }
  // Total records emitted (including those the ring has evicted).
  std::uint64_t total_records() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  // Retained window, oldest first.
  std::size_t size() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }
  const TraceRecord& at(std::size_t i) const;
  std::vector<TraceRecord> Snapshot() const;

  // Evicted records are folded into `sink` before being overwritten, so
  // sink + retained window together cover the full run exactly once.
  void set_sink(TraceReport* sink) { sink_ = sink; }

  // Clears the ring, digest and record count. Interned names survive (ids
  // stay valid); the sink is not touched.
  void Reset();

  // Snapshot the full tracer state: digest cursor, retained ring window
  // and the interned-name table. Loading verifies that the twin's names
  // are a prefix of the saved table (same wiring order), then appends the
  // names interned after twin construction — lazily-attached components
  // re-Intern idempotently and land on the same ids.
  Status SaveState(SnapWriter& w) const;
  Status LoadState(SnapReader& r);

  // --- exporters ------------------------------------------------------
  // Chrome trace_event JSON over the retained window.
  void WriteChromeJson(std::FILE* f) const;
  bool WriteChromeJsonFile(const std::string& path) const;

 private:
  void Emit(PicoSeconds ts, TraceType type, TraceCat cat, std::uint16_t name,
            std::uint8_t tid, std::uint64_t a0, std::uint64_t a1);
  void Fold(const TraceRecord& r);

  // snapshot-x-list(Tracer): enabled_, clock_, ring_, head_, total_,
  // digest_, sink_, names_, ids_
  bool enabled_ = false;
  const EventQueue* clock_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;       // next slot to write
  std::uint64_t total_ = 0;    // records emitted since Reset
  std::uint64_t digest_;
  TraceReport* sink_ = nullptr;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint16_t> ids_;
};

// Folds a record stream into per-name attribution: how many times each
// event fired and, for spans, how much simulated time they covered.
// Span pairing uses a per-tid stack (spans nest within a tid), so nested
// spans attribute their own inclusive duration to their own name.
class TraceReport {
 public:
  struct Entry {
    std::uint64_t count = 0;      // instants + completed spans
    PicoSeconds total_ps = 0;     // inclusive span time (0 for instants)
    bool operator==(const Entry&) const = default;
  };

  // Folds one record in stream order. Begin pushes; End pops its matching
  // Begin and charges the inclusive duration; Instant counts.
  void Fold(const TraceRecord& r);
  // Folds the tracer's retained window (the part not yet evicted into the
  // sink). Call once, after the run.
  void FoldRemaining(const Tracer& t);

  std::uint64_t Count(std::uint16_t name) const;
  PicoSeconds TotalPs(std::uint16_t name) const;
  // Name-resolved view for printing; `t` supplies the id→string mapping.
  std::map<std::string, Entry> Rows(const Tracer& t) const;

  void Reset();

  Status SaveState(SnapWriter& w) const;
  Status LoadState(SnapReader& r);

 private:
  struct OpenSpan {
    std::uint16_t name;
    PicoSeconds begin_ts;
  };
  // snapshot-x-list(TraceReport): entries_, open_
  std::unordered_map<std::uint16_t, Entry> entries_;
  std::unordered_map<std::uint8_t, std::vector<OpenSpan>> open_;
};

// RAII span: emits Begin on construction and End on destruction, stamping
// both with `clock()` (a callable returning PicoSeconds, evaluated only
// when the tracer is enabled). Designed for scopes with early returns —
// the End fires on every exit path.
template <typename ClockFn>
class ScopedSpan {
 public:
  ScopedSpan(Tracer* t, TraceCat cat, std::uint16_t name, std::uint8_t tid,
             ClockFn clock, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
      : t_(t), clock_(std::move(clock)), cat_(cat), name_(name), tid_(tid) {
    // This class IS the sanctioned wrapper the raw-span rule points to.
    if (t_->enabled())
      t_->BeginAt(clock_(), cat_, name_, tid_, a0, a1);  // nova-lint: allow(raw-span)
  }
  ~ScopedSpan() {
    if (t_->enabled())
      t_->EndAt(clock_(), cat_, name_, tid_);  // nova-lint: allow(raw-span)
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* t_;
  ClockFn clock_;
  TraceCat cat_;
  std::uint16_t name_;
  std::uint8_t tid_;
};

template <typename ClockFn>
ScopedSpan(Tracer*, TraceCat, std::uint16_t, std::uint8_t, ClockFn,
           std::uint64_t, std::uint64_t) -> ScopedSpan<ClockFn>;

}  // namespace nova::sim

#endif  // SRC_SIM_TRACE_H_
