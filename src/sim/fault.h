// Deterministic fault injection.
//
// A FaultPlan is a seeded schedule of fault activations driven off the
// simulation event queue: each entry names a fault kind, a target (device
// or VMM name), an activation time, an injection budget and a per-
// opportunity rate. Components that can fail hold an optional FaultPlan
// pointer and consult it at their injection points; a null plan is the
// common case and costs nothing — no RNG draws, no events, no charges —
// so a disarmed build is bit-identical to one without the machinery.
//
// Determinism: activations are ordinary scheduled events, and rate draws
// come from the plan's own xoshiro stream, consumed only at matching
// injection opportunities. Same seed + same schedule + same workload
// => same faults, run after run.
#ifndef SRC_SIM_FAULT_H_
#define SRC_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/trace.h"

namespace nova::sim {

enum class FaultKind : std::uint8_t {
  kDiskMediaError,  // Disk request completes with a media error.
  kNicDrop,         // Inbound frame silently dropped.
  kNicCorrupt,      // Inbound frame delivered with a flipped byte.
  kDmaUnmapped,     // Device DMA redirected to an unmapped/protected iova.
  kVmmCrash,        // User-level VMM stops responding (heartbeat ceases).
  kAllocFail,       // Kernel frame allocation fails transiently.
  kLinkPartition,   // Network link partitioned: every frame dropped for a
                    // timed window (`window_ps`), then the link heals.
};

constexpr int kNumFaultKinds = 7;

constexpr const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kDiskMediaError: return "disk-media-error";
    case FaultKind::kNicDrop: return "nic-drop";
    case FaultKind::kNicCorrupt: return "nic-corrupt";
    case FaultKind::kDmaUnmapped: return "dma-unmapped";
    case FaultKind::kVmmCrash: return "vmm-crash";
    case FaultKind::kAllocFail: return "alloc-fail";
    case FaultKind::kLinkPartition: return "link-partition";
  }
  return "?";
}

struct FaultEvent {
  PicoSeconds at = 0;       // Activation time (absolute).
  FaultKind kind = FaultKind::kDiskMediaError;
  std::string target;       // Component name; empty matches any target.
  std::uint64_t count = 1;  // Injection budget once active; 0 = unlimited.
  double rate = 1.0;        // Probability per matching opportunity.
  // Window faults (kLinkPartition): the fault holds for this many
  // picoseconds after `at`, then heals. Window faults are pure time
  // predicates — InWindow() consults them without drawing RNG or mutating
  // budgets, so a component polling the plan stays digest-invisible.
  PicoSeconds window_ps = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : rng_(seed) {}

  // Add an entry to the schedule. Call before Arm().
  void Schedule(FaultEvent ev) { entries_.push_back({std::move(ev), false}); }

  // Activate the schedule: entries whose time has come switch on via
  // ordinary queue events. Entries at or before now() activate immediately.
  void Arm(EventQueue* events);

  bool armed() const { return armed_; }

  // Consult the plan at an injection opportunity. Returns true when an
  // active matching entry with remaining budget fires (decrementing its
  // budget and recording the injection).
  bool ShouldFault(FaultKind kind, std::string_view target);

  // Pure time-window query for window faults (kLinkPartition): true when
  // `now` falls inside a matching entry's [at, at + window_ps) interval.
  // Never draws RNG, never mutates budgets, never traces — callers that
  // must stay digest-invisible (the migration driver) use this form.
  bool InWindow(FaultKind kind, std::string_view target,
                PicoSeconds now) const;

  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<int>(kind)];
  }
  std::uint64_t total_injected() const;

  // Wires a tracer in: every firing emits a "fault:<kind>" instant
  // (timestamped from the tracer's event-queue clock).
  void set_tracer(Tracer* t);

  // Snapshot the injection cursor: RNG stream position, per-entry
  // budgets/activation, injection counts. Entries themselves must match
  // between save and load (the twin schedules the identical plan).
  Status SaveState(SnapWriter& w) const;
  Status LoadState(SnapReader& r);

 private:
  struct Entry {
    FaultEvent ev;
    bool active = false;
  };

  // snapshot-x-list(FaultPlan): rng_, entries_, armed_, injected_,
  // tracer_, trace_fire_
  Rng rng_;
  std::vector<Entry> entries_;
  bool armed_ = false;
  std::uint64_t injected_[kNumFaultKinds] = {};
  Tracer* tracer_ = &Tracer::Disabled();
  std::uint16_t trace_fire_[kNumFaultKinds] = {};
};

}  // namespace nova::sim

#endif  // SRC_SIM_FAULT_H_
