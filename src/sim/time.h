// Virtual time base for the machine simulation.
//
// All device-level simulation runs on a global picosecond clock; each CPU
// additionally counts clock cycles at its own frequency. Picoseconds avoid
// rounding artifacts for non-integral frequencies such as the 2.67 GHz
// Core i7 used in the paper's evaluation.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace nova::sim {

// Absolute simulation time in picoseconds.
using PicoSeconds = std::uint64_t;

// CPU clock cycles (relative count).
using Cycles = std::uint64_t;

constexpr PicoSeconds kPicosPerNano = 1000;
constexpr PicoSeconds kPicosPerMicro = 1000 * kPicosPerNano;
constexpr PicoSeconds kPicosPerMilli = 1000 * kPicosPerMicro;
constexpr PicoSeconds kPicosPerSecond = 1000 * kPicosPerMilli;

constexpr PicoSeconds Nanoseconds(std::uint64_t ns) { return ns * kPicosPerNano; }
constexpr PicoSeconds Microseconds(std::uint64_t us) { return us * kPicosPerMicro; }
constexpr PicoSeconds Milliseconds(std::uint64_t ms) { return ms * kPicosPerMilli; }
constexpr PicoSeconds Seconds(std::uint64_t s) { return s * kPicosPerSecond; }

// A fixed CPU clock frequency, expressed in kHz so that common x86
// frequencies (2.67 GHz, 2.1 GHz, ...) are exactly representable.
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(std::uint64_t khz) : khz_(khz) {}

  static constexpr Frequency MHz(std::uint64_t mhz) { return Frequency(mhz * 1000); }

  constexpr std::uint64_t khz() const { return khz_; }
  constexpr std::uint64_t hz() const { return khz_ * 1000; }

  // Duration of `c` cycles in picoseconds: c / (kHz * 1e3) seconds.
  // Split to avoid overflow for hour-long cycle counts.
  constexpr PicoSeconds CyclesToPicos(Cycles c) const {
    const Cycles whole = c / khz_;
    const Cycles rem = c % khz_;
    return whole * 1'000'000'000ull + rem * 1'000'000'000ull / khz_;
  }

  // Number of whole cycles elapsed in `ps` picoseconds.
  constexpr Cycles PicosToCycles(PicoSeconds ps) const {
    // ps * khz * 1e3 / 1e12 = ps * khz / 1e9; reorder to avoid overflow for
    // long simulations (split ps into seconds + remainder).
    const std::uint64_t secs = ps / kPicosPerSecond;
    const std::uint64_t rem = ps % kPicosPerSecond;
    return secs * khz_ * 1000 + rem * khz_ / 1'000'000'000ull;
  }

  constexpr bool operator==(const Frequency&) const = default;

 private:
  std::uint64_t khz_ = 1'000'000;  // Default 1 GHz.
};

}  // namespace nova::sim

#endif  // SRC_SIM_TIME_H_
