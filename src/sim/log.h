// Minimal leveled logging.
//
// The hypervisor and device models log through this sink so that tests can
// silence output and benchmarks stay clean. Logging defaults to warnings
// and above.
#ifndef SRC_SIM_LOG_H_
#define SRC_SIM_LOG_H_

#include <cstdio>
#include <string>

namespace nova::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kNone = 5,
};

// Global threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* subsystem, const std::string& msg);

}  // namespace nova::sim

#define NOVA_LOG(level, subsystem, msg)                                  \
  do {                                                                   \
    if ((level) >= ::nova::sim::GetLogLevel()) {                         \
      ::nova::sim::LogMessage((level), (subsystem), (msg));              \
    }                                                                    \
  } while (0)

#endif  // SRC_SIM_LOG_H_
