#include "src/sim/log.h"

namespace nova::sim {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kNone: return "NONE";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* subsystem, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), subsystem, msg.c_str());
}

}  // namespace nova::sim
