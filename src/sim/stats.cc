#include "src/sim/stats.h"

#include <cmath>

namespace nova::sim {

std::uint64_t Distribution::Percentile(double q) const {
  if (samples_.empty()) {
    return 0;
  }
  std::sort(samples_.begin(), samples_.end());
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return samples_[std::min(idx, samples_.size() - 1)];
}

void UtilizationTracker::SetBusy(PicoSeconds now, bool busy) {
  if (busy == busy_) {
    return;
  }
  if (busy_) {
    busy_accum_ += now - last_change_;
  }
  busy_ = busy;
  last_change_ = now;
}

double UtilizationTracker::Utilization(PicoSeconds now) const {
  const PicoSeconds total = now - start_;
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(busy_time(now)) / static_cast<double>(total);
}

PicoSeconds UtilizationTracker::busy_time(PicoSeconds now) const {
  PicoSeconds busy = busy_accum_;
  if (busy_) {
    busy += now - last_change_;
  }
  return busy;
}

void UtilizationTracker::Reset(PicoSeconds now) {
  start_ = now;
  busy_accum_ = 0;
  last_change_ = now;
}

}  // namespace nova::sim
