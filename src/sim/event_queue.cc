#include "src/sim/event_queue.h"

#include <algorithm>

namespace nova::sim {

EventQueue::EventId EventQueue::ScheduleAtTagged(PicoSeconds when,
                                                 EventTag tag, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, tag, std::move(cb)});
  ++live_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Lazy deletion: remember the id and skip it when it reaches the top.
  if (id == 0 || id >= next_id_) {
    return false;
  }
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  if (live_ > 0) {
    --live_;
  }
  return true;
}

void EventQueue::PopCancelled() const {
  while (!heap_.empty()) {
    auto it = std::find(cancelled_.begin(), cancelled_.end(), heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

void EventQueue::AdvanceTo(PicoSeconds t) {
  for (;;) {
    PopCancelled();
    if (heap_.empty() || heap_.top().when > t) {
      break;
    }
    Event ev = heap_.top();
    heap_.pop();
    --live_;
    now_ = std::max(now_, ev.when);
    ev.cb();
  }
  now_ = std::max(now_, t);
}

bool EventQueue::RunOne() {
  PopCancelled();
  if (heap_.empty()) {
    return false;
  }
  Event ev = heap_.top();
  heap_.pop();
  --live_;
  now_ = std::max(now_, ev.when);
  ev.cb();
  return true;
}

PicoSeconds EventQueue::NextDeadline() const {
  PopCancelled();
  return heap_.top().when;
}

Status EventQueue::SaveState(SnapWriter& w) const {
  // Enumerate by draining a copy of the heap (std::function is copyable),
  // skipping lazily-cancelled entries so the restored queue starts clean.
  auto copy = heap_;
  w.U64(static_cast<std::uint64_t>(now_));
  w.U64(next_seq_);
  w.U64(next_id_);
  std::vector<Event> pending;
  while (!copy.empty()) {
    Event ev = copy.top();
    copy.pop();
    if (std::find(cancelled_.begin(), cancelled_.end(), ev.id) !=
        cancelled_.end()) {
      continue;
    }
    if (ev.tag.owner == 0) {
      return Status::kBadParameter;  // Untagged closure: not restorable.
    }
    pending.push_back(std::move(ev));
  }
  w.U64(pending.size());
  for (const Event& ev : pending) {
    w.U64(static_cast<std::uint64_t>(ev.when));
    w.U64(ev.seq);
    w.U64(ev.id);
    w.U64(ev.tag.owner);
    w.U32(ev.tag.op);
    w.U64(ev.tag.a);
    w.U64(ev.tag.b);
  }
  return Status::kSuccess;
}

Status EventQueue::LoadState(SnapReader& r) {
  heap_ = {};
  cancelled_.clear();
  live_ = 0;
  now_ = static_cast<PicoSeconds>(r.U64());
  next_seq_ = r.U64();
  next_id_ = r.U64();
  const std::uint64_t count = r.U64();
  for (std::uint64_t i = 0; i < count; ++i) {
    Event ev;
    ev.when = static_cast<PicoSeconds>(r.U64());
    ev.seq = r.U64();
    ev.id = r.U64();
    ev.tag.owner = r.U64();
    ev.tag.op = r.U32();
    ev.tag.a = r.U64();
    ev.tag.b = r.U64();
    if (!r.ok()) {
      return Status::kBadParameter;
    }
    auto it = rebinders_.find(ev.tag.owner);
    if (it == rebinders_.end()) {
      return Status::kBadCapability;  // No rebinder for this owner.
    }
    ev.cb = it->second(ev.tag);
    if (!ev.cb) {
      return Status::kBadCapability;
    }
    heap_.push(std::move(ev));
    ++live_;
  }
  return r.status();
}

}  // namespace nova::sim
