#include "src/sim/event_queue.h"

#include <algorithm>

namespace nova::sim {

EventQueue::EventId EventQueue::ScheduleAt(PicoSeconds when, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(cb)});
  ++live_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Lazy deletion: remember the id and skip it when it reaches the top.
  if (id == 0 || id >= next_id_) {
    return false;
  }
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  if (live_ > 0) {
    --live_;
  }
  return true;
}

void EventQueue::PopCancelled() const {
  while (!heap_.empty()) {
    auto it = std::find(cancelled_.begin(), cancelled_.end(), heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

void EventQueue::AdvanceTo(PicoSeconds t) {
  for (;;) {
    PopCancelled();
    if (heap_.empty() || heap_.top().when > t) {
      break;
    }
    Event ev = heap_.top();
    heap_.pop();
    --live_;
    now_ = std::max(now_, ev.when);
    ev.cb();
  }
  now_ = std::max(now_, t);
}

bool EventQueue::RunOne() {
  PopCancelled();
  if (heap_.empty()) {
    return false;
  }
  Event ev = heap_.top();
  heap_.pop();
  --live_;
  now_ = std::max(now_, ev.when);
  ev.cb();
  return true;
}

PicoSeconds EventQueue::NextDeadline() const {
  PopCancelled();
  return heap_.top().when;
}

}  // namespace nova::sim
