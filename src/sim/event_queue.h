// Discrete-event queue driving device-level simulation.
//
// Devices (disk, NIC, timers) schedule callbacks at absolute picosecond
// timestamps; the machine's run loop drains events that are due as CPU
// time advances. Events fire in strictly non-decreasing time order with
// FIFO ordering among events scheduled for the same instant.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace nova::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  // Schedule `cb` to fire at absolute time `when`. Times in the past fire
  // on the next Advance(). Returns an id usable with Cancel().
  EventId ScheduleAt(PicoSeconds when, Callback cb);
  EventId ScheduleAfter(PicoSeconds delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Cancel a pending event; returns false if it already fired or is unknown.
  bool Cancel(EventId id);

  // Advance simulated time to `t`, firing every event due at or before `t`.
  // Callbacks may schedule further events, including at times <= t.
  void AdvanceTo(PicoSeconds t);

  // Fire the single earliest pending event (if any), jumping time forward
  // to its deadline. Returns false when the queue is empty. Used by idle
  // loops: when all CPUs halt, time skips to the next device event.
  bool RunOne();

  PicoSeconds now() const { return now_; }
  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  PicoSeconds NextDeadline() const;  // Only valid when !empty().

 private:
  struct Event {
    PicoSeconds when;
    std::uint64_t seq;
    EventId id;
    Callback cb;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  void PopCancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  mutable std::vector<EventId> cancelled_;
  PicoSeconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace nova::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
