// Discrete-event queue driving device-level simulation.
//
// Devices (disk, NIC, timers) schedule callbacks at absolute picosecond
// timestamps; the machine's run loop drains events that are due as CPU
// time advances. Events fire in strictly non-decreasing time order with
// FIFO ordering among events scheduled for the same instant.
//
// Snapshot support: callbacks are closures and cannot be serialized, so
// every event that may be pending at a snapshot point carries an
// `EventTag` — a stable (owner, op, a, b) description of what the closure
// does. Saving writes the exact (when, seq, id, tag) of each pending
// event; restoring looks the owner token up in the rebinder registry
// (populated during twin construction) and asks it to rebuild an
// equivalent closure from the tag. Seq and id are restored verbatim so
// FIFO ties and future Cancel() ids behave identically post-restore.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/sim/snapshot.h"
#include "src/sim/status.h"
#include "src/sim/time.h"

namespace nova::sim {

// Serializable description of a pending event's closure. `owner` is an
// OwnerToken() of the component name ("hw.disk", "vmm.vm0.hb", ...); `op`
// distinguishes the owner's event flavours; `a`/`b` carry the closure's
// captured parameters (request ids, generation counters, entry indices).
// owner == 0 means untagged: such an event pending at snapshot time is a
// save error, which is how snapshot-hostile closures are flushed out.
struct EventTag {
  std::uint64_t owner = 0;
  std::uint32_t op = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;
  // Rebuilds the closure of a restored event from its tag.
  using Rebinder = std::function<Callback(const EventTag&)>;

  // Stable 64-bit token for a component name (FNV-1a; never returns 0).
  static constexpr std::uint64_t OwnerToken(std::string_view name) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h == 0 ? 1 : h;
  }

  // Schedule `cb` to fire at absolute time `when`. Times in the past fire
  // on the next Advance(). Returns an id usable with Cancel().
  EventId ScheduleAt(PicoSeconds when, Callback cb) {
    return ScheduleAtTagged(when, EventTag{}, std::move(cb));
  }
  EventId ScheduleAfter(PicoSeconds delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Tagged variants: identical scheduling semantics, but the event can be
  // serialized and re-bound across a snapshot/restore cycle.
  EventId ScheduleAtTagged(PicoSeconds when, EventTag tag, Callback cb);
  EventId ScheduleAfterTagged(PicoSeconds delay, EventTag tag, Callback cb) {
    return ScheduleAtTagged(now_ + delay, std::move(tag), std::move(cb));
  }

  // Register the closure factory for an owner token. Called during
  // construction by every component that schedules tagged events; a later
  // registration for the same owner replaces the earlier one.
  void RegisterRebinder(std::uint64_t owner, Rebinder fn) {
    rebinders_[owner] = std::move(fn);
  }

  // Cancel a pending event; returns false if it already fired or is unknown.
  bool Cancel(EventId id);

  // Advance simulated time to `t`, firing every event due at or before `t`.
  // Callbacks may schedule further events, including at times <= t.
  void AdvanceTo(PicoSeconds t);

  // Fire the single earliest pending event (if any), jumping time forward
  // to its deadline. Returns false when the queue is empty. Used by idle
  // loops: when all CPUs halt, time skips to the next device event.
  bool RunOne();

  PicoSeconds now() const { return now_; }
  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  PicoSeconds NextDeadline() const;  // Only valid when !empty().

  // Serialize every live pending event. Fails with kBadState-style error
  // (kBadParameter) if any pending event is untagged — closures that
  // cannot be described cannot be restored.
  Status SaveState(SnapWriter& w) const;
  // Drop all pending events (including the twin's construction-time ones)
  // and rebuild the saved set through the rebinder registry. Restores
  // now_/next_seq_/next_id_ so post-restore scheduling is bit-identical.
  Status LoadState(SnapReader& r);

 private:
  struct Event {
    PicoSeconds when;
    std::uint64_t seq;
    EventId id;
    EventTag tag;
    Callback cb;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  void PopCancelled() const;

  // snapshot-x-list(EventQueue): heap_, cancelled_, now_, next_seq_,
  // next_id_, live_, rebinders_
  mutable std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  mutable std::vector<EventId> cancelled_;
  PicoSeconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::unordered_map<std::uint64_t, Rebinder> rebinders_;
};

}  // namespace nova::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
