// Versioned, deterministic state serialization (checkpoint/restore, §4.2's
// recovery story extended to full-VM snapshots).
//
// A `Snapshot` is an ordered set of named sections, each an opaque byte
// string with a small section version and an FNV-1a checksum. Components
// serialize themselves with `SaveState(SnapWriter&)` and restore with
// `LoadState(SnapReader&)`; the writer/reader pair implements a tiny
// little-endian TLV encoding with no host-dependent layout, so an encoded
// snapshot is bit-identical across runs and platforms.
//
// Restore convention (the "twin" model): a snapshot carries *state only*,
// never code. Restoring rebuilds the scenario by re-running the identical
// construction path (same seeds, same creation order), then overlays every
// piece of mutable state from the snapshot. Pending event-queue callbacks
// are re-bound through the tag/rebinder registry in `EventQueue`.
//
// Error handling: readers latch the first error (truncation, bad magic,
// checksum mismatch, version skew) and every subsequent Get returns a
// zero value, so load paths can be written straight-line and check
// `reader.ok()` (or the returned Status) once at the end.
#ifndef SRC_SIM_SNAPSHOT_H_
#define SRC_SIM_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "src/sim/status.h"

namespace nova::sim {

// Incremental FNV-1a, shared with the trace digest machinery.
constexpr std::uint64_t kSnapFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kSnapFnvPrime = 0x100000001b3ull;
std::uint64_t SnapFnv1a(const std::uint8_t* data, std::size_t len,
                        std::uint64_t seed = kSnapFnvOffset);

// Append-only little-endian encoder for one snapshot section.
class SnapWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v) { PutLe(v, 2); }
  void U32(std::uint32_t v) { PutLe(v, 4); }
  void U64(std::uint64_t v) { PutLe(v, 8); }
  void I64(std::int64_t v) { PutLe(static_cast<std::uint64_t>(v), 8); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void Bytes(const void* data, std::size_t len) {
    if (len == 0) return;  // data may be null (empty vector).
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  void PutLe(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

// Error-latching decoder over one snapshot section.
class SnapReader {
 public:
  SnapReader() : failed_(true) {}
  SnapReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  std::uint8_t U8() { return static_cast<std::uint8_t>(GetLe(1)); }
  std::uint16_t U16() { return static_cast<std::uint16_t>(GetLe(2)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(GetLe(4)); }
  std::uint64_t U64() { return GetLe(8); }
  std::int64_t I64() { return static_cast<std::int64_t>(GetLe(8)); }
  bool Bool() { return U8() != 0; }
  double F64() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    if (failed_ || len_ - pos_ < n) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void Bytes(void* out, std::size_t len) {
    if (len == 0) return;  // out may be null (empty vector).
    if (failed_ || len_ - pos_ < len) {
      failed_ = true;
      std::memset(out, 0, len);
      return;
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }

  bool ok() const { return !failed_; }
  bool AtEnd() const { return failed_ || pos_ == len_; }
  void Fail() { failed_ = true; }
  // kSuccess when every read so far succeeded AND the section was fully
  // consumed — a partial read usually means a field-list mismatch.
  Status Finish() const {
    return (!failed_ && pos_ == len_) ? Status::kSuccess
                                      : Status::kBadParameter;
  }
  Status status() const {
    return failed_ ? Status::kBadParameter : Status::kSuccess;
  }

 private:
  std::uint64_t GetLe(int bytes) {
    if (failed_ || len_ - pos_ < static_cast<std::size_t>(bytes)) {
      failed_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// The snapshot container: named, versioned, checksummed sections in
// deterministic (name-sorted) order.
class Snapshot {
 public:
  // Start (or replace) a section; returns the writer to fill it.
  SnapWriter& Section(const std::string& name, std::uint16_t version);

  bool Has(const std::string& name) const {
    return sections_.count(name) != 0;
  }
  // Open a section for reading. A missing section or a version other than
  // `expect_version` yields a pre-failed reader (every Get returns zero and
  // Finish() reports the error), keeping load paths straight-line.
  SnapReader Open(const std::string& name, std::uint16_t expect_version) const;
  std::uint16_t SectionVersion(const std::string& name) const;
  std::vector<std::string> SectionNames() const;

  // Wire encoding: magic, file version, section count, then per section
  // (name, version, length, FNV-1a checksum, payload).
  std::vector<std::uint8_t> Encode() const;
  Status Decode(const std::uint8_t* data, std::size_t len);
  Status Decode(const std::vector<std::uint8_t>& bytes) {
    return Decode(bytes.data(), bytes.size());
  }

  // Total payload bytes across sections (transfer-size accounting for the
  // migration driver).
  std::uint64_t PayloadBytes() const;

  static constexpr char kMagic[8] = {'N', 'O', 'V', 'A',
                                     'S', 'N', 'A', 'P'};
  static constexpr std::uint32_t kFileVersion = 1;

 private:
  struct Stored {
    std::uint16_t version = 0;
    SnapWriter writer;
  };
  std::map<std::string, Stored> sections_;
};

}  // namespace nova::sim

#endif  // SRC_SIM_SNAPSHOT_H_
