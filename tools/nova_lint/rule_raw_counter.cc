// raw-counter: a kernel counter bump that bypasses trace co-emission.
//
// Motivating contract: PR 4 made bench/tab2_events derive Table 2 from
// the trace stream and hard-abort on any trace/counter divergence. That
// only holds if every Counter::Add in the hypervisor happens at a call
// site that also emits the matching trace event — via CountEvent, or
// with an adjacent Mark()/Instant emission (the vTLB's idiom). A bare
// bump silently skews the equality the benches assert.
//
// Scope: src/hv only — device-model counters (src/hw) have no Table 2
// twin and are exempt by design.
#include <string>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

// Trace co-emission markers accepted within +/-2 lines of the bump.
bool LineHasCoEmission(const std::string& code) {
  return code.find("CountEvent") != std::string::npos ||
         code.find("Mark(") != std::string::npos ||
         code.find("InstantAt") != std::string::npos ||
         code.find("Instant(") != std::string::npos ||
         code.find("ScopedSpan") != std::string::npos;
}

class RawCounterRule : public Rule {
 public:
  const char* name() const override { return "raw-counter"; }
  const char* summary() const override {
    return "hypervisor counter bump without trace co-emission";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    (void)model;
    if (file.path().find("src/hv/") == std::string::npos) return;

    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i < n; ++i) {
      if (!IsIdent(toks, i, "Add") || !IsPunct(toks, i + 1, "(")) continue;
      if (!(IsPunct(toks, i - 1, ".") || IsPunct(toks, i - 1, "->"))) {
        continue;
      }
      const int line = toks[static_cast<std::size_t>(i)].line;

      // A string-keyed registry lookup feeding the bump is always wrong
      // on a kernel path, co-emitted or not: cache the Counter&.
      bool string_keyed = false;
      for (int j = i - 1; j >= 0 && j >= i - 16; --j) {
        const Token& t = toks[static_cast<std::size_t>(j)];
        if (t.kind == TokKind::kPunct &&
            (t.text == ";" || t.text == "{" || t.text == "}")) {
          break;
        }
        if (t.kind == TokKind::kIdent && t.text == "counter" &&
            IsPunct(toks, j + 1, "(")) {
          string_keyed = true;
          break;
        }
      }
      if (string_keyed) {
        out->push_back({name(), file.path(), line,
                        "string-keyed counter lookup on a kernel path; "
                        "cache the Counter& (HotCounters) and bump it via "
                        "CountEvent"});
        continue;
      }

      bool co_emitted = false;
      for (int l = line - 2; l <= line + 2; ++l) {
        if (l != line && LineHasCoEmission(file.CodeLine(l))) {
          co_emitted = true;
          break;
        }
        // Same line counts too (e.g. a one-line CountEvent body).
        if (l == line) {
          const std::string& code = file.CodeLine(l);
          // Ignore the Add call itself when looking for markers.
          if (LineHasCoEmission(code)) {
            co_emitted = true;
            break;
          }
        }
      }
      if (!co_emitted) {
        out->push_back({name(), file.path(), line,
                        "counter bump without trace co-emission; use "
                        "CountEvent (or emit the matching trace instant "
                        "at this site) so trace/counter equality holds"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeRawCounterRule() {
  return std::make_unique<RawCounterRule>();
}

}  // namespace nova::lint
