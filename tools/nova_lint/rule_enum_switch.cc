// enum-switch: a switch over a project enum that does not name every
// enumerator.
//
// Motivating bug class: PR 2 and PR 3 both appended enum values
// (FaultKind::kVmmCrash, Status::kNoMem) — every switch hiding behind a
// bare `default:` silently mis-handled the new value until a test
// happened to hit it. The invariant mirrors -Wswitch-enum (which
// NOVA_WERROR promotes to an error for src/): list every enumerator, or
// carry an explicit default with a line suppression stating why partial
// coverage is intended.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

class EnumSwitchRule : public Rule {
 public:
  const char* name() const override { return "enum-switch"; }
  const char* summary() const override {
    return "switch over a project enum without full enumerator coverage";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i < n; ++i) {
      if (!IsIdent(toks, i, "switch") || !IsPunct(toks, i + 1, "(")) continue;
      const int cond_close = MatchForward(toks, i + 1);
      if (cond_close < 0 || !IsPunct(toks, cond_close + 1, "{")) continue;
      const int body_open = cond_close + 1;
      const int body_close = MatchForward(toks, body_open);
      if (body_close < 0) continue;

      // Collect `case Enum::kValue:` labels at the switch's own depth
      // (case bodies may open nested blocks; nested switches get their
      // own pass of this loop).
      std::map<std::string, std::set<std::string>> cases;
      bool has_default = false;
      int depth = 0;
      for (int j = body_open; j < body_close; ++j) {
        const Token& t = toks[static_cast<std::size_t>(j)];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "{") ++depth;
          if (t.text == "}") --depth;
          continue;
        }
        if (depth != 1) continue;
        if (t.text == "default" && IsPunct(toks, j + 1, ":")) {
          has_default = true;
        }
        if (t.text != "case") continue;
        // Scan the label up to the terminating single ':' and remember
        // the last `Name::value` pair (handles nested qualification).
        std::string enum_name, value;
        for (int k = j + 1; k < body_close; ++k) {
          if (IsPunct(toks, k, ":")) break;
          if (toks[static_cast<std::size_t>(k)].kind == TokKind::kIdent &&
              IsPunct(toks, k + 1, "::") &&
              toks[static_cast<std::size_t>(k + 2)].kind == TokKind::kIdent) {
            enum_name = toks[static_cast<std::size_t>(k)].text;
            value = toks[static_cast<std::size_t>(k + 2)].text;
          }
        }
        if (!enum_name.empty()) cases[enum_name].insert(value);
      }
      if (cases.size() != 1) continue;  // not an enum switch we can model
      const auto& [enum_name, covered] = *cases.begin();
      auto it = model.enums.find(enum_name);
      if (it == model.enums.end()) continue;

      // Short enum names collide (Ec::Kind vs Vtlb::Kind): of the known
      // definitions, use the one whose enumerators contain every case
      // label seen here. Ambiguity (several fit, different gaps) and no
      // fit both mean we cannot attribute the switch — stay silent
      // rather than report against the wrong enum.
      const std::vector<std::string>* def = nullptr;
      for (const auto& candidate : it->second) {
        bool fits = true;
        for (const std::string& c : covered) {
          fits = fits && std::find(candidate.begin(), candidate.end(), c) !=
                             candidate.end();
        }
        if (!fits) continue;
        if (def != nullptr && *def != candidate) {
          def = nullptr;
          break;
        }
        def = &candidate;
      }
      if (def == nullptr) continue;

      std::vector<std::string> missing;
      for (const std::string& v : *def) {
        if (covered.count(v) == 0) missing.push_back(v);
      }
      if (missing.empty()) continue;
      std::string list;
      for (std::size_t m = 0; m < std::min<std::size_t>(missing.size(), 4);
           ++m) {
        list += (m ? ", " : "") + missing[m];
      }
      if (missing.size() > 4) {
        list += ", … (" + std::to_string(missing.size()) + " total)";
      }
      out->push_back(
          {name(), file.path(), toks[static_cast<std::size_t>(i)].line,
           "switch over '" + enum_name + "' does not handle: " + list +
               (has_default
                    ? "; an intentional partial switch needs a suppression "
                      "on this line"
                    : "; add the missing cases or an explicit default with "
                      "a suppression")});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeEnumSwitchRule() {
  return std::make_unique<EnumSwitchRule>();
}

}  // namespace nova::lint
