#include "tools/nova_lint/lint.h"

#include <algorithm>
#include <filesystem>

namespace nova::lint {
namespace {

bool IsSourceExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      out.push_back(p);
      continue;
    }
    if (!fs::is_directory(p, ec)) continue;
    for (fs::recursive_directory_iterator it(p, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && IsSourceExtension(it->path())) {
        out.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

LintResult RunLint(const std::vector<SourceFile>& files,
                   const std::vector<std::unique_ptr<Rule>>& rules) {
  const ProjectModel model = BuildModel(files);
  LintResult result;
  result.files_scanned = static_cast<int>(files.size());
  for (const SourceFile& f : files) {
    Findings raw;
    for (const auto& rule : rules) {
      rule->Check(f, model, &raw);
    }
    for (Finding& fi : raw) {
      if (f.Suppressed(fi.line, fi.rule)) {
        ++result.suppressed;
      } else {
        result.findings.push_back(std::move(fi));
      }
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

std::string FormatText(const LintResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  out += "nova-lint: " + std::to_string(result.findings.size()) +
         " finding(s), " + std::to_string(result.suppressed) +
         " suppressed, " + std::to_string(result.files_scanned) +
         " file(s) scanned\n";
  return out;
}

std::string FormatJson(const LintResult& result) {
  std::string out = "{\"findings\":[";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    if (i) out += ",";
    out += "{\"rule\":";
    AppendJsonString(&out, f.rule);
    out += ",\"file\":";
    AppendJsonString(&out, f.file);
    out += ",\"line\":" + std::to_string(f.line) + ",\"message\":";
    AppendJsonString(&out, f.message);
    out += "}";
  }
  out += "],\"count\":" + std::to_string(result.findings.size()) +
         ",\"suppressed\":" + std::to_string(result.suppressed) +
         ",\"files_scanned\":" + std::to_string(result.files_scanned) + "}\n";
  return out;
}

}  // namespace nova::lint
