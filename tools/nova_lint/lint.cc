#include "tools/nova_lint/lint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <sstream>
#include <thread>

#include "tools/nova_lint/model.h"
#include "tools/nova_lint/scope.h"

namespace nova::lint {
namespace {

bool IsSourceExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// True when `path` is `root` or sits underneath it.
bool UnderRoot(const std::string& path, const std::string& root) {
  if (path.size() < root.size() || path.compare(0, root.size(), root) != 0) {
    return false;
  }
  return path.size() == root.size() || path[root.size()] == '/' ||
         root.back() == '/';
}

// Rules excluded for `path`: those of the longest matching root.
const std::set<std::string>* ExcludedRules(const std::vector<RootSpec>& roots,
                                           const std::string& path) {
  const RootSpec* best = nullptr;
  for (const RootSpec& r : roots) {
    if (UnderRoot(path, r.path) &&
        (best == nullptr || r.path.size() > best->path.size())) {
      best = &r;
    }
  }
  return best == nullptr ? nullptr : &best->exclude;
}

// Runs `fn(i)` for every i in [0, count) across `jobs` worker threads.
// Work is handed out through an atomic counter, but every result slot is
// indexed by i, so scheduling order never shows in the output.
void ParallelFor(int count, int jobs, const std::function<void(int)>& fn) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min(jobs, count);
  if (jobs <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      out.push_back(p);
      continue;
    }
    if (!fs::is_directory(p, ec)) continue;
    for (fs::recursive_directory_iterator it(p, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory(ec) &&
          it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();  // deliberate violations live here
        continue;
      }
      if (it->is_regular_file(ec) && IsSourceExtension(it->path())) {
        out.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

LintResult RunLint(const std::vector<SourceFile>& files,
                   const std::vector<std::unique_ptr<Rule>>& rules,
                   int jobs, const std::vector<RootSpec>& roots) {
  const auto t0 = std::chrono::steady_clock::now();
  const int count = static_cast<int>(files.size());

  // Phase 1: lex + scope-walk every file once, in parallel.
  std::vector<Tokens> toks(files.size());
  std::vector<FileScopes> scopes(files.size());
  ParallelFor(count, jobs, [&](int i) {
    const auto fi = static_cast<std::size_t>(i);
    toks[fi] = Lex(files[fi]);
    scopes[fi] = BuildFileScopes(toks[fi]);
  });

  // Phase 2: one shared cross-TU model.
  const ProjectModel model = BuildModel(files, toks, scopes);

  // Phase 3: rules fan out over per-file slots; merge is order-free.
  std::vector<Findings> kept(files.size());
  std::vector<int> dropped(files.size(), 0);
  ParallelFor(count, jobs, [&](int i) {
    const auto fi = static_cast<std::size_t>(i);
    const SourceFile& f = files[fi];
    const std::set<std::string>* exclude = ExcludedRules(roots, f.path());
    const FileCtx ctx{f, toks[fi], scopes[fi]};
    Findings raw;
    for (const auto& rule : rules) {
      if (exclude != nullptr && exclude->count(rule->name()) != 0) continue;
      rule->Check(ctx, model, &raw);
    }
    for (Finding& fnd : raw) {
      if (f.Suppressed(fnd.line, fnd.rule)) {
        ++dropped[fi];
      } else {
        kept[fi].push_back(std::move(fnd));
      }
    }
  });

  LintResult result;
  result.files_scanned = count;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    result.suppressed += dropped[fi];
    for (Finding& fnd : kept[fi]) {
      result.findings.push_back(std::move(fnd));
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  result.wall_ms = static_cast<long>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

int ApplyBaseline(LintResult* result,
                  const std::vector<std::string>& baseline_lines) {
  std::set<std::pair<std::string, std::string>> known;  // (rule, file)
  for (const std::string& line : baseline_lines) {
    std::istringstream in(line);
    std::string rule, file;
    if (!(in >> rule >> file) || rule[0] == '#') continue;
    known.emplace(rule, file);
  }
  const std::size_t before = result->findings.size();
  result->findings.erase(
      std::remove_if(result->findings.begin(), result->findings.end(),
                     [&](const Finding& f) {
                       return known.count({f.rule, f.file}) != 0;
                     }),
      result->findings.end());
  const int dropped = static_cast<int>(before - result->findings.size());
  result->baselined += dropped;
  return dropped;
}

std::string FormatText(const LintResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  out += "nova-lint: " + std::to_string(result.findings.size()) +
         " finding(s), " + std::to_string(result.suppressed) +
         " suppressed, " + std::to_string(result.files_scanned) +
         " file(s) scanned\n";
  return out;
}

std::string FormatJson(const LintResult& result) {
  std::string out = "{\"findings\":[";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    if (i) out += ",";
    out += "{\"rule\":";
    AppendJsonString(&out, f.rule);
    out += ",\"file\":";
    AppendJsonString(&out, f.file);
    out += ",\"line\":" + std::to_string(f.line) + ",\"message\":";
    AppendJsonString(&out, f.message);
    out += "}";
  }
  out += "],\"count\":" + std::to_string(result.findings.size()) +
         ",\"suppressed\":" + std::to_string(result.suppressed) +
         ",\"baselined\":" + std::to_string(result.baselined) +
         ",\"files_scanned\":" + std::to_string(result.files_scanned) +
         ",\"wall_ms\":" + std::to_string(result.wall_ms) + "}\n";
  return out;
}

}  // namespace nova::lint
