// quota-symmetry: a file that charges kernel memory must also credit it.
//
// Motivating bug: PR 1's shadow-table frame leak — level-0 shadow frames
// were charged on fill but never credited on teardown, so a long-lived VM
// slowly exhausted the kernel pool. The per-PD quota work (PR 3) made
// the charge/credit pairing a hard invariant: every AllocFrameFor /
// ChargeKmem / TryCharge / GrowLimit call path needs a matching
// FreeFrameFor / CreditKmem / Credit / ShrinkLimit somewhere in the same
// translation unit (destructor, release hook or Reclaim path).
//
// The check is per-file presence, not per-path flow analysis: precise
// enough to catch a forgotten credit, cheap enough to run on every build.
#include <array>
#include <set>
#include <string>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

struct Pair {
  const char* charge;
  const char* credit;
};

constexpr std::array<Pair, 5> kPairs = {{
    {"AllocFrameFor", "FreeFrameFor"},
    {"ChargeKmem", "CreditKmem"},
    {"TryCharge", "Credit"},
    {"GrowLimit", "ShrinkLimit"},
    {"ChargeObjectFrames", "CreditKmem"},
}};

// A *call* occurrence: `name(` where the preceding token is not a type
// name. Declarations (`bool TryCharge(...)`) and definitions are
// preceded by their return type and do not count on either side.
bool IsCall(const Tokens& toks, int i) {
  if (!IsPunct(toks, i + 1, "(")) return false;
  if (i == 0) return true;
  const Token& prev = toks[static_cast<std::size_t>(i - 1)];
  if (prev.kind != TokKind::kIdent) return prev.text != "~";
  return prev.text == "return" || prev.text == "co_return";
}

class QuotaSymmetryRule : public Rule {
 public:
  const char* name() const override { return "quota-symmetry"; }
  const char* summary() const override {
    return "kernel-memory charge without a matching credit in the file";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    (void)model;
    // Only the hypervisor sources are bound by the pairing invariant;
    // tests intentionally exercise single sides of it.
    if (ProjectModel::LayerOf(file.path()).empty()) return;

    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    std::set<std::string> calls;
    // First call line per name, for the diagnostic location.
    std::array<int, kPairs.size()> first_charge_line;
    first_charge_line.fill(0);

    for (int i = 0; i < n; ++i) {
      const Token& t = toks[static_cast<std::size_t>(i)];
      if (t.kind != TokKind::kIdent || !IsCall(toks, i)) continue;
      calls.insert(t.text);
      for (std::size_t p = 0; p < kPairs.size(); ++p) {
        if (t.text == kPairs[p].charge && first_charge_line[p] == 0) {
          first_charge_line[p] = t.line;
        }
      }
    }

    for (std::size_t p = 0; p < kPairs.size(); ++p) {
      if (first_charge_line[p] == 0) continue;
      if (calls.count(kPairs[p].credit) != 0) continue;
      out->push_back({name(), file.path(), first_charge_line[p],
                      std::string("'") + kPairs[p].charge +
                          "' charges kernel memory but this file never "
                          "calls '" +
                          kPairs[p].credit +
                          "'; add the credit to the owning destructor or "
                          "Reclaim path"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeQuotaSymmetryRule() {
  return std::make_unique<QuotaSymmetryRule>();
}

}  // namespace nova::lint
