#include "tools/nova_lint/rule.h"

namespace nova::lint {

std::vector<std::unique_ptr<Rule>> AllRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(MakeUncheckedStatusRule());
  rules.push_back(MakeQuotaSymmetryRule());
  rules.push_back(MakeRawCounterRule());
  rules.push_back(MakeRawSpanRule());
  rules.push_back(MakeLayeringRule());
  rules.push_back(MakeEnumSwitchRule());
  rules.push_back(MakeUncheckedDowncastRule());
  rules.push_back(MakePerCpuStateRule());
  rules.push_back(MakeSnapshotFieldsRule());
  rules.push_back(MakeDeterminismRule());
  rules.push_back(MakeLockDisciplineRule());
  rules.push_back(MakeEventRebindRule());
  return rules;
}

}  // namespace nova::lint
