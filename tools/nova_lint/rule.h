// Rule interface and registry.
//
// A rule inspects one file at a time against the shared ProjectModel and
// reports findings. The driver lexes and scope-walks each file exactly
// once and hands rules the shared views through FileCtx. Suppression
// filtering happens in the driver, so rules report unconditionally.
#ifndef TOOLS_NOVA_LINT_RULE_H_
#define TOOLS_NOVA_LINT_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "tools/nova_lint/diag.h"
#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/model.h"
#include "tools/nova_lint/scope.h"
#include "tools/nova_lint/source.h"

namespace nova::lint {

// Per-file views shared by every rule: the raw/blanked source, its token
// stream, and the function/class scopes the walker recovered from it.
struct FileCtx {
  const SourceFile& file;
  const Tokens& toks;
  const FileScopes& scopes;
};

class Rule {
 public:
  virtual ~Rule() = default;
  // Stable kebab-case id used in diagnostics and allow() comments.
  virtual const char* name() const = 0;
  // One-line description for --list-rules.
  virtual const char* summary() const = 0;
  virtual void Check(const FileCtx& ctx, const ProjectModel& model,
                     Findings* out) const = 0;
};

// Factories for every shipped rule (one translation unit each).
std::unique_ptr<Rule> MakeUncheckedStatusRule();
std::unique_ptr<Rule> MakeQuotaSymmetryRule();
std::unique_ptr<Rule> MakeRawCounterRule();
std::unique_ptr<Rule> MakeRawSpanRule();
std::unique_ptr<Rule> MakeLayeringRule();
std::unique_ptr<Rule> MakeEnumSwitchRule();
std::unique_ptr<Rule> MakeUncheckedDowncastRule();
std::unique_ptr<Rule> MakePerCpuStateRule();
std::unique_ptr<Rule> MakeSnapshotFieldsRule();
std::unique_ptr<Rule> MakeDeterminismRule();
std::unique_ptr<Rule> MakeLockDisciplineRule();
std::unique_ptr<Rule> MakeEventRebindRule();

// All rules, in diagnostic order.
std::vector<std::unique_ptr<Rule>> AllRules();

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_RULE_H_
