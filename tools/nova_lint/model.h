// ProjectModel: facts nova-lint mines from the source tree before any
// rule runs. Besides the original per-file facts (enum definitions,
// must-check return types, layer ranks) it now carries a whole-project
// symbol index built by the scope walker: function/method definitions
// with their call and lock-charge sites, class members with declaration
// types and `// guarded-by(<lock>)` annotations, and the cross-TU
// pairing tables for tagged event enqueues vs. rebinder registrations.
#ifndef TOOLS_NOVA_LINT_MODEL_H_
#define TOOLS_NOVA_LINT_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/scope.h"
#include "tools/nova_lint/source.h"

namespace nova::lint {

// One data member declared in a class/struct body.
struct MemberDecl {
  std::string cls;         // declaring class
  std::string name;
  std::string type;        // declaration type, tokens joined with spaces
  std::string guarded_by;  // lock from `// guarded-by(<lock>)`, or ""
  std::string file;
  int line = 0;
};

// One function/method *definition* plus the per-body facts rules need.
struct FuncDef {
  std::string name;
  std::string qualifier;  // enclosing class, or "" for free functions
  std::string file;
  int line = 0;
  std::set<std::string> calls;  // unqualified callee names in the body
  std::set<std::string> locks;  // KernelLocks passed to ChargeLock here
};

// One `ChargeLock(<lock>, …)` call site.
struct LockSite {
  std::string lock;
  std::string func;  // enclosing function name ("" at namespace scope)
  std::string file;
  int line = 0;
};

// One side of the event-rebind pairing: a tagged enqueue
// (Schedule{At,After}Tagged) or a RegisterRebinder registration. `key`
// is the normalized owner expression — a recovered string literal like
// `"hw.timer"`, or the expression text (`kDiskServerOwner`, `owner_`,
// `HbOwner()`, `OwnerToken(name_)`) with sim::/EventQueue:: qualifiers
// stripped — so the two sides compare by name across translation units.
struct OwnerSite {
  std::string key;
  std::string file;
  int line = 0;
};

struct ProjectModel {
  // Enum name (unqualified) -> one enumerator list per distinct
  // definition. Short names collide across classes (Ec::Kind vs
  // Vtlb::Kind), so rules must pick the definition consistent with the
  // enumerators they actually observe at the use site.
  std::map<std::string, std::vector<std::vector<std::string>>> enums;

  // Function names whose return value must be consumed: anything
  // declared to return Status / Outcome / DownResult, plus functions
  // carrying an explicit [[nodiscard]].
  std::set<std::string> must_check;

  // --- Whole-project symbol index (scope-walker derived) ---
  std::vector<MemberDecl> members;
  std::vector<FuncDef> functions;
  std::vector<LockSite> lock_sites;
  std::vector<OwnerSite> enqueues;   // tagged enqueue sites
  std::vector<OwnerSite> rebinders;  // RegisterRebinder sites

  // The definition recorded at (file, line of the function name), or
  // nullptr. Lines come from the same scope walk rules see via FileCtx,
  // so the lookup is exact.
  const FuncDef* FunctionAt(const std::string& file, int line) const;

  // All definitions of `name` (any qualifier), in scan order. Used for
  // cross-TU call resolution: a call site names the callee, this finds
  // the TU(s) defining it.
  std::vector<const FuncDef*> FindFunctions(const std::string& name) const;

  // Members carrying a guarded-by annotation.
  std::vector<const MemberDecl*> GuardedMembers() const;

  // Architecture ranks for the layering rule. A file may include headers
  // of its own rank or below, never above. Directories absent from the
  // map (tests/, bench/, examples/, tools/) are unrestricted consumers.
  //   sim(0) -> hw(1) -> hv(2) -> {services, root, vmm, guest, baseline}(3)
  static int LayerRank(const std::string& layer);

  // Layer name ("sim", "hw", ...) of a path under src/, or "" when the
  // path is not in src/.
  static std::string LayerOf(const std::string& path);
};

// Builds the model from pre-lexed tokens and scopes (one entry per file,
// parallel to `files`). This is the driver's path: lex once, share the
// tokens between the model, the scope walk, and every rule.
ProjectModel BuildModel(const std::vector<SourceFile>& files,
                        const std::vector<Tokens>& toks,
                        const std::vector<FileScopes>& scopes);

// Convenience overload that lexes and scope-walks internally (tests).
ProjectModel BuildModel(const std::vector<SourceFile>& files);

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_MODEL_H_
