// ProjectModel: facts nova-lint mines from the source tree before any
// rule runs — enum definitions (for switch-coverage checking), the set of
// functions whose result must not be discarded, and the layer rank of
// each directory under src/.
#ifndef TOOLS_NOVA_LINT_MODEL_H_
#define TOOLS_NOVA_LINT_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/nova_lint/source.h"

namespace nova::lint {

struct ProjectModel {
  // Enum name (unqualified) -> one enumerator list per distinct
  // definition. Short names collide across classes (Ec::Kind vs
  // Vtlb::Kind), so rules must pick the definition consistent with the
  // enumerators they actually observe at the use site.
  std::map<std::string, std::vector<std::vector<std::string>>> enums;

  // Function names whose return value must be consumed: anything
  // declared to return Status / Outcome / DownResult, plus functions
  // carrying an explicit [[nodiscard]].
  std::set<std::string> must_check;

  // Architecture ranks for the layering rule. A file may include headers
  // of its own rank or below, never above. Directories absent from the
  // map (tests/, bench/, examples/, tools/) are unrestricted consumers.
  //   sim(0) -> hw(1) -> hv(2) -> {services, root, vmm, guest, baseline}(3)
  static int LayerRank(const std::string& layer);

  // Layer name ("sim", "hw", ...) of a path under src/, or "" when the
  // path is not in src/.
  static std::string LayerOf(const std::string& path);
};

// Scans `files` (headers and sources alike) and builds the model. The
// scan is token-based and deliberately forgiving: it only has to be
// right for this repository's idioms, not for arbitrary C++.
ProjectModel BuildModel(const std::vector<SourceFile>& files);

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_MODEL_H_
