// Rule 10 `determinism`: flags nondeterminism sources that would
// silently break the repo's digest-exactness guarantees (golden traces,
// snapshot/restore twins, bit-identical SMP reruns). Inside the
// simulated-machine layers (src/sim, src/hw, src/hv, src/vmm, src/guest,
// src/root, src/services) it reports:
//   * iteration over std::unordered_map / std::unordered_set — the walk
//     order is hash-seed and libstdc++-version dependent;
//   * containers keyed on pointer values — address-based order changes
//     run to run under ASLR and allocator drift;
//   * wall-clock and OS randomness (std::chrono, time(), rand(),
//     std::random_device, std::mt19937) outside sim::Rng — simulated
//     time must be the only clock;
//   * address-of expressions and pointer-to-integer casts flowing into
//     trace/digest/snapshot sinks — pointer values in payloads make
//     digests unreproducible.
// Vetted sites (iterate-then-sort copies, lookup-only tables) are
// suppressed with a justified `// nova-lint: allow(determinism)`.
#include <map>
#include <set>
#include <string>
#include <utility>

#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

bool InSimulatedLayer(const std::string& path) {
  const std::string layer = ProjectModel::LayerOf(path);
  return layer == "sim" || layer == "hw" || layer == "hv" ||
         layer == "vmm" || layer == "guest" || layer == "root" ||
         layer == "services";
}

bool IsUnorderedContainer(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

bool IsOrderedKeyed(const std::string& s) {
  return s == "map" || s == "set" || s == "multimap" || s == "multiset";
}

bool IsRandomnessSource(const std::string& s) {
  return s == "rand" || s == "srand" || s == "random_device" ||
         s == "mt19937" || s == "mt19937_64" || s == "minstd_rand";
}

// Snapshot/digest/trace payload sinks: SnapWriter's fixed-width writers
// plus anything with Digest in the name.
bool IsPayloadSink(const std::string& s) {
  return s == "U64" || s == "U32" || s == "U16" || s == "U8" ||
         s == "Bytes" || s.find("Digest") != std::string::npos;
}

class DeterminismRule final : public Rule {
 public:
  const char* name() const override { return "determinism"; }
  const char* summary() const override {
    return "no unordered iteration, pointer keys, wall clocks or address "
           "leaks in the simulated-machine layers";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    const Tokens& toks = ctx.toks;
    if (!InSimulatedLayer(file.path())) return;
    if (file.path().find("src/sim/rng") != std::string::npos) {
      return;  // the one sanctioned randomness wrapper
    }
    const int n = static_cast<int>(toks.size());

    // Names declared with an unordered container type. Members resolve
    // by declaring class first — `entries_` may be an unordered_map in
    // one class and a vector in another — falling back to "unordered in
    // any class" only when the enclosing class is unknown. Locals
    // declared in this file are tracked separately below.
    std::map<std::pair<std::string, std::string>, bool> member_unordered;
    std::set<std::string> any_unordered;
    for (const MemberDecl& m : model.members) {
      const bool u = m.type.find("unordered_") != std::string::npos;
      bool& slot = member_unordered[{m.cls, m.name}];
      slot = slot || u;
      if (u) any_unordered.insert(m.name);
    }
    std::set<std::string> local_unordered;
    const auto is_unordered_at = [&](int tok_idx, const std::string& nm) {
      if (local_unordered.count(nm) != 0) return true;
      const int fn = InnermostFunction(ctx.scopes, tok_idx);
      const std::string& cls =
          fn >= 0 ? ctx.scopes.functions[static_cast<std::size_t>(fn)].qualifier
                  : std::string();
      const auto it = member_unordered.find({cls, nm});
      if (it != member_unordered.end()) return it->second;
      return any_unordered.count(nm) != 0;
    };
    for (int i = 0; i < n; ++i) {
      const Token& t = toks[static_cast<std::size_t>(i)];
      if (t.kind != TokKind::kIdent) continue;

      // Container declarations: pointer-keyed check, unordered tracking.
      if ((IsUnorderedContainer(t.text) || IsOrderedKeyed(t.text)) &&
          IsPunct(toks, i + 1, "<")) {
        // Only the std:: containers, not repo types named map/set.
        if (!IsPunct(toks, i - 1, "::") || !IsIdent(toks, i - 2, "std")) {
          continue;
        }
        const int close = MatchForward(toks, i + 1);
        if (close < 0) continue;
        const auto args = SplitTopLevelArgs(toks, i + 1);
        if (!args.empty()) {
          bool ptr_key = false;
          for (int k = args[0].first; k < args[0].second; ++k) {
            if (IsPunct(toks, k, "*")) ptr_key = true;
          }
          if (ptr_key) {
            out->push_back(
                {name(), file.path(), t.line,
                 "container keyed on pointer values: address order is not "
                 "reproducible across runs; key on a stable id instead"});
          }
        }
        if (IsUnorderedContainer(t.text)) {
          // `std::unordered_map<...> name` — record the declared name.
          int j = close + 1;
          while (IsPunct(toks, j, "*") || IsPunct(toks, j, "&") ||
                 IsIdent(toks, j, "const")) {
            ++j;
          }
          if (j < n && toks[static_cast<std::size_t>(j)].kind ==
                           TokKind::kIdent) {
            local_unordered.insert(toks[static_cast<std::size_t>(j)].text);
          }
        }
        continue;
      }

      // Range-for over an unordered container.
      if (t.text == "for" && IsPunct(toks, i + 1, "(")) {
        const int close = MatchForward(toks, i + 1);
        if (close < 0) continue;
        int colon = -1;
        int depth = 0;
        for (int k = i + 2; k < close; ++k) {
          if (IsPunct(toks, k, "(") || IsPunct(toks, k, "[") ||
              IsPunct(toks, k, "{")) {
            ++depth;
          }
          if (IsPunct(toks, k, ")") || IsPunct(toks, k, "]") ||
              IsPunct(toks, k, "}")) {
            --depth;
          }
          if (depth == 0 && IsPunct(toks, k, ":") &&
              !IsPunct(toks, k - 1, ":") && !IsPunct(toks, k + 1, ":")) {
            colon = k;
            break;
          }
        }
        if (colon < 0) continue;
        for (int k = colon + 1; k < close; ++k) {
          const Token& rt = toks[static_cast<std::size_t>(k)];
          if (rt.kind == TokKind::kIdent && is_unordered_at(k, rt.text)) {
            out->push_back(
                {name(), file.path(), rt.line,
                 "iteration over unordered container '" + rt.text +
                     "': walk order is hash-dependent and breaks digest "
                     "exactness; iterate a sorted copy"});
            break;
          }
        }
        continue;
      }

      // Explicit iterator walks: name.begin() / name.cbegin().
      if (is_unordered_at(i, t.text) &&
          (IsPunct(toks, i + 1, ".") || IsPunct(toks, i + 1, "->")) &&
          (IsIdent(toks, i + 2, "begin") || IsIdent(toks, i + 2, "cbegin")) &&
          IsPunct(toks, i + 3, "(")) {
        out->push_back({name(), file.path(), t.line,
                        "iterator walk over unordered container '" + t.text +
                            "': order is hash-dependent; iterate a sorted "
                            "copy"});
        continue;
      }

      // Wall-clock and OS randomness.
      if (t.text == "chrono" && IsPunct(toks, i - 1, "::") &&
          IsIdent(toks, i - 2, "std")) {
        out->push_back({name(), file.path(), t.line,
                        "std::chrono wall clock in simulated code: "
                        "sim::EventQueue::now() is the only clock"});
        continue;
      }
      if (IsRandomnessSource(t.text) &&
          (IsPunct(toks, i - 1, "::") || IsPunct(toks, i + 1, "("))) {
        out->push_back({name(), file.path(), t.line,
                        "host randomness source '" + t.text +
                            "' outside sim::Rng breaks reproducibility"});
        continue;
      }
      if (t.text == "time" && i > 0 && IsPunct(toks, i + 1, "(") &&
          !IsPunct(toks, i - 1, ".") && !IsPunct(toks, i - 1, "->") &&
          toks[static_cast<std::size_t>(i - 1)].kind != TokKind::kIdent) {
        out->push_back({name(), file.path(), t.line,
                        "time() wall clock in simulated code"});
        continue;
      }

      // Pointer values flowing into digest/snapshot payloads.
      if (IsPayloadSink(t.text) && IsPunct(toks, i + 1, "(") &&
          (IsPunct(toks, i - 1, ".") || IsPunct(toks, i - 1, "->"))) {
        const int close = MatchForward(toks, i + 1);
        for (int k = i + 2; k >= 0 && k < close; ++k) {
          const bool addr_of =
              IsPunct(toks, k, "&") &&
              (IsPunct(toks, k - 1, "(") || IsPunct(toks, k - 1, ",")) &&
              toks[static_cast<std::size_t>(k + 1)].kind == TokKind::kIdent;
          const bool ptr_cast =
              IsIdent(toks, k, "reinterpret_cast") &&
              (IsIdent(toks, k + 2, "uintptr_t") ||
               IsIdent(toks, k + 4, "uintptr_t"));
          if (addr_of || ptr_cast) {
            out->push_back(
                {name(), file.path(), toks[static_cast<std::size_t>(k)].line,
                 "pointer value leaks into a digest/snapshot payload: "
                 "addresses are not stable across runs or restores"});
            break;
          }
        }
        continue;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeDeterminismRule() {
  return std::make_unique<DeterminismRule>();
}

}  // namespace nova::lint
