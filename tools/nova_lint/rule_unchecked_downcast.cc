// unchecked-downcast: a capability downcast (RefAs<T> / LookupAs<T>)
// whose result is dereferenced without a null check.
//
// Motivating bug: PR 1's UBSan run caught exactly this — a RefAs<T> on a
// capability of the wrong type returns null, and an immediate deref was
// undefined behaviour reachable from a guest-controlled selector. The
// kernel idiom is: bind the result, null-check it, only then use it.
// This rule keeps that fix from regressing silently.
#include <string>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

bool IsDowncastName(const std::string& s) {
  return s == "RefAs" || s == "LookupAs";
}

bool IsBoundary(const Token& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == ";" || t.text == "{" || t.text == "}");
}

// True when the statement containing `i` starts with `return` — the
// downcast result propagates to a caller that owns the null check.
bool InReturnStatement(const Tokens& toks, int i) {
  for (int j = i - 1; j >= 0; --j) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (IsBoundary(t)) {
      return IsIdent(toks, j + 1, "return");
    }
  }
  return false;
}

// Looks for a null-check of `var` within the tokens following the
// downcast: `!var`, `var ==`, `var !=`, `var ?`, `if (var)`, or a test
// macro (EXPECT_*/ASSERT_*) naming it. Returns false if the first use
// is a dereference.
bool GuardedBeforeUse(const Tokens& toks, int from, const std::string& var) {
  const int n = static_cast<int>(toks.size());
  for (int j = from; j < n && j < from + 120; ++j) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (t.kind != TokKind::kIdent || t.text != var) continue;
    const bool deref = IsPunct(toks, j + 1, "->") || IsPunct(toks, j + 1, ".");
    const bool guarded =
        IsPunct(toks, j - 1, "!") || IsPunct(toks, j + 1, "==") ||
        IsPunct(toks, j + 1, "!=") || IsPunct(toks, j + 1, "?") ||
        IsPunct(toks, j - 1, "==") || IsPunct(toks, j - 1, "!=") ||
        (IsPunct(toks, j - 1, "(") && IsIdent(toks, j - 2, "if")) ||
        (j >= 2 &&
         toks[static_cast<std::size_t>(j - 2)].kind == TokKind::kIdent &&
         (toks[static_cast<std::size_t>(j - 2)].text.rfind("EXPECT_", 0) ==
              0 ||
          toks[static_cast<std::size_t>(j - 2)].text.rfind("ASSERT_", 0) ==
              0));
    if (guarded) return true;
    if (deref) return false;
    // Neutral use (moved, passed along): treat as handled by the callee.
    return true;
  }
  return true;  // never used again
}

class UncheckedDowncastRule : public Rule {
 public:
  const char* name() const override { return "unchecked-downcast"; }
  const char* summary() const override {
    return "capability downcast dereferenced without a null check";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    (void)model;
    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i < n; ++i) {
      const Token& t = toks[static_cast<std::size_t>(i)];
      if (t.kind != TokKind::kIdent || !IsDowncastName(t.text)) continue;
      if (!IsPunct(toks, i + 1, "<")) continue;  // the definition itself
      const int targs = MatchForward(toks, i + 1);
      if (targs < 0 || !IsPunct(toks, targs + 1, "(")) continue;
      const int close = MatchForward(toks, targs + 1);
      if (close < 0) continue;

      // Immediate dereference of the temporary: always a finding.
      if (IsPunct(toks, close + 1, "->") || IsPunct(toks, close + 1, ".")) {
        out->push_back({name(), file.path(), t.line,
                        "'" + t.text +
                            "' result dereferenced immediately; bind it "
                            "and null-check before use"});
        continue;
      }
      if (InReturnStatement(toks, i)) continue;

      // Assignment form: `auto var = RefAs<...>(...)` — require a guard
      // on `var` before its first dereference.
      if (IsPunct(toks, i - 1, "=") &&
          toks[static_cast<std::size_t>(i - 2)].kind == TokKind::kIdent) {
        const std::string var = toks[static_cast<std::size_t>(i - 2)].text;
        if (!GuardedBeforeUse(toks, close + 1, var)) {
          out->push_back({name(), file.path(), t.line,
                          "'" + var + "' from '" + t.text +
                              "' is dereferenced before a null check"});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeUncheckedDowncastRule() {
  return std::make_unique<UncheckedDowncastRule>();
}

}  // namespace nova::lint
