#include "tools/nova_lint/model.h"

#include "tools/nova_lint/lexer.h"

namespace nova::lint {
namespace {

// Return types whose values encode fallible results; any function
// declared with one of these becomes must-check by construction.
bool IsResultType(const std::string& ident) {
  return ident == "Status" || ident == "Outcome" || ident == "DownResult";
}

bool IsDeclQualifier(const std::string& ident) {
  return ident == "virtual" || ident == "static" || ident == "constexpr" ||
         ident == "inline" || ident == "explicit" || ident == "friend";
}

// Parses one `enum [class] [[attr]] Name [: base] { ... }` starting at
// the `enum` token; records the enumerators. Returns the index to resume
// scanning from.
int ParseEnum(const Tokens& toks, int i, ProjectModel* model) {
  int j = i + 1;
  const int n = static_cast<int>(toks.size());
  if (j < n && (IsIdent(toks, j, "class") || IsIdent(toks, j, "struct"))) ++j;
  // Skip attributes: [[ ... ]].
  while (IsPunct(toks, j, "[")) {
    const int close = MatchForward(toks, j);
    if (close < 0) return j;
    j = close + 1;
  }
  if (j >= n || toks[static_cast<std::size_t>(j)].kind != TokKind::kIdent) {
    return j;  // anonymous enum; nothing to record
  }
  const std::string name = toks[static_cast<std::size_t>(j)].text;
  ++j;
  // Skip the underlying-type clause up to '{' (or bail at ';' = fwd decl).
  while (j < n && !IsPunct(toks, j, "{")) {
    if (IsPunct(toks, j, ";")) return j;
    ++j;
  }
  if (j >= n) return j;
  const int body_end = MatchForward(toks, j);
  if (body_end < 0) return j;

  std::vector<std::string> values;
  bool expect_name = true;
  int depth = 0;  // parens inside initializer expressions
  for (int k = j + 1; k < body_end; ++k) {
    const Token& t = toks[static_cast<std::size_t>(k)];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "{" || t.text == "<") ++depth;
      if (t.text == ")" || t.text == "}" || t.text == ">") --depth;
      if (t.text == "," && depth == 0) expect_name = true;
      continue;
    }
    if (expect_name && t.kind == TokKind::kIdent && depth == 0) {
      values.push_back(t.text);
      expect_name = false;
    }
  }
  if (!values.empty()) {
    auto& defs = model->enums[name];
    bool known = false;
    for (const auto& d : defs) known = known || d == values;
    if (!known) defs.push_back(values);
  }
  return body_end;
}

// After a [[nodiscard]] attribute: skip declaration qualifiers, then a
// (possibly qualified) return type, and record the function name directly
// before the parameter list.
void ParseNodiscardDecl(const Tokens& toks, int i, ProjectModel* model) {
  int j = i;
  const int n = static_cast<int>(toks.size());
  // i points at the `nodiscard` identifier; skip the closing `]]`.
  while (j < n && IsPunct(toks, j, "]")) ++j;  // defensive; ']' follows below
  while (j < n && !IsPunct(toks, j, "]")) ++j;
  while (j < n && IsPunct(toks, j, "]")) ++j;
  while (j < n && toks[static_cast<std::size_t>(j)].kind == TokKind::kIdent &&
         IsDeclQualifier(toks[static_cast<std::size_t>(j)].text)) {
    ++j;
  }
  // Collect `ident (:: ident)* ident (` — the last identifier before the
  // '(' is the function name; everything before it is the return type.
  std::string last_ident;
  bool saw_type = false;
  while (j < n) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (t.kind == TokKind::kIdent) {
      if (!last_ident.empty()) saw_type = true;
      last_ident = t.text;
      ++j;
      continue;
    }
    if (IsPunct(toks, j, "::") || IsPunct(toks, j, "*") ||
        IsPunct(toks, j, "&")) {
      ++j;
      continue;
    }
    if (IsPunct(toks, j, "<")) {  // templated return type
      const int close = MatchForward(toks, j);
      if (close < 0) return;
      j = close + 1;
      continue;
    }
    break;
  }
  if (saw_type && !last_ident.empty() && IsPunct(toks, j, "(")) {
    model->must_check.insert(last_ident);
  }
}

}  // namespace

int ProjectModel::LayerRank(const std::string& layer) {
  if (layer == "sim") return 0;
  if (layer == "hw") return 1;
  if (layer == "hv") return 2;
  if (layer == "services" || layer == "root" || layer == "vmm" ||
      layer == "guest" || layer == "baseline") {
    return 3;
  }
  return -1;
}

std::string ProjectModel::LayerOf(const std::string& path) {
  const std::size_t pos = path.find("src/");
  if (pos == std::string::npos) return "";
  // Only a real src/ directory component, not e.g. "foo_src/".
  if (pos != 0 && path[pos - 1] != '/') return "";
  const std::size_t start = pos + 4;
  const std::size_t end = path.find('/', start);
  if (end == std::string::npos) return "";
  return path.substr(start, end - start);
}

ProjectModel BuildModel(const std::vector<SourceFile>& files) {
  ProjectModel model;
  for (const SourceFile& f : files) {
    const Tokens toks = Lex(f);
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      const Token& t = toks[static_cast<std::size_t>(i)];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "enum") {
        i = ParseEnum(toks, i, &model);
        continue;
      }
      if (t.text == "nodiscard") {
        ParseNodiscardDecl(toks, i, &model);
        continue;
      }
      // `Status Foo(` / `Status Cls::Foo(` / `Vtlb::Outcome Resolve(` …
      if (IsResultType(t.text)) {
        const int j = i + 1;
        if (j < static_cast<int>(toks.size()) &&
            toks[static_cast<std::size_t>(j)].kind == TokKind::kIdent) {
          // Step over `Cls::` qualifiers in out-of-line definition names.
          int name = j;
          while (name + 1 < static_cast<int>(toks.size()) &&
                 IsPunct(toks, name + 1, "::") &&
                 toks[static_cast<std::size_t>(name + 2)].kind ==
                     TokKind::kIdent) {
            name += 2;
          }
          if (IsPunct(toks, name + 1, "(")) {
            model.must_check.insert(
                toks[static_cast<std::size_t>(name)].text);
          }
        }
      }
    }
  }
  return model;
}

}  // namespace nova::lint
