#include "tools/nova_lint/model.h"

#include <algorithm>
#include <cctype>

namespace nova::lint {
namespace {

// Return types whose values encode fallible results; any function
// declared with one of these becomes must-check by construction.
bool IsResultType(const std::string& ident) {
  return ident == "Status" || ident == "Outcome" || ident == "DownResult";
}

bool IsDeclQualifier(const std::string& ident) {
  return ident == "virtual" || ident == "static" || ident == "constexpr" ||
         ident == "inline" || ident == "explicit" || ident == "friend";
}

// Parses one `enum [class] [[attr]] Name [: base] { ... }` starting at
// the `enum` token; records the enumerators. Returns the index to resume
// scanning from.
int ParseEnum(const Tokens& toks, int i, ProjectModel* model) {
  int j = i + 1;
  const int n = static_cast<int>(toks.size());
  if (j < n && (IsIdent(toks, j, "class") || IsIdent(toks, j, "struct"))) ++j;
  // Skip attributes: [[ ... ]].
  while (IsPunct(toks, j, "[")) {
    const int close = MatchForward(toks, j);
    if (close < 0) return j;
    j = close + 1;
  }
  if (j >= n || toks[static_cast<std::size_t>(j)].kind != TokKind::kIdent) {
    return j;  // anonymous enum; nothing to record
  }
  const std::string name = toks[static_cast<std::size_t>(j)].text;
  ++j;
  // Skip the underlying-type clause up to '{' (or bail at ';' = fwd decl).
  while (j < n && !IsPunct(toks, j, "{")) {
    if (IsPunct(toks, j, ";")) return j;
    ++j;
  }
  if (j >= n) return j;
  const int body_end = MatchForward(toks, j);
  if (body_end < 0) return j;

  std::vector<std::string> values;
  bool expect_name = true;
  int depth = 0;  // parens inside initializer expressions
  for (int k = j + 1; k < body_end; ++k) {
    const Token& t = toks[static_cast<std::size_t>(k)];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "{" || t.text == "<") ++depth;
      if (t.text == ")" || t.text == "}" || t.text == ">") --depth;
      if (t.text == "," && depth == 0) expect_name = true;
      continue;
    }
    if (expect_name && t.kind == TokKind::kIdent && depth == 0) {
      values.push_back(t.text);
      expect_name = false;
    }
  }
  if (!values.empty()) {
    auto& defs = model->enums[name];
    bool known = false;
    for (const auto& d : defs) known = known || d == values;
    if (!known) defs.push_back(values);
  }
  return body_end;
}

// After a [[nodiscard]] attribute: skip declaration qualifiers, then a
// (possibly qualified) return type, and record the function name directly
// before the parameter list.
void ParseNodiscardDecl(const Tokens& toks, int i, ProjectModel* model) {
  int j = i;
  const int n = static_cast<int>(toks.size());
  // i points at the `nodiscard` identifier; skip the closing `]]`.
  while (j < n && IsPunct(toks, j, "]")) ++j;  // defensive; ']' follows below
  while (j < n && !IsPunct(toks, j, "]")) ++j;
  while (j < n && IsPunct(toks, j, "]")) ++j;
  while (j < n && toks[static_cast<std::size_t>(j)].kind == TokKind::kIdent &&
         IsDeclQualifier(toks[static_cast<std::size_t>(j)].text)) {
    ++j;
  }
  // Collect `ident (:: ident)* ident (` — the last identifier before the
  // '(' is the function name; everything before it is the return type.
  std::string last_ident;
  bool saw_type = false;
  while (j < n) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (t.kind == TokKind::kIdent) {
      if (!last_ident.empty()) saw_type = true;
      last_ident = t.text;
      ++j;
      continue;
    }
    if (IsPunct(toks, j, "::") || IsPunct(toks, j, "*") ||
        IsPunct(toks, j, "&")) {
      ++j;
      continue;
    }
    if (IsPunct(toks, j, "<")) {  // templated return type
      const int close = MatchForward(toks, j);
      if (close < 0) return;
      j = close + 1;
      continue;
    }
    break;
  }
  if (saw_type && !last_ident.empty() && IsPunct(toks, j, "(")) {
    model->must_check.insert(last_ident);
  }
}

const Token& At(const Tokens& toks, int i) {
  return toks[static_cast<std::size_t>(i)];
}

bool TokIsIdent(const Tokens& toks, int i) {
  return i >= 0 && i < static_cast<int>(toks.size()) &&
         At(toks, i).kind == TokKind::kIdent;
}

bool IsStmtKeyword(const std::string& s) {
  return s == "using" || s == "typedef" || s == "friend" ||
         s == "template" || s == "static_assert" || s == "enum" ||
         s == "class" || s == "struct" || s == "union" || s == "operator";
}

bool IsCallKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "catch" ||
         s == "static_assert" || s == "alignof" || s == "decltype" ||
         s == "noexcept" || s == "new" || s == "delete";
}

// Joins the token texts of [first, last) with no separators, dropping
// namespace qualifiers that differ across call sites of the same owner
// (`sim::`, `nova::`, `EventQueue::`, `std::`). The result is the
// normalized owner key used to pair enqueues with rebinders by name.
std::string JoinNormalized(const Tokens& toks, int first, int last) {
  std::string out;
  for (int i = first; i < last; ++i) {
    const Token& t = toks[static_cast<std::size_t>(i)];
    if (t.kind == TokKind::kPunct && t.text == "::") continue;
    if (t.kind == TokKind::kIdent && IsPunct(toks, i + 1, "::") &&
        (t.text == "sim" || t.text == "nova" || t.text == "EventQueue" ||
         t.text == "std")) {
      continue;
    }
    out += t.text;
  }
  return out;
}

// Recovers the string literal of an `OwnerToken("…")` call from the raw
// line (literals are blanked in the code view). Returns "" when no
// quoted literal is on the call's line or the one after it (wrapped).
std::string RecoverStringLiteral(const SourceFile& f, int line) {
  for (int l = line; l <= line + 1; ++l) {
    const std::string& raw = f.RawLine(l);
    const std::size_t a = raw.find('"');
    if (a == std::string::npos) continue;
    const std::size_t b = raw.find('"', a + 1);
    if (b == std::string::npos) continue;
    return raw.substr(a, b - a + 1);  // includes both quotes
  }
  return "";
}

// Normalized key of an owner expression spanning tokens [first, last).
// `line_hint` is the raw line of the surrounding construct: a bare
// string-literal owner leaves no tokens at all (the code view blanks
// literals), so an empty range falls back to recovering the literal
// from that line.
std::string OwnerKeyFromRange(const SourceFile& f, const Tokens& toks,
                              int first, int last, int line_hint) {
  if (first >= last) {
    const std::string lit = RecoverStringLiteral(f, line_hint);
    return lit.empty() ? "OwnerToken(?)" : lit;
  }
  for (int i = first; i < last; ++i) {
    if (!IsIdent(toks, i, "OwnerToken") || !IsPunct(toks, i + 1, "(")) {
      continue;
    }
    const int close = MatchForward(toks, i + 1);
    if (close < 0 || close > last) break;
    if (close == i + 2) {
      // Empty token range: the argument was a (blanked) string literal.
      const std::string lit = RecoverStringLiteral(f, At(toks, i).line);
      if (!lit.empty()) return lit;
      return "OwnerToken(?)";
    }
    return "OwnerToken(" + JoinNormalized(toks, i + 2, close) + ")";
  }
  return JoinNormalized(toks, first, last);
}

// Extracts the owner key of the tag argument [first, last) of a
// Schedule{At,After}Tagged call at token `call_idx`. Handles inline
// `EventTag{owner, …}` construction, a single identifier naming a local
// `EventTag var{owner, …}` defined earlier in the same function body
// (traced backward), and bare expressions. Returns "" for untagged
// `EventTag{}` (owner 0 is the event queue's own runtime concern).
std::string TagOwnerKey(const SourceFile& f, const Tokens& toks,
                        const FileScopes& scopes, int call_idx, int first,
                        int last) {
  // Inline construction: EventTag { owner, ... }.
  for (int i = first; i < last; ++i) {
    if (!IsIdent(toks, i, "EventTag") || !IsPunct(toks, i + 1, "{")) continue;
    const auto args = SplitTopLevelArgs(toks, i + 1);
    if (args.empty()) return "";  // EventTag{}: untagged by design
    return OwnerKeyFromRange(f, toks, args[0].first, args[0].second,
                             At(toks, i).line);
  }
  // Single identifier: trace a local `EventTag var{...}` backward.
  if (last == first + 1 && TokIsIdent(toks, first)) {
    const std::string& var = At(toks, first).text;
    const int fn = InnermostFunction(scopes, call_idx);
    const int lo = fn >= 0
                       ? scopes.functions[static_cast<std::size_t>(fn)].body_open
                       : 0;
    for (int k = first - 1; k > lo; --k) {
      if (IsIdent(toks, k, "EventTag") && IsIdent(toks, k + 1, var.c_str()) &&
          IsPunct(toks, k + 2, "{")) {
        const auto args = SplitTopLevelArgs(toks, k + 2);
        if (args.empty()) return "";
        return OwnerKeyFromRange(f, toks, args[0].first, args[0].second,
                                 At(toks, k).line);
      }
    }
    return var;  // member or parameter: pair by name (owner_, ...)
  }
  return OwnerKeyFromRange(f, toks, first, last, At(toks, call_idx).line);
}

// Parses `// guarded-by(<lock>)` from the raw declaration line, or from
// a comment-only line directly above it.
std::string GuardedByOf(const SourceFile& f, int line) {
  static const std::string kMarker = "guarded-by(";
  for (const int l : {line, line - 1}) {
    const std::string& raw = f.RawLine(l);
    const std::size_t pos = raw.find(kMarker);
    if (pos == std::string::npos) continue;
    if (l != line) {
      // The line above only counts when it is comment-only.
      bool blank = true;
      for (char c : f.CodeLine(l)) {
        if (c != ' ' && c != '\t') blank = false;
      }
      if (!blank) continue;
    }
    const std::size_t close = raw.find(')', pos);
    if (close == std::string::npos) continue;
    std::string lock =
        raw.substr(pos + kMarker.size(), close - pos - kMarker.size());
    // Only identifier lock names are annotations; prose like
    // `guarded-by(<lock>)` in documentation is not.
    bool ident = !lock.empty();
    for (char c : lock) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        ident = false;
      }
    }
    if (!ident) continue;
    return lock;
  }
  return "";
}

// Walks one class body at member depth (nested brace groups skipped) and
// records every data-member declaration with its type text.
void IndexClassMembers(const SourceFile& f, const Tokens& toks,
                       const ClassScope& cls, ProjectModel* model) {
  int i = cls.body_open + 1;
  while (i < cls.body_close) {
    // Access specifiers are statement separators.
    if ((IsIdent(toks, i, "public") || IsIdent(toks, i, "private") ||
         IsIdent(toks, i, "protected")) &&
        IsPunct(toks, i + 1, ":")) {
      i += 2;
      continue;
    }
    if (IsPunct(toks, i, ";")) {
      ++i;
      continue;
    }
    // Collect one statement: tokens up to a top-level ';', with balanced
    // groups skipped. A '{' ends the declarator when it is a body or
    // nested type (discard) but continues it when it is a brace init.
    const int start = i;
    int trunc = -1;     // '=' or brace-init position: end of the decl part
    bool fn_decl = false;  // saw a top-level '(': function declaration
    int j = i;
    while (j < cls.body_close) {
      if (IsPunct(toks, j, ";")) break;
      if (IsPunct(toks, j, "<")) {
        const int c = MatchForward(toks, j);
        if (c > 0 && c < cls.body_close) {
          j = c + 1;
          continue;
        }
      }
      if (IsPunct(toks, j, "(") || IsPunct(toks, j, "[")) {
        if (At(toks, j).text == "(") fn_decl = true;
        const int c = MatchForward(toks, j);
        if (c < 0) break;
        j = c + 1;
        continue;
      }
      if (IsPunct(toks, j, "=") && trunc < 0) trunc = j;
      if (IsPunct(toks, j, "{")) {
        const int c = MatchForward(toks, j);
        if (c < 0) break;
        const bool brace_init = !fn_decl && TokIsIdent(toks, j - 1) &&
                                !IsStmtKeyword(At(toks, start).text);
        if (brace_init) {
          if (trunc < 0) trunc = j;
          j = c + 1;
          continue;
        }
        // Method body / nested type body: discard this statement.
        j = c + 1;
        fn_decl = true;  // poison: never a data member
        break;
      }
      ++j;
    }
    const int stmt_end = trunc >= 0 ? trunc : j;
    // Resume after the ';' that ended the statement; a discarded body
    // ends with j already past its '}'. Always make progress.
    i = IsPunct(toks, j, ";") ? j + 1 : j;
    if (i <= start) i = start + 1;

    if (fn_decl || stmt_end <= start + 1) continue;
    if (TokIsIdent(toks, start) && IsStmtKeyword(At(toks, start).text)) {
      continue;
    }
    // Member name: last identifier of the declarator, ignoring trailing
    // array extents (already skipped as groups above).
    int name_idx = -1;
    for (int k = stmt_end - 1; k > start; --k) {
      if (TokIsIdent(toks, k)) {
        name_idx = k;
        break;
      }
    }
    if (name_idx <= start) continue;
    MemberDecl m;
    m.cls = cls.name;
    m.name = At(toks, name_idx).text;
    m.line = At(toks, name_idx).line;
    m.file = f.path();
    for (int k = start; k < name_idx; ++k) {
      if (!m.type.empty()) m.type += ' ';
      m.type += At(toks, k).text;
    }
    m.guarded_by = GuardedByOf(f, m.line);
    model->members.push_back(std::move(m));
  }
}

// Records every function definition with its call sites and ChargeLock
// charges, plus the standalone lock-site table.
void IndexFunctions(const SourceFile& f, const Tokens& toks,
                    const FileScopes& scopes, ProjectModel* model) {
  for (const FuncScope& fn : scopes.functions) {
    FuncDef d;
    d.name = fn.name;
    d.qualifier = fn.qualifier;
    d.file = f.path();
    d.line = fn.line;
    for (int i = fn.body_open + 1; i < fn.body_close; ++i) {
      if (!TokIsIdent(toks, i) || !IsPunct(toks, i + 1, "(")) continue;
      const std::string& callee = At(toks, i).text;
      if (IsCallKeyword(callee)) continue;
      d.calls.insert(callee);
      if (callee == "ChargeLock") {
        const auto args = SplitTopLevelArgs(toks, i + 1);
        if (args.empty()) continue;
        // The lock argument may be qualified (state.lock_): key on the
        // last identifier, which is the KernelLock member name.
        std::string lock;
        for (int k = args[0].second - 1; k >= args[0].first; --k) {
          if (TokIsIdent(toks, k)) {
            lock = At(toks, k).text;
            break;
          }
        }
        if (lock.empty()) continue;
        d.locks.insert(lock);
        model->lock_sites.push_back(
            LockSite{lock, d.name, f.path(), At(toks, i).line});
      }
    }
    model->functions.push_back(std::move(d));
  }
}

// Records tagged enqueues and rebinder registrations. Only genuine call
// sites count: both are always invoked through `.` or `->` on an event
// queue, which cleanly excludes the declarations and the definitions in
// src/sim/event_queue.* (the mechanism itself).
void IndexOwnerSites(const SourceFile& f, const Tokens& toks,
                     const FileScopes& scopes, ProjectModel* model) {
  for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
    if (!TokIsIdent(toks, i) || !IsPunct(toks, i + 1, "(")) continue;
    if (!IsPunct(toks, i - 1, ".") && !IsPunct(toks, i - 1, "->")) continue;
    const std::string& name = At(toks, i).text;
    if (name == "RegisterRebinder") {
      const auto args = SplitTopLevelArgs(toks, i + 1);
      if (args.empty()) continue;
      model->rebinders.push_back(
          OwnerSite{OwnerKeyFromRange(f, toks, args[0].first, args[0].second,
                                      At(toks, i).line),
                    f.path(), At(toks, i).line});
      continue;
    }
    if (name != "ScheduleAtTagged" && name != "ScheduleAfterTagged") continue;
    const auto args = SplitTopLevelArgs(toks, i + 1);
    if (args.size() < 2) continue;
    const std::string key =
        TagOwnerKey(f, toks, scopes, i, args[1].first, args[1].second);
    if (key.empty()) continue;  // untagged EventTag{}
    model->enqueues.push_back(OwnerSite{key, f.path(), At(toks, i).line});
  }
}

}  // namespace

int ProjectModel::LayerRank(const std::string& layer) {
  if (layer == "sim") return 0;
  if (layer == "hw") return 1;
  if (layer == "hv") return 2;
  if (layer == "services" || layer == "root" || layer == "vmm" ||
      layer == "guest" || layer == "baseline") {
    return 3;
  }
  return -1;
}

std::string ProjectModel::LayerOf(const std::string& path) {
  const std::size_t pos = path.find("src/");
  if (pos == std::string::npos) return "";
  // Only a real src/ directory component, not e.g. "foo_src/".
  if (pos != 0 && path[pos - 1] != '/') return "";
  const std::size_t start = pos + 4;
  const std::size_t end = path.find('/', start);
  if (end == std::string::npos) return "";
  return path.substr(start, end - start);
}

const FuncDef* ProjectModel::FunctionAt(const std::string& file,
                                        int line) const {
  for (const FuncDef& d : functions) {
    if (d.line == line && d.file == file) return &d;
  }
  return nullptr;
}

std::vector<const FuncDef*> ProjectModel::FindFunctions(
    const std::string& name) const {
  std::vector<const FuncDef*> out;
  for (const FuncDef& d : functions) {
    if (d.name == name) out.push_back(&d);
  }
  return out;
}

std::vector<const MemberDecl*> ProjectModel::GuardedMembers() const {
  std::vector<const MemberDecl*> out;
  for (const MemberDecl& m : members) {
    if (!m.guarded_by.empty()) out.push_back(&m);
  }
  return out;
}

ProjectModel BuildModel(const std::vector<SourceFile>& files,
                        const std::vector<Tokens>& toks,
                        const std::vector<FileScopes>& scopes) {
  ProjectModel model;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const Tokens& t = toks[fi];
    for (int i = 0; i < static_cast<int>(t.size()); ++i) {
      const Token& tok = t[static_cast<std::size_t>(i)];
      if (tok.kind != TokKind::kIdent) continue;
      if (tok.text == "enum") {
        i = ParseEnum(t, i, &model);
        continue;
      }
      if (tok.text == "nodiscard") {
        ParseNodiscardDecl(t, i, &model);
        continue;
      }
      // `Status Foo(` / `Status Cls::Foo(` / `Vtlb::Outcome Resolve(` …
      if (IsResultType(tok.text)) {
        const int j = i + 1;
        if (j < static_cast<int>(t.size()) &&
            t[static_cast<std::size_t>(j)].kind == TokKind::kIdent) {
          // Step over `Cls::` qualifiers in out-of-line definition names.
          int name = j;
          while (name + 1 < static_cast<int>(t.size()) &&
                 IsPunct(t, name + 1, "::") &&
                 t[static_cast<std::size_t>(name + 2)].kind ==
                     TokKind::kIdent) {
            name += 2;
          }
          if (IsPunct(t, name + 1, "(")) {
            model.must_check.insert(t[static_cast<std::size_t>(name)].text);
          }
        }
      }
    }
    for (const ClassScope& cls : scopes[fi].classes) {
      IndexClassMembers(f, t, cls, &model);
    }
    IndexFunctions(f, t, scopes[fi], &model);
    IndexOwnerSites(f, t, scopes[fi], &model);
  }
  return model;
}

ProjectModel BuildModel(const std::vector<SourceFile>& files) {
  std::vector<Tokens> toks;
  std::vector<FileScopes> scopes;
  toks.reserve(files.size());
  scopes.reserve(files.size());
  for (const SourceFile& f : files) {
    toks.push_back(Lex(f));
    scopes.push_back(BuildFileScopes(toks.back()));
  }
  return BuildModel(files, toks, scopes);
}

}  // namespace nova::lint
