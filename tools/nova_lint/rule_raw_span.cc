// raw-span: manual BeginAt/EndAt span emission outside sim::ScopedSpan.
//
// Motivating bug class: a hand-paired Begin/End around code with an
// early return leaves the span open — TraceReport then attributes the
// rest of the run to it and the golden-trace digests diverge between
// otherwise identical runs. ScopedSpan's destructor ends the span on
// every exit path; the only places allowed to touch the primitives are
// ScopedSpan itself and the tracer's own unit tests (both carry
// suppressions).
#include <string>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

class RawSpanRule : public Rule {
 public:
  const char* name() const override { return "raw-span"; }
  const char* summary() const override {
    return "manual BeginAt/EndAt span emission outside ScopedSpan";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    (void)model;
    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i < n; ++i) {
      const Token& t = toks[static_cast<std::size_t>(i)];
      if (t.kind != TokKind::kIdent ||
          (t.text != "BeginAt" && t.text != "EndAt")) {
        continue;
      }
      if (!IsPunct(toks, i + 1, "(")) continue;
      if (!(IsPunct(toks, i - 1, ".") || IsPunct(toks, i - 1, "->"))) {
        continue;  // declaration or definition, not an emission
      }
      out->push_back({name(), file.path(), t.line,
                      "manual span emission via '" + t.text +
                          "'; use sim::ScopedSpan so the End fires on "
                          "every return path"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeRawSpanRule() {
  return std::make_unique<RawSpanRule>();
}

}  // namespace nova::lint
