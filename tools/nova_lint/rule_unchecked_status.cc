// unchecked-status: a call to a must-check API (anything returning
// Status / Vtlb::Outcome / DownResult, or carrying [[nodiscard]]) whose
// result is discarded as a full-expression statement.
//
// Motivating bug: PR 3 found AllocFrame results ignored on page-table
// growth paths, turning quota exhaustion into silent corruption instead
// of a clean kNoMem. The compiler enforces the same contract through
// [[nodiscard]] (NOVA_WERROR makes it fatal); this rule keeps the check
// available without a build and catches pre-[[nodiscard]] call sites.
#include <string>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

bool IsBoundary(const Token& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":");
}

// Classifies the tokens before a candidate call at `callee`: true when
// the call is the start of a full-expression statement (its result can
// only be discarded), false when it is consumed or is a declaration.
bool CallIsStatement(const Tokens& toks, int callee) {
  int pos = callee - 1;
  bool first = true;
  while (true) {
    if (pos < 0) return true;
    const Token& t = toks[static_cast<std::size_t>(pos)];
    if (t.kind == TokKind::kPunct && t.text == ":") {
      // A label/case `:` starts a statement; a ternary `:` consumes the
      // call. Disambiguate by looking for the matching `?` first.
      for (int p = pos - 1; p >= 0; --p) {
        const Token& q = toks[static_cast<std::size_t>(p)];
        if (q.kind != TokKind::kPunct) continue;
        if (q.text == "?") return false;
        if (q.text == ";" || q.text == "{" || q.text == "}") break;
      }
      return true;
    }
    if (IsBoundary(t)) return true;
    if (t.kind == TokKind::kIdent && (t.text == "else" || t.text == "do")) {
      return true;
    }
    // A ')' directly before the call is either the explicit-discard cast
    // `(void)Foo();` (fine) or an unbraced controlled statement
    // `if (...) Foo();` (still a discard).
    if (first && t.kind == TokKind::kPunct && t.text == ")") {
      const int open = MatchBackward(toks, pos);
      if (open >= 0 && open + 2 == pos && IsIdent(toks, open + 1, "void")) {
        return false;
      }
      return true;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == "." || t.text == "->" || t.text == "::")) {
      // Walk over the receiver atom: `obj.`, `ns::`, `call(...).`.
      int p = pos - 1;
      if (p < 0) return false;
      const Token& atom = toks[static_cast<std::size_t>(p)];
      if (atom.kind == TokKind::kIdent) {
        pos = p - 1;
        first = false;
        continue;
      }
      if (atom.kind == TokKind::kPunct &&
          (atom.text == ")" || atom.text == "]")) {
        const int open = MatchBackward(toks, p);
        if (open <= 0) return false;
        if (toks[static_cast<std::size_t>(open - 1)].kind == TokKind::kIdent) {
          pos = open - 2;
          first = false;
          continue;
        }
      }
      return false;
    }
    // Anything else — `=`, `return`, `(`, `,`, a type name — consumes or
    // declares; the result is not silently dropped.
    return false;
  }
}

class UncheckedStatusRule : public Rule {
 public:
  const char* name() const override { return "unchecked-status"; }
  const char* summary() const override {
    return "result of a Status/Outcome/[[nodiscard]] API is discarded";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i < n; ++i) {
      const Token& t = toks[static_cast<std::size_t>(i)];
      if (t.kind != TokKind::kIdent || model.must_check.count(t.text) == 0) {
        continue;
      }
      if (!IsPunct(toks, i + 1, "(")) continue;
      const int close = MatchForward(toks, i + 1);
      if (close < 0 || !IsPunct(toks, close + 1, ";")) continue;
      if (!CallIsStatement(toks, i)) continue;
      out->push_back(
          {name(), file.path(), t.line,
           "result of '" + t.text +
               "' is discarded; handle the Status or make the intent "
               "explicit with (void) and a reason"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeUncheckedStatusRule() {
  return std::make_unique<UncheckedStatusRule>();
}

}  // namespace nova::lint
