// Rule 12 `event-rebind`: every EventTag owner enqueued anywhere must
// have a rebinder registered on sim::EventQueue somewhere in the scanned
// tree. A tagged event whose owner has no rebinder serializes fine but
// fails LoadState (kBadCapability) on the restoring twin — the PR 7
// lost-event-on-restore hole this rule closes at lint time.
//
// The pairing is cross-TU and by normalized owner key (see
// model.h:OwnerSite): string literals are recovered from the raw source,
// expressions (member tokens, constexpr owners, OwnerToken(name_)) pair
// by name. The EventQueue mechanism itself never appears in either
// table: only real call sites through `.`/`->` are indexed.
#include <set>
#include <string>

#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

class EventRebindRule final : public Rule {
 public:
  const char* name() const override { return "event-rebind"; }
  const char* summary() const override {
    return "every tagged event owner has a RegisterRebinder registration "
           "(snapshot restore would drop it otherwise)";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    if (model.enqueues.empty()) return;
    std::set<std::string> registered;
    for (const OwnerSite& r : model.rebinders) {
      registered.insert(r.key);
    }
    for (const OwnerSite& e : model.enqueues) {
      if (e.file != file.path()) continue;
      if (e.key == "OwnerToken(?)") {
        out->push_back({name(), e.file, e.line,
                        "cannot resolve the owner of this tagged enqueue; "
                        "use OwnerToken(\"...\") or a named constant"});
        continue;
      }
      if (registered.count(e.key) != 0) continue;
      out->push_back(
          {name(), e.file, e.line,
           "tagged event owner " + e.key +
               " has no RegisterRebinder registration in the scanned tree; "
               "snapshot restore would fail to re-bind this event"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeEventRebindRule() {
  return std::make_unique<EventRebindRule>();
}

}  // namespace nova::lint
