#include "tools/nova_lint/source.h"

#include <fstream>
#include <sstream>

namespace nova::lint {
namespace {

// Splits on '\n'; a trailing newline does not create an extra empty line.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      out.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool IsPreprocessorStart(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

// A directive continues onto the next line when a backslash is the last
// non-whitespace character (trailing blanks after the '\' are legal).
bool HasLineContinuation(const std::string& line) {
  std::size_t end = line.size();
  while (end > 0 && (line[end - 1] == ' ' || line[end - 1] == '\t')) --end;
  return end > 0 && line[end - 1] == '\\';
}

// True when the '\'' at `i` is a digit separator inside a numeric
// literal (1'000'000, 0xDEAD'BEEF) rather than a character literal.
// A separator sits between two digits of a literal that begins with a
// decimal digit (or an 0x/0b prefix) not glued to an identifier — this
// keeps u8'a' and L'x' classified as character literals.
bool IsDigitSeparator(const std::string& in, std::size_t i) {
  if (i == 0 || i + 1 >= in.size()) return false;
  if (!isxdigit(static_cast<unsigned char>(in[i + 1]))) return false;
  std::size_t j = i;
  while (j > 0 && isxdigit(static_cast<unsigned char>(in[j - 1]))) --j;
  if (j == i) return false;  // no digits directly before the quote
  if (j >= 2 && (in[j - 1] == 'x' || in[j - 1] == 'X') && in[j - 2] == '0') {
    return true;
  }
  if (!isdigit(static_cast<unsigned char>(in[j]))) return false;
  return j == 0 || (!isalnum(static_cast<unsigned char>(in[j - 1])) &&
                    in[j - 1] != '_');
}

// When the '"' at `i` opens a raw string literal (R"…", LR"…", u8R"…"),
// stores the index of the first prefix character in *start and returns
// true. Plain prefixed strings (L"…", u8"…") and identifiers ending in R
// (FooBAR"…" cannot occur in valid code) are rejected.
bool IsRawStringQuote(const std::string& in, std::size_t i,
                      std::size_t* start) {
  if (i == 0 || in[i - 1] != 'R') return false;
  std::size_t p = i - 1;
  if (p > 0 && (in[p - 1] == 'L' || in[p - 1] == 'U' || in[p - 1] == 'u')) {
    --p;
  } else if (p > 1 && in[p - 1] == '8' && in[p - 2] == 'u') {
    p -= 2;
  }
  if (p > 0 && (isalnum(static_cast<unsigned char>(in[p - 1])) ||
                in[p - 1] == '_')) {
    return false;
  }
  *start = p;
  return true;
}

}  // namespace

SourceFile::SourceFile(std::string path, std::string text)
    : path_(std::move(path)) {
  Build(text);
  ParseSuppressions();
}

std::optional<SourceFile> SourceFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return SourceFile(path, buf.str());
}

// One pass over the raw text producing the comment/string-blanked view.
// The state machine mirrors the lexical phases the rules care about; raw
// string literals carry their delimiter so R"x(... )x" nests safely.
void SourceFile::Build(const std::string& text) {
  lines_ = SplitLines(text);
  code_ = lines_;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // delimiter of the active raw string literal
  bool preprocessor = false;  // inside a (possibly continued) directive

  for (std::size_t li = 0; li < lines_.size(); ++li) {
    const std::string& in = lines_[li];
    std::string& out = code_[li];
    if (state == State::kLineComment) state = State::kCode;

    if (state == State::kCode && !preprocessor && IsPreprocessorStart(in)) {
      preprocessor = true;
    }
    if (preprocessor) {
      // Blank the whole directive (macro bodies are not statement code);
      // continuation lines stay blanked too.
      for (char& c : out) c = ' ';
      preprocessor = HasLineContinuation(in);
      continue;
    }

    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      std::size_t raw_start = 0;
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            out[i] = out[i + 1] = ' ';
            ++i;
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            out[i] = out[i + 1] = ' ';
            ++i;
          } else if (c == '"' && IsRawStringQuote(in, i, &raw_start)) {
            // Raw string literal: blank the prefix and capture the
            // delimiter up to '('.
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < in.size() && in[j] != '(') raw_delim += in[j++];
            for (std::size_t k = raw_start; k < std::min(j + 1, in.size());
                 ++k) {
              out[k] = ' ';
            }
            i = j;
            state = State::kRawString;
          } else if (c == '"') {
            state = State::kString;
            out[i] = ' ';
          } else if (c == '\'' && !IsDigitSeparator(in, i)) {
            state = State::kChar;
            out[i] = ' ';
          }
          break;
        case State::kLineComment:
          out[i] = ' ';
          break;
        case State::kBlockComment:
          out[i] = ' ';
          if (c == '*' && next == '/') {
            out[i + 1] = ' ';
            ++i;
            state = State::kCode;
          }
          break;
        case State::kString:
        case State::kChar: {
          out[i] = ' ';
          if (c == '\\') {
            if (i + 1 < in.size()) out[++i] = ' ';
          } else if ((state == State::kString && c == '"') ||
                     (state == State::kChar && c == '\'')) {
            state = State::kCode;
          }
          break;
        }
        case State::kRawString: {
          // Close on )delim" .
          const std::string close = ")" + raw_delim + "\"";
          if (in.compare(i, close.size(), close) == 0) {
            for (std::size_t k = i; k < i + close.size(); ++k) out[k] = ' ';
            i += close.size() - 1;
            state = State::kCode;
          } else {
            out[i] = ' ';
          }
          break;
        }
      }
    }
    // Strings and char literals do not span lines (raw strings do).
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }

  code_joined_.clear();
  line_starts_.clear();
  for (const std::string& l : code_) {
    line_starts_.push_back(code_joined_.size());
    code_joined_ += l;
    code_joined_ += '\n';
  }
}

void SourceFile::ParseSuppressions() {
  static const std::string kAllow = "nova-lint: allow(";
  static const std::string kAllowFile = "nova-lint: allow-file(";
  for (std::size_t li = 0; li < lines_.size(); ++li) {
    const std::string& raw = lines_[li];
    for (const auto& [marker, file_wide] :
         {std::pair{kAllowFile, true}, std::pair{kAllow, false}}) {
      std::size_t pos = raw.find(marker);
      if (pos == std::string::npos) continue;
      const std::size_t close = raw.find(')', pos);
      if (close == std::string::npos) continue;
      std::string list = raw.substr(pos + marker.size(),
                                    close - pos - marker.size());
      std::string name;
      auto flush = [&] {
        if (name.empty()) return;
        if (file_wide) {
          allow_file_.insert(name);
        } else {
          const int line = static_cast<int>(li) + 1;
          allow_[line].insert(name);
          // A comment standing alone on its line covers the next line.
          bool alone = true;
          for (char c : code_[li]) {
            if (c != ' ' && c != '\t') alone = false;
          }
          if (alone) allow_[line + 1].insert(name);
        }
        name.clear();
      };
      for (char c : list) {
        if (c == ',' || c == ' ') {
          flush();
        } else {
          name += c;
        }
      }
      flush();
      break;  // allow-file match also contains "allow(", don't double-parse
    }
  }
}

const std::string& SourceFile::RawLine(int line) const {
  static const std::string kEmpty;
  if (line < 1 || line > line_count()) return kEmpty;
  return lines_[static_cast<std::size_t>(line - 1)];
}

const std::string& SourceFile::CodeLine(int line) const {
  static const std::string kEmpty;
  if (line < 1 || line > line_count()) return kEmpty;
  return code_[static_cast<std::size_t>(line - 1)];
}

int SourceFile::LineOf(std::size_t offset) const {
  int lo = 0, hi = static_cast<int>(line_starts_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (line_starts_[static_cast<std::size_t>(mid)] <= offset) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo + 1;
}

bool SourceFile::Suppressed(int line, const std::string& rule) const {
  if (allow_file_.count(rule) != 0) return true;
  auto it = allow_.find(line);
  return it != allow_.end() && it->second.count(rule) != 0;
}

}  // namespace nova::lint
