#include "tools/nova_lint/source.h"

#include <fstream>
#include <sstream>

namespace nova::lint {
namespace {

// Splits on '\n'; a trailing newline does not create an extra empty line.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      out.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool IsPreprocessorStart(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

}  // namespace

SourceFile::SourceFile(std::string path, std::string text)
    : path_(std::move(path)) {
  Build(text);
  ParseSuppressions();
}

std::optional<SourceFile> SourceFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return SourceFile(path, buf.str());
}

// One pass over the raw text producing the comment/string-blanked view.
// The state machine mirrors the lexical phases the rules care about; raw
// string literals carry their delimiter so R"x(... )x" nests safely.
void SourceFile::Build(const std::string& text) {
  lines_ = SplitLines(text);
  code_ = lines_;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // delimiter of the active raw string literal
  bool preprocessor = false;  // inside a (possibly continued) directive

  for (std::size_t li = 0; li < lines_.size(); ++li) {
    const std::string& in = lines_[li];
    std::string& out = code_[li];
    if (state == State::kLineComment) state = State::kCode;

    if (state == State::kCode && !preprocessor && IsPreprocessorStart(in)) {
      preprocessor = true;
    }
    if (preprocessor) {
      // Blank the whole directive (macro bodies are not statement code);
      // continuation lines stay blanked too.
      for (char& c : out) c = ' ';
      preprocessor = !in.empty() && in.back() == '\\';
      continue;
    }

    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            out[i] = out[i + 1] = ' ';
            ++i;
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            out[i] = out[i + 1] = ' ';
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (!isalnum(static_cast<unsigned char>(in[i - 1])) &&
                                 in[i - 1] != '_'))) {
            // Raw string literal: capture the delimiter up to '('.
            raw_delim.clear();
            std::size_t j = i + 2;
            while (j < in.size() && in[j] != '(') raw_delim += in[j++];
            for (std::size_t k = i; k < std::min(j + 1, in.size()); ++k) {
              out[k] = ' ';
            }
            i = j;
            state = State::kRawString;
          } else if (c == '"') {
            state = State::kString;
            out[i] = ' ';
          } else if (c == '\'') {
            state = State::kChar;
            out[i] = ' ';
          }
          break;
        case State::kLineComment:
          out[i] = ' ';
          break;
        case State::kBlockComment:
          out[i] = ' ';
          if (c == '*' && next == '/') {
            out[i + 1] = ' ';
            ++i;
            state = State::kCode;
          }
          break;
        case State::kString:
        case State::kChar: {
          out[i] = ' ';
          if (c == '\\') {
            if (i + 1 < in.size()) out[++i] = ' ';
          } else if ((state == State::kString && c == '"') ||
                     (state == State::kChar && c == '\'')) {
            state = State::kCode;
          }
          break;
        }
        case State::kRawString: {
          // Close on )delim" .
          const std::string close = ")" + raw_delim + "\"";
          if (in.compare(i, close.size(), close) == 0) {
            for (std::size_t k = i; k < i + close.size(); ++k) out[k] = ' ';
            i += close.size() - 1;
            state = State::kCode;
          } else {
            out[i] = ' ';
          }
          break;
        }
      }
    }
    // Strings and char literals do not span lines (raw strings do).
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }

  code_joined_.clear();
  line_starts_.clear();
  for (const std::string& l : code_) {
    line_starts_.push_back(code_joined_.size());
    code_joined_ += l;
    code_joined_ += '\n';
  }
}

void SourceFile::ParseSuppressions() {
  static const std::string kAllow = "nova-lint: allow(";
  static const std::string kAllowFile = "nova-lint: allow-file(";
  for (std::size_t li = 0; li < lines_.size(); ++li) {
    const std::string& raw = lines_[li];
    for (const auto& [marker, file_wide] :
         {std::pair{kAllowFile, true}, std::pair{kAllow, false}}) {
      std::size_t pos = raw.find(marker);
      if (pos == std::string::npos) continue;
      const std::size_t close = raw.find(')', pos);
      if (close == std::string::npos) continue;
      std::string list = raw.substr(pos + marker.size(),
                                    close - pos - marker.size());
      std::string name;
      auto flush = [&] {
        if (name.empty()) return;
        if (file_wide) {
          allow_file_.insert(name);
        } else {
          const int line = static_cast<int>(li) + 1;
          allow_[line].insert(name);
          // A comment standing alone on its line covers the next line.
          bool alone = true;
          for (char c : code_[li]) {
            if (c != ' ' && c != '\t') alone = false;
          }
          if (alone) allow_[line + 1].insert(name);
        }
        name.clear();
      };
      for (char c : list) {
        if (c == ',' || c == ' ') {
          flush();
        } else {
          name += c;
        }
      }
      flush();
      break;  // allow-file match also contains "allow(", don't double-parse
    }
  }
}

const std::string& SourceFile::RawLine(int line) const {
  static const std::string kEmpty;
  if (line < 1 || line > line_count()) return kEmpty;
  return lines_[static_cast<std::size_t>(line - 1)];
}

const std::string& SourceFile::CodeLine(int line) const {
  static const std::string kEmpty;
  if (line < 1 || line > line_count()) return kEmpty;
  return code_[static_cast<std::size_t>(line - 1)];
}

int SourceFile::LineOf(std::size_t offset) const {
  int lo = 0, hi = static_cast<int>(line_starts_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (line_starts_[static_cast<std::size_t>(mid)] <= offset) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo + 1;
}

bool SourceFile::Suppressed(int line, const std::string& rule) const {
  if (allow_file_.count(rule) != 0) return true;
  auto it = allow_.find(line);
  return it != allow_.end() && it->second.count(rule) != 0;
}

}  // namespace nova::lint
