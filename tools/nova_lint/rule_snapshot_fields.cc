// snapshot-fields: every class with a SaveState method must carry a
// complete `// snapshot-x-list(Class): a_, b_, ...` member census.
//
// Motivating bug class: someone adds a member to a snapshotted class and
// forgets to extend SaveState/LoadState. The snapshot still encodes and
// decodes cleanly — it is just silently incomplete, and the restored twin
// diverges from the source thousands of events later, far from the bug.
// The x-list comment is the forcing function: adding a member without
// touching the census line fails lint, and the census line sits directly
// above SaveState where the serialization order is decided. Fields that
// are intentionally *not* serialized (verified construction invariants,
// caches rebuilt on load) still appear in the list — the census is "every
// member was considered", not "every member is written".
//
// Mechanics: the class body is token-walked at brace depth 0 (function
// bodies, nested types and initializers are skipped), collecting member
// variables by the project's trailing-underscore convention. The census
// comment is read from the raw lines (comments are blanked in the code
// view) and may continue across lines while the previous line ends with
// a comma. Classes without trailing-underscore members (plain aggregates
// like NovaSystem) need no census.
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

bool EndsWithUnderscore(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

struct XList {
  int line = 0;                 // line of the snapshot-x-list( comment
  std::set<std::string> names;  // trailing-underscore entries
};

// Extracts identifiers ending in '_' from a comma-separated census body.
void CollectNames(const std::string& text, std::set<std::string>* out) {
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      const std::string word = text.substr(i, j - i);
      if (EndsWithUnderscore(word)) out->insert(word);
      i = j;
    } else {
      ++i;
    }
  }
}

// Parses every `// snapshot-x-list(Class): ...` comment in the file,
// following comma-continued lines. Raw lines are used because the code
// view blanks comments.
std::map<std::string, XList> ParseXLists(const SourceFile& file) {
  std::map<std::string, XList> lists;
  for (int line = 1; line <= file.line_count(); ++line) {
    const std::string& raw = file.RawLine(line);
    const std::size_t tag = raw.find("snapshot-x-list(");
    if (tag == std::string::npos) continue;
    const std::size_t name_begin = tag + std::string("snapshot-x-list(").size();
    const std::size_t name_end = raw.find(')', name_begin);
    if (name_end == std::string::npos) continue;
    const std::string cls = raw.substr(name_begin, name_end - name_begin);

    XList x;
    x.line = line;
    std::string body = raw.substr(name_end + 1);
    if (!body.empty() && body.front() == ':') body.erase(body.begin());
    int at = line;
    for (;;) {
      CollectNames(body, &x.names);
      // Continue onto the next comment line while this one ends in ','.
      const std::size_t last = body.find_last_not_of(" \t");
      if (last == std::string::npos || body[last] != ',') break;
      ++at;
      if (at > file.line_count()) break;
      const std::string& next = file.RawLine(at);
      const std::size_t slashes = next.find("//");
      if (slashes == std::string::npos) break;
      body = next.substr(slashes + 2);
    }
    lists.emplace(cls, std::move(x));
  }
  return lists;
}

struct ClassInfo {
  int line = 0;       // line of the class keyword
  bool has_save = false;
  std::map<std::string, int> members;  // name -> declaration line
};

class SnapshotFieldsRule : public Rule {
 public:
  const char* name() const override { return "snapshot-fields"; }
  const char* summary() const override {
    return "SaveState classes must carry a complete snapshot-x-list census";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    (void)model;
    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    const std::map<std::string, XList> xlists = ParseXLists(file);

    std::map<std::string, ClassInfo> classes;
    for (int i = 0; i < n; ++i) {
      if (!(IsIdent(toks, i, "class") || IsIdent(toks, i, "struct"))) continue;
      if (i > 0 && IsIdent(toks, i - 1, "enum")) continue;  // enum class
      const int ni = i + 1;
      if (ni >= n || toks[static_cast<std::size_t>(ni)].kind != TokKind::kIdent)
        continue;  // anonymous struct or `struct {`-style usage
      const std::string cls = toks[static_cast<std::size_t>(ni)].text;
      // After the name only `{`, `final`, a base clause `:`, or (for a
      // forward declaration) `;` may follow. Anything else — `>`/`,` in a
      // template parameter list, an identifier in a declaration — means
      // this is not a class definition.
      int j = ni + 1;
      if (IsIdent(toks, j, "final")) ++j;
      if (IsPunct(toks, j, ";")) continue;  // forward declaration
      if (!IsPunct(toks, j, "{") && !IsPunct(toks, j, ":")) continue;
      while (j < n && !IsPunct(toks, j, "{") && !IsPunct(toks, j, ";")) ++j;
      if (j >= n || !IsPunct(toks, j, "{")) continue;
      const int close = MatchForward(toks, j);
      if (close < 0) continue;

      ClassInfo info;
      info.line = toks[static_cast<std::size_t>(i)].line;
      // Walk the body at depth 0: skip every nested brace (method bodies,
      // nested types, brace initializers) and every paren (parameter
      // lists, constructor init lists) — member declarations live only at
      // the top level, and their names precede any initializer.
      int k = j + 1;
      while (k < close) {
        if (IsPunct(toks, k, "{") || IsPunct(toks, k, "(")) {
          const int m = MatchForward(toks, k);
          if (m < 0) break;
          k = m + 1;
          continue;
        }
        const Token& t = toks[static_cast<std::size_t>(k)];
        if (t.kind == TokKind::kIdent) {
          if (t.text == "SaveState" && IsPunct(toks, k + 1, "(")) {
            info.has_save = true;
          } else if (EndsWithUnderscore(t.text) &&
                     (IsPunct(toks, k + 1, ";") || IsPunct(toks, k + 1, "=") ||
                      IsPunct(toks, k + 1, "{") ||
                      IsPunct(toks, k + 1, "["))) {
            info.members.emplace(t.text, t.line);
          }
        }
        ++k;
      }
      classes.emplace(cls, std::move(info));
    }

    for (const auto& [cls, info] : classes) {
      const auto it = xlists.find(cls);
      if (it == xlists.end()) {
        if (info.has_save && !info.members.empty()) {
          out->push_back(
              {name(), file.path(), info.line,
               "class '" + cls +
                   "' defines SaveState but has no snapshot-x-list(" + cls +
                   ") census comment; list every member so serialization "
                   "stays in sync with the fields"});
        }
        continue;
      }
      const XList& x = it->second;
      for (const auto& [member, line] : info.members) {
        if (!x.names.count(member)) {
          out->push_back({name(), file.path(), line,
                          "member '" + member +
                              "' is missing from snapshot-x-list(" + cls +
                              "); add it and audit SaveState/LoadState"});
        }
      }
      for (const std::string& listed : x.names) {
        if (!info.members.count(listed)) {
          out->push_back({name(), file.path(), x.line,
                          "snapshot-x-list(" + cls + ") names '" + listed +
                              "' which is not a member; drop the stale "
                              "entry"});
        }
      }
    }
    // Censuses naming classes this file does not define are ignored, not
    // flagged: comments are read from the raw lines, so a census quoted
    // inside a string literal (the lint self-tests do this) would trip a
    // "no such class" check even though the quoted class was blanked.
  }
};

}  // namespace

std::unique_ptr<Rule> MakeSnapshotFieldsRule() {
  return std::make_unique<SnapshotFieldsRule>();
}

}  // namespace nova::lint
