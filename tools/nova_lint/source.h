// SourceFile: one translation unit as nova-lint sees it.
//
// Loading a file produces three synchronized views:
//  * raw lines       — exactly what is on disk (layering reads #include
//                      lines from here);
//  * code lines      — comments, string/char literals and preprocessor
//                      directives blanked to spaces, so token scans never
//                      trip over prose or macro bodies. Offsets are
//                      preserved: code[i][j] lines up with lines[i][j];
//  * suppressions    — `// nova-lint: allow(rule-a, rule-b)` comments,
//                      attached to the line they sit on (and to the next
//                      line when the comment stands alone), plus
//                      `// nova-lint: allow-file(rule)` for a whole file.
#ifndef TOOLS_NOVA_LINT_SOURCE_H_
#define TOOLS_NOVA_LINT_SOURCE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace nova::lint {

class SourceFile {
 public:
  // Builds the views from an in-memory buffer (unit tests) …
  SourceFile(std::string path, std::string text);
  // … or from disk. nullopt when the file cannot be read.
  static std::optional<SourceFile> Load(const std::string& path);

  const std::string& path() const { return path_; }
  // 1-based accessors; out-of-range returns an empty line.
  const std::string& RawLine(int line) const;
  const std::string& CodeLine(int line) const;
  int line_count() const { return static_cast<int>(lines_.size()); }

  // All comment-blanked code joined with '\n' (token scans run over this).
  const std::string& code() const { return code_joined_; }
  // Maps a byte offset in code() back to its 1-based line number.
  int LineOf(std::size_t offset) const;

  // True when `rule` findings on `line` are suppressed by an allow()
  // comment or a file-wide allow-file().
  bool Suppressed(int line, const std::string& rule) const;

 private:
  void Build(const std::string& text);
  void ParseSuppressions();

  std::string path_;
  std::vector<std::string> lines_;
  std::vector<std::string> code_;
  std::string code_joined_;
  std::vector<std::size_t> line_starts_;  // offset of each line in code_joined_
  std::map<int, std::set<std::string>> allow_;  // line -> suppressed rules
  std::set<std::string> allow_file_;
};

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_SOURCE_H_
