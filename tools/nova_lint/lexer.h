// A minimal C++ token scanner for nova-lint.
//
// Runs over SourceFile::code() — comments, literals and preprocessor
// directives are already blanked — so only identifiers, numbers and
// punctuators remain. This is deliberately not a full C++ lexer: the
// rules only need identifier adjacency and balanced-delimiter walks.
#ifndef TOOLS_NOVA_LINT_LEXER_H_
#define TOOLS_NOVA_LINT_LEXER_H_

#include <string>
#include <vector>

#include "tools/nova_lint/source.h"

namespace nova::lint {

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based source line
};

using Tokens = std::vector<Token>;

// Tokenizes the blanked code view of `file`.
Tokens Lex(const SourceFile& file);

// Index of the matching close delimiter for the open one at `i`
// ('(' -> ')', '{' -> '}', '[' -> ']', '<' -> '>'), or -1. The '<' form
// bails out on tokens that cannot appear in a template argument list.
int MatchForward(const Tokens& toks, int i);

// Index of the matching open delimiter for the close one at `i`, or -1.
int MatchBackward(const Tokens& toks, int i);

// Convenience: true when toks[i] is an identifier with exactly `text`.
bool IsIdent(const Tokens& toks, int i, const char* text);

// True when toks[i] is the punctuator `text`.
bool IsPunct(const Tokens& toks, int i, const char* text);

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_LEXER_H_
