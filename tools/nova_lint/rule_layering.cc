// layering: include-graph enforcement of the architecture ladder
//
//   sim(0) -> hw(1) -> hv(2) -> {services, root, vmm, guest, baseline}(3)
//
// A layer may include its own rank or below, never above: the simulator
// substrate cannot know about devices, devices cannot know about the
// hypervisor, and the hypervisor cannot know about user-level components.
// This is the repository's small-TCB argument (PAPER.md section 3) made
// mechanical — an upward include silently grows what the lower layer
// depends on. Tests, benches, examples and tools consume everything and
// are unrestricted.
#include <string>

#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

// Extracts the layer of `#include "src/<layer>/..."` from a raw line, or
// "" when the line is not such an include.
std::string IncludedLayer(const std::string& raw) {
  std::size_t pos = raw.find('#');
  if (pos == std::string::npos) return "";
  pos = raw.find("include", pos);
  if (pos == std::string::npos) return "";
  pos = raw.find('"', pos);
  if (pos == std::string::npos) return "";
  const std::string prefix = "src/";
  if (raw.compare(pos + 1, prefix.size(), prefix) != 0) return "";
  const std::size_t start = pos + 1 + prefix.size();
  const std::size_t end = raw.find('/', start);
  if (end == std::string::npos) return "";
  return raw.substr(start, end - start);
}

class LayeringRule : public Rule {
 public:
  const char* name() const override { return "layering"; }
  const char* summary() const override {
    return "include of a higher architecture layer (upward dependency)";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    (void)model;
    const std::string own_layer = ProjectModel::LayerOf(file.path());
    const int own_rank = ProjectModel::LayerRank(own_layer);
    if (own_rank < 0) return;  // not in src/: unrestricted consumer

    for (int line = 1; line <= file.line_count(); ++line) {
      const std::string layer = IncludedLayer(file.RawLine(line));
      if (layer.empty()) continue;
      const int rank = ProjectModel::LayerRank(layer);
      if (rank < 0 || rank <= own_rank) continue;
      out->push_back({name(), file.path(), line,
                      "src/" + own_layer + " (rank " +
                          std::to_string(own_rank) + ") includes src/" +
                          layer + " (rank " + std::to_string(rank) +
                          "); dependencies must point down the ladder "
                          "sim -> hw -> hv -> {services,root,...}"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLayeringRule() {
  return std::make_unique<LayeringRule>();
}

}  // namespace nova::lint
