// Diagnostic types shared by every nova-lint rule.
#ifndef TOOLS_NOVA_LINT_DIAG_H_
#define TOOLS_NOVA_LINT_DIAG_H_

#include <string>
#include <vector>

namespace nova::lint {

// One rule violation at a source location. `line` is 1-based.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;

  bool operator==(const Finding&) const = default;
};

using Findings = std::vector<Finding>;

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_DIAG_H_
