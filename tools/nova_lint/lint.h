// The nova-lint driver: file collection, rule execution, suppression
// filtering and output formatting. Kept separate from main() so the test
// suite can run the whole pipeline in-process on fixture snippets.
#ifndef TOOLS_NOVA_LINT_LINT_H_
#define TOOLS_NOVA_LINT_LINT_H_

#include <string>
#include <vector>

#include "tools/nova_lint/diag.h"
#include "tools/nova_lint/rule.h"
#include "tools/nova_lint/source.h"

namespace nova::lint {

struct LintResult {
  Findings findings;     // sorted by (file, line, rule); suppressions applied
  int files_scanned = 0;
  int suppressed = 0;    // findings dropped by allow()/allow-file()
};

// Recursively collects .h/.hpp/.cc/.cpp files under each path (a path
// that is itself a file is taken as-is), sorted for determinism.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths);

// Runs `rules` over `files`. The model is built from the same file set,
// so invocations should include src/ for full enum / API knowledge.
LintResult RunLint(const std::vector<SourceFile>& files,
                   const std::vector<std::unique_ptr<Rule>>& rules);

// Human-readable report: one `file:line: [rule] message` per finding
// plus a trailing summary line.
std::string FormatText(const LintResult& result);

// Machine-readable report:
//   {"findings":[{"rule":…,"file":…,"line":N,"message":…}],
//    "count":N,"suppressed":N,"files_scanned":N}
std::string FormatJson(const LintResult& result);

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_LINT_H_
