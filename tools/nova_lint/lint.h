// The nova-lint driver: file collection, rule execution, suppression
// filtering and output formatting. Kept separate from main() so the test
// suite can run the whole pipeline in-process on fixture snippets.
//
// Execution is parallel: files are lexed and scope-walked by a thread
// pool, the project model is built once from the shared tokens, then the
// rules fan out over files again. Findings land in per-file slots and
// are merged with a deterministic (file, line, rule) sort, so the report
// is byte-identical at any thread count.
#ifndef TOOLS_NOVA_LINT_LINT_H_
#define TOOLS_NOVA_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "tools/nova_lint/diag.h"
#include "tools/nova_lint/rule.h"
#include "tools/nova_lint/source.h"

namespace nova::lint {

struct LintResult {
  Findings findings;     // sorted by (file, line, rule); suppressions applied
  int files_scanned = 0;
  int suppressed = 0;    // findings dropped by allow()/allow-file()
  int baselined = 0;     // findings dropped by the --baseline ratchet
  long wall_ms = 0;      // wall time of the lint run
};

// A scan root with an optional per-root rule restriction: findings from
// rules in `exclude` are not reported for files under `path`. Used to
// lint tests/tools/bench with the determinism rule off (their job is to
// poke the simulator from outside, wall clocks and all).
struct RootSpec {
  std::string path;
  std::set<std::string> exclude;
};

// Recursively collects .h/.hpp/.cc/.cpp files under each path (a path
// that is itself a file is taken as-is), sorted for determinism.
// Directories named `lint_fixtures` are skipped during recursion — they
// hold intentionally-violating rule fixtures and are only linted when
// passed explicitly.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths);

// Runs `rules` over `files` with `jobs` worker threads (<=0: one per
// hardware thread). The model is built from the same file set, so
// invocations should include src/ for full enum / API knowledge. `roots`
// maps each file to its longest-prefix root; files under no root get
// every rule.
LintResult RunLint(const std::vector<SourceFile>& files,
                   const std::vector<std::unique_ptr<Rule>>& rules,
                   int jobs = 0, const std::vector<RootSpec>& roots = {});

// Ratchet mode: drops findings whose "<rule> <file>" pair appears in
// `baseline_lines` (one pair per line, '#' comments ignored) and counts
// them in result->baselined. Returns the number dropped. Lets a new rule
// land with known-debt files without blocking CI while still failing on
// fresh findings.
int ApplyBaseline(LintResult* result,
                  const std::vector<std::string>& baseline_lines);

// Human-readable report: one `file:line: [rule] message` per finding
// plus a trailing summary line.
std::string FormatText(const LintResult& result);

// Machine-readable report:
//   {"findings":[{"rule":…,"file":…,"line":N,"message":…}],
//    "count":N,"suppressed":N,"baselined":N,"files_scanned":N,
//    "wall_ms":N}
std::string FormatJson(const LintResult& result);

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_LINT_H_
