#include "tools/nova_lint/lexer.h"

#include <cctype>

namespace nova::lint {
namespace {

bool IdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the rules rely on; longest match first.
const char* kPuncts[] = {
    "->*", "<<=", ">>=", "...", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

}  // namespace

Tokens Lex(const SourceFile& file) {
  const std::string& s = file.code();
  Tokens out;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == ' ' || c == '\t' || c == '\n') {
      ++i;
      continue;
    }
    const int line = file.LineOf(i);
    if (IdentStart(c)) {
      std::size_t j = i;
      while (j < s.size() && IdentCont(s[j])) ++j;
      out.push_back({TokKind::kIdent, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < s.size() &&
             (IdentCont(s[j]) || s[j] == '.' ||
              // Digit separator: 1'000'000 stays one number token.
              (s[j] == '\'' && j + 1 < s.size() && IdentCont(s[j + 1])) ||
              ((s[j] == '+' || s[j] == '-') && j > i &&
               (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                s[j - 1] == 'p' || s[j - 1] == 'P')))) {
      ++j;
      }
      out.push_back({TokKind::kNumber, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      if (s.compare(i, n, p) == 0) {
        out.push_back({TokKind::kPunct, p, line});
        i += n;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

int MatchForward(const Tokens& toks, int i) {
  if (i < 0 || i >= static_cast<int>(toks.size())) return -1;
  const std::string& open = toks[static_cast<std::size_t>(i)].text;
  std::string close;
  if (open == "(") close = ")";
  else if (open == "{") close = "}";
  else if (open == "[") close = "]";
  else if (open == "<") close = ">";
  else return -1;

  int depth = 0;
  for (int j = i; j < static_cast<int>(toks.size()); ++j) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (t.kind != TokKind::kPunct) {
      // Template argument lists contain only type-ish tokens; a ';' or
      // '{' before the close means this '<' was a comparison.
      continue;
    }
    if (open == "<" && (t.text == ";" || t.text == "{" || t.text == "&&" ||
                        t.text == "||")) {
      if (j > i) return -1;
    }
    if (t.text == open) ++depth;
    if (t.text == close && --depth == 0) return j;
    // '>>' closes two template levels.
    if (open == "<" && t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return j;
    }
  }
  return -1;
}

int MatchBackward(const Tokens& toks, int i) {
  if (i < 0 || i >= static_cast<int>(toks.size())) return -1;
  const std::string& close = toks[static_cast<std::size_t>(i)].text;
  std::string open;
  if (close == ")") open = "(";
  else if (close == "}") open = "{";
  else if (close == "]") open = "[";
  else return -1;

  int depth = 0;
  for (int j = i; j >= 0; --j) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == close) ++depth;
    if (t.text == open && --depth == 0) return j;
  }
  return -1;
}

bool IsIdent(const Tokens& toks, int i, const char* text) {
  return i >= 0 && i < static_cast<int>(toks.size()) &&
         toks[static_cast<std::size_t>(i)].kind == TokKind::kIdent &&
         toks[static_cast<std::size_t>(i)].text == text;
}

bool IsPunct(const Tokens& toks, int i, const char* text) {
  return i >= 0 && i < static_cast<int>(toks.size()) &&
         toks[static_cast<std::size_t>(i)].kind == TokKind::kPunct &&
         toks[static_cast<std::size_t>(i)].text == text;
}

}  // namespace nova::lint
