// Balanced-brace scope walker: the token-level structure layer between
// the lexer and the cross-TU rules.
//
// Where the lexer sees a flat token stream, the walker recovers just
// enough C++ structure for whole-project analysis: which tokens form a
// function body (and what that function is called), which class a body
// belongs to, where a parameter list starts and ends. It is not a parser
// — like the lexer it only has to be right for this repository's idioms
// (out-of-line `Cls::Method` definitions, in-class bodies, constructor
// init lists, trailing const/noexcept/override) — but it is what lets a
// rule ask "is this use inside a function that charged mdb_lock_?"
// instead of pattern-matching single lines.
#ifndef TOOLS_NOVA_LINT_SCOPE_H_
#define TOOLS_NOVA_LINT_SCOPE_H_

#include <string>
#include <vector>

#include "tools/nova_lint/lexer.h"

namespace nova::lint {

// One function (or method / constructor / destructor) *definition*:
// declarations without bodies are not recorded.
struct FuncScope {
  std::string name;       // unqualified; "~Cls" for destructors
  std::string qualifier;  // enclosing class, from `Cls::` or the class body
  int line = 0;           // line of the name token
  int params_open = -1;   // token index of '(' … ')' of the parameter list
  int params_close = -1;
  int body_open = -1;     // token index of '{' … '}' of the body
  int body_close = -1;
};

// One class/struct *definition* body (forward declarations excluded).
struct ClassScope {
  std::string name;
  int line = 0;
  int body_open = -1;
  int body_close = -1;
};

// All function and class definition scopes of one token stream, in
// source order. Nested definitions (local structs, their methods) are
// all reported; use InnermostFunction for containment queries.
struct FileScopes {
  std::vector<FuncScope> functions;
  std::vector<ClassScope> classes;
};

FileScopes BuildFileScopes(const Tokens& toks);

// Index into `scopes.functions` of the innermost function whose body
// contains token `tok_idx`, or -1 when the token is at namespace/class
// scope. O(#functions) per query.
int InnermostFunction(const FileScopes& scopes, int tok_idx);

// Index of the innermost class whose body contains `tok_idx`, or -1.
int InnermostClass(const FileScopes& scopes, int tok_idx);

// Splits the argument tokens of the call whose '(' (or brace init's '{')
// sits at `open` into top-level comma-separated ranges. Each pair is
// [first, last) in token indices; empty when the list is `()`.
std::vector<std::pair<int, int>> SplitTopLevelArgs(const Tokens& toks,
                                                   int open);

}  // namespace nova::lint

#endif  // TOOLS_NOVA_LINT_SCOPE_H_
