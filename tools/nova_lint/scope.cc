#include "tools/nova_lint/scope.h"

#include <algorithm>

namespace nova::lint {
namespace {

// Keywords that look like `name (` but never open a function definition.
bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "catch" || s == "do" ||
         s == "alignof" || s == "decltype" || s == "defined" ||
         s == "static_assert" || s == "noexcept" || s == "alignas";
}

bool TokIs(const Tokens& toks, int i, TokKind kind) {
  return i >= 0 && i < static_cast<int>(toks.size()) &&
         toks[static_cast<std::size_t>(i)].kind == kind;
}

const Token& At(const Tokens& toks, int i) {
  return toks[static_cast<std::size_t>(i)];
}

// Skips one balanced template argument group starting at a '<'; returns
// the index after '>', or `i` unchanged when the '<' is a comparison.
int SkipTemplateArgs(const Tokens& toks, int i) {
  if (!IsPunct(toks, i, "<")) return i;
  const int close = MatchForward(toks, i);
  return close < 0 ? i : close + 1;
}

// After the ')' of a candidate parameter list: walk over trailing
// qualifiers (const, noexcept, override, final), a trailing return type,
// and a constructor init list. Returns the token index of the body '{',
// or -1 when this declarator has no body (pure declaration, = default,
// member initializer that merely *looks* like a parameter list, ...).
int FindBodyBrace(const Tokens& toks, int close) {
  const int n = static_cast<int>(toks.size());
  int j = close + 1;
  for (int guard = 0; j < n && guard < 64; ++guard) {
    if (IsPunct(toks, j, "{")) return j;
    if (IsPunct(toks, j, ";") || IsPunct(toks, j, "=") ||
        IsPunct(toks, j, ",") || IsPunct(toks, j, ")")) {
      return -1;
    }
    if (IsIdent(toks, j, "const") || IsIdent(toks, j, "override") ||
        IsIdent(toks, j, "final") || IsIdent(toks, j, "noexcept")) {
      ++j;
      if (IsPunct(toks, j, "(")) {  // noexcept(expr)
        const int c = MatchForward(toks, j);
        if (c < 0) return -1;
        j = c + 1;
      }
      continue;
    }
    if (IsPunct(toks, j, "->")) {  // trailing return type
      ++j;
      while (j < n && !IsPunct(toks, j, "{") && !IsPunct(toks, j, ";")) {
        if (IsPunct(toks, j, "<")) {
          const int after = SkipTemplateArgs(toks, j);
          if (after != j) {
            j = after;
            continue;
          }
        }
        ++j;
      }
      continue;
    }
    if (IsPunct(toks, j, ":")) {  // constructor init list
      ++j;
      while (j < n) {
        // Member name, possibly qualified/templated, then (args) or {args}.
        while (TokIs(toks, j, TokKind::kIdent) || IsPunct(toks, j, "::")) ++j;
        j = SkipTemplateArgs(toks, j);
        if (!IsPunct(toks, j, "(") && !IsPunct(toks, j, "{")) return -1;
        const int c = MatchForward(toks, j);
        if (c < 0) return -1;
        j = c + 1;
        if (IsPunct(toks, j, ",")) {
          ++j;
          continue;
        }
        return IsPunct(toks, j, "{") ? j : -1;
      }
      return -1;
    }
    return -1;  // anything else: not a definition
  }
  return -1;
}

}  // namespace

FileScopes BuildFileScopes(const Tokens& toks) {
  FileScopes out;
  const int n = static_cast<int>(toks.size());

  // Pass 1: class/struct definition bodies.
  for (int i = 0; i < n; ++i) {
    if (!TokIs(toks, i, TokKind::kIdent)) continue;
    const std::string& kw = At(toks, i).text;
    if (kw != "class" && kw != "struct") continue;
    if (IsIdent(toks, i - 1, "enum")) continue;  // enum class: not a scope
    int j = i + 1;
    while (IsPunct(toks, j, "[")) {  // [[attributes]]
      const int c = MatchForward(toks, j);
      if (c < 0) break;
      j = c + 1;
    }
    if (!TokIs(toks, j, TokKind::kIdent)) continue;  // anonymous
    ClassScope cls;
    cls.name = At(toks, j).text;
    cls.line = At(toks, j).line;
    ++j;
    if (IsIdent(toks, j, "final")) ++j;
    if (IsPunct(toks, j, ":")) {  // base clause, may contain templates
      ++j;
      while (j < n && !IsPunct(toks, j, "{") && !IsPunct(toks, j, ";") &&
             !IsPunct(toks, j, ")") && !IsPunct(toks, j, ">") &&
             !IsPunct(toks, j, ",")) {
        if (IsPunct(toks, j, "<")) {
          const int after = SkipTemplateArgs(toks, j);
          if (after != j) {
            j = after;
            continue;
          }
        }
        ++j;
      }
    }
    if (!IsPunct(toks, j, "{")) continue;  // fwd decl / template param
    const int body_close = MatchForward(toks, j);
    if (body_close < 0) continue;
    cls.body_open = j;
    cls.body_close = body_close;
    out.classes.push_back(std::move(cls));
  }

  // Pass 2: function definitions, keyed on `name ( params ) ... {`.
  for (int i = 0; i < n; ++i) {
    if (!IsPunct(toks, i, "(")) continue;

    // The name directly before the parameter list: an identifier, an
    // `operator` overload (operator> etc.), or a destructor.
    int name_idx = i - 1;
    std::string name;
    if (TokIs(toks, name_idx, TokKind::kIdent)) {
      name = At(toks, name_idx).text;
      if (IsControlKeyword(name) || name == "operator") continue;
    } else if (TokIs(toks, name_idx, TokKind::kPunct) &&
               IsIdent(toks, name_idx - 1, "operator")) {
      name = "operator" + At(toks, name_idx).text;
      name_idx = name_idx - 1;
    } else {
      continue;  // lambda, cast, parenthesized expression
    }

    const int close = MatchForward(toks, i);
    if (close < 0) continue;
    const int body_open = FindBodyBrace(toks, close);
    if (body_open < 0) continue;
    const int body_close = MatchForward(toks, body_open);
    if (body_close < 0) continue;

    FuncScope fn;
    fn.line = At(toks, name_idx).line;
    fn.params_open = i;
    fn.params_close = close;
    fn.body_open = body_open;
    fn.body_close = body_close;

    // Destructor / out-of-line qualifier.
    int before = name_idx - 1;
    if (IsPunct(toks, before, "~")) {
      name = "~" + name;
      --before;
    }
    fn.name = std::move(name);
    if (IsPunct(toks, before, "::") &&
        TokIs(toks, before - 1, TokKind::kIdent)) {
      fn.qualifier = At(toks, before - 1).text;
    }
    out.functions.push_back(std::move(fn));
  }
  std::sort(out.functions.begin(), out.functions.end(),
            [](const FuncScope& a, const FuncScope& b) {
              return a.body_open < b.body_open;
            });

  // In-class definitions have no `Cls::` prefix; take the innermost
  // enclosing class body as the qualifier.
  for (FuncScope& fn : out.functions) {
    if (!fn.qualifier.empty()) continue;
    const int cls = InnermostClass(out, fn.body_open);
    if (cls >= 0) {
      fn.qualifier = out.classes[static_cast<std::size_t>(cls)].name;
    }
  }
  return out;
}

int InnermostFunction(const FileScopes& scopes, int tok_idx) {
  int best = -1;
  for (int k = 0; k < static_cast<int>(scopes.functions.size()); ++k) {
    const FuncScope& f = scopes.functions[static_cast<std::size_t>(k)];
    if (f.body_open < tok_idx && tok_idx < f.body_close &&
        (best < 0 ||
         f.body_open > scopes.functions[static_cast<std::size_t>(best)]
                           .body_open)) {
      best = k;
    }
  }
  return best;
}

int InnermostClass(const FileScopes& scopes, int tok_idx) {
  int best = -1;
  for (int k = 0; k < static_cast<int>(scopes.classes.size()); ++k) {
    const ClassScope& c = scopes.classes[static_cast<std::size_t>(k)];
    if (c.body_open < tok_idx && tok_idx < c.body_close &&
        (best < 0 ||
         c.body_open >
             scopes.classes[static_cast<std::size_t>(best)].body_open)) {
      best = k;
    }
  }
  return best;
}

std::vector<std::pair<int, int>> SplitTopLevelArgs(const Tokens& toks,
                                                   int open) {
  std::vector<std::pair<int, int>> out;
  const int close = MatchForward(toks, open);
  if (close < 0 || close == open + 1) return out;
  int start = open + 1;
  int depth = 0;
  for (int j = open + 1; j < close; ++j) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") {
      const int after = SkipTemplateArgs(toks, j);
      if (after != j) j = after - 1;
      continue;
    }
    if (t.text == "(" || t.text == "{" || t.text == "[") ++depth;
    if (t.text == ")" || t.text == "}" || t.text == "]") --depth;
    if (t.text == "," && depth == 0) {
      out.emplace_back(start, j);
      start = j + 1;
    }
  }
  out.emplace_back(start, close);
  return out;
}

}  // namespace nova::lint
