// Rule 11 `lock-discipline`: a static race detector for the SMP model.
//
// Members annotated `// guarded-by(<lock>)` on their declaration are
// shared mutable kernel state reachable from any CPU. Every use of such
// a member must sit inside a function that charges the named KernelLock
// via Hypervisor::ChargeLock (the repo's contention-charge model — a
// charge anywhere in the body covers the body, there is no RAII scope),
// or belong to per-CPU code (hv::CpuState / RunQueue methods), which
// rule 8 already confines to the owning core. The annotations live in
// headers and the uses in .cc files, so the check leans on the
// whole-project member index; lock charges are read off the per-file
// scope walk. Single-threaded phases (Boot, teardown, quiesced
// snapshots) are vetted with justified allow() comments.
#include <map>
#include <string>
#include <vector>

#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

// Per-CPU owner types: code inside these classes runs confined to one
// core by construction (rule 8), so no cross-core lock is needed.
bool IsPerCpuOwner(const std::string& qualifier) {
  return qualifier == "CpuState" || qualifier == "RunQueue";
}

class LockDisciplineRule final : public Rule {
 public:
  const char* name() const override { return "lock-discipline"; }
  const char* summary() const override {
    return "guarded-by(<lock>) members are only touched under a matching "
           "ChargeLock or from per-CPU code";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    const Tokens& toks = ctx.toks;
    if (model.members.empty()) return;

    // Guarded member name -> the locks that may guard it (same-named
    // members in different classes can name different locks).
    std::map<std::string, std::vector<const MemberDecl*>> guarded;
    for (const MemberDecl* m : model.GuardedMembers()) {
      guarded[m->name].push_back(m);
    }
    if (guarded.empty()) return;

    const int n = static_cast<int>(toks.size());
    for (int i = 0; i < n; ++i) {
      const Token& t = toks[static_cast<std::size_t>(i)];
      if (t.kind != TokKind::kIdent) continue;
      const auto it = guarded.find(t.text);
      if (it == guarded.end()) continue;

      // The declaration itself (and its census comments) is not a use.
      bool is_decl = false;
      for (const MemberDecl* m : it->second) {
        if (m->file == file.path() && m->line == t.line) is_decl = true;
      }
      if (is_decl) continue;

      const int fn = InnermostFunction(ctx.scopes, i);
      if (fn < 0) continue;  // declaration/initializer context
      const FuncScope& scope =
          ctx.scopes.functions[static_cast<std::size_t>(fn)];
      if (IsPerCpuOwner(scope.qualifier)) continue;

      const FuncDef* def = model.FunctionAt(file.path(), scope.line);
      bool locked = false;
      if (def != nullptr) {
        for (const MemberDecl* m : it->second) {
          if (def->locks.count(m->guarded_by) != 0) locked = true;
        }
      }
      if (locked) continue;

      const std::string lock = it->second.front()->guarded_by;
      out->push_back(
          {name(), file.path(), t.line,
           "'" + t.text + "' is guarded-by(" + lock + ") but '" +
               (scope.qualifier.empty() ? scope.name
                                        : scope.qualifier + "::" + scope.name) +
               "' does not charge it and is not per-CPU code"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLockDisciplineRule() {
  return std::make_unique<LockDisciplineRule>();
}

}  // namespace nova::lint
