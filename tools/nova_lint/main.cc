// nova-lint — project-invariant static analysis for the NOVA repro.
//
//   nova_lint [--json] [--rule=<name>]... [--list-rules] [--jobs=<n>]
//             [--roots=<spec>] [--baseline=<file>] <path>...
//
// Scans the given files/directories, runs every registered rule (or the
// --rule subset) and prints findings. Exit code: 0 clean, 1 findings,
// 2 usage or I/O error. Suppress a finding in source with
//   // nova-lint: allow(<rule>)           (this or the next line)
//   // nova-lint: allow-file(<rule>)      (whole file)
//
// --roots takes `path[=-rule[,-rule...]]` entries joined with ';' and
// both scans the paths and restricts rules per root, e.g.
//   --roots='src;tests=-determinism;tools=-determinism'
// lints all three trees but keeps the determinism rule (which only
// fires inside src/ layers anyway) off the test and tool code.
//
// --baseline is a ratchet: the file holds one `<rule> <file>` pair per
// line ('#' comments allowed); matching findings are reported in the
// summary as baselined but do not fail the run, so a new rule can land
// with known debt without blocking CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "tools/nova_lint/lint.h"
#include "tools/nova_lint/rule.h"

namespace {

// Parses `path[=-rule,...][;path...]` into RootSpecs.
bool ParseRoots(const std::string& spec,
                std::vector<nova::lint::RootSpec>* out) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    nova::lint::RootSpec root;
    const std::size_t eq = entry.find('=');
    root.path = entry.substr(0, eq);
    if (root.path.empty()) return false;
    // Normalize away a trailing '/' so prefix matching is exact.
    while (root.path.size() > 1 && root.path.back() == '/') {
      root.path.pop_back();
    }
    if (eq != std::string::npos) {
      std::string name;
      auto flush = [&] {
        if (name.empty()) return true;
        if (name[0] != '-' || name.size() < 2) return false;
        root.exclude.insert(name.substr(1));
        name.clear();
        return true;
      };
      for (std::size_t i = eq + 1; i < entry.size(); ++i) {
        if (entry[i] == ',') {
          if (!flush()) return false;
        } else {
          name += entry[i];
        }
      }
      if (!flush()) return false;
    }
    out->push_back(std::move(root));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nova::lint;

  bool json = false;
  bool list_rules = false;
  int jobs = 0;
  std::vector<std::string> rule_filter;
  std::vector<std::string> paths;
  std::vector<RootSpec> roots;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      rule_filter.push_back(arg.substr(7));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--roots=", 0) == 0) {
      if (!ParseRoots(arg.substr(8), &roots)) {
        std::fprintf(stderr, "nova_lint: bad --roots spec '%s'\n",
                     arg.c_str() + 8);
        return 2;
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: nova_lint [--json] [--rule=<name>]... [--list-rules]\n"
          "                 [--jobs=<n>] [--roots=<spec>]\n"
          "                 [--baseline=<file>] <path>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "nova_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  for (const RootSpec& r : roots) {
    paths.push_back(r.path);
  }

  std::vector<std::unique_ptr<Rule>> rules = AllRules();
  if (list_rules) {
    for (const auto& r : rules) {
      std::printf("%-20s %s\n", r->name(), r->summary());
    }
    return 0;
  }
  if (!rule_filter.empty()) {
    std::vector<std::unique_ptr<Rule>> kept;
    for (auto& r : rules) {
      for (const std::string& want : rule_filter) {
        if (want == r->name()) {
          kept.push_back(std::move(r));
          break;
        }
      }
    }
    if (kept.empty()) {
      std::fprintf(stderr, "nova_lint: no rule matches the --rule filter\n");
      return 2;
    }
    rules = std::move(kept);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "nova_lint: no input paths (try --help)\n");
    return 2;
  }

  const std::vector<std::string> names = CollectFiles(paths);
  if (names.empty()) {
    std::fprintf(stderr, "nova_lint: no source files under given paths\n");
    return 2;
  }
  std::vector<SourceFile> files;
  files.reserve(names.size());
  for (const std::string& n : names) {
    auto f = SourceFile::Load(n);
    if (!f) {
      std::fprintf(stderr, "nova_lint: cannot read '%s'\n", n.c_str());
      return 2;
    }
    files.push_back(std::move(*f));
  }

  LintResult result = RunLint(files, rules, jobs, roots);
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "nova_lint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) {
      lines.push_back(line);
    }
    ApplyBaseline(&result, lines);
  }
  const std::string report = json ? FormatJson(result) : FormatText(result);
  std::fputs(report.c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
