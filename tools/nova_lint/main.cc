// nova-lint — project-invariant static analysis for the NOVA repro.
//
//   nova_lint [--json] [--rule=<name>]... [--list-rules] <path>...
//
// Scans the given files/directories, runs every registered rule (or the
// --rule subset) and prints findings. Exit code: 0 clean, 1 findings,
// 2 usage or I/O error. Suppress a finding in source with
//   // nova-lint: allow(<rule>)           (this or the next line)
//   // nova-lint: allow-file(<rule>)      (whole file)
#include <cstdio>
#include <string>
#include <vector>

#include "tools/nova_lint/lint.h"
#include "tools/nova_lint/rule.h"

int main(int argc, char** argv) {
  using namespace nova::lint;

  bool json = false;
  bool list_rules = false;
  std::vector<std::string> rule_filter;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      rule_filter.push_back(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: nova_lint [--json] [--rule=<name>]... [--list-rules] "
          "<path>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "nova_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<std::unique_ptr<Rule>> rules = AllRules();
  if (list_rules) {
    for (const auto& r : rules) {
      std::printf("%-20s %s\n", r->name(), r->summary());
    }
    return 0;
  }
  if (!rule_filter.empty()) {
    std::vector<std::unique_ptr<Rule>> kept;
    for (auto& r : rules) {
      for (const std::string& want : rule_filter) {
        if (want == r->name()) {
          kept.push_back(std::move(r));
          break;
        }
      }
    }
    if (kept.empty()) {
      std::fprintf(stderr, "nova_lint: no rule matches the --rule filter\n");
      return 2;
    }
    rules = std::move(kept);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "nova_lint: no input paths (try --help)\n");
    return 2;
  }

  const std::vector<std::string> names = CollectFiles(paths);
  if (names.empty()) {
    std::fprintf(stderr, "nova_lint: no source files under given paths\n");
    return 2;
  }
  std::vector<SourceFile> files;
  files.reserve(names.size());
  for (const std::string& n : names) {
    auto f = SourceFile::Load(n);
    if (!f) {
      std::fprintf(stderr, "nova_lint: cannot read '%s'\n", n.c_str());
      return 2;
    }
    files.push_back(std::move(*f));
  }

  const LintResult result = RunLint(files, rules);
  const std::string report = json ? FormatJson(result) : FormatText(result);
  std::fputs(report.c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
