// per-cpu-state: per-core kernel state touched without naming the core.
//
// Motivating contract: the multicore refactor keys every ready queue,
// current-SC slot and halted-vCPU list by core (Kernel::CpuState). Any
// function that reaches into that state must say *which* core it operates
// on — by taking an explicit cpu id parameter, or an Sc*/Ec* whose home
// core it uses. A function that grabs `cpu_state(...)`/`cpu_states_`
// without such a parameter is almost always smuggling in an ambient
// "current CPU" assumption left over from the single-core kernel, which
// is exactly the bug class this refactor removes. Machine-wide scans
// (the device-time floor, the idle check) are legitimate and annotate
// themselves with `// nova-lint: allow(per-cpu-state)`.
//
// Scope: src/hv only — that is where CpuState lives.
#include <cctype>
#include <string>

#include "tools/nova_lint/lexer.h"
#include "tools/nova_lint/rule.h"

namespace nova::lint {
namespace {

bool NameMentionsCpu(const std::string& ident) {
  std::string lower;
  lower.reserve(ident.size());
  for (char c : ident) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("cpu") != std::string::npos;
}

// True when the parameter list toks[open+1, close) names a core: a
// parameter whose name or type mentions "cpu" (cpu_id, vcpu, ...), or an
// Sc*/Ec* parameter (those objects carry their home core).
bool ParamsNameACore(const Tokens& toks, int open, int close) {
  for (int i = open + 1; i < close; ++i) {
    const Token& t = toks[static_cast<std::size_t>(i)];
    if (t.kind != TokKind::kIdent) continue;
    if (NameMentionsCpu(t.text)) return true;
    if ((t.text == "Sc" || t.text == "Ec") && IsPunct(toks, i + 1, "*")) {
      return true;
    }
  }
  return false;
}

// Finds the parameter list of the function enclosing token `i`.
// Walks outward over enclosing '{'s; for each, checks whether it opens a
// function body (the tokens before it end in a ')' — possibly through
// const/noexcept/override and a constructor init list). Returns true with
// *open/*close set to the parameter parens, false when token `i` is not
// inside a function body (e.g. a member declaration at class scope).
bool EnclosingFunctionParams(const Tokens& toks, int i, int* open, int* close) {
  int depth = 0;
  for (int j = i - 1; j >= 0; --j) {
    const Token& t = toks[static_cast<std::size_t>(j)];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "}") { ++depth; continue; }
    if (t.text != "{") continue;
    if (depth > 0) { --depth; continue; }
    // Enclosing '{' at j. Look backwards for the param-list ')'.
    int k = j - 1;
    while (k >= 0 &&
           (IsIdent(toks, k, "const") || IsIdent(toks, k, "noexcept") ||
            IsIdent(toks, k, "override") || IsIdent(toks, k, "final"))) {
      --k;
    }
    // Hop over a constructor init list: `) : a_(x), b_(y) {`.
    while (k >= 0 && IsPunct(toks, k, ")")) {
      const int o = MatchBackward(toks, k);
      if (o < 0) return false;
      // `ident (` preceded by ':' or ',' is an initializer, keep hopping;
      // otherwise this is the parameter list itself.
      const int before_name = o - 2;  // o-1 is the initializer/function name
      if (o >= 1 && toks[static_cast<std::size_t>(o - 1)].kind == TokKind::kIdent &&
          before_name >= 0 &&
          (IsPunct(toks, before_name, ":") || IsPunct(toks, before_name, ","))) {
        k = before_name - (IsPunct(toks, before_name, ",") ? 0 : 1);
        // Continue scanning left of the ':'/',' for the next ')'.
        while (k >= 0 && !IsPunct(toks, k, ")")) --k;
        continue;
      }
      *open = o;
      *close = k;
      return true;
    }
    // Enclosing brace is not a function body (class/namespace/initializer
    // braces): keep walking outwards.
  }
  return false;
}

class PerCpuStateRule : public Rule {
 public:
  const char* name() const override { return "per-cpu-state"; }
  const char* summary() const override {
    return "per-CPU kernel state accessed without an explicit core";
  }

  void Check(const FileCtx& ctx, const ProjectModel& model,
             Findings* out) const override {
    const SourceFile& file = ctx.file;
    (void)model;
    if (file.path().find("src/hv/") == std::string::npos) return;

    const Tokens& toks = ctx.toks;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i < n; ++i) {
      const bool member = IsIdent(toks, i, "cpu_states_");
      const bool accessor =
          IsIdent(toks, i, "cpu_state") && IsPunct(toks, i + 1, "(");
      if (!member && !accessor) continue;

      int open = -1, close = -1;
      if (!EnclosingFunctionParams(toks, i, &open, &close)) {
        // Class-scope declaration (or the accessor's own signature), not
        // an access.
        continue;
      }
      if (ParamsNameACore(toks, open, close)) continue;
      out->push_back(
          {name(), file.path(), toks[static_cast<std::size_t>(i)].line,
           "per-CPU kernel state accessed in a function without an "
           "explicit cpu id or Sc*/Ec* parameter; thread the core through "
           "the signature (or annotate a machine-wide scan with allow())"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakePerCpuStateRule() {
  return std::make_unique<PerCpuStateRule>();
}

}  // namespace nova::lint
