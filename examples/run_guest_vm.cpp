// Run a fully virtualized guest operating system.
//
// Builds the complete NOVA stack — microhypervisor, root partition
// manager, user-level disk server, one user-level VMM — and boots a
// synthetic guest OS in a VM: virtual BIOS services, virtual serial
// console, virtual timer with interrupt injection, and disk I/O through
// the virtual AHCI controller and the disk server (Figure 4's full path).
#include <cstdio>

#include "src/guest/driver_ahci.h"
#include "src/guest/kernel.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

using namespace nova;

int main() {
  root::NovaSystem system;
  auto& disk_server = system.StartDiskServer();

  // Some "files" on the host disk.
  const char motd[] = "Welcome to the NOVA guest!";
  system.platform.disk->WriteContent(200 * hw::kSectorSize, motd, sizeof(motd));

  vmm::VmmConfig config;
  config.name = "demo";
  config.guest_mem_bytes = 64ull << 20;
  vmm::Vmm vm(&system.hv, system.root.get(), config);
  vm.ConnectDiskServer(&disk_server);
  vm.SetBootDisk(system.platform.disk);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 64ull << 20, .timer_hz = 100});
  gk.BuildStandardHandlers();

  // Guest disk driver against the virtual AHCI controller.
  guest::GuestAhciDriver driver(
      &gk, guest::GuestAhciDriver::Config{
               .mmio_base = vmm::vahci::kMmioBase,
               .irq_vector = vmm::vahci::kVector,
               .read_ci = [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm.vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
               }});

  // Guest program: print via the virtual serial port, read the message of
  // the day from disk through the driver, then idle.
  bool disk_done = false;
  driver.EmitIsr([&](int) { disk_done = true; });
  const std::uint32_t print_motd = gk.mux().Register([&](hw::GuestState&) {
    char buf[64] = {};
    vm.ReadGuest(guest::GuestLayout::kDmaBase, buf, sizeof(buf) - 1);
    std::printf("guest read from virtual disk: \"%s\"\n", buf);
  });

  hw::isa::Assembler& as = gk.text();
  const std::uint64_t main_gva = as.Here();
  driver.EmitInit();
  for (const char c : std::string("guest console: hello!\n")) {
    as.MovImm(1, static_cast<std::uint64_t>(c));
    as.Out(vmm::vuart::kData, 1);
  }
  // Read one sector (the MOTD) at LBA 200 into the DMA buffer.
  as.MovImm(1, 200);
  as.MovImm(2, 1);
  as.MovImm(3, guest::GuestLayout::kDmaBase);
  driver.EmitIssueSequence();
  as.GuestLogic(gk.mux().Register([&](hw::GuestState& gs) {
    gs.regs[0] = disk_done ? 1 : 0;  // Poll flag for the wait loop.
  }));
  const std::uint64_t wait = as.Here() - hw::isa::kInsnSize;
  as.Jnz(0, as.Here() + 2 * hw::isa::kInsnSize);
  as.Jmp(wait);
  as.GuestLogic(print_motd);
  gk.EmitIdleLoop();

  gk.EmitBoot(main_gva);
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  // Let the machine run for 100 simulated milliseconds.
  system.hv.RunUntil(sim::Milliseconds(100));

  std::printf("guest console output: %s", vm.vuart().output().c_str());
  std::printf("timer ticks injected into the guest: %llu\n",
              (unsigned long long)gk.ticks());
  std::printf("VM exits handled by the user-level VMM: %llu\n",
              (unsigned long long)vm.exits_handled());
  std::printf("disk server: %llu requests issued, %llu completed\n",
              (unsigned long long)disk_server.requests_issued(),
              (unsigned long long)disk_server.requests_completed());
  std::printf("event counts: PIO=%llu MMIO=%llu HLT=%llu Recall=%llu\n",
              (unsigned long long)system.hv.EventCount("Port I/O"),
              (unsigned long long)system.hv.EventCount("Memory-Mapped I/O"),
              (unsigned long long)system.hv.EventCount("HLT"),
              (unsigned long long)system.hv.EventCount("Recall"));
  return 0;
}
