// Quickstart: the microhypervisor's public API in one file.
//
// Boots the microhypervisor, lets the root partition manager create two
// protection domains, wires a portal between them, sends a message with a
// typed delegation item, and demonstrates recursive revocation — the five
// kernel object types and the least-privilege machinery of §5/§6.
#include <cstdio>

#include "src/hv/kernel.h"
#include "src/hw/machine.h"

using namespace nova;

int main() {
  // 1. A machine and the microhypervisor on top of it.
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 512ull << 20});
  hv::Hypervisor hypervisor(&machine);
  hv::Pd* root = hypervisor.Boot();
  std::printf("booted: root partition manager owns %zu MDB nodes\n",
              hypervisor.mdb().node_count());

  // 2. Two protection domains: a client and a server.
  hv::Pd* server = nullptr;
  hv::Pd* client = nullptr;
  (void)hypervisor.CreatePd(root, 100, "server", /*is_vm=*/false, &server);
  (void)hypervisor.CreatePd(root, 101, "client", /*is_vm=*/false, &client);

  // 3. A portal into the server: the only way in. Its handler echoes the
  //    message and counts invocations.
  int calls = 0;
  hv::Ec* handler = nullptr;
  (void)hypervisor.CreateEcLocal(root, 110, /*pd_sel=*/100, /*cpu=*/0,
                           [&](std::uint64_t portal_id) {
                             ++calls;
                             hv::Utcb& u = handler->utcb();
                             std::printf("  server: portal %llu, %u words, "
                                         "first=0x%llx\n",
                                         (unsigned long long)portal_id, u.untyped,
                                         (unsigned long long)u.words[0]);
                             u.words[0] += 1;  // Reply: increment.
                           },
                           &handler);
  (void)hypervisor.CreatePt(root, 111, 110, /*mtd=*/0, /*id=*/7);

  // 4. Hand the client a capability to the portal — nothing else. The
  //    client cannot name any other object in the system.
  (void)hypervisor.Delegate(root, 101, hv::Crd::Obj(111, 0, hv::perm::kCall), 50);

  hv::Ec* client_ec = nullptr;
  (void)hypervisor.CreateEcGlobal(root, 112, 101, 0, [] {}, &client_ec);
  (void)hypervisor.CreateSc(root, 113, 112, /*prio=*/5, /*quantum=*/1'000'000);

  // 5. IPC: call through the portal; the reply lands in the same UTCB.
  client_ec->utcb().untyped = 1;
  client_ec->utcb().words[0] = 0x41;
  const Status s = hypervisor.Call(client_ec, 50);
  std::printf("client: call -> %s, reply word 0x%llx (calls seen: %d)\n",
              StatusName(s), (unsigned long long)client_ec->utcb().words[0],
              calls);

  // 6. Memory delegation with narrowing, then recursive revocation.
  const std::uint64_t page = (hypervisor.kernel_reserve() >> hw::kPageShift) + 64;
  (void)hypervisor.Delegate(root, 101, hv::Crd::Mem(page, 2, hv::perm::kRw), page);
  std::printf("delegated 4 pages rw to client; client holds them: %s\n",
              hypervisor.mdb().Find(client, hv::CrdKind::kMem, page, 4) ? "yes"
                                                                        : "no");
  (void)hypervisor.Revoke(root, hv::Crd::Mem(page, 2, hv::perm::kRw),
                    /*include_self=*/false);
  std::printf("after revoke, client holds them: %s\n",
              hypervisor.mdb().Find(client, hv::CrdKind::kMem, page, 4) ? "yes"
                                                                        : "no");

  // 7. Semaphores: the kernel's synchronization and interrupt primitive.
  (void)hypervisor.CreateSm(root, 120, 0);
  (void)hypervisor.Delegate(root, 101, hv::Crd::Obj(120, 0, hv::perm::kSmDown), 51);
  std::printf("semaphore down on empty semaphore: %s (client blocks)\n",
              hypervisor.SmDown(client_ec, 51) ==
                      hv::Hypervisor::DownResult::kBlocked
                  ? "blocked"
                  : "acquired");
  (void)hypervisor.SmUp(root, 120);
  std::printf("after up, client is runnable again: %s\n",
              client_ec->block_state() == hv::Ec::BlockState::kRunnable ? "yes"
                                                                        : "no");

  std::printf("\ncycles spent on cpu0: %llu (all kernel paths are charged)\n",
              (unsigned long long)machine.cpu(0).cycles());
  return 0;
}
