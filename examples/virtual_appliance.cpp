// Secure virtual appliance (§4): a prepackaged single-purpose guest — the
// paper's example is an online-banking appliance — running side by side
// with a big legacy guest. The appliance's trusted computing base is only
// the microhypervisor plus its own small VMM; the legacy VM and its VMM
// are not in it.
#include <cstdio>

#include "src/guest/kernel.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

using namespace nova;

namespace {

// Build a tiny appliance guest: it "seals" a transaction record by
// checksumming it and prints the result on its private console.
std::uint64_t BuildAppliance(guest::GuestKernel& gk, vmm::Vmm& vm) {
  const char record[] = "transfer:42;to:alice";
  vm.WriteGuest(0x20000, record, sizeof(record));

  hw::isa::Assembler& as = gk.text();
  const std::uint64_t main_gva = as.Here();
  // Checksum the record: 8-byte chunks, summed.
  as.MovImm(1, 0x20000);  // Cursor.
  as.MovImm(2, 0);        // Accumulator.
  as.MovImm(3, 4);        // Chunks.
  const std::uint64_t top = as.Load(4, 1, 0);
  as.AddReg(2, 4);
  as.AddImm(1, 8);
  as.Loop(3, top);
  as.StoreAbs(2, 0x21000);  // The "sealed" checksum.
  for (const char c : std::string("appliance: sealed\n")) {
    as.MovImm(1, static_cast<std::uint64_t>(c));
    as.Out(vmm::vuart::kData, 1);
  }
  gk.EmitIdleLoop();
  return main_gva;
}

}  // namespace

int main() {
  root::NovaSystem system(root::SystemConfig{
      .machine = {.cpus = {&hw::CoreI7_920(), &hw::CoreI7_920()},
                  .ram_size = 512ull << 20}});

  // The legacy VM (big, untrusted) on CPU 0.
  vmm::Vmm legacy(&system.hv, system.root.get(),
                  vmm::VmmConfig{.name = "legacy", .guest_mem_bytes = 128ull << 20});
  guest::GuestLogicMux legacy_mux;
  legacy_mux.Attach(system.hv.engine(0));
  guest::GuestKernel legacy_gk(
      &system.machine.mem(),
      [&](std::uint64_t gpa) { return legacy.GpaToHpa(gpa); }, &legacy_mux,
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20, .timer_hz = 250});
  legacy_gk.BuildStandardHandlers();
  hw::isa::Assembler& las = legacy_gk.text();
  const std::uint64_t legacy_main = las.Here();
  las.NopBlock(1000000);  // A busy legacy workload.
  las.Jmp(legacy_main);
  legacy_gk.EmitBoot(legacy_main);
  legacy_gk.Install();
  legacy_gk.PrimeState(legacy.gstate());
  (void)legacy.Start(legacy.gstate().rip);

  // The appliance on CPU 1: small guest, small VMM, higher priority.
  vmm::Vmm appliance(&system.hv, system.root.get(),
                     vmm::VmmConfig{.name = "appliance",
                                    .guest_mem_bytes = 8ull << 20,
                                    .first_cpu = 1,
                                    .prio = 10});
  guest::GuestLogicMux app_mux;
  app_mux.Attach(system.hv.engine(1));
  guest::GuestKernel app_gk(
      &system.machine.mem(),
      [&](std::uint64_t gpa) { return appliance.GpaToHpa(gpa); }, &app_mux,
      guest::GuestKernelConfig{.mem_bytes = 8ull << 20});
  app_gk.BuildStandardHandlers();
  const std::uint64_t app_main = BuildAppliance(app_gk, appliance);
  app_gk.EmitBoot(app_main);
  app_gk.Install();
  app_gk.PrimeState(appliance.gstate());
  (void)appliance.Start(appliance.gstate().rip);

  system.hv.RunUntil(sim::Milliseconds(30));

  std::uint64_t sealed = 0;
  appliance.ReadGuest(0x21000, &sealed, sizeof(sealed));
  std::printf("%s", appliance.vuart().output().c_str());
  std::printf("appliance sealed checksum: 0x%llx\n", (unsigned long long)sealed);
  std::printf("legacy guest executed %llu instructions concurrently\n",
              (unsigned long long)system.hv.engine(0).instructions());

  // The TCB story: the appliance's confidentiality depends on the
  // microhypervisor and its own VMM — not on the legacy stack.
  std::printf("\nTCB of the appliance VM:\n");
  std::printf("  microhypervisor (privileged)  — shared, minimal\n");
  std::printf("  appliance VMM (user level)    — private to this VM\n");
  std::printf("excluded: legacy VM, legacy VMM, disk/net servers.\n");
  return 0;
}
