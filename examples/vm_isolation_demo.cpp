// Security demonstration: the attacks of §4.2 and how the architecture
// contains them.
//
//  1. A hostile guest tries to escape its VM by writing to every
//     guest-physical address it can name — it only reaches its own memory.
//  2. A compromised VMM is "just an untrusted user application": it holds
//     capabilities for its own VM only, so a second VM is unaffected.
//  3. A hostile device driver programs its controller to DMA into the
//     hypervisor and into another domain's memory — the IOMMU blocks both.
#include <cstdio>

#include "src/guest/kernel.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

using namespace nova;

int main() {
  root::NovaSystem system;

  // --- Two VMs, one hostile, one victim -----------------------------------
  vmm::Vmm attacker_vm(&system.hv, system.root.get(),
                       vmm::VmmConfig{.name = "attacker"});
  vmm::Vmm victim_vm(&system.hv, system.root.get(),
                     vmm::VmmConfig{.name = "victim"});
  const char secret[] = "victim secret data";
  victim_vm.WriteGuest(0x5000, secret, sizeof(secret));

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&](std::uint64_t gpa) { return attacker_vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 64ull << 20});
  gk.BuildStandardHandlers();

  hw::isa::Assembler& as = gk.text();
  const std::uint64_t main_gva = as.Here();
  as.MovImm(0, 0x41414141);
  // Scribble far beyond the 64 MiB the attacker was delegated.
  for (std::uint64_t gpa = 64ull << 20; gpa < (72ull << 20); gpa += (1ull << 20)) {
    as.StoreAbs(0, gpa);
  }
  gk.EmitIdleLoop();
  gk.EmitBoot(main_gva);
  gk.Install();
  gk.PrimeState(attacker_vm.gstate());
  (void)attacker_vm.Start(attacker_vm.gstate().rip);

  system.hv.RunUntil(sim::Milliseconds(20));

  char check[sizeof(secret)] = {};
  victim_vm.ReadGuest(0x5000, check, sizeof(check));
  std::printf("[guest attack] hostile stores beyond its RAM: %llu MMIO exits "
              "(each landed in the attacker's own VMM), victim data intact: %s\n",
              (unsigned long long)system.hv.EventCount("Memory-Mapped I/O"),
              std::string(check) == secret ? "yes" : "NO!");

  // --- Compromised VMM ------------------------------------------------------
  // The attacker's VMM tries to use capabilities it does not hold: every
  // selector outside its own space fails the capability lookup.
  hv::Ec* rogue = nullptr;
  (void)system.hv.CreateEcGlobal(attacker_vm.vmm_pd(),
                           attacker_vm.vmm_pd()->caps().FindFree(hv::kSelFirstFree),
                           hv::kSelOwnPd, 0, [] {}, &rogue);
  int denied = 0;
  for (hv::CapSel sel = 0; sel < 512; ++sel) {
    if (system.hv.Call(rogue, sel) != Status::kSuccess) {
      ++denied;
    }
  }
  std::printf("[VMM attack] rogue VMM thread tried 512 portal selectors: "
              "%d rejected; the %d reachable ones are the VMM's *own* VM-exit\n"
              "             portals — it can only name objects it created or "
              "was delegated\n",
              denied, 512 - denied);
  // And it cannot delegate the victim's memory to itself: it never held it.
  const std::uint64_t victim_page = victim_vm.GpaToHpa(0x5000) >> hw::kPageShift;
  const Status steal = system.hv.Delegate(
      attacker_vm.vmm_pd(), hv::kSelOwnPd,
      hv::Crd::Mem(victim_page, 0, hv::perm::kRw), victim_page);
  std::printf("[VMM attack] stealing the victim's frame via delegation: %s\n",
              StatusName(steal));

  // --- Device-driver DMA attack ---------------------------------------------
  // A driver domain owns the AHCI controller. It programs a transfer whose
  // command list points into the hypervisor image: the IOMMU rejects it.
  auto& server = system.StartDiskServer();
  (void)server;
  const std::uint64_t faults_before = system.machine.iommu().faults();
  // Point the controller's command-list base at the hypervisor (below the
  // kernel reserve line) and issue.
  std::uint64_t dummy = 0;
  (void)system.machine.bus().MmioRead(root::kAhciMmioBase + hw::ahci::kPxClb, 4, &dummy);
  (void)system.machine.bus().MmioWrite(root::kAhciMmioBase + hw::ahci::kPxClb, 4, 0x8000);
  (void)system.machine.bus().MmioWrite(root::kAhciMmioBase + hw::ahci::kPxCi, 4, 0x1);
  std::printf("[DMA attack] controller fetched its command list from "
              "hypervisor memory: IOMMU faults %llu -> %llu (transfer "
              "rejected, kernel memory untouched)\n",
              (unsigned long long)faults_before,
              (unsigned long long)system.machine.iommu().faults());
  (void)system.machine.bus().MmioWrite(root::kAhciMmioBase + hw::ahci::kPxClb, 4,
                                 static_cast<std::uint32_t>(dummy));

  std::printf("\nAll three attack classes of §4.2 were contained.\n");
  return 0;
}
