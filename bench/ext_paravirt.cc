// Extension ablation: paravirtualized vs. fully virtualized console I/O.
//
// §4 of the paper notes that while NOVA does not rely on
// paravirtualization, "explicit hypercalls from an enlightened guest OS to
// the VMM are possible." This bench quantifies what such enlightenment
// buys: printing the same message through per-character port exits versus
// one batched hypercall.
#include <cstdio>

#include "bench/common.h"

namespace nova::bench {
namespace {

constexpr int kMessageLen = 64;

// Set by --smoke: fewer repeats per path.
int g_repeats = 200;

double RunConsole(bool paravirt, std::uint64_t* exits_out) {
  const int kRepeats = g_repeats;
  root::SystemConfig sc;
  sc.machine = hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  vmm::VmmConfig vc;
  vc.guest_mem_bytes = 64ull << 20;
  vmm::Vmm vm(&system.hv, system.root.get(), vc);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 64ull << 20});
  gk.BuildStandardHandlers();

  // The message buffer in guest memory.
  std::string msg(kMessageLen, 'x');
  vm.WriteGuest(0x500000, msg.data(), msg.size());

  hw::isa::Assembler& as = gk.text();
  const std::uint64_t main = as.Here();
  as.MovImm(5, kRepeats);
  const std::uint64_t top = as.Here();
  if (paravirt) {
    as.MovImm(1, 0x500000);
    as.MovImm(2, kMessageLen);
    as.Emit({.opcode = hw::isa::Opcode::kVmcall, .imm32 = 4});
  } else {
    for (int i = 0; i < kMessageLen; ++i) {
      as.MovImm(1, 'x');
      as.Out(vmm::vuart::kData, 1);
    }
  }
  as.Loop(5, top);
  as.Hlt();
  gk.EmitBoot(main);
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  hw::GuestState& gs = vm.gstate();
  const sim::Cycles before = system.machine.cpu(0).cycles();
  system.hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(60));
  *exits_out = vm.exits_handled();
  return static_cast<double>(system.machine.cpu(0).cycles() - before) /
         (kRepeats * kMessageLen);
}

void Run(const BenchOptions& opts) {
  if (opts.smoke) {
    g_repeats = 10;
  }
  PrintHeader("Extension: paravirtualized console (enlightened guest, §4)");
  std::uint64_t pio_exits = 0;
  std::uint64_t pv_exits = 0;
  const double pio = RunConsole(false, &pio_exits);
  const double pv = RunConsole(true, &pv_exits);
  std::printf("%-28s %14s %14s\n", "path", "cycles/char", "vm-exits");
  std::printf("%-28s %14.0f %14llu\n", "port I/O (1 exit/char)", pio,
              static_cast<unsigned long long>(pio_exits));
  std::printf("%-28s %14.0f %14llu\n", "hypercall (batched)", pv,
              static_cast<unsigned long long>(pv_exits));
  std::printf("\nspeedup: %.1fx — enlightenment trades the per-character exit "
              "for one hypercall per %d-byte write.\n",
              pio / pv, kMessageLen);
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
