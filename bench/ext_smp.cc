// Extension: many-VM consolidation across cores.
//
// The multicore payoff scenario: a rack-style consolidation host packs
// mixed-profile VMs — kernel-compile, pure compute, disk-backed I/O and
// an interrupt-heavy "network service" stand-in — onto 1..8 cores with
// per-core run queues. Disk VMs on remote cores reach the core-0 disk
// server through cross-core portal calls (xcalls); a balloon thread
// periodically revokes scratch memory from a victim VM, driving the
// tagged-TLB shootdown protocol across every core that cached the
// mapping. Reported per core count: aggregate throughput (scaling),
// Jain fairness across identical VMs, and the SMP overhead counters.
// A same-seed rerun of one configuration must reproduce the trace
// digest bit-for-bit: the multicore scheduler is deterministic.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/guest/workload_compile.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

namespace nova::bench {
namespace {

constexpr std::uint64_t kGuestMem = 32ull << 20;
constexpr std::uint64_t kScratchPages = 4;  // Balloon unit: order-2 block.

enum class Profile { kCompile, kCompute, kDisk, kNet };

const char* ProfileName(Profile p) {
  switch (p) {
    case Profile::kCompile: return "compile";
    case Profile::kCompute: return "compute";
    case Profile::kDisk: return "disk";
    case Profile::kNet: return "net";
  }
  return "?";
}

// Per-profile workload shapes. Units are sized so every profile finishes
// the same order of magnitude of simulated time on an unloaded core.
guest::CompileWorkload::Config WorkloadFor(Profile p, bool smoke) {
  guest::CompileWorkload::Config w;
  w.recycle_every = 100000;  // Recycling off: churn is not under test here.
  switch (p) {
    case Profile::kCompile:
      // The fig5 shape, scaled down: parallel jobs, working-set faults,
      // context switches. Runs under shadow paging.
      w.processes = 4;
      w.ws_pages = 64;
      w.total_units = smoke ? 90 : 500;
      w.compute_cycles = 20000;
      w.mem_bursts = 4;
      w.switch_every = 8;
      w.disk_every = 0;
      break;
    case Profile::kCompute:
      // Batch job: long compute bursts, almost no exits.
      w.processes = 1;
      w.ws_pages = 16;
      w.total_units = smoke ? 70 : 400;
      w.compute_cycles = 60000;
      w.mem_bursts = 1;
      w.switch_every = 1000;
      w.disk_every = 0;
      break;
    case Profile::kDisk:
      // I/O-bound: every few units a disk read through the virtual AHCI
      // controller and the core-0 disk server (cross-core IPC when the
      // VM lives elsewhere).
      w.processes = 2;
      w.ws_pages = 24;
      w.total_units = smoke ? 40 : 220;
      w.compute_cycles = 12000;
      w.mem_bursts = 2;
      w.switch_every = 16;
      w.disk_every = 8;
      w.disk_read_bytes = 16384;
      break;
    case Profile::kNet:
      // Network-service stand-in: many small units with frequent context
      // switches — the exit- and scheduler-heavy end of the mix.
      w.processes = 2;
      w.ws_pages = 8;
      w.total_units = smoke ? 150 : 800;
      w.compute_cycles = 3000;
      w.mem_bursts = 1;
      w.switch_every = 4;
      w.disk_every = 0;
      break;
  }
  return w;
}

// One guest VM: its VMM, guest kernel, optional disk driver, workload.
struct VmInstance {
  Profile profile;
  std::uint32_t cpu = 0;
  std::unique_ptr<vmm::Vmm> vm;
  std::unique_ptr<guest::GuestKernel> gk;
  std::unique_ptr<guest::GuestAhciDriver> driver;
  std::unique_ptr<guest::CompileWorkload> workload;
  std::uint64_t total_units = 0;
  sim::PicoSeconds done_ps = 0;  // 0 = still running.
};

struct ConsolidationResult {
  std::uint32_t cores = 0;
  std::uint32_t vms = 0;
  bool completed = false;
  double ms = 0;                 // Max busy-core time.
  double agg_units_per_s = 0;    // Total units / max completion time.
  double fairness = 1.0;         // Min Jain index across profile groups.
  std::uint64_t xcalls = 0;
  std::uint64_t shootdowns = 0;
  std::uint64_t lock_contention = 0;
  std::uint64_t trace_digest = 0;
};

// Jain's fairness index over per-VM throughput within one profile group:
// (sum x)^2 / (n * sum x^2); 1.0 = perfectly even progress.
double JainIndex(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 1.0;
  }
  double sum = 0, sq = 0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) {
    return 0;
  }
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

// The profile mix. The first VM placed on each core is a compile VM:
// interrupts reach a busy core through VM-exit delivery of whatever guest
// is running there, so every core keeps one never-halting tenant and
// blocked I/O VMs cannot starve behind an idle core.
Profile ProfileFor(std::uint32_t vm_idx, std::uint32_t cores) {
  if (vm_idx < cores) {
    return Profile::kCompile;
  }
  // Satellite cycle length 3 is coprime with every power-of-two core
  // count, so each profile rotates across cores instead of pinning to one.
  switch ((vm_idx - cores) % 3) {
    case 0: return Profile::kCompute;
    case 1: return Profile::kDisk;
    default: return Profile::kNet;
  }
}

ConsolidationResult RunConsolidation(std::uint32_t cores, std::uint32_t vms,
                                     bool smoke, bool collect_digest) {
  root::SystemConfig sc;
  sc.machine.ram_size = 1ull << 30;
  sc.machine.cpus.assign(cores, &hw::CoreI7_920());
  root::NovaSystem system(sc);
  system.hv.set_vtlb_policy(hv::VtlbPolicy{.cache_contexts = true});

  // One guest-logic mux per core; every VM pinned to that core registers
  // its handlers there.
  std::vector<std::unique_ptr<guest::GuestLogicMux>> muxes;
  for (std::uint32_t c = 0; c < cores; ++c) {
    muxes.push_back(std::make_unique<guest::GuestLogicMux>());
    muxes.back()->Attach(system.hv.engine(c));
  }

  services::DiskServer* disk_server = nullptr;

  std::vector<std::unique_ptr<VmInstance>> fleet;
  for (std::uint32_t i = 0; i < vms; ++i) {
    auto inst = std::make_unique<VmInstance>();
    inst->profile = ProfileFor(i, cores);
    inst->cpu = i % cores;

    vmm::VmmConfig vc;
    vc.name = std::string(ProfileName(inst->profile)) + std::to_string(i);
    vc.guest_mem_bytes = kGuestMem;
    vc.mode = inst->profile == Profile::kCompile
                  ? hw::TranslationMode::kShadow
                  : hw::TranslationMode::kNested;
    vc.first_cpu = inst->cpu;
    // A consolidation host time-slices finely: with the default quantum a
    // single slice spans most of the run and co-tenants finish in arrival
    // order instead of advancing in lockstep.
    vc.quantum = 200'000;
    inst->vm = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), vc);

    const auto wcfg = WorkloadFor(inst->profile, smoke);
    inst->total_units = wcfg.total_units;

    if (wcfg.disk_every != 0) {
      if (disk_server == nullptr) {
        disk_server = &system.StartDiskServer(/*cpu=*/0);
      }
      inst->vm->ConnectDiskServer(disk_server);
    }

    vmm::Vmm* vm = inst->vm.get();
    inst->gk = std::make_unique<guest::GuestKernel>(
        &system.machine.mem(),
        [vm](std::uint64_t gpa) { return vm->GpaToHpa(gpa); },
        muxes[inst->cpu].get(),
        guest::GuestKernelConfig{.mem_bytes = kGuestMem});
    inst->gk->BuildStandardHandlers();
    if (wcfg.disk_every != 0) {
      inst->driver = std::make_unique<guest::GuestAhciDriver>(
          inst->gk.get(),
          guest::GuestAhciDriver::Config{
              .mmio_base = vmm::vahci::kMmioBase,
              .irq_vector = vmm::vahci::kVector,
              .read_ci = [vm]() -> std::uint32_t {
                return static_cast<std::uint32_t>(vm->vahci().MmioRead(
                    vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
              }});
    }
    inst->workload = std::make_unique<guest::CompileWorkload>(
        inst->gk.get(), inst->driver.get(), wcfg);
    inst->gk->EmitBoot(inst->workload->EmitMain());
    inst->gk->Install();
    inst->gk->PrimeState(vm->gstate());
    (void)vm->Start(vm->gstate().rip);
    fleet.push_back(std::move(inst));
  }

  // Balloon scratch: one block of host frames per VM, delegated into the
  // VM's space above its RAM. Revoking a block mid-run fires the tagged
  // shootdown at every core holding the VM's translations plus the
  // host-mapping flush at the rest.
  const std::uint64_t scratch_base =
      system.root->AllocPages(kScratchPages * vms, kScratchPages);
  std::uint32_t balloons_sent = 0;
  if (scratch_base != 0) {
    for (std::uint32_t i = 0; i < vms; ++i) {
      (void)system.hv.Delegate(
          system.root->pd(), fleet[i]->vm->ExposeVmToRoot(),
          hv::Crd{hv::CrdKind::kMem, scratch_base + i * kScratchPages, 2,
                  hv::perm::kRwx},
          (kGuestMem >> hw::kPageShift) + i * kScratchPages);
    }
  }

  sim::Tracer& tracer = system.machine.tracer();
  if (collect_digest) {
    tracer.Reset();
    tracer.set_enabled(true);
  }

  auto all_done = [&fleet, &system] {
    bool done = true;
    for (auto& inst : fleet) {
      if (inst->workload->done()) {
        if (inst->done_ps == 0) {
          inst->done_ps = system.machine.cpu(inst->cpu).NowPs();
        }
      } else {
        done = false;
      }
    }
    return done;
  };

  // Run in slices; between slices the balloon revokes the next victim's
  // scratch block. Core 0 always hosts a compile VM, so its clock is a
  // sound wall-clock proxy for the balloon cadence.
  const sim::PicoSeconds balloon_period =
      smoke ? sim::PicoSeconds(500'000'000ull)     // 0.5 ms
            : sim::PicoSeconds(2'000'000'000ull);  // 2 ms
  sim::PicoSeconds next_balloon = balloon_period;
  const sim::PicoSeconds deadline = sim::Seconds(120);
  while (true) {
    system.hv.RunUntilCondition(
        [&] {
          return all_done() ||
                 (balloons_sent < vms &&
                  system.machine.cpu(0).NowPs() >= next_balloon);
        },
        deadline);
    if (all_done()) {
      break;
    }
    if (balloons_sent < vms && scratch_base != 0 &&
        system.machine.cpu(0).NowPs() >= next_balloon) {
      (void)system.hv.Revoke(
          system.root->pd(),
          hv::Crd{hv::CrdKind::kMem,
                  scratch_base + balloons_sent * kScratchPages, 2,
                  hv::perm::kRwx},
          /*include_self=*/false);
      ++balloons_sent;
      next_balloon += balloon_period;
      continue;
    }
    break;  // Deadline hit or nothing left to make progress.
  }

  if (collect_digest) {
    tracer.set_enabled(false);
  }

  ConsolidationResult r;
  r.cores = cores;
  r.vms = vms;
  r.completed = all_done();
  sim::PicoSeconds end = 0;
  std::uint64_t total_units = 0;
  for (auto& inst : fleet) {
    const sim::PicoSeconds t =
        inst->done_ps != 0 ? inst->done_ps
                           : system.machine.cpu(inst->cpu).NowPs();
    end = std::max(end, t);
    total_units += inst->workload->units_done();
  }
  r.ms = static_cast<double>(end) / 1e9;
  r.agg_units_per_s = static_cast<double>(total_units) / (r.ms / 1e3);

  // Fairness per profile group: identical VMs should make identical
  // progress; the reported figure is the worst group.
  for (Profile p : {Profile::kCompile, Profile::kCompute, Profile::kDisk,
                    Profile::kNet}) {
    std::vector<double> rates;
    for (auto& inst : fleet) {
      if (inst->profile != p || inst->done_ps == 0) {
        continue;
      }
      rates.push_back(static_cast<double>(inst->workload->units_done()) /
                      static_cast<double>(inst->done_ps));
    }
    r.fairness = std::min(r.fairness, JainIndex(rates));
  }

  r.xcalls = system.hv.EventCount("ipc-xcalls");
  r.shootdowns = system.hv.EventCount("TLB Shootdown");
  r.lock_contention = system.hv.EventCount("lock-contention");
  r.trace_digest = collect_digest ? tracer.digest() : 0;
  return r;
}

void Run(const BenchOptions& opts) {
  PrintHeader("Extension: many-VM consolidation across cores");

  const std::uint32_t vms = opts.smoke ? 6 : 16;
  const std::vector<std::uint32_t> core_counts =
      opts.smoke ? std::vector<std::uint32_t>{1, 2}
                 : std::vector<std::uint32_t>{1, 2, 4, 8};

  std::printf("%5s %4s | %10s %12s %8s %9s | %8s %10s %9s\n", "cores", "vms",
              "time[ms]", "agg-units/s", "speedup", "fairness", "xcalls",
              "shootdown", "lock-cont");
  double base_rate = 0;
  double last_rate = 0;
  for (std::uint32_t cores : core_counts) {
    const ConsolidationResult r =
        RunConsolidation(cores, vms, opts.smoke, /*collect_digest=*/false);
    if (base_rate == 0) {
      base_rate = r.agg_units_per_s;
    }
    last_rate = r.agg_units_per_s;
    std::printf("%5u %4u | %10.3f %12.0f %7.2fx %9.3f | %8llu %10llu %9llu%s\n",
                r.cores, r.vms, r.ms, r.agg_units_per_s,
                r.agg_units_per_s / base_rate, r.fairness,
                static_cast<unsigned long long>(r.xcalls),
                static_cast<unsigned long long>(r.shootdowns),
                static_cast<unsigned long long>(r.lock_contention),
                r.completed ? "" : "  [INCOMPLETE]");
  }
  const double scaling = base_rate > 0 ? last_rate / base_rate : 0;
  std::printf("\nscaling 1->%u cores: %.2fx aggregate throughput\n",
              core_counts.back(), scaling);

  // Determinism: the same configuration twice must produce bit-identical
  // trace digests — the multicore scheduler has no hidden nondeterminism.
  const std::uint32_t dcores = opts.smoke ? 2 : 4;
  const std::uint32_t dvms = opts.smoke ? 4 : 8;
  const ConsolidationResult a =
      RunConsolidation(dcores, dvms, /*smoke=*/true, /*collect_digest=*/true);
  const ConsolidationResult b =
      RunConsolidation(dcores, dvms, /*smoke=*/true, /*collect_digest=*/true);
  std::printf("determinism (%u cores, %u vms): digest %016llx vs %016llx [%s]\n",
              dcores, dvms, static_cast<unsigned long long>(a.trace_digest),
              static_cast<unsigned long long>(b.trace_digest),
              a.trace_digest == b.trace_digest ? "OK" : "MISMATCH");

  std::printf(
      "\nShape: per-core run queues keep dispatch contention-free, so "
      "aggregate throughput scales with cores until the shared services "
      "bind — disk VMs funnel through the core-0 disk server (xcalls) and "
      "balloon revocations broadcast shootdowns. Fairness stays near 1.0: "
      "identical VMs on different cores advance in lockstep because an "
      "idle core's clock never depends on a busy neighbour.\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
