// Figure 7: CPU overhead for receiving UDP streams of constant bandwidth
// with 64-, 1472- and 9188-byte packets — native NIC vs. a NIC directly
// assigned to a virtual machine (DMA remapped by the IOMMU, interrupts
// virtualized by the VMM).
#include <cstdio>

#include "bench/common.h"
#include "src/guest/driver_nic.h"
#include "src/guest/workload_udp.h"

namespace nova::bench {
namespace {

constexpr sim::PicoSeconds kWarmup = sim::Milliseconds(5);
constexpr sim::PicoSeconds kMeasure = sim::Milliseconds(60);

// Set by --smoke: shorter measurement window, truncated bandwidth sweep.
sim::PicoSeconds g_measure = kMeasure;
double g_max_mbit = 1024;

struct NetRunResult {
  double utilization = 0;
  double packets_per_s = 0;
  std::uint64_t irqs = 0;
};

NetRunResult RunNativeNet(double mbit, std::uint32_t packet_bytes) {
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 512ull << 20,
                                        .iommu_present = false});
  root::Platform platform = root::SetupStandardPlatform(&machine, nullptr);
  machine.irq().Configure(root::kNicGsi, 0, 42);
  machine.irq().Unmask(root::kNicGsi);

  guest::BareMetalRunner runner(&machine);
  guest::GuestKernel gk(
      &machine.mem(), [](std::uint64_t gpa) { return gpa; }, &runner.mux(),
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestNicDriver driver(&gk, guest::GuestNicDriver::Config{
                                        .mmio_base = root::kNicMmioBase,
                                        .irq_vector = 42,
                                        .packet_bytes = packet_bytes});
  guest::UdpWorkload workload(&gk, &driver);
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(runner.gs());

  platform.link->StartStream(mbit, packet_bytes);
  runner.RunUntil([] { return false; }, kWarmup);
  hw::Cpu& cpu = machine.cpu(0);
  cpu.ResetUtilization();
  const std::uint64_t p0 = workload.packets();
  const sim::PicoSeconds t0 = cpu.NowPs();
  runner.RunUntil([] { return false; }, t0 + g_measure);
  platform.link->Stop();

  NetRunResult r;
  const double secs = static_cast<double>(cpu.NowPs() - t0) / 1e12;
  r.utilization = cpu.Utilization();
  r.packets_per_s = static_cast<double>(workload.packets() - p0) / secs;
  r.irqs = platform.nic->interrupts_raised();
  return r;
}

NetRunResult RunDirectNet(double mbit, std::uint32_t packet_bytes) {
  root::SystemConfig sc;
  sc.machine = hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);

  vmm::VmmConfig vc;
  vc.guest_mem_bytes = 128ull << 20;
  vmm::Vmm vm(&system.hv, system.root.get(), vc);
  (void)vm.AssignHostDevice("nic", 42);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestNicDriver driver(&gk, guest::GuestNicDriver::Config{
                                        .mmio_base = root::kNicMmioBase,
                                        .irq_vector = 42,
                                        .packet_bytes = packet_bytes});
  guest::UdpWorkload workload(&gk, &driver);
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  system.platform.link->StartStream(mbit, packet_bytes);
  system.hv.RunUntilCondition([] { return false; }, kWarmup);
  hw::Cpu& cpu = system.machine.cpu(0);
  cpu.ResetUtilization();
  const std::uint64_t p0 = workload.packets();
  const sim::PicoSeconds t0 = cpu.NowPs();
  system.hv.RunUntilCondition([] { return false; }, t0 + g_measure);
  system.platform.link->Stop();

  NetRunResult r;
  const double secs = static_cast<double>(cpu.NowPs() - t0) / 1e12;
  r.utilization = cpu.Utilization();
  r.packets_per_s = static_cast<double>(workload.packets() - p0) / secs;
  r.irqs = system.platform.nic->interrupts_raised();
  return r;
}

void Run(const BenchOptions& opts) {
  if (opts.smoke) {
    g_measure = sim::Milliseconds(10);
    g_max_mbit = 16;
  }
  PrintHeader("Figure 7: UDP receive, CPU utilization vs bandwidth");
  const std::uint32_t sizes[] = {64, 1472, 9188};
  for (const std::uint32_t size : sizes) {
    std::printf("\n-- packet size %u bytes --\n", size);
    std::printf("%10s %14s %14s %14s %14s\n", "MBit/s", "native util[%]",
                "direct util[%]", "native kpps", "direct kpps");
    for (double mbit = 2; mbit <= g_max_mbit; mbit *= 2) {
      // Skip configurations beyond the wire's packet capacity.
      if (mbit * 1e6 / (size * 8.0) > 2.2e6) {
        continue;
      }
      const NetRunResult native = RunNativeNet(mbit, size);
      const NetRunResult direct = RunDirectNet(mbit, size);
      std::printf("%10.0f %14.2f %14.2f %14.1f %14.1f\n", mbit,
                  native.utilization * 100, direct.utilization * 100,
                  native.packets_per_s / 1000, direct.packets_per_s / 1000);
    }
  }
  std::printf(
      "\nPaper shape: virtualization overhead scales with the interrupt "
      "rate; interrupt coalescing caps the rate near 20000/s, after which "
      "the curves converge (per-packet work dominates).\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
