// Microbenchmarks of the hypervisor's hot paths (google-benchmark).
//
// These measure *host* wall-clock performance of the implementation — how
// fast the reproduction itself executes — complementing the simulated-
// cycle figures (fig8/fig9). Also includes simulated-cycle ablations of
// design choices the paper calls out (MTD-size state transfer, per-event
// portals).
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace nova::bench {
namespace {

// --- Host-performance microbenchmarks -------------------------------------

void BM_CapSpaceLookup(benchmark::State& state) {
  hv::CapSpace caps;
  (void)caps.Insert(100, hv::Capability{std::make_shared<hv::Sm>(0), hv::perm::kAll});
  for (auto _ : state) {
    benchmark::DoNotOptimize(caps.Lookup(100));
  }
}
BENCHMARK(BM_CapSpaceLookup);

void BM_PageTableWalk(benchmark::State& state) {
  hw::PhysMem mem(256ull << 20);
  hw::PhysAddr next = 0x100000;
  hw::PageTable pt(&mem, hw::PagingMode::kFourLevel, 0x1000);
  (void)pt.Map(0x400000, 0x200000, hw::kPageSize, hw::pte::kWritable | hw::pte::kUser,
         [&next] {
           const hw::PhysAddr f = next;
           next += hw::kPageSize;
           return f;
         });
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Walk(0x400123, hw::Access{}, false));
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_TlbLookup(benchmark::State& state) {
  hw::Tlb tlb(512, 32);
  for (std::uint64_t i = 0; i < 256; ++i) {
    (void)tlb.Insert(1, i << 12, (i + 1000) << 12, hw::kPageSize, true, true, true);
  }
  std::uint64_t va = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Lookup(1, (va++ % 256) << 12, hw::Access{}));
  }
}
BENCHMARK(BM_TlbLookup);

void BM_IpcCallReply(benchmark::State& state) {
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 256ull << 20});
  hv::Hypervisor hv(&machine);
  hv::Pd* root = hv.Boot();
  hv::Pd* server = nullptr;
  (void)hv.CreatePd(root, 100, "server", false, &server);
  hv::Ec* handler = nullptr;
  (void)hv.CreateEcLocal(root, 110, 100, 0, [](std::uint64_t) {}, &handler);
  (void)hv.CreatePt(root, 111, 110, 0, 0);
  hv::Ec* client = nullptr;
  (void)hv.CreateEcGlobal(root, 112, hv::kSelOwnPd, 0, [] {}, &client);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv.Call(client, 111));
  }
}
BENCHMARK(BM_IpcCallReply);

void BM_GuestInstructionDispatch(benchmark::State& state) {
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 64ull << 20});
  hw::VmEngine engine(&machine.cpu(0), &machine.mem(), &machine.bus(),
                      &machine.irq());
  hw::isa::Assembler as(0x10000);
  const std::uint64_t top = as.AddImm(1, 1);
  as.Jmp(top);
  (void)machine.mem().Write(as.base(), as.bytes().data(), as.bytes().size());
  hw::GuestState gs;
  gs.rip = 0x10000;
  for (auto _ : state) {
    engine.Run(gs, hw::VmControls{}, 256);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(engine.instructions()));
}
BENCHMARK(BM_GuestInstructionDispatch);

void BM_DelegateRevoke(benchmark::State& state) {
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 512ull << 20});
  hv::Hypervisor hv(&machine);
  hv::Pd* root = hv.Boot();
  (void)hv.CreatePd(root, 100, "child", false);
  const std::uint64_t page = (hv.kernel_reserve() >> hw::kPageShift) + 512;
  for (auto _ : state) {
    (void)hv.Delegate(root, 100, hv::Crd::Mem(page, 4, hv::perm::kRw), page);
    (void)hv.Revoke(root, hv::Crd::Mem(page, 4, hv::perm::kRw), false);
  }
}
BENCHMARK(BM_DelegateRevoke);

// --- Simulated-cycle ablations ---------------------------------------------

// The paper's transfer-descriptor optimization (§5.2): minimal vs full
// state transfer per exit. Reports simulated cycles per CPUID exit.
void BM_Ablation_MtdStateTransfer(benchmark::State& state) {
  const bool full = state.range(0) != 0;
  double cycles_per_exit = 0;
  {
    root::SystemConfig sc;
    sc.machine =
        hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
    root::NovaSystem system(sc);
    vmm::VmmConfig vc;
    vc.guest_mem_bytes = 64ull << 20;
    vc.full_state_transfer = full;
    vmm::Vmm vm(&system.hv, system.root.get(), vc);
    guest::GuestLogicMux mux;
    mux.Attach(system.hv.engine(0));
    guest::GuestKernel gk(
        &system.machine.mem(),
        [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
        guest::GuestKernelConfig{.mem_bytes = 64ull << 20});
    gk.BuildStandardHandlers();
    hw::isa::Assembler& as = gk.text();
    const std::uint64_t main = as.Here();
    as.MovImm(5, 1000);
    const std::uint64_t top = as.Cpuid();
    as.Loop(5, top);
    as.Hlt();
    gk.EmitBoot(main);
    gk.Install();
    gk.PrimeState(vm.gstate());
    (void)vm.Start(vm.gstate().rip);
    hw::GuestState& gs = vm.gstate();
    const sim::Cycles before = system.machine.cpu(0).cycles();
    system.hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(10));
    cycles_per_exit =
        static_cast<double>(system.machine.cpu(0).cycles() - before) / 1000.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cycles_per_exit);
  }
  state.counters["sim_cycles_per_exit"] = cycles_per_exit;
}
BENCHMARK(BM_Ablation_MtdStateTransfer)->Arg(0)->Arg(1);

}  // namespace
}  // namespace nova::bench

BENCHMARK_MAIN();
