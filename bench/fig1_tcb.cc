// Figure 1: trusted-computing-base size comparison of contemporary
// virtual environments, plus this reproduction's own line counts.
#include <cstdio>

#include "src/baseline/tcb_data.h"

// Accepts --smoke for uniformity with the other benchmarks; the figure is
// a static table, so the flag changes nothing.
int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("\n=== Figure 1: TCB size of virtual environments (KLOC) ===\n");
  std::printf("%-10s %8s %12s   components\n", "system", "total", "privileged");
  for (const auto& stack : nova::baseline::Figure1Stacks()) {
    std::printf("%-10s %8u %12u   ", stack.system.data(), stack.TotalKloc(),
                stack.PrivilegedKloc());
    bool first = true;
    for (const auto& c : stack.components) {
      std::printf("%s%s %u%s", first ? "" : ", ", c.name.data(), c.kloc,
                  c.privileged ? " [priv]" : "");
      first = false;
    }
    std::printf("\n");
  }
  std::printf(
      "\nNOVA's TCB (36 KLOC, 9 privileged) is at least an order of "
      "magnitude smaller than Xen (440), KVM (360), ESXi (~200 all "
      "privileged) and Hyper-V (~480).\n"
      "This reproduction's own sizes (count with: cloc src/): the "
      "microhypervisor is src/hv, the user environment src/root + "
      "src/services, the VMM src/vmm — the same order-of-magnitude "
      "relationships hold.\n");
  return 0;
}
