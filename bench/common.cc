#include "bench/common.h"

#include <cstring>

#include "bench/scenario.h"

namespace nova::bench {
namespace {

constexpr std::uint64_t kGuestMem = kBenchGuestMem;
constexpr sim::PicoSeconds kDeadline = sim::Seconds(120);

guest::GuestAhciDriver::Config NativeDriverConfig(hw::Machine* machine) {
  return guest::GuestAhciDriver::Config{
      .mmio_base = root::kAhciMmioBase,
      .irq_vector = 43,
      .read_ci = [machine]() -> std::uint32_t {
        std::uint64_t v = 0;
        (void)machine->bus().MmioRead(root::kAhciMmioBase + hw::ahci::kPxCi, 4, &v);
        return static_cast<std::uint32_t>(v);
      }};
}

RunResult RunNative(const RunConfig& config) {
  hw::Machine machine(hw::MachineConfig{.cpus = {config.cpu},
                                        .ram_size = 512ull << 20,
                                        .iommu_present = false});
  root::Platform platform = root::SetupStandardPlatform(&machine, nullptr);
  machine.irq().Configure(root::kTimerGsi, 0, 32);
  machine.irq().Unmask(root::kTimerGsi);
  machine.irq().Configure(root::kAhciGsi, 0, 43);
  machine.irq().Unmask(root::kAhciGsi);

  guest::BareMetalRunner runner(&machine);
  guest::GuestKernel gk(
      &machine.mem(), [](std::uint64_t gpa) { return gpa; }, &runner.mux(),
      guest::GuestKernelConfig{.mem_bytes = kGuestMem, .timer_hz = config.timer_hz});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(&gk, NativeDriverConfig(&machine));
  guest::CompileWorkload workload(
      &gk, config.workload.disk_every != 0 ? &driver : nullptr, config.workload);
  const std::uint64_t main = workload.EmitMain();
  gk.EmitBoot(main);
  gk.Install();
  gk.PrimeState(runner.gs());

  hw::Cpu& cpu = machine.cpu(0);
  cpu.ResetUtilization();
  const sim::PicoSeconds t0 = cpu.NowPs();
  runner.RunUntil([&workload] { return workload.done(); }, kDeadline);

  RunResult result;
  result.seconds =
      static_cast<double>(cpu.NowPs() - t0) / static_cast<double>(sim::kPicosPerSecond);
  result.utilization = cpu.Utilization();
  result.guest_insns = runner.engine().instructions();
  return result;
}

RunResult RunVirtualized(const RunConfig& config) {
  // Construction lives in CompileScenario so tests and the migration
  // driver build the identical stack; this function only measures.
  CompileScenario scenario(config);
  root::NovaSystem& system = scenario.system();
  vmm::Vmm& vm = scenario.vm();
  guest::CompileWorkload& workload = scenario.workload();

  hw::Cpu& cpu = system.machine.cpu(0);
  cpu.ResetUtilization();
  system.hv.stats().ResetAll();
  // Tracing starts exactly where the counters reset so the folded trace
  // attribution and the counter table describe the same window. The tracer
  // charges no cycles, so traced and untraced runs are timing-identical.
  sim::Tracer& tracer = system.machine.tracer();
  sim::TraceReport report;
  if (config.trace) {
    tracer.Reset();
    tracer.set_sink(&report);
    tracer.set_enabled(true);
  }
  const sim::PicoSeconds t0 = cpu.NowPs();
  scenario.RunUntilDone(kDeadline);

  RunResult result;
  result.seconds =
      static_cast<double>(cpu.NowPs() - t0) / static_cast<double>(sim::kPicosPerSecond);
  result.utilization = cpu.Utilization();
  result.exits = vm.exits_handled();
  result.guest_insns = system.hv.engine(0).instructions();
  for (const auto& [name, counter] : system.hv.stats().counters()) {
    result.stats.counter(name).Add(counter.value());
  }
  result.stats.counter("disk-reads").Add(workload.disk_reads());
  result.stats.counter("Injected vIRQ").Add(vm.interrupts_injected());
  if (config.trace) {
    tracer.set_enabled(false);
    report.FoldRemaining(tracer);
    result.trace_digest = tracer.digest();
    result.trace_rows = report.Rows(tracer);
    if (!config.trace_json.empty()) {
      tracer.WriteChromeJsonFile(config.trace_json);
    }
    tracer.set_sink(nullptr);
  }
  return result;
}

}  // namespace

BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strncmp(arg, "--trace-json=", 13) == 0) {
      opts.trace_json = arg + 13;
    } else if (std::strcmp(arg, "--trace-json") == 0 && i + 1 < argc) {
      opts.trace_json = argv[++i];
    }
  }
  return opts;
}

RunResult RunCompile(const RunConfig& config) {
  if (config.stack == StackKind::kNative) {
    return RunNative(config);
  }
  return RunVirtualized(config);
}

}  // namespace nova::bench
