// Figure 8: IPC microbenchmark.
//
// Correlates the transition cost between user and kernel mode (sysenter /
// sysexit) with the basic cost of a message transfer between two threads,
// for every processor of Table 1 — same address space and cross address
// space (where TLB flush + refill effects appear).
#include <cstdio>

#include "bench/common.h"

namespace nova::bench {
namespace {

// Set by --smoke: fewer iterations per measurement.
int g_iterations = 1000;

struct IpcCost {
  double entry_exit = 0;
  double ipc_path = 0;
  double tlb_effects = 0;
  double total = 0;
  double nanoseconds = 0;
};

IpcCost MeasureIpc(const hw::CpuModel* model, bool cross_as, int words) {
  hw::Machine machine(hw::MachineConfig{.cpus = {model}, .ram_size = 256ull << 20});
  hv::Hypervisor hv(&machine);
  hv::Pd* root = hv.Boot();

  hv::Pd* server = nullptr;
  hv::Pd* client_pd = nullptr;
  (void)hv.CreatePd(root, 100, "server", false, &server);
  (void)hv.CreatePd(root, 101, "client", false, &client_pd);

  hv::Ec* handler = nullptr;
  (void)hv.CreateEcLocal(root, 110, cross_as ? 100 : 101, 0, [](std::uint64_t) {},
                   &handler);
  (void)hv.CreatePt(root, 111, 110, 0, 7);
  (void)hv.Delegate(root, 101, hv::Crd::Obj(111, 0, hv::perm::kCall), 50);
  hv::Ec* client = nullptr;
  (void)hv.CreateEcGlobal(root, 112, 101, 0, [] {}, &client);

  const int iterations = g_iterations;
  client->utcb().untyped = words;
  // Warm up once.
  (void)hv.Call(client, 50);
  const sim::Cycles before = machine.cpu(0).cycles();
  for (int i = 0; i < iterations; ++i) {
    (void)hv.Call(client, 50);
  }
  const double per_call =
      static_cast<double>(machine.cpu(0).cycles() - before) / iterations;

  IpcCost cost;
  // One call/reply comprises one kernel entry + exit; the rest is the IPC
  // path (capability lookup, portal traversal, context switches, copies)
  // plus, cross-AS, the TLB flush/refill penalty.
  cost.total = per_call;
  cost.entry_exit = model->syscall_entry + model->syscall_exit;
  const hv::HvCosts costs;
  cost.tlb_effects =
      cross_as ? 2.0 * (costs.addr_space_switch +
                        costs.ipc_refill_entries * model->tlb_refill_entry)
               : 0.0;
  cost.ipc_path = cost.total - cost.entry_exit - cost.tlb_effects;
  cost.nanoseconds = per_call * 1e6 / static_cast<double>(model->frequency.khz());
  return cost;
}

void Run(const BenchOptions& opts) {
  if (opts.smoke) {
    g_iterations = 50;
  }
  PrintHeader("Figure 8: IPC microbenchmark (cycles; one call+reply)");
  std::printf("%-12s | %-34s | %-44s\n", "", "same address space",
              "cross address space");
  std::printf("%-12s | %8s %8s %8s | %8s %8s %8s %8s %8s\n", "CPU", "entry",
              "path", "total", "entry", "path", "TLB", "total", "ns");
  for (const hw::CpuModel* model : hw::AllModels()) {
    const IpcCost same = MeasureIpc(model, /*cross_as=*/false, 0);
    const IpcCost cross = MeasureIpc(model, /*cross_as=*/true, 0);
    std::printf("%-12s | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f %8.0f %8.0f\n",
                model->tag.data(), same.entry_exit, same.ipc_path, same.total,
                cross.entry_exit, cross.ipc_path, cross.tlb_effects, cross.total,
                cross.nanoseconds);
  }

  std::printf(
      "\nMessage-size scaling (BLM, same AS): the paper cites 2-3 cycles "
      "per transferred word.\n");
  std::printf("%8s %10s\n", "words", "cycles");
  double base = 0;
  for (int words : {0, 4, 16, 64}) {
    const IpcCost c = MeasureIpc(&hw::CoreI7_920(), false, words);
    if (words == 0) {
      base = c.total;
      std::printf("%8d %10.0f\n", words, c.total);
    } else {
      std::printf("%8d %10.0f   (+%.1f cycles/word)\n", words, c.total,
                  (c.total - base) / words);
    }
  }
  std::printf(
      "\nPaper reference: cross-AS IPC 164/152/192/179/131/108 ns on "
      "K8/K10/YNH/CNR/WFD/BLM; extending TLB tags to user address spaces "
      "would cut the cost by ~50%% (§9).\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
