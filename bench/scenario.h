// A complete virtualized compile-workload node as one restorable object.
//
// Wraps the construction sequence RunCompile performs for virtualized
// stacks — NovaSystem, VMM, guest kernel, AHCI driver, workload — behind
// an object whose whole mutable state can be checkpointed into a
// `sim::Snapshot` and restored onto a twin built from the identical
// RunConfig. This is the unit the migration driver moves between nodes
// and the snapshot round-trip tests verify digest-exactness on.
#ifndef BENCH_SCENARIO_H_
#define BENCH_SCENARIO_H_

#include <memory>

#include "bench/common.h"

namespace nova::bench {

// Guest RAM every benchmark guest receives (the paper machine gives the
// guest 512 MiB; the model scales down, keeping relative behaviour).
constexpr std::uint64_t kBenchGuestMem = 128ull << 20;

class CompileScenario {
 public:
  // Builds the full stack and starts the guest (boot entry primed, vCPU
  // runnable). Identical configs produce identical twins — the snapshot
  // restore convention.
  explicit CompileScenario(const RunConfig& config);

  bool done() const { return workload_->done(); }
  sim::PicoSeconds now() const;
  // Run until the workload finishes or absolute `deadline_ps`.
  void RunUntilDone(sim::PicoSeconds deadline_ps);
  // Advance this node by `dt` of simulated time.
  void RunFor(sim::PicoSeconds dt);

  root::NovaSystem& system() { return *system_; }
  vmm::Vmm& vm() { return *vm_; }
  guest::GuestKernel& guest_kernel() { return *gk_; }
  guest::GuestAhciDriver& driver() { return *driver_; }
  guest::CompileWorkload& workload() { return *workload_; }
  const RunConfig& config() const { return config_; }

  // Node sections (via NovaSystem) plus the scenario layers: the VMM's
  // device models and the host-side guest bookkeeping.
  Status SaveState(sim::Snapshot& snap) const;
  Status LoadState(sim::Snapshot& snap);

 private:
  // snapshot-x-list(CompileScenario): config_, system_, vm_, mux_, gk_,
  //   driver_, workload_
  RunConfig config_;
  std::unique_ptr<root::NovaSystem> system_;
  std::unique_ptr<vmm::Vmm> vm_;
  guest::GuestLogicMux mux_;
  std::unique_ptr<guest::GuestKernel> gk_;
  std::unique_ptr<guest::GuestAhciDriver> driver_;
  std::unique_ptr<guest::CompileWorkload> workload_;
};

}  // namespace nova::bench

#endif  // BENCH_SCENARIO_H_
