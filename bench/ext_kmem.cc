// Extension: guest throughput under kernel-memory quota pressure.
//
// A shadow-paged guest cycles through many address spaces — the workload
// shape whose kernel-memory appetite (shadow page tables, vTLB contexts)
// is largest — while its VMM's per-PD quota is swept from unlimited down
// to a handful of spare frames. The interesting shape: throughput
// degrades smoothly as the quota pinches, because the kernel reclaims the
// guest's own least-recently-used shadow contexts under pressure instead
// of failing the allocation; the guest pays re-fill work, never a crash.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/guest/workload_compile.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

namespace nova::bench {
namespace {

constexpr std::uint64_t kGuestMem = 32ull << 20;

// Many processes, a context switch every unit, constant address-space
// recycling: maximal shadow-table churn per unit of useful work.
guest::CompileWorkload::Config ThrashWorkload(bool smoke) {
  guest::CompileWorkload::Config w;
  w.processes = 6;
  w.ws_pages = 16;
  w.total_units = smoke ? 300 : 2000;
  w.compute_cycles = 2000;
  w.mem_bursts = 2;
  w.switch_every = 1;
  w.disk_every = 0;
  w.recycle_every = 40;
  return w;
}

struct KmemResult {
  bool completed = false;
  double ms = 0;
  double units_per_s = 0;
  std::uint64_t vtlb_fills = 0;
  std::uint64_t pressure_evicts = 0;
  std::uint64_t flush_evicts = 0;
  std::uint64_t used_end = 0;
  std::uint64_t vm_errors = 0;
  // Post-construction appetite; the sweep derives pinch points from it.
  std::uint64_t boot_used = 0;
};

KmemResult RunWithQuota(std::uint64_t quota_frames, bool smoke) {
  root::SystemConfig sc;
  sc.machine =
      hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  system.hv.set_vtlb_policy(hv::VtlbPolicy{.cache_contexts = true});

  vmm::VmmConfig vc;
  vc.name = "kmem-sweep";
  vc.guest_mem_bytes = kGuestMem;
  vc.mode = hw::TranslationMode::kShadow;
  vc.kmem_quota_frames = quota_frames;
  vmm::Vmm vm(&system.hv, system.root.get(), vc);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = kGuestMem});
  gk.BuildStandardHandlers();
  guest::CompileWorkload workload(&gk, nullptr, ThrashWorkload(smoke));
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  KmemResult r;
  r.boot_used = vm.vmm_pd()->kmem().used();

  const sim::PicoSeconds t0 = system.machine.cpu(0).NowPs();
  system.hv.RunUntilCondition([&workload] { return workload.done(); },
                              sim::Seconds(60));

  r.completed = workload.done();
  r.ms = static_cast<double>(system.machine.cpu(0).NowPs() - t0) / 1e9;
  r.units_per_s =
      static_cast<double>(workload.units_done()) / (r.ms / 1e3);
  r.vtlb_fills = system.hv.EventCount("vTLB Fill");
  r.pressure_evicts = system.hv.EventCount("vTLB Pressure Evict");
  r.flush_evicts = system.hv.EventCount("vTLB Context Evict");
  r.used_end = vm.vmm_pd()->kmem().used();
  r.vm_errors = system.hv.EventCount("VM Error");
  return r;
}

void Run(const BenchOptions& opts) {
  PrintHeader("Extension: shadow-paging throughput vs kernel-memory quota");

  // Unlimited reference: how much kernel memory the workload wants when
  // nothing pinches, and the throughput ceiling.
  const KmemResult free_run = RunWithQuota(hv::KmemQuota::kUnlimited, opts.smoke);
  const std::uint64_t appetite = free_run.used_end - free_run.boot_used;
  std::printf("construction baseline: %llu frames; workload appetite: +%llu "
              "frames; unlimited run: %.3f ms\n\n",
              static_cast<unsigned long long>(free_run.boot_used),
              static_cast<unsigned long long>(appetite), free_run.ms);

  std::printf("%-16s | %10s %10s %10s %10s %10s %8s\n", "quota[frames]",
              "time[ms]", "units/s", "fills", "p-evict", "used-end", "errors");
  auto row = [](const char* label, const KmemResult& r) {
    std::printf("%-16s | %10.3f %10.0f %10llu %10llu %10llu %8llu%s\n", label,
                r.ms, r.units_per_s,
                static_cast<unsigned long long>(r.vtlb_fills),
                static_cast<unsigned long long>(r.pressure_evicts),
                static_cast<unsigned long long>(r.used_end),
                static_cast<unsigned long long>(r.vm_errors),
                r.completed ? "" : "  [INCOMPLETE]");
  };
  row("unlimited", free_run);

  // Pinch points: the construction baseline plus a shrinking slice of the
  // workload's appetite. The last point leaves barely one context's worth
  // of headroom — maximal pressure that can still make progress.
  const std::uint64_t spares[] = {appetite / 2, appetite / 4, appetite / 8, 8};
  for (const std::uint64_t spare : spares) {
    const std::uint64_t quota = free_run.boot_used + spare;
    char label[32];
    std::snprintf(label, sizeof label, "boot+%llu",
                  static_cast<unsigned long long>(spare));
    row(label, RunWithQuota(quota, opts.smoke));
  }

  std::printf(
      "\nShape: below the workload's natural appetite the kernel serves new "
      "shadow-table frames by evicting the guest's own LRU contexts "
      "(p-evict). Moderate pinches only trim dormant contexts the guest "
      "would have flushed anyway; once the quota nears a single working "
      "set, every context switch re-faults its tables and throughput bends "
      "— but it bends instead of breaking: used-end stays under the quota "
      "and no point reports a VM error.\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
