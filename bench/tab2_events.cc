// Table 2: distribution of virtualization events — kernel compilation
// under nested paging (EPT) and shadow paging (vTLB), plus the 4 KiB disk
// benchmark. Also prints the §8.5 average VM-exit cost breakdown.
//
// The printed event counts are derived from the structured trace (the
// TraceReport folding pass), not read off the counter registry. The
// counters are kept as an independent tally and the two are cross-checked
// row by row before anything is printed; a mismatch aborts the benchmark.
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <vector>

#include "bench/common.h"
#include "src/guest/workload_disk.h"

namespace nova::bench {
namespace {

const char* kRows[] = {
    "vTLB Fill",        "Guest Page Fault", "CR Read/Write", "vTLB Flush",
    "Port I/O",         "INVLPG",           "Hardware Interrupts",
    "Memory-Mapped I/O", "HLT",             "Interrupt Window",
    "Recall",           "CPUID",
};

guest::CompileWorkload::Config Tab2Workload(bool smoke) {
  guest::CompileWorkload::Config w;
  w.processes = 4;
  w.ws_pages = 192;
  w.total_units = smoke ? 800 : 40000;  // Longer run for stable statistics.
  w.compute_cycles = 30000;
  w.mem_bursts = 6;
  w.fresh_prob = 0.04;
  w.switch_every = 20;
  w.disk_every = 150;
  return w;
}

// Trace-derived event count for one Table 2 row.
std::uint64_t TraceValue(const RunResult& r, const char* row) {
  const auto it = r.trace_rows.find(row);
  return it == r.trace_rows.end() ? 0 : it->second.count;
}

// Every printed row must be backed by an identical counter value; the
// trace and the counters are maintained at the same call sites, so any
// divergence means an instrumentation bug.
void CheckTraceAgreesWithCounters(const char* label, const RunResult& r) {
  bool ok = true;
  for (const char* row : kRows) {
    const std::uint64_t traced = TraceValue(r, row);
    const std::uint64_t counted = r.stats.Value(row);
    if (traced != counted) {
      std::fprintf(stderr,
                   "tab2: %s: trace/counter mismatch for '%s': "
                   "trace=%llu counter=%llu\n",
                   label, row, static_cast<unsigned long long>(traced),
                   static_cast<unsigned long long>(counted));
      ok = false;
    }
  }
  if (!ok) {
    std::exit(1);
  }
}

// Cycles per VM exit for one exit-causing opcode, measured in isolation.
double MeasureExitCost(hw::isa::Opcode opcode, std::uint64_t iters) {
  root::SystemConfig sc;
  sc.machine = hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  vmm::VmmConfig vc;
  vc.guest_mem_bytes = 64ull << 20;
  vmm::Vmm vm(&system.hv, system.root.get(), vc);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 64ull << 20});
  gk.BuildStandardHandlers();
  if (opcode == hw::isa::Opcode::kLoad) {
    // MMIO exits need the device window mapped in the guest page table.
    gk.MapDevice(gk.kernel_cr3(), vmm::vahci::kMmioBase, hw::kPageSize);
  }

  hw::isa::Assembler& as = gk.text();
  const std::uint64_t main = as.Here();
  as.MovImm(5, iters);  // r5: CPUID/emulation clobber r0-r3.
  std::uint64_t top = 0;
  // Only the exit-triggering opcodes of Table 2 are meaningful here.
  switch (opcode) {  // nova-lint: allow(enum-switch)
    case hw::isa::Opcode::kOut:
      top = as.Out(0x80, 1);  // Unclaimed debug port: full exit path.
      break;
    case hw::isa::Opcode::kCpuid:
      top = as.Cpuid();
      break;
    default:
      top = as.Load(1, hw::isa::kNoReg, vmm::vahci::kMmioBase + hw::ahci::kPxSsts);
      break;
  }
  as.Loop(5, top);
  as.Hlt();
  gk.EmitBoot(main);
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  // Skip boot, then measure the steady-state loop.
  hw::GuestState& gs = vm.gstate();
  const sim::Cycles before = system.machine.cpu(0).cycles();
  system.hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(30));
  const sim::Cycles total = system.machine.cpu(0).cycles() - before;
  // Subtract the loop's own work (~2 instructions/iteration).
  return static_cast<double>(total) / static_cast<double>(iters);
}

RunResult RunDisk4k(bool smoke) {
  // The disk column: the 4 KiB virtualized-AHCI benchmark.
  root::SystemConfig sc;
  sc.machine = hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  vmm::VmmConfig vc;
  vc.guest_mem_bytes = 128ull << 20;
  vmm::Vmm vm(&system.hv, system.root.get(), vc);
  vm.ConnectDiskServer(&system.StartDiskServer());

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      &gk, guest::GuestAhciDriver::Config{
               .mmio_base = vmm::vahci::kMmioBase,
               .irq_vector = vmm::vahci::kVector,
               .read_ci = [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm.vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
               }});
  guest::DiskWorkload workload(
      &gk, &driver,
      guest::DiskWorkload::Config{.block_bytes = 4096,
                                  .total_requests = smoke ? 100u : 2000u});
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  system.hv.stats().ResetAll();
  sim::Tracer& tracer = system.machine.tracer();
  sim::TraceReport report;
  tracer.Reset();
  tracer.set_sink(&report);
  tracer.set_enabled(true);
  const sim::PicoSeconds t0 = system.machine.cpu(0).NowPs();
  system.hv.RunUntilCondition([&workload] { return workload.done(); },
                              sim::Seconds(60));
  RunResult r;
  r.seconds = static_cast<double>(system.machine.cpu(0).NowPs() - t0) / 1e12;
  for (const auto& [name, counter] : system.hv.stats().counters()) {
    r.stats.counter(name).Add(counter.value());
  }
  tracer.set_enabled(false);
  report.FoldRemaining(tracer);
  r.trace_digest = tracer.digest();
  r.trace_rows = report.Rows(tracer);
  tracer.set_sink(nullptr);
  r.stats.counter("Disk Operations").Add(workload.completed());
  r.stats.counter("Injected vIRQ").Add(vm.interrupts_injected());
  r.exits = vm.exits_handled();
  return r;
}

void Run(const BenchOptions& opts) {
  PrintHeader("Table 2: distribution of virtualization events");

  RunConfig ept;
  ept.label = "EPT";
  ept.stack = StackKind::kNova;
  ept.workload = Tab2Workload(opts.smoke);
  ept.trace = true;
  ept.trace_json = opts.trace_json;
  RunConfig vtlb = ept;
  vtlb.label = "vTLB";
  vtlb.mode = hw::TranslationMode::kShadow;
  vtlb.trace_json.clear();  // --trace-json dumps the EPT run.

  const RunResult ept_r = RunCompile(ept);
  const RunResult vtlb_r = RunCompile(vtlb);
  const RunResult disk_r = RunDisk4k(opts.smoke);

  // The table below is printed from the trace; fail loudly first if the
  // folded trace disagrees with the independent counter tally anywhere.
  CheckTraceAgreesWithCounters("EPT", ept_r);
  CheckTraceAgreesWithCounters("vTLB", vtlb_r);
  CheckTraceAgreesWithCounters("Disk 4k", disk_r);

  std::printf("%-22s %14s %14s %14s\n", "Event", "EPT", "vTLB", "Disk 4k");
  for (const char* row : kRows) {
    std::printf("%-22s %14llu %14llu %14llu\n", row,
                static_cast<unsigned long long>(TraceValue(ept_r, row)),
                static_cast<unsigned long long>(TraceValue(vtlb_r, row)),
                static_cast<unsigned long long>(TraceValue(disk_r, row)));
  }
  std::printf("%-22s %14llu %14llu %14llu\n", "Injected vIRQ",
              static_cast<unsigned long long>(ept_r.stats.Value("Injected vIRQ")),
              static_cast<unsigned long long>(vtlb_r.stats.Value("Injected vIRQ")),
              static_cast<unsigned long long>(disk_r.stats.Value("Injected vIRQ")));
  std::printf("%-22s %14llu %14llu %14llu\n", "Disk Operations",
              static_cast<unsigned long long>(ept_r.stats.Value("disk-reads")),
              static_cast<unsigned long long>(vtlb_r.stats.Value("disk-reads")),
              static_cast<unsigned long long>(disk_r.stats.Value("Disk Operations")));
  std::printf("%-22s %14.3f %14.3f %14.3f\n", "Runtime (seconds)", ept_r.seconds,
              vtlb_r.seconds, disk_r.seconds);

  // §8.5: average cost of a user-level VM exit, measured with dedicated
  // exit micro-loops and weighted by the EPT column's event mix.
  const std::uint64_t iters = opts.smoke ? 200 : 2000;
  const double pio_cost = MeasureExitCost(hw::isa::Opcode::kOut, iters);
  const double cpuid_cost = MeasureExitCost(hw::isa::Opcode::kCpuid, iters);
  const double mmio_cost = MeasureExitCost(hw::isa::Opcode::kLoad, iters);
  const double pio_n = static_cast<double>(ept_r.stats.Value("Port I/O"));
  const double mmio_n = static_cast<double>(ept_r.stats.Value("Memory-Mapped I/O"));
  const double other_n = static_cast<double>(ept_r.exits) - pio_n - mmio_n;
  const double per_exit = (pio_cost * pio_n + mmio_cost * mmio_n +
                           cpuid_cost * std::max(other_n, 0.0)) /
                          static_cast<double>(ept_r.exits);
  const hw::CpuModel& blm = hw::CoreI7_920();
  const double transition = blm.vm_exit + blm.vm_resume;
  const hv::HvCosts costs;
  const double ipc = 2.0 * (costs.portal_traversal + costs.context_switch +
                            costs.addr_space_switch + costs.reply_path / 2 +
                            costs.ipc_refill_entries * blm.tlb_refill_entry);
  std::printf("\n§8.5 — average user-level VM-exit cost (EPT event mix):\n");
  std::printf("  per type: PIO %.0f, CPUID %.0f, MMIO %.0f cycles\n", pio_cost,
              cpuid_cost, mmio_cost);
  std::printf("  exits: %llu, weighted avg: %.0f cycles (paper: ~3900)\n",
              static_cast<unsigned long long>(ept_r.exits), per_exit);
  std::printf("  transition guest<->host: %.0f cycles (%.0f%%; paper 1016, 26%%)\n",
              transition, transition / per_exit * 100);
  std::printf("  hv<->VMM IPC (both ways): %.0f cycles (%.0f%%; paper ~600, 15%%)\n",
              ipc, ipc / per_exit * 100);
  std::printf("  instruction/device emulation: %.0f cycles (%.0f%%; paper ~59%%)\n",
              per_exit - transition - ipc,
              (per_exit - transition - ipc) / per_exit * 100);
  std::printf(
      "\nPaper column sums (470s/645s/10s runs): EPT exits total 867341; "
      "vTLB dominated by 182M fills; disk: 6 MMIO per operation.\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
