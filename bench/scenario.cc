#include "bench/scenario.h"

namespace nova::bench {

CompileScenario::CompileScenario(const RunConfig& config) : config_(config) {
  // This sequence is shared with RunCompile's virtualized path: any change
  // here changes construction order for every golden-trace digest.
  root::SystemConfig sc;
  sc.machine =
      hw::MachineConfig{.cpus = {config.cpu}, .ram_size = 512ull << 20};
  sc.hv_costs = config.stack == StackKind::kMonolithic
                    ? baseline::MonolithicCosts()
                    : baseline::NovaCosts();
  system_ = std::make_unique<root::NovaSystem>(sc);
  system_->hv.set_vtlb_policy(config.vtlb);

  vmm::VmmConfig vc;
  vc.guest_mem_bytes = kBenchGuestMem;
  vc.large_pages = config.large_pages;
  vc.mode = config.mode;
  if (config.stack == StackKind::kDirect) {
    vc.disable_intercepts = true;
    vc.direct_interrupts = true;
  }
  if (config.stack == StackKind::kMonolithic) {
    vc.full_state_transfer = true;
    baseline::ApplyMonolithicVmmCosts(vc);
  }
  vm_ = std::make_unique<vmm::Vmm>(&system_->hv, system_->root.get(), vc);

  const bool direct = config.stack == StackKind::kDirect;
  if (direct) {
    (void)vm_->AssignHostDevice("ahci", 43);
    (void)vm_->AssignHostDevice("timer", 32);
    (void)vm_->GrantGuestPorts(0x20, 2);  // PIC handshake ports.
  } else if (config.workload.disk_every != 0) {
    vm_->ConnectDiskServer(&system_->StartDiskServer());
  }

  mux_.Attach(system_->hv.engine(0));
  vmm::Vmm* vm = vm_.get();
  gk_ = std::make_unique<guest::GuestKernel>(
      &system_->machine.mem(),
      [vm](std::uint64_t gpa) { return vm->GpaToHpa(gpa); }, &mux_,
      guest::GuestKernelConfig{.mem_bytes = kBenchGuestMem,
                               .timer_hz = config.timer_hz});
  gk_->BuildStandardHandlers();

  guest::GuestAhciDriver::Config dc =
      direct
          ? guest::GuestAhciDriver::Config{
                .mmio_base = root::kAhciMmioBase,
                .irq_vector = 43,
                .read_ci =
                    [this]() -> std::uint32_t {
                      std::uint64_t v = 0;
                      (void)system_->machine.bus().MmioRead(
                          root::kAhciMmioBase + hw::ahci::kPxCi, 4, &v);
                      return static_cast<std::uint32_t>(v);
                    }}
          : guest::GuestAhciDriver::Config{
                .mmio_base = vmm::vahci::kMmioBase,
                .irq_vector = vmm::vahci::kVector,
                .read_ci = [vm]() -> std::uint32_t {
                  return static_cast<std::uint32_t>(vm->vahci().MmioRead(
                      vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
                }};
  driver_ = std::make_unique<guest::GuestAhciDriver>(gk_.get(), dc);
  workload_ = std::make_unique<guest::CompileWorkload>(
      gk_.get(), config.workload.disk_every != 0 ? driver_.get() : nullptr,
      config.workload);
  const std::uint64_t main = workload_->EmitMain();
  gk_->EmitBoot(main);
  gk_->Install();
  gk_->PrimeState(vm_->gstate());
  (void)vm_->Start(vm_->gstate().rip);
}

sim::PicoSeconds CompileScenario::now() const {
  return system_->machine.cpu(0).NowPs();
}

void CompileScenario::RunUntilDone(sim::PicoSeconds deadline_ps) {
  guest::CompileWorkload* w = workload_.get();
  system_->hv.RunUntilCondition([w] { return w->done(); }, deadline_ps);
}

void CompileScenario::RunFor(sim::PicoSeconds dt) {
  system_->hv.RunUntil(now() + dt);
}

Status CompileScenario::SaveState(sim::Snapshot& snap) const {
  if (Status s = system_->SaveState(snap); s != Status::kSuccess) {
    return s;
  }
  if (Status s = vm_->SaveState(snap.Section("vmm.guest", 1));
      s != Status::kSuccess) {
    return s;
  }
  if (Status s = gk_->SaveState(snap.Section("guest.kernel", 1));
      s != Status::kSuccess) {
    return s;
  }
  if (Status s = driver_->SaveState(snap.Section("guest.driver", 1));
      s != Status::kSuccess) {
    return s;
  }
  return workload_->SaveState(snap.Section("guest.workload", 1));
}

Status CompileScenario::LoadState(sim::Snapshot& snap) {
  if (Status s = system_->LoadState(snap); s != Status::kSuccess) {
    return s;
  }
  const auto load = [&snap](const char* name, auto* obj) -> Status {
    sim::SnapReader r = snap.Open(name, 1);
    if (Status s = obj->LoadState(r); s != Status::kSuccess) {
      return s;
    }
    return r.Finish();
  };
  if (Status s = load("vmm.guest", vm_.get()); s != Status::kSuccess) {
    return s;
  }
  if (Status s = load("guest.kernel", gk_.get()); s != Status::kSuccess) {
    return s;
  }
  if (Status s = load("guest.driver", driver_.get()); s != Status::kSuccess) {
    return s;
  }
  return load("guest.workload", workload_.get());
}

}  // namespace nova::bench
