// Figure 6: CPU overhead for sequential disk reads with different block
// sizes — native AHCI vs. directly assigned (IOMMU-remapped) vs. fully
// virtualized controller.
#include <cstdio>

#include "bench/common.h"
#include "src/guest/workload_disk.h"

namespace nova::bench {
namespace {

struct DiskRunResult {
  double utilization = 0;
  double requests_per_s = 0;
  double mbit_per_s = 0;
  std::uint64_t mmio_exits = 0;
  std::uint64_t pio_exits = 0;
};

// Set by --smoke: shorter sweep, fewer requests per point.
bool g_smoke = false;

std::uint64_t RequestsFor(std::uint32_t block) {
  // Enough requests to measure a stable rate without long runtimes.
  const double rate = std::min(8333.0, 67e6 / block);
  const auto n = static_cast<std::uint64_t>(rate * 0.25);
  const std::uint64_t full = std::max<std::uint64_t>(n, 200);
  return g_smoke ? std::min<std::uint64_t>(full, 50) : full;
}

DiskRunResult RunNativeDisk(std::uint32_t block) {
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 512ull << 20,
                                        .iommu_present = false});
  root::SetupStandardPlatform(&machine, nullptr);
  machine.irq().Configure(root::kAhciGsi, 0, 43);
  machine.irq().Unmask(root::kAhciGsi);

  guest::BareMetalRunner runner(&machine);
  guest::GuestKernel gk(
      &machine.mem(), [](std::uint64_t gpa) { return gpa; }, &runner.mux(),
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      &gk, guest::GuestAhciDriver::Config{
               .mmio_base = root::kAhciMmioBase,
               .irq_vector = 43,
               .read_ci = [&machine]() -> std::uint32_t {
                 std::uint64_t v = 0;
                 (void)machine.bus().MmioRead(root::kAhciMmioBase + hw::ahci::kPxCi, 4, &v);
                 return static_cast<std::uint32_t>(v);
               }});
  guest::DiskWorkload workload(
      &gk, &driver,
      guest::DiskWorkload::Config{.block_bytes = block,
                                  .total_requests = RequestsFor(block)});
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(runner.gs());

  hw::Cpu& cpu = machine.cpu(0);
  cpu.ResetUtilization();
  const sim::PicoSeconds t0 = cpu.NowPs();
  runner.RunUntil([&workload] { return workload.done(); }, sim::Seconds(30));

  DiskRunResult r;
  const double secs = static_cast<double>(cpu.NowPs() - t0) / 1e12;
  r.utilization = cpu.Utilization();
  r.requests_per_s = static_cast<double>(workload.completed()) / secs;
  r.mbit_per_s = r.requests_per_s * block * 8 / 1e6;
  return r;
}

DiskRunResult RunVmDisk(std::uint32_t block, bool direct) {
  root::SystemConfig sc;
  sc.machine = hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);

  vmm::VmmConfig vc;
  vc.guest_mem_bytes = 128ull << 20;
  vmm::Vmm vm(&system.hv, system.root.get(), vc);

  guest::GuestAhciDriver::Config dc;
  if (direct) {
    (void)vm.AssignHostDevice("ahci", 43);
    dc.mmio_base = root::kAhciMmioBase;
    dc.irq_vector = 43;
    dc.read_ci = [&system]() -> std::uint32_t {
      std::uint64_t v = 0;
      (void)system.machine.bus().MmioRead(root::kAhciMmioBase + hw::ahci::kPxCi, 4, &v);
      return static_cast<std::uint32_t>(v);
    };
  } else {
    vm.ConnectDiskServer(&system.StartDiskServer());
    dc.mmio_base = vmm::vahci::kMmioBase;
    dc.irq_vector = vmm::vahci::kVector;
    dc.read_ci = [&vm]() -> std::uint32_t {
      return static_cast<std::uint32_t>(
          vm.vahci().MmioRead(vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
    };
  }

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(&gk, dc);
  guest::DiskWorkload workload(
      &gk, &driver,
      guest::DiskWorkload::Config{.block_bytes = block,
                                  .total_requests = RequestsFor(block)});
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  hw::Cpu& cpu = system.machine.cpu(0);
  cpu.ResetUtilization();
  system.hv.stats().ResetAll();
  const sim::PicoSeconds t0 = cpu.NowPs();
  system.hv.RunUntilCondition([&workload] { return workload.done(); },
                              sim::Seconds(30));

  DiskRunResult r;
  const double secs = static_cast<double>(cpu.NowPs() - t0) / 1e12;
  r.utilization = cpu.Utilization();
  r.requests_per_s = static_cast<double>(workload.completed()) / secs;
  r.mbit_per_s = r.requests_per_s * block * 8 / 1e6;
  r.mmio_exits = system.hv.EventCount("Memory-Mapped I/O");
  r.pio_exits = system.hv.EventCount("Port I/O");
  return r;
}

void Run(const BenchOptions& opts) {
  g_smoke = opts.smoke;
  PrintHeader("Figure 6: sequential disk reads, CPU utilization vs block size");
  std::printf("%-8s | %-22s | %-22s | %-22s\n", "", "Native", "Direct (IOMMU)",
              "Virtualized vAHCI");
  std::printf("%-8s | %10s %10s | %10s %10s | %10s %10s %6s\n", "block",
              "util[%]", "req/s", "util[%]", "req/s", "util[%]", "req/s",
              "mmio/rq");
  const std::uint32_t max_block = g_smoke ? 4096 : 65536;
  const std::uint32_t step = g_smoke ? 8 : 2;
  for (std::uint32_t block = 512; block <= max_block; block *= step) {
    const DiskRunResult native = RunNativeDisk(block);
    const DiskRunResult direct = RunVmDisk(block, /*direct=*/true);
    const DiskRunResult virt = RunVmDisk(block, /*direct=*/false);
    const double reqs = static_cast<double>(RequestsFor(block));
    std::printf("%-8u | %10.2f %10.0f | %10.2f %10.0f | %10.2f %10.0f %6.1f\n",
                block, native.utilization * 100, native.requests_per_s,
                direct.utilization * 100, direct.requests_per_s,
                virt.utilization * 100, virt.requests_per_s,
                static_cast<double>(virt.mmio_exits) / reqs);
  }
  std::printf(
      "\nPaper shape: utilization roughly flat below the ~8 KiB bandwidth "
      "crossover, then falls with the request rate; Direct roughly doubles "
      "native utilization, Virtualized doubles it again (6 extra MMIO "
      "exits per request).\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
