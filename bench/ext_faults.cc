// Extension: fault injection under load.
//
// Part 1 — disk throughput under media-error rates: the virtualized disk
// path (guest driver -> vAHCI -> disk server -> AHCI) with the server's
// bounded retry machinery and the guest driver's error tail enabled. The
// interesting shape: throughput degrades smoothly with the error rate
// (each error costs one retry round trip), and no rate wedges the stack.
//
// Part 2 — VMM crash recovery latency across supervisor check periods: a
// VMM is killed mid-workload; the root detects the stale heartbeat, tears
// the domains down and restarts the monitor over the surviving guest RAM.
// Detection latency is stale_checks * period; the end-to-end cost shows up
// as added workload completion time.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/guest/workload_disk.h"
#include "src/root/supervisor.h"
#include "src/sim/fault.h"

namespace nova::bench {
namespace {

constexpr std::uint32_t kBlock = 4096;

struct FaultDiskResult {
  double requests_per_s = 0;
  double utilization = 0;
  std::uint64_t injected = 0;
  std::uint64_t server_retries = 0;
  std::uint64_t server_failed = 0;
  std::uint64_t driver_retries = 0;
};

FaultDiskResult RunDiskWithErrorRate(double rate, std::uint64_t requests) {
  root::SystemConfig sc;
  sc.machine =
      hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  services::DiskServer& server = system.StartDiskServer();
  server.SetRequestDeadline(sim::Milliseconds(10), /*max_retries=*/3,
                            sim::Microseconds(50));

  sim::FaultPlan plan(/*seed=*/5);
  if (rate > 0) {
    plan.Schedule({.at = 0,
                   .kind = sim::FaultKind::kDiskMediaError,
                   .target = "disk",
                   .count = 0,  // Unlimited budget: rate-limited only.
                   .rate = rate});
  }
  plan.Arm(&system.machine.events());
  system.platform.disk->set_fault_plan(&plan);

  vmm::VmmConfig vc;
  vc.guest_mem_bytes = 128ull << 20;
  vmm::Vmm vm(&system.hv, system.root.get(), vc);
  vm.ConnectDiskServer(&server);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      &gk, guest::GuestAhciDriver::Config{
               .mmio_base = vmm::vahci::kMmioBase,
               .irq_vector = vmm::vahci::kVector,
               .read_ci =
                   [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm.vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
               },
               .handle_errors = true,
               .read_err =
                   [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm.vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxVs, 4));
               }});
  guest::DiskWorkload workload(
      &gk, &driver,
      guest::DiskWorkload::Config{.block_bytes = kBlock,
                                  .total_requests = requests});
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  hw::Cpu& cpu = system.machine.cpu(0);
  cpu.ResetUtilization();
  const sim::PicoSeconds t0 = cpu.NowPs();
  system.hv.RunUntilCondition([&workload] { return workload.done(); },
                              sim::Seconds(60));

  FaultDiskResult r;
  const double secs = static_cast<double>(cpu.NowPs() - t0) / 1e12;
  r.requests_per_s = static_cast<double>(workload.completed()) / secs;
  r.utilization = cpu.Utilization();
  r.injected = plan.injected(sim::FaultKind::kDiskMediaError);
  r.server_retries = server.requests_retried();
  r.server_failed = server.requests_failed();
  r.driver_retries = driver.retried();
  return r;
}

struct RecoveryResult {
  bool completed = false;
  std::uint64_t recoveries = 0;
  double detect_us = 0;
  double total_ms = 0;
};

RecoveryResult RunCrashRecovery(sim::PicoSeconds check_period_ps, bool crash,
                                std::uint64_t requests) {
  root::SystemConfig sc;
  sc.machine =
      hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  services::DiskServer& server = system.StartDiskServer();

  sim::FaultPlan plan(/*seed=*/9);
  if (crash) {
    plan.Schedule({.at = sim::Milliseconds(2),
                   .kind = sim::FaultKind::kVmmCrash,
                   .target = "vm",
                   .count = 1,
                   .rate = 1.0});
  }
  plan.Arm(&system.machine.events());

  vmm::VmmConfig vc;
  vc.name = "vm";
  vc.guest_mem_bytes = 32ull << 20;
  auto vm = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), vc);
  vm->SetFaultPlan(&plan);
  vm->ConnectDiskServer(&server);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm->GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 32ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      &gk, guest::GuestAhciDriver::Config{
               .mmio_base = vmm::vahci::kMmioBase,
               .irq_vector = vmm::vahci::kVector,
               .read_ci =
                   [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm->vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
               },
               .handle_errors = true,
               .read_err =
                   [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm->vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxVs, 4));
               }});
  guest::DiskWorkload workload(
      &gk, &driver,
      guest::DiskWorkload::Config{.block_bytes = kBlock,
                                  .total_requests = requests});
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm->gstate());
  (void)vm->Start(vm->gstate().rip);

  root::VmmSupervisor::Config supc;
  supc.check_period_ps = check_period_ps;
  supc.stale_checks = 2;
  root::VmmSupervisor supervisor(&system.hv, system.root.get(), supc);
  supervisor.Watch(vm.get(), [&](const root::VmmSupervisor::RecoveryInfo& info) {
    server.CloseChannel(vm->disk_channel_id());
    vm.reset();
    vmm::VmmConfig cr = vc;
    cr.fixed_guest_base_page = info.guest_base_page;
    vm = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), cr);
    vm->ConnectDiskServer(&server);
    (void)vm->Start(info.gstate.rip);
    vm->gstate() = info.gstate;
    vm->vahci().RestoreRegs(info.vahci_regs);
    vm->vahci().InjectAbort(driver.issued_mask());
  });

  const sim::PicoSeconds t0 = system.machine.cpu(0).NowPs();
  system.hv.RunUntilCondition([&workload] { return workload.done(); },
                              sim::Seconds(60));
  RecoveryResult r;
  r.completed = workload.done();
  r.recoveries = supervisor.recoveries();
  r.detect_us = static_cast<double>(supervisor.last_detect_latency_ps()) / 1e6;
  r.total_ms = static_cast<double>(system.machine.cpu(0).NowPs() - t0) / 1e9;
  return r;
}

void Run(const BenchOptions& opts) {
  const std::uint64_t disk_requests = opts.smoke ? 60 : 500;
  const std::uint64_t recovery_requests = opts.smoke ? 40 : 150;
  PrintHeader("Extension: disk throughput under injected media-error rates");
  std::printf("%-10s | %10s %10s %10s %10s %10s\n", "error rate", "req/s",
              "util[%]", "injected", "srv-retry", "drv-retry");
  for (const double rate : {0.0, 1e-3, 1e-2, 5e-2}) {
    const FaultDiskResult r = RunDiskWithErrorRate(rate, disk_requests);
    std::printf("%-10g | %10.0f %10.2f %10llu %10llu %10llu\n", rate,
                r.requests_per_s, r.utilization * 100,
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.server_retries),
                static_cast<unsigned long long>(r.driver_retries));
  }

  PrintHeader("Extension: VMM crash recovery vs supervisor check period");
  const RecoveryResult clean =
      RunCrashRecovery(sim::Microseconds(200), false, recovery_requests);
  std::printf("fault-free workload time: %.3f ms\n\n", clean.total_ms);
  std::printf("%-12s | %12s %12s %12s\n", "period[us]", "detect[us]",
              "total[ms]", "overhead[ms]");
  const std::vector<std::uint64_t> periods =
      opts.smoke ? std::vector<std::uint64_t>{200, 1000}
                 : std::vector<std::uint64_t>{100, 200, 500, 1000, 2000};
  for (const std::uint64_t period_us : periods) {
    const RecoveryResult r = RunCrashRecovery(sim::Microseconds(period_us),
                                              /*crash=*/true, recovery_requests);
    std::printf("%-12llu | %12.0f %12.3f %12.3f%s\n",
                static_cast<unsigned long long>(period_us), r.detect_us,
                r.total_ms, r.total_ms - clean.total_ms,
                r.completed && r.recoveries == 1 ? "" : "  [INCOMPLETE]");
  }
  std::printf(
      "\nShape: detection latency is stale_checks * period; the end-to-end "
      "overhead tracks it plus the in-flight request replay, so tight "
      "heartbeat periods buy bounded recovery time for a fixed polling "
      "cost.\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
