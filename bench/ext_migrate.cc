// Extension: checkpoint/restore and live migration (DESIGN.md §13).
//
// Part 1 — stop-and-copy downtime vs guest dirty rate: iterative pre-copy
// migration of a running compile workload, sweeping the working-set size.
// Round 0 ships all of guest RAM while the guest keeps executing; each
// later round ships only what the guest re-dirtied during the previous
// transfer. The interesting shape: total migration time is dominated by
// the full copy and nearly flat, while downtime — the stop-and-copy
// residual plus the machine snapshot — grows with the dirty rate. At the
// smallest working set the pre-copy converges below the cutoff threshold
// and downtime is a tiny fraction of the total.
//
// Part 2 — recovery time, cold rebuild vs warm restart: a VM dies at a
// fixed point in its run. Cold recovery re-executes the workload from
// boot to the crash point; warm recovery restores the last periodic
// checkpoint and re-executes only the tail since that checkpoint. The
// sweep over checkpoint periods shows warm recovery cost growing linearly
// with the period (the re-execution window) while cold stays at the full
// crash-point cost.
//
// Part 3 — supervisor checkpointing for VMM crashes: the root's
// supervisor snapshots the device-model registers of each healthy VMM on
// a configurable cadence. When the VMM is killed, recovery restores the
// vAHCI registers from the last healthy-time checkpoint instead of
// reading them out of the crashed (untrusted) VMM — the guest and its
// in-flight requests survive either way, but only the checkpointed
// variant never trusts post-crash VMM memory.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "bench/scenario.h"
#include "src/guest/workload_disk.h"
#include "src/root/supervisor.h"
#include "src/services/migration.h"
#include "src/sim/fault.h"

namespace nova::bench {
namespace {

// --- Part 1: downtime vs dirty rate --------------------------------------

RunConfig DirtyConfig(std::uint32_t ws_pages) {
  RunConfig c;
  c.stack = StackKind::kNova;
  c.workload.processes = 2;
  c.workload.ws_pages = ws_pages;
  c.workload.total_units = 10'000'000;  // Never finishes: a live guest.
  c.workload.compute_cycles = 8000;
  c.workload.mem_bursts = 3;
  c.workload.switch_every = 10;
  c.workload.disk_every = 80;
  c.workload.recycle_every = 1'000'000;  // Steady-state working set.
  return c;
}

struct MigrateRow {
  std::uint32_t ws_pages = 0;
  double dirty_pages_per_ms = 0;
  services::MigrationResult r;
};

// A source/target pair of identically constructed nodes plus the wiring
// the migration driver needs between them.
struct Nodes {
  CompileScenario src;
  CompileScenario dst;
  explicit Nodes(const RunConfig& c) : src(c), dst(c) {}

  services::MigrationDriver::Endpoints Endpoints() {
    services::MigrationDriver::Endpoints ep;
    ep.source_hv = &src.system().hv;
    ep.source_vm_pd = src.vm().vm_pd();
    ep.link = src.system().platform.link.get();
    ep.guest_pages = kBenchGuestMem >> hw::kPageShift;
    ep.run_source = [this](sim::PicoSeconds dt) { src.RunFor(dt); };
    ep.save = [this](sim::Snapshot& s) { return src.SaveState(s); };
    ep.load = [this](sim::Snapshot& s) { return dst.LoadState(s); };
    return ep;
  }
};

MigrateRow RunMigration(std::uint32_t ws_pages) {
  Nodes nodes(DirtyConfig(ws_pages));
  nodes.src.RunFor(sim::Milliseconds(2));  // Warm the working set.

  services::MigrationConfig mc;
  mc.bandwidth_mbps = 40000;
  mc.max_rounds = 8;
  mc.stop_copy_threshold_pages = 64;
  services::MigrationDriver driver(nodes.Endpoints(), mc);

  MigrateRow row;
  row.ws_pages = ws_pages;
  row.r = driver.Run();
  if (row.r.round_pages.size() > 1) {
    // Pages dirtied during the round-0 transfer, per millisecond of it.
    const double round0_ms =
        (static_cast<double>(row.r.round_pages[0]) * 4096.0 * 8.0e6 /
             mc.bandwidth_mbps +
         static_cast<double>(mc.round_latency_ps)) /
        1e9;
    row.dirty_pages_per_ms =
        static_cast<double>(row.r.round_pages[1]) / round0_ms;
  }
  return row;
}

// --- Part 2: cold rebuild vs warm restart ---------------------------------

RunConfig RecoveryConfig() {
  RunConfig c = DirtyConfig(/*ws_pages=*/64);
  return c;
}

struct RecoveryRow {
  double period_ms = 0;       // Checkpoint cadence.
  double ckpt_age_ms = 0;     // Crash time minus last checkpoint time.
  double snapshot_mb = 0;     // Shipped state for the warm path.
  double warm_ms = 0;         // Simulated time to re-reach the crash point.
  double cold_ms = 0;
};

RecoveryRow RunColdVsWarm(sim::PicoSeconds period_ps,
                          sim::PicoSeconds crash_at_ps) {
  const RunConfig cfg = RecoveryConfig();

  // The victim runs to the crash point, checkpointing on the cadence.
  CompileScenario live(cfg);
  sim::Snapshot last;
  sim::PicoSeconds last_at = 0;
  sim::PicoSeconds done = 0;
  while (done + period_ps <= crash_at_ps) {
    live.RunFor(period_ps);
    done += period_ps;
    last = sim::Snapshot();
    (void)live.SaveState(last);
    last_at = done;
  }
  live.RunFor(crash_at_ps - done);  // ...and dies here.
  const std::uint64_t crash_units = live.workload().units_done();

  RecoveryRow row;
  row.period_ms = static_cast<double>(period_ps) / 1e9;
  row.ckpt_age_ms = static_cast<double>(crash_at_ps - last_at) / 1e9;
  row.snapshot_mb =
      static_cast<double>(last.PayloadBytes()) / (1024.0 * 1024.0);

  // Warm: restore the last checkpoint, re-execute only the tail.
  CompileScenario warm(cfg);
  (void)warm.LoadState(last);
  const sim::PicoSeconds warm_t0 = warm.now();
  guest::CompileWorkload* ww = &warm.workload();
  warm.system().hv.RunUntilCondition(
      [ww, crash_units] { return ww->units_done() >= crash_units; },
      warm_t0 + sim::Seconds(60));
  row.warm_ms = static_cast<double>(warm.now() - warm_t0) / 1e9;

  // Cold: rebuild from nothing, re-execute boot to the crash point.
  CompileScenario cold(cfg);
  guest::CompileWorkload* cw = &cold.workload();
  cold.system().hv.RunUntilCondition(
      [cw, crash_units] { return cw->units_done() >= crash_units; },
      sim::Seconds(60));
  row.cold_ms = static_cast<double>(cold.now()) / 1e9;
  return row;
}

// --- Part 3: supervisor checkpointing across a VMM crash ------------------

struct SupervisorRow {
  bool completed = false;
  std::uint64_t checkpoints = 0;
  bool regs_from_checkpoint = false;
  double detect_us = 0;
  double total_ms = 0;
};

SupervisorRow RunSupervisedCrash(std::uint32_t checkpoint_every,
                                 std::uint64_t requests) {
  root::SystemConfig sc;
  sc.machine =
      hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  services::DiskServer& server = system.StartDiskServer();

  sim::FaultPlan plan(/*seed=*/9);
  plan.Schedule({.at = sim::Milliseconds(2),
                 .kind = sim::FaultKind::kVmmCrash,
                 .target = "vm",
                 .count = 1,
                 .rate = 1.0});
  plan.Arm(&system.machine.events());

  vmm::VmmConfig vc;
  vc.name = "vm";
  vc.guest_mem_bytes = 32ull << 20;
  auto vm = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), vc);
  vm->SetFaultPlan(&plan);
  vm->ConnectDiskServer(&server);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(0));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm->GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 32ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      &gk, guest::GuestAhciDriver::Config{
               .mmio_base = vmm::vahci::kMmioBase,
               .irq_vector = vmm::vahci::kVector,
               .read_ci =
                   [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm->vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
               },
               .handle_errors = true,
               .read_err =
                   [&vm]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm->vahci().MmioRead(
                     vmm::vahci::kMmioBase + hw::ahci::kPxVs, 4));
               }});
  guest::DiskWorkload workload(
      &gk, &driver,
      guest::DiskWorkload::Config{.block_bytes = 4096,
                                  .total_requests = requests});
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm->gstate());
  (void)vm->Start(vm->gstate().rip);

  root::VmmSupervisor::Config supc;
  supc.check_period_ps = sim::Microseconds(200);
  supc.stale_checks = 2;
  supc.checkpoint_every_checks = checkpoint_every;
  root::VmmSupervisor supervisor(&system.hv, system.root.get(), supc);
  SupervisorRow row;
  supervisor.Watch(
      vm.get(), [&](const root::VmmSupervisor::RecoveryInfo& info) {
        row.regs_from_checkpoint = info.regs_from_checkpoint;
        server.CloseChannel(vm->disk_channel_id());
        vm.reset();
        vmm::VmmConfig cr = vc;
        cr.fixed_guest_base_page = info.guest_base_page;
        vm = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), cr);
        vm->ConnectDiskServer(&server);
        (void)vm->Start(info.gstate.rip);
        vm->gstate() = info.gstate;
        vm->vahci().RestoreRegs(info.vahci_regs);
        vm->vahci().InjectAbort(driver.issued_mask());
      });

  const sim::PicoSeconds t0 = system.machine.cpu(0).NowPs();
  system.hv.RunUntilCondition([&workload] { return workload.done(); },
                              sim::Seconds(60));
  row.completed = workload.done();
  row.checkpoints = supervisor.checkpoints();
  row.detect_us =
      static_cast<double>(supervisor.last_detect_latency_ps()) / 1e6;
  row.total_ms =
      static_cast<double>(system.machine.cpu(0).NowPs() - t0) / 1e9;
  return row;
}

// --- driver ---------------------------------------------------------------

void Run(const BenchOptions& opts) {
  PrintHeader("Extension: pre-copy migration downtime vs guest dirty rate");
  std::printf("%-9s | %11s %6s %9s %9s %10s %10s %7s\n", "ws pages",
              "dirty[p/ms]", "rounds", "precopy", "residual", "down[us]",
              "total[ms]", "down%");
  const std::vector<std::uint32_t> sweeps =
      opts.smoke ? std::vector<std::uint32_t>{16, 256}
                 : std::vector<std::uint32_t>{16, 64, 256, 1024};
  for (const std::uint32_t ws : sweeps) {
    const MigrateRow row = RunMigration(ws);
    const double down_us = static_cast<double>(row.r.downtime_ps) / 1e6;
    const double total_ms = static_cast<double>(row.r.total_ps) / 1e9;
    std::printf("%-9u | %11.0f %6u %9llu %9llu %10.1f %10.3f %6.2f%%%s\n",
                row.ws_pages, row.dirty_pages_per_ms, row.r.rounds,
                static_cast<unsigned long long>(row.r.precopy_pages),
                static_cast<unsigned long long>(row.r.stop_copy_pages),
                down_us, total_ms,
                100.0 * static_cast<double>(row.r.downtime_ps) /
                    static_cast<double>(row.r.total_ps),
                row.r.success ? "" : "  [FAILED]");
  }
  std::printf(
      "\nShape: the full round-0 copy dominates total time at every dirty "
      "rate; downtime is only the residual dirty set plus the machine "
      "snapshot, so it grows with the working set while staying a small "
      "fraction of the total.\n");

  PrintHeader("Extension: recovery time — cold rebuild vs warm restart");
  // Deliberately not a multiple of any checkpoint period, so the crash
  // always lands mid-interval and warm recovery has a real tail to redo.
  const sim::PicoSeconds crash_at =
      opts.smoke ? sim::Milliseconds(8) : sim::Microseconds(27'300);
  std::printf("crash point: %.0f ms into the run\n\n",
              static_cast<double>(crash_at) / 1e9);
  std::printf("%-11s | %11s %8s %9s %9s %7s\n", "period[ms]", "ckpt age",
              "snap[MB]", "warm[ms]", "cold[ms]", "speedup");
  const std::vector<std::uint64_t> periods =
      opts.smoke ? std::vector<std::uint64_t>{5}
                 : std::vector<std::uint64_t>{1, 2, 5, 10};
  for (const std::uint64_t period_ms : periods) {
    const RecoveryRow row =
        RunColdVsWarm(sim::Milliseconds(period_ms), crash_at);
    std::printf("%-11.0f | %11.1f %8.2f %9.3f %9.3f %6.1fx\n", row.period_ms,
                row.ckpt_age_ms, row.snapshot_mb, row.warm_ms, row.cold_ms,
                row.cold_ms / row.warm_ms);
  }
  std::printf(
      "\nShape: cold recovery always re-executes the whole run up to the "
      "crash; warm recovery re-executes only the window since the last "
      "checkpoint, so its cost scales with the checkpoint period, not with "
      "uptime.\n");

  PrintHeader("Extension: supervisor device-model checkpointing across a "
              "VMM crash");
  const std::uint64_t requests = opts.smoke ? 40 : 150;
  std::printf("%-11s | %6s %10s %11s %10s %10s\n", "ckpt every", "ckpts",
              "from-ckpt", "detect[us]", "total[ms]", "completed");
  for (const std::uint32_t every : {0u, 1u}) {
    const SupervisorRow row = RunSupervisedCrash(every, requests);
    std::printf("%-11u | %6llu %10s %11.0f %10.3f %10s\n", every,
                static_cast<unsigned long long>(row.checkpoints),
                row.regs_from_checkpoint ? "yes" : "no", row.detect_us,
                row.total_ms, row.completed ? "yes" : "NO");
  }
  std::printf(
      "\nShape: with checkpointing on, recovery restores device-model "
      "registers captured while the VMM was still healthy instead of "
      "reading them from the crashed VMM's memory; the guest completes "
      "either way, but the checkpointed path never trusts post-crash VMM "
      "state.\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
