// Figure 9: vTLB-miss microbenchmark.
//
// Measures the cost of handling one virtual-TLB miss under shadow paging:
// guest/host world switch (exit + resume), the six VMREADs needed to
// determine the miss cause, and the software vTLB fill — per processor
// generation, and with/without VPID on the Core i7.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/guest/guest_pt.h"

namespace nova::bench {
namespace {

struct VtlbCost {
  double exit_resume = 0;
  double vmread = 0;
  double fill = 0;
  double total = 0;
  double nanoseconds = 0;
};

VtlbCost MeasureVtlbMiss(const hw::CpuModel* model) {
  hw::Machine machine(hw::MachineConfig{.cpus = {model}, .ram_size = 512ull << 20});
  hv::Hypervisor hv(&machine);
  hv::Pd* root = hv.Boot();

  hv::Pd* vm = nullptr;
  hv.CreatePd(root, 100, "vm", true, &vm);
  const std::uint64_t base_page = hv.kernel_reserve() >> hw::kPageShift;
  hv.Delegate(root, 100, hv::Crd{hv::CrdKind::kMem, base_page, 14, hv::perm::kRwx}, 0);
  hv::Ec* vcpu = nullptr;
  hv.CreateVcpu(root, 101, 100, 0, 0x200, &vcpu);
  vcpu->ctl().mode = hw::TranslationMode::kShadow;
  vcpu->ctl().nested_root = 0;
  vcpu->ctl().intercept_cr3 = true;
  vcpu->ctl().intercept_invlpg = true;

  auto gpa_to_hpa = [base_page](std::uint64_t gpa) {
    return (base_page << hw::kPageShift) + gpa;
  };
  guest::GuestPageTableBuilder gpt(&machine.mem(), gpa_to_hpa, 0x110000);

  // Guest page table: code identity plus a large data region, pre-mapped
  // and pre-dirtied so every access is a pure vTLB fill (no guest faults).
  constexpr int kPages = 4096;
  gpt.Map(0x100000, 0x1000, 0x1000, hw::kPageSize, hw::pte::kWritable);
  for (int i = 0; i < kPages; ++i) {
    gpt.Map(0x100000, 0x400000 + i * hw::kPageSize, 0x400000 + i * hw::kPageSize,
            hw::kPageSize,
            hw::pte::kWritable | hw::pte::kAccessed | hw::pte::kDirty);
  }

  // Guest program: touch each page once (one vTLB miss per iteration).
  hw::isa::Assembler as(0x1000);
  as.MovImm(0, kPages);
  as.MovImm(1, 0x400000);
  const std::uint64_t top = as.Load(2, 1, 0);
  as.AddImm(1, hw::kPageSize);
  as.Loop(0, top);
  as.Hlt();
  machine.mem().Write(gpa_to_hpa(0x1000), as.bytes().data(), as.bytes().size());

  hw::GuestState& gs = vcpu->gstate();
  gs.rip = 0x1000;
  gs.cr3 = 0x100000;
  gs.paging = true;

  hv.CreateSc(root, 102, 101, 1, 4'000'000'000ull);
  // Measure: total cycles for the run, minus the loop's own work (measured
  // by a second run where everything already hit the shadow table).
  const sim::Cycles before = machine.cpu(0).cycles();
  hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(50));
  const sim::Cycles first_run = machine.cpu(0).cycles() - before;
  const std::uint64_t fills = hv.EventCount("vTLB Fill");

  // Second pass over the same pages: shadow hits, few fills.
  gs.halted = false;
  gs.rip = 0x1000;
  hv.WakeEc(vcpu);
  const sim::Cycles before2 = machine.cpu(0).cycles();
  hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(100));
  const sim::Cycles second_run = machine.cpu(0).cycles() - before2;

  VtlbCost cost;
  cost.total = static_cast<double>(first_run - second_run) /
               static_cast<double>(fills > 0 ? fills : 1);
  cost.exit_resume = model->vm_exit + model->vm_resume +
                     (model->has_guest_tlb_tags ? 0 : model->tlb_flush);
  const double vmread_cost =
      model->vmread != 0 ? model->vmread : model->mem_access;
  cost.vmread = 6.0 * vmread_cost;
  cost.fill = cost.total - cost.exit_resume - cost.vmread;
  cost.nanoseconds = cost.total * 1e6 / static_cast<double>(model->frequency.khz());
  return cost;
}

void Run() {
  PrintHeader("Figure 9: vTLB miss microbenchmark (cycles per miss)");
  std::printf("%-12s %12s %10s %10s %10s %10s\n", "CPU", "exit+resume",
              "6xVMREAD", "vTLB fill", "total", "ns");
  const std::vector<const hw::CpuModel*> models = {
      &hw::CoreDuoT2500(), &hw::Core2DuoE6600(), &hw::Core2DuoE8400(),
      &hw::CoreI7_920_NoVpid(), &hw::CoreI7_920()};
  for (const hw::CpuModel* model : models) {
    const VtlbCost c = MeasureVtlbMiss(model);
    std::printf("%-12s %12.0f %10.0f %10.0f %10.0f %10.0f\n", model->tag.data(),
                c.exit_resume, c.vmread, c.fill, c.total, c.nanoseconds);
  }
  std::printf(
      "\nPaper reference: totals 1355/1140/694/527/491 ns on "
      "YNH/CNR/WFD/BLM(-VPID)/BLM(+VPID); the hardware transition accounts "
      "for ~80%% of the total, falling with each processor generation.\n");
}

}  // namespace
}  // namespace nova::bench

int main() {
  nova::bench::Run();
  return 0;
}
