// Figure 9: vTLB-miss microbenchmark, plus the §8.4 optimization ladder.
//
// Part 1 measures the cost of handling one virtual-TLB miss under shadow
// paging: guest/host world switch (exit + resume), the six VMREADs needed
// to determine the miss cause, and the software vTLB fill — per processor
// generation, and with/without VPID on the Core i7.
//
// Part 2 sweeps the vTLB policy ladder (naive -> shadow-context cache ->
// cache + VPID tags) on a guest that alternates between two address
// spaces: the dominant cost of the naive vTLB is rebuilding the shadow
// tree on every MOV CR3, and the ladder eliminates it.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/guest/guest_pt.h"

namespace nova::bench {
namespace {

// Set by --smoke: fewer pages in the miss loop, fewer ladder repeats.
int g_pages = 4096;
int g_repeat = 32;

struct VtlbCost {
  double exit_resume = 0;
  double vmread = 0;
  double fill = 0;
  double total = 0;
  double nanoseconds = 0;
};

VtlbCost MeasureVtlbMiss(const hw::CpuModel* model) {
  hw::Machine machine(hw::MachineConfig{.cpus = {model}, .ram_size = 512ull << 20});
  hv::Hypervisor hv(&machine);
  hv::Pd* root = hv.Boot();

  hv::Pd* vm = nullptr;
  (void)hv.CreatePd(root, 100, "vm", true, &vm);
  const std::uint64_t base_page = hv.kernel_reserve() >> hw::kPageShift;
  (void)hv.Delegate(root, 100, hv::Crd{hv::CrdKind::kMem, base_page, 14, hv::perm::kRwx}, 0);
  hv::Ec* vcpu = nullptr;
  (void)hv.CreateVcpu(root, 101, 100, 0, 0x200, &vcpu);
  vcpu->ctl().mode = hw::TranslationMode::kShadow;
  vcpu->ctl().nested_root = 0;
  vcpu->ctl().intercept_cr3 = true;
  vcpu->ctl().intercept_invlpg = true;

  auto gpa_to_hpa = [base_page](std::uint64_t gpa) {
    return (base_page << hw::kPageShift) + gpa;
  };
  guest::GuestPageTableBuilder gpt(&machine.mem(), gpa_to_hpa, 0x110000);

  // Guest page table: code identity plus a large data region, pre-mapped
  // and pre-dirtied so every access is a pure vTLB fill (no guest faults).
  const int kPages = g_pages;
  (void)gpt.Map(0x100000, 0x1000, 0x1000, hw::kPageSize, hw::pte::kWritable);
  for (int i = 0; i < kPages; ++i) {
    (void)gpt.Map(0x100000, 0x400000 + i * hw::kPageSize, 0x400000 + i * hw::kPageSize,
            hw::kPageSize,
            hw::pte::kWritable | hw::pte::kAccessed | hw::pte::kDirty);
  }

  // Guest program: touch each page once (one vTLB miss per iteration).
  hw::isa::Assembler as(0x1000);
  as.MovImm(0, kPages);
  as.MovImm(1, 0x400000);
  const std::uint64_t top = as.Load(2, 1, 0);
  as.AddImm(1, hw::kPageSize);
  as.Loop(0, top);
  as.Hlt();
  (void)machine.mem().Write(gpa_to_hpa(0x1000), as.bytes().data(), as.bytes().size());

  hw::GuestState& gs = vcpu->gstate();
  gs.rip = 0x1000;
  gs.cr3 = 0x100000;
  gs.paging = true;

  (void)hv.CreateSc(root, 102, 101, 1, 4'000'000'000ull);
  // Measure: total cycles for the run, minus the loop's own work (measured
  // by a second run where everything already hit the shadow table).
  const sim::Cycles before = machine.cpu(0).cycles();
  hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(50));
  const sim::Cycles first_run = machine.cpu(0).cycles() - before;
  const std::uint64_t fills = hv.EventCount("vTLB Fill");

  // Second pass over the same pages: shadow hits, few fills.
  gs.halted = false;
  gs.rip = 0x1000;
  hv.WakeEc(vcpu);
  const sim::Cycles before2 = machine.cpu(0).cycles();
  hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(100));
  const sim::Cycles second_run = machine.cpu(0).cycles() - before2;

  VtlbCost cost;
  cost.total = static_cast<double>(first_run - second_run) /
               static_cast<double>(fills > 0 ? fills : 1);
  cost.exit_resume = model->vm_exit + model->vm_resume +
                     (model->has_guest_tlb_tags ? 0 : model->tlb_flush);
  const double vmread_cost =
      model->vmread != 0 ? model->vmread : model->mem_access;
  cost.vmread = 6.0 * vmread_cost;
  cost.fill = cost.total - cost.exit_resume - cost.vmread;
  cost.nanoseconds = cost.total * 1e6 / static_cast<double>(model->frequency.khz());
  return cost;
}

// --- Part 2: the optimization ladder ----------------------------------------

struct LadderTotals {
  sim::Cycles cycles = 0;
  std::uint64_t fills = 0;
  std::uint64_t hw_flushes = 0;
  std::uint64_t ctx_hits = 0;
  std::uint64_t ctx_misses = 0;
};

// A guest that alternates between two address spaces, touching kTouch
// pages in each after every switch. One "pass" is A -> B.
constexpr int kTouch = 16;
constexpr std::uint64_t kRootA = 0x100000;
constexpr std::uint64_t kRootB = 0x180000;

LadderTotals RunSwitchWorkload(const hw::CpuModel* model,
                               const hv::VtlbPolicy& policy, int passes) {
  hw::Machine machine(hw::MachineConfig{.cpus = {model}, .ram_size = 512ull << 20});
  hv::Hypervisor hv(&machine);
  hv::Pd* root = hv.Boot();
  hv.set_vtlb_policy(policy);

  hv::Pd* vm = nullptr;
  (void)hv.CreatePd(root, 100, "vm", true, &vm);
  const std::uint64_t base_page = hv.kernel_reserve() >> hw::kPageShift;
  (void)hv.Delegate(root, 100, hv::Crd{hv::CrdKind::kMem, base_page, 14, hv::perm::kRwx}, 0);
  hv::Ec* vcpu = nullptr;
  (void)hv.CreateVcpu(root, 101, 100, 0, 0x200, &vcpu);
  vcpu->ctl().mode = hw::TranslationMode::kShadow;
  vcpu->ctl().nested_root = 0;
  vcpu->ctl().intercept_cr3 = true;
  vcpu->ctl().intercept_invlpg = true;

  auto gpa_to_hpa = [base_page](std::uint64_t gpa) {
    return (base_page << hw::kPageShift) + gpa;
  };
  guest::GuestPageTableBuilder gpt(&machine.mem(), gpa_to_hpa, 0x110000);

  // Both address spaces map the code page identically; their data windows
  // at 0x400000 are backed by disjoint guest-physical ranges. Everything
  // is pre-accessed/pre-dirtied so each touch is a pure vTLB fill.
  constexpr std::uint64_t kLeafFlags =
      hw::pte::kWritable | hw::pte::kAccessed | hw::pte::kDirty;
  for (int i = 0; i < kTouch; ++i) {
    const std::uint64_t va = 0x400000 + static_cast<std::uint64_t>(i) * hw::kPageSize;
    (void)gpt.Map(kRootA, va, va, hw::kPageSize, kLeafFlags);
    (void)gpt.Map(kRootB, va, va + 0x200000, hw::kPageSize, kLeafFlags);
  }
  (void)gpt.Map(kRootA, 0x1000, 0x1000, hw::kPageSize, kLeafFlags);
  (void)gpt.Map(kRootB, 0x1000, 0x1000, hw::kPageSize, kLeafFlags);

  hw::isa::Assembler as(0x1000);
  as.MovImm(0, static_cast<std::uint64_t>(passes));
  const std::uint64_t top = as.MovCr3Imm(kRootA);
  as.MovImm(1, 0x400000);
  as.MovImm(3, kTouch);
  const std::uint64_t inner_a = as.Load(2, 1, 0);
  as.AddImm(1, hw::kPageSize);
  as.Loop(3, inner_a);
  as.MovCr3Imm(kRootB);
  as.MovImm(1, 0x400000);
  as.MovImm(3, kTouch);
  const std::uint64_t inner_b = as.Load(2, 1, 0);
  as.AddImm(1, hw::kPageSize);
  as.Loop(3, inner_b);
  as.Loop(0, top);
  as.Hlt();
  (void)machine.mem().Write(gpa_to_hpa(0x1000), as.bytes().data(), as.bytes().size());

  hw::GuestState& gs = vcpu->gstate();
  gs.rip = 0x1000;
  gs.cr3 = kRootA;
  gs.paging = true;

  (void)hv.CreateSc(root, 102, 101, 1, 4'000'000'000ull);
  const sim::Cycles before = machine.cpu(0).cycles();
  hv.RunUntilCondition([&gs] { return gs.halted; }, sim::Seconds(50));

  LadderTotals t;
  t.cycles = machine.cpu(0).cycles() - before;
  t.fills = hv.EventCount("vTLB Fill");
  t.hw_flushes = machine.cpu(0).tlb().flushes().value();
  t.ctx_hits = hv.EventCount("vTLB Context Hit");
  t.ctx_misses = hv.EventCount("vTLB Context Miss");
  return t;
}

void RunLadder() {
  PrintHeader(
      "Figure 9 (ladder): address-space switch under the vTLB, "
      "2 spaces x 16 pages, steady state per pass");
  std::printf("%-12s %-13s %12s %14s %14s %10s\n", "CPU", "policy",
              "fills/pass", "hw-flush/pass", "cycles/pass", "ctx hits");

  struct Rung {
    const char* name;
    hv::VtlbPolicy policy;
  };
  const std::vector<Rung> rungs = {
      {"naive", {}},
      {"cached", {.cache_contexts = true}},
      {"cached+VPID", {.cache_contexts = true, .use_vpid = true}},
  };
  const std::vector<const hw::CpuModel*> models = {&hw::CoreDuoT2500(),
                                                   &hw::CoreI7_920()};

  constexpr int kWarm = 1;
  const int kRepeat = g_repeat;
  for (const hw::CpuModel* model : models) {
    for (const Rung& rung : rungs) {
      if (rung.policy.use_vpid && !model->has_guest_tlb_tags) {
        continue;  // VPID rung only exists on tagged parts.
      }
      // Steady state = (N passes) - (warm-up pass), per repeat pass: the
      // first pass pays the compulsory fills in every policy.
      const LadderTotals warm = RunSwitchWorkload(model, rung.policy, kWarm);
      const LadderTotals full =
          RunSwitchWorkload(model, rung.policy, kWarm + kRepeat);
      const double fills =
          static_cast<double>(full.fills - warm.fills) / kRepeat;
      const double flushes =
          static_cast<double>(full.hw_flushes - warm.hw_flushes) / kRepeat;
      const double cycles =
          static_cast<double>(full.cycles - warm.cycles) / kRepeat;
      std::printf("%-12s %-13s %12.1f %14.1f %14.0f %10llu\n",
                  model->tag.data(), rung.name, fills, flushes, cycles,
                  static_cast<unsigned long long>(full.ctx_hits));
    }
  }
  std::printf(
      "\nThe naive vTLB rebuilds the shadow tree on every MOV CR3 (~34 "
      "re-fills per pass here). The shadow-context cache reuses the trees "
      "(fills/pass -> 0); VPID tags additionally keep the hardware TLB "
      "warm across the switch (hw-flush/pass -> 0 on tagged parts).\n");
}

void Run(const BenchOptions& opts) {
  if (opts.smoke) {
    g_pages = 256;
    g_repeat = 4;
  }
  PrintHeader("Figure 9: vTLB miss microbenchmark (cycles per miss)");
  std::printf("%-12s %12s %10s %10s %10s %10s\n", "CPU", "exit+resume",
              "6xVMREAD", "vTLB fill", "total", "ns");
  const std::vector<const hw::CpuModel*> models = {
      &hw::CoreDuoT2500(), &hw::Core2DuoE6600(), &hw::Core2DuoE8400(),
      &hw::CoreI7_920_NoVpid(), &hw::CoreI7_920()};
  for (const hw::CpuModel* model : models) {
    const VtlbCost c = MeasureVtlbMiss(model);
    std::printf("%-12s %12.0f %10.0f %10.0f %10.0f %10.0f\n", model->tag.data(),
                c.exit_resume, c.vmread, c.fill, c.total, c.nanoseconds);
  }
  std::printf(
      "\nPaper reference: totals 1355/1140/694/527/491 ns on "
      "YNH/CNR/WFD/BLM(-VPID)/BLM(+VPID); the hardware transition accounts "
      "for ~80%% of the total, falling with each processor generation.\n");
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  const nova::bench::BenchOptions opts = nova::bench::ParseBenchArgs(argc, argv);
  nova::bench::Run(opts);
  nova::bench::RunLadder();
  return 0;
}
