// Figure 5: Linux kernel compilation in fully virtualized and
// paravirtualized environments.
//
// Reproduces the bars we can execute — Native, Direct (zero-exit limit),
// NOVA and a monolithic in-kernel-VMM baseline (KVM-like) — across the
// paper's configurations: nested paging with/without tagged TLBs, small
// host pages, shadow paging, and the AMD NPT machine. Bars for systems we
// cannot run (ESXi, Hyper-V, Xen, L4Linux) are quoted from the paper for
// context in EXPERIMENTS.md.
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace nova::bench {
namespace {

guest::CompileWorkload::Config Workload(bool smoke) {
  guest::CompileWorkload::Config w;
  w.processes = 4;
  w.ws_pages = 192;
  w.total_units = smoke ? 300 : 12000;
  w.compute_cycles = 30000;
  w.mem_bursts = 6;
  w.fresh_prob = 0.04;
  w.switch_every = 20;
  w.disk_every = 150;
  return w;
}

struct Bar {
  RunConfig config;
  double paper_relative;  // Paper's relative-performance number, if any.
};

void Run(const BenchOptions& opts) {
  PrintHeader("Figure 5: Linux kernel compilation (relative native performance)");

  const auto workload = Workload(opts.smoke);
  auto mk = [&](const char* label, StackKind stack, const hw::CpuModel* cpu,
                hw::TranslationMode mode, bool large) {
    RunConfig c;
    c.label = label;
    c.stack = stack;
    c.cpu = cpu;
    c.mode = mode;
    c.large_pages = large;
    c.workload = workload;
    return c;
  };

  using hw::TranslationMode::kNested;
  using hw::TranslationMode::kShadow;
  const auto* blm = &hw::CoreI7_920();
  const auto* blm_novpid = &hw::CoreI7_920_NoVpid();
  const auto* phenom = &hw::PhenomX3_8450();

  // Shadow-paging bar with an explicit vTLB policy (the §8.4 ladder).
  auto mkv = [&](const char* label, const hv::VtlbPolicy& policy) {
    RunConfig c = mk(label, StackKind::kNova, blm, kShadow, true);
    c.vtlb = policy;
    return c;
  };

  struct Group {
    const char* title;
    std::vector<Bar> bars;
  };
  std::vector<Group> groups = {
      {"Intel Core i7 — EPT with VPID",
       {{mk("Native", StackKind::kNative, blm, kNested, true), 100.0},
        {mk("Direct", StackKind::kDirect, blm, kNested, true), 99.4},
        {mk("NOVA", StackKind::kNova, blm, kNested, true), 98.1},
        {mk("KVM (monolithic)", StackKind::kMonolithic, blm, kNested, true), 97.3}}},
      {"Intel Core i7 — EPT w/o VPID",
       {{mk("NOVA", StackKind::kNova, blm_novpid, kNested, true), 97.7},
        {mk("KVM (monolithic)", StackKind::kMonolithic, blm_novpid, kNested, true),
         97.4}}},
      {"Intel Core i7 — EPT, small (4 KiB) host pages",
       {{mk("NOVA", StackKind::kNova, blm, kNested, false), 97.0},
        {mk("KVM (monolithic)", StackKind::kMonolithic, blm, kNested, false), 95.7}}},
      {"Intel Core i7 — shadow paging (vTLB)",
       {{mk("NOVA", StackKind::kNova, blm, kShadow, true), 78.5},
        {mk("KVM (monolithic)", StackKind::kMonolithic, blm, kShadow, true), 72.3}}},
      {"Intel Core i7 — shadow paging: vTLB optimization ladder (§8.4)",
       {{mkv("NOVA naive", hv::VtlbPolicy{}), 0.0},
        {mkv("NOVA ctx-cache", hv::VtlbPolicy{.cache_contexts = true}), 0.0},
        {mkv("NOVA ctx-cache+VPID",
             hv::VtlbPolicy{.cache_contexts = true, .use_vpid = true}),
         78.5}}},
      {"AMD Phenom — NPT with ASID",
       {{mk("Native", StackKind::kNative, phenom, kNested, true), 100.0},
        {mk("NOVA", StackKind::kNova, phenom, kNested, true), 99.4},
        {mk("KVM (monolithic)", StackKind::kMonolithic, phenom, kNested, true),
         97.2}}},
  };

  for (Group& group : groups) {
    std::printf("\n-- %s --\n", group.title);
    // The group's native baseline: run natively on the same CPU model.
    RunConfig native = group.bars[0].config;
    double native_seconds;
    if (native.stack == StackKind::kNative) {
      native_seconds = RunCompile(native).seconds;
    } else {
      RunConfig nb = mk("Native", StackKind::kNative, native.cpu, kNested, true);
      native_seconds = RunCompile(nb).seconds;
    }
    std::printf("%-24s %10s %10s %12s %10s\n", "configuration", "time[s]",
                "rel[%]", "paper rel[%]", "vm-exits");
    for (const Bar& bar : group.bars) {
      const RunResult r = RunCompile(bar.config);
      const double rel = native_seconds / r.seconds * 100.0;
      std::printf("%-24s %10.4f %10.1f %12.1f %10llu\n", bar.config.label.c_str(),
                  r.seconds, rel, bar.paper_relative,
                  static_cast<unsigned long long>(r.exits));
    }
  }

  std::printf(
      "\nLadder group: 'paper rel' applies to the top rung only — the "
      "paper's vTLB (78.5%%) reuses shadow tables across address-space "
      "switches; the naive rung rebuilds them on every MOV CR3.\n");
  std::printf(
      "\nPaper-only bars (not executable here): Xen 97.3, ESXi 97.3*, "
      "Hyper-V 95.9, XEN PV 96.5, L4Linux 88.0/91? (Intel, rel%%); "
      "KVM-L4 97.2 (AMD). *not on ESXi HCL.\n");

  if (!opts.trace_json.empty()) {
    // One extra traced NOVA/EPT run whose Perfetto-loadable event stream
    // is dumped to the requested file; the table above is unaffected.
    RunConfig t = mk("NOVA", StackKind::kNova, blm, kNested, true);
    t.trace = true;
    t.trace_json = opts.trace_json;
    RunCompile(t);
    std::fprintf(stderr, "fig5: trace written to %s\n", opts.trace_json.c_str());
  }
}

}  // namespace
}  // namespace nova::bench

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseBenchArgs(argc, argv));
  return 0;
}
