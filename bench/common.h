// Shared benchmark harness: assembles the full system, runs the paper's
// workloads under a named configuration, and reports timing/utilization.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/baseline/profiles.h"
#include "src/guest/bare_metal.h"
#include "src/guest/driver_ahci.h"
#include "src/guest/kernel.h"
#include "src/guest/workload_compile.h"
#include "src/root/system.h"
#include "src/sim/trace.h"
#include "src/vmm/vmm.h"

namespace nova::bench {

// Command-line options shared by all benchmark binaries.
//   --smoke            scale workloads down for fast schema-validation runs
//   --trace-json=FILE  dump the structured trace (Chrome trace_event JSON,
//                      loadable in Perfetto) of the last traced run to FILE
struct BenchOptions {
  bool smoke = false;
  std::string trace_json;
};

// Parses argv; unknown arguments are ignored so existing invocations keep
// working unchanged.
BenchOptions ParseBenchArgs(int argc, char** argv);

// How a guest runs: the bars of Figure 5.
enum class StackKind {
  kNative,        // Bare metal, no hypervisor.
  kDirect,        // VM with all intercepts disabled, devices direct (§8.1).
  kNova,          // NOVA: microhypervisor + user-level VMM.
  kMonolithic,    // In-kernel VMM baseline (KVM-like).
};

struct RunConfig {
  std::string label;
  const hw::CpuModel* cpu = &hw::CoreI7_920();
  StackKind stack = StackKind::kNova;
  hw::TranslationMode mode = hw::TranslationMode::kNested;
  bool large_pages = true;
  hv::VtlbPolicy vtlb{};  // Shadow-paging ladder (mode == kShadow only).
  guest::CompileWorkload::Config workload{};
  std::uint32_t timer_hz = 250;
  bool trace = false;          // Record a structured trace of the run.
  std::string trace_json;      // If set (and trace), dump Chrome JSON here.
};

struct RunResult {
  double seconds = 0;          // Simulated wall-clock for the workload.
  double utilization = 0;      // CPU busy fraction.
  std::uint64_t exits = 0;     // VM exits dispatched to user level.
  sim::StatRegistry stats;     // Hypervisor event counters (Table 2).
  std::uint64_t guest_insns = 0;
  // Filled only when RunConfig::trace is set: the deterministic FNV-1a
  // digest of the full event stream and the per-name folded attribution.
  std::uint64_t trace_digest = 0;
  std::map<std::string, sim::TraceReport::Entry> trace_rows;
};

// Run the kernel-compile workload under `config`; returns the timing.
RunResult RunCompile(const RunConfig& config);

// Formatting helpers.
inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace nova::bench

#endif  // BENCH_COMMON_H_
