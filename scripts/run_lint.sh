#!/usr/bin/env bash
# Static-analysis gate, exactly what the CI `lint` job runs:
#   1. build nova-lint and run it over src/, tests/, bench/, examples/
#      and tools/ (non-zero exit on any unsuppressed finding). Per-root
#      rule sets via --roots keep the determinism rule scoped to the
#      simulated-machine sources; everything else runs everywhere.
#   2. re-run with --json and check the report schema (key presence,
#      zero count) so downstream consumers can rely on its shape;
#   3. rebuild src/ with NOVA_WERROR=ON so discarded [[nodiscard]] results
#      and non-exhaustive enum switches are hard compile errors;
#   4. if clang-tidy is installed, run the .clang-tidy checks over src/
#      (advisory by default: set LINT_TIDY_STRICT=1 to make it fatal,
#      since CI images do not all ship clang-tidy).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-lint}"

cmake -B "${BUILD_DIR}" -S . -DNOVA_WERROR=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target nova_lint

LINT_ROOTS='src;tests=-determinism;bench=-determinism;examples=-determinism;tools=-determinism'

echo "== nova-lint =="
"${BUILD_DIR}/tools/nova_lint/nova_lint" --roots="${LINT_ROOTS}"

echo "== nova-lint --json schema =="
json="$("${BUILD_DIR}/tools/nova_lint/nova_lint" --json --roots="${LINT_ROOTS}")"
for key in '"findings":' '"count":0' '"suppressed":' '"baselined":' \
           '"files_scanned":' '"wall_ms":'; do
  if ! grep -qF "${key}" <<< "${json}"; then
    echo "nova-lint --json is missing ${key}" >&2
    exit 1
  fi
done

echo "== NOVA_WERROR build =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy =="
  # compile_commands.json is produced by the export flag; limit to src/.
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  mapfile -t tidy_files < <(find src -name '*.cc')
  if ! clang-tidy -p "${BUILD_DIR}" "${tidy_files[@]}"; then
    if [[ "${LINT_TIDY_STRICT:-0}" == "1" ]]; then
      exit 1
    fi
    echo "clang-tidy reported issues (advisory; LINT_TIDY_STRICT=1 to fail)"
  fi
else
  echo "clang-tidy not installed; skipping (.clang-tidy lists the checks)"
fi

echo "lint gate passed"
