#!/usr/bin/env bash
# Static-analysis gate, exactly what the CI `lint` job runs:
#   1. build nova-lint and run it over src/, tests/, bench/ and examples/
#      (non-zero exit on any unsuppressed finding);
#   2. rebuild src/ with NOVA_WERROR=ON so discarded [[nodiscard]] results
#      and non-exhaustive enum switches are hard compile errors;
#   3. if clang-tidy is installed, run the .clang-tidy checks over src/
#      (advisory by default: set LINT_TIDY_STRICT=1 to make it fatal,
#      since CI images do not all ship clang-tidy).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-lint}"

cmake -B "${BUILD_DIR}" -S . -DNOVA_WERROR=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target nova_lint

echo "== nova-lint =="
"${BUILD_DIR}/tools/nova_lint/nova_lint" src tests bench examples

echo "== NOVA_WERROR build =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy =="
  # compile_commands.json is produced by the export flag; limit to src/.
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  mapfile -t tidy_files < <(find src -name '*.cc')
  if ! clang-tidy -p "${BUILD_DIR}" "${tidy_files[@]}"; then
    if [[ "${LINT_TIDY_STRICT:-0}" == "1" ]]; then
      exit 1
    fi
    echo "clang-tidy reported issues (advisory; LINT_TIDY_STRICT=1 to fail)"
  fi
else
  echo "clang-tidy not installed; skipping (.clang-tidy lists the checks)"
fi

echo "lint gate passed"
