#!/usr/bin/env bash
# Build the test suite with ASan+UBSan (NOVA_SANITIZE=ON) in a separate
# build tree and run it. Any sanitizer report fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-asan}"

cmake -B "${BUILD_DIR}" -S . -DNOVA_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# Leak checking is off by default: kernel objects (Pd/Ec capability graphs)
# are reference-cycled by design and reported as reachable-at-exit leaks.
# Override with ASAN_OPTIONS=detect_leaks=1 to audit them.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
