// The user-level disk server: per-client channels, DMA-buffer delegation
// checks, throttling, channel shutdown (§4.2 device-driver attacks).
#include "src/services/disk_server.h"

#include <gtest/gtest.h>

#include "src/root/system.h"
#include "src/sim/fault.h"

namespace nova::services {
namespace {

class DiskServerTest : public ::testing::Test {
 protected:
  DiskServerTest() : server_(system_.StartDiskServer()) {
    // A client domain with an EC to issue requests and a completion portal.
    client_sel_ = system_.root->CreatePd("client", false, &client_);
    const hv::CapSel ec_sel = system_.root->FreeSel();
    (void)system_.hv.CreateEcGlobal(system_.root->pd(), ec_sel, client_sel_, 0, [] {},
                              &client_ec_);
    const hv::CapSel comp_ec_sel = system_.root->FreeSel();
    (void)system_.hv.CreateEcLocal(system_.root->pd(), comp_ec_sel, client_sel_, 0,
                             [this](std::uint64_t) { ++completions_; },
                             &comp_ec_);
    comp_pt_sel_ = system_.root->FreeSel();
    (void)system_.hv.CreatePt(system_.root->pd(), comp_pt_sel_, comp_ec_sel, 0, 0);
    // Buffer pages owned by the client.
    buffer_page_ = system_.root->GrantMemory(client_sel_, 4, ~0ull, hv::perm::kRw,
                                             false, /*align_pow2=*/true);
  }

  DiskServer::Channel Open(std::uint32_t max_outstanding = 32) {
    return server_.OpenChannel(client_sel_, comp_pt_sel_, max_outstanding);
  }

  // Issue a read through the channel, delegating the buffer on the call.
  Status Issue(const DiskServer::Channel& ch, std::uint64_t lba,
               std::uint64_t sectors, bool delegate = true) {
    hv::Utcb& u = client_ec_->utcb();
    u.Clear();
    u.untyped = 5;
    u.words[0] = diskproto::kOpRead;
    u.words[1] = lba;
    u.words[2] = sectors;
    u.words[3] = buffer_page_;
    u.words[4] = next_cookie_++;
    if (delegate) {
      u.num_typed = 1;
      u.typed[0] = hv::TypedItem{hv::Crd::Mem(buffer_page_, 2, hv::perm::kRw),
                                 buffer_page_};
    }
    const Status s = system_.hv.Call(client_ec_, ch.request_portal);
    if (!Ok(s)) {
      return s;
    }
    return static_cast<Status>(u.words[0]);
  }

  void Drain() { system_.hv.RunUntil(system_.machine.events().now() + sim::Milliseconds(50)); }

  root::NovaSystem system_;
  DiskServer& server_;
  hv::Pd* client_ = nullptr;
  hv::CapSel client_sel_ = hv::kInvalidSel;
  hv::Ec* client_ec_ = nullptr;
  hv::Ec* comp_ec_ = nullptr;
  hv::CapSel comp_pt_sel_ = hv::kInvalidSel;
  std::uint64_t buffer_page_ = 0;
  std::uint64_t next_cookie_ = 100;
  int completions_ = 0;
};

TEST_F(DiskServerTest, ReadRequestCompletesAndNotifies) {
  const char payload[] = "disk server payload";
  system_.platform.disk->WriteContent(50 * hw::kSectorSize, payload,
                                      sizeof(payload));
  const auto ch = Open();
  ASSERT_NE(ch.request_portal, hv::kInvalidSel);
  ASSERT_EQ(Issue(ch, 50, 1), Status::kSuccess);
  Drain();
  EXPECT_EQ(server_.requests_completed(), 1u);
  EXPECT_EQ(completions_, 1);
  // The controller DMAed straight into the client's buffer.
  char out[sizeof(payload)] = {};
  (void)system_.machine.mem().Read(buffer_page_ << hw::kPageShift, out, sizeof(out));
  EXPECT_STREQ(out, payload);
  // Completion record in the shared ring.
  DiskCompletionRecord rec{};
  (void)system_.machine.mem().Read(ch.shared_page << hw::kPageShift, &rec, sizeof(rec));
  EXPECT_EQ(rec.cookie, 100u);
  EXPECT_EQ(rec.status, 0u);
}

TEST_F(DiskServerTest, UndelegatedBufferRejected) {
  const auto ch = Open();
  EXPECT_EQ(Issue(ch, 1, 1, /*delegate=*/false), Status::kDenied);
  EXPECT_EQ(server_.requests_issued(), 0u);
}

TEST_F(DiskServerTest, ThrottleLimitsOutstandingRequests) {
  const auto ch = Open(/*max_outstanding=*/2);
  EXPECT_EQ(Issue(ch, 0, 1), Status::kSuccess);
  EXPECT_EQ(Issue(ch, 8, 1), Status::kSuccess);
  // Third request exceeds the per-channel limit (§4.2 DoS defence).
  EXPECT_EQ(Issue(ch, 16, 1), Status::kOverflow);
  EXPECT_EQ(server_.requests_throttled(), 1u);
  Drain();
  // After completions drain, the channel accepts requests again.
  EXPECT_EQ(Issue(ch, 16, 1), Status::kSuccess);
}

TEST_F(DiskServerTest, ShutChannelRejectsFurtherRequests) {
  const auto ch = Open();
  ASSERT_EQ(Issue(ch, 0, 1), Status::kSuccess);
  server_.ShutChannel(0);
  EXPECT_EQ(Issue(ch, 8, 1), Status::kDenied);
}

TEST_F(DiskServerTest, MalformedRequestsRejected) {
  const auto ch = Open();
  hv::Utcb& u = client_ec_->utcb();
  // Too few words.
  u.Clear();
  u.untyped = 2;
  ASSERT_EQ(system_.hv.Call(client_ec_, ch.request_portal), Status::kSuccess);
  EXPECT_EQ(static_cast<Status>(u.words[0]), Status::kBadParameter);
  // Zero sectors.
  EXPECT_EQ(Issue(ch, 0, 0), Status::kBadParameter);
  // Oversized transfer.
  EXPECT_EQ(Issue(ch, 0, 1000), Status::kBadParameter);
}

TEST_F(DiskServerTest, TwoClientsHaveIndependentChannels) {
  const auto ch1 = Open();
  // Second client domain.
  hv::Pd* client2 = nullptr;
  const hv::CapSel client2_sel = system_.root->CreatePd("client2", false, &client2);
  const auto ch2 = server_.OpenChannel(client2_sel, comp_pt_sel_);
  // Selectors are per-domain indices; the portals behind them differ.
  EXPECT_NE(client_->caps().LookupRef(ch1.request_portal).get(),
            client2->caps().LookupRef(ch2.request_portal).get());
  EXPECT_NE(ch1.shared_page, ch2.shared_page);
  // Shutting client 2's channel leaves client 1 working.
  server_.ShutChannel(1);
  EXPECT_EQ(Issue(ch1, 0, 1), Status::kSuccess);
}

TEST_F(DiskServerTest, WriteRequestPersistsToDisk) {
  const char data[] = "written by client";
  (void)system_.machine.mem().Write(buffer_page_ << hw::kPageShift, data, sizeof(data));
  const auto ch = Open();
  hv::Utcb& u = client_ec_->utcb();
  u.Clear();
  u.untyped = 5;
  u.words[0] = diskproto::kOpWrite;
  u.words[1] = 77;
  u.words[2] = 1;
  u.words[3] = buffer_page_;
  u.words[4] = 1;
  u.num_typed = 1;
  u.typed[0] =
      hv::TypedItem{hv::Crd::Mem(buffer_page_, 2, hv::perm::kRw), buffer_page_};
  ASSERT_EQ(system_.hv.Call(client_ec_, ch.request_portal), Status::kSuccess);
  ASSERT_EQ(static_cast<Status>(u.words[0]), Status::kSuccess);
  Drain();
  char out[sizeof(data)] = {};
  system_.platform.disk->ReadContent(77 * hw::kSectorSize, out, sizeof(out));
  EXPECT_STREQ(out, data);
}

TEST_F(DiskServerTest, RequestDeadlineTimesOutAndServerRecovers) {
  // A deadline far below the media service time (~180 us for one sector):
  // the request must be retired with a typed kTimeout completion, not hang.
  server_.SetRequestDeadline(sim::Microseconds(20), /*max_retries=*/0, 0);
  const auto ch = Open();
  ASSERT_EQ(Issue(ch, 4, 1), Status::kSuccess);
  Drain();
  EXPECT_EQ(server_.requests_failed(), 1u);
  EXPECT_EQ(completions_, 1);
  DiskCompletionRecord rec{};
  (void)system_.machine.mem().Read(ch.shared_page << hw::kPageShift, &rec, sizeof(rec));
  EXPECT_EQ(rec.status, static_cast<std::uint64_t>(Status::kTimeout));
  // The slot sat in quarantine while the stale hardware command finished,
  // then was released: with a sane deadline the server serves again.
  server_.SetRequestDeadline(sim::Milliseconds(50), 0, 0);
  ASSERT_EQ(Issue(ch, 8, 1), Status::kSuccess);
  Drain();
  EXPECT_EQ(server_.requests_completed(), 1u);
}

TEST_F(DiskServerTest, FaultScheduleSweepRetiresEveryRequest) {
  // Seeded media-error schedules with retry budgets: whatever the schedule
  // injects, every accepted request ends in exactly one typed completion —
  // the issue/retire counters balance and the server never wedges.
  server_.SetRequestDeadline(sim::Milliseconds(5), /*max_retries=*/2,
                             sim::Microseconds(50));
  const auto ch = Open();
  std::uint64_t sent = 0;
  for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
    sim::FaultPlan plan(seed);
    plan.Schedule({.at = 0,  // Active immediately: no queued events.
                   .kind = sim::FaultKind::kDiskMediaError,
                   .target = "disk",
                   .count = 2 + seed % 3,
                   .rate = 0.5});
    plan.Arm(&system_.machine.events());
    system_.platform.disk->set_fault_plan(&plan);
    for (int burst = 0; burst < 4; ++burst) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(Issue(ch, 8 * static_cast<std::uint64_t>(sent), 1),
                  Status::kSuccess);
        ++sent;
      }
      Drain();
    }
    system_.platform.disk->set_fault_plan(nullptr);
  }
  EXPECT_EQ(server_.requests_issued(), sent);
  EXPECT_EQ(server_.requests_completed() + server_.requests_failed(), sent);
  EXPECT_EQ(completions_, static_cast<int>(sent));
  // Every ring record is a typed outcome: success or a bounded error.
  for (std::uint64_t i = 0; i < sent; ++i) {
    DiskCompletionRecord rec{};
    (void)system_.machine.mem().Read(
        (ch.shared_page << hw::kPageShift) + i * sizeof(rec), &rec, sizeof(rec));
    EXPECT_TRUE(rec.status == 0 ||
                rec.status == static_cast<std::uint64_t>(Status::kBadDevice) ||
                rec.status == static_cast<std::uint64_t>(Status::kTimeout))
        << "record " << i << " status " << rec.status;
  }
}

TEST_F(DiskServerTest, ClosedChannelIsRecycledWithoutNewRingFrame) {
  const auto ch1 = Open();
  ASSERT_EQ(Issue(ch1, 0, 1), Status::kSuccess);
  server_.CloseChannel(ch1.channel_id);
  // The orphaned request's completion is dropped, not delivered.
  Drain();
  EXPECT_EQ(completions_, 0);
  // A new client reuses the retired channel: same id, same ring frame.
  const auto ch2 = Open();
  EXPECT_EQ(ch2.channel_id, ch1.channel_id);
  EXPECT_EQ(ch2.shared_page, ch1.shared_page);
  ASSERT_EQ(Issue(ch2, 8, 1), Status::kSuccess);
  Drain();
  EXPECT_EQ(completions_, 1);
  DiskCompletionRecord rec{};
  (void)system_.machine.mem().Read(ch2.shared_page << hw::kPageShift, &rec, sizeof(rec));
  EXPECT_EQ(rec.status, 0u);
}

TEST_F(DiskServerTest, ServerCannotTouchHypervisorMemory) {
  // The server's device DMA is confined by the IOMMU to memory delegated
  // to the server domain; the hypervisor range is always blocked.
  const std::uint64_t faults = system_.machine.iommu().faults();
  hv::Utcb& u = client_ec_->utcb();
  const auto ch = Open();
  u.Clear();
  u.untyped = 5;
  u.words[0] = diskproto::kOpRead;
  u.words[1] = 0;
  u.words[2] = 1;
  u.words[3] = 8;  // Frame 8: inside the kernel reserve.
  u.words[4] = 1;
  ASSERT_EQ(system_.hv.Call(client_ec_, ch.request_portal), Status::kSuccess);
  // The server rejects it outright (not delegated); even if it tried, the
  // IOMMU would fault the transfer.
  EXPECT_EQ(static_cast<Status>(u.words[0]), Status::kDenied);
  EXPECT_EQ(system_.machine.iommu().faults(), faults);
}

}  // namespace
}  // namespace nova::services
