// The virtual AHCI controller model: register-compatible state machine
// that forwards commands to the host disk path without copying payloads.
#include "src/vmm/vahci.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/hw/phys_mem.h"

namespace nova::vmm {
namespace {

class VAhciTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kClb = 0x10000;
  static constexpr std::uint64_t kCtba = 0x11000;

  VAhciTest()
      : mem_(64 << 20),
        vahci_(VAhci::Backend{
            .read_guest =
                [this](std::uint64_t gpa, void* out, std::uint64_t len) {
                  return Ok(mem_.Read(gpa, out, len));
                },
            .issue =
                [this](bool write, std::uint64_t lba, std::uint64_t sectors,
                       std::uint64_t buffer_gpa, std::uint64_t cookie) {
                  issues_.push_back({write, lba, sectors, buffer_gpa, cookie});
                  return issue_status_;
                },
            .raise_irq = [this](std::uint8_t v) { raised_.push_back(v); }}) {
    // Controller bring-up.
    W(hw::ahci::kGhc, hw::ahci::kGhcIntrEnable);
    W(hw::ahci::kPxClb, kClb);
    W(hw::ahci::kPxIe, hw::ahci::kPxIsDhrs);
    W(hw::ahci::kPxCmd, hw::ahci::kPxCmdStart);
  }

  void W(std::uint64_t off, std::uint64_t v) {
    (void)vahci_.MmioWrite(vahci::kMmioBase + off, 4, v);
  }
  std::uint64_t R(std::uint64_t off) {
    return vahci_.MmioRead(vahci::kMmioBase + off, 4);
  }

  void BuildCommand(int slot, std::uint64_t lba, std::uint16_t sectors,
                    std::uint64_t buffer, bool write = false) {
    std::uint32_t dw0 = (1u << 16) | (write ? (1u << 6) : 0);
    (void)mem_.Write32(kClb + slot * 32, dw0);
    (void)mem_.Write32(kClb + slot * 32 + 8, kCtba + slot * 0x100);
    std::uint8_t cfis[64] = {};
    cfis[0] = hw::ahci::kFisH2d;
    cfis[2] = write ? hw::ahci::kCmdWriteDmaExt : hw::ahci::kCmdReadDmaExt;
    for (int i = 0; i < 6; ++i) {
      cfis[4 + i] = static_cast<std::uint8_t>(lba >> (8 * i));
    }
    std::memcpy(cfis + 12, &sectors, 2);
    (void)mem_.Write(kCtba + slot * 0x100, cfis, sizeof(cfis));
    (void)mem_.Write64(kCtba + slot * 0x100 + 0x80, buffer);
    (void)mem_.Write32(kCtba + slot * 0x100 + 0x80 + 12, sectors * 512 - 1);
  }

  struct Issue {
    bool write;
    std::uint64_t lba, sectors, buffer, cookie;
  };

  hw::PhysMem mem_;
  std::vector<Issue> issues_;
  std::vector<std::uint8_t> raised_;
  Status issue_status_ = Status::kSuccess;
  VAhci vahci_;
};

TEST_F(VAhciTest, IssueParsesGuestCommandStructures) {
  BuildCommand(0, 0x1234, 8, 0x800000);
  W(hw::ahci::kPxCi, 1);
  ASSERT_EQ(issues_.size(), 1u);
  EXPECT_FALSE(issues_[0].write);
  EXPECT_EQ(issues_[0].lba, 0x1234u);
  EXPECT_EQ(issues_[0].sectors, 8u);
  EXPECT_EQ(issues_[0].buffer, 0x800000u);
  EXPECT_EQ(issues_[0].cookie, 0u);  // Slot number.
  EXPECT_EQ(R(hw::ahci::kPxCi), 1u);  // Still in flight.
}

TEST_F(VAhciTest, CompletionClearsSlotAndRaisesIrq) {
  BuildCommand(0, 1, 1, 0x800000);
  W(hw::ahci::kPxCi, 1);
  vahci_.OnCompletion(0);
  EXPECT_EQ(R(hw::ahci::kPxCi), 0u);
  EXPECT_EQ(R(hw::ahci::kPxIs) & hw::ahci::kPxIsDhrs, hw::ahci::kPxIsDhrs);
  EXPECT_EQ(R(hw::ahci::kIs), 1u);
  ASSERT_EQ(raised_.size(), 1u);
  EXPECT_EQ(raised_[0], vahci::kVector);
  EXPECT_EQ(vahci_.commands_completed(), 1u);
}

TEST_F(VAhciTest, InterruptGatedByEnableBits) {
  W(hw::ahci::kPxIe, 0);  // Port interrupt disabled.
  BuildCommand(0, 1, 1, 0x800000);
  W(hw::ahci::kPxCi, 1);
  vahci_.OnCompletion(0);
  EXPECT_TRUE(raised_.empty());
  // Enabling after the fact does not retroactively fire (edge semantics);
  // status is still visible for polling drivers.
  EXPECT_EQ(R(hw::ahci::kPxIs) & hw::ahci::kPxIsDhrs, hw::ahci::kPxIsDhrs);
}

TEST_F(VAhciTest, WriteCommandMarksDirection) {
  BuildCommand(0, 7, 2, 0x800000, /*write=*/true);
  W(hw::ahci::kPxCi, 1);
  ASSERT_EQ(issues_.size(), 1u);
  EXPECT_TRUE(issues_[0].write);
}

TEST_F(VAhciTest, BackendFailureSetsTaskFileError) {
  issue_status_ = Status::kOverflow;  // e.g. disk-server throttle.
  BuildCommand(0, 1, 1, 0x800000);
  W(hw::ahci::kPxCi, 1);
  EXPECT_EQ(R(hw::ahci::kPxIs) & hw::ahci::kPxIsTfes, hw::ahci::kPxIsTfes);
  EXPECT_EQ(R(hw::ahci::kPxCi), 0u);  // Slot released.
  EXPECT_EQ(vahci_.commands_issued(), 0u);
}

TEST_F(VAhciTest, MalformedFisRejected) {
  BuildCommand(0, 1, 1, 0x800000);
  (void)mem_.WriteAs<std::uint8_t>(kCtba, 0x00);  // Not an H2D FIS.
  W(hw::ahci::kPxCi, 1);
  EXPECT_TRUE(issues_.empty());
  EXPECT_EQ(R(hw::ahci::kPxIs) & hw::ahci::kPxIsTfes, hw::ahci::kPxIsTfes);
}

TEST_F(VAhciTest, NoIssueWhileStopped) {
  W(hw::ahci::kPxCmd, 0);
  BuildCommand(0, 1, 1, 0x800000);
  W(hw::ahci::kPxCi, 1);
  EXPECT_TRUE(issues_.empty());
  EXPECT_EQ(R(hw::ahci::kPxCi), 0u);
}

TEST_F(VAhciTest, MultipleSlotsTrackedIndependently) {
  BuildCommand(0, 10, 1, 0x800000);
  BuildCommand(1, 20, 1, 0x900000);
  W(hw::ahci::kPxCi, 0b11);
  ASSERT_EQ(issues_.size(), 2u);
  vahci_.OnCompletion(1);  // Second completes first.
  EXPECT_EQ(R(hw::ahci::kPxCi), 0b01u);
  vahci_.OnCompletion(0);
  EXPECT_EQ(R(hw::ahci::kPxCi), 0u);
}

TEST_F(VAhciTest, SpuriousCompletionIgnored) {
  vahci_.OnCompletion(5);  // Nothing in flight.
  EXPECT_EQ(vahci_.commands_completed(), 0u);
  EXPECT_TRUE(raised_.empty());
}

TEST_F(VAhciTest, StatusRegistersReadBack) {
  EXPECT_EQ(R(hw::ahci::kCap), 1u);
  EXPECT_EQ(R(hw::ahci::kPi), 1u);
  EXPECT_EQ(R(hw::ahci::kPxSsts), 0x123u);
  EXPECT_EQ(R(hw::ahci::kPxTfd), 0x50u);
  EXPECT_TRUE(vahci_.OwnsGpa(vahci::kMmioBase));
  EXPECT_FALSE(vahci_.OwnsGpa(vahci::kMmioBase + vahci::kMmioSize));
}

}  // namespace
}  // namespace nova::vmm
