#include "src/vmm/vpit.h"

#include <gtest/gtest.h>

namespace nova::vmm {
namespace {

class VPitTest : public ::testing::Test {
 protected:
  VPitTest()
      : pic_([] {}),
        pit_(&events_, &pic_, sim::EventQueue::OwnerToken("test.vpit")) {}

  void Program(std::uint32_t micros) {
    (void)pit_.PioWrite(vpit::kPortPeriodLo, micros & 0xffff);
    (void)pit_.PioWrite(vpit::kPortPeriodHi, micros >> 16);
  }

  sim::EventQueue events_;
  VPic pic_;
  VPit pit_;
};

TEST_F(VPitTest, PeriodicTicksRaiseTimerVector) {
  Program(1000);  // 1 ms period.
  EXPECT_TRUE(pit_.running());
  events_.AdvanceTo(sim::Milliseconds(10));
  EXPECT_EQ(pit_.ticks(), 10u);
  EXPECT_TRUE(pic_.HasDeliverable());
  EXPECT_EQ(pic_.HighestDeliverable(), vpit::kVector);
}

TEST_F(VPitTest, StopViaControlPort) {
  Program(1000);
  events_.AdvanceTo(sim::Milliseconds(3));
  (void)pit_.PioWrite(vpit::kPortControl, 0);
  EXPECT_FALSE(pit_.running());
  const std::uint64_t at_stop = pit_.ticks();
  events_.AdvanceTo(sim::Milliseconds(20));
  EXPECT_EQ(pit_.ticks(), at_stop);  // No more ticks.
}

TEST_F(VPitTest, ReprogramChangesRate) {
  Program(1000);
  events_.AdvanceTo(sim::Milliseconds(5));
  const std::uint64_t fast_ticks = pit_.ticks();
  Program(5000);  // 5 ms period.
  events_.AdvanceTo(sim::Milliseconds(25));
  // 20 ms at 5 ms/tick = 4 more ticks.
  EXPECT_EQ(pit_.ticks(), fast_ticks + 4);
}

TEST_F(VPitTest, ReadBackPeriod) {
  Program(70000);  // > 16 bits of microseconds.
  EXPECT_EQ(pit_.PioRead(vpit::kPortPeriodLo), 70000u & 0xffff);
  EXPECT_EQ(pit_.PioRead(vpit::kPortPeriodHi), 70000u >> 16);
  EXPECT_EQ(pit_.PioRead(vpit::kPortControl), 1u);
}

TEST_F(VPitTest, HighFrequencyMatchesWallClock) {
  Program(100);  // 10 kHz.
  events_.AdvanceTo(sim::Milliseconds(50));
  EXPECT_EQ(pit_.ticks(), 500u);
}

}  // namespace
}  // namespace nova::vmm
