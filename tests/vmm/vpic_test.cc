#include "src/vmm/vpic.h"

#include <gtest/gtest.h>

namespace nova::vmm {
namespace {

TEST(VPic, RaiseMakesDeliverableAndKicks) {
  int kicks = 0;
  VPic pic([&] { ++kicks; });
  EXPECT_FALSE(pic.HasDeliverable());
  pic.Raise(33);
  EXPECT_TRUE(pic.HasDeliverable());
  EXPECT_EQ(pic.HighestDeliverable(), 33);
  EXPECT_EQ(kicks, 1);
}

TEST(VPic, HighestVectorWins) {
  VPic pic({});
  pic.Raise(33);
  pic.Raise(41);
  pic.Raise(35);
  EXPECT_EQ(pic.HighestDeliverable(), 41);
  pic.BeginService(41);
  EXPECT_EQ(pic.HighestDeliverable(), 35);
}

TEST(VPic, BeginServiceMovesToInService) {
  VPic pic({});
  pic.Raise(33);
  pic.BeginService(33);
  EXPECT_FALSE(pic.HasDeliverable());
  // The ISR reads the in-service vector from the status port.
  EXPECT_EQ(pic.PioRead(vpic::kPortVector), 33u);
  // EOI clears it.
  (void)pic.PioWrite(vpic::kPortVector, 33);
  EXPECT_EQ(pic.PioRead(vpic::kPortVector), vpic::kNoVector);
}

TEST(VPic, MaskedVectorNotDeliverable) {
  int kicks = 0;
  VPic pic([&] { ++kicks; });
  (void)pic.PioWrite(vpic::kPortMask, 33);
  pic.Raise(33);
  EXPECT_FALSE(pic.HasDeliverable());
  EXPECT_EQ(kicks, 0);  // Masked: no kick.
  // Unmask re-arms and kicks.
  (void)pic.PioWrite(vpic::kPortUnmask, 33);
  EXPECT_TRUE(pic.HasDeliverable());
  EXPECT_EQ(kicks, 1);
}

TEST(VPic, MaskOnlyAffectsThatVector) {
  VPic pic({});
  (void)pic.PioWrite(vpic::kPortMask, 33);
  pic.Raise(33);
  pic.Raise(34);
  EXPECT_EQ(pic.HighestDeliverable(), 34);
}

TEST(VPic, SoftwareRaisePort) {
  VPic pic({});
  (void)pic.PioWrite(vpic::kPortRaise, 40);
  EXPECT_EQ(pic.HighestDeliverable(), 40);
  EXPECT_EQ(pic.raised(), 1u);
}

TEST(VPic, OutOfRangeVectorIgnored) {
  VPic pic({});
  pic.Raise(200);  // >= 64: dropped.
  EXPECT_FALSE(pic.HasDeliverable());
}

TEST(VPic, CountsInjections) {
  VPic pic({});
  pic.Raise(33);
  pic.BeginService(33);
  pic.Raise(34);
  pic.BeginService(34);
  EXPECT_EQ(pic.injected(), 2u);
}

TEST(VPic, OwnsHandshakePorts) {
  VPic pic({});
  EXPECT_TRUE(pic.OwnsPort(vpic::kPortVector));
  EXPECT_TRUE(pic.OwnsPort(vpic::kPortMask));
  EXPECT_TRUE(pic.OwnsPort(vpic::kPortUnmask));
  EXPECT_TRUE(pic.OwnsPort(vpic::kPortRaise));
  EXPECT_FALSE(pic.OwnsPort(0x40));
}

}  // namespace
}  // namespace nova::vmm
