// The VMM's instruction emulator: fetch through guest page tables, decode,
// execute against the device router, exception fixup (§7.1).
#include "src/vmm/emulator.h"

#include <gtest/gtest.h>

#include "src/guest/guest_pt.h"
#include "src/hw/machine.h"

namespace nova::vmm {
namespace {

class EmulatorTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kGuestBase = 64ull << 20;  // GPA 0 == HPA 64M.
  static constexpr std::uint64_t kGuestSize = 32ull << 20;

  EmulatorTest()
      : machine_(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                   .ram_size = 256ull << 20}),
        emu_(&machine_.mem(), &machine_.cpu(0),
             [](std::uint64_t gpa) {
               return gpa < kGuestSize ? kGuestBase + gpa : ~0ull;
             }),
        gpt_(&machine_.mem(),
             [](std::uint64_t gpa) { return kGuestBase + gpa; }, 0x110000) {}

  // Place one instruction at GPA 0x1000 and describe it in `arch`.
  void SetInsn(const hw::isa::Insn& insn) {
    std::uint8_t bytes[hw::isa::kInsnSize];
    hw::isa::Encode(insn, bytes);
    (void)machine_.mem().Write(kGuestBase + 0x1000, bytes, sizeof(bytes));
    arch_.rip = 0x1000;
    arch_.insn_len = hw::isa::kInsnSize;
  }

  void EnableGuestPaging() {
    (void)gpt_.Map(0x100000, 0x1000, 0x1000, hw::kPageSize, hw::pte::kWritable);
    arch_.paging = true;
    arch_.cr3 = 0x100000;
  }

  hw::Machine machine_;
  InsnEmulator emu_;
  guest::GuestPageTableBuilder gpt_;
  hv::ArchState arch_;
  std::uint64_t last_write_gpa_ = 0;
  std::uint64_t last_write_val_ = 0;

  InsnEmulator::MmioRead Reader() {
    return [](std::uint64_t gpa, unsigned) { return gpa + 0x11; };
  }
  InsnEmulator::MmioWrite Writer() {
    return [this](std::uint64_t gpa, unsigned, std::uint64_t v) {
      last_write_gpa_ = gpa;
      last_write_val_ = v;
    };
  }
};

TEST_F(EmulatorTest, EmulatesMmioLoadWithoutPaging) {
  SetInsn({.opcode = hw::isa::Opcode::kLoad,
           .r1 = 2,
           .r2 = hw::isa::kNoReg,
           .imm64 = 0xfe000040});
  ASSERT_EQ(emu_.EmulateMmio(arch_, Reader(), Writer()),
            InsnEmulator::Result::kOk);
  EXPECT_EQ(arch_.regs[2], 0xfe000040u + 0x11);
  EXPECT_EQ(arch_.rip, 0x1000u + hw::isa::kInsnSize);  // Advanced.
  EXPECT_EQ(emu_.emulated(), 1u);
}

TEST_F(EmulatorTest, EmulatesMmioStoreWithRegisterBase) {
  SetInsn({.opcode = hw::isa::Opcode::kStore, .r1 = 3, .r2 = 4, .imm64 = 0x40});
  arch_.regs[3] = 0xabcd;
  arch_.regs[4] = 0xfe000000;
  ASSERT_EQ(emu_.EmulateMmio(arch_, Reader(), Writer()),
            InsnEmulator::Result::kOk);
  EXPECT_EQ(last_write_gpa_, 0xfe000040u);
  EXPECT_EQ(last_write_val_, 0xabcdu);
}

TEST_F(EmulatorTest, FetchesThroughGuestPageTables) {
  EnableGuestPaging();
  // The device address must also be mapped in the guest page table; map
  // GVA 0x800000 -> GPA 0xfe000000 (a device region).
  (void)gpt_.Map(0x100000, 0x800000, 0xfe000000, hw::kPageSize, hw::pte::kWritable);
  SetInsn({.opcode = hw::isa::Opcode::kLoad,
           .r1 = 1,
           .r2 = hw::isa::kNoReg,
           .imm64 = 0x800000});
  ASSERT_EQ(emu_.EmulateMmio(arch_, Reader(), Writer()),
            InsnEmulator::Result::kOk);
  EXPECT_EQ(arch_.regs[1], 0xfe000000u + 0x11);
}

TEST_F(EmulatorTest, UnmappedFetchInjectsPageFault) {
  EnableGuestPaging();
  arch_.rip = 0x999000;  // Not mapped in the guest table.
  EXPECT_EQ(emu_.EmulateMmio(arch_, Reader(), Writer()),
            InsnEmulator::Result::kInjectPf);
  EXPECT_EQ(arch_.cr2, 0x999000u);  // Exception fixup (§7.1).
}

TEST_F(EmulatorTest, UnmappedOperandInjectsPageFault) {
  EnableGuestPaging();
  SetInsn({.opcode = hw::isa::Opcode::kLoad,
           .r1 = 1,
           .r2 = hw::isa::kNoReg,
           .imm64 = 0x777000});
  EXPECT_EQ(emu_.EmulateMmio(arch_, Reader(), Writer()),
            InsnEmulator::Result::kInjectPf);
  EXPECT_EQ(arch_.cr2, 0x777000u);
}

TEST_F(EmulatorTest, WriteToReadOnlyGuestMappingFaults) {
  EnableGuestPaging();
  (void)gpt_.Map(0x100000, 0x800000, 0xfe000000, hw::kPageSize, /*flags=*/0);  // RO.
  SetInsn({.opcode = hw::isa::Opcode::kStore, .r1 = 1, .r2 = hw::isa::kNoReg,
           .imm64 = 0x800000});
  EXPECT_EQ(emu_.EmulateMmio(arch_, Reader(), Writer()),
            InsnEmulator::Result::kInjectPf);
}

TEST_F(EmulatorTest, NonMemoryInstructionUnsupported) {
  SetInsn({.opcode = hw::isa::Opcode::kCpuid});
  EXPECT_EQ(emu_.EmulateMmio(arch_, Reader(), Writer()),
            InsnEmulator::Result::kUnsupported);
  EXPECT_EQ(arch_.rip, 0x1000u);  // Not advanced.
}

TEST_F(EmulatorTest, ChargesDecodeCycles) {
  SetInsn({.opcode = hw::isa::Opcode::kLoad,
           .r1 = 2,
           .r2 = hw::isa::kNoReg,
           .imm64 = 0xfe000040});
  const sim::Cycles before = machine_.cpu(0).cycles();
  emu_.EmulateMmio(arch_, Reader(), Writer());
  // Fetch + decode + execute costs were charged.
  EXPECT_GE(machine_.cpu(0).cycles() - before, 300u);
}

TEST_F(EmulatorTest, ReadGuestVirtCrossesPages) {
  EnableGuestPaging();
  (void)gpt_.Map(0x100000, 0x2000, 0x2000, hw::kPageSize, hw::pte::kWritable);
  (void)gpt_.Map(0x100000, 0x3000, 0x5000, hw::kPageSize, hw::pte::kWritable);
  // Data straddling the 0x2000/0x3000 boundary maps to 0x2000/0x5000.
  (void)machine_.mem().Write64(kGuestBase + 0x2ff8, 0x1111);
  (void)machine_.mem().Write64(kGuestBase + 0x5000, 0x2222);
  std::uint64_t out[2] = {};
  ASSERT_TRUE(emu_.ReadGuestVirt(arch_, 0x2ff8, out, sizeof(out)));
  EXPECT_EQ(out[0], 0x1111u);
  EXPECT_EQ(out[1], 0x2222u);
}

}  // namespace
}  // namespace nova::vmm
