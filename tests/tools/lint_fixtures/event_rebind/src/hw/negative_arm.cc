// Fixture: the enqueue half of a correctly paired owner. The rebinder
// lives in negative_restore.cc — the pairing is deliberately cross-TU.
void ArmPaired(sim::EventQueue& q) {
  const sim::EventTag tag{"hw.paired", 1};
  q.ScheduleAfterTagged(5, tag, Fire);
}
