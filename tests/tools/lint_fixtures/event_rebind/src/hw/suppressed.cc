// Fixture: an unpaired enqueue with a justified allow() — counted as
// suppressed, not reported.
void ArmTransient(sim::EventQueue& q) {
  // nova-lint: allow(event-rebind) -- transient event, never snapshotted
  q.ScheduleAtTagged(5, sim::EventTag{"hw.transient", 0}, Fire);
}
