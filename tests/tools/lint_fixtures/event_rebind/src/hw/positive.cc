// Fixture: a tagged enqueue whose owner has no RegisterRebinder
// anywhere in the scanned tree (1 finding) — the lost-event-on-restore
// bug class.
void ArmOrphan(sim::EventQueue& q) {
  q.ScheduleAtTagged(5, sim::EventTag{"hw.orphan", 0}, Fire);
}
