// Fixture: the restore half — registers the rebinder for the owner
// enqueued in negative_arm.cc.
void AttachPaired(sim::EventQueue& q) {
  q.RegisterRebinder("hw.paired", Rebind);
}
