// Fixture: the disciplined path — the function charges the guarding
// lock before touching the member, so the rule stays silent.
void Kernel::LockedBump(int cpu) {
  ChargeLock(state_lock_, cpu);
  epoch_ += 1;
}
