// Fixture: an unlocked touch with a justified allow() — counted as
// suppressed, not reported.
void Kernel::BootBump() {
  // nova-lint: allow(lock-discipline) -- single-core boot, APs not started
  epoch_ += 1;
}
