// Fixture: a guarded member touched without charging its lock
// (1 finding).
void Kernel::UnlockedBump() {
  epoch_ += 1;  // finding: no ChargeLock(state_lock_) in this function
}
