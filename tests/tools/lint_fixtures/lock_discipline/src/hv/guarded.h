// Fixture: the shared-state declarations the lock_discipline fixtures
// mutate. epoch_ carries the guarded-by contract under test.
struct KernelLock {
  int last_cpu;
};

class Kernel {
 public:
  void LockedBump(int cpu);
  void UnlockedBump();
  void BootBump();

 private:
  void ChargeLock(KernelLock& lock, int cpu);
  // guarded-by(state_lock_)
  int epoch_ = 0;
  KernelLock state_lock_;
};
