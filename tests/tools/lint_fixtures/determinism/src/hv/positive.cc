// Fixture: determinism violations the rule must flag (2 findings).
// Linted only by the nova_lint_fixture_determinism ctest entry; the
// repo-wide gate skips lint_fixtures/ directories during recursion.
class ShadowIndex {
 public:
  void Walk() {
    for (const auto& kv : table_) {  // finding: unordered iteration
      (void)kv;
    }
  }
  long Now() {
    return std::chrono::steady_clock::now();  // finding: wall clock
  }

 private:
  std::unordered_map<int, int> table_;
};
