// Fixture: deterministic patterns the rule must stay silent on — an
// ordered container walk and a vector member whose name collides with
// an unordered member in another class (positive.cc's table_ is fine:
// different name; the collision here is against ShadowIndex had it
// shared a name — the vector resolves by this class's declaration).
class SortedIndex {
 public:
  void Walk() {
    for (const auto& kv : ordered_) {
      (void)kv;
    }
    for (const int v : table_) {  // vector named like an unordered member
      (void)v;
    }
  }

 private:
  std::map<int, int> ordered_;
  std::vector<int> table_;
};
