// Fixture: a vetted unordered walk carrying a justified allow() — the
// rule must count it as suppressed, not report it.
class CountingIndex {
 public:
  int Total() {
    int n = 0;
    // nova-lint: allow(determinism) -- pure sum, order-independent
    for (const auto& kv : table_) {
      n += kv.second;
    }
    return n;
  }

 private:
  std::unordered_map<int, int> table_;
};
